package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/bench/mvv"
	"repro/internal/obs"
)

// TestProfiledMVVQuery is the end-to-end acceptance check for the
// per-predicate profiler: a traced MVV run with profiling on must yield
// 4-port counts whose calls cover every EDB fetch, a slow-query record
// matching the documented schema, and educe_profile/2 totals that agree
// with the knowledge base's profile table (the same table /debug/profile
// serves).
func TestProfiledMVVQuery(t *testing.T) {
	data := mvv.Generate()
	kb, err := bench.SetupMVVKB(data)
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	s, err := bench.NewMVVSession(kb)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var trace bytes.Buffer
	s.EnableProfiling(true)
	if !s.ProfilingEnabled() {
		t.Fatal("EnableProfiling(true) did not stick")
	}
	s.SetTracer(obs.NewTracer(&trace))
	s.SetSlowThreshold(time.Nanosecond) // every query is "slow"

	for _, q := range data.Class1 {
		if _, err := s.QueryCount(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	cost := s.Cost()

	// Port counts: every predicate row is internally consistent, and the
	// summed calls must cover at least the EDB fetch count — each fetch
	// is triggered by some predicate's call or redo.
	rows := s.Profile()
	if len(rows) == 0 {
		t.Fatal("profiled run produced no predicate rows")
	}
	var sum obs.PredCounters
	for _, r := range rows {
		if r.Pred == "" {
			t.Fatalf("row with empty predicate: %+v", r)
		}
		if r.Exits > r.Calls+r.Redos {
			t.Errorf("%s: exits %d > calls %d + redos %d", r.Pred, r.Exits, r.Calls, r.Redos)
		}
		sum.Add(&r.PredCounters)
	}
	if sum.Calls+sum.Redos < cost.Retrievals {
		t.Errorf("calls+redos sum %d < %d EDB retrievals: fetches unattributed",
			sum.Calls+sum.Redos, cost.Retrievals)
	}
	if sum.EDBFetches != cost.Retrievals {
		t.Errorf("profile attributes %d EDB fetches, session cost has %d",
			sum.EDBFetches, cost.Retrievals)
	}
	if sum.SelfNS <= 0 {
		t.Error("no self-time attributed")
	}

	// Slow-query records: one per query, valid against the documented
	// schema, with top_preds populated from this query's profile.
	var slow []map[string]any
	for _, ln := range strings.Split(strings.TrimSpace(trace.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("invalid trace JSON %q: %v", ln, err)
		}
		if rec["msg"] == obs.EventSlowQuery {
			slow = append(slow, rec)
		}
	}
	if len(slow) != len(data.Class1) {
		t.Fatalf("got %d slow_query records, want %d", len(slow), len(data.Class1))
	}
	for _, rec := range slow {
		for _, k := range []string{"session_id", "query_id", "goal", "elapsed_ns",
			"threshold_ns", "phases", "top_preds", "io"} {
			if _, ok := rec[k]; !ok {
				t.Fatalf("slow_query record missing %q: %v", k, rec)
			}
		}
		preds, ok := rec["top_preds"].([]any)
		if !ok || len(preds) == 0 {
			t.Fatalf("slow_query record has no top_preds: %v", rec)
		}
		row := preds[0].(map[string]any)
		if _, ok := row["calls"]; !ok {
			t.Fatalf("top_preds row missing calls: %v", row)
		}
	}

	// educe_profile/2 reads the KB profile table, so its totals must
	// agree exactly with kb.Profile().Totals() — which is also what the
	// /debug/profile endpoint serializes. Profiling is switched off first
	// so the educe_profile queries themselves stop moving the totals.
	s.EnableProfiling(false)
	totals := kb.Profile().Totals()
	for key, want := range map[string]int64{
		"'total.calls'":       int64(totals.Calls),
		"'total.exits'":       int64(totals.Exits),
		"'total.edb_fetches'": int64(totals.EDBFetches),
	} {
		sols, err := s.QueryAll(fmt.Sprintf("educe_profile(%s, N)", key))
		if err != nil || len(sols) != 1 {
			t.Fatalf("educe_profile(%s, N): %d solutions, err %v", key, len(sols), err)
		}
		if got := sols[0]["N"].String(); got != fmt.Sprint(want) {
			t.Errorf("educe_profile(%s) = %s, want %d", key, got, want)
		}
	}
	// Enumeration mode yields at least the totals block.
	n, err := s.QueryCount("educe_profile(_, _)")
	if err != nil || n < 7 {
		t.Fatalf("educe_profile enumeration: %d keys (%v)", n, err)
	}

	// Access-path selectivity counters registered and moving: the MVV
	// class-1 queries drive the attribute index.
	snap := kb.Obs().Snapshot()
	scanned, ok := snap["edb.path.attr_index.scanned"].(uint64)
	if !ok {
		t.Fatalf("edb.path.attr_index.scanned missing (have %v)", kb.Obs().Names())
	}
	matched := snap["edb.path.attr_index.matched"].(uint64)
	if scanned == 0 || matched > scanned {
		t.Errorf("attr_index selectivity: matched %d / scanned %d", matched, scanned)
	}
}

// TestProfileAttributionSumsToKBTotals runs 8 profiled sessions in
// parallel over one knowledge base and checks that their per-predicate
// port counts sum exactly to the KB profile-table totals: each port event
// is attributed to exactly one session, none double-merged, none lost.
// CI runs this under -race.
func TestProfileAttributionSumsToKBTotals(t *testing.T) {
	data := mvv.Generate()
	kb, err := bench.SetupMVVKB(data)
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	kb.ResetStats()

	const n = 8
	queries := data.Class1[:3]
	profiles := make([][]obs.PredProfile, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := bench.NewMVVSession(kb)
			if err != nil {
				errs[i] = err
				return
			}
			defer s.Close()
			s.EnableProfiling(true)
			for _, q := range queries {
				if _, err := s.QueryCount(q); err != nil {
					errs[i] = err
					return
				}
			}
			profiles[i] = s.Profile()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	perPred := map[string]*obs.PredCounters{}
	for i := range profiles {
		if len(profiles[i]) == 0 {
			t.Fatalf("session %d recorded no profile rows", i)
		}
		for _, r := range profiles[i] {
			c := perPred[r.Pred]
			if c == nil {
				c = &obs.PredCounters{}
				perPred[r.Pred] = c
			}
			c.Add(&r.PredCounters)
		}
	}

	// Exact per-predicate equality, not just totals: any drift means an
	// event was double-merged or dropped on the drain path.
	kbRows := kb.Profile().Snapshot()
	if len(kbRows) != len(perPred) {
		t.Fatalf("KB table has %d predicates, session sums have %d", len(kbRows), len(perPred))
	}
	for _, kr := range kbRows {
		sc := perPred[kr.Pred]
		if sc == nil {
			t.Errorf("%s: in KB table but in no session profile", kr.Pred)
			continue
		}
		if *sc != kr.PredCounters {
			t.Errorf("%s: sessions sum to %+v, KB table has %+v", kr.Pred, *sc, kr.PredCounters)
		}
	}
	totals := kb.Profile().Totals()
	if totals.Calls == 0 {
		t.Fatal("no calls recorded in KB profile table")
	}
}

// TestProfileResetScope pins the reset split for the PR 5 buffer-pool
// metrics and the PR 7 profile table: Session.ResetStats clears only
// session-local state, KnowledgeBase.ResetStats clears the shared
// registry (per-shard counters, latch waits) and the profile table.
func TestProfileResetScope(t *testing.T) {
	data := mvv.Generate()
	kb, err := bench.SetupMVVKB(data)
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	s, err := bench.NewMVVSession(kb)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnableProfiling(true)
	if _, err := s.QueryCount(data.Class1[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryCount(data.Class1[1]); err != nil {
		t.Fatal(err)
	}

	shardTotal := func() uint64 {
		snap := kb.Obs().Snapshot()
		var sum uint64
		for i := 0; i < kb.Store().Pool().Shards(); i++ {
			if v, ok := snap[fmt.Sprintf("buffer_pool.shard%d.accesses", i)].(uint64); ok {
				sum += v
			}
		}
		return sum
	}
	latchHist := func() uint64 {
		snap := kb.Obs().Snapshot()
		h, _ := snap["buffer_pool.latch_wait_ns"].(obs.HistogramSnapshot)
		return h.Count
	}

	if kb.Profile().Totals().Calls == 0 {
		t.Fatal("no profile accumulated before reset")
	}
	beforeShards := shardTotal()
	if beforeShards == 0 {
		t.Fatal("no shard accesses before reset")
	}

	// Session-scope reset: KB profile table and shared registry intact,
	// session-cumulative profile cleared.
	s.ResetStats()
	if kb.Profile().Totals().Calls == 0 {
		t.Error("Session.ResetStats cleared the KB profile table")
	}
	if shardTotal() < beforeShards {
		t.Error("Session.ResetStats cleared per-shard buffer-pool counters")
	}
	if rows := s.Profile(); len(rows) != 0 {
		t.Errorf("Session.ResetStats left %d session profile rows", len(rows))
	}

	// KB-scope reset: profile table, per-shard counters, latch-wait
	// counter and histogram all zeroed.
	kb.ResetStats()
	if got := kb.Profile().Totals(); got != (obs.PredCounters{}) {
		t.Errorf("KnowledgeBase.ResetStats left profile totals %+v", got)
	}
	if got := shardTotal(); got != 0 {
		t.Errorf("KnowledgeBase.ResetStats left %d shard accesses", got)
	}
	snap := kb.Obs().Snapshot()
	if v, _ := snap["buffer_pool.latch_waits"].(uint64); v != 0 {
		t.Errorf("KnowledgeBase.ResetStats left latch_waits = %d", v)
	}
	if got := latchHist(); got != 0 {
		t.Errorf("KnowledgeBase.ResetStats left latch_wait_ns count = %d", got)
	}
}

// TestDisabledProfilerOverhead guards the "near-zero cost when disabled"
// property: with profiling off the dispatch loop pays one nil check per
// port site, so a disabled run must not be materially slower than an
// enabled run of the same workload (the enabled run pays timestamping
// and map updates on top). The bound is deliberately generous to stay
// robust on loaded CI machines; the precise <5% budget is tracked by
// comparing BenchmarkMVVClass1EduceStar against the recorded baseline
// in EXPERIMENTS.md.
func TestDisabledProfilerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	data := mvv.Generate()
	kb, err := bench.SetupMVVKB(data)
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()

	run := func(profiled bool) time.Duration {
		s, err := bench.NewMVVSession(kb)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.EnableProfiling(profiled)
		// Warm the shared code cache so both runs execute the same path.
		if _, _, err := bench.RunMVVClassSession(s, data.Class1); err != nil {
			t.Fatal(err)
		}
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			el, _, err := bench.RunMVVClassSession(s, data.Class1)
			if err != nil {
				t.Fatal(err)
			}
			if el < best {
				best = el
			}
		}
		return best
	}

	enabled := run(true)
	disabled := run(false)
	t.Logf("MVV class 1: disabled=%v enabled=%v", disabled, enabled)
	if disabled > 2*enabled+10*time.Millisecond {
		t.Errorf("disabled-profiler run (%v) much slower than enabled (%v): nil-check gating broken",
			disabled, enabled)
	}
}
