// Command benchtool regenerates the tables of the paper's evaluation (§5)
// and prints them in the paper's layout. See DESIGN.md for the experiment
// index.
//
// Usage:
//
//	benchtool -table mvv        # Table 1  (MVV times, Educe vs Educe*)
//	benchtool -table wisconsin  # Tables 2a/2b (times and I/O frequencies)
//	benchtool -table icheck     # Table 3  (IC preprocess, GC vs Educe*)
//	benchtool -table cpuscale   # §5.4 client/server CPU scaling
//	benchtool -table phases     # §3.1 compile-phase split
//	benchtool -table ruleuse    # §2 per-use rule cost
//	benchtool -table server     # served MVV: concurrent wire clients
//	benchtool -table datalog    # R5: recursive Datalog, tuple vs set strategy
//	benchtool -table scaling    # R3: sessions-vs-throughput (JSON)
//	benchtool -table profile    # R4: profiled MVV (trace + profile JSON)
//	benchtool -table all        # every table except scaling and profile
//
// -table scaling emits JSON rows (workload, sessions, qps, speedup) for
// concurrent sessions over a shared file-backed knowledge base; with
// -check-scaling it exits nonzero if the highest session count's
// throughput falls below the 1-session baseline, which is how CI guards
// the sharded buffer pool against lock-contention regressions.
//
// -table profile runs both MVV query classes on a profiled session with
// the slow-query log armed at -slow-query (default 1ns: every query
// qualifies), streaming the JSON trace records — including one
// slow_query record per query — to stdout, followed by one JSON document
// holding the per-predicate profile and a metrics snapshot. With
// -metrics-out FILE the document is written to FILE instead, leaving
// stdout purely trace records; CI's bench smoke greps a slow_query
// record out of the stream and validates its schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/bench"
)

func main() {
	table := flag.String("table", "all", "table to regenerate: mvv, wisconsin, icheck, cpuscale, phases, ruleuse, server, datalog, scaling, all")
	wiscN := flag.Int("wisconsin-n", 10000, "Wisconsin relation cardinality")
	clients := flag.Int("clients", 8, "with -table server: concurrent wire clients")
	queries := flag.Int("queries", 20, "with -table server: queries per client")
	sessions := flag.Int("server-sessions", 4, "with -table server: session pool size")
	scalingSessions := flag.String("scaling-sessions", "1,2,4,8", "with -table scaling: comma-separated session counts")
	scalingRounds := flag.Int("scaling-rounds", 3, "with -table scaling: work units per session")
	checkScaling := flag.Bool("check-scaling", false, "with -table scaling: exit nonzero if max-session throughput < baseline")
	datalogChains := flag.Int("datalog-chains", 60, "with -table datalog: number of disjoint TC chains")
	datalogChainLen := flag.Int("datalog-chainlen", 20, "with -table datalog: nodes per TC chain")
	checkDatalog := flag.Bool("check-datalog", false, "with -table datalog: exit nonzero unless strategies agree and set reads >=5x fewer pages")
	slowQuery := flag.Duration("slow-query", time.Nanosecond, "with -table profile: slow-query threshold")
	metricsOut := flag.String("metrics-out", "", "with -table profile: write the profile+metrics JSON document to this file instead of stdout")
	flag.Parse()

	run := func(name string, f func() error) {
		if *table != "all" && *table != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtool: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("mvv", printMVV)
	run("wisconsin", func() error { return printWisconsin(*wiscN) })
	run("icheck", printICheck)
	run("cpuscale", printCPUScale)
	run("phases", printPhases)
	run("ruleuse", printRuleUse)
	run("server", func() error { return printServer(*clients, *queries, *sessions) })
	run("datalog", func() error { return printDatalog(*datalogChains, *datalogChainLen, *checkDatalog) })
	// Scaling and profile run only when asked for by name: scaling builds
	// file-backed stores; profile interleaves trace records with tables.
	if *table == "scaling" {
		run("scaling", func() error {
			return printScaling(*scalingSessions, *wiscN, *scalingRounds, *checkScaling)
		})
	}
	if *table == "profile" {
		run("profile", func() error {
			return printProfile(*slowQuery, *metricsOut)
		})
	}
}

// printProfile runs the profiled MVV workload: slow-query trace records
// stream to stdout, the profile+metrics document follows (or goes to
// outPath when set, keeping stdout pure JSON-lines trace).
func printProfile(slow time.Duration, outPath string) error {
	res, err := bench.ProfiledMVV(os.Stdout, slow)
	if err != nil {
		return err
	}
	out := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func printScaling(spec string, wiscN, rounds int, check bool) error {
	var counts []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -scaling-sessions %q", spec)
		}
		counts = append(counts, n)
	}
	dir, err := os.MkdirTemp("", "educe-scaling-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rows, err := bench.ScalingTable(dir, counts, wiscN, rounds)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		return err
	}
	if check {
		if err := bench.CheckScaling(rows); err != nil {
			return fmt.Errorf("scaling check failed: %w", err)
		}
		fmt.Fprintln(os.Stderr, "scaling check passed: max-session throughput >= baseline")
	}
	return nil
}

func printServer(clients, queries, sessions int) error {
	row, err := bench.ServerBench(clients, queries, sessions)
	if err != nil {
		return err
	}
	fmt.Println("Served MVV — concurrent clients over the line protocol (mixed class 1/2)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "clients\tsessions\tqueries\tsolutions\tsheds\telapsed(ms)\tqps\tp50(ms)\tp95(ms)\tp99(ms)")
	fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%s\t%.0f\t%s\t%s\t%s\n",
		row.Clients, row.Sessions, row.Queries, row.Solutions, row.Sheds,
		ms(row.Elapsed), row.QPS, ms(row.P50), ms(row.P95), ms(row.P99))
	w.Flush()
	fmt.Println()
	return nil
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }

// printDatalog runs the dual-strategy recursive workloads (R5): each
// generated workload evaluated tuple-at-a-time and set-at-a-time over a
// file-backed KB, with per-strategy page-read counts.
func printDatalog(chains, chainLen int, check bool) error {
	rows, err := bench.DatalogTable(chains, chainLen)
	if err != nil {
		return err
	}
	fmt.Printf("R5 — Dual strategy: recursive Datalog, tuple- vs set-at-a-time (TC: %d chains x %d nodes)\n", chains, chainLen)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tstrategy\tqueries\tsolutions\telapsed(ms)\tedb-page-reads")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.2f\t%d\n",
			r.Workload, r.Strategy, r.Queries, r.Solutions, r.ElapsedMS, r.Pages)
	}
	w.Flush()
	fmt.Println()
	if check {
		if err := bench.CheckDatalog(rows, 5); err != nil {
			return fmt.Errorf("datalog check failed: %w", err)
		}
		fmt.Fprintln(os.Stderr, "datalog check passed: identical solution sets, set strategy >=5x fewer page reads")
	}
	return nil
}

func printMVV() error {
	rows, err := bench.MVVTable()
	if err != nil {
		return err
	}
	fmt.Println("Table 1 — Educe* / Educe: MVV times (ms per query class, 10 queries each)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tclass\trun\ttotal(ms)\tper-query(ms)\tsolutions")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%s\t%d\n",
			r.System, r.Class, r.Run, ms(r.Elapsed), ms(r.PerQuery), r.Solutions)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printWisconsin(n int) error {
	rows, err := bench.WisconsinTable(n)
	if err != nil {
		return err
	}
	fmt.Printf("Table 2a/2b — Educe*: Wisconsin (n=%d): times and I/O frequencies\n", n)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\tformat\ttime(ms)\trows\tbuffer-acc\tpage-reads\tpage-writes")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%d\n",
			r.Query, r.Format, ms(r.Elapsed), r.Rows, r.IO.Accesses, r.IO.Reads, r.IO.Writes)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printICheck() error {
	rows, err := bench.ICTable()
	if err != nil {
		return err
	}
	fmt.Println("Table 3 — Integrity constraints checking: preprocess (ms)")
	byUpdate := map[int]map[bench.System]time.Duration{}
	for _, r := range rows {
		if byUpdate[r.Update] == nil {
			byUpdate[r.Update] = map[bench.System]time.Duration{}
		}
		byUpdate[r.Update][r.System] = r.Elapsed
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "update\tGC(ms)\tE*(ms)")
	for u := 1; u <= len(byUpdate); u++ {
		fmt.Fprintf(w, "%d\t%s\t%s\n", u, ms(byUpdate[u][bench.GoodCompiler]), ms(byUpdate[u][bench.EduceStar]))
	}
	w.Flush()
	fmt.Println("GC: a good Prolog compiler (pure in-memory WAM); E*: Educe*")
	fmt.Println()
	return nil
}

func printCPUScale() error {
	rows, err := bench.MVVTable()
	if err != nil {
		return err
	}
	fmt.Println("§5.4 — CPU scaling (server 25 MHz/4 MIPS vs diskless client 20 MHz/3 MIPS)")
	fmt.Println("The workload is CPU-bound, so times scale with the MIPS ratio (x4/3).")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tclass\tserver(ms)\tclient(ms)")
	for _, r := range rows {
		if r.Run != 2 {
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\n", r.System, r.Class,
			ms(time.Duration(float64(r.Elapsed)*bench.ServerScale)),
			ms(time.Duration(float64(r.Elapsed)*bench.ClientScale)))
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printPhases() error {
	rows, err := bench.PhaseTable()
	if err != nil {
		return err
	}
	fmt.Println("§3.1 — compile pipeline split (the ~90% reading / ~10% codegen claim)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "corpus\tparse(ms)\tcodegen(ms)\tlink(ms)\tparse%\tcodegen+link%")
	for _, r := range rows {
		total := r.Parse + r.Compile + r.Link
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.0f%%\t%.0f%%\n",
			r.Corpus, ms(r.Parse), ms(r.Compile), ms(r.Link),
			100*float64(r.Parse)/float64(total),
			100*float64(r.Compile+r.Link)/float64(total))
	}
	w.Flush()
	fmt.Println()
	return nil
}

func printRuleUse() error {
	rows, err := bench.RuleUseTable(100)
	if err != nil {
		return err
	}
	fmt.Println("§2 — per-use cost of an externally stored rule set")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tuses\ttotal(ms)\tper-use(ms)\tasserts\tretrieve(ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%d\t%s\n",
			r.System, r.Uses, ms(r.Elapsed), ms(r.PerUse), r.Asserts, ms(r.Retrieve))
	}
	w.Flush()
	fmt.Println()
	return nil
}
