package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/educe"
)

// TestMetricsEndpoints pins the /metrics contract consumers scrape —
// JSON Content-Type and derived p50/p95/p99 quantile gauges on every
// histogram — and the /debug/profile snapshot shape. One test covers
// both endpoints because expvar.Publish inside startMetrics can only
// run once per process.
func TestMetricsEndpoints(t *testing.T) {
	kb, err := educe.OpenKB("")
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	s, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnableProfiling(true)
	if err := s.ConsultExternal("p(1). p(2)."); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryCount("p(X)"); err != nil {
		t.Fatal(err)
	}

	srv, err := startMetrics("127.0.0.1:0", kb)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + srv.Addr

	get := func(path string) (string, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), body
	}

	ct, body := get("/metrics")
	if ct != "application/json" {
		t.Errorf("/metrics Content-Type = %q, want application/json", ct)
	}
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	// Histograms in the snapshot carry the derived quantile gauges.
	hist, ok := snap["edb.pages_per_retrieval"].(map[string]any)
	if !ok {
		t.Fatalf("edb.pages_per_retrieval missing from /metrics: %v", keys(snap))
	}
	for _, q := range []string{"p50", "p95", "p99"} {
		if _, ok := hist[q]; !ok {
			t.Errorf("edb.pages_per_retrieval missing %s: %v", q, hist)
		}
	}
	// The selectivity counters are part of the scrape surface too.
	if _, ok := snap["edb.path.attr_index.scanned"]; !ok {
		t.Errorf("edb.path.attr_index.scanned missing from /metrics: %v", keys(snap))
	}

	ct, body = get("/debug/profile")
	if ct != "application/json" {
		t.Errorf("/debug/profile Content-Type = %q, want application/json", ct)
	}
	var prof struct {
		Preds  []educe.PredProfile `json:"preds"`
		Totals educe.PredCounters  `json:"totals"`
	}
	if err := json.Unmarshal(body, &prof); err != nil {
		t.Fatalf("/debug/profile is not valid JSON: %v", err)
	}
	if prof.Totals.Calls == 0 || len(prof.Preds) == 0 {
		t.Fatalf("/debug/profile empty after a profiled query: %s", body)
	}
	// The endpoint serves the same table educe_profile/2 reads.
	if got := kb.Profile().Totals(); got != prof.Totals {
		t.Errorf("/debug/profile totals %+v != kb.Profile().Totals() %+v", prof.Totals, got)
	}
}

func keys(m map[string]any) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
