package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/educe"
)

// TestMetricsEndpoints pins the /metrics contract consumers scrape —
// JSON Content-Type and derived p50/p95/p99 quantile gauges on every
// histogram — and the /debug/profile snapshot shape. One test covers
// both endpoints because expvar.Publish inside startMetrics can only
// run once per process.
func TestMetricsEndpoints(t *testing.T) {
	kb, err := educe.OpenKB("")
	if err != nil {
		t.Fatal(err)
	}
	defer kb.Close()
	s, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnableProfiling(true)
	if err := s.ConsultExternal("p(1). p(2)."); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryCount("p(X)"); err != nil {
		t.Fatal(err)
	}

	srv, err := startMetrics("127.0.0.1:0", kb)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + srv.Addr

	get := func(path string) (string, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), body
	}

	ct, body := get("/metrics")
	if ct != "application/json" {
		t.Errorf("/metrics Content-Type = %q, want application/json", ct)
	}
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	// Histograms in the snapshot carry the derived quantile gauges.
	hist, ok := snap["edb.pages_per_retrieval"].(map[string]any)
	if !ok {
		t.Fatalf("edb.pages_per_retrieval missing from /metrics: %v", keys(snap))
	}
	for _, q := range []string{"p50", "p95", "p99"} {
		if _, ok := hist[q]; !ok {
			t.Errorf("edb.pages_per_retrieval missing %s: %v", q, hist)
		}
	}
	// The selectivity counters are part of the scrape surface too.
	if _, ok := snap["edb.path.attr_index.scanned"]; !ok {
		t.Errorf("edb.path.attr_index.scanned missing from /metrics: %v", keys(snap))
	}

	ct, body = get("/debug/profile")
	if ct != "application/json" {
		t.Errorf("/debug/profile Content-Type = %q, want application/json", ct)
	}
	var prof struct {
		Preds  []educe.PredProfile `json:"preds"`
		Totals educe.PredCounters  `json:"totals"`
	}
	if err := json.Unmarshal(body, &prof); err != nil {
		t.Fatalf("/debug/profile is not valid JSON: %v", err)
	}
	if prof.Totals.Calls == 0 || len(prof.Preds) == 0 {
		t.Fatalf("/debug/profile empty after a profiled query: %s", body)
	}
	// The endpoint serves the same table educe_profile/2 reads.
	if got := kb.Profile().Totals(); got != prof.Totals {
		t.Errorf("/debug/profile totals %+v != kb.Profile().Totals() %+v", prof.Totals, got)
	}
}

// TestBackupRestoreRoundTrip drives the -backup / -restore plumbing:
// back up a live file-backed KB, commit more writes, then restore the
// image at the backup's end LSN and check it answers exactly the
// queries the source did at that point.
func TestBackupRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	arch := filepath.Join(dir, "arch")
	eng, err := educe.NewWithOptions(educe.Options{
		StorePath:     filepath.Join(dir, "kb.edb"),
		WALArchiveDir: arch,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.ConsultExternal("g(1). g(2)."); err != nil {
		t.Fatal(err)
	}
	if err := eng.KB().Flush(); err != nil {
		t.Fatal(err)
	}

	bk := filepath.Join(dir, "kb.backup")
	if code := runBackup(eng, bk); code != 0 {
		t.Fatalf("runBackup exit code %d", code)
	}
	lsn := eng.KB().LSN()

	// Writes after the backup belong to later LSNs and must not appear
	// in a restore pinned at the backup's end.
	if err := eng.ConsultExternal("g(3)."); err != nil {
		t.Fatal(err)
	}
	if err := eng.KB().Flush(); err != nil {
		t.Fatal(err)
	}

	restored := filepath.Join(dir, "restored.edb")
	if err := runRestore(bk, restored, arch, lsn); err != nil {
		t.Fatalf("runRestore: %v", err)
	}
	reng, err := educe.NewWithOptions(educe.Options{StorePath: restored})
	if err != nil {
		t.Fatal(err)
	}
	defer reng.Close()
	if err := reng.KB().Check(); err != nil {
		t.Fatalf("restored KB fails check: %v", err)
	}
	s, err := reng.KB().NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if n, err := s.QueryCount("g(_)"); err != nil || n != 2 {
		t.Fatalf("restored g/1 count = %d (%v), want 2", n, err)
	}

	// A backup to an unwritable path fails without leaving a file.
	if code := runBackup(eng, filepath.Join(dir, "missing", "kb.backup")); code == 0 {
		t.Fatal("runBackup to unwritable path succeeded")
	}
	if _, err := os.Stat(filepath.Join(dir, "missing", "kb.backup")); err == nil {
		t.Fatal("failed backup left a file behind")
	}
}

func keys(m map[string]any) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
