// Command educe is an interactive shell for the Educe* engine.
//
// Usage:
//
//	educe [-db kb.edb] [-mode compiled|source] [-strategy auto|tuple|set]
//	      [-external] [file.pl ...]
//
// Files named on the command line are consulted into main memory (or, with
// -external, compiled into the EDB). The shell then reads goals, one per
// line, and prints solutions; press enter on an empty line (or type ';')
// for more solutions, anything else for the next goal. Type 'halt.' to
// leave.
//
// -strategy selects how stored rule predicates are evaluated: "auto"
// (default; set-at-a-time semi-naive evaluation for eligible recursive
// predicates, the WAM for everything else), "tuple" (WAM everywhere),
// or "set" (semi-naive for any eligible stored predicate). The choice
// applies to the shell session and every served session; goals can
// override it per session with educe_strategy/1. See DESIGN.md §14.
//
// Robustness:
//
//	-check        verify the knowledge base's on-disk integrity (page
//	              checksums, structural invariants, index consistency)
//	              and exit; nonzero exit status on corruption
//	-repair       like -check, but rebuild derived structures (secondary
//	              attribute indexes) when the check fails, then re-verify
//	-timeout D    bound every goal by wall-clock duration D (e.g. 5s);
//	              runaway goals abort with a catchable timeout error
//
// Observability:
//
//	-stats        print the cost breakdown (phase spans, pre-unification
//	              selectivity, cache hit ratios, I/O) after every goal
//	-trace FILE   append one JSON trace event per query phase span plus a
//	              per-query summary to FILE ("-" = stderr)
//	-metrics ADDR serve a live JSON snapshot of the knowledge-base metrics
//	              registry on http://ADDR/metrics (expvar at /debug/vars;
//	              per-predicate profile at /debug/profile)
//	-profile      enable the per-predicate 4-port profiler
//	              (call/exit/redo/fail counts, self-time, attributed EDB
//	              I/O); inspect via /debug/profile or educe_profile/2
//	-slow-query D log a slow_query diagnostic record (through -trace) for
//	              every goal taking at least D, e.g. -slow-query 250ms
//
// Serving:
//
//	-serve ADDR        serve the line protocol on ADDR (see internal/server)
//	                   instead of running a shell; SIGINT/SIGTERM drains
//	                   in-flight queries and exits 0
//	-max-sessions N    session pool size (concurrent queries)
//	-queue N           admission queue depth; past it queries are shed with
//	                   "overloaded retry-after=<ms>"
//	-quota-heap N      per-query cap on live WAM heap cells
//	-quota-trail N     per-query cap on trail entries
//	-quota-pages N     per-query cap on EDB pages touched
//	-quota-solutions N per-query cap on solutions delivered
//	-drain-timeout D   how long a drain waits for in-flight queries before
//	                   interrupting them (with -serve)
//
// The -timeout flag bounds each served query's execution like it bounds
// shell goals.
//
// Backup & recovery:
//
//	-wal-archive DIR       archive committed WAL segments into DIR at each
//	                       checkpoint instead of discarding them, enabling
//	                       point-in-time recovery
//	-wal-archive-budget N  cap the archive's total bytes; oldest segments
//	                       are pruned first (0 = unlimited)
//	-wal-checkpoint-bytes N  WAL size that triggers a checkpoint and log
//	                       truncation (0 = store default)
//	-backup FILE           stream an online backup of the knowledge base
//	                       to FILE (after consulting any named files) and
//	                       exit; writers in other processes of a shared
//	                       store are not blocked
//	-restore FILE          before opening, rebuild -db from the backup in
//	                       FILE, rolling the -wal-archive forward, then
//	                       verify the result with the integrity checker
//	-restore-to-lsn N      with -restore: stop WAL replay at commit LSN N
//	                       for point-in-time recovery (0 = roll forward
//	                       through the whole archive)
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/educe"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	dbPath := flag.String("db", "", "page file backing the EDB (empty = in-memory)")
	mode := flag.String("mode", "compiled", "rule storage: compiled (Educe*) or source (Educe baseline)")
	strategy := flag.String("strategy", "auto", "evaluation strategy for stored rule predicates: auto, tuple, or set (DESIGN.md §14)")
	external := flag.Bool("external", false, "consult files into the EDB instead of main memory")
	stats := flag.Bool("stats", false, "print engine statistics after every goal")
	goal := flag.String("goal", "", "run one goal non-interactively, print all solutions, exit")
	sessions := flag.Int("sessions", 1, "with -goal: run the goal concurrently on N sessions sharing one knowledge base (EDB-stored predicates only)")
	tracePath := flag.String("trace", "", "write per-query JSON trace events to this file (\"-\" = stderr)")
	metricsAddr := flag.String("metrics", "", "serve live metrics JSON on this address (http://ADDR/metrics)")
	profile := flag.Bool("profile", false, "enable the per-predicate 4-port profiler (see /debug/profile, educe_profile/2)")
	slowQuery := flag.Duration("slow-query", 0, "emit a slow_query trace record for goals taking at least this long (0 = off)")
	check := flag.Bool("check", false, "verify the knowledge base's integrity and exit (nonzero on corruption)")
	repair := flag.Bool("repair", false, "verify, rebuild derived indexes on failure, re-verify, and exit")
	timeout := flag.Duration("timeout", 0, "wall-clock bound per goal; runaway goals abort with a timeout error (0 = none)")
	serveAddr := flag.String("serve", "", "serve the line protocol on this address instead of running a shell")
	maxSessions := flag.Int("max-sessions", 4, "with -serve: session pool size (concurrent queries)")
	queueDepth := flag.Int("queue", 16, "with -serve: admission queue depth before load shedding")
	quotaHeap := flag.Int("quota-heap", 0, "with -serve: per-query cap on live WAM heap cells (0 = none)")
	quotaTrail := flag.Int("quota-trail", 0, "with -serve: per-query cap on trail entries (0 = none)")
	quotaPages := flag.Int("quota-pages", 0, "with -serve: per-query cap on EDB pages touched (0 = none)")
	quotaSolutions := flag.Int("quota-solutions", 0, "with -serve: per-query cap on solutions delivered (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "with -serve: grace for in-flight queries at shutdown before they are interrupted")
	backupPath := flag.String("backup", "", "stream an online backup of the knowledge base to this file and exit")
	restorePath := flag.String("restore", "", "before opening, restore the knowledge base from this backup file into -db, rolling -wal-archive forward")
	restoreLSN := flag.Uint64("restore-to-lsn", 0, "with -restore: stop WAL replay at this commit LSN (0 = whole archive)")
	walArchive := flag.String("wal-archive", "", "archive committed WAL segments into this directory at checkpoint (enables point-in-time recovery)")
	walArchiveBudget := flag.Int64("wal-archive-budget", 0, "cap the WAL archive's total bytes, pruning oldest segments first (0 = unlimited)")
	walCheckpointBytes := flag.Int64("wal-checkpoint-bytes", 0, "WAL size that triggers a checkpoint and log truncation (0 = store default)")
	flag.Parse()

	if *restorePath != "" {
		if *dbPath == "" {
			fmt.Fprintln(os.Stderr, "educe: -restore needs -db to name the restore target")
			os.Exit(2)
		}
		if err := runRestore(*restorePath, *dbPath, *walArchive, *restoreLSN); err != nil {
			fmt.Fprintln(os.Stderr, "educe: restore:", err)
			os.Exit(1)
		}
	}

	opts := educe.Options{
		StorePath:        *dbPath,
		CheckpointBytes:  *walCheckpointBytes,
		WALArchiveDir:    *walArchive,
		WALArchiveBudget: *walArchiveBudget,
	}
	switch *mode {
	case "compiled":
	case "source":
		opts.RuleStorage = educe.RuleStorageSource
	default:
		fmt.Fprintln(os.Stderr, "educe: -mode must be compiled or source")
		os.Exit(2)
	}
	st, err := educe.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "educe:", err)
		os.Exit(2)
	}
	opts.Strategy = st
	eng, err := educe.NewWithOptions(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "educe:", err)
		os.Exit(1)
	}
	defer eng.Close()

	if *restorePath != "" {
		if err := eng.KB().Check(); err != nil {
			fmt.Fprintln(os.Stderr, "educe: restore verification:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "% restore verified")
	}

	if *check || *repair {
		code := runCheck(eng, *repair)
		eng.Close()
		os.Exit(code)
	}

	var tracer *educe.Tracer
	if *tracePath != "" {
		w := os.Stderr
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "educe:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		tracer = educe.NewTracer(w)
		eng.SetTracer(tracer)
	}
	if *profile {
		eng.EnableProfiling(true)
	}
	if *slowQuery > 0 {
		if tracer == nil {
			// Slow-query records need a tracer; default to stderr.
			tracer = educe.NewTracer(os.Stderr)
			eng.SetTracer(tracer)
		}
		eng.SetSlowThreshold(*slowQuery)
	}
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		metricsSrv, err = startMetrics(*metricsAddr, eng.KB())
		if err != nil {
			fmt.Fprintln(os.Stderr, "educe:", err)
			os.Exit(1)
		}
	}

	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "educe:", err)
			os.Exit(1)
		}
		if *external {
			err = eng.ConsultExternal(string(src))
		} else {
			err = eng.Consult(string(src))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "educe: %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%% consulted %s\n", path)
	}

	if *backupPath != "" {
		code := runBackup(eng, *backupPath)
		eng.Close()
		os.Exit(code)
	}

	if *serveAddr != "" {
		if len(flag.Args()) > 0 && !*external {
			fmt.Fprintln(os.Stderr, "% note: files consulted without -external are private to this process's shell session and invisible to served queries")
		}
		cfg := server.Config{
			MaxSessions:   *maxSessions,
			QueueDepth:    *queueDepth,
			QueryTimeout:  *timeout,
			Profile:       *profile,
			SlowThreshold: *slowQuery,
			Tracer:        tracer,
			Quota: core.Quota{
				HeapCells:    *quotaHeap,
				TrailEntries: *quotaTrail,
				PagesTouched: *quotaPages,
				Solutions:    *quotaSolutions,
			},
		}
		if err := runServe(eng, *serveAddr, cfg, *drainTimeout, metricsSrv); err != nil {
			fmt.Fprintln(os.Stderr, "educe:", err)
			os.Exit(1)
		}
		return
	}

	if *goal != "" {
		g := strings.TrimSuffix(*goal, ".")
		if *sessions > 1 {
			if err := runConcurrent(eng, g, *sessions, tracer, *timeout, *profile, *slowQuery); err != nil {
				fmt.Fprintln(os.Stderr, "educe:", err)
				os.Exit(1)
			}
		} else if err := runBatch(eng, g, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "educe:", err)
			os.Exit(1)
		}
		if *stats {
			printStats(eng.Stats())
		}
		return
	}

	in := bufio.NewScanner(os.Stdin)
	fmt.Println("Educe* shell — enter goals terminated by '.', 'halt.' to quit")
	for {
		fmt.Print("?- ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		goal := strings.TrimSpace(in.Text())
		goal = strings.TrimSuffix(goal, ".")
		if goal == "" {
			continue
		}
		if goal == "halt" {
			return
		}
		runGoal(eng, in, goal, *timeout)
		if *stats {
			printStats(eng.Stats())
		}
	}
}

func runGoal(eng *educe.Engine, in *bufio.Scanner, goal string, timeout time.Duration) {
	eng.SetTimeout(timeout)
	sols, err := eng.Query(goal)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer sols.Close()
	any := false
	for sols.Next() {
		any = true
		names := sols.Vars()
		sort.Strings(names)
		if len(names) == 0 {
			fmt.Println("true.")
			return
		}
		parts := make([]string, 0, len(names))
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s = %s", n, sols.Binding(n)))
		}
		fmt.Print(strings.Join(parts, ", "), " ")
		if !in.Scan() {
			return
		}
		more := strings.TrimSpace(in.Text())
		if more != ";" && more != "" {
			fmt.Println(".")
			return
		}
	}
	if err := sols.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	if !any {
		fmt.Println("false.")
	} else {
		fmt.Println("no more solutions.")
	}
}

func printStats(st core.Stats) {
	fmt.Printf("%% instrs=%d calls=%d choicepoints=%d (elided %d) gc=%d pause=%v heap-peak=%d\n",
		st.Machine.Instructions, st.Machine.Calls, st.Machine.ChoicePoints,
		st.Machine.ChoicePointsElided, st.Machine.GCRuns,
		time.Duration(st.Machine.GCPauseNS), st.Machine.HeapPeak)
	fmt.Printf("%% edb: retrievals=%d candidates=%d io: acc=%d rd=%d wr=%d\n",
		st.EDB.Retrievals, st.EDB.CandidatesReturned,
		st.IO.Accesses, st.IO.Reads, st.IO.Writes)
	fmt.Printf("%% session-io: acc=%d rd=%d wr=%d pages-touched=%d\n",
		st.SessionIO.Accesses, st.SessionIO.Reads, st.SessionIO.Writes,
		st.Cost.PagesTouched)
	fmt.Printf("%% preunify: selectivity %s  code-cache: %s  dict: %s\n",
		obs.RatioString(st.Cost.ClausesPassed, st.Cost.ClausesScanned),
		obs.RatioString(st.Cost.CacheHits, st.Cost.CacheHits+st.Cost.CacheMisses),
		obs.RatioString(st.Dict.Hits, st.Dict.Hits+st.Dict.Misses))
	ph := st.Phases
	fmt.Printf("%% phases: parse=%v compile=%v edb_fetch=%v preunify=%v link=%v exec=%v gc=%v store=%v\n",
		ph.Parse, ph.Compile, ph.EDBFetch, ph.PreUnify, ph.Link, ph.Exec, ph.GC, ph.Store)
}

// startMetrics exposes the KB metrics registry: a flat JSON snapshot at
// /metrics, the per-predicate profile at /debug/profile, and the
// standard expvar page at /debug/vars (the registry is published as the
// expvar "educe" map). Bind errors are returned synchronously; later
// serve errors are reported on stderr. The returned handle lets the
// drain path shut the listener down with the rest of the process instead
// of leaking it until exit.
func startMetrics(addr string, kb *educe.KnowledgeBase) (*http.Server, error) {
	reg := kb.Obs()
	expvar.Publish("educe", expvar.Func(func() any { return reg.Snapshot() }))
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/debug/profile", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(profileSnapshot(kb))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "educe: metrics:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "%% metrics on http://%s/metrics\n", ln.Addr())
	return srv, nil
}

// profileSnapshot is the /debug/profile document: the KB-wide
// per-predicate profile rows plus their totals.
func profileSnapshot(kb *educe.KnowledgeBase) map[string]any {
	t := kb.Profile()
	return map[string]any{
		"preds":  t.Snapshot(),
		"totals": t.Totals(),
	}
}

// runServe serves the query protocol until SIGINT/SIGTERM, then drains:
// stop accepting, let in-flight queries finish for drainTimeout, then
// interrupt them. The metrics listener (when present) is shut down with
// the query server. A clean drain exits 0.
func runServe(eng *educe.Engine, addr string, cfg server.Config, drainTimeout time.Duration, metricsSrv *http.Server) error {
	srv, err := server.New(eng.KB(), cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%% serving educe protocol on %s (%d sessions, queue %d)\n",
		ln.Addr(), cfg.MaxSessions, cfg.QueueDepth)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "%% %v: draining (up to %v)\n", s, drainTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if metricsSrv != nil {
		mctx, mcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer mcancel()
		metricsSrv.Shutdown(mctx)
	}
	fmt.Fprintln(os.Stderr, "% drained")
	return nil
}

// runBackup streams an online backup of the engine's knowledge base to
// path. A failed backup removes the partial file; the primary store is
// unaffected either way.
func runBackup(eng *educe.Engine, path string) int {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "educe: backup:", err)
		return 1
	}
	info, err := eng.KB().Backup(f)
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		fmt.Fprintln(os.Stderr, "educe: backup:", err)
		return 1
	}
	fmt.Printf("%% backup: %d pages, LSNs %d..%d -> %s\n",
		info.Pages, info.StartLSN, info.EndLSN, path)
	return 0
}

// runRestore rebuilds dbPath from the backup stream in srcPath, rolling
// archived WAL segments in archiveDir forward to targetLSN (0 = as far
// as the archive reaches). The caller reopens and verifies the result.
func runRestore(srcPath, dbPath, archiveDir string, targetLSN uint64) error {
	f, err := os.Open(srcPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := store.Restore(dbPath, f, archiveDir, targetLSN); err != nil {
		return err
	}
	if targetLSN != 0 {
		fmt.Fprintf(os.Stderr, "%% restored %s from %s at LSN %d\n", dbPath, srcPath, targetLSN)
	} else {
		fmt.Fprintf(os.Stderr, "%% restored %s from %s\n", dbPath, srcPath)
	}
	return nil
}

// runCheck verifies the knowledge base and, when asked, repairs what is
// derivable. Exit status 0 means the store is (now) sound.
func runCheck(eng *educe.Engine, repair bool) int {
	kb := eng.KB()
	err := kb.Check()
	if err == nil {
		fmt.Println("% knowledge base check: ok")
		return 0
	}
	fmt.Fprintln(os.Stderr, "educe: check:", err)
	if !repair {
		return 1
	}
	n, rerr := kb.Repair()
	fmt.Printf("%% repair: %d derived indexes rebuilt\n", n)
	if rerr != nil {
		fmt.Fprintln(os.Stderr, "educe: repair:", rerr)
		return 1
	}
	if err := kb.Check(); err != nil {
		fmt.Fprintln(os.Stderr, "educe: check after repair:", err)
		return 1
	}
	fmt.Println("% knowledge base check: ok after repair")
	return 0
}

// runBatch prints every solution of one goal.
func runBatch(eng *educe.Engine, goal string, timeout time.Duration) error {
	eng.SetTimeout(timeout)
	sols, err := eng.Query(goal)
	if err != nil {
		return err
	}
	defer sols.Close()
	n := 0
	for sols.Next() {
		n++
		names := sols.Vars()
		sort.Strings(names)
		if len(names) == 0 {
			fmt.Println("true.")
			return nil
		}
		parts := make([]string, 0, len(names))
		for _, v := range names {
			parts = append(parts, fmt.Sprintf("%s = %s", v, sols.Binding(v)))
		}
		fmt.Println(strings.Join(parts, ", "))
	}
	if err := sols.Err(); err != nil {
		return err
	}
	if n == 0 {
		fmt.Println("false.")
	}
	return nil
}

// runConcurrent answers one goal from n sessions sharing the engine's
// knowledge base, printing per-session solution counts and times. Only
// EDB-stored predicates are visible to the extra sessions; main-memory
// consults are private to the primary session.
func runConcurrent(eng *educe.Engine, goal string, n int, tracer *educe.Tracer, timeout time.Duration, profile bool, slowQuery time.Duration) error {
	kb := eng.KB()
	type result struct {
		count   int
		elapsed time.Duration
		err     error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := kb.NewSession()
			if err != nil {
				results[i].err = err
				return
			}
			defer s.Close()
			if tracer != nil {
				s.SetTracer(tracer)
			}
			if profile {
				s.EnableProfiling(true)
			}
			s.SetSlowThreshold(slowQuery)
			s.SetTimeout(timeout)
			t0 := time.Now()
			cnt, err := s.QueryCount(goal)
			results[i] = result{count: cnt, elapsed: time.Since(t0), err: err}
		}(i)
	}
	wg.Wait()
	total := time.Since(start)
	for i, r := range results {
		if r.err != nil {
			return fmt.Errorf("session %d: %w", i, r.err)
		}
		fmt.Printf("%% session %d: %d solutions in %v\n", i, r.count, r.elapsed)
	}
	fmt.Printf("%% %d sessions, wall time %v\n", n, total)
	return nil
}
