// Integrity: the paper's §5.3 application — database integrity checking
// by constraint specialisation. The constraint base and the specialiser
// live in the EDB as compiled code; each update is "preprocessed" into the
// residual checks it induces, without touching the stored facts.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/educe"
	"repro/internal/bench/icheck"
)

func main() {
	eng, err := educe.New()
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// The five constraints and the specialisation program, stored
	// compiled in the external database.
	if err := eng.ConsultExternal(icheck.Program); err != nil {
		log.Fatal(err)
	}

	updates := []string{
		"inserted(emp(9001, alice, dept_2, 95000, 17, 34, proj_3))",
		"inserted(emp(9002, bob, dept_9, 250000, 18, 30, proj_4))",  // violates salary cap
		"inserted(emp(9003, eve, dept_1, 80000, 9003, 41, proj_5))", // manages herself
		"deleted(emp(17, old, dept_0, 60000, 3, 55, proj_2))",
	}

	for _, u := range updates {
		q := fmt.Sprintf("specialise_all(%s, Pairs)", u)
		t0 := time.Now()
		sol, ok, err := eng.QueryOnce(q)
		if err != nil || !ok {
			log.Fatalf("%s: ok=%v err=%v", u, ok, err)
		}
		fmt.Printf("update:  %s\n", u)
		fmt.Printf("  preprocess time: %v\n", time.Since(t0))
		fmt.Printf("  residual checks: %s\n\n", sol["Pairs"])
	}

	st := eng.Stats()
	fmt.Printf("engine: %d WAM instructions, %d EDB retrievals, heap peak %d cells\n",
		st.Machine.Instructions, st.EDB.Retrievals, st.Machine.HeapPeak)
}
