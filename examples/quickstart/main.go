// Quickstart: the smallest complete Educe* program — rules in main memory,
// facts in the external database, one query spanning both.
package main

import (
	"fmt"
	"log"

	"repro/educe"
)

func main() {
	eng, err := educe.New() // in-memory EDB
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Facts go to the external database: they are compiled to relocatable
	// WAM code, stored with per-argument index keys, and retrieved by
	// pre-unification when queried.
	err = eng.ConsultExternal(`
		parent(tom, bob).   parent(tom, liz).
		parent(bob, ann).   parent(bob, pat).
		parent(pat, jim).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Rules stay in main memory, compiled once.
	err = eng.Consult(`
		ancestor(X, Y) :- parent(X, Y).
		ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
	`)
	if err != nil {
		log.Fatal(err)
	}

	sols, err := eng.Query("ancestor(tom, Who)")
	if err != nil {
		log.Fatal(err)
	}
	defer sols.Close()
	fmt.Println("tom's descendants:")
	for sols.Next() {
		fmt.Println("  ", sols.Binding("Who"))
	}
	if err := sols.Err(); err != nil {
		log.Fatal(err)
	}

	// The engine keeps statistics on how selective the EDB retrieval was.
	st := eng.Stats()
	fmt.Printf("EDB retrievals: %d, candidate clauses returned: %d (of %d stored)\n",
		st.EDB.Retrievals, st.EDB.CandidatesReturned, st.EDB.ClausesStored)
}
