// Transport: the paper's motivating scenario (§5.1) in miniature — a
// public-transport knowledge base with timetable facts in the external
// database and route-finding rules in main memory, queried both ways and
// compared against the Educe baseline.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/educe"
)

const network = `
% line, kind, from, to, minutes
seg(u3, ubahn, marienplatz, sendlinger_tor, 2).
seg(u3, ubahn, sendlinger_tor, goetheplatz, 2).
seg(u3, ubahn, goetheplatz, poccistrasse, 2).
seg(u6, ubahn, marienplatz, odeonsplatz, 2).
seg(u6, ubahn, odeonsplatz, universitaet, 2).
seg(t17, tram, sendlinger_tor, mueller_str, 4).
seg(t17, tram, mueller_str, isartor, 4).
seg(b52, bus, goetheplatz, theresienwiese, 6).
seg(b52, bus, theresienwiese, hauptbahnhof, 5).
seg(s1, sbahn, hauptbahnhof, marienplatz, 3).
seg(s1, sbahn, marienplatz, isartor, 2).
`

const rules = `
direct(F, T, Line, M) :- seg(Line, _, F, T, M).
route(F, T, M) :- direct(F, T, _, M).
route(F, T, M) :-
	seg(L1, _, F, Mid, M1),
	seg(L2, _, Mid, T, M2),
	L1 \= L2,
	M is M1 + M2 + 5.   % five minutes to change
`

func main() {
	star, err := educe.New()
	if err != nil {
		log.Fatal(err)
	}
	defer star.Close()
	if err := star.ConsultExternal(network); err != nil {
		log.Fatal(err)
	}
	if err := star.Consult(rules); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Direct connections from marienplatz:")
	sols, err := star.Query("direct(marienplatz, To, Line, M)")
	if err != nil {
		log.Fatal(err)
	}
	for sols.Next() {
		fmt.Printf("  %-16s via %-4s %s min\n",
			sols.Binding("To"), sols.Binding("Line"), sols.Binding("M"))
	}
	sols.Close()

	fmt.Println("\nRoutes sendlinger_tor -> theresienwiese (at most one change):")
	sols, err = star.Query("route(sendlinger_tor, theresienwiese, M)")
	if err != nil {
		log.Fatal(err)
	}
	for sols.Next() {
		fmt.Printf("  %s minutes\n", sols.Binding("M"))
	}
	sols.Close()

	// The same knowledge base under the Educe baseline (source-form rules
	// plus an interpreter), timed side by side.
	base, err := educe.NewWithOptions(educe.Options{RuleStorage: educe.RuleStorageSource})
	if err != nil {
		log.Fatal(err)
	}
	defer base.Close()
	if err := base.ConsultExternal(network + rules); err != nil {
		log.Fatal(err)
	}

	starExt, err := educe.New()
	if err != nil {
		log.Fatal(err)
	}
	defer starExt.Close()
	if err := starExt.ConsultExternal(network + rules); err != nil {
		log.Fatal(err)
	}

	const q = "route(marienplatz, X, M)"
	const reps = 200
	timeIt := func(e *educe.Engine) time.Duration {
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := e.QueryAll(q); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(t0) / reps
	}
	fmt.Printf("\nEverything in the EDB, %d repetitions of %q:\n", reps, q)
	fmt.Printf("  Educe* (compiled code in EDB):  %v per query\n", timeIt(starExt))
	fmt.Printf("  Educe  (source text in EDB):    %v per query\n", timeIt(base))
}
