// Dualstrategy: the paper's §4 closing point — the same stored data served
// both set-at-a-time (relational operators) and term-at-a-time (Prolog
// goals over the bound relation), freely mixed within one session.
package main

import (
	"fmt"
	"log"

	"repro/educe"
	"repro/internal/rel"
)

func main() {
	eng, err := educe.New()
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// A flat relation in the storage engine, with an index.
	r, err := eng.CreateRelation(rel.Schema{
		Name: "employee",
		Attrs: []rel.Attr{
			{Name: "id", Type: rel.Int},
			{Name: "name", Type: rel.String},
			{Name: "dept", Type: rel.String},
			{Name: "salary", Type: rel.Int},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	depts := []string{"kb", "db", "os", "net"}
	for i := 0; i < 1000; i++ {
		err := r.Insert(rel.Tuple{
			rel.IntV(int64(i)),
			rel.StringV(fmt.Sprintf("emp%04d", i)),
			rel.StringV(depts[i%4]),
			rel.IntV(int64(30000 + (i*striding)%90000)),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := r.CreateIndex("id"); err != nil {
		log.Fatal(err)
	}
	if err := r.CreateIndex("salary"); err != nil {
		log.Fatal(err)
	}

	// Set-oriented: relational operator tree (selection + projection).
	fmt.Println("Set-oriented: employees with salary in [115000, 120000):")
	it := rel.Project(
		rel.IndexScan(r, "salary", rel.IntV(115000), rel.IntV(119999)),
		[]int{1, 3},
	)
	rows, err := rel.Collect(it)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range rows {
		fmt.Printf("  %s earns %s\n", t[0], t[1])
	}

	// Term-oriented: the same relation as a Prolog predicate, driven by
	// rules with negation and aggregation.
	if err := eng.BindRelation("employee"); err != nil {
		log.Fatal(err)
	}
	err = eng.Consult(`
		dept_size(D, N) :- findall(x, employee(_, _, D, _), L), length(L, N).
		top_earner(D, Name, S) :-
			employee(_, Name, D, S),
			\+ ( employee(_, _, D, S2), S2 > S ).
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTerm-oriented: department sizes and top earners:")
	for _, d := range depts {
		q := fmt.Sprintf("dept_size(%s, N), top_earner(%s, Who, S)", d, d)
		sol, ok, err := eng.QueryOnce(q)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Printf("  %-3s: %s employees, top earner %s at %s\n",
				d, sol["N"], sol["Who"], sol["S"])
		}
	}

	// Mixed: a set-oriented pre-selection feeding a term-oriented check.
	fmt.Println("\nMixed: high earners validated through the Prolog side:")
	high, err := rel.Collect(rel.IndexScan(r, "salary", rel.IntV(118000), rel.IntV(119999)))
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range high {
		q := fmt.Sprintf("top_earner(%s, W, _), W == %s", t[2].S, t[1].S)
		if _, ok, _ := eng.QueryOnce(q); ok {
			fmt.Printf("  %s is the top earner of %s\n", t[1].S, t[2].S)
		}
	}

	// Set-at-a-time recursion (DESIGN.md §14): a reporting chain stored
	// in the EDB, its transitive closure answered by the semi-naive
	// fixpoint driver instead of tuple-at-a-time resolution. A session
	// opts in with WithStrategy (or educe_strategy/1 from Prolog).
	var chain string
	for i := 0; i < 19; i++ {
		chain += fmt.Sprintf("boss(m%d, m%d).\n", i, i+1)
	}
	chain += "above(X, Y) :- boss(X, Y).\n"
	chain += "above(X, Z) :- boss(X, Y), above(Y, Z).\n"
	if err := eng.ConsultExternal(chain); err != nil {
		log.Fatal(err)
	}
	s, err := eng.KB().NewSession(educe.WithStrategy(educe.StrategySet))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	n, err := s.QueryCount("above(m0, X)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSet-at-a-time recursion: m0 is above %d people (semi-naive fixpoint)\n", n)
}

const striding = 7919 // prime stride spreads salaries deterministically
