// Persistence: a knowledge base that survives the process — compiled
// clauses stored in a page file, reopened by a second engine, extended
// with assert/retract, and inspected through the procedures table.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/educe"
)

func main() {
	dir, err := os.MkdirTemp("", "educe-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "kb.edb")

	// Session 1: build the knowledge base and close it.
	{
		eng, err := educe.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		err = eng.ConsultExternal(`
			capital(germany, berlin).
			capital(france, paris).
			capital(italy, rome).
			neighbour(germany, france).
			neighbour(france, italy).
			reachable(A, B) :- neighbour(A, B).
			reachable(A, B) :- neighbour(B, A).
			reachable(A, C) :- neighbour(A, B), reachable(B, C).
		`)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("session 1: stored compiled knowledge base in", path)
	}

	// Session 2: reopen — the procedures table reconnects everything.
	eng, err := educe.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	fmt.Println("\nsession 2: stored procedures:")
	for _, p := range eng.DB().Procs() {
		fmt.Printf("  %-14s %d clauses (form=%d, indexed args=%d)\n",
			p.Indicator(), p.ClauseCount, p.Form, p.K)
	}

	sol, ok, err := eng.QueryOnce("capital(france, C)")
	if err != nil || !ok {
		log.Fatalf("capital query: ok=%v err=%v", ok, err)
	}
	fmt.Println("\ncapital of france:", sol["C"])

	n, err := eng.QueryCount("reachable(germany, X), capital(X, _)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("countries reachable from germany (with capitals):", n)

	// Dynamic updates live alongside the stored base.
	if _, err := eng.QueryAll("assert(visited(berlin)), assert(visited(rome))"); err != nil {
		log.Fatal(err)
	}
	sols, err := eng.QueryAll("capital(Land, City), visited(City)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvisited capitals:")
	for _, s := range sols {
		fmt.Printf("  %s (%s)\n", s["City"], s["Land"])
	}
}
