// Package lex tokenises ISO-style Prolog source text.
//
// It recognises names, quoted atoms, variables, integers (decimal, 0x, 0o,
// 0b, 0'c character codes), floats, double-quoted strings, punctuation and
// the clause terminator. Line (%) and block (/* */) comments are skipped.
package lex

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind classifies a token.
type Kind int

const (
	// EOF marks the end of input.
	EOF Kind = iota
	// AtomTok is a name, symbolic sequence or quoted atom.
	AtomTok
	// VarTok is a variable name (starts with '_' or an upper-case letter).
	VarTok
	// IntTok is an integer literal.
	IntTok
	// FloatTok is a floating point literal.
	FloatTok
	// StrTok is a double-quoted string literal (content, unquoted).
	StrTok
	// PunctTok is one of ( ) [ ] { } , |  — and "((" for the special case
	// of an atom immediately followed by '(' (functor application).
	PunctTok
	// EndTok is the clause terminator '.'.
	EndTok
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "eof"
	case AtomTok:
		return "atom"
	case VarTok:
		return "var"
	case IntTok:
		return "integer"
	case FloatTok:
		return "float"
	case StrTok:
		return "string"
	case PunctTok:
		return "punct"
	case EndTok:
		return "end"
	}
	return "unknown"
}

// Token is a single lexical item.
type Token struct {
	Kind Kind
	// Text is the token's content: for AtomTok the (unquoted) atom name,
	// for IntTok/FloatTok the literal digits, for StrTok the unescaped
	// string content, for PunctTok the punctuation character.
	Text string
	// Int holds the value for IntTok.
	Int int64
	// Float holds the value for FloatTok.
	Float float64
	// FunctorOpen is true for an AtomTok immediately followed by '(' with
	// no intervening layout — i.e. the start of a compound term.
	FunctorOpen bool
	// Line and Col give the 1-based source position of the token start.
	Line, Col int
}

// Error is a lexical error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("lex: %d:%d: %s", e.Line, e.Col, e.Msg) }

// Lexer produces tokens from a source string.
type Lexer struct {
	src       string
	pos       int
	line, col int

	peeked  bool
	peekTok Token
	peekErr error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Peek returns the next token without consuming it.
func (l *Lexer) Peek() (Token, error) {
	if !l.peeked {
		l.peekTok, l.peekErr = l.lex()
		l.peeked = true
	}
	return l.peekTok, l.peekErr
}

// Next consumes and returns the next token.
func (l *Lexer) Next() (Token, error) {
	if l.peeked {
		l.peeked = false
		return l.peekTok, l.peekErr
	}
	return l.lex()
}

func (l *Lexer) errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) cur() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *Lexer) at(off int) rune {
	p := l.pos + off
	if p >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[p:])
	return r
}

func (l *Lexer) advance() rune {
	r, n := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += n
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipLayout() error {
	for {
		r := l.cur()
		switch {
		case r == -1:
			return nil
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '%':
			for l.cur() != -1 && l.cur() != '\n' {
				l.advance()
			}
		case r == '/' && l.at(1) == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.cur() == -1 {
					return l.errf(line, col, "unterminated block comment")
				}
				if l.cur() == '*' && l.at(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
}

func (l *Lexer) lex() (Token, error) {
	if err := l.skipLayout(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	r := l.cur()
	if r == -1 {
		return Token{Kind: EOF, Line: line, Col: col}, nil
	}

	switch {
	case r >= '0' && r <= '9':
		return l.lexNumber(line, col)
	case r == '_' || unicode.IsUpper(r):
		start := l.pos
		for isAlnum(l.cur()) {
			l.advance()
		}
		return Token{Kind: VarTok, Text: l.src[start:l.pos], Line: line, Col: col}, nil
	case unicode.IsLower(r):
		start := l.pos
		for isAlnum(l.cur()) {
			l.advance()
		}
		tok := Token{Kind: AtomTok, Text: l.src[start:l.pos], Line: line, Col: col}
		tok.FunctorOpen = l.cur() == '('
		return tok, nil
	case r == '\'':
		return l.lexQuoted(line, col)
	case r == '"':
		return l.lexString(line, col)
	case r == '(' || r == ')' || r == '[' || r == ']' || r == '{' || r == '}' || r == ',' || r == '|':
		l.advance()
		return Token{Kind: PunctTok, Text: string(r), Line: line, Col: col}, nil
	case r == '!' || r == ';':
		l.advance()
		tok := Token{Kind: AtomTok, Text: string(r), Line: line, Col: col}
		tok.FunctorOpen = l.cur() == '('
		return tok, nil
	case isSymbol(r):
		start := l.pos
		for isSymbol(l.cur()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		// A solitary '.' followed by layout or EOF terminates a clause.
		if text == "." {
			return Token{Kind: EndTok, Text: ".", Line: line, Col: col}, nil
		}
		tok := Token{Kind: AtomTok, Text: text, Line: line, Col: col}
		tok.FunctorOpen = l.cur() == '('
		return tok, nil
	}
	return Token{}, l.errf(line, col, "unexpected character %q", r)
}

func (l *Lexer) lexNumber(line, col int) (Token, error) {
	start := l.pos
	// Radix and char-code literals.
	if l.cur() == '0' {
		switch l.at(1) {
		case '\'':
			l.advance()
			l.advance()
			r := l.cur()
			if r == -1 {
				return Token{}, l.errf(line, col, "unterminated character code")
			}
			if r == '\\' {
				l.advance()
				c, err := l.lexEscape(line, col, '\'')
				if err != nil {
					return Token{}, err
				}
				return Token{Kind: IntTok, Int: int64(c), Text: string(c), Line: line, Col: col}, nil
			}
			if r == '\'' && l.at(1) == '\'' { // 0''' is the quote itself
				l.advance()
				l.advance()
				return Token{Kind: IntTok, Int: int64('\''), Line: line, Col: col}, nil
			}
			l.advance()
			return Token{Kind: IntTok, Int: int64(r), Text: string(r), Line: line, Col: col}, nil
		case 'x', 'o', 'b':
			base := map[rune]int64{'x': 16, 'o': 8, 'b': 2}[l.at(1)]
			l.advance()
			l.advance()
			var v int64
			n := 0
			for {
				d := digitVal(l.cur())
				if d < 0 || int64(d) >= base {
					break
				}
				v = v*base + int64(d)
				n++
				l.advance()
			}
			if n == 0 {
				return Token{}, l.errf(line, col, "malformed radix literal")
			}
			return Token{Kind: IntTok, Int: v, Text: l.src[start:l.pos], Line: line, Col: col}, nil
		}
	}
	for l.cur() >= '0' && l.cur() <= '9' {
		l.advance()
	}
	isFloat := false
	if l.cur() == '.' && l.at(1) >= '0' && l.at(1) <= '9' {
		isFloat = true
		l.advance()
		for l.cur() >= '0' && l.cur() <= '9' {
			l.advance()
		}
	}
	if l.cur() == 'e' || l.cur() == 'E' {
		save := l.pos
		saveLine, saveCol := l.line, l.col
		l.advance()
		if l.cur() == '+' || l.cur() == '-' {
			l.advance()
		}
		if l.cur() >= '0' && l.cur() <= '9' {
			isFloat = true
			for l.cur() >= '0' && l.cur() <= '9' {
				l.advance()
			}
		} else {
			l.pos, l.line, l.col = save, saveLine, saveCol
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return Token{}, l.errf(line, col, "malformed float %q", text)
		}
		return Token{Kind: FloatTok, Float: f, Text: text, Line: line, Col: col}, nil
	}
	var v int64
	for _, c := range text {
		v = v*10 + int64(c-'0')
	}
	return Token{Kind: IntTok, Int: v, Text: text, Line: line, Col: col}, nil
}

func (l *Lexer) lexQuoted(line, col int) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		r := l.cur()
		switch r {
		case -1:
			return Token{}, l.errf(line, col, "unterminated quoted atom")
		case '\'':
			l.advance()
			if l.cur() == '\'' { // doubled quote
				b.WriteByte('\'')
				l.advance()
				continue
			}
			tok := Token{Kind: AtomTok, Text: b.String(), Line: line, Col: col}
			tok.FunctorOpen = l.cur() == '('
			return tok, nil
		case '\\':
			l.advance()
			if l.cur() == '\n' { // line continuation
				l.advance()
				continue
			}
			c, err := l.lexEscape(line, col, '\'')
			if err != nil {
				return Token{}, err
			}
			b.WriteRune(c)
		default:
			b.WriteRune(r)
			l.advance()
		}
	}
}

func (l *Lexer) lexString(line, col int) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		r := l.cur()
		switch r {
		case -1:
			return Token{}, l.errf(line, col, "unterminated string")
		case '"':
			l.advance()
			if l.cur() == '"' {
				b.WriteByte('"')
				l.advance()
				continue
			}
			return Token{Kind: StrTok, Text: b.String(), Line: line, Col: col}, nil
		case '\\':
			l.advance()
			if l.cur() == '\n' {
				l.advance()
				continue
			}
			c, err := l.lexEscape(line, col, '"')
			if err != nil {
				return Token{}, err
			}
			b.WriteRune(c)
		default:
			b.WriteRune(r)
			l.advance()
		}
	}
}

// lexEscape reads the body of an escape sequence after the backslash.
func (l *Lexer) lexEscape(line, col int, quote rune) (rune, error) {
	r := l.cur()
	switch r {
	case 'n':
		l.advance()
		return '\n', nil
	case 't':
		l.advance()
		return '\t', nil
	case 'r':
		l.advance()
		return '\r', nil
	case 'a':
		l.advance()
		return '\a', nil
	case 'b':
		l.advance()
		return '\b', nil
	case 'f':
		l.advance()
		return '\f', nil
	case 'v':
		l.advance()
		return '\v', nil
	case '0':
		l.advance()
		return 0, nil
	case '\\', '\'', '"', '`':
		l.advance()
		return r, nil
	case 'x':
		l.advance()
		var v rune
		n := 0
		for {
			d := digitVal(l.cur())
			if d < 0 || d >= 16 {
				break
			}
			v = v*16 + rune(d)
			n++
			l.advance()
		}
		if n == 0 {
			return 0, l.errf(line, col, "malformed \\x escape")
		}
		if l.cur() == '\\' {
			l.advance()
		}
		return v, nil
	}
	return 0, l.errf(line, col, "unknown escape \\%c", r)
}

func digitVal(r rune) int {
	switch {
	case r >= '0' && r <= '9':
		return int(r - '0')
	case r >= 'a' && r <= 'f':
		return int(r-'a') + 10
	case r >= 'A' && r <= 'F':
		return int(r-'A') + 10
	}
	return -1
}

func isAlnum(r rune) bool {
	return r == '_' || (r >= '0' && r <= '9') || unicode.IsLetter(r)
}

func isSymbol(r rune) bool {
	switch r {
	case '+', '-', '*', '/', '\\', '^', '<', '>', '=', '~', ':', '.', '?', '@', '#', '&', '$':
		return true
	}
	return false
}
