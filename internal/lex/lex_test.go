package lex

import "testing"

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	l := New(src)
	var toks []Token
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks
		}
	}
}

func TestSimpleClause(t *testing.T) {
	toks := kinds(t, "p(a, B) :- q(B).")
	want := []struct {
		k Kind
		s string
	}{
		{AtomTok, "p"}, {PunctTok, "("}, {AtomTok, "a"}, {PunctTok, ","},
		{VarTok, "B"}, {PunctTok, ")"}, {AtomTok, ":-"},
		{AtomTok, "q"}, {PunctTok, "("}, {VarTok, "B"}, {PunctTok, ")"},
		{EndTok, "."}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.k || toks[i].Text != w.s {
			t.Errorf("token %d = (%v,%q), want (%v,%q)", i, toks[i].Kind, toks[i].Text, w.k, w.s)
		}
	}
	if !toks[0].FunctorOpen {
		t.Error("p should have FunctorOpen")
	}
	if toks[2].FunctorOpen {
		t.Error("a should not have FunctorOpen")
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
		i    int64
		f    float64
	}{
		{"42", IntTok, 42, 0},
		{"0", IntTok, 0, 0},
		{"3.14", FloatTok, 0, 3.14},
		{"2.0e3", FloatTok, 0, 2000},
		{"1e5", FloatTok, 0, 100000},
		{"0xff", IntTok, 255, 0},
		{"0o17", IntTok, 15, 0},
		{"0b101", IntTok, 5, 0},
		{"0'a", IntTok, 97, 0},
		{"0' ", IntTok, 32, 0},
		{"0'\\n", IntTok, 10, 0},
		{"0'''", IntTok, 39, 0},
	}
	for _, c := range cases {
		l := New(c.src)
		tok, err := l.Next()
		if err != nil {
			t.Errorf("lex %q: %v", c.src, err)
			continue
		}
		if tok.Kind != c.kind {
			t.Errorf("lex %q: kind %v, want %v", c.src, tok.Kind, c.kind)
			continue
		}
		if c.kind == IntTok && tok.Int != c.i {
			t.Errorf("lex %q: int %d, want %d", c.src, tok.Int, c.i)
		}
		if c.kind == FloatTok && tok.Float != c.f {
			t.Errorf("lex %q: float %g, want %g", c.src, tok.Float, c.f)
		}
	}
}

func TestIntDotEOF(t *testing.T) {
	toks := kinds(t, "7.")
	if toks[0].Kind != IntTok || toks[0].Int != 7 {
		t.Fatalf("got %v", toks[0])
	}
	if toks[1].Kind != EndTok {
		t.Fatalf("expected end token, got %v", toks[1])
	}
}

func TestQuotedAtoms(t *testing.T) {
	cases := []struct{ src, want string }{
		{"'hello world'", "hello world"},
		{"'it''s'", "it's"},
		{`'a\nb'`, "a\nb"},
		{`'a\\b'`, `a\b`},
		{`'a\'b'`, "a'b"},
		{`'\x41\'`, "A"},
	}
	for _, c := range cases {
		l := New(c.src)
		tok, err := l.Next()
		if err != nil {
			t.Errorf("lex %q: %v", c.src, err)
			continue
		}
		if tok.Kind != AtomTok || tok.Text != c.want {
			t.Errorf("lex %q = (%v,%q), want atom %q", c.src, tok.Kind, tok.Text, c.want)
		}
	}
}

func TestStrings(t *testing.T) {
	l := New(`"ab""c\n"`)
	tok, err := l.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tok.Kind != StrTok || tok.Text != "ab\"c\n" {
		t.Fatalf("got (%v,%q)", tok.Kind, tok.Text)
	}
}

func TestComments(t *testing.T) {
	toks := kinds(t, "a. % line comment\n/* block\ncomment */ b.")
	var atoms []string
	for _, tok := range toks {
		if tok.Kind == AtomTok {
			atoms = append(atoms, tok.Text)
		}
	}
	if len(atoms) != 2 || atoms[0] != "a" || atoms[1] != "b" {
		t.Fatalf("atoms = %v", atoms)
	}
}

func TestSymbolicAtoms(t *testing.T) {
	toks := kinds(t, "X =.. Y.")
	if toks[1].Kind != AtomTok || toks[1].Text != "=.." {
		t.Fatalf("got %v %q", toks[1].Kind, toks[1].Text)
	}
}

func TestSolo(t *testing.T) {
	toks := kinds(t, "! ; !.")
	if toks[0].Text != "!" || toks[1].Text != ";" {
		t.Fatalf("solo chars mis-lexed: %v", toks)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{"'abc", `"abc`, "/* unterminated", "0x"}
	for _, src := range bad {
		l := New(src)
		var err error
		for err == nil {
			var tok Token
			tok, err = l.Next()
			if err == nil && tok.Kind == EOF {
				t.Errorf("lex %q: expected error", src)
				break
			}
		}
	}
}

func TestPositions(t *testing.T) {
	l := New("a\n  bc")
	tok, _ := l.Next()
	if tok.Line != 1 || tok.Col != 1 {
		t.Errorf("a at %d:%d", tok.Line, tok.Col)
	}
	tok, _ = l.Next()
	if tok.Line != 2 || tok.Col != 3 {
		t.Errorf("bc at %d:%d", tok.Line, tok.Col)
	}
}

func TestPeekStable(t *testing.T) {
	l := New("a b")
	p1, _ := l.Peek()
	p2, _ := l.Peek()
	if p1 != p2 {
		t.Fatal("Peek not stable")
	}
	n, _ := l.Next()
	if n != p1 {
		t.Fatal("Next != Peek")
	}
}
