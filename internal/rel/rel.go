// Package rel is the set-oriented relational layer of Educe*: typed
// relations over the storage engine, with sequential and index access
// paths and the classical operators (selection, projection, nested-loop
// and index joins). The Wisconsin experiments (paper §5.2) run through
// this package, and the engine's goal-oriented evaluation strategy uses
// it for flat-relation queries.
package rel

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/store"
)

// Type is an attribute type. Relational attributes are atomic, as in the
// paper's discussion (§2.2): type information lives in the catalog, not
// with each value.
type Type uint8

// Attribute types.
const (
	Int Type = iota
	Float
	String
)

func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	}
	return "?"
}

// Attr is one attribute of a schema.
type Attr struct {
	Name string
	Type Type
}

// Schema describes a relation.
type Schema struct {
	Name  string
	Attrs []Attr
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Value is one attribute value.
type Value struct {
	Type Type
	I    int64
	F    float64
	S    string
}

// IntV makes an integer value.
func IntV(v int64) Value { return Value{Type: Int, I: v} }

// FloatV makes a float value.
func FloatV(v float64) Value { return Value{Type: Float, F: v} }

// StringV makes a string value.
func StringV(v string) Value { return Value{Type: String, S: v} }

func (v Value) String() string {
	switch v.Type {
	case Int:
		return fmt.Sprintf("%d", v.I)
	case Float:
		return fmt.Sprintf("%g", v.F)
	default:
		return v.S
	}
}

// Compare orders two values of the same type.
func (v Value) Compare(o Value) int {
	switch v.Type {
	case Int:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case Float:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
		return 0
	default:
		return bytes.Compare([]byte(v.S), []byte(o.S))
	}
}

// Key renders the value as an order-preserving byte key for B-tree use.
func (v Value) Key() []byte {
	switch v.Type {
	case Int:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.I)^(1<<63))
		return b[:]
	case Float:
		bits := math.Float64bits(v.F)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], bits)
		return b[:]
	default:
		return []byte(v.S)
	}
}

// Tuple is a row.
type Tuple []Value

func encodeTuple(t Tuple) []byte {
	var b bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range t {
		b.WriteByte(byte(v.Type))
		switch v.Type {
		case Int:
			n := binary.PutVarint(tmp[:], v.I)
			b.Write(tmp[:n])
		case Float:
			binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(v.F))
			b.Write(tmp[:8])
		case String:
			n := binary.PutUvarint(tmp[:], uint64(len(v.S)))
			b.Write(tmp[:n])
			b.WriteString(v.S)
		}
	}
	return b.Bytes()
}

func decodeTuple(data []byte, schema *Schema) (Tuple, error) {
	r := bytes.NewReader(data)
	out := make(Tuple, 0, len(schema.Attrs))
	for range schema.Attrs {
		tb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		v := Value{Type: Type(tb)}
		switch v.Type {
		case Int:
			v.I, err = binary.ReadVarint(r)
		case Float:
			var b [8]byte
			_, err = r.Read(b[:])
			v.F = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
		case String:
			var n uint64
			n, err = binary.ReadUvarint(r)
			if err == nil && n > 0 {
				buf := make([]byte, n)
				_, err = r.Read(buf)
				v.S = string(buf)
			}
		default:
			return nil, fmt.Errorf("rel: bad value type %d", tb)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Relation is a stored relation with optional per-attribute indexes.
type Relation struct {
	Schema  Schema
	heap    *store.Heap
	indexes map[int]*store.BTree
	count   int
	cat     *Catalog
}

// Count returns the number of tuples.
func (r *Relation) Count() int { return r.count }

// Insert appends a tuple, maintaining indexes.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != len(r.Schema.Attrs) {
		return fmt.Errorf("rel: %s: tuple arity %d, want %d", r.Schema.Name, len(t), len(r.Schema.Attrs))
	}
	for i, v := range t {
		if v.Type != r.Schema.Attrs[i].Type {
			return fmt.Errorf("rel: %s.%s: value type %v, want %v",
				r.Schema.Name, r.Schema.Attrs[i].Name, v.Type, r.Schema.Attrs[i].Type)
		}
	}
	rid, err := r.heap.Insert(encodeTuple(t))
	if err != nil {
		return err
	}
	for attr, idx := range r.indexes {
		if err := idx.Insert(t[attr].Key(), rid.Pack()); err != nil {
			return err
		}
	}
	r.count++
	return r.cat.saveRelation(r)
}

// InsertAll bulk-inserts tuples, deferring the catalog write to the end.
func (r *Relation) InsertAll(ts []Tuple) error {
	for _, t := range ts {
		rid, err := r.heap.Insert(encodeTuple(t))
		if err != nil {
			return err
		}
		for attr, idx := range r.indexes {
			if err := idx.Insert(t[attr].Key(), rid.Pack()); err != nil {
				return err
			}
		}
		r.count++
	}
	return r.cat.saveRelation(r)
}

// CreateIndex builds a B-tree index on the attribute, indexing existing
// tuples.
func (r *Relation) CreateIndex(attrName string) error {
	attr := r.Schema.AttrIndex(attrName)
	if attr < 0 {
		return fmt.Errorf("rel: %s has no attribute %s", r.Schema.Name, attrName)
	}
	if _, ok := r.indexes[attr]; ok {
		return nil
	}
	bt, err := store.CreateBTree(r.cat.st.Pool())
	if err != nil {
		return err
	}
	err = r.heap.Scan(func(rid store.RID, data []byte) (bool, error) {
		t, err := decodeTuple(data, &r.Schema)
		if err != nil {
			return false, err
		}
		return true, bt.Insert(t[attr].Key(), rid.Pack())
	})
	if err != nil {
		return err
	}
	r.indexes[attr] = bt
	return r.cat.saveRelation(r)
}

// HasIndex reports whether the attribute is indexed.
func (r *Relation) HasIndex(attrName string) bool {
	attr := r.Schema.AttrIndex(attrName)
	_, ok := r.indexes[attr]
	return ok
}

// Get fetches the tuple at rid.
func (r *Relation) Get(rid store.RID) (Tuple, error) {
	data, err := r.heap.Get(rid)
	if err != nil {
		return nil, err
	}
	return decodeTuple(data, &r.Schema)
}
