package rel

import (
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/store"
)

func memCatalog(t *testing.T) *Catalog {
	t.Helper()
	st, err := store.Open("", 256)
	if err != nil {
		t.Fatal(err)
	}
	c, err := OpenCatalog(st)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sampleRel(t *testing.T, c *Catalog, n int) *Relation {
	t.Helper()
	r, err := c.Create(Schema{
		Name: "sample",
		Attrs: []Attr{
			{Name: "id", Type: Int},
			{Name: "grp", Type: Int},
			{Name: "name", Type: String},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ts []Tuple
	for i := 0; i < n; i++ {
		ts = append(ts, Tuple{IntV(int64(i)), IntV(int64(i % 10)), StringV(fmt.Sprintf("row%d", i))})
	}
	if err := r.InsertAll(ts); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestInsertScanCount(t *testing.T) {
	c := memCatalog(t)
	r := sampleRel(t, c, 100)
	if r.Count() != 100 {
		t.Fatalf("count = %d", r.Count())
	}
	ts, err := Collect(SeqScan(r))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 100 {
		t.Fatalf("scan = %d tuples", len(ts))
	}
	if ts[42][0].I != 42 || ts[42][2].S != "row42" {
		t.Fatalf("tuple 42 = %v", ts[42])
	}
}

func TestTypeChecking(t *testing.T) {
	c := memCatalog(t)
	r := sampleRel(t, c, 1)
	if err := r.Insert(Tuple{StringV("oops"), IntV(1), StringV("x")}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if err := r.Insert(Tuple{IntV(1), IntV(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestIndexScanRange(t *testing.T) {
	c := memCatalog(t)
	r := sampleRel(t, c, 1000)
	if err := r.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(IndexScan(r, "id", IntV(100), IntV(149)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("index range = %d tuples", len(got))
	}
	for _, tp := range got {
		if tp[0].I < 100 || tp[0].I > 149 {
			t.Fatalf("out of range tuple %v", tp)
		}
	}
	// Same result without index (fallback path).
	got2, _ := Collect(IndexScan(r, "grp", IntV(3), IntV(3)))
	if len(got2) != 100 {
		t.Fatalf("unindexed equality = %d", len(got2))
	}
}

func TestNegativeIntKeysOrdered(t *testing.T) {
	c := memCatalog(t)
	r, _ := c.Create(Schema{Name: "neg", Attrs: []Attr{{Name: "v", Type: Int}}})
	for _, v := range []int64{-5, 3, -1, 0, 7, -100} {
		r.Insert(Tuple{IntV(v)})
	}
	r.CreateIndex("v")
	got, _ := Collect(IndexScan(r, "v", IntV(-10), IntV(5)))
	want := []int64{-5, -1, 0, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i, tp := range got {
		if tp[0].I != want[i] {
			t.Fatalf("order: got %v", got)
		}
	}
}

func TestSelectProject(t *testing.T) {
	c := memCatalog(t)
	r := sampleRel(t, c, 50)
	it := Project(Select(SeqScan(r), func(t Tuple) bool { return t[1].I == 4 }), []int{2})
	ts, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 {
		t.Fatalf("select+project = %d", len(ts))
	}
	if len(ts[0]) != 1 || ts[0][0].Type != String {
		t.Fatalf("projection shape: %v", ts[0])
	}
}

func TestNestedLoopJoin(t *testing.T) {
	c := memCatalog(t)
	a, _ := c.Create(Schema{Name: "a", Attrs: []Attr{{Name: "x", Type: Int}}})
	b, _ := c.Create(Schema{Name: "b", Attrs: []Attr{{Name: "y", Type: Int}, {Name: "tag", Type: String}}})
	for i := 0; i < 10; i++ {
		a.Insert(Tuple{IntV(int64(i))})
	}
	for i := 0; i < 20; i += 2 {
		b.Insert(Tuple{IntV(int64(i)), StringV("even")})
	}
	j := NestedLoopJoin(SeqScan(a), func() Iterator { return SeqScan(b) },
		func(o, i Tuple) bool { return o[0].I == i[0].I })
	ts, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 { // 0,2,4,6,8
		t.Fatalf("join = %d rows", len(ts))
	}
	for _, tp := range ts {
		if tp[0].I != tp[1].I || tp[2].S != "even" {
			t.Fatalf("bad join row %v", tp)
		}
	}
}

func TestIndexJoin(t *testing.T) {
	c := memCatalog(t)
	a := sampleRel(t, c, 100)
	b, _ := c.Create(Schema{Name: "dim", Attrs: []Attr{{Name: "g", Type: Int}, {Name: "label", Type: String}}})
	for i := 0; i < 10; i++ {
		b.Insert(Tuple{IntV(int64(i)), StringV(fmt.Sprintf("group-%d", i))})
	}
	b.CreateIndex("g")
	j := IndexJoin(SeqScan(a), b, 1, "g")
	n, err := Count(j)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("index join = %d rows", n)
	}
}

func TestCatalogPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel.db")
	st, _ := store.Open(path, 256)
	c, err := OpenCatalog(st)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := c.Create(Schema{Name: "persisted", Attrs: []Attr{
		{Name: "k", Type: Int}, {Name: "v", Type: Float}, {Name: "s", Type: String},
	}})
	for i := 0; i < 200; i++ {
		r.Insert(Tuple{IntV(int64(i)), FloatV(float64(i) / 2), StringV(fmt.Sprintf("s%d", i))})
	}
	r.CreateIndex("k")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, _ := store.Open(path, 256)
	defer st2.Close()
	c2, err := OpenCatalog(st2)
	if err != nil {
		t.Fatal(err)
	}
	r2 := c2.Get("persisted")
	if r2 == nil || r2.Count() != 200 {
		t.Fatalf("reopened relation: %+v", r2)
	}
	if !r2.HasIndex("k") {
		t.Fatal("index lost")
	}
	ts, _ := Collect(IndexScan(r2, "k", IntV(50), IntV(50)))
	if len(ts) != 1 || ts[0][1].F != 25 || ts[0][2].S != "s50" {
		t.Fatalf("reopened tuple: %v", ts)
	}
}

func TestValueKeyOrderProperty(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := IntV(a).Key(), IntV(b).Key()
		cmp := IntV(a).Compare(IntV(b))
		switch {
		case cmp < 0:
			return string(ka) < string(kb)
		case cmp > 0:
			return string(ka) > string(kb)
		}
		return string(ka) == string(kb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b float64) bool {
		ka, kb := FloatV(a).Key(), FloatV(b).Key()
		cmp := FloatV(a).Compare(FloatV(b))
		switch {
		case cmp < 0:
			return string(ka) < string(kb)
		case cmp > 0:
			return string(ka) > string(kb)
		}
		return true // NaN etc: no ordering claim
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleCodecProperty(t *testing.T) {
	schema := Schema{Name: "q", Attrs: []Attr{
		{Name: "i", Type: Int}, {Name: "f", Type: Float}, {Name: "s", Type: String},
	}}
	f := func(i int64, fl float64, s string) bool {
		tp := Tuple{IntV(i), FloatV(fl), StringV(s)}
		back, err := decodeTuple(encodeTuple(tp), &schema)
		if err != nil {
			return false
		}
		return back[0].I == i && (back[1].F == fl || fl != fl) && back[2].S == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
