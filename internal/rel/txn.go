package rel

import "repro/internal/store"

// Transaction support: the pager rollback restores every page, and
// Snapshot/Restore bring the catalog's in-memory caches (relation
// membership, tuple counts, index maps, heap handles) back in line
// with the restored pages. Relation values are restored in place so
// any held *Relation pointer stays valid across a rollback.

// relSnap is the value copy of one relation's mutable state.
type relSnap struct {
	heapRoot store.PageID
	count    int
	indexes  map[int]store.PageID // attr -> B-tree anchor
}

// CatSnapshot is the catalog state captured at transaction begin.
type CatSnapshot struct {
	rels map[string]*Relation
	rids map[string]store.RID
	vals map[*Relation]relSnap
}

// Snapshot captures the in-memory catalog state for a transaction.
// The caller must serialize all catalog access for the duration.
func (c *Catalog) Snapshot() *CatSnapshot {
	s := &CatSnapshot{
		rels: make(map[string]*Relation, len(c.rels)),
		rids: make(map[string]store.RID, len(c.rids)),
		vals: make(map[*Relation]relSnap, len(c.rels)),
	}
	for n, r := range c.rels {
		s.rels[n] = r
		s.rids[n] = c.rids[n]
		idx := make(map[int]store.PageID, len(r.indexes))
		for attr, bt := range r.indexes {
			idx[attr] = bt.Anchor()
		}
		s.vals[r] = relSnap{heapRoot: r.heap.Root(), count: r.count, indexes: idx}
	}
	return s
}

// Restore rolls the in-memory catalog back to the snapshot. Call it
// after store.Rollback; every handle is reopened over the restored
// pages.
func (c *Catalog) Restore(s *CatSnapshot) {
	pool := c.st.Pool()
	rels := make(map[string]*Relation, len(s.rels))
	rids := make(map[string]store.RID, len(s.rids))
	for n, r := range s.rels {
		v := s.vals[r]
		r.heap = store.OpenHeap(pool, v.heapRoot)
		r.count = v.count
		r.indexes = make(map[int]*store.BTree, len(v.indexes))
		for attr, anchor := range v.indexes {
			r.indexes[attr] = store.OpenBTree(pool, anchor)
		}
		rels[n] = r
		rids[n] = s.rids[n]
	}
	c.rels = rels
	c.rids = rids
	c.heap = store.OpenHeap(pool, c.heap.Root())
}
