package rel

import (
	"repro/internal/store"
)

// Iterator is the operator-tree interface (set-oriented evaluation,
// paper §2.2). Next returns (nil, nil) at end of stream. Close releases
// the iterator's resources; it is idempotent, safe after exhaustion, and
// must be called when a stream is abandoned early so scans stop touching
// the buffer pool.
type Iterator interface {
	Next() (Tuple, error)
	Close()
}

// --- sequential scan -----------------------------------------------------

type seqScan struct {
	r    *Relation
	sc   *store.HeapScanner
	done bool
}

// SeqScan returns an iterator over every tuple of r in storage order. It
// streams one heap page at a time under a shared pin — nothing is
// materialized up front, so a scan abandoned after a few tuples has only
// touched a few pages.
func SeqScan(r *Relation) Iterator {
	r.cat.seqChoices.Inc()
	return &seqScan{r: r}
}

func (s *seqScan) Next() (Tuple, error) {
	if s.done {
		return nil, nil
	}
	if s.sc == nil {
		s.sc = s.r.heap.Scanner()
	}
	_, data, err := s.sc.Next()
	if err != nil {
		s.Close()
		return nil, err
	}
	if data == nil {
		s.Close()
		return nil, nil
	}
	s.r.cat.seqScanned.Inc()
	return decodeTuple(data, &s.r.Schema)
}

func (s *seqScan) Close() {
	if s.sc != nil {
		s.sc.Close()
		s.sc = nil
	}
	s.done = true
}

// --- index scan ------------------------------------------------------------

type indexScan struct {
	r    *Relation
	rids []uint64
	pos  int
}

// IndexScan returns tuples of r whose attribute lies in [lo, hi] (both
// inclusive; pass the same value twice for equality) using the B-tree on
// that attribute. It falls back to a filtered sequential scan when no
// index exists. The matching RIDs are collected up front (bounded by the
// selectivity of the range); tuples are fetched on demand.
func IndexScan(r *Relation, attrName string, lo, hi Value) Iterator {
	attr := r.Schema.AttrIndex(attrName)
	idx, ok := r.indexes[attr]
	if !ok {
		r.cat.idxFallbck.Inc()
		return Select(SeqScan(r), func(t Tuple) bool {
			return t[attr].Compare(lo) >= 0 && t[attr].Compare(hi) <= 0
		})
	}
	r.cat.idxChoices.Inc()
	s := &indexScan{r: r}
	err := idx.Range(lo.Key(), hi.Key(), func(_ []byte, v uint64) bool {
		s.rids = append(s.rids, v)
		return true
	})
	if err != nil {
		return &errIter{err: err}
	}
	r.cat.idxScanned.Add(uint64(len(s.rids)))
	return s
}

func (s *indexScan) Next() (Tuple, error) {
	if s.pos >= len(s.rids) {
		return nil, nil
	}
	rid := store.UnpackRID(s.rids[s.pos])
	s.pos++
	s.r.cat.idxMatched.Inc()
	return s.r.Get(rid)
}

func (s *indexScan) Close() { s.rids = nil; s.pos = 0 }

type errIter struct{ err error }

func (e *errIter) Next() (Tuple, error) { return nil, e.err }
func (e *errIter) Close()               {}

// --- selection, projection ---------------------------------------------------

type selectIter struct {
	in   Iterator
	pred func(Tuple) bool
}

// Select filters tuples by pred.
func Select(in Iterator, pred func(Tuple) bool) Iterator {
	return &selectIter{in: in, pred: pred}
}

func (s *selectIter) Next() (Tuple, error) {
	for {
		t, err := s.in.Next()
		if err != nil || t == nil {
			return t, err
		}
		if s.pred(t) {
			return t, nil
		}
	}
}

func (s *selectIter) Close() { s.in.Close() }

type projectIter struct {
	in   Iterator
	cols []int
}

// Project keeps only the given attribute positions.
func Project(in Iterator, cols []int) Iterator { return &projectIter{in: in, cols: cols} }

func (p *projectIter) Next() (Tuple, error) {
	t, err := p.in.Next()
	if err != nil || t == nil {
		return nil, err
	}
	out := make(Tuple, len(p.cols))
	for i, c := range p.cols {
		out[i] = t[c]
	}
	return out, nil
}

func (p *projectIter) Close() { p.in.Close() }

// --- joins -------------------------------------------------------------------

type nestedLoopJoin struct {
	outer     Iterator
	makeInner func() Iterator
	pred      func(o, i Tuple) bool
	cur       Tuple
	inner     Iterator
}

// NestedLoopJoin joins the outer stream against a re-creatable inner
// stream, emitting concatenated tuples that satisfy pred.
func NestedLoopJoin(outer Iterator, makeInner func() Iterator, pred func(o, i Tuple) bool) Iterator {
	return &nestedLoopJoin{outer: outer, makeInner: makeInner, pred: pred}
}

func (j *nestedLoopJoin) Next() (Tuple, error) {
	for {
		if j.cur == nil {
			t, err := j.outer.Next()
			if err != nil || t == nil {
				return nil, err
			}
			j.cur = t
			j.inner = j.makeInner()
		}
		for {
			it, err := j.inner.Next()
			if err != nil {
				return nil, err
			}
			if it == nil {
				j.inner.Close()
				j.inner = nil
				j.cur = nil
				break
			}
			if j.pred(j.cur, it) {
				out := make(Tuple, 0, len(j.cur)+len(it))
				out = append(out, j.cur...)
				out = append(out, it...)
				return out, nil
			}
		}
	}
}

func (j *nestedLoopJoin) Close() {
	j.outer.Close()
	if j.inner != nil {
		j.inner.Close()
		j.inner = nil
	}
	j.cur = nil
}

type indexJoin struct {
	outer     Iterator
	inner     *Relation
	outerAttr int
	innerAttr string
	cur       Tuple
	matches   Iterator
}

// IndexJoin joins each outer tuple against inner tuples whose innerAttr
// equals the outer tuple's outerAttr value, via the inner index.
func IndexJoin(outer Iterator, inner *Relation, outerAttr int, innerAttr string) Iterator {
	return &indexJoin{outer: outer, inner: inner, outerAttr: outerAttr, innerAttr: innerAttr}
}

func (j *indexJoin) Next() (Tuple, error) {
	for {
		if j.cur == nil {
			t, err := j.outer.Next()
			if err != nil || t == nil {
				return nil, err
			}
			j.cur = t
			v := t[j.outerAttr]
			j.matches = IndexScan(j.inner, j.innerAttr, v, v)
		}
		it, err := j.matches.Next()
		if err != nil {
			return nil, err
		}
		if it == nil {
			j.matches.Close()
			j.matches = nil
			j.cur = nil
			continue
		}
		out := make(Tuple, 0, len(j.cur)+len(it))
		out = append(out, j.cur...)
		out = append(out, it...)
		return out, nil
	}
}

func (j *indexJoin) Close() {
	j.outer.Close()
	if j.matches != nil {
		j.matches.Close()
		j.matches = nil
	}
	j.cur = nil
}

// --- helpers -------------------------------------------------------------------

// Collect drains an iterator and closes it.
func Collect(it Iterator) ([]Tuple, error) {
	defer it.Close()
	var out []Tuple
	for {
		t, err := it.Next()
		if err != nil {
			return out, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// Count drains an iterator counting tuples, and closes it.
func Count(it Iterator) (int, error) {
	defer it.Close()
	n := 0
	for {
		t, err := it.Next()
		if err != nil {
			return n, err
		}
		if t == nil {
			return n, nil
		}
		n++
	}
}
