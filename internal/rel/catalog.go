package rel

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/store"
)

// Catalog is the relation catalog (the paper's §2.2 "separate catalog"
// holding type information). It persists schemas, heap roots, tuple counts
// and index anchors in its own heap file.
type Catalog struct {
	st   *store.Store
	heap *store.Heap
	rels map[string]*Relation
	rids map[string]store.RID

	// Access-path selectivity counters (KB-wide, in the store's metrics
	// registry): how often each scan kind was chosen and how many tuples
	// it examined vs. returned.
	idxChoices *obs.Counter // rel.path.rel_index.choices
	idxScanned *obs.Counter // RIDs collected by index range probes
	idxMatched *obs.Counter // tuples returned by index scans
	seqChoices *obs.Counter // rel.path.rel_seq.choices
	seqScanned *obs.Counter // tuples examined by sequential scans
	idxFallbck *obs.Counter // IndexScan calls degraded to filtered seq scan
}

// OpenCatalog attaches to (creating if necessary) the catalog in st.
func OpenCatalog(st *store.Store) (*Catalog, error) {
	c := &Catalog{st: st, rels: map[string]*Relation{}, rids: map[string]store.RID{}}
	reg := st.Obs()
	c.idxChoices = reg.Counter("rel.path.rel_index.choices")
	c.idxScanned = reg.Counter("rel.path.rel_index.scanned")
	c.idxMatched = reg.Counter("rel.path.rel_index.matched")
	c.seqChoices = reg.Counter("rel.path.rel_seq.choices")
	c.seqScanned = reg.Counter("rel.path.rel_seq.scanned")
	c.idxFallbck = reg.Counter("rel.path.rel_index.fallbacks")
	if root, ok := st.GetMeta("rel.catalog"); ok {
		c.heap = store.OpenHeap(st.Pool(), store.PageID(root))
	} else {
		h, err := store.CreateHeap(st.Pool())
		if err != nil {
			return nil, err
		}
		c.heap = h
		if err := st.SetMeta("rel.catalog", uint64(h.Root())); err != nil {
			return nil, err
		}
	}
	err := c.heap.Scan(func(rid store.RID, data []byte) (bool, error) {
		r, err := c.decodeRelation(data)
		if err != nil {
			return false, err
		}
		c.rels[r.Schema.Name] = r
		c.rids[r.Schema.Name] = rid
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Store returns the underlying store.
func (c *Catalog) Store() *store.Store { return c.st }

// Create registers a new relation.
func (c *Catalog) Create(schema Schema) (*Relation, error) {
	if _, ok := c.rels[schema.Name]; ok {
		return nil, fmt.Errorf("rel: relation %s already exists", schema.Name)
	}
	h, err := store.CreateHeap(c.st.Pool())
	if err != nil {
		return nil, err
	}
	r := &Relation{Schema: schema, heap: h, indexes: map[int]*store.BTree{}, cat: c}
	rid, err := c.heap.Insert(c.encodeRelation(r))
	if err != nil {
		return nil, err
	}
	c.rels[schema.Name] = r
	c.rids[schema.Name] = rid
	return r, nil
}

// Get returns a relation by name, or nil.
func (c *Catalog) Get(name string) *Relation { return c.rels[name] }

// Drop removes the relation from the catalog. (Pages are not reclaimed;
// dropping is rare in the workloads.)
func (c *Catalog) Drop(name string) error {
	rid, ok := c.rids[name]
	if !ok {
		return fmt.Errorf("rel: no relation %s", name)
	}
	if err := c.heap.Delete(rid); err != nil {
		return err
	}
	delete(c.rels, name)
	delete(c.rids, name)
	return nil
}

// Names lists all relations.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (c *Catalog) saveRelation(r *Relation) error {
	rid := c.rids[r.Schema.Name]
	nrid, err := c.heap.Update(rid, c.encodeRelation(r))
	if err != nil {
		return err
	}
	c.rids[r.Schema.Name] = nrid
	return nil
}

func (c *Catalog) encodeRelation(r *Relation) []byte {
	var b bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	ws := func(s string) {
		n := binary.PutUvarint(tmp[:], uint64(len(s)))
		b.Write(tmp[:n])
		b.WriteString(s)
	}
	wu := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		b.Write(tmp[:n])
	}
	ws(r.Schema.Name)
	wu(uint64(len(r.Schema.Attrs)))
	for _, a := range r.Schema.Attrs {
		ws(a.Name)
		wu(uint64(a.Type))
	}
	wu(uint64(r.heap.Root()))
	wu(uint64(r.count))
	wu(uint64(len(r.indexes)))
	for attr, idx := range r.indexes {
		wu(uint64(attr))
		wu(uint64(idx.Anchor()))
	}
	return b.Bytes()
}

func (c *Catalog) decodeRelation(data []byte) (*Relation, error) {
	rd := bytes.NewReader(data)
	var err error
	ru := func() uint64 {
		v, e := binary.ReadUvarint(rd)
		if e != nil && err == nil {
			err = e
		}
		return v
	}
	rs := func() string {
		n := ru()
		buf := make([]byte, n)
		if _, e := rd.Read(buf); e != nil && err == nil {
			err = e
		}
		return string(buf)
	}
	r := &Relation{indexes: map[int]*store.BTree{}, cat: c}
	r.Schema.Name = rs()
	na := int(ru())
	for i := 0; i < na; i++ {
		name := rs()
		typ := Type(ru())
		r.Schema.Attrs = append(r.Schema.Attrs, Attr{Name: name, Type: typ})
	}
	r.heap = store.OpenHeap(c.st.Pool(), store.PageID(ru()))
	r.count = int(ru())
	ni := int(ru())
	for i := 0; i < ni; i++ {
		attr := int(ru())
		anchor := store.PageID(ru())
		r.indexes[attr] = store.OpenBTree(c.st.Pool(), anchor)
	}
	if err != nil {
		return nil, fmt.Errorf("rel: corrupt catalog entry: %w", err)
	}
	return r, nil
}
