package rel

// MemRel is a materialized in-memory relation: the delta relations and
// materialized intermediates of set-at-a-time evaluation (paper §4). It
// deduplicates on insertion (a relation is a set, which is what makes
// semi-naive iteration converge), preserves insertion order (so the
// binding stream fed back into the WAM is deterministic), and grows
// per-column hash indexes lazily for join probes.
type MemRel struct {
	arity  int
	tuples []Tuple
	seen   map[string]struct{}
	// idx maps a column to (encoded value -> positions). Built on first
	// Lookup of the column and maintained by later inserts.
	idx map[int]map[string][]int
}

// NewMemRel creates an empty materialized relation of the given arity.
func NewMemRel(arity int) *MemRel {
	return &MemRel{arity: arity, seen: map[string]struct{}{}}
}

// Arity returns the relation's arity.
func (m *MemRel) Arity() int { return m.arity }

// Len returns the number of (distinct) tuples.
func (m *MemRel) Len() int { return len(m.tuples) }

// Tuples exposes the stored tuples in insertion order. The slice is
// shared: callers must not mutate it.
func (m *MemRel) Tuples() []Tuple { return m.tuples }

// Insert adds a tuple unless it is already present, reporting whether it
// was new. The tuple is stored as-is (not copied).
func (m *MemRel) Insert(t Tuple) bool {
	k := string(encodeTuple(t))
	if _, dup := m.seen[k]; dup {
		return false
	}
	m.seen[k] = struct{}{}
	pos := len(m.tuples)
	m.tuples = append(m.tuples, t)
	for col, buckets := range m.idx {
		vk := string(t[col].Key()) + "\x00" + t[col].Type.String()
		buckets[vk] = append(buckets[vk], pos)
	}
	return true
}

// Contains reports whether the tuple is present.
func (m *MemRel) Contains(t Tuple) bool {
	_, ok := m.seen[string(encodeTuple(t))]
	return ok
}

func valueBucketKey(v Value) string {
	return string(v.Key()) + "\x00" + v.Type.String()
}

// Lookup returns the positions of tuples whose column col equals v,
// building the column's hash index on first use. Returned positions
// index into Tuples() and are in insertion order.
func (m *MemRel) Lookup(col int, v Value) []int {
	if m.idx == nil {
		m.idx = map[int]map[string][]int{}
	}
	buckets, ok := m.idx[col]
	if !ok {
		buckets = map[string][]int{}
		for pos, t := range m.tuples {
			vk := valueBucketKey(t[col])
			buckets[vk] = append(buckets[vk], pos)
		}
		m.idx[col] = buckets
	}
	return buckets[valueBucketKey(v)]
}

// memScan iterates a MemRel snapshot taken at creation (inserts during
// the scan are not observed, which is what delta iteration needs).
type memScan struct {
	tuples []Tuple
	pos    int
}

// Scan returns an iterator over the relation's tuples in insertion
// order. The iteration covers the tuples present at Scan time only.
func (m *MemRel) Scan() Iterator {
	return &memScan{tuples: m.tuples}
}

func (s *memScan) Next() (Tuple, error) {
	if s.pos >= len(s.tuples) {
		return nil, nil
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, nil
}

func (s *memScan) Close() { s.tuples = nil }

// ValueEq reports whether two values are equal, treating values of
// different types as distinct (Compare assumes same-typed operands).
func ValueEq(a, b Value) bool {
	return a.Type == b.Type && a.Compare(b) == 0
}
