package parser

import "fmt"

// OpType is a Prolog operator type (xfx, xfy, yfx, fy, fx, xf, yf).
type OpType int

// Operator types.
const (
	XFX OpType = iota
	XFY
	YFX
	FY
	FX
	XF
	YF
)

// ParseOpType converts the textual operator type used by op/3.
func ParseOpType(s string) (OpType, error) {
	switch s {
	case "xfx":
		return XFX, nil
	case "xfy":
		return XFY, nil
	case "yfx":
		return YFX, nil
	case "fy":
		return FY, nil
	case "fx":
		return FX, nil
	case "xf":
		return XF, nil
	case "yf":
		return YF, nil
	}
	return 0, fmt.Errorf("parser: invalid operator type %q", s)
}

func (t OpType) String() string {
	return [...]string{"xfx", "xfy", "yfx", "fy", "fx", "xf", "yf"}[t]
}

// opDef is one operator definition.
type opDef struct {
	prec int
	typ  OpType
}

// prefix/infix/postfix argument precedences.
func (d opDef) leftMax() int {
	switch d.typ {
	case YFX, YF:
		return d.prec
	default: // XFX, XFY, XF
		return d.prec - 1
	}
}

func (d opDef) rightMax() int {
	switch d.typ {
	case XFY, FY:
		return d.prec
	default:
		return d.prec - 1
	}
}

// OpTable holds the operator definitions in force for a reader. The zero
// value is empty; NewOpTable returns a table preloaded with the standard
// ISO operators.
type OpTable struct {
	prefix  map[string]opDef
	infix   map[string]opDef
	postfix map[string]opDef
}

// NewOpTable returns an operator table with the standard operators defined.
func NewOpTable() *OpTable {
	t := &OpTable{
		prefix:  map[string]opDef{},
		infix:   map[string]opDef{},
		postfix: map[string]opDef{},
	}
	std := []struct {
		prec int
		typ  OpType
		Name string
	}{
		{1200, XFX, ":-"}, {1200, XFX, "-->"},
		{1200, FX, ":-"}, {1200, FX, "?-"},
		{1100, XFY, ";"}, {1100, XFY, "|"},
		{1050, XFY, "->"}, {1050, XFY, "*->"},
		{1000, XFY, ","},
		{990, XFX, ":="},
		{900, FY, "\\+"},
		{700, XFX, "="}, {700, XFX, "\\="},
		{700, XFX, "=="}, {700, XFX, "\\=="},
		{700, XFX, "@<"}, {700, XFX, "@>"}, {700, XFX, "@=<"}, {700, XFX, "@>="},
		{700, XFX, "is"}, {700, XFX, "=:="}, {700, XFX, "=\\="},
		{700, XFX, "<"}, {700, XFX, ">"}, {700, XFX, "=<"}, {700, XFX, ">="},
		{700, XFX, "=.."},
		{500, YFX, "+"}, {500, YFX, "-"}, {500, YFX, "/\\"}, {500, YFX, "\\/"}, {500, YFX, "xor"},
		{400, YFX, "*"}, {400, YFX, "/"}, {400, YFX, "//"},
		{400, YFX, "mod"}, {400, YFX, "rem"}, {400, YFX, "div"},
		{400, YFX, "<<"}, {400, YFX, ">>"},
		{200, XFX, "**"},
		{200, XFY, "^"},
		{200, FY, "-"}, {200, FY, "+"}, {200, FY, "\\"},
		{100, YFX, "."}, // not installed; listed for completeness
		{1, FX, "$"},
	}
	for _, d := range std {
		if d.Name == "." {
			continue
		}
		t.mustDefine(d.prec, d.typ, d.Name)
	}
	return t
}

func (t *OpTable) mustDefine(prec int, typ OpType, name string) {
	if err := t.Define(prec, typ, name); err != nil {
		panic(err)
	}
}

// Define installs (or, with prec 0, removes) an operator, as op/3 does.
func (t *OpTable) Define(prec int, typ OpType, name string) error {
	if name == "" {
		return fmt.Errorf("parser: empty operator name")
	}
	if prec < 0 || prec > 1200 {
		return fmt.Errorf("parser: operator priority %d out of range", prec)
	}
	if name == "," && prec != 1000 {
		return fmt.Errorf("parser: cannot redefine ','")
	}
	var m map[string]opDef
	switch typ {
	case FX, FY:
		m = t.prefix
	case XFX, XFY, YFX:
		m = t.infix
	case XF, YF:
		m = t.postfix
	default:
		return fmt.Errorf("parser: invalid operator type")
	}
	if prec == 0 {
		delete(m, name)
		return nil
	}
	m[name] = opDef{prec: prec, typ: typ}
	return nil
}

// Clone returns a deep copy of the table.
func (t *OpTable) Clone() *OpTable {
	c := &OpTable{
		prefix:  make(map[string]opDef, len(t.prefix)),
		infix:   make(map[string]opDef, len(t.infix)),
		postfix: make(map[string]opDef, len(t.postfix)),
	}
	for k, v := range t.prefix {
		c.prefix[k] = v
	}
	for k, v := range t.infix {
		c.infix[k] = v
	}
	for k, v := range t.postfix {
		c.postfix[k] = v
	}
	return c
}

func (t *OpTable) lookupPrefix(name string) (opDef, bool) {
	d, ok := t.prefix[name]
	return d, ok
}

func (t *OpTable) lookupInfix(name string) (opDef, bool) {
	d, ok := t.infix[name]
	return d, ok
}

func (t *OpTable) lookupPostfix(name string) (opDef, bool) {
	d, ok := t.postfix[name]
	return d, ok
}

// IsOperator reports whether name is defined as any kind of operator.
func (t *OpTable) IsOperator(name string) bool {
	_, a := t.prefix[name]
	_, b := t.infix[name]
	_, c := t.postfix[name]
	return a || b || c
}
