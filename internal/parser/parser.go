// Package parser implements an operator-precedence reader for Prolog terms
// and programs. It consumes tokens from package lex and produces term.Term
// values, sharing one *term.Var per variable name within a clause.
package parser

import (
	"fmt"
	"strings"

	"repro/internal/lex"
	"repro/internal/term"
)

// Error is a syntax error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("parser: %d:%d: %s", e.Line, e.Col, e.Msg) }

// Parser reads terms from a source string.
type Parser struct {
	lx   *lex.Lexer
	ops  *OpTable
	vars map[string]*term.Var
	// anonCount numbers fresh anonymous variables within one read.
	anonCount int
}

// New returns a parser over src using the standard operator table.
func New(src string) *Parser { return NewWithOps(src, NewOpTable()) }

// NewWithOps returns a parser over src using the given operator table. The
// table is used by reference, so op/3 directives take effect immediately.
func NewWithOps(src string, ops *OpTable) *Parser {
	return &Parser{lx: lex.New(src), ops: ops}
}

// Ops returns the parser's operator table.
func (p *Parser) Ops() *OpTable { return p.ops }

// ReadTerm reads the next clause-terminated term. It returns the term and
// the variable name map for the clause. At end of input it returns (nil,
// nil, nil).
func (p *Parser) ReadTerm() (term.Term, map[string]*term.Var, error) {
	tok, err := p.lx.Peek()
	if err != nil {
		return nil, nil, err
	}
	if tok.Kind == lex.EOF {
		return nil, nil, nil
	}
	p.vars = map[string]*term.Var{}
	p.anonCount = 0
	t, err := p.parse(1200)
	if err != nil {
		return nil, nil, err
	}
	end, err := p.lx.Next()
	if err != nil {
		return nil, nil, err
	}
	if end.Kind != lex.EndTok {
		return nil, nil, &Error{Line: end.Line, Col: end.Col,
			Msg: fmt.Sprintf("operator expected or unterminated clause (got %s %q)", end.Kind, end.Text)}
	}
	vars := p.vars
	p.vars = nil
	return t, vars, nil
}

// ReadAll reads every clause in the source.
func (p *Parser) ReadAll() ([]term.Term, error) {
	var out []term.Term
	for {
		t, _, err := p.ReadTerm()
		if err != nil {
			return out, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// ParseTerm parses a single term (no trailing '.') from src with the
// standard operator table. Handy for tests and the query API.
func ParseTerm(src string) (term.Term, map[string]*term.Var, error) {
	return ParseTermWithOps(src, NewOpTable())
}

// ParseTermWithOps is ParseTerm with an explicit operator table.
func ParseTermWithOps(src string, ops *OpTable) (term.Term, map[string]*term.Var, error) {
	src = strings.TrimSpace(src)
	if !strings.HasSuffix(src, ".") {
		src += " ."
	}
	p := NewWithOps(src, ops)
	t, vars, err := p.ReadTerm()
	if err != nil {
		return nil, nil, err
	}
	if t == nil {
		return nil, nil, fmt.Errorf("parser: empty input")
	}
	return t, vars, nil
}

func (p *Parser) errTok(tok lex.Token, format string, args ...any) error {
	return &Error{Line: tok.Line, Col: tok.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) variable(name string) *term.Var {
	if name == "_" {
		p.anonCount++
		return &term.Var{Name: fmt.Sprintf("_A%d", p.anonCount)}
	}
	if v, ok := p.vars[name]; ok {
		return v
	}
	v := &term.Var{Name: name}
	p.vars[name] = v
	return v
}

// parse reads a term of precedence at most maxPrec.
func (p *Parser) parse(maxPrec int) (term.Term, error) {
	left, leftPrec, err := p.parsePrimary(maxPrec)
	if err != nil {
		return nil, err
	}
	return p.parseInfix(left, leftPrec, maxPrec)
}

// parseInfix repeatedly extends left with infix/postfix operators.
func (p *Parser) parseInfix(left term.Term, leftPrec, maxPrec int) (term.Term, error) {
	for {
		tok, err := p.lx.Peek()
		if err != nil {
			return nil, err
		}
		var name string
		switch {
		case tok.Kind == lex.AtomTok && !tok.FunctorOpen:
			name = tok.Text
		case tok.Kind == lex.PunctTok && (tok.Text == "," || tok.Text == "|"):
			name = tok.Text
		default:
			return left, nil
		}
		if d, ok := p.ops.lookupInfix(name); ok && d.prec <= maxPrec && leftPrec <= d.leftMax() {
			p.lx.Next()
			right, err := p.parse(d.rightMax())
			if err != nil {
				return nil, err
			}
			// '|' as an operator is read as ';' per ISO.
			if name == "|" {
				name = ";"
			}
			left = term.Comp(name, left, right)
			leftPrec = d.prec
			continue
		}
		if d, ok := p.ops.lookupPostfix(name); ok && d.prec <= maxPrec && leftPrec <= d.leftMax() {
			p.lx.Next()
			left = term.Comp(name, left)
			leftPrec = d.prec
			continue
		}
		return left, nil
	}
}

// parsePrimary reads a primary term and returns it with its precedence
// (0 for ordinary terms, the operator's precedence for a bare operator
// atom or a prefix application).
func (p *Parser) parsePrimary(maxPrec int) (term.Term, int, error) {
	tok, err := p.lx.Next()
	if err != nil {
		return nil, 0, err
	}
	switch tok.Kind {
	case lex.EOF:
		return nil, 0, p.errTok(tok, "unexpected end of input")
	case lex.IntTok:
		return term.Int(tok.Int), 0, nil
	case lex.FloatTok:
		return term.Float(tok.Float), 0, nil
	case lex.VarTok:
		return p.variable(tok.Text), 0, nil
	case lex.StrTok:
		// double_quotes(codes): a string is a list of character codes.
		items := make([]term.Term, 0, len(tok.Text))
		for _, r := range tok.Text {
			items = append(items, term.Int(r))
		}
		return term.List(items...), 0, nil
	case lex.EndTok:
		return nil, 0, p.errTok(tok, "unexpected clause terminator")
	case lex.PunctTok:
		switch tok.Text {
		case "(":
			t, err := p.parse(1200)
			if err != nil {
				return nil, 0, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, 0, err
			}
			return t, 0, nil
		case "[":
			return p.parseList()
		case "{":
			nxt, err := p.lx.Peek()
			if err != nil {
				return nil, 0, err
			}
			if nxt.Kind == lex.PunctTok && nxt.Text == "}" {
				p.lx.Next()
				return term.Atom("{}"), 0, nil
			}
			t, err := p.parse(1200)
			if err != nil {
				return nil, 0, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, 0, err
			}
			return term.Comp("{}", t), 0, nil
		}
		return nil, 0, p.errTok(tok, "unexpected %q", tok.Text)
	case lex.AtomTok:
		return p.parseAtomic(tok, maxPrec)
	}
	return nil, 0, p.errTok(tok, "unexpected token")
}

func (p *Parser) parseAtomic(tok lex.Token, maxPrec int) (term.Term, int, error) {
	name := tok.Text
	// Functor application: atom immediately followed by '('.
	if tok.FunctorOpen {
		p.lx.Next() // consume '('
		args, err := p.parseArgs()
		if err != nil {
			return nil, 0, err
		}
		return term.Comp(name, args...), 0, nil
	}
	// Negative numeric literal: '-' immediately adjacent to a number.
	if name == "-" {
		nxt, err := p.lx.Peek()
		if err != nil {
			return nil, 0, err
		}
		adjacent := nxt.Line == tok.Line && nxt.Col == tok.Col+1
		if adjacent && nxt.Kind == lex.IntTok {
			p.lx.Next()
			return term.Int(-nxt.Int), 0, nil
		}
		if adjacent && nxt.Kind == lex.FloatTok {
			p.lx.Next()
			return term.Float(-nxt.Float), 0, nil
		}
	}
	// Prefix operator application.
	if d, ok := p.ops.lookupPrefix(name); ok && d.prec <= maxPrec {
		if p.canStartTerm(name) {
			arg, err := p.parse(d.rightMax())
			if err != nil {
				return nil, 0, err
			}
			return term.Comp(name, arg), d.prec, nil
		}
	}
	// Bare atom. If it is an operator, it carries that operator's
	// precedence when used as an operand.
	prec := 0
	if d, ok := p.ops.lookupInfix(name); ok {
		prec = d.prec
	} else if d, ok := p.ops.lookupPrefix(name); ok {
		prec = d.prec
	}
	if prec > maxPrec {
		prec = 0 // a parenthesised use would have prec 0; be permissive
	}
	return term.Atom(name), prec, nil
}

// canStartTerm decides whether the upcoming token can begin the operand of
// a prefix operator named opName.
func (p *Parser) canStartTerm(opName string) bool {
	tok, err := p.lx.Peek()
	if err != nil {
		return false
	}
	switch tok.Kind {
	case lex.IntTok, lex.FloatTok, lex.VarTok, lex.StrTok:
		return true
	case lex.AtomTok:
		// An infix operator cannot begin a term unless it is also a
		// prefix operator or opens a functor application.
		if tok.FunctorOpen {
			return true
		}
		if _, inf := p.ops.lookupInfix(tok.Text); inf {
			_, pre := p.ops.lookupPrefix(tok.Text)
			return pre
		}
		return true
	case lex.PunctTok:
		return tok.Text == "(" || tok.Text == "[" || tok.Text == "{"
	}
	return false
}

func (p *Parser) parseArgs() ([]term.Term, error) {
	var args []term.Term
	for {
		a, err := p.parse(999)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		tok, err := p.lx.Next()
		if err != nil {
			return nil, err
		}
		if tok.Kind != lex.PunctTok {
			return nil, p.errTok(tok, "expected ',' or ')' in argument list")
		}
		switch tok.Text {
		case ",":
			continue
		case ")":
			return args, nil
		default:
			return nil, p.errTok(tok, "expected ',' or ')' in argument list")
		}
	}
}

func (p *Parser) parseList() (term.Term, int, error) {
	tok, err := p.lx.Peek()
	if err != nil {
		return nil, 0, err
	}
	if tok.Kind == lex.PunctTok && tok.Text == "]" {
		p.lx.Next()
		return term.NilAtom, 0, nil
	}
	var items []term.Term
	tail := term.Term(term.NilAtom)
	for {
		it, err := p.parse(999)
		if err != nil {
			return nil, 0, err
		}
		items = append(items, it)
		tok, err := p.lx.Next()
		if err != nil {
			return nil, 0, err
		}
		if tok.Kind != lex.PunctTok {
			return nil, 0, p.errTok(tok, "expected ',', '|' or ']' in list")
		}
		switch tok.Text {
		case ",":
			continue
		case "|":
			tail, err = p.parse(999)
			if err != nil {
				return nil, 0, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, 0, err
			}
			return term.ListTail(tail, items...), 0, nil
		case "]":
			return term.ListTail(tail, items...), 0, nil
		default:
			return nil, 0, p.errTok(tok, "expected ',', '|' or ']' in list")
		}
	}
}

func (p *Parser) expectPunct(s string) error {
	tok, err := p.lx.Next()
	if err != nil {
		return err
	}
	if tok.Kind != lex.PunctTok || tok.Text != s {
		return p.errTok(tok, "expected %q, got %q", s, tok.Text)
	}
	return nil
}
