package parser

import (
	"strings"
	"testing"

	"repro/internal/term"
)

func mustParse(t *testing.T, src string) term.Term {
	t.Helper()
	tm, _, err := ParseTerm(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return tm
}

func TestCanonicalRoundTrip(t *testing.T) {
	// src parses to a term whose canonical String re-parses to an equal term.
	cases := []string{
		"foo",
		"foo(a,b,c)",
		"[1,2,3]",
		"[a|T]",
		"f(g(h(x)))",
		"'quoted atom'(1)",
		"{a}",
		"-42",
		"3.5",
	}
	for _, src := range cases {
		t1 := mustParse(t, src)
		t2 := mustParse(t, t1.String())
		// Variables differ by pointer; compare strings instead.
		if t1.String() != t2.String() {
			t.Errorf("round trip %q: %q != %q", src, t1, t2)
		}
	}
}

func TestOperatorParsing(t *testing.T) {
	cases := []struct{ src, want string }{
		{"1+2", "+(1,2)"},
		{"1+2+3", "+(+(1,2),3)"},     // yfx left assoc
		{"1+2*3", "+(1,*(2,3))"},     // precedence
		{"(1+2)*3", "*(+(1,2),3)"},   // parens
		{"a:-b,c", ":-(a,','(b,c))"}, // clause
		{"a:-b;c", ":-(a,;(b,c))"},   // disjunction
		{"a->b;c", ";(->(a,b),c)"},   // if-then-else
		{"X = Y", "=(X,Y)"},
		{"X is 1+2", "is(X,+(1,2))"},
		{"- 1", "-(1)"}, // prefix minus on spaced literal
		{"-(1)", "-(1)"},
		{"a = -b", "=(a,-(b))"},
		{"\\+ a", "\\+(a)"},
		{"2**3", "**(2,3)"},
		{"2^3^4", "^(2,^(3,4))"}, // xfy right assoc
		{"a, b -> c ; d", ";(->(','(a,b),c),d)"},
		{"f(a, (b,c))", "f(a,','(b,c))"},
		{"[a,b|C]", "'.'(a,'.'(b,C))"},
		{"1 - 2 - 3", "-(-(1,2),3)"},
	}
	for _, c := range cases {
		tm := mustParse(t, c.src)
		got := canonical(tm)
		if got != c.want {
			t.Errorf("parse %q = %s, want %s", c.src, got, c.want)
		}
	}
}

// canonical renders without list/curly sugar so structure is visible.
func canonical(t term.Term) string {
	switch x := t.(type) {
	case *term.Compound:
		var b strings.Builder
		b.WriteString(term.Atom(x.Functor).String())
		b.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(canonical(a))
		}
		b.WriteByte(')')
		return b.String()
	case *term.Var:
		return x.Name
	default:
		return t.String()
	}
}

func TestVariableSharing(t *testing.T) {
	tm, vars, err := ParseTerm("f(X, g(X, Y))")
	if err != nil {
		t.Fatal(err)
	}
	if len(vars) != 2 {
		t.Fatalf("vars = %v", vars)
	}
	c := tm.(*term.Compound)
	inner := c.Args[1].(*term.Compound)
	if c.Args[0] != inner.Args[0] {
		t.Error("X not shared")
	}
	if c.Args[0] == inner.Args[1] {
		t.Error("X and Y conflated")
	}
}

func TestAnonymousVars(t *testing.T) {
	tm := mustParse(t, "f(_, _)")
	c := tm.(*term.Compound)
	if c.Args[0] == c.Args[1] {
		t.Error("anonymous variables must be distinct")
	}
}

func TestReadAll(t *testing.T) {
	p := New("a. b(1). c :- a, b(X).")
	ts, err := p.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("read %d terms", len(ts))
	}
}

func TestReadTermEOF(t *testing.T) {
	p := New("  % just a comment\n")
	tm, vars, err := p.ReadTerm()
	if err != nil || tm != nil || vars != nil {
		t.Fatalf("EOF read = (%v,%v,%v)", tm, vars, err)
	}
}

func TestStringsAsCodes(t *testing.T) {
	tm := mustParse(t, `"ab"`)
	items, ok := term.UnpackList(tm)
	if !ok || len(items) != 2 || items[0] != term.Int('a') || items[1] != term.Int('b') {
		t.Fatalf("string parsed to %v", tm)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"f(a",
		"f(a,)",
		"[a,]",
		"f(a))",
		"a b",
		"1 +",
		")",
	}
	for _, src := range bad {
		if _, _, err := ParseTerm(src); err == nil {
			t.Errorf("parse %q: expected error", src)
		}
	}
}

func TestUserOps(t *testing.T) {
	ops := NewOpTable()
	if err := ops.Define(700, XFX, "~>"); err != nil {
		t.Fatal(err)
	}
	tm, _, err := ParseTermWithOps("a ~> b", ops)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(tm) != "~>(a,b)" {
		t.Fatalf("got %s", canonical(tm))
	}
	// Removing the operator makes it a syntax error.
	if err := ops.Define(0, XFX, "~>"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ParseTermWithOps("a ~> b", ops); err == nil {
		t.Error("expected error after operator removal")
	}
}

func TestOpTableGuards(t *testing.T) {
	ops := NewOpTable()
	if err := ops.Define(1300, XFX, "bad"); err == nil {
		t.Error("priority out of range accepted")
	}
	if err := ops.Define(500, XFX, ","); err == nil {
		t.Error("redefinition of ',' accepted")
	}
	if err := ops.Define(500, XFX, ""); err == nil {
		t.Error("empty operator accepted")
	}
}

func TestParseOpType(t *testing.T) {
	for _, s := range []string{"xfx", "xfy", "yfx", "fy", "fx", "xf", "yf"} {
		typ, err := ParseOpType(s)
		if err != nil {
			t.Errorf("ParseOpType(%q): %v", s, err)
		}
		if typ.String() != s {
			t.Errorf("round trip %q -> %v", s, typ)
		}
	}
	if _, err := ParseOpType("zfz"); err == nil {
		t.Error("invalid op type accepted")
	}
}

func TestNestedClause(t *testing.T) {
	tm := mustParse(t, "route(A,B,T) :- conn(A,B,T1), T is T1 + 5, \\+ closed(B)")
	want := ":-(route(A,B,T),','(conn(A,B,T1),','(is(T,+(T1,5)),\\+(closed(B)))))"
	if canonical(tm) != want {
		t.Fatalf("got  %s\nwant %s", canonical(tm), want)
	}
}

func TestBarAsSemicolon(t *testing.T) {
	tm := mustParse(t, "(a | b)")
	if canonical(tm) != ";(a,b)" {
		t.Fatalf("got %s", canonical(tm))
	}
}

func TestCloneOps(t *testing.T) {
	a := NewOpTable()
	b := a.Clone()
	if err := b.Define(700, XFX, "~~>"); err != nil {
		t.Fatal(err)
	}
	if a.IsOperator("~~>") {
		t.Error("clone mutated original")
	}
	if !b.IsOperator("~~>") {
		t.Error("clone lost definition")
	}
}
