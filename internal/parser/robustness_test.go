package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lex"
)

// TestLexerNeverPanics feeds arbitrary strings to the lexer; any outcome
// is acceptable except a panic or an infinite loop.
func TestLexerNeverPanics(t *testing.T) {
	f := func(src string) bool {
		l := lex.New(src)
		for i := 0; i < len(src)+10; i++ {
			tok, err := l.Next()
			if err != nil || tok.Kind == lex.EOF {
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanics feeds arbitrary strings built from Prolog-ish
// fragments to the full reader.
func TestParserNeverPanics(t *testing.T) {
	fragments := []string{
		"f(", ")", "[", "]", "|", ",", ".", " ", ":-", "-->", "X", "foo",
		"'quo ted'", "\"str\"", "123", "3.14", "0'a", "{", "}", ";", "->",
		"+", "-", "*", "\\+", "=..", "!", "_", "%c\n", "/*", "*/", "@<",
	}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		var b strings.Builder
		n := 1 + r.Intn(12)
		for j := 0; j < n; j++ {
			b.WriteString(fragments[r.Intn(len(fragments))])
		}
		src := b.String()
		p := New(src)
		for k := 0; k < 50; k++ {
			tm, _, err := p.ReadTerm()
			if err != nil || tm == nil {
				break
			}
		}
	}
}

// TestParserRoundTripRandomised: any term the reader produces re-reads to
// the same canonical string.
func TestParserRoundTripRandomised(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	atoms := []string{"a", "foo", "'odd atom'", "[]", "+", "f_1"}
	var gen func(depth int) string
	gen = func(depth int) string {
		if depth <= 0 {
			switch r.Intn(4) {
			case 0:
				return atoms[r.Intn(len(atoms))]
			case 1:
				return "Var" + string(rune('A'+r.Intn(5)))
			case 2:
				return "42"
			default:
				return "1.5"
			}
		}
		switch r.Intn(3) {
		case 0:
			n := 1 + r.Intn(3)
			parts := make([]string, n)
			for i := range parts {
				parts[i] = gen(depth - 1)
			}
			return "g(" + strings.Join(parts, ", ") + ")"
		case 1:
			n := r.Intn(3)
			parts := make([]string, n)
			for i := range parts {
				parts[i] = gen(depth - 1)
			}
			return "[" + strings.Join(parts, ", ") + "]"
		default:
			return gen(0)
		}
	}
	for i := 0; i < 500; i++ {
		src := gen(1 + r.Intn(3))
		t1, _, err := ParseTerm(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		t2, _, err := ParseTerm(t1.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", t1.String(), src, err)
		}
		if t1.String() != t2.String() {
			t.Fatalf("round trip %q: %q != %q", src, t1, t2)
		}
	}
}
