package edb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/dict"
	"repro/internal/store"
)

// ExtDict is the external dictionary (paper §4 item 2): a persistent table
// of (name, arity, hash) for every atom and functor referenced by stored
// code. The hash is computed with the internal dictionary's hash function
// so the storage engine's pre-unification compares the same values the
// runtime dictionary would produce; the strings support range queries and
// session-independent relinking.
//
// Lookup and Len may run concurrently with each other and with Intern;
// concurrent Interns additionally require external write ordering (the
// engine serialises them under the knowledge-base write lock).
type ExtDict struct {
	mu      sync.RWMutex
	heap    *store.Heap
	entries map[extKey]uint64 // (name, arity) -> hash; loaded on open
	count   int
	journal []extKey // entries interned since BeginJournal (nil: not recording)
}

type extKey struct {
	name  string
	arity int
}

func openExtDict(st *store.Store) (*ExtDict, error) {
	d := &ExtDict{entries: map[extKey]uint64{}}
	if root, ok := st.GetMeta("edb.extdict"); ok {
		d.heap = store.OpenHeap(st.Pool(), store.PageID(root))
	} else {
		h, err := store.CreateHeap(st.Pool())
		if err != nil {
			return nil, err
		}
		d.heap = h
		if err := st.SetMeta("edb.extdict", uint64(h.Root())); err != nil {
			return nil, err
		}
	}
	err := d.heap.Scan(func(_ store.RID, data []byte) (bool, error) {
		name, arity, hash, err := decodeExtEntry(data)
		if err != nil {
			return false, err
		}
		d.entries[extKey{name, arity}] = hash
		d.count++
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

func encodeExtEntry(name string, arity int, hash uint64) []byte {
	var b bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(name)))
	b.Write(tmp[:n])
	b.WriteString(name)
	n = binary.PutUvarint(tmp[:], uint64(arity))
	b.Write(tmp[:n])
	binary.LittleEndian.PutUint64(tmp[:8], hash)
	b.Write(tmp[:8])
	return b.Bytes()
}

func decodeExtEntry(data []byte) (name string, arity int, hash uint64, err error) {
	r := bytes.NewReader(data)
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", 0, 0, err
	}
	buf := make([]byte, n)
	if _, err := r.Read(buf); err != nil {
		return "", 0, 0, err
	}
	a, err := binary.ReadUvarint(r)
	if err != nil {
		return "", 0, 0, err
	}
	var h [8]byte
	if _, err := r.Read(h[:]); err != nil {
		return "", 0, 0, err
	}
	return string(buf), int(a), binary.LittleEndian.Uint64(h[:]), nil
}

// Intern registers (name, arity) and returns its hash, inserting the entry
// on first use.
func (d *ExtDict) Intern(name string, arity int) (uint64, error) {
	k := extKey{name, arity}
	d.mu.RLock()
	h, ok := d.entries[k]
	d.mu.RUnlock()
	if ok {
		return h, nil
	}
	h = dict.Hash(name, arity)
	if _, err := d.heap.Insert(encodeExtEntry(name, arity, h)); err != nil {
		return 0, err
	}
	d.mu.Lock()
	d.entries[k] = h
	d.count++
	if d.journal != nil {
		d.journal = append(d.journal, k)
	}
	d.mu.Unlock()
	return h, nil
}

// Lookup returns the stored hash for (name, arity).
func (d *ExtDict) Lookup(name string, arity int) (uint64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	h, ok := d.entries[extKey{name, arity}]
	return h, ok
}

// Len reports the number of registered entries.
func (d *ExtDict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.count
}

// String summarises the dictionary.
func (d *ExtDict) String() string { return fmt.Sprintf("extdict(%d entries)", d.Len()) }
