// Package edb implements Educe*'s External Data Base layer (paper §4): the
// procedures table, the external dictionary, the per-procedure clause
// relations and the clauses relation holding relocatable compiled code,
// plus the pre-unification filter that selects candidate clauses inside
// the storage engine before any code is loaded.
//
// Layout on top of package store:
//
//   - a procedures heap file holds one descriptor record per external
//     procedure (the paper's procedures table);
//   - per procedure, a BANG-style grid index maps the hash values of the
//     first k head arguments to clause records (the paper's procedures
//     relation), and a variable-list heap holds clauses with variables in
//     indexed positions (those match any query and bypass the grid);
//   - one shared clauses heap stores the code/source blobs (the paper's
//     clauses relation: procedure_id, clause_id, relative_code);
//   - the external dictionary heap records (name, arity, hash) for every
//     atom and functor referenced by stored code, with the hash computed
//     by the same function as the internal dictionary so the storage
//     engine can pre-unify on hash values alone.
package edb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/store"
)

// MaxIndexedArgs caps how many head arguments contribute to the grid
// index. Indexing on more arguments grows code and directory size
// exponentially (the paper's §3.2.2 observation), so the index uses the
// leading arguments only.
const MaxIndexedArgs = 4

// Form says how a procedure's clauses are stored.
type Form uint8

// Clause storage forms.
const (
	// FormCode stores relocatable compiled WAM code (Educe*).
	FormCode Form = iota
	// FormSource stores clause source text (the Educe baseline).
	FormSource
)

// ProcInfo is one entry of the procedures table.
type ProcInfo struct {
	Name   string
	Arity  int
	ProcID uint32
	Form   Form
	// FactsOnly records that every stored clause is a ground-headed
	// fact; the baseline engine uses tuple-at-a-time retrieval for such
	// procedures instead of assert-based loading.
	FactsOnly bool
	// K is the number of indexed head arguments (0 for arity-0 procs).
	K int
	// ClauseCount is the number of stored clauses.
	ClauseCount int

	nextClauseID uint32
	gridHeader   store.PageID
	varRoot      store.PageID
	attrAnchors  []store.PageID // per-attribute secondary index anchors
	rid          store.RID      // descriptor record

	// openMu guards the lazy opens below so concurrent readers may race
	// to materialise the same access structure.
	openMu  sync.Mutex
	grid    *store.Grid
	varHeap *store.Heap
	attrIdx []*store.BTree
}

// Indicator renders name/arity.
func (p *ProcInfo) Indicator() string { return fmt.Sprintf("%s/%d", p.Name, p.Arity) }

// DB is an open external database.
type DB struct {
	st       *store.Store
	clauses  *store.Heap // shared clause-blob relation
	procHeap *store.Heap // procedure descriptors
	ext      *ExtDict
	procs    map[string]*ProcInfo
	nextProc uint32

	// Counters live in the store's obs.Registry (one per knowledge
	// base); retrievals run concurrently across sessions, so every
	// update is atomic. Stats() is a view over these.
	retrievals *obs.Counter
	scanned    *obs.Counter // clauses examined by pre-unification
	candidates *obs.Counter // clauses that passed pre-unification
	stored     *obs.Gauge   // clauses currently stored (state, not traffic)
	fullScans  *obs.Counter
	pagesPerRt *obs.Histogram // buffer accesses per retrieval

	// Per-access-path selectivity counters (choices made, candidates
	// scanned, candidates matched), indexed by obs.IndexPath. Only the
	// EDB paths are populated here; the rel layer owns its own.
	paths [obs.NumIndexPaths]pathCounters
}

// pathCounters is the registry-backed selectivity record of one access
// path.
type pathCounters struct {
	choices *obs.Counter
	scanned *obs.Counter
	matched *obs.Counter
}

// Stats counts pre-unification effectiveness. It is a view over the
// knowledge base's metrics registry.
type Stats struct {
	// Retrievals counts clause-set retrievals.
	Retrievals uint64
	// ClausesScanned counts clauses examined by pre-unification (index
	// candidates plus variable-list records); with pre-unification
	// disabled every stored clause of the procedure is scanned and
	// returned.
	ClausesScanned uint64
	// CandidatesReturned counts clauses that passed pre-unification.
	CandidatesReturned uint64
	// ClausesStored is the total clauses currently stored.
	ClausesStored uint64
	// FullScans counts retrievals with no usable constraint.
	FullScans uint64
}

// Selectivity returns CandidatesReturned/ClausesScanned — the §4
// pre-unification selectivity (1 when nothing was scanned).
func (s Stats) Selectivity() float64 {
	if s.ClausesScanned == 0 {
		return 1
	}
	return float64(s.CandidatesReturned) / float64(s.ClausesScanned)
}

// Open attaches to (creating if necessary) the EDB inside st.
func Open(st *store.Store) (*DB, error) {
	reg := st.Obs()
	db := &DB{
		st:         st,
		procs:      map[string]*ProcInfo{},
		retrievals: reg.Counter("edb.retrievals"),
		scanned:    reg.Counter("edb.clauses_scanned"),
		candidates: reg.Counter("edb.clauses_passed"),
		stored:     reg.Gauge("edb.clauses_stored"),
		fullScans:  reg.Counter("edb.full_scans"),
		pagesPerRt: reg.Histogram("edb.pages_per_retrieval"),
	}
	reg.RegisterFunc("edb.preunify_selectivity", func() any {
		return obs.Ratio(db.candidates.Value(), db.scanned.Value())
	})
	for _, path := range []obs.IndexPath{
		obs.PathAttrIndex, obs.PathGrid, obs.PathVarList, obs.PathFullScan,
	} {
		db.paths[path] = pathCounters{
			choices: reg.Counter("edb.path." + path.String() + ".choices"),
			scanned: reg.Counter("edb.path." + path.String() + ".scanned"),
			matched: reg.Counter("edb.path." + path.String() + ".matched"),
		}
	}
	if root, ok := st.GetMeta("edb.clauses"); ok {
		db.clauses = store.OpenHeap(st.Pool(), store.PageID(root))
	} else {
		h, err := store.CreateHeap(st.Pool())
		if err != nil {
			return nil, err
		}
		db.clauses = h
		if err := st.SetMeta("edb.clauses", uint64(h.Root())); err != nil {
			return nil, err
		}
	}
	if root, ok := st.GetMeta("edb.procs"); ok {
		db.procHeap = store.OpenHeap(st.Pool(), store.PageID(root))
	} else {
		h, err := store.CreateHeap(st.Pool())
		if err != nil {
			return nil, err
		}
		db.procHeap = h
		if err := st.SetMeta("edb.procs", uint64(h.Root())); err != nil {
			return nil, err
		}
	}
	ext, err := openExtDict(st)
	if err != nil {
		return nil, err
	}
	db.ext = ext
	if err := db.loadProcs(); err != nil {
		return nil, err
	}
	return db, nil
}

// Store returns the underlying store (for I/O statistics).
func (db *DB) Store() *store.Store { return db.st }

// Ext returns the external dictionary.
func (db *DB) Ext() *ExtDict { return db.ext }

// Stats returns a snapshot of the pre-unification counters.
func (db *DB) Stats() Stats {
	return Stats{
		Retrievals:         db.retrievals.Value(),
		ClausesScanned:     db.scanned.Value(),
		CandidatesReturned: db.candidates.Value(),
		ClausesStored:      uint64(db.stored.Value()),
		FullScans:          db.fullScans.Value(),
	}
}

// ResetStats zeroes the traffic counters (ClausesStored is state, not
// traffic, and is kept). These counters are shared across every session
// of the knowledge base; reset them only from a KB-level call.
func (db *DB) ResetStats() {
	db.retrievals.Reset()
	db.scanned.Reset()
	db.candidates.Reset()
	db.fullScans.Reset()
	db.pagesPerRt.Reset()
}

func procKey(name string, arity int) string { return fmt.Sprintf("%s/%d", name, arity) }

func (db *DB) loadProcs() error {
	return db.procHeap.Scan(func(rid store.RID, data []byte) (bool, error) {
		p, err := decodeProc(data)
		if err != nil {
			return false, err
		}
		p.rid = rid
		if p.ProcID >= db.nextProc {
			db.nextProc = p.ProcID + 1
		}
		db.procs[procKey(p.Name, p.Arity)] = p
		db.stored.Add(int64(p.ClauseCount))
		return true, nil
	})
}

func encodeProc(p *ProcInfo) []byte {
	var b bytes.Buffer
	wu := func(v uint64) {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], v)
		b.Write(tmp[:n])
	}
	wu(uint64(len(p.Name)))
	b.WriteString(p.Name)
	wu(uint64(p.Arity))
	wu(uint64(p.ProcID))
	wu(uint64(p.Form))
	if p.FactsOnly {
		wu(1)
	} else {
		wu(0)
	}
	wu(uint64(p.K))
	wu(uint64(p.ClauseCount))
	wu(uint64(p.nextClauseID))
	wu(uint64(p.gridHeader))
	wu(uint64(p.varRoot))
	wu(uint64(len(p.attrAnchors)))
	for _, a := range p.attrAnchors {
		wu(uint64(a))
	}
	return b.Bytes()
}

func decodeProc(data []byte) (*ProcInfo, error) {
	r := bytes.NewReader(data)
	var err error
	ru := func() uint64 {
		v, e := binary.ReadUvarint(r)
		if e != nil && err == nil {
			err = e
		}
		return v
	}
	n := ru()
	name := make([]byte, n)
	if _, e := r.Read(name); e != nil && err == nil {
		err = e
	}
	p := &ProcInfo{Name: string(name)}
	p.Arity = int(ru())
	p.ProcID = uint32(ru())
	p.Form = Form(ru())
	p.FactsOnly = ru() == 1
	p.K = int(ru())
	p.ClauseCount = int(ru())
	p.nextClauseID = uint32(ru())
	p.gridHeader = store.PageID(ru())
	p.varRoot = store.PageID(ru())
	na := int(ru())
	for i := 0; i < na; i++ {
		p.attrAnchors = append(p.attrAnchors, store.PageID(ru()))
	}
	if err != nil {
		return nil, fmt.Errorf("edb: corrupt procedure descriptor: %w", err)
	}
	return p, nil
}

// Proc looks up the procedures table.
func (db *DB) Proc(name string, arity int) *ProcInfo {
	return db.procs[procKey(name, arity)]
}

// Procs returns all procedure descriptors sorted by indicator.
func (db *DB) Procs() []*ProcInfo {
	out := make([]*ProcInfo, 0, len(db.procs))
	for _, p := range db.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

// CreateProc registers a new external procedure with the given storage
// form. It is an error if the procedure already exists.
func (db *DB) CreateProc(name string, arity int, form Form) (*ProcInfo, error) {
	if db.Proc(name, arity) != nil {
		return nil, fmt.Errorf("edb: procedure %s/%d already exists", name, arity)
	}
	k := arity
	if k > MaxIndexedArgs {
		k = MaxIndexedArgs
	}
	p := &ProcInfo{
		Name:      name,
		Arity:     arity,
		ProcID:    db.nextProc,
		Form:      form,
		FactsOnly: true, // cleared on the first rule stored
		K:         k,
	}
	db.nextProc++
	if k > 0 {
		g, err := store.CreateGrid(db.st.Pool(), k)
		if err != nil {
			return nil, err
		}
		p.grid = g
		p.gridHeader = g.Header()
		// Secondary indices, one per indexed head argument (the paper's
		// "primary keys and secondary indices" used for clause filtering,
		// §3.2.1): a hash index per attribute gives full selectivity for
		// single-attribute constraints, where the grid's bit-interleaved
		// partitioning only contributes depth/k bits.
		for i := 0; i < k; i++ {
			bt, err := store.CreateBTree(db.st.Pool())
			if err != nil {
				return nil, err
			}
			p.attrAnchors = append(p.attrAnchors, bt.Anchor())
			p.attrIdx = append(p.attrIdx, bt)
		}
	}
	vh, err := store.CreateHeap(db.st.Pool())
	if err != nil {
		return nil, err
	}
	p.varHeap = vh
	p.varRoot = vh.Root()
	rid, err := db.procHeap.Insert(encodeProc(p))
	if err != nil {
		return nil, err
	}
	p.rid = rid
	db.procs[procKey(name, arity)] = p
	return p, nil
}

// EnsureProc returns the procedure, creating it when absent.
func (db *DB) EnsureProc(name string, arity int, form Form) (*ProcInfo, error) {
	if p := db.Proc(name, arity); p != nil {
		return p, nil
	}
	return db.CreateProc(name, arity, form)
}

// DropProc removes the procedure and all its clauses.
func (db *DB) DropProc(p *ProcInfo) error {
	scs, err := db.AllClauses(p)
	if err != nil {
		return err
	}
	for _, sc := range scs {
		if err := db.DeleteClause(p, sc); err != nil {
			return err
		}
	}
	if err := db.procHeap.Delete(p.rid); err != nil {
		return err
	}
	delete(db.procs, procKey(p.Name, p.Arity))
	return nil
}

// saveProc rewrites the descriptor after mutation.
func (db *DB) saveProc(p *ProcInfo) error {
	rid, err := db.procHeap.Update(p.rid, encodeProc(p))
	if err != nil {
		return err
	}
	p.rid = rid
	return nil
}

func (db *DB) procGrid(p *ProcInfo) (*store.Grid, error) {
	if p.K == 0 {
		return nil, nil
	}
	p.openMu.Lock()
	defer p.openMu.Unlock()
	if p.grid == nil {
		g, err := store.OpenGrid(db.st.Pool(), p.gridHeader)
		if err != nil {
			return nil, err
		}
		p.grid = g
	}
	return p.grid, nil
}

func (db *DB) procVarHeap(p *ProcInfo) *store.Heap {
	p.openMu.Lock()
	defer p.openMu.Unlock()
	if p.varHeap == nil {
		p.varHeap = store.OpenHeap(db.st.Pool(), p.varRoot)
	}
	return p.varHeap
}

// MarkRule records that p holds at least one non-fact clause, disabling
// the baseline's tuple-at-a-time access path for it.
func (db *DB) MarkRule(p *ProcInfo) error {
	if !p.FactsOnly {
		return nil
	}
	p.FactsOnly = false
	return db.saveProc(p)
}

// procAttrIdx opens (lazily) the secondary index on attribute i.
func (db *DB) procAttrIdx(p *ProcInfo, i int) *store.BTree {
	p.openMu.Lock()
	defer p.openMu.Unlock()
	for len(p.attrIdx) < len(p.attrAnchors) {
		p.attrIdx = append(p.attrIdx, nil)
	}
	if p.attrIdx[i] == nil {
		p.attrIdx[i] = store.OpenBTree(db.st.Pool(), p.attrAnchors[i])
	}
	return p.attrIdx[i]
}
