package edb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/dict"
	"repro/internal/obs"
	"repro/internal/store"
)

// hashKeyBytes renders an attribute hash as a B-tree key.
func hashKeyBytes(h uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], h)
	return b[:]
}

// ArgKey is the type-and-value hash of one head argument, the attribute
// value stored in the procedures relation (paper §4 item 3: "attributes
// can have as valid format: integer, real, atom, list, structure...").
// Variables are represented by Wild: a clause with a variable in an
// indexed position matches any query value for that attribute.
type ArgKey struct {
	Wild bool
	Hash uint64
}

// Arg key type tags mixed into the hash so that, e.g., atom foo and a
// structure foo/2 never collide (indexing on type as well as value,
// §3.2.2).
const (
	tagAtomKey = 0x61 // 'a'
	tagIntKey  = 0x69 // 'i'
	tagFltKey  = 0x66 // 'f'
	tagStrKey  = 0x73 // 's'
	tagLisKey  = 0x6c // 'l'
)

func mixKey(tag byte, h uint64) uint64 {
	h ^= uint64(tag) * 0x9e3779b97f4a7c15
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// AtomKey returns the arg key of an atom.
func AtomKey(name string) ArgKey { return ArgKey{Hash: mixKey(tagAtomKey, dict.Hash(name, 0))} }

// IntKey returns the arg key of an integer.
func IntKey(v int64) ArgKey { return ArgKey{Hash: mixKey(tagIntKey, uint64(v))} }

// FloatKey returns the arg key of a float.
func FloatKey(bits uint64) ArgKey { return ArgKey{Hash: mixKey(tagFltKey, bits)} }

// StructKey returns the arg key of a structure, by functor. Deeper
// pre-unification (executing nested head code inside the store, which the
// paper leaves as an open tuning question) is approximated by top-level
// functor identity.
func StructKey(name string, arity int) ArgKey {
	return ArgKey{Hash: mixKey(tagStrKey, dict.Hash(name, arity))}
}

// ListKey returns the arg key of a list cell.
func ListKey() ArgKey { return ArgKey{Hash: mixKey(tagLisKey, 0)} }

// WildKey returns the wildcard key (a variable).
func WildKey() ArgKey { return ArgKey{Wild: true} }

// StoredClause is one clause retrieved from (or addressed in) the EDB.
type StoredClause struct {
	ClauseID uint32
	// Blob is the stored payload: relocatable code (FormCode) or source
	// text (FormSource).
	Blob []byte

	blobRID store.RID
	keys    []ArgKey
	varRec  store.RID // set when the clause lives in the variable list
	inVar   bool
}

// clause registry record (grid payload packs reg-RID; varlist stores the
// record inline):
//
//	clauseID u32, blobRID u64, varMask u64, k hashes u64
func encodeClauseRec(id uint32, blob store.RID, keys []ArgKey) []byte {
	var b bytes.Buffer
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], id)
	b.Write(tmp[:4])
	binary.LittleEndian.PutUint64(tmp[:], blob.Pack())
	b.Write(tmp[:])
	var mask uint64
	for i, k := range keys {
		if k.Wild {
			mask |= 1 << uint(i)
		}
	}
	binary.LittleEndian.PutUint64(tmp[:], mask)
	b.Write(tmp[:])
	for _, k := range keys {
		binary.LittleEndian.PutUint64(tmp[:], k.Hash)
		b.Write(tmp[:])
	}
	return b.Bytes()
}

func decodeClauseRec(data []byte) (id uint32, blob store.RID, keys []ArgKey, err error) {
	if len(data) < 20 {
		return 0, store.RID{}, nil, fmt.Errorf("edb: short clause record")
	}
	id = binary.LittleEndian.Uint32(data[:4])
	blob = store.UnpackRID(binary.LittleEndian.Uint64(data[4:12]))
	mask := binary.LittleEndian.Uint64(data[12:20])
	rest := data[20:]
	for i := 0; i*8+8 <= len(rest); i++ {
		k := ArgKey{Hash: binary.LittleEndian.Uint64(rest[i*8 : i*8+8])}
		if mask&(1<<uint(i)) != 0 {
			k.Wild = true
		}
		keys = append(keys, k)
	}
	return id, blob, keys, nil
}

// StoreClause stores one clause blob under the procedure with the given
// head-argument keys (only the first p.K are consulted) and returns its
// clause ID.
func (db *DB) StoreClause(p *ProcInfo, keys []ArgKey, blob []byte) (uint32, error) {
	if len(keys) < p.K {
		return 0, fmt.Errorf("edb: %s: got %d arg keys, need %d", p.Indicator(), len(keys), p.K)
	}
	keys = keys[:p.K]
	id := p.nextClauseID
	p.nextClauseID++
	blobRID, err := db.clauses.Insert(blob)
	if err != nil {
		return 0, err
	}
	anyWild := false
	for _, k := range keys {
		if k.Wild {
			anyWild = true
			break
		}
	}
	if p.K == 0 || anyWild {
		rec := encodeClauseRec(id, blobRID, keys)
		if _, err := db.procVarHeap(p).Insert(rec); err != nil {
			return 0, err
		}
	} else {
		g, err := db.procGrid(p)
		if err != nil {
			return 0, err
		}
		hashes := make([]uint64, p.K)
		for i, k := range keys {
			hashes[i] = k.Hash
		}
		rec := encodeClauseRec(id, blobRID, keys)
		recRID, err := db.clauses.Insert(rec)
		if err != nil {
			return 0, err
		}
		if err := g.Insert(hashes, recRID.Pack()); err != nil {
			return 0, err
		}
		for i, k := range keys {
			if err := db.procAttrIdx(p, i).Insert(hashKeyBytes(k.Hash), recRID.Pack()); err != nil {
				return 0, err
			}
		}
	}
	p.ClauseCount++
	db.stored.Add(1)
	return id, db.saveProc(p)
}

// Retrieve returns the candidate clauses for a call whose bound argument
// keys are given (nil or Wild entries mean the argument is unbound). The
// result is pre-unified — filtered inside the storage layer by hash
// comparison on every bound indexed argument — and ordered by clause ID
// (source order). Passing no keys retrieves every clause.
func (db *DB) Retrieve(p *ProcInfo, query []ArgKey) ([]StoredClause, error) {
	return db.RetrieveObs(p, query, nil)
}

// RetrieveObs is Retrieve with per-query cost attribution: when qs is
// non-nil the call charges its preunify time (candidate selection and
// hash filtering inside the storage layer), its edb_fetch time (clause
// blob fetches), and its clauses-scanned / clauses-passed / pages-touched
// counts to qs. KB-wide totals go to the metrics registry either way.
func (db *DB) RetrieveObs(p *ProcInfo, query []ArgKey, qs *obs.QueryStats) ([]StoredClause, error) {
	db.retrievals.Add(1)
	var tally *store.Tally
	var t0 time.Time
	if qs != nil {
		qs.Retrievals++
		tally = &store.Tally{}
		db.st.Pool().Attach(tally)
		defer func() {
			pages := tally.Stats().Accesses
			db.st.Pool().Detach(tally)
			qs.PagesTouched += pages
			db.pagesPerRt.ObserveN(pages)
		}()
		t0 = time.Now()
	}
	scanned := uint64(0)
	known := make([]bool, p.K)
	hashes := make([]uint64, p.K)
	anyKnown := false
	for i := 0; i < p.K && i < len(query); i++ {
		if !query[i].Wild {
			known[i] = true
			hashes[i] = query[i].Hash
			anyKnown = true
		}
	}
	// primary is the access path chosen for the ground-indexed clauses:
	// attribute index, grid partial match, or (with nothing bound) a full
	// scan. Its selectivity is recorded per path.
	primary := obs.PathGrid
	if !anyKnown {
		primary = obs.PathFullScan
		db.fullScans.Add(1)
	}

	var out []StoredClause

	// Candidates among ground-indexed clauses: use the secondary index of
	// the first bound attribute when one exists (fully selective), and
	// fall back to the grid's partial match otherwise.
	if p.K > 0 {
		var recRIDs []store.RID
		firstKnown := -1
		for i, k := range known {
			if k {
				firstKnown = i
				break
			}
		}
		if firstKnown >= 0 && firstKnown < len(p.attrAnchors) {
			primary = obs.PathAttrIndex
			vals, err := db.procAttrIdx(p, firstKnown).SearchEQ(hashKeyBytes(hashes[firstKnown]))
			if err != nil {
				return nil, err
			}
			for _, v := range vals {
				recRIDs = append(recRIDs, store.UnpackRID(v))
			}
		} else {
			g, err := db.procGrid(p)
			if err != nil {
				return nil, err
			}
			err = g.PartialMatch(known, hashes, func(payload uint64) bool {
				recRIDs = append(recRIDs, store.UnpackRID(payload))
				return true
			})
			if err != nil {
				return nil, err
			}
		}
		for _, rid := range recRIDs {
			rec, err := db.clauses.Get(rid)
			if err != nil {
				return nil, err
			}
			id, blobRID, keys, err := decodeClauseRec(rec)
			if err != nil {
				return nil, err
			}
			scanned++
			// Residual filter on the remaining bound attributes.
			match := true
			for i := range known {
				if known[i] && i < len(keys) && keys[i].Hash != hashes[i] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			out = append(out, StoredClause{ClauseID: id, blobRID: blobRID, keys: keys, varRec: rid})
		}
	}
	primaryScanned, primaryMatched := scanned, uint64(len(out))

	// Variable-list candidates: filtered attribute by attribute.
	err := db.procVarHeap(p).Scan(func(rid store.RID, data []byte) (bool, error) {
		id, blobRID, keys, err := decodeClauseRec(data)
		if err != nil {
			return false, err
		}
		scanned++
		for i := range known {
			if known[i] && i < len(keys) && !keys[i].Wild && keys[i].Hash != hashes[i] {
				return true, nil // filtered out
			}
		}
		out = append(out, StoredClause{ClauseID: id, blobRID: blobRID, keys: keys, varRec: rid, inVar: true})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	varScanned := scanned - primaryScanned
	varMatched := uint64(len(out)) - primaryMatched
	db.notePath(primary, 1, primaryScanned, primaryMatched, qs)
	if varScanned > 0 {
		db.notePath(obs.PathVarList, 1, varScanned, varMatched, qs)
	}

	sort.Slice(out, func(i, j int) bool { return out[i].ClauseID < out[j].ClauseID })
	// Candidate selection (pre-unification inside the storage layer) ends
	// here; what follows is fetching the surviving clauses' code.
	if qs != nil {
		now := time.Now()
		qs.Phases.Add(obs.PhasePreUnify, now.Sub(t0))
		t0 = now
	}
	for i := range out {
		blob, err := db.clauses.Get(out[i].blobRID)
		if err != nil {
			return nil, err
		}
		out[i].Blob = blob
	}
	db.scanned.Add(scanned)
	db.candidates.Add(uint64(len(out)))
	if qs != nil {
		qs.Phases.Add(obs.PhaseEDBFetch, time.Since(t0))
		qs.ClausesScanned += scanned
		qs.ClausesPassed += uint64(len(out))
	}
	return out, nil
}

// notePath records one retrieval's selectivity on an access path, both
// KB-wide (registry) and per query (qs, when attribution is on).
func (db *DB) notePath(path obs.IndexPath, choices, scanned, matched uint64, qs *obs.QueryStats) {
	pc := &db.paths[path]
	pc.choices.Add(choices)
	pc.scanned.Add(scanned)
	pc.matched.Add(matched)
	if qs != nil {
		qs.Paths[path].Choices += choices
		qs.Paths[path].Scanned += scanned
		qs.Paths[path].Matched += matched
	}
}

// AllClauses returns every stored clause of p in source order.
func (db *DB) AllClauses(p *ProcInfo) ([]StoredClause, error) {
	return db.Retrieve(p, nil)
}

// DeleteClause removes a clause previously returned by Retrieve.
func (db *DB) DeleteClause(p *ProcInfo, sc StoredClause) error {
	if sc.inVar {
		if err := db.procVarHeap(p).Delete(sc.varRec); err != nil {
			return err
		}
	} else {
		g, err := db.procGrid(p)
		if err != nil {
			return err
		}
		hashes := make([]uint64, p.K)
		for i := 0; i < p.K && i < len(sc.keys); i++ {
			hashes[i] = sc.keys[i].Hash
		}
		ok, err := g.Delete(hashes, sc.varRec.Pack())
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("edb: clause %d of %s not in index", sc.ClauseID, p.Indicator())
		}
		for i := 0; i < p.K && i < len(sc.keys); i++ {
			if _, err := db.procAttrIdx(p, i).Delete(hashKeyBytes(sc.keys[i].Hash), sc.varRec.Pack()); err != nil {
				return err
			}
		}
		if err := db.clauses.Delete(sc.varRec); err != nil {
			return err
		}
	}
	if err := db.clauses.Delete(sc.blobRID); err != nil {
		return err
	}
	p.ClauseCount--
	if db.stored.Value() > 0 {
		db.stored.Add(-1)
	}
	return db.saveProc(p)
}
