package edb

import (
	"bytes"
	"fmt"

	"repro/internal/store"
)

// Check verifies the EDB's integrity: the shared heaps and every
// procedure's access structures pass their storage-level invariant
// checks, every clause registry record decodes and its code blob is
// readable, the secondary attribute indexes mirror the grid exactly,
// and reachable clause counts match the procedure descriptors. On a
// file-backed store every page visited also has its checksum verified
// by the pager, so a clean Check means the whole knowledge base is
// readable and structurally sound.
func (db *DB) Check() error {
	if err := db.clauses.Check(); err != nil {
		return fmt.Errorf("edb: clauses heap: %w", err)
	}
	if err := db.procHeap.Check(); err != nil {
		return fmt.Errorf("edb: procedures heap: %w", err)
	}
	for _, p := range db.Procs() {
		if err := db.CheckProc(p); err != nil {
			return err
		}
	}
	return nil
}

// CheckProc verifies one procedure's stored clauses and indexes.
func (db *DB) CheckProc(p *ProcInfo) error {
	count, err := db.checkVarList(p)
	if err != nil {
		return err
	}
	if p.K > 0 {
		ground, err := db.checkGround(p)
		if err != nil {
			return err
		}
		count += ground
	}
	if count != p.ClauseCount {
		return fmt.Errorf("edb: %s: %d clauses reachable, descriptor records %d", p.Indicator(), count, p.ClauseCount)
	}
	return nil
}

// checkVarList verifies the variable-list heap and its records.
func (db *DB) checkVarList(p *ProcInfo) (int, error) {
	vh := db.procVarHeap(p)
	if err := vh.Check(); err != nil {
		return 0, fmt.Errorf("edb: %s: variable list: %w", p.Indicator(), err)
	}
	count := 0
	err := vh.Scan(func(rid store.RID, data []byte) (bool, error) {
		_, blobRID, _, err := decodeClauseRec(data)
		if err != nil {
			return false, fmt.Errorf("edb: %s: variable-list record %s: %w", p.Indicator(), rid, err)
		}
		if _, err := db.clauses.Get(blobRID); err != nil {
			return false, fmt.Errorf("edb: %s: clause blob %s: %w", p.Indicator(), blobRID, err)
		}
		count++
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	return count, nil
}

// checkGround verifies the grid, the registry records it addresses, and
// that each secondary attribute index holds exactly the grid's entries.
func (db *DB) checkGround(p *ProcInfo) (int, error) {
	if len(p.attrAnchors) != p.K {
		return 0, fmt.Errorf("edb: %s: %d attribute indexes recorded, want %d", p.Indicator(), len(p.attrAnchors), p.K)
	}
	g, err := db.procGrid(p)
	if err != nil {
		return 0, fmt.Errorf("edb: %s: grid: %w", p.Indicator(), err)
	}
	if err := g.Check(); err != nil {
		return 0, fmt.Errorf("edb: %s: grid: %w", p.Indicator(), err)
	}
	// Resolve every grid payload: registry record decodes, its keys are
	// ground, and the code blob it addresses is readable.
	type regRec struct{ keys []ArgKey }
	recs := map[uint64]regRec{}
	var walkErr error
	err = g.PartialMatch(make([]bool, p.K), make([]uint64, p.K), func(payload uint64) bool {
		rid := store.UnpackRID(payload)
		rec, err := db.clauses.Get(rid)
		if err != nil {
			walkErr = fmt.Errorf("edb: %s: clause record %s: %w", p.Indicator(), rid, err)
			return false
		}
		_, blobRID, keys, err := decodeClauseRec(rec)
		if err != nil {
			walkErr = fmt.Errorf("edb: %s: clause record %s: %w", p.Indicator(), rid, err)
			return false
		}
		for i, k := range keys {
			if k.Wild {
				walkErr = fmt.Errorf("edb: %s: clause record %s: wildcard key %d stored in the grid", p.Indicator(), rid, i)
				return false
			}
		}
		if _, err := db.clauses.Get(blobRID); err != nil {
			walkErr = fmt.Errorf("edb: %s: clause blob %s: %w", p.Indicator(), blobRID, err)
			return false
		}
		if _, dup := recs[payload]; dup {
			walkErr = fmt.Errorf("edb: %s: clause record %s indexed twice in the grid", p.Indicator(), rid)
			return false
		}
		recs[payload] = regRec{keys: keys}
		return true
	})
	if err != nil {
		return 0, fmt.Errorf("edb: %s: grid: %w", p.Indicator(), err)
	}
	if walkErr != nil {
		return 0, walkErr
	}
	// The per-attribute secondary indexes must mirror the grid: same
	// payload set, keyed by that attribute's hash.
	for i := range p.attrAnchors {
		bt := db.procAttrIdx(p, i)
		if err := bt.Check(); err != nil {
			return 0, fmt.Errorf("edb: %s: attribute index %d: %w", p.Indicator(), i, err)
		}
		seen := 0
		var idxErr error
		err := bt.Range(nil, nil, func(key []byte, val uint64) bool {
			r, ok := recs[val]
			if !ok {
				idxErr = fmt.Errorf("edb: %s: attribute index %d: payload %d not in the grid", p.Indicator(), i, val)
				return false
			}
			if i < len(r.keys) && !bytes.Equal(key, hashKeyBytes(r.keys[i].Hash)) {
				idxErr = fmt.Errorf("edb: %s: attribute index %d: payload %d filed under the wrong hash", p.Indicator(), i, val)
				return false
			}
			seen++
			return true
		})
		if err != nil {
			return 0, fmt.Errorf("edb: %s: attribute index %d: %w", p.Indicator(), i, err)
		}
		if idxErr != nil {
			return 0, idxErr
		}
		if seen != len(recs) {
			return 0, fmt.Errorf("edb: %s: attribute index %d holds %d entries, grid holds %d", p.Indicator(), i, seen, len(recs))
		}
	}
	return len(recs), nil
}

// Repair rebuilds what is derivable: for every procedure whose check
// fails, the per-attribute secondary indexes are reconstructed from the
// grid (the primary index). It returns the number of indexes rebuilt.
// Corruption in a primary structure — a heap, the grid, or the
// variable list — cannot be regenerated from elsewhere and is reported
// as an error.
func (db *DB) Repair() (int, error) {
	rebuilt := 0
	for _, p := range db.Procs() {
		if db.CheckProc(p) == nil {
			continue
		}
		if p.K == 0 {
			return rebuilt, fmt.Errorf("edb: %s: unrepairable: no derived structures to rebuild", p.Indicator())
		}
		// The grid and the records it addresses must be sound; they are
		// the source the secondary indexes are derived from.
		g, err := db.procGrid(p)
		if err != nil {
			return rebuilt, fmt.Errorf("edb: %s: unrepairable: %w", p.Indicator(), err)
		}
		if err := g.Check(); err != nil {
			return rebuilt, fmt.Errorf("edb: %s: unrepairable primary index: %w", p.Indicator(), err)
		}
		type entry struct {
			keys    []ArgKey
			payload uint64
		}
		var entries []entry
		var walkErr error
		err = g.PartialMatch(make([]bool, p.K), make([]uint64, p.K), func(payload uint64) bool {
			rec, err := db.clauses.Get(store.UnpackRID(payload))
			if err != nil {
				walkErr = err
				return false
			}
			_, _, keys, err := decodeClauseRec(rec)
			if err != nil {
				walkErr = err
				return false
			}
			entries = append(entries, entry{keys: keys, payload: payload})
			return true
		})
		if err == nil {
			err = walkErr
		}
		if err != nil {
			return rebuilt, fmt.Errorf("edb: %s: unrepairable clause registry: %w", p.Indicator(), err)
		}
		// Rebuild every secondary index fresh. The old trees' pages are
		// abandoned rather than walked for freeing: their links are the
		// very thing no longer trusted.
		p.openMu.Lock()
		p.attrIdx = nil
		p.attrAnchors = nil
		p.openMu.Unlock()
		for i := 0; i < p.K; i++ {
			bt, err := store.CreateBTree(db.st.Pool())
			if err != nil {
				return rebuilt, err
			}
			for _, e := range entries {
				if i >= len(e.keys) {
					continue
				}
				if err := bt.Insert(hashKeyBytes(e.keys[i].Hash), e.payload); err != nil {
					return rebuilt, err
				}
			}
			p.openMu.Lock()
			p.attrAnchors = append(p.attrAnchors, bt.Anchor())
			p.attrIdx = append(p.attrIdx, bt)
			p.openMu.Unlock()
			rebuilt++
		}
		if err := db.saveProc(p); err != nil {
			return rebuilt, err
		}
		// Rebuilding the derived structures is all repair can do; if the
		// procedure still fails, the corruption is in a primary one.
		if err := db.CheckProc(p); err != nil {
			return rebuilt, fmt.Errorf("edb: unrepairable after index rebuild: %w", err)
		}
	}
	return rebuilt, nil
}
