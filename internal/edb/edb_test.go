package edb

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

func memDB(t *testing.T) *DB {
	t.Helper()
	st, err := store.Open("", 256)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateAndLookupProc(t *testing.T) {
	db := memDB(t)
	p, err := db.CreateProc("route", 3, FormCode)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 3 {
		t.Fatalf("K = %d", p.K)
	}
	if got := db.Proc("route", 3); got != p {
		t.Fatal("lookup mismatch")
	}
	if db.Proc("route", 2) != nil {
		t.Fatal("wrong-arity lookup should miss")
	}
	if _, err := db.CreateProc("route", 3, FormCode); err == nil {
		t.Fatal("duplicate create accepted")
	}
	// K capped.
	p2, _ := db.CreateProc("wide", 11, FormCode)
	if p2.K != MaxIndexedArgs {
		t.Fatalf("K for arity 11 = %d", p2.K)
	}
}

func TestStoreRetrieveGroundClauses(t *testing.T) {
	db := memDB(t)
	p, _ := db.CreateProc("edge", 2, FormCode)
	for i := 0; i < 100; i++ {
		keys := []ArgKey{AtomKey(fmt.Sprintf("n%d", i)), AtomKey(fmt.Sprintf("n%d", i+1))}
		if _, err := db.StoreClause(p, keys, []byte(fmt.Sprintf("blob%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Constrain first argument: exactly one candidate.
	scs, err := db.Retrieve(p, []ArgKey{AtomKey("n42"), WildKey()})
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 || string(scs[0].Blob) != "blob42" {
		t.Fatalf("retrieve n42 = %d clauses (%v)", len(scs), blobs(scs))
	}
	// Constrain second argument only.
	scs, err = db.Retrieve(p, []ArgKey{WildKey(), AtomKey("n8")})
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 || string(scs[0].Blob) != "blob7" {
		t.Fatalf("retrieve _,n8 = %v", scs)
	}
	// No constraint: all clauses in clause order.
	scs, _ = db.AllClauses(p)
	if len(scs) != 100 {
		t.Fatalf("all clauses = %d", len(scs))
	}
	for i := 1; i < len(scs); i++ {
		if scs[i].ClauseID <= scs[i-1].ClauseID {
			t.Fatal("clauses out of order")
		}
	}
}

func TestVariableHeadedClauses(t *testing.T) {
	db := memDB(t)
	p, _ := db.CreateProc("p", 2, FormCode)
	db.StoreClause(p, []ArgKey{AtomKey("a"), AtomKey("x")}, []byte("c0"))
	db.StoreClause(p, []ArgKey{WildKey(), AtomKey("y")}, []byte("c1")) // p(_, y)
	db.StoreClause(p, []ArgKey{AtomKey("b"), WildKey()}, []byte("c2"))

	// Query p(a, _): must include c0 (match) and c1 (var first arg),
	// exclude c2 (first arg b).
	scs, err := db.Retrieve(p, []ArgKey{AtomKey("a"), WildKey()})
	if err != nil {
		t.Fatal(err)
	}
	got := blobs(scs)
	if len(got) != 2 || got[0] != "c0" || got[1] != "c1" {
		t.Fatalf("retrieve p(a,_) = %v", got)
	}
	// Query p(_, y): c1 only? c0 has x, c2 has wild second arg.
	scs, _ = db.Retrieve(p, []ArgKey{WildKey(), AtomKey("y")})
	got = blobs(scs)
	if len(got) != 2 || got[0] != "c1" || got[1] != "c2" {
		t.Fatalf("retrieve p(_,y) = %v", got)
	}
}

func blobs(scs []StoredClause) []string {
	var out []string
	for _, sc := range scs {
		out = append(out, string(sc.Blob))
	}
	return out
}

func TestTypeAndValueIndexing(t *testing.T) {
	db := memDB(t)
	p, _ := db.CreateProc("t", 1, FormCode)
	db.StoreClause(p, []ArgKey{AtomKey("foo")}, []byte("atom"))
	db.StoreClause(p, []ArgKey{IntKey(7)}, []byte("int"))
	db.StoreClause(p, []ArgKey{StructKey("foo", 2)}, []byte("struct"))
	db.StoreClause(p, []ArgKey{ListKey()}, []byte("list"))

	cases := []struct {
		key  ArgKey
		want string
	}{
		{AtomKey("foo"), "atom"},
		{IntKey(7), "int"},
		{StructKey("foo", 2), "struct"},
		{ListKey(), "list"},
	}
	for _, c := range cases {
		scs, err := db.Retrieve(p, []ArgKey{c.key})
		if err != nil {
			t.Fatal(err)
		}
		if len(scs) != 1 || string(scs[0].Blob) != c.want {
			t.Errorf("retrieve %+v = %v, want [%s]", c.key, blobs(scs), c.want)
		}
	}
	if scs, _ := db.Retrieve(p, []ArgKey{IntKey(8)}); len(scs) != 0 {
		t.Errorf("retrieve 8 = %v", blobs(scs))
	}
}

func TestDeleteClause(t *testing.T) {
	db := memDB(t)
	p, _ := db.CreateProc("d", 1, FormCode)
	db.StoreClause(p, []ArgKey{AtomKey("a")}, []byte("ca"))
	db.StoreClause(p, []ArgKey{WildKey()}, []byte("cv"))
	db.StoreClause(p, []ArgKey{AtomKey("b")}, []byte("cb"))

	scs, _ := db.Retrieve(p, []ArgKey{AtomKey("a")})
	if len(scs) != 2 {
		t.Fatalf("before delete: %v", blobs(scs))
	}
	if err := db.DeleteClause(p, scs[0]); err != nil { // delete "ca"
		t.Fatal(err)
	}
	scs, _ = db.Retrieve(p, []ArgKey{AtomKey("a")})
	if len(scs) != 1 || string(scs[0].Blob) != "cv" {
		t.Fatalf("after delete: %v", blobs(scs))
	}
	// Delete the var-list clause too.
	if err := db.DeleteClause(p, scs[0]); err != nil {
		t.Fatal(err)
	}
	if p.ClauseCount != 1 {
		t.Fatalf("clause count = %d", p.ClauseCount)
	}
}

func TestDropProc(t *testing.T) {
	db := memDB(t)
	p, _ := db.CreateProc("gone", 1, FormCode)
	db.StoreClause(p, []ArgKey{AtomKey("x")}, []byte("1"))
	if err := db.DropProc(p); err != nil {
		t.Fatal(err)
	}
	if db.Proc("gone", 1) != nil {
		t.Fatal("procedure still present")
	}
}

func TestArityZeroProc(t *testing.T) {
	db := memDB(t)
	p, _ := db.CreateProc("flag", 0, FormCode)
	db.StoreClause(p, nil, []byte("only"))
	scs, err := db.AllClauses(p)
	if err != nil || len(scs) != 1 {
		t.Fatalf("arity 0: %v %v", blobs(scs), err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edb.db")
	st, err := store.Open(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := db.CreateProc("conn", 2, FormCode)
	for i := 0; i < 50; i++ {
		db.StoreClause(p, []ArgKey{AtomKey(fmt.Sprintf("s%d", i)), IntKey(int64(i))}, []byte(fmt.Sprintf("code%d", i)))
	}
	if _, err := db.Ext().Intern("station", 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	db2, err := Open(st2)
	if err != nil {
		t.Fatal(err)
	}
	p2 := db2.Proc("conn", 2)
	if p2 == nil || p2.ClauseCount != 50 {
		t.Fatalf("reopened proc: %+v", p2)
	}
	scs, err := db2.Retrieve(p2, []ArgKey{AtomKey("s33"), WildKey()})
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 || string(scs[0].Blob) != "code33" {
		t.Fatalf("reopened retrieve: %v", blobs(scs))
	}
	if h, ok := db2.Ext().Lookup("station", 2); !ok || h == 0 {
		t.Fatal("external dictionary lost")
	}
}

func TestPreUnificationStats(t *testing.T) {
	db := memDB(t)
	p, _ := db.CreateProc("s", 1, FormCode)
	for i := 0; i < 1000; i++ {
		db.StoreClause(p, []ArgKey{IntKey(int64(i))}, []byte{byte(i)})
	}
	db.ResetStats()
	scs, _ := db.Retrieve(p, []ArgKey{IntKey(500)})
	if len(scs) != 1 {
		t.Fatalf("candidates = %d", len(scs))
	}
	st := db.Stats()
	if st.Retrievals != 1 || st.CandidatesReturned != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// The point of pre-unification: far fewer pages touched than a full
	// scan would need. Compare candidate counts.
	db.ResetStats()
	scs, _ = db.AllClauses(p)
	st = db.Stats()
	if st.FullScans != 1 || int(st.CandidatesReturned) != len(scs) || len(scs) != 1000 {
		t.Fatalf("full scan stats = %+v (%d clauses)", st, len(scs))
	}
}

func TestExtDictIntern(t *testing.T) {
	db := memDB(t)
	h1, err := db.Ext().Intern("foo", 2)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := db.Ext().Intern("foo", 2)
	if h1 != h2 {
		t.Fatal("intern not idempotent")
	}
	h3, _ := db.Ext().Intern("foo", 3)
	if h1 == h3 {
		t.Fatal("arity not mixed into hash")
	}
	if db.Ext().Len() != 2 {
		t.Fatalf("Len = %d", db.Ext().Len())
	}
}
