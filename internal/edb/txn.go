package edb

import "repro/internal/store"

// Transaction support. The pager-level transaction (store.Begin /
// store.Rollback) restores every page byte-for-byte, but the EDB layer
// caches derived state in memory: the procedures map, each ProcInfo's
// descriptor fields and lazily-opened access structures, the shared
// heap handles' append hints, and the external dictionary's entry map.
// Snapshot captures that state cheaply (value copies, no page I/O) and
// Restore puts it back in place after the pager rolled back, so a
// rolled-back transaction is invisible at every layer.
//
// Restore rewrites the fields of the *existing* ProcInfo values rather
// than replacing them: the engine's trap resolvers capture *ProcInfo
// pointers in closures, so pointer identity must survive rollback.

// procSnap is the value copy of one procedure descriptor's mutable
// fields.
type procSnap struct {
	form         Form
	factsOnly    bool
	k            int
	clauseCount  int
	nextClauseID uint32
	gridHeader   store.PageID
	varRoot      store.PageID
	attrAnchors  []store.PageID
	rid          store.RID
}

// Snapshot is the EDB state captured at transaction begin.
type Snapshot struct {
	procs    map[string]*ProcInfo
	vals     map[*ProcInfo]procSnap
	nextProc uint32
	stored   int64
}

// Snapshot captures the in-memory EDB state for a transaction. The
// caller must hold the knowledge base's write lock (transactions are
// KB-exclusive), and must also start the external dictionary's journal
// via Ext().BeginJournal.
func (db *DB) Snapshot() *Snapshot {
	s := &Snapshot{
		procs:    make(map[string]*ProcInfo, len(db.procs)),
		vals:     make(map[*ProcInfo]procSnap, len(db.procs)),
		nextProc: db.nextProc,
		stored:   db.stored.Value(),
	}
	for k, p := range db.procs {
		s.procs[k] = p
		s.vals[p] = procSnap{
			form:         p.Form,
			factsOnly:    p.FactsOnly,
			k:            p.K,
			clauseCount:  p.ClauseCount,
			nextClauseID: p.nextClauseID,
			gridHeader:   p.gridHeader,
			varRoot:      p.varRoot,
			attrAnchors:  append([]store.PageID(nil), p.attrAnchors...),
			rid:          p.rid,
		}
	}
	return s
}

// Restore rolls the in-memory EDB state back to the snapshot. Call it
// after store.Rollback has restored the pages; it discards every cached
// handle so subsequent access reopens against the restored pages.
func (db *DB) Restore(s *Snapshot) {
	procs := make(map[string]*ProcInfo, len(s.procs))
	for k, p := range s.procs {
		v := s.vals[p]
		p.Form = v.form
		p.FactsOnly = v.factsOnly
		p.K = v.k
		p.ClauseCount = v.clauseCount
		p.nextClauseID = v.nextClauseID
		p.gridHeader = v.gridHeader
		p.varRoot = v.varRoot
		p.attrAnchors = append([]store.PageID(nil), v.attrAnchors...)
		p.rid = v.rid
		p.openMu.Lock()
		p.grid = nil
		p.varHeap = nil
		p.attrIdx = nil
		p.openMu.Unlock()
		procs[k] = p
	}
	db.procs = procs
	db.nextProc = s.nextProc
	db.stored.Set(s.stored)
	// Reopen the shared heaps: their roots are immutable but the handles
	// cache an append hint that may point at pages the rollback freed.
	db.clauses = store.OpenHeap(db.st.Pool(), db.clauses.Root())
	db.procHeap = store.OpenHeap(db.st.Pool(), db.procHeap.Root())
}

// BeginJournal starts recording newly interned entries so an aborted
// transaction can remove them again. Interning is idempotent and
// content-hashed, so replaying an entry after rollback recreates the
// same value — but the persistent heap record is gone, and the map must
// agree with the heap for edb.Check.
func (d *ExtDict) BeginJournal() {
	d.mu.Lock()
	d.journal = []extKey{}
	d.mu.Unlock()
}

// EndJournal stops recording (commit path: the entries stay).
func (d *ExtDict) EndJournal() {
	d.mu.Lock()
	d.journal = nil
	d.mu.Unlock()
}

// RollbackJournal removes every entry interned since BeginJournal and
// reopens the heap handle over the rolled-back pages.
func (d *ExtDict) RollbackJournal() {
	d.mu.Lock()
	for _, k := range d.journal {
		if _, ok := d.entries[k]; ok {
			delete(d.entries, k)
			d.count--
		}
	}
	d.journal = nil
	d.heap = store.OpenHeap(d.heap.Pool(), d.heap.Root())
	d.mu.Unlock()
}
