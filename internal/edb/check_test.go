package edb

import (
	"fmt"
	"testing"

	"repro/internal/store"
)

func buildCheckedDB(t *testing.T) (*DB, *ProcInfo) {
	t.Helper()
	st, err := store.Open("", 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	db, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	p, err := db.CreateProc("r", 2, FormCode)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		keys := []ArgKey{AtomKey(fmt.Sprintf("k%d", i%5)), IntKey(int64(i))}
		if i%4 == 0 {
			keys[0] = WildKey()
		}
		if _, err := db.StoreClause(p, keys, []byte(fmt.Sprintf("code-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return db, p
}

func TestCheckAcceptsSoundStore(t *testing.T) {
	db, _ := buildCheckedDB(t)
	if err := db.Check(); err != nil {
		t.Fatalf("sound store fails check: %v", err)
	}
}

func TestRepairRebuildsSecondaryIndexes(t *testing.T) {
	db, p := buildCheckedDB(t)
	// Poison attribute index 0 with an entry addressing no grid record:
	// a derived structure now disagrees with its primary.
	bt := db.procAttrIdx(p, 0)
	if err := bt.Insert(hashKeyBytes(12345), 1<<40); err != nil {
		t.Fatal(err)
	}
	if err := db.Check(); err == nil {
		t.Fatal("check accepted a poisoned secondary index")
	}
	n, err := db.Repair()
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if n != p.K {
		t.Fatalf("rebuilt %d indexes, want %d", n, p.K)
	}
	if err := db.Check(); err != nil {
		t.Fatalf("store still unsound after repair: %v", err)
	}
	scs, err := db.Retrieve(p, []ArgKey{AtomKey("k1"), WildKey()})
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) == 0 {
		t.Fatal("indexed retrieval empty after repair")
	}
}

func TestRepairRefusesPrimaryCorruption(t *testing.T) {
	db, p := buildCheckedDB(t)
	// Lie about the clause count: nothing derivable can explain it, so
	// repair must refuse rather than fabricate consistency.
	p.ClauseCount++
	defer func() { p.ClauseCount-- }()
	if err := db.Check(); err == nil {
		t.Fatal("check accepted a bad clause count")
	}
	if _, err := db.Repair(); err == nil {
		t.Fatal("repair claimed success on unrepairable corruption")
	}
}
