package loader

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/compiler"
	"repro/internal/parser"
	"repro/internal/term"
	"repro/internal/wam"
)

// consult compiles and links a whole program source onto a fresh machine.
func consult(t *testing.T, src string) *wam.Machine {
	t.Helper()
	m := wam.NewMachine(nil)
	if err := consultInto(m, src); err != nil {
		t.Fatalf("consult: %v", err)
	}
	return m
}

func consultInto(m *wam.Machine, src string) error {
	p := parser.New(src)
	terms, err := p.ReadAll()
	if err != nil {
		return err
	}
	c := compiler.New(compiler.Options{})
	byPred := map[term.Indicator][]compiler.ClauseCode{}
	var order []term.Indicator
	for _, tm := range terms {
		ccs, err := c.CompileClause(tm)
		if err != nil {
			return err
		}
		for _, cc := range ccs {
			if _, ok := byPred[cc.Pred]; !ok {
				order = append(order, cc.Pred)
			}
			byPred[cc.Pred] = append(byPred[cc.Pred], cc)
		}
	}
	for _, pi := range order {
		if _, err := LinkPredicate(m, pi.Name, pi.Arity, byPred[pi], DefaultOptions); err != nil {
			return err
		}
	}
	return nil
}

// query compiles `?- Goal` and returns all solutions as binding maps
// (variable name -> term string).
func query(t *testing.T, m *wam.Machine, goal string) []map[string]string {
	t.Helper()
	out, err := queryErr(m, goal)
	if err != nil {
		t.Fatalf("query %s: %v", goal, err)
	}
	return out
}

func queryErr(m *wam.Machine, goal string) ([]map[string]string, error) {
	body, vars, err := parser.ParseTerm(goal)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)
	vlist := make([]*term.Var, len(names))
	for i, n := range names {
		vlist[i] = vars[n]
	}
	c := compiler.New(compiler.Options{})
	ccs, err := c.CompileQuery("$query", vlist, body)
	if err != nil {
		return nil, err
	}
	byPred := map[term.Indicator][]compiler.ClauseCode{}
	for _, cc := range ccs {
		byPred[cc.Pred] = append(byPred[cc.Pred], cc)
	}
	for pi, cs := range byPred {
		if _, err := LinkPredicate(m, pi.Name, pi.Arity, cs, DefaultOptions); err != nil {
			return nil, err
		}
	}
	m.Reset()
	args := make([]wam.Cell, len(vlist))
	for i := range args {
		args[i] = wam.MakeRef(m.NewVar())
	}
	fn := m.Dict.Intern("$query", len(args))
	run := m.Call(fn, args)
	var out []map[string]string
	for {
		ok, err := run.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		sol := map[string]string{}
		for i, n := range names {
			sol[n] = m.DecodeTerm(args[i]).String()
		}
		out = append(out, sol)
	}
}

func bindings(t *testing.T, m *wam.Machine, goal, v string) []string {
	t.Helper()
	var out []string
	for _, sol := range query(t, m, goal) {
		out = append(out, sol[v])
	}
	return out
}

func TestFactsAndRules(t *testing.T) {
	m := consult(t, `
		parent(tom, bob).
		parent(tom, liz).
		parent(bob, ann).
		parent(bob, pat).
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
	`)
	got := bindings(t, m, "grandparent(tom, W)", "W")
	want := []string{"ann", "pat"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("grandparent(tom, W) = %v, want %v", got, want)
	}
	if n := len(query(t, m, "parent(tom, bob)")); n != 1 {
		t.Fatalf("parent(tom,bob): %d solutions", n)
	}
	if n := len(query(t, m, "parent(bob, tom)")); n != 0 {
		t.Fatalf("parent(bob,tom): %d solutions", n)
	}
}

func TestRecursionAppend(t *testing.T) {
	m := consult(t, `
		append([], L, L).
		append([H|T], L, [H|R]) :- append(T, L, R).
	`)
	got := bindings(t, m, "append([1,2], [3,4], X)", "X")
	if !reflect.DeepEqual(got, []string{"[1,2,3,4]"}) {
		t.Fatalf("append = %v", got)
	}
	// Backwards: enumerate splits.
	sols := query(t, m, "append(A, B, [1,2,3])")
	if len(sols) != 4 {
		t.Fatalf("append splits: %d solutions", len(sols))
	}
	if sols[0]["A"] != "[]" || sols[0]["B"] != "[1,2,3]" {
		t.Fatalf("first split = %v", sols[0])
	}
	if sols[3]["A"] != "[1,2,3]" || sols[3]["B"] != "[]" {
		t.Fatalf("last split = %v", sols[3])
	}
}

func TestNaiveReverse(t *testing.T) {
	m := consult(t, `
		app([], L, L).
		app([H|T], L, [H|R]) :- app(T, L, R).
		nrev([], []).
		nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
	`)
	got := bindings(t, m, "nrev([1,2,3,4,5], X)", "X")
	if !reflect.DeepEqual(got, []string{"[5,4,3,2,1]"}) {
		t.Fatalf("nrev = %v", got)
	}
}

func TestArithmeticAndComparison(t *testing.T) {
	m := consult(t, `
		fact(0, 1).
		fact(N, F) :- N > 0, N1 is N - 1, fact(N1, F1), F is N * F1.
	`)
	got := bindings(t, m, "fact(10, F)", "F")
	if !reflect.DeepEqual(got, []string{"3628800"}) {
		t.Fatalf("fact(10) = %v", got)
	}
}

func TestCutSemantics(t *testing.T) {
	m := consult(t, `
		max(X, Y, X) :- X >= Y, !.
		max(_, Y, Y).
	`)
	got := bindings(t, m, "max(3, 7, M)", "M")
	if !reflect.DeepEqual(got, []string{"7"}) {
		t.Fatalf("max(3,7) = %v", got)
	}
	got = bindings(t, m, "max(9, 2, M)", "M")
	if !reflect.DeepEqual(got, []string{"9"}) {
		t.Fatalf("max(9,2) = %v (cut failed to prune)", got)
	}
}

func TestCutAfterCall(t *testing.T) {
	m := consult(t, `
		p(1). p(2). p(3).
		first(X) :- p(X), !.
	`)
	got := bindings(t, m, "first(X)", "X")
	if !reflect.DeepEqual(got, []string{"1"}) {
		t.Fatalf("first(X) = %v", got)
	}
}

func TestIfThenElse(t *testing.T) {
	m := consult(t, `
		classify(X, neg) :- ( X < 0 -> true ; fail ).
		classify(X, pos) :- ( X < 0 -> fail ; true ).
		sgn(X, S) :- ( X > 0 -> S = 1 ; X < 0 -> S = -1 ; S = 0 ).
	`)
	if got := bindings(t, m, "classify(-5, C)", "C"); !reflect.DeepEqual(got, []string{"neg"}) {
		t.Fatalf("classify(-5) = %v", got)
	}
	if got := bindings(t, m, "sgn(42, S)", "S"); !reflect.DeepEqual(got, []string{"1"}) {
		t.Fatalf("sgn(42) = %v", got)
	}
	if got := bindings(t, m, "sgn(-7, S)", "S"); !reflect.DeepEqual(got, []string{"-1"}) {
		t.Fatalf("sgn(-7) = %v", got)
	}
	if got := bindings(t, m, "sgn(0, S)", "S"); !reflect.DeepEqual(got, []string{"0"}) {
		t.Fatalf("sgn(0) = %v", got)
	}
}

func TestDisjunction(t *testing.T) {
	m := consult(t, `
		d(X) :- ( X = a ; X = b ; X = c ).
	`)
	got := bindings(t, m, "d(X)", "X")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("d(X) = %v", got)
	}
	if len(query(t, m, "d(b)")) != 1 {
		t.Fatal("d(b) should succeed once")
	}
}

func TestCutInsideDisjunction(t *testing.T) {
	// The ! inside the disjunction must cut the clause's choice points,
	// including p's alternatives.
	m := consult(t, `
		p(1). p(2).
		q(X) :- p(X), ( X > 1 -> true ; !, fail ).
		r(X) :- p(X), ( X = 1, ! ; true ).
	`)
	got := bindings(t, m, "q(X)", "X")
	if len(got) != 0 {
		t.Fatalf("q(X) = %v, want no solutions (cut then fail)", got)
	}
	got = bindings(t, m, "r(X)", "X")
	if !reflect.DeepEqual(got, []string{"1"}) {
		t.Fatalf("r(X) = %v, want [1]", got)
	}
}

func TestNegation(t *testing.T) {
	m := consult(t, `
		p(1). p(2).
		notp(X) :- \+ p(X).
	`)
	if len(query(t, m, "notp(3)")) != 1 {
		t.Fatal("\\+ p(3) should succeed")
	}
	if len(query(t, m, "notp(1)")) != 0 {
		t.Fatal("\\+ p(1) should fail")
	}
}

func TestMetaCall(t *testing.T) {
	m := consult(t, `
		p(1). p(2).
		apply(G) :- call(G).
		apply1(G, X) :- call(G, X).
	`)
	if len(query(t, m, "apply(p(1))")) != 1 {
		t.Fatal("call(p(1)) failed")
	}
	got := bindings(t, m, "apply1(p, X)", "X")
	if !reflect.DeepEqual(got, []string{"1", "2"}) {
		t.Fatalf("call(p, X) = %v", got)
	}
}

func TestFirstArgIndexingAvoidsChoicePoints(t *testing.T) {
	src := `
		color(red, warm).
		color(blue, cool).
		color(green, cool).
		color(yellow, warm).
	`
	m := consult(t, src)
	m.ResetStats()
	query(t, m, "color(blue, T)")
	indexed := m.Stats().ChoicePoints

	m2 := wam.NewMachine(nil)
	if err := consultIntoNoIndex(m2, src); err != nil {
		t.Fatal(err)
	}
	m2.ResetStats()
	if _, err := queryErr(m2, "color(blue, T)"); err != nil {
		t.Fatal(err)
	}
	chained := m2.Stats().ChoicePoints

	if indexed >= chained {
		t.Fatalf("indexing should create fewer choice points: indexed=%d chained=%d", indexed, chained)
	}
	if indexed != 0 {
		t.Fatalf("bound first arg with unique key should be deterministic, got %d choice points", indexed)
	}
}

func consultIntoNoIndex(m *wam.Machine, src string) error {
	p := parser.New(src)
	terms, err := p.ReadAll()
	if err != nil {
		return err
	}
	c := compiler.New(compiler.Options{})
	byPred := map[term.Indicator][]compiler.ClauseCode{}
	for _, tm := range terms {
		ccs, err := c.CompileClause(tm)
		if err != nil {
			return err
		}
		for _, cc := range ccs {
			byPred[cc.Pred] = append(byPred[cc.Pred], cc)
		}
	}
	for pi, cs := range byPred {
		if _, err := LinkPredicate(m, pi.Name, pi.Arity, cs, Options{Index: false}); err != nil {
			return err
		}
	}
	return nil
}

func TestIndexingOnIntegersAndStructures(t *testing.T) {
	m := consult(t, `
		f(1, one).
		f(2, two).
		f(g(a), gee).
		f(h(b), aitch).
		f([1], list).
	`)
	if got := bindings(t, m, "f(2, X)", "X"); !reflect.DeepEqual(got, []string{"two"}) {
		t.Fatalf("f(2,X) = %v", got)
	}
	if got := bindings(t, m, "f(g(a), X)", "X"); !reflect.DeepEqual(got, []string{"gee"}) {
		t.Fatalf("f(g(a),X) = %v", got)
	}
	if got := bindings(t, m, "f([1], X)", "X"); !reflect.DeepEqual(got, []string{"list"}) {
		t.Fatalf("f([1],X) = %v", got)
	}
	// Unbound: all five in source order.
	if got := bindings(t, m, "f(_, X)", "X"); len(got) != 5 {
		t.Fatalf("f(_,X) = %v", got)
	}
}

func TestClauseCodeRoundTrip(t *testing.T) {
	c := compiler.New(compiler.Options{})
	tm, _, err := parser.ParseTerm("route(A, B, T) :- conn(A, C, T1), T2 is T1 + 3, route(C, B, T3), T is T2 + T3")
	if err != nil {
		t.Fatal(err)
	}
	ccs, err := c.CompileClause(tm)
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range ccs {
		blob := EncodeClause(cc)
		back, err := DecodeClause(blob)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(cc, back) {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", cc, back)
		}
	}
}

func TestDecodeCorruptBlob(t *testing.T) {
	if _, err := DecodeClause([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error on garbage blob")
	}
	if _, err := DecodeClause(nil); err == nil {
		t.Fatal("expected error on empty blob")
	}
}

func TestLinkedCodeSharedAcrossMachines(t *testing.T) {
	// The same relocatable clause links onto two machines whose
	// dictionaries assign different IDs.
	c := compiler.New(compiler.Options{})
	tm, _, _ := parser.ParseTerm("greet(hello)")
	ccs, _ := c.CompileClause(tm)

	m1 := wam.NewMachine(nil)
	// Skew m2's dictionary so IDs differ.
	m2 := wam.NewMachine(nil)
	for i := 0; i < 100; i++ {
		m2.Dict.Intern("skew", i)
	}
	for _, m := range []*wam.Machine{m1, m2} {
		if _, err := LinkPredicate(m, "greet", 1, ccs, DefaultOptions); err != nil {
			t.Fatal(err)
		}
		sols, err := queryErr(m, "greet(X)")
		if err != nil {
			t.Fatal(err)
		}
		if len(sols) != 1 || sols[0]["X"] != "hello" {
			t.Fatalf("greet(X) = %v", sols)
		}
	}
}

func TestEmptyPredicateFails(t *testing.T) {
	m := wam.NewMachine(nil)
	if _, err := LinkPredicate(m, "nothing", 1, nil, DefaultOptions); err != nil {
		t.Fatal(err)
	}
	sols, err := queryErr(m, "nothing(x)")
	if err != nil || len(sols) != 0 {
		t.Fatalf("empty predicate: %v, %v", sols, err)
	}
}

func TestDeepStructures(t *testing.T) {
	m := consult(t, `
		deep(f(g(h(i(j(k(x))))))).
		samepath(f(g(X)), X).
	`)
	if len(query(t, m, "deep(f(g(h(i(j(k(x)))))))")) != 1 {
		t.Fatal("deep structure match failed")
	}
	if len(query(t, m, "deep(f(g(h(i(j(k(y)))))))")) != 0 {
		t.Fatal("deep structure should not match different leaf")
	}
	got := bindings(t, m, "samepath(f(g(42)), X)", "X")
	if !reflect.DeepEqual(got, []string{"42"}) {
		t.Fatalf("samepath = %v", got)
	}
}

func TestVarGoal(t *testing.T) {
	m := consult(t, `
		p(ok).
		runit(G) :- G.
	`)
	got := bindings(t, m, "runit(p(X))", "X")
	if !reflect.DeepEqual(got, []string{"ok"}) {
		t.Fatalf("variable goal = %v", got)
	}
}
