// Package loader is Educe*'s dynamic loader (paper §3.1): it resolves the
// associative (symbolic) addresses in relocatable clause code against a
// machine's internal dictionary, and splices in the control code — choice
// point chains and first-argument switch instructions — that turns a bag of
// clause codes into a runnable procedure.
//
// The loader is deliberately cheap: the paper observes that ~90% of
// compilation time goes to lexing/parsing/memory management and only ~10%
// to code generation, and equates loader work to (less than) that 10%.
// Linking here is a single pass over the instructions plus table
// construction.
package loader

import (
	"fmt"
	"sort"

	"repro/internal/compiler"
	"repro/internal/dict"
	"repro/internal/wam"
)

// Options configures linking.
type Options struct {
	// Index disables first-argument indexing when false (used by the
	// indexing ablation benchmark). Default true via DefaultOptions.
	Index bool
	// Transient marks the resulting procedure as dynamically loaded
	// EDB code subject to eviction.
	Transient bool
}

// DefaultOptions enables indexing.
var DefaultOptions = Options{Index: true}

// LinkPredicate resolves and installs the given clauses as the definition
// of name/arity on machine m, replacing any previous definition.
func LinkPredicate(m *wam.Machine, name string, arity int, clauses []compiler.ClauseCode, opts Options) (*wam.Proc, error) {
	blk, err := BuildBlock(m, name, arity, clauses, opts)
	if err != nil {
		return nil, err
	}
	fn := m.Dict.Intern(name, arity)
	if old := m.Proc(fn); old != nil && old.Block != nil {
		m.RemoveBlock(old.Block)
	}
	m.AddBlock(blk)
	proc := &wam.Proc{Fn: fn, Arity: arity, Block: blk, Transient: opts.Transient}
	if old := m.Proc(fn); old != nil {
		proc.Dynamic = old.Dynamic
		proc.External = old.External
	}
	m.DefineProc(proc)
	return proc, nil
}

// BuildBlock links clauses into a code block without installing it.
func BuildBlock(m *wam.Machine, name string, arity int, clauses []compiler.ClauseCode, opts Options) (*wam.CodeBlock, error) {
	label := fmt.Sprintf("%s/%d", name, arity)
	if len(clauses) == 0 {
		return &wam.CodeBlock{Name: label, Instrs: []wam.Instr{{Op: wam.OpFail}}}, nil
	}
	resolved := make([][]wam.Instr, len(clauses))
	for i, cc := range clauses {
		ins, err := Resolve(m, cc)
		if err != nil {
			return nil, fmt.Errorf("loader: %s clause %d: %w", label, i, err)
		}
		resolved[i] = ins
	}

	if len(clauses) == 1 {
		return &wam.CodeBlock{Name: label, Instrs: resolved[0]}, nil
	}

	indexable := opts.Index && arity >= 1
	for _, cc := range clauses {
		if cc.Key.Kind == compiler.KeyVar || cc.Key.Kind == compiler.KeyFlt {
			indexable = false
			break
		}
	}

	var code []wam.Instr
	switchAt := -1
	if indexable {
		// Reserve slot 0 for switch_on_term; targets patched later.
		switchAt = 0
		code = append(code, wam.Instr{Op: wam.OpSwitchOnTerm})
	}

	// Main try_me_else chain; entries[i] is the offset of clause i's code.
	entries := make([]int32, len(clauses))
	markers := make([]int, len(clauses))
	for i, ins := range resolved {
		markers[i] = len(code)
		switch {
		case i == 0:
			code = append(code, wam.Instr{Op: wam.OpTryMeElse})
		case i == len(clauses)-1:
			code = append(code, wam.Instr{Op: wam.OpTrustMe})
		default:
			code = append(code, wam.Instr{Op: wam.OpRetryMeElse})
		}
		entries[i] = int32(len(code))
		code = append(code, ins...)
	}
	// Patch marker targets to the next marker.
	for i := 0; i < len(clauses)-1; i++ {
		code[markers[i]].L = int32(markers[i+1])
	}

	if indexable {
		conT, code2 := buildSwitch(m, code, clauses, entries, compiler.KeyCon, compiler.KeyInt)
		code = code2
		lisT, code3 := buildBucket(code, clauses, entries, compiler.KeyLis)
		code = code3
		strT, code4 := buildSwitch(m, code, clauses, entries, compiler.KeyStr, compiler.KeyStr)
		code = code4
		sw := &code[switchAt]
		sw.L = int32(markers[0]) // unbound first arg: full chain
		sw.A = conT
		sw.B = lisT
		sw.C = strT
	}
	return &wam.CodeBlock{Name: label, Instrs: code}, nil
}

// buildSwitch creates a switch_on_constant/structure dispatch for the
// clauses whose key kind is k1 or k2. It returns the offset to jump to for
// that term type (-1 = fail) and the extended code.
func buildSwitch(m *wam.Machine, code []wam.Instr, clauses []compiler.ClauseCode, entries []int32, k1, k2 compiler.KeyKind) (int32, []wam.Instr) {
	type group struct {
		key     wam.Cell
		entries []int32
	}
	var order []wam.Cell
	byKey := map[wam.Cell]*group{}
	structure := k1 == compiler.KeyStr
	for i, cc := range clauses {
		if cc.Key.Kind != k1 && cc.Key.Kind != k2 {
			continue
		}
		var key wam.Cell
		switch cc.Key.Kind {
		case compiler.KeyCon:
			key = wam.MakeCon(m.Dict.Intern(cc.Key.Name, 0))
		case compiler.KeyInt:
			key = wam.MakeInt(cc.Key.Int)
		case compiler.KeyStr:
			key = wam.MakeFun(m.Dict.Intern(cc.Key.Name, cc.Key.Arity), cc.Key.Arity)
		}
		g := byKey[key]
		if g == nil {
			g = &group{key: key}
			byKey[key] = g
			order = append(order, key)
		}
		g.entries = append(g.entries, entries[i])
	}
	if len(order) == 0 {
		return -1, code
	}
	swOff := int32(len(code))
	op := wam.OpSwitchOnConstant
	if structure {
		op = wam.OpSwitchOnStructure
	}
	swIdx := len(code)
	code = append(code, wam.Instr{Op: op, L: -1})
	tbl := make([]wam.SwitchCase, 0, len(order))
	for _, key := range order {
		g := byKey[key]
		var off int32
		if len(g.entries) == 1 {
			off = g.entries[0]
		} else {
			off = int32(len(code))
			code = appendChain(code, g.entries)
		}
		tbl = append(tbl, wam.SwitchCase{Key: key, Off: off})
	}
	sort.Slice(tbl, func(i, j int) bool { return tbl[i].Key < tbl[j].Key })
	code[swIdx].Tbl = tbl
	return swOff, code
}

// buildBucket creates a try/retry/trust sub-chain for clauses of kind k
// (used for list-keyed clauses). It returns the jump target (-1 = fail).
func buildBucket(code []wam.Instr, clauses []compiler.ClauseCode, entries []int32, k compiler.KeyKind) (int32, []wam.Instr) {
	var es []int32
	for i, cc := range clauses {
		if cc.Key.Kind == k {
			es = append(es, entries[i])
		}
	}
	switch len(es) {
	case 0:
		return -1, code
	case 1:
		return es[0], code
	default:
		off := int32(len(code))
		return off, appendChain(code, es)
	}
}

// appendChain emits try/retry/trust over the given clause entries.
func appendChain(code []wam.Instr, entries []int32) []wam.Instr {
	for i, e := range entries {
		switch {
		case i == 0:
			code = append(code, wam.Instr{Op: wam.OpTry, L: e})
		case i == len(entries)-1:
			code = append(code, wam.Instr{Op: wam.OpTrust, L: e})
		default:
			code = append(code, wam.Instr{Op: wam.OpRetry, L: e})
		}
	}
	return code
}

// Resolve rewrites one clause's relocatable code against m's dictionary,
// returning linked instructions. This is the loader's address-resolution
// step (associative address -> internal dictionary identifier).
func Resolve(m *wam.Machine, cc compiler.ClauseCode) ([]wam.Instr, error) {
	out := make([]wam.Instr, len(cc.Instrs))
	copy(out, cc.Instrs)
	for i := range out {
		ins := &out[i]
		switch ins.Op {
		case wam.OpGetConstant, wam.OpPutConstant, wam.OpUnifyConstant:
			s, err := symbolAt(cc, ins.Fn)
			if err != nil {
				return nil, err
			}
			ins.Fn = m.Dict.Intern(s.Name, 0)
		case wam.OpGetStructure, wam.OpPutStructure:
			s, err := symbolAt(cc, ins.Fn)
			if err != nil {
				return nil, err
			}
			ins.Fn = m.Dict.Intern(s.Name, s.Arity)
		case wam.OpCall, wam.OpExecute:
			s, err := symbolAt(cc, ins.Fn)
			if err != nil {
				return nil, err
			}
			ins.Fn = m.Dict.Intern(s.Name, s.Arity)
		case wam.OpBuiltin:
			s, err := symbolAt(cc, ins.Fn)
			if err != nil {
				return nil, err
			}
			idx := m.BuiltinIndex(s.Name, s.Arity)
			if idx < 0 {
				return nil, fmt.Errorf("unknown builtin %s/%d", s.Name, s.Arity)
			}
			ins.N = int32(idx)
			ins.Fn = 0
		}
	}
	return out, nil
}

func symbolAt(cc compiler.ClauseCode, idx dict.ID) (compiler.Symbol, error) {
	i := int(idx)
	if i < 0 || i >= len(cc.Symbols) {
		return compiler.Symbol{}, fmt.Errorf("symbol index %d out of range (have %d)", i, len(cc.Symbols))
	}
	return cc.Symbols[i], nil
}
