package loader

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/compiler"
	"repro/internal/dict"
	"repro/internal/wam"
)

// codecMagic guards against decoding unrelated blobs, and codecVersion
// against stale EDB contents after format changes.
const (
	codecMagic   = 0xEDC0
	codecVersion = 1
)

// EncodeClause serialises one relocatable clause to the byte format stored
// in the EDB clauses relation (paper §4, the relative_code attribute).
func EncodeClause(cc compiler.ClauseCode) []byte {
	var b bytes.Buffer
	wu := func(v uint64) {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], v)
		b.Write(tmp[:n])
	}
	wi := func(v int64) {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutVarint(tmp[:], v)
		b.Write(tmp[:n])
	}
	ws := func(s string) {
		wu(uint64(len(s)))
		b.WriteString(s)
	}
	wu(codecMagic)
	wu(codecVersion)
	ws(cc.Pred.Name)
	wu(uint64(cc.Pred.Arity))
	// Index key.
	wu(uint64(cc.Key.Kind))
	ws(cc.Key.Name)
	wu(uint64(cc.Key.Arity))
	wi(cc.Key.Int)
	wu(uint64(cc.NVars))
	// Symbols.
	wu(uint64(len(cc.Symbols)))
	for _, s := range cc.Symbols {
		wu(uint64(s.Kind))
		ws(s.Name)
		wu(uint64(s.Arity))
	}
	// Instructions.
	wu(uint64(len(cc.Instrs)))
	for _, ins := range cc.Instrs {
		wu(uint64(ins.Op))
		wi(int64(ins.Reg))
		wi(int64(ins.Arg))
		wi(int64(ins.N))
		wu(uint64(ins.Fn))
		wi(int64(ins.Ar))
		wi(ins.Int)
		wu(math.Float64bits(ins.Flt))
		wi(int64(ins.L))
		wi(int64(ins.A))
		wi(int64(ins.B))
		wi(int64(ins.C))
		wu(uint64(len(ins.Tbl)))
		for _, sc := range ins.Tbl {
			wu(uint64(sc.Key))
			wi(int64(sc.Off))
		}
	}
	return b.Bytes()
}

// DecodeClause reverses EncodeClause.
func DecodeClause(data []byte) (compiler.ClauseCode, error) {
	r := bytes.NewReader(data)
	var firstErr error
	ru := func() uint64 {
		v, err := binary.ReadUvarint(r)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	ri := func() int64 {
		v, err := binary.ReadVarint(r)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	rs := func() string {
		n := ru()
		if firstErr != nil || n > uint64(r.Len()) {
			if firstErr == nil {
				firstErr = fmt.Errorf("loader: truncated string")
			}
			return ""
		}
		buf := make([]byte, n)
		if _, err := r.Read(buf); err != nil && firstErr == nil {
			firstErr = err
		}
		return string(buf)
	}
	var cc compiler.ClauseCode
	if ru() != codecMagic {
		return cc, fmt.Errorf("loader: bad clause blob magic")
	}
	if v := ru(); v != codecVersion {
		return cc, fmt.Errorf("loader: unsupported clause code version %d", v)
	}
	cc.Pred.Name = rs()
	cc.Pred.Arity = int(ru())
	cc.Key.Kind = compiler.KeyKind(ru())
	cc.Key.Name = rs()
	cc.Key.Arity = int(ru())
	cc.Key.Int = ri()
	cc.NVars = int(ru())
	nsym := ru()
	if firstErr == nil && nsym > uint64(len(data)) {
		return cc, fmt.Errorf("loader: implausible symbol count %d", nsym)
	}
	cc.Symbols = make([]compiler.Symbol, nsym)
	for i := range cc.Symbols {
		cc.Symbols[i].Kind = compiler.SymKind(ru())
		cc.Symbols[i].Name = rs()
		cc.Symbols[i].Arity = int(ru())
	}
	nins := ru()
	if firstErr == nil && nins > uint64(len(data)) {
		return cc, fmt.Errorf("loader: implausible instruction count %d", nins)
	}
	cc.Instrs = make([]wam.Instr, nins)
	for i := range cc.Instrs {
		ins := &cc.Instrs[i]
		ins.Op = wam.Op(ru())
		ins.Reg = int32(ri())
		ins.Arg = int32(ri())
		ins.N = int32(ri())
		ins.Fn = dict.ID(ru())
		ins.Ar = int32(ri())
		ins.Int = ri()
		ins.Flt = math.Float64frombits(ru())
		ins.L = int32(ri())
		ins.A = int32(ri())
		ins.B = int32(ri())
		ins.C = int32(ri())
		ntbl := ru()
		if firstErr == nil && ntbl > uint64(len(data)) {
			return cc, fmt.Errorf("loader: implausible switch table size %d", ntbl)
		}
		if ntbl > 0 {
			ins.Tbl = make([]wam.SwitchCase, ntbl)
			for j := range ins.Tbl {
				ins.Tbl[j].Key = wam.Cell(ru())
				ins.Tbl[j].Off = int32(ri())
			}
		}
	}
	if firstErr != nil {
		return cc, fmt.Errorf("loader: decode: %w", firstErr)
	}
	return cc, nil
}
