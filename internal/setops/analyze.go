// Package setops implements the paper's set-at-a-time evaluation
// strategy (§4): eligible compiled predicates are translated back into a
// Datalog rule form, evaluated bottom-up over relational operators with
// semi-naive (delta-driven) iteration, and the materialized result is
// fed to the WAM as a deterministic binding stream. The analyzer in this
// file is the safety gate: only predicates whose compiled code proves
// them to be pure, range-restricted Datalog are accepted; everything
// else falls back to the tuple-at-a-time WAM strategy.
package setops

import (
	"repro/internal/compiler"
	"repro/internal/rel"
	"repro/internal/term"
	"repro/internal/wam"
)

// Arg is one argument of a literal: a variable (rule-local index) or a
// constant mapped into the relational domain (atoms become strings).
type Arg struct {
	IsVar bool
	Var   int
	Val   rel.Value
}

// Literal is one atomic goal p(t1..tn).
type Literal struct {
	Pred term.Indicator
	Args []Arg
}

// Rule is a range-restricted Datalog rule (facts have an empty body).
type Rule struct {
	Head  Literal
	Body  []Literal
	NVars int
}

// DecompileClause reconstructs a Datalog rule from one clause's compiled
// code. It simulates the compiler's emission contract instruction by
// instruction; any opcode outside the pure-Datalog fragment (structures,
// lists, nil, cuts, inline builtins, arithmetic) rejects the clause.
// The second result reports acceptance.
func DecompileClause(cc compiler.ClauseCode) (Rule, bool) {
	arity := cc.Pred.Arity
	r := Rule{Head: Literal{Pred: cc.Pred, Args: make([]Arg, arity)}}
	headSet := make([]bool, arity)

	type regKey struct {
		y   bool
		reg int32
	}
	vars := map[regKey]int{}
	newVar := func(k regKey) int {
		v := r.NVars
		r.NVars++
		vars[k] = v
		return v
	}

	const (
		phaseHead = iota
		phaseBody
		phaseDone
	)
	phase := phaseHead

	// pending collects the put instructions of the goal currently being
	// assembled; OpCall/OpExecute consumes them.
	pending := map[int32]Arg{}

	setHead := func(pos int32, a Arg) bool {
		if phase != phaseHead || pos < 0 || int(pos) >= arity || headSet[pos] {
			return false
		}
		r.Head.Args[pos] = a
		headSet[pos] = true
		return true
	}
	setPending := func(pos int32, a Arg) bool {
		if phase == phaseDone {
			return false
		}
		phase = phaseBody
		if _, dup := pending[pos]; dup {
			return false
		}
		pending[pos] = a
		return true
	}
	sym := func(fn int32) (compiler.Symbol, bool) {
		if fn < 0 || int(fn) >= len(cc.Symbols) {
			return compiler.Symbol{}, false
		}
		return cc.Symbols[fn], true
	}
	callGoal := func(fn int32) bool {
		s, ok := sym(fn)
		if !ok || s.Kind != compiler.SymPred {
			return false
		}
		phase = phaseBody
		lit := Literal{
			Pred: term.Indicator{Name: s.Name, Arity: s.Arity},
			Args: make([]Arg, s.Arity),
		}
		for i := 0; i < s.Arity; i++ {
			a, ok := pending[int32(i)]
			if !ok {
				return false
			}
			lit.Args[i] = a
		}
		if len(pending) != s.Arity {
			return false
		}
		r.Body = append(r.Body, lit)
		pending = map[int32]Arg{}
		return true
	}

	for i, ins := range cc.Instrs {
		last := i == len(cc.Instrs)-1
		switch ins.Op {
		case wam.OpAllocate, wam.OpDeallocate:
			// Environment management carries no logical content.
		case wam.OpGetVariableX:
			if phase != phaseHead {
				return Rule{}, false
			}
			k := regKey{false, ins.Reg}
			if _, dup := vars[k]; dup {
				return Rule{}, false
			}
			if !setHead(ins.Arg, Arg{IsVar: true, Var: newVar(k)}) {
				return Rule{}, false
			}
		case wam.OpGetVariableY:
			if phase != phaseHead {
				return Rule{}, false
			}
			k := regKey{true, ins.Reg}
			if _, dup := vars[k]; dup {
				return Rule{}, false
			}
			if !setHead(ins.Arg, Arg{IsVar: true, Var: newVar(k)}) {
				return Rule{}, false
			}
		case wam.OpGetValueX, wam.OpGetValueY:
			k := regKey{ins.Op == wam.OpGetValueY, ins.Reg}
			v, ok := vars[k]
			if !ok || !setHead(ins.Arg, Arg{IsVar: true, Var: v}) {
				return Rule{}, false
			}
		case wam.OpGetConstant:
			s, ok := sym(int32(ins.Fn))
			if !ok || s.Kind != compiler.SymAtom {
				return Rule{}, false
			}
			if !setHead(ins.Arg, Arg{Val: rel.StringV(s.Name)}) {
				return Rule{}, false
			}
		case wam.OpGetInteger:
			if !setHead(ins.Arg, Arg{Val: rel.IntV(ins.Int)}) {
				return Rule{}, false
			}
		case wam.OpGetFloat:
			if !setHead(ins.Arg, Arg{Val: rel.FloatV(ins.Flt)}) {
				return Rule{}, false
			}
		case wam.OpPutVariableX:
			k := regKey{false, ins.Reg}
			if _, dup := vars[k]; dup {
				return Rule{}, false
			}
			if !setPending(ins.Arg, Arg{IsVar: true, Var: newVar(k)}) {
				return Rule{}, false
			}
		case wam.OpPutVariableY:
			k := regKey{true, ins.Reg}
			if _, dup := vars[k]; dup {
				return Rule{}, false
			}
			if !setPending(ins.Arg, Arg{IsVar: true, Var: newVar(k)}) {
				return Rule{}, false
			}
		case wam.OpPutValueX, wam.OpPutValueY:
			k := regKey{ins.Op == wam.OpPutValueY, ins.Reg}
			v, ok := vars[k]
			if !ok || !setPending(ins.Arg, Arg{IsVar: true, Var: v}) {
				return Rule{}, false
			}
		case wam.OpPutConstant:
			s, ok := sym(int32(ins.Fn))
			if !ok || s.Kind != compiler.SymAtom {
				return Rule{}, false
			}
			if !setPending(ins.Arg, Arg{Val: rel.StringV(s.Name)}) {
				return Rule{}, false
			}
		case wam.OpPutInteger:
			if !setPending(ins.Arg, Arg{Val: rel.IntV(ins.Int)}) {
				return Rule{}, false
			}
		case wam.OpPutFloat:
			if !setPending(ins.Arg, Arg{Val: rel.FloatV(ins.Flt)}) {
				return Rule{}, false
			}
		case wam.OpCall:
			if !callGoal(int32(ins.Fn)) {
				return Rule{}, false
			}
		case wam.OpExecute:
			// Last-call optimization: the tail goal ends the clause.
			if !last || !callGoal(int32(ins.Fn)) {
				return Rule{}, false
			}
			phase = phaseDone
		case wam.OpProceed:
			if !last || len(pending) != 0 {
				return Rule{}, false
			}
			phase = phaseDone
		default:
			// Anything else — structures, lists, nil, unify stream, cuts,
			// builtins, choice/indexing ops — is outside the Datalog
			// fragment.
			return Rule{}, false
		}
	}
	if phase != phaseDone {
		return Rule{}, false
	}
	// Range restriction: every head position is written (a void head
	// variable emits no instruction and would surface here), and every
	// head variable also occurs in the body. Ground facts pass trivially.
	bodyVars := map[int]bool{}
	for _, lit := range r.Body {
		for _, a := range lit.Args {
			if a.IsVar {
				bodyVars[a.Var] = true
			}
		}
	}
	for pos := 0; pos < arity; pos++ {
		if !headSet[pos] {
			return Rule{}, false
		}
		a := r.Head.Args[pos]
		if a.IsVar && !bodyVars[a.Var] {
			return Rule{}, false
		}
	}
	return r, true
}
