package setops

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/compiler"
	"repro/internal/parser"
	"repro/internal/rel"
	"repro/internal/term"
)

func decompile(t *testing.T, src string) Rule {
	t.Helper()
	r, ok := tryDecompile(t, src)
	if !ok {
		t.Fatalf("decompile %q: rejected", src)
	}
	return r
}

func tryDecompile(t *testing.T, src string) (Rule, bool) {
	t.Helper()
	tm, _, err := parser.ParseTerm(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c := compiler.New(compiler.Options{})
	ccs, err := c.CompileClause(tm)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	if len(ccs) != 1 {
		// Auxiliary predicates mean control constructs: not Datalog.
		return Rule{}, false
	}
	return DecompileClause(ccs[0])
}

func TestDecompileFact(t *testing.T) {
	r := decompile(t, "edge(a, b).")
	if len(r.Body) != 0 || r.NVars != 0 {
		t.Fatalf("fact decompiled to %+v", r)
	}
	want := []rel.Value{rel.StringV("a"), rel.StringV("b")}
	for i, a := range r.Head.Args {
		if a.IsVar || !rel.ValueEq(a.Val, want[i]) {
			t.Fatalf("arg %d = %+v, want %v", i, a, want[i])
		}
	}
}

func TestDecompileTypedFacts(t *testing.T) {
	r := decompile(t, "m(1, 2.5, x).")
	if !rel.ValueEq(r.Head.Args[0].Val, rel.IntV(1)) ||
		!rel.ValueEq(r.Head.Args[1].Val, rel.FloatV(2.5)) ||
		!rel.ValueEq(r.Head.Args[2].Val, rel.StringV("x")) {
		t.Fatalf("typed fact decompiled to %+v", r)
	}
}

func TestDecompileRule(t *testing.T) {
	r := decompile(t, "path(X, Y) :- edge(X, Z), path(Z, Y).")
	if len(r.Body) != 2 || r.NVars != 3 {
		t.Fatalf("rule decompiled to %+v", r)
	}
	if !r.Head.Args[0].IsVar || !r.Head.Args[1].IsVar {
		t.Fatalf("head args not vars: %+v", r.Head)
	}
	// Join variable Z is shared between edge's 2nd and path's 1st column.
	if r.Body[0].Args[1].Var != r.Body[1].Args[0].Var {
		t.Fatalf("join variable not shared: %+v", r.Body)
	}
	// Head vars thread through the body.
	if r.Head.Args[0].Var != r.Body[0].Args[0].Var ||
		r.Head.Args[1].Var != r.Body[1].Args[1].Var {
		t.Fatalf("head vars not threaded: %+v", r)
	}
}

func TestDecompileConstantsInRule(t *testing.T) {
	r := decompile(t, "reach(Y) :- path(start, Y).")
	if len(r.Body) != 1 {
		t.Fatalf("decompiled to %+v", r)
	}
	if r.Body[0].Args[0].IsVar || !rel.ValueEq(r.Body[0].Args[0].Val, rel.StringV("start")) {
		t.Fatalf("constant arg lost: %+v", r.Body[0])
	}
}

func TestDecompileRejects(t *testing.T) {
	cases := []string{
		"p(X).",                     // non-ground fact (not range-restricted)
		"p(X) :- q(Y).",             // head var not in body
		"p(f(X)) :- q(X).",          // structure in head
		"p(X) :- q(f(X)).",          // structure in body
		"p([]).",                    // nil constant
		"p(X) :- X is 1 + 1, q(X).", // arithmetic builtin
		"p(X) :- q(X), !.",          // cut
		"p(X) :- q(X) ; r(X).",      // disjunction (aux predicate)
		"p(X) :- \\+ q(X), r(X).",   // negation
		"p(X) :- q(X, _).",          // void body var is fine — but head must bind
	}
	for _, src := range cases[:len(cases)-1] {
		if r, ok := tryDecompile(t, src); ok {
			t.Errorf("decompile %q: accepted %+v, want reject", src, r)
		}
	}
	// The last case is genuinely safe Datalog: p(X) :- q(X, _).
	if _, ok := tryDecompile(t, cases[len(cases)-1]); !ok {
		t.Errorf("decompile %q: rejected, want accept", cases[len(cases)-1])
	}
}

func mkLeaf(t *testing.T, pairs [][2]string) *rel.MemRel {
	t.Helper()
	m := rel.NewMemRel(2)
	for _, p := range pairs {
		m.Insert(rel.Tuple{rel.StringV(p[0]), rel.StringV(p[1])})
	}
	return m
}

func solutions(m *rel.MemRel) []string {
	var out []string
	for _, tp := range m.Tuples() {
		s := ""
		for i, v := range tp {
			if i > 0 {
				s += ","
			}
			s += v.String()
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func tcProgram(t *testing.T, edges [][2]string) *Program {
	t.Helper()
	p := NewProgram()
	p.AddLeaf(term.Indicator{Name: "edge", Arity: 2}, mkLeaf(t, edges))
	p.AddRules(term.Indicator{Name: "path", Arity: 2}, []Rule{
		decompile(t, "path(X, Y) :- edge(X, Y)."),
		decompile(t, "path(X, Y) :- edge(X, Z), path(Z, Y)."),
	})
	return p
}

func TestTransitiveClosure(t *testing.T) {
	p := tcProgram(t, [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}})
	var st Stats
	res, err := p.Eval(&st, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := solutions(res[term.Indicator{Name: "path", Arity: 2}])
	want := []string{"a,b", "a,c", "a,d", "b,c", "b,d", "c,d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("path = %v, want %v", got, want)
	}
	if st.Iterations < 3 {
		t.Fatalf("iterations = %d, want >= 3 for a 3-hop chain", st.Iterations)
	}
	if st.DeltaTuples != 6 {
		t.Fatalf("delta tuples = %d, want 6", st.DeltaTuples)
	}
}

func TestTransitiveClosureCyclic(t *testing.T) {
	// Tuple-at-a-time WAM evaluation loops forever on a cycle; the
	// set-at-a-time fixpoint terminates.
	p := tcProgram(t, [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}})
	var st Stats
	res, err := p.Eval(&st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := res[term.Indicator{Name: "path", Arity: 2}].Len(); n != 9 {
		t.Fatalf("cyclic closure has %d tuples, want 9", n)
	}
}

func TestSameGeneration(t *testing.T) {
	p := NewProgram()
	p.AddLeaf(term.Indicator{Name: "par", Arity: 2}, mkLeaf(t, [][2]string{
		{"b", "a"}, {"c", "a"}, {"d", "b"}, {"e", "c"},
	}))
	node := rel.NewMemRel(1)
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		node.Insert(rel.Tuple{rel.StringV(n)})
	}
	p.AddLeaf(term.Indicator{Name: "node", Arity: 1}, node)
	p.AddRules(term.Indicator{Name: "sg", Arity: 2}, []Rule{
		decompile(t, "sg(X, X) :- node(X)."),
		decompile(t, "sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP)."),
	})
	var st Stats
	res, err := p.Eval(&st, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := solutions(res[term.Indicator{Name: "sg", Arity: 2}])
	want := []string{"a,a", "b,b", "b,c", "c,b", "c,c", "d,d", "d,e", "e,d", "e,e"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("sg = %v, want %v", got, want)
	}
}

func TestMutualRecursionStratification(t *testing.T) {
	p := NewProgram()
	p.AddLeaf(term.Indicator{Name: "edge", Arity: 2}, mkLeaf(t, [][2]string{
		{"a", "b"}, {"b", "c"},
	}))
	p.AddRules(term.Indicator{Name: "odd", Arity: 2}, []Rule{
		decompile(t, "odd(X, Y) :- edge(X, Y)."),
		decompile(t, "odd(X, Y) :- edge(X, Z), even(Z, Y)."),
	})
	p.AddRules(term.Indicator{Name: "even", Arity: 2}, []Rule{
		decompile(t, "even(X, Y) :- edge(X, Z), odd(Z, Y)."),
	})
	strata := p.Stratify()
	if len(strata) != 1 || !strata[0].Recursive || len(strata[0].Preds) != 2 {
		t.Fatalf("strata = %+v, want one recursive SCC of 2", strata)
	}
	var st Stats
	res, err := p.Eval(&st, nil)
	if err != nil {
		t.Fatal(err)
	}
	odd := solutions(res[term.Indicator{Name: "odd", Arity: 2}])
	if fmt.Sprint(odd) != fmt.Sprint([]string{"a,b", "b,c"}) {
		t.Fatalf("odd = %v", odd)
	}
	even := solutions(res[term.Indicator{Name: "even", Arity: 2}])
	if fmt.Sprint(even) != fmt.Sprint([]string{"a,c"}) {
		t.Fatalf("even = %v", even)
	}
}

func TestNonRecursiveStrata(t *testing.T) {
	p := NewProgram()
	p.AddLeaf(term.Indicator{Name: "edge", Arity: 2}, mkLeaf(t, [][2]string{
		{"a", "b"}, {"b", "c"},
	}))
	p.AddRules(term.Indicator{Name: "hop2", Arity: 2}, []Rule{
		decompile(t, "hop2(X, Y) :- edge(X, Z), edge(Z, Y)."),
	})
	strata := p.Stratify()
	if len(strata) != 1 || strata[0].Recursive {
		t.Fatalf("strata = %+v, want one non-recursive stratum", strata)
	}
	var st Stats
	res, err := p.Eval(&st, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := solutions(res[term.Indicator{Name: "hop2", Arity: 2}])
	if fmt.Sprint(got) != fmt.Sprint([]string{"a,c"}) {
		t.Fatalf("hop2 = %v", got)
	}
	if st.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", st.Iterations)
	}
}

func TestEvalCheckAborts(t *testing.T) {
	p := tcProgram(t, [][2]string{{"a", "b"}, {"b", "c"}})
	var st Stats
	wantErr := fmt.Errorf("interrupted")
	calls := 0
	_, err := p.Eval(&st, func() error {
		calls++
		if calls > 1 {
			return wantErr
		}
		return nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
}

func TestValidateUnresolved(t *testing.T) {
	p := NewProgram()
	p.AddRules(term.Indicator{Name: "p", Arity: 1}, []Rule{
		decompile(t, "p(X) :- q(X)."),
	})
	var st Stats
	if _, err := p.Eval(&st, nil); err == nil {
		t.Fatal("want error for unresolved predicate q/1")
	}
}

func TestRepeatedVariableSelection(t *testing.T) {
	p := NewProgram()
	p.AddLeaf(term.Indicator{Name: "edge", Arity: 2}, mkLeaf(t, [][2]string{
		{"a", "a"}, {"a", "b"}, {"b", "b"},
	}))
	p.AddRules(term.Indicator{Name: "selfloop", Arity: 1}, []Rule{
		decompile(t, "selfloop(X) :- edge(X, X)."),
	})
	var st Stats
	res, err := p.Eval(&st, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := solutions(res[term.Indicator{Name: "selfloop", Arity: 1}])
	if fmt.Sprint(got) != fmt.Sprint([]string{"a", "b"}) {
		t.Fatalf("selfloop = %v", got)
	}
}
