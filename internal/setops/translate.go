package setops

import (
	"fmt"
	"sort"

	"repro/internal/rel"
	"repro/internal/term"
)

// Program is a stratified Datalog program: IDB rules keyed by predicate,
// plus materialized EDB leaf relations. Order preserves the sequence in
// which IDB predicates were added, keeping evaluation deterministic.
type Program struct {
	Rules  map[term.Indicator][]Rule
	Leaves map[term.Indicator]*rel.MemRel
	Order  []term.Indicator
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		Rules:  map[term.Indicator][]Rule{},
		Leaves: map[term.Indicator]*rel.MemRel{},
	}
}

// AddRules registers the IDB predicate's rules.
func (p *Program) AddRules(pred term.Indicator, rules []Rule) {
	if _, dup := p.Rules[pred]; !dup {
		p.Order = append(p.Order, pred)
	}
	p.Rules[pred] = rules
}

// AddLeaf registers a materialized EDB relation.
func (p *Program) AddLeaf(pred term.Indicator, r *rel.MemRel) {
	p.Leaves[pred] = r
}

// Validate checks that every body literal resolves to an IDB predicate
// or a leaf with matching arity.
func (p *Program) Validate() error {
	for pred, rules := range p.Rules {
		for _, r := range rules {
			if r.Head.Pred != pred {
				return fmt.Errorf("setops: rule head %v under predicate %v", r.Head.Pred, pred)
			}
			for _, lit := range r.Body {
				if _, ok := p.Rules[lit.Pred]; ok {
					continue
				}
				if leaf, ok := p.Leaves[lit.Pred]; ok {
					if leaf.Arity() != lit.Pred.Arity {
						return fmt.Errorf("setops: leaf %v arity mismatch", lit.Pred)
					}
					continue
				}
				return fmt.Errorf("setops: unresolved predicate %v", lit.Pred)
			}
		}
	}
	return nil
}

// Stratum is one strongly connected component of the IDB dependency
// graph, in bottom-up evaluation order. Recursive is set when the
// component needs fixpoint iteration (self-loop or size > 1).
type Stratum struct {
	Preds     []term.Indicator
	Recursive bool
}

// Stratify orders the IDB predicates into SCC strata, dependencies
// first (Tarjan's algorithm; the reverse finishing order of SCCs is a
// topological order of the condensation).
func (p *Program) Stratify() []Stratum {
	index := map[term.Indicator]int{}
	low := map[term.Indicator]int{}
	onStack := map[term.Indicator]bool{}
	var stack []term.Indicator
	var strata []Stratum
	next := 0

	var strongconnect func(v term.Indicator)
	strongconnect = func(v term.Indicator) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		selfLoop := false
		for _, r := range p.Rules[v] {
			for _, lit := range r.Body {
				w := lit.Pred
				if _, idb := p.Rules[w]; !idb {
					continue
				}
				if w == v {
					selfLoop = true
				}
				if _, seen := index[w]; !seen {
					strongconnect(w)
					if low[w] < low[v] {
						low[v] = low[w]
					}
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var comp []term.Indicator
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			// Deterministic member order within the component.
			sort.Slice(comp, func(i, j int) bool {
				if comp[i].Name != comp[j].Name {
					return comp[i].Name < comp[j].Name
				}
				return comp[i].Arity < comp[j].Arity
			})
			strata = append(strata, Stratum{
				Preds:     comp,
				Recursive: len(comp) > 1 || selfLoop,
			})
		}
	}
	for _, v := range p.Order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return strata
}

// RecursiveComponent returns the set of predicates in pred's SCC if that
// SCC is recursive, or nil otherwise.
func (p *Program) RecursiveComponent(pred term.Indicator) map[term.Indicator]bool {
	for _, st := range p.Stratify() {
		for _, m := range st.Preds {
			if m == pred {
				if !st.Recursive {
					return nil
				}
				set := map[term.Indicator]bool{}
				for _, q := range st.Preds {
					set[q] = true
				}
				return set
			}
		}
	}
	return nil
}

// step is one join stage of a compiled rule plan: scan or probe one body
// literal, filter on constants and already-bound variables, and bind the
// rest.
type step struct {
	lit Literal
	// probeCol is the column to probe via the source relation's hash
	// index, or -1 for a full scan. probeVar/probeConst describe the
	// probe key (a bound variable or a constant).
	probeCol   int
	probeVar   int
	probeConst rel.Value
	isConstKey bool
	// checks are (column, variable) pairs that must match an
	// already-bound variable; constChecks are (column, value) filters
	// not covered by the probe.
	checks      [][2]int
	constChecks []struct {
		col int
		val rel.Value
	}
	// binds are (column, variable) pairs bound by this step.
	binds [][2]int
}

// plan is the compiled operator pipeline of one rule: a sequence of join
// steps followed by the head projection.
type plan struct {
	rule  Rule
	steps []step
}

// planRule compiles a rule into join steps with static knowledge of
// which variables are bound at each stage (the translator's analogue of
// access-path selection: probe a hash index when a column is bound,
// otherwise scan).
func planRule(r Rule) plan {
	bound := make([]bool, r.NVars)
	pl := plan{rule: r, steps: make([]step, 0, len(r.Body))}
	for _, lit := range r.Body {
		st := step{lit: lit, probeCol: -1, probeVar: -1}
		seenHere := map[int]int{}
		for col, a := range lit.Args {
			if !a.IsVar {
				if st.probeCol < 0 {
					st.probeCol = col
					st.probeConst = a.Val
					st.isConstKey = true
				} else {
					st.constChecks = append(st.constChecks, struct {
						col int
						val rel.Value
					}{col, a.Val})
				}
				continue
			}
			if bound[a.Var] {
				if st.probeCol < 0 {
					st.probeCol = col
					st.probeVar = a.Var
				} else {
					st.checks = append(st.checks, [2]int{col, a.Var})
				}
				continue
			}
			if first, dup := seenHere[a.Var]; dup {
				// Repeated fresh variable within the literal: the second
				// occurrence is an equality selection against the first.
				_ = first
				st.checks = append(st.checks, [2]int{col, a.Var})
				continue
			}
			seenHere[a.Var] = col
			st.binds = append(st.binds, [2]int{col, a.Var})
		}
		for _, b := range st.binds {
			bound[b[1]] = true
		}
		pl.steps = append(pl.steps, st)
	}
	return pl
}
