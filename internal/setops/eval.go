package setops

import (
	"repro/internal/rel"
	"repro/internal/term"
)

// Stats accumulates fixpoint metrics for the obs counters.
type Stats struct {
	// Iterations is the number of evaluation rounds (the naive seed
	// round plus each delta round).
	Iterations int
	// DeltaTuples is the total number of new tuples produced across all
	// rounds — the real work the semi-naive optimization bounds.
	DeltaTuples int
}

// Eval computes the fixpoint of the program bottom-up, stratum by
// stratum, using semi-naive (delta-driven) iteration inside recursive
// components. It returns one materialized relation per IDB predicate,
// each in a deterministic derivation order. check, when non-nil, is
// called between rounds so callers can map deadlines and interrupts onto
// the set-at-a-time evaluator.
func (p *Program) Eval(stats *Stats, check func() error) (map[term.Indicator]*rel.MemRel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	totals := map[term.Indicator]*rel.MemRel{}
	for _, pred := range p.Order {
		totals[pred] = rel.NewMemRel(pred.Arity)
	}
	src := func(pred term.Indicator) *rel.MemRel {
		if leaf, ok := p.Leaves[pred]; ok {
			return leaf
		}
		return totals[pred]
	}

	for _, st := range p.Stratify() {
		if check != nil {
			if err := check(); err != nil {
				return nil, err
			}
		}
		members := map[term.Indicator]bool{}
		for _, m := range st.Preds {
			members[m] = true
		}
		plans := map[term.Indicator][]plan{}
		for _, m := range st.Preds {
			for _, r := range p.Rules[m] {
				plans[m] = append(plans[m], planRule(r))
			}
		}

		// Naive seed round: every rule once against the current totals
		// (component members start empty, so only derivations grounded
		// in lower strata and leaves fire).
		deltas := map[term.Indicator]*rel.MemRel{}
		stats.Iterations++
		for _, m := range st.Preds {
			delta := rel.NewMemRel(m.Arity)
			total := totals[m]
			for _, pl := range plans[m] {
				runPlan(pl, func(i int) *rel.MemRel {
					return src(pl.rule.Body[i].Pred)
				}, func(t rel.Tuple) {
					if total.Insert(t) {
						delta.Insert(t)
						stats.DeltaTuples++
					}
				})
			}
			deltas[m] = delta
		}
		if !st.Recursive {
			continue
		}

		// Delta rounds: re-evaluate each rule once per body occurrence
		// of a component member, with that occurrence reading the
		// member's delta and every other literal reading the full
		// current total. Sound and complete: any new derivation must use
		// at least one tuple from the previous round, and dedup absorbs
		// re-derivations.
		for {
			any := false
			for _, d := range deltas {
				if d.Len() > 0 {
					any = true
					break
				}
			}
			if !any {
				break
			}
			if check != nil {
				if err := check(); err != nil {
					return nil, err
				}
			}
			stats.Iterations++
			next := map[term.Indicator]*rel.MemRel{}
			for _, m := range st.Preds {
				next[m] = rel.NewMemRel(m.Arity)
			}
			for _, m := range st.Preds {
				total := totals[m]
				for _, pl := range plans[m] {
					for j, lit := range pl.rule.Body {
						if !members[lit.Pred] {
							continue
						}
						deltaPos := j
						runPlan(pl, func(i int) *rel.MemRel {
							if i == deltaPos {
								return deltas[pl.rule.Body[i].Pred]
							}
							return src(pl.rule.Body[i].Pred)
						}, func(t rel.Tuple) {
							if total.Insert(t) {
								next[m].Insert(t)
								stats.DeltaTuples++
							}
						})
					}
				}
			}
			deltas = next
		}
	}
	return totals, nil
}

// runPlan executes a compiled rule plan: nested-loop joins with hash
// probes where a column is statically bound, equality selections for
// repeated variables and constants, and a final projection onto the
// head. emit receives each derived head tuple.
func runPlan(pl plan, src func(int) *rel.MemRel, emit func(rel.Tuple)) {
	env := make([]rel.Value, pl.rule.NVars)
	var rec func(si int)
	rec = func(si int) {
		if si == len(pl.steps) {
			head := make(rel.Tuple, len(pl.rule.Head.Args))
			for i, a := range pl.rule.Head.Args {
				if a.IsVar {
					head[i] = env[a.Var]
				} else {
					head[i] = a.Val
				}
			}
			emit(head)
			return
		}
		st := pl.steps[si]
		reln := src(si)
		try := func(t rel.Tuple) {
			for _, cc := range st.constChecks {
				if !rel.ValueEq(t[cc.col], cc.val) {
					return
				}
			}
			for _, b := range st.binds {
				env[b[1]] = t[b[0]]
			}
			for _, ch := range st.checks {
				if !rel.ValueEq(t[ch[0]], env[ch[1]]) {
					return
				}
			}
			rec(si + 1)
		}
		if st.probeCol >= 0 {
			key := st.probeConst
			if !st.isConstKey {
				key = env[st.probeVar]
			}
			tuples := reln.Tuples()
			for _, pos := range reln.Lookup(st.probeCol, key) {
				try(tuples[pos])
			}
			return
		}
		for _, t := range reln.Tuples() {
			try(t)
		}
	}
	rec(0)
}
