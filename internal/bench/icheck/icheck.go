// Package icheck reproduces the database integrity checking task of the
// paper's §5.3 (designed by F. Bry, measured by M. Dahmen at ECRC): a
// database with one ~4000-tuple seven-field relation, fifteen small
// relations, a 50-tuple relation, seven rules and five integrity
// constraints of very different complexity.
//
// The benchmark times the *preprocess* phase: computing a specialisation
// of the integrity constraints with respect to an update, a pure symbolic
// computation that needs no access to the stored facts — which is why the
// paper uses it to compare Educe* against a conventional Prolog compiler.
package icheck

import (
	"fmt"

	"repro/internal/term"
)

// NEmp is the size of the large relation.
const NEmp = 4000

// Facts returns the database facts: emp/7 with NEmp tuples, fifteen small
// relations (codes_N/1..2, up to 20 tuples each) and works/2 with 50.
func Facts() []term.Term {
	var out []term.Term
	for i := 0; i < NEmp; i++ {
		out = append(out, term.Comp("emp",
			term.Int(int64(i)),                      // employee id
			term.Atom(fmt.Sprintf("name_%d", i)),    // name
			term.Atom(fmt.Sprintf("dept_%d", i%17)), // department
			term.Int(int64(20000+(i*37)%180000)),    // salary
			term.Int(int64(i%200)),                  // manager id
			term.Int(int64(18+(i*13)%50)),           // age
			term.Atom(fmt.Sprintf("proj_%d", i%29)), // project
		))
	}
	// Fifteen small relations with one or two fields.
	for r := 0; r < 15; r++ {
		n := 5 + r
		if n > 20 {
			n = 20
		}
		for i := 0; i < n; i++ {
			if r%2 == 0 {
				out = append(out, term.Comp(fmt.Sprintf("codes_%d", r),
					term.Atom(fmt.Sprintf("c%d_%d", r, i))))
			} else {
				out = append(out, term.Comp(fmt.Sprintf("codes_%d", r),
					term.Atom(fmt.Sprintf("c%d_%d", r, i)), term.Int(int64(i))))
			}
		}
	}
	// works/2: 50 tuples.
	for i := 0; i < 50; i++ {
		out = append(out, term.Comp("works",
			term.Atom(fmt.Sprintf("proj_%d", i%29)),
			term.Atom(fmt.Sprintf("dept_%d", i%17))))
	}
	return out
}

// Rules is the deductive part of the database (seven rules).
const Rules = `
senior(E) :- emp(E, _, _, _, _, A, _), A > 60.
well_paid(E) :- emp(E, _, _, S, _, _, _), S > 150000.
manages(M, E) :- emp(E, _, _, _, M, _, _).
colleague(A, B) :- emp(A, _, D, _, _, _, _), emp(B, _, D, _, _, _, _), A \= B.
on_project(E, P) :- emp(E, _, _, _, _, _, P).
dept_project(D, P) :- works(P, D).
chain(A, C) :- manages(A, B), manages(B, C).
`

// Program is the constraint base plus the specialisation ("preprocess")
// program. The five constraints differ widely in complexity, as in the
// paper. specialise_all/2 partially evaluates every constraint against an
// update pattern, simplifying the residue — symbolic work only.
const Program = `
% ---- the five integrity constraints --------------------------------------
ic(salary_cap,
   forall(e(E), emp(E, N, D, S, M, A, P), leq(S, 200000))).
ic(age_range,
   forall(e(E), emp(E, N, D, S, M, A, P), and(geq(A, 16), leq(A, 70)))).
ic(mgr_is_emp,
   forall(e(E), emp(E, N, D, S, M, A, P),
          exists(m(M), emp(M, N2, D2, S2, M2, A2, P2), true))).
ic(proj_has_dept,
   forall(e(E), emp(E, N, D, S, M, A, P),
          exists(w(P), works(P, D2), true))).
ic(no_self_manage,
   forall(e(E), emp(E, N, D, S, M, A, P), neq(E, M))).

% ---- specialisation --------------------------------------------------------
% specialise_all(+Update, -Pairs): for every constraint, the simplified
% residual checks induced by the update.
specialise_all(U, Pairs) :-
	findall(Name-Checks, (ic(Name, F), specialise(U, F, Checks)), Pairs).

specialise(inserted(Fact), Formula, Checks) :-
	findall(C, induced_check(Fact, Formula, C), Raw),
	simplify_all(Raw, Checks).
specialise(deleted(Fact), Formula, Checks) :-
	% Deletions can only violate existential conditions.
	findall(C, induced_exist_check(Fact, Formula, C), Raw),
	simplify_all(Raw, Checks).

% An inserted fact matching the universal pattern induces the instantiated
% consequent as a check.
induced_check(Fact, forall(_, Pattern, Conseq), Check) :-
	copy_term(Pattern-Conseq, Fact-Conseq1),
	simplify(Conseq1, Check).
% It can also affect a nested existential positively: nothing to check.
% A deleted fact matching an existential pattern requires re-checking the
% enclosing universal for all witnesses — approximated by the pattern
% residue.
induced_exist_check(Fact, forall(V, Pattern, exists(_, EPat, _)), recheck(V, Pattern)) :-
	copy_term(EPat, Fact).

% ---- formula simplification -------------------------------------------------
simplify(and(A, B), S) :- !,
	simplify(A, SA), simplify(B, SB), simp_and(SA, SB, S).
simplify(or(A, B), S) :- !,
	simplify(A, SA), simplify(B, SB), simp_or(SA, SB, S).
simplify(leq(X, Y), true) :- number(X), number(Y), X =< Y, !.
simplify(leq(X, Y), false) :- number(X), number(Y), X > Y, !.
simplify(geq(X, Y), true) :- number(X), number(Y), X >= Y, !.
simplify(geq(X, Y), false) :- number(X), number(Y), X < Y, !.
simplify(neq(X, Y), true) :- number(X), number(Y), X \== Y, !.
simplify(neq(X, Y), false) :- number(X), number(Y), X == Y, !.
simplify(exists(V, P, C), exists(V, P, SC)) :- !, simplify(C, SC).
simplify(X, X).

simp_and(true, B, B) :- !.
simp_and(A, true, A) :- !.
simp_and(false, _, false) :- !.
simp_and(_, false, false) :- !.
simp_and(A, B, and(A, B)).

simp_or(true, _, true) :- !.
simp_or(_, true, true) :- !.
simp_or(false, B, B) :- !.
simp_or(A, false, A) :- !.
simp_or(A, B, or(A, B)).

% simplify_all: simplify, drop satisfied checks, deduplicate.
simplify_all([], []).
simplify_all([C|T], Out) :-
	simplify(C, S),
	simplify_all(T, Rest),
	( S == true -> Out = Rest
	; memberchk(S, Rest) -> Out = Rest
	; Out = [S|Rest]
	).
`

// Updates returns the five update query texts of increasing complexity.
func Updates() []string {
	return []string{
		// 1. an insert violating nothing obvious.
		"specialise_all(inserted(emp(4001, new_a, dept_3, 50000, 17, 34, proj_5)), P)",
		// 2. an insert with boundary values.
		"specialise_all(inserted(emp(4002, new_b, dept_4, 200000, 18, 70, proj_6)), P)",
		// 3. an insert violating the salary cap (false residue).
		"specialise_all(inserted(emp(4003, new_c, dept_5, 250000, 19, 30, proj_7)), P)",
		// 4. a self-managing insert (neq residue false).
		"specialise_all(inserted(emp(4004, new_d, dept_6, 90000, 4004, 41, proj_8)), P)",
		// 5. a deletion affecting existential constraints.
		"specialise_all(deleted(emp(17, old_a, dept_0, 60000, 3, 55, proj_2)), P)",
	}
}
