package bench

// The dual-strategy Datalog experiment (EXPERIMENTS.md R5): the same
// recursive query workload evaluated tuple-at-a-time (the WAM with
// per-resolution-step EDB retrieval) and set-at-a-time (the semi-naive
// relational fixpoint of internal/setops), over a file-backed knowledge
// base. Tuple-at-a-time pays one pre-unified retrieval per distinct call
// pattern — for a recursive predicate that is one retrieval per visited
// node per query — while the set-at-a-time driver reads each stored
// predicate once (the all-wild retrieval), materializes, and serves
// every query from the fixpoint. The page-read ratio is the table's
// point; CI smoke-checks that the two strategies agree on solution
// counts and that the set strategy reads at least 5x fewer pages.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
)

// DatalogRow is one strategy's run of one recursive workload.
type DatalogRow struct {
	Workload  string  `json:"workload"`
	Strategy  string  `json:"strategy"`
	Queries   int     `json:"queries"`
	Solutions int     `json:"solutions"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Pages     uint64  `json:"edb_pages_read"`
}

// datalogWorkload is a generated program plus a bound-query sequence.
type datalogWorkload struct {
	name    string
	program string
	queries []string
}

// tcWorkload generates the transitive-closure graph: chains disjoint
// chains of chainLen nodes each (chains*chainLen nodes total, all edges
// in the EDB), the two-clause path/2 program, and one bound query per
// source node — the selective-access workload of the paper's §4, where
// tuple-at-a-time pays per-call-pattern EDB retrievals on every query
// while the set strategy materializes once and serves all of them.
// Every path within a chain is unique, so tuple- and set-at-a-time
// agree on exact solution counts (no duplicate derivations to
// collapse).
func tcWorkload(chains, chainLen int) datalogWorkload {
	// edge is the union of two base relations (the classic multi-source
	// reachability formulation): chain links alternate between fwd and
	// alt, so every tuple-at-a-time edge expansion retrieves the edge
	// rules plus both base relations, while the set-at-a-time driver
	// still scans each base relation exactly once.
	var prog []byte
	queries := make([]string, 0, chains*(chainLen-1))
	for c := 0; c < chains; c++ {
		for i := 0; i < chainLen-1; i++ {
			base := "fwd"
			if i%2 == 1 {
				base = "alt"
			}
			prog = append(prog, fmt.Sprintf("%s(n%d_%d, n%d_%d).\n", base, c, i, c, i+1)...)
			queries = append(queries, fmt.Sprintf("path(n%d_%d, X)", c, i))
		}
	}
	prog = append(prog, "edge(X, Y) :- fwd(X, Y).\n"...)
	prog = append(prog, "edge(X, Y) :- alt(X, Y).\n"...)
	prog = append(prog, "path(X, Y) :- edge(X, Y).\n"...)
	prog = append(prog, "path(X, Z) :- edge(X, Y), path(Y, Z).\n"...)
	return datalogWorkload{name: "tc", program: string(prog), queries: queries}
}

// sgWorkload generates a complete binary tree of the given depth
// (2^(depth+1)-1 nodes; node/1 and par/2 facts in the EDB), the
// same-generation program, and one bound query per leaf (up to
// nQueries leaves).
func sgWorkload(depth, nQueries int) datalogWorkload {
	// par is the union of mother and father (the textbook
	// same-generation program): a node's parent link alternates between
	// the two base relations by index parity.
	var prog []byte
	n := 1<<(depth+1) - 1
	for i := 0; i < n; i++ {
		prog = append(prog, fmt.Sprintf("node(t%d).\n", i)...)
		if i > 0 {
			base := "mother"
			if i%2 == 0 {
				base = "father"
			}
			prog = append(prog, fmt.Sprintf("%s(t%d, t%d).\n", base, i, (i-1)/2)...)
		}
	}
	prog = append(prog, "par(X, P) :- mother(X, P).\n"...)
	prog = append(prog, "par(X, P) :- father(X, P).\n"...)
	prog = append(prog, "sg(X, X) :- node(X).\n"...)
	prog = append(prog, "sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).\n"...)
	first := 1<<depth - 1 // index of the first leaf
	queries := make([]string, 0, nQueries)
	for i := 0; i < nQueries; i++ {
		queries = append(queries, fmt.Sprintf("sg(t%d, Y)", first+i))
	}
	return datalogWorkload{name: "sg", program: string(prog), queries: queries}
}

// runDatalogStrategy runs one workload's query sequence on a fresh
// session with the given strategy, counting distinct solutions per query
// (set semantics, so the two strategies are comparable) and the
// session's EDB page reads.
func runDatalogStrategy(kb *core.KnowledgeBase, w datalogWorkload, st core.Strategy) (DatalogRow, error) {
	s, err := kb.NewSession(core.WithStrategy(st))
	if err != nil {
		return DatalogRow{}, err
	}
	defer s.Close()
	row := DatalogRow{Workload: w.name, Strategy: st.String(), Queries: len(w.queries)}
	start := time.Now()
	for _, q := range w.queries {
		sols, err := s.QueryAll(q)
		if err != nil {
			return DatalogRow{}, fmt.Errorf("%s [%s]: %w", q, st, err)
		}
		seen := map[string]bool{}
		for _, m := range sols {
			fp := ""
			for _, v := range m {
				fp += v.String() + "|"
			}
			if !seen[fp] {
				seen[fp] = true
				row.Solutions++
			}
		}
	}
	row.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	row.Pages = s.Cost().PagesTouched
	return row, nil
}

// DatalogTable builds the file-backed knowledge base (chains disjoint
// chains of chainLen nodes for TC; a binary tree for same-generation)
// and runs each workload under both strategies, returning one row per
// (workload, strategy).
func DatalogTable(chains, chainLen int) ([]DatalogRow, error) {
	dir, err := os.MkdirTemp("", "educe-datalog")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	workloads := []datalogWorkload{
		tcWorkload(chains, chainLen),
		sgWorkload(6, 64),
	}
	var rows []DatalogRow
	for _, w := range workloads {
		kb, err := core.OpenKB(core.Options{StorePath: filepath.Join(dir, w.name+".pages")})
		if err != nil {
			return nil, err
		}
		seed, err := kb.NewSession()
		if err != nil {
			kb.Close()
			return nil, err
		}
		if err := seed.ConsultExternal(w.program); err != nil {
			kb.Close()
			return nil, err
		}
		seed.Close()
		for _, st := range []core.Strategy{core.StrategyTuple, core.StrategySet} {
			row, err := runDatalogStrategy(kb, w, st)
			if err != nil {
				kb.Close()
				return nil, err
			}
			rows = append(rows, row)
		}
		kb.Close()
	}
	return rows, nil
}

// CheckDatalog validates a DatalogTable result: per workload, both
// strategies must agree on the distinct-solution count, and the set
// strategy must touch at most 1/minRatio of the tuple strategy's pages.
// This is the CI smoke gate for the set-at-a-time pipeline.
func CheckDatalog(rows []DatalogRow, minRatio float64) error {
	byWorkload := map[string][]DatalogRow{}
	for _, r := range rows {
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	for w, rs := range byWorkload {
		var tuple, set *DatalogRow
		for i := range rs {
			switch rs[i].Strategy {
			case "tuple":
				tuple = &rs[i]
			case "set":
				set = &rs[i]
			}
		}
		if tuple == nil || set == nil {
			return fmt.Errorf("datalog %s: missing a strategy row", w)
		}
		if tuple.Solutions != set.Solutions {
			return fmt.Errorf("datalog %s: solution sets diverge: tuple %d, set %d",
				w, tuple.Solutions, set.Solutions)
		}
		if float64(set.Pages)*minRatio > float64(tuple.Pages) {
			return fmt.Errorf("datalog %s: set strategy read %d pages, tuple %d — below the %gx gate",
				w, set.Pages, tuple.Pages, minRatio)
		}
	}
	return nil
}
