// Package mvv generates the Muenchner Verkehrs Verbund workload of the
// paper's §5.1: a knowledge base modelling a city transport network that
// combines buses, trams, underground and commuter trains.
//
// The real Munich data is not available, so the generator produces a
// deterministic synthetic network with the same relation shapes and
// cardinalities the paper reports:
//
//	location2 /2 — 2307 tuples (stop, zone)
//	schedule3 /11 — 8776 tuples (expanded timetable)
//	schedule2 /5 — 7260 tuples (line, kind, from, to, minutes)
//
// The facts live in the EDB; the route-finding rules are held internally,
// exactly as in the paper's experimental setup. Class 1 queries ask for
// direct connections between adjacent stops; Class 2 queries allow one
// change between lines, with several kinds of transport to choose from.
package mvv

import (
	"fmt"

	"repro/internal/term"
)

// Counts from the paper.
const (
	NLocations = 2307
	NSchedule3 = 8776
	NSchedule2 = 7260
)

// Data is a generated MVV knowledge base.
type Data struct {
	// Location2, Schedule3, Schedule2 are the fact clauses for the EDB.
	Location2, Schedule3, Schedule2 []term.Term
	// Class1 and Class2 are the sampled query texts (10 each).
	Class1, Class2 []string
}

// kinds of transport in the network.
var kinds = []string{"bus", "tram", "ubahn", "sbahn"}

// rng is a small deterministic linear congruential generator so the
// workload is reproducible without math/rand.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 17
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generate builds the synthetic network deterministically.
func Generate() *Data {
	r := &rng{s: 0x5DEECE66D}
	d := &Data{}

	stops := make([]string, NLocations)
	for i := range stops {
		stops[i] = fmt.Sprintf("stop_%d", i)
		zone := fmt.Sprintf("zone_%d", i%16)
		d.Location2 = append(d.Location2,
			term.Comp("location", term.Atom(stops[i]), term.Atom(zone)))
	}

	// Lines: each visits a pseudo-random but deterministic sequence of
	// stops. Segment tuples are emitted until schedule2 reaches its
	// target cardinality.
	type segment struct {
		line, kind, from, to string
		minutes              int
	}
	var segments []segment
	line := 0
	for len(segments) < NSchedule2 {
		kind := kinds[line%len(kinds)]
		lineName := fmt.Sprintf("%s_%d", kind, line)
		length := 20 + r.intn(20)
		at := r.intn(NLocations)
		for s := 0; s < length && len(segments) < NSchedule2; s++ {
			next := (at + 1 + r.intn(40)) % NLocations
			segments = append(segments, segment{
				line: lineName, kind: kind,
				from: stops[at], to: stops[next],
				minutes: 2 + r.intn(9),
			})
			at = next
		}
		line++
	}
	for _, s := range segments {
		d.Schedule2 = append(d.Schedule2, term.Comp("schedule2",
			term.Atom(s.line), term.Atom(s.kind),
			term.Atom(s.from), term.Atom(s.to), term.Int(int64(s.minutes))))
	}

	// schedule3/11: expanded timetable entries derived from segments,
	// repeated across departure runs until the target count.
	run := 0
	for len(d.Schedule3) < NSchedule3 {
		s := segments[(run*397)%len(segments)]
		depH := 5 + (run % 18)
		depM := (run * 7) % 60
		arrM := depM + s.minutes
		arrH := depH + arrM/60
		arrM %= 60
		d.Schedule3 = append(d.Schedule3, term.Comp("schedule3",
			term.Atom(s.line), term.Atom(s.kind),
			term.Atom(s.from), term.Atom(s.to),
			term.Int(int64(depH)), term.Int(int64(depM)),
			term.Int(int64(arrH)), term.Int(int64(arrM)),
			term.Atom("weekday"),
			term.Atom(fmt.Sprintf("zone_%d", run%16)),
			term.Int(int64(run))))
		run++
	}

	// Sample queries. Class 1: direct connections (adjacent stops on
	// some line). Class 2: routes with at most one change.
	for i := 0; i < 10; i++ {
		s := segments[(i*631)%len(segments)]
		d.Class1 = append(d.Class1,
			fmt.Sprintf("direct(%s, %s, Line, T)", s.from, s.to))
	}
	// Class 2 pairs are connected through an intermediate stop: pick a
	// segment, then a segment departing from its destination, so a
	// one-change route exists (possibly among several alternatives).
	bySrc := map[string][]segment{}
	for _, s := range segments {
		bySrc[s.from] = append(bySrc[s.from], s)
	}
	count := 0
	for i := 0; count < 10; i++ {
		a := segments[(i*977)%len(segments)]
		conts := bySrc[a.to]
		if len(conts) == 0 {
			continue
		}
		b := conts[i%len(conts)]
		d.Class2 = append(d.Class2,
			fmt.Sprintf("route(%s, %s, T)", a.from, b.to))
		count++
	}
	return d
}

// Rules is the route-finding program, held in internal storage during the
// experiment (paper §5.1).
const Rules = `
direct(From, To, Line, T) :- schedule2(Line, _, From, To, T).

% A route is a direct connection or one with a single change; the change
% adds a five-minute penalty. Several kinds of transport compete.
route(From, To, T) :- schedule2(_, _, From, To, T).
route(From, To, T) :-
	schedule2(L1, _, From, Mid, T1),
	schedule2(L2, _, Mid, To, T2),
	L1 \= L2,
	T is T1 + T2 + 5.

% Timetable variant: a departure after a given time, using the expanded
% schedule3 relation.
departure_after(From, To, H0, Line, H, M) :-
	schedule3(Line, _, From, To, H, M, _, _, _, _, _),
	H >= H0.

% Reachability within a zone (uses location2).
same_zone(A, B) :- location(A, Z), location(B, Z).
zone_hop(A, B, T) :- route(A, B, T), same_zone(A, B).
`

// Facts returns all fact clauses (for bulk loading into an engine).
func (d *Data) Facts() []term.Term {
	out := make([]term.Term, 0, len(d.Location2)+len(d.Schedule2)+len(d.Schedule3))
	out = append(out, d.Location2...)
	out = append(out, d.Schedule2...)
	out = append(out, d.Schedule3...)
	return out
}
