package bench

import (
	"testing"

	"repro/internal/bench/icheck"
	"repro/internal/bench/mvv"
	"repro/internal/core"
)

func TestMVVGeneratorCardinalities(t *testing.T) {
	d := mvv.Generate()
	if len(d.Location2) != mvv.NLocations {
		t.Errorf("location2 = %d tuples", len(d.Location2))
	}
	if len(d.Schedule2) != mvv.NSchedule2 {
		t.Errorf("schedule2 = %d tuples", len(d.Schedule2))
	}
	if len(d.Schedule3) != mvv.NSchedule3 {
		t.Errorf("schedule3 = %d tuples", len(d.Schedule3))
	}
	if len(d.Class1) != 10 || len(d.Class2) != 10 {
		t.Errorf("query samples: %d class1, %d class2", len(d.Class1), len(d.Class2))
	}
	// Deterministic regeneration.
	d2 := mvv.Generate()
	if d.Class1[0] != d2.Class1[0] || d.Schedule2[100].String() != d2.Schedule2[100].String() {
		t.Error("generator not deterministic")
	}
	// schedule3 arity 11.
	if d.Schedule3[0].Indicator().Arity != 11 {
		t.Errorf("schedule3 arity = %d", d.Schedule3[0].Indicator().Arity)
	}
}

func TestMVVBothSystemsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("MVV setup is slow")
	}
	d := mvv.Generate()
	star, err := SetupMVV(EduceStar, d)
	if err != nil {
		t.Fatal(err)
	}
	defer star.Close()
	base, err := SetupMVV(Educe, d)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	for _, q := range append(append([]string{}, d.Class1[:3]...), d.Class2[:2]...) {
		n1, err := star.QueryCount(q)
		if err != nil {
			t.Fatalf("educe* %q: %v", q, err)
		}
		n2, err := base.QueryCount(q)
		if err != nil {
			t.Fatalf("educe %q: %v", q, err)
		}
		if n1 != n2 {
			t.Errorf("%q: educe*=%d educe=%d", q, n1, n2)
		}
	}
}

func TestICSpecialisation(t *testing.T) {
	e, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Consult(icheck.Program); err != nil {
		t.Fatal(err)
	}
	// Update 3 violates the salary cap: its residue must contain false.
	sols, err := e.QueryAll(icheck.Updates()[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("specialise_all solutions = %d", len(sols))
	}
	out := sols[0]["P"].String()
	if len(out) == 0 {
		t.Fatal("empty specialisation")
	}
	if !containsStr(out, "false") {
		t.Errorf("salary violation not detected in %s", out)
	}
	// Update 1 satisfies the numeric constraints; salary_cap residue
	// should have simplified away.
	sols, err = e.QueryAll(icheck.Updates()[0])
	if err != nil {
		t.Fatal(err)
	}
	out = sols[0]["P"].String()
	if containsStr(out, "false") {
		t.Errorf("spurious violation in %s", out)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestICFactsShape(t *testing.T) {
	facts := icheck.Facts()
	emp := 0
	small := 0
	works := 0
	for _, f := range facts {
		switch f.Indicator().Name {
		case "emp":
			emp++
		case "works":
			works++
		default:
			small++
		}
	}
	if emp != icheck.NEmp {
		t.Errorf("emp = %d", emp)
	}
	if works != 50 {
		t.Errorf("works = %d", works)
	}
	if small < 15*5 {
		t.Errorf("small relations = %d tuples", small)
	}
}

func TestRuleUseShape(t *testing.T) {
	rows, err := RuleUseTable(5)
	if err != nil {
		t.Fatal(err)
	}
	var star, base RuleUseRow
	for _, r := range rows {
		if r.System == EduceStar {
			star = r
		} else {
			base = r
		}
	}
	if base.Asserts == 0 {
		t.Error("baseline made no asserts")
	}
	if star.Asserts != 0 {
		t.Error("educe* should not assert")
	}
	// The headline claim: compiled storage beats parse+assert per use.
	if star.PerUse >= base.PerUse {
		t.Errorf("educe* per-use %v not faster than educe %v", star.PerUse, base.PerUse)
	}
}

func TestWisconsinSmall(t *testing.T) {
	rows, err := WisconsinTable(1000)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]WiscRow{}
	for _, r := range rows {
		got[r.Query+"/"+r.Format] = r
	}
	if r := got["sel1pct/set"]; r.Rows != 10 {
		t.Errorf("1%% selection = %d rows", r.Rows)
	}
	if r := got["sel10pct/set"]; r.Rows != 100 {
		t.Errorf("10%% selection = %d rows", r.Rows)
	}
	if r := got["selone/set"]; r.Rows != 1 {
		t.Errorf("single select = %d rows", r.Rows)
	}
	if r := got["join2/set"]; r.Rows != 100 {
		t.Errorf("join2 = %d rows", r.Rows)
	}
	// Set and term formats must agree on row counts.
	for _, q := range []string{"sel1pct", "sel10pct", "selone"} {
		if got[q+"/set"].Rows != got[q+"/term"].Rows {
			t.Errorf("%s: set=%d term=%d", q, got[q+"/set"].Rows, got[q+"/term"].Rows)
		}
	}
	// I/O was counted.
	if got["sel10pct/set"].IO.Accesses == 0 {
		t.Error("no buffer accesses recorded")
	}
}

func TestPhaseTableShape(t *testing.T) {
	rows, err := PhaseTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		front := r.Parse
		gen := r.Compile + r.Link
		if front == 0 || gen == 0 {
			t.Errorf("%s: degenerate phases %+v", r.Corpus, r)
			continue
		}
		// The paper's claim: reading dominates code generation.
		if front < gen {
			t.Logf("note: %s parse %v < codegen+link %v (claim holds on larger corpora)", r.Corpus, front, gen)
		}
	}
}
