// Package bench contains the experiment runners that regenerate every
// table in the paper's evaluation (§5). The same runners back the
// testing.B benchmarks in the repository root and the cmd/benchtool
// table printer.
package bench

import (
	"fmt"
	"time"

	"repro/internal/bench/icheck"
	"repro/internal/bench/mvv"
	"repro/internal/bench/wisconsin"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/rel"
	"repro/internal/store"
)

// System identifies which engine configuration runs a workload.
type System string

// Systems under comparison.
const (
	// Educe is the loosely-coupled baseline: source rules, interpreter.
	Educe System = "educe"
	// EduceStar is the paper's system: compiled rules in the EDB, WAM.
	EduceStar System = "educe*"
	// GoodCompiler is a pure in-memory WAM compiler (no EDB), the "GC"
	// column of Table 3.
	GoodCompiler System = "gc"
)

// CPUScale models the paper's §5.4 diskless-workstation experiment: the
// Sun 3/280S (25 MHz, ~4 MIPS) versus the Sun 3/60 (20 MHz, ~3 MIPS).
// Measured times are multiplied by ServerScale for the "server" column and
// ClientScale for the slower "client".
const (
	ServerScale = 1.0
	ClientScale = 4.0 / 3.0
)

// --- E1: the MVV knowledge base (Table 1) ----------------------------------

// MVVRow is one cell of Table 1.
type MVVRow struct {
	System    System
	Class     int // 1 or 2
	Run       int // 1 = first run, 2 = second run (buffer warmth)
	Elapsed   time.Duration
	PerQuery  time.Duration
	Solutions int
}

// SetupMVV builds an engine loaded with the MVV knowledge base: facts in
// the EDB, route rules in internal storage (paper §5.1).
func SetupMVV(sys System, data *mvv.Data) (*core.Engine, error) {
	return SetupMVVAt(sys, data, "")
}

// SetupMVVAt is SetupMVV over a store at path (empty = in-memory). A
// file path exercises the full durable stack — checksummed pages and
// the write-ahead log — under the same workload, so the durability
// overhead can be measured against the in-memory baseline.
func SetupMVVAt(sys System, data *mvv.Data, path string) (*core.Engine, error) {
	opts := core.Options{StorePath: path}
	if sys == Educe {
		opts.RuleStorage = core.RuleStorageSource
	}
	e, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	if err := e.ConsultExternalTerms(data.Facts()); err != nil {
		e.Close()
		return nil, err
	}
	switch sys {
	case Educe:
		// Rules are internal: resident in the interpreter.
		if err := consultInterp(e, mvv.Rules); err != nil {
			e.Close()
			return nil, err
		}
	default:
		if err := e.Consult(mvv.Rules); err != nil {
			e.Close()
			return nil, err
		}
	}
	return e, nil
}

// SetupMVVKB builds a shared knowledge base loaded with the MVV facts,
// for concurrent multi-session benchmarks and tests. Create per-worker
// query contexts with NewMVVSession.
func SetupMVVKB(data *mvv.Data) (*core.KnowledgeBase, error) {
	return SetupMVVKBAt(data, "")
}

// SetupMVVKBAt is SetupMVVKB over a store at path (empty = in-memory),
// so multi-session scaling runs can exercise the durable stack.
func SetupMVVKBAt(data *mvv.Data, path string) (*core.KnowledgeBase, error) {
	kb, err := core.OpenKB(core.Options{StorePath: path})
	if err != nil {
		return nil, err
	}
	s, err := kb.NewSession()
	if err != nil {
		kb.Close()
		return nil, err
	}
	defer s.Close()
	if err := s.ConsultExternalTerms(data.Facts()); err != nil {
		kb.Close()
		return nil, err
	}
	return kb, nil
}

// NewMVVSession creates a session over a shared MVV knowledge base with
// the route rules resident (rules are internal storage in the paper's
// §5.1 setup, so each session holds its own compiled copy).
func NewMVVSession(kb *core.KnowledgeBase) (*core.Session, error) {
	s, err := kb.NewSession()
	if err != nil {
		return nil, err
	}
	if err := s.Consult(mvv.Rules); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// RunMVVClassSession runs one query class on a session, returning elapsed
// time and the total number of solutions.
func RunMVVClassSession(s *core.Session, queries []string) (time.Duration, int, error) {
	start := time.Now()
	total := 0
	for _, q := range queries {
		n, err := s.QueryCount(q)
		if err != nil {
			return 0, 0, fmt.Errorf("query %q: %w", q, err)
		}
		total += n
	}
	return time.Since(start), total, nil
}

// consultInterp asserts a program into the baseline interpreter.
func consultInterp(e *core.Engine, src string) error {
	p := parser.New(src)
	terms, err := p.ReadAll()
	if err != nil {
		return err
	}
	for _, tm := range terms {
		if err := e.Interp().Assert(tm); err != nil {
			return err
		}
	}
	return nil
}

// RunMVVClass runs one query class once, returning elapsed time and the
// total number of solutions.
func RunMVVClass(e *core.Engine, queries []string) (time.Duration, int, error) {
	start := time.Now()
	total := 0
	for _, q := range queries {
		n, err := e.QueryCount(q)
		if err != nil {
			return 0, 0, fmt.Errorf("query %q: %w", q, err)
		}
		total += n
	}
	return time.Since(start), total, nil
}

// MVVTable regenerates Table 1: both systems, both classes, two runs.
func MVVTable() ([]MVVRow, error) {
	data := mvv.Generate()
	var rows []MVVRow
	for _, sys := range []System{EduceStar, Educe} {
		e, err := SetupMVV(sys, data)
		if err != nil {
			return nil, err
		}
		for run := 1; run <= 2; run++ {
			for class, queries := range [][]string{1: data.Class1, 2: data.Class2} {
				if class == 0 {
					continue
				}
				el, sols, err := RunMVVClass(e, queries)
				if err != nil {
					e.Close()
					return nil, fmt.Errorf("%s class %d: %w", sys, class, err)
				}
				rows = append(rows, MVVRow{
					System: sys, Class: class, Run: run,
					Elapsed:   el,
					PerQuery:  el / time.Duration(len(queries)),
					Solutions: sols,
				})
			}
		}
		e.Close()
	}
	return rows, nil
}

// --- E2/E3: Wisconsin (Tables 2a and 2b) ------------------------------------

// WiscRow is one Wisconsin query measurement.
type WiscRow struct {
	Query   string
	Format  string // "set" or "term"
	Elapsed time.Duration
	Rows    int
	IO      store.IOStats
}

// WisconsinEnv holds the built benchmark relations.
type WisconsinEnv struct {
	Engine  *core.Engine
	A, B, C *rel.Relation
	N       int
}

// SetupWisconsin builds relations a and b with n tuples and c with n/10,
// indexed on unique1/unique2, and binds them as predicates.
func SetupWisconsin(n int) (*WisconsinEnv, error) {
	e, err := core.New(core.Options{})
	if err != nil {
		return nil, err
	}
	cat := e.Catalog()
	a, err := wisconsin.Build(cat, "wisc_a", n, 1)
	if err != nil {
		e.Close()
		return nil, err
	}
	b, err := wisconsin.Build(cat, "wisc_b", n, 2)
	if err != nil {
		e.Close()
		return nil, err
	}
	c, err := wisconsin.Build(cat, "wisc_c", n/10, 3)
	if err != nil {
		e.Close()
		return nil, err
	}
	for _, name := range []string{"wisc_a", "wisc_b", "wisc_c"} {
		if err := e.BindRelation(name); err != nil {
			e.Close()
			return nil, err
		}
	}
	return &WisconsinEnv{Engine: e, A: a, B: b, C: c, N: n}, nil
}

// Close releases the environment.
func (w *WisconsinEnv) Close() { w.Engine.Close() }

// SetupWisconsinKB builds the Wisconsin relations in a shared knowledge
// base for concurrent multi-session benchmarks; bind them per worker
// with NewWisconsinSession.
func SetupWisconsinKB(n int) (*core.KnowledgeBase, error) {
	return SetupWisconsinKBAt(n, "")
}

// SetupWisconsinKBAt is SetupWisconsinKB over a store at path (empty =
// in-memory).
func SetupWisconsinKBAt(n int, path string) (*core.KnowledgeBase, error) {
	kb, err := core.OpenKB(core.Options{StorePath: path})
	if err != nil {
		return nil, err
	}
	s, err := kb.NewSession()
	if err != nil {
		kb.Close()
		return nil, err
	}
	defer s.Close()
	cat := s.Catalog()
	for _, spec := range []struct {
		name string
		n    int
		seed uint64
	}{{"wisc_a", n, 1}, {"wisc_b", n, 2}, {"wisc_c", n / 10, 3}} {
		if _, err := wisconsin.Build(cat, spec.name, spec.n, spec.seed); err != nil {
			kb.Close()
			return nil, err
		}
	}
	return kb, nil
}

// NewWisconsinSession creates a session over a shared Wisconsin knowledge
// base with the three relations bound as predicates.
func NewWisconsinSession(kb *core.KnowledgeBase) (*core.Session, error) {
	s, err := kb.NewSession()
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"wisc_a", "wisc_b", "wisc_c"} {
		if err := s.BindRelation(name); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// WisconsinTable regenerates Tables 2a/2b over the standard query classes,
// each in set-oriented and (where sensible) term-oriented format.
func WisconsinTable(n int) ([]WiscRow, error) {
	env, err := SetupWisconsin(n)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	st := env.Engine.DB().Store()
	var rows []WiscRow
	measureSet := func(name string, f func() (int, error)) error {
		st.ResetStats()
		t0 := time.Now()
		cnt, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, WiscRow{
			Query: name, Format: "set",
			Elapsed: time.Since(t0), Rows: cnt, IO: st.Stats(),
		})
		return nil
	}
	if err := measureSet("sel1pct", func() (int, error) { return wisconsin.Select1Pct(env.A) }); err != nil {
		return nil, err
	}
	if err := measureSet("sel10pct", func() (int, error) { return wisconsin.Select10Pct(env.A) }); err != nil {
		return nil, err
	}
	if err := measureSet("selone", func() (int, error) { return wisconsin.SelectOne(env.A) }); err != nil {
		return nil, err
	}
	if err := measureSet("join2", func() (int, error) { return wisconsin.JoinAselB(env.A, env.B) }); err != nil {
		return nil, err
	}
	if err := measureSet("join3", func() (int, error) {
		return wisconsin.JoinCselAselB(env.A, env.B, env.C)
	}); err != nil {
		return nil, err
	}

	// Term-oriented formats of the same queries.
	for name, q := range wisconsin.TermQueries("wisc_a", "wisc_b", "wisc_c", n) {
		st.ResetStats()
		t0 := time.Now()
		cnt, err := env.Engine.QueryCount(q)
		if err != nil {
			return nil, fmt.Errorf("term %s: %w", name, err)
		}
		rows = append(rows, WiscRow{
			Query: name, Format: "term",
			Elapsed: time.Since(t0), Rows: cnt, IO: st.Stats(),
		})
	}
	return rows, nil
}

// --- E4: integrity constraint checking (Table 3) ----------------------------

// ICRow is one preprocess measurement.
type ICRow struct {
	Update  int
	System  System
	Elapsed time.Duration
}

// SetupIC prepares an engine for the integrity-check preprocess test.
// GoodCompiler holds everything in main memory; EduceStar stores the
// specialisation program (and the database) in the EDB in compiled form.
func SetupIC(sys System) (*core.Engine, error) {
	e, err := core.New(core.Options{})
	if err != nil {
		return nil, err
	}
	switch sys {
	case GoodCompiler:
		if err := e.Consult(icheck.Program + icheck.Rules); err != nil {
			e.Close()
			return nil, err
		}
		if err := e.ConsultTerms(icheck.Facts()); err != nil {
			e.Close()
			return nil, err
		}
	default:
		if err := e.ConsultExternal(icheck.Program + icheck.Rules); err != nil {
			e.Close()
			return nil, err
		}
		if err := e.ConsultExternalTerms(icheck.Facts()); err != nil {
			e.Close()
			return nil, err
		}
	}
	return e, nil
}

// ICTable regenerates Table 3's preprocess column for both systems.
func ICTable() ([]ICRow, error) {
	var rows []ICRow
	for _, sys := range []System{GoodCompiler, EduceStar} {
		e, err := SetupIC(sys)
		if err != nil {
			return nil, err
		}
		// Average over repetitions, as the paper averages its query
		// samples; the first repetition carries Educe*'s dynamic load.
		const reps = 20
		for i, q := range icheck.Updates() {
			t0 := time.Now()
			for r := 0; r < reps; r++ {
				n, err := e.QueryCount(q)
				if err != nil {
					e.Close()
					return nil, fmt.Errorf("%s update %d: %w", sys, i+1, err)
				}
				if n == 0 {
					e.Close()
					return nil, fmt.Errorf("%s update %d: no specialisation produced", sys, i+1)
				}
			}
			rows = append(rows, ICRow{Update: i + 1, System: sys, Elapsed: time.Since(t0) / reps})
		}
		e.Close()
	}
	return rows, nil
}

// --- E6: compile-phase split (§3.1's 90/10 claim) ----------------------------

// PhaseRow reports where rule-pipeline time goes for a program corpus.
type PhaseRow struct {
	Corpus  string
	Parse   time.Duration
	Compile time.Duration
	Link    time.Duration
}

// PhaseTable measures parse vs code generation vs loader time on the
// benchmark programs.
func PhaseTable() ([]PhaseRow, error) {
	var rows []PhaseRow
	for _, c := range []struct{ name, src string }{
		{"mvv-rules", mvv.Rules},
		{"icheck", icheck.Program + icheck.Rules},
	} {
		e, err := core.New(core.Options{})
		if err != nil {
			return nil, err
		}
		e.ResetStats()
		// Repeat to get measurable durations.
		for i := 0; i < 50; i++ {
			if err := e.Consult(c.src); err != nil {
				e.Close()
				return nil, err
			}
		}
		ph := e.Stats().Phases
		rows = append(rows, PhaseRow{Corpus: c.name, Parse: ph.Parse, Compile: ph.Compile, Link: ph.Link})
		e.Close()
	}
	return rows, nil
}

// --- E7: per-use rule cost (compiled load vs parse+assert) -------------------

// RuleUseRow compares the cost of using an externally stored rule set.
type RuleUseRow struct {
	System   System
	Uses     int
	Elapsed  time.Duration
	PerUse   time.Duration
	Asserts  uint64
	Retrieve time.Duration
}

// RuleUseTable measures repeated use of an externally stored rule set
// under both storage forms (the §2/§3.1 orders-of-magnitude argument).
// Each "use" is one query that loads the rule set and evaluates it many
// times, the usage pattern the paper describes for EDB-resident rules.
func RuleUseTable(uses int) ([]RuleUseRow, error) {
	src := `
		f(0, 1).
		f(N, V) :- N > 0, N1 is N - 1, f(N1, V1), V is V1 + N.
		work :- g0(_), g1(_), g2(_), g3(_), g4(_), g5(_), g6(_), g7(_), g8(_), g9(_).
	`
	for i := 0; i < 10; i++ {
		src += fmt.Sprintf("g%d(X) :- f(%d, X).\n", i, 60+i)
	}
	var rows []RuleUseRow
	for _, sys := range []System{EduceStar, Educe} {
		opts := core.Options{}
		if sys == Educe {
			opts.RuleStorage = core.RuleStorageSource
		}
		e, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		if err := e.ConsultExternal(src); err != nil {
			e.Close()
			return nil, err
		}
		e.ResetStats()
		t0 := time.Now()
		for i := 0; i < uses; i++ {
			if _, err := e.QueryAll("work"); err != nil {
				e.Close()
				return nil, fmt.Errorf("%s: %w", sys, err)
			}
		}
		el := time.Since(t0)
		ph := e.Stats().Phases
		rows = append(rows, RuleUseRow{
			System: sys, Uses: uses, Elapsed: el,
			PerUse:  el / time.Duration(uses),
			Asserts: ph.Asserts, Retrieve: ph.Retrieve,
		})
		e.Close()
	}
	return rows, nil
}
