// Package wisconsin generates the Wisconsin benchmark relations and the
// query classes the paper's §5.2 selects from it: 1% and 10% range
// selections over a 10000-tuple relation, a single-tuple selection, a
// two-way join with a selection, and a three-way join with two selections.
//
// The schema follows Bitton, DeWitt and Turbyfill's standard definition
// (integer attributes unique1, unique2, two ... tenthous plus three string
// attributes); each query exists in a set-oriented format (relational
// operator tree) and a term-oriented format (Prolog goals over the bound
// relations), reproducing the paper's "each query was expressed in a
// different format".
package wisconsin

import (
	"fmt"

	"repro/internal/rel"
)

// Attrs is the Wisconsin attribute list.
var Attrs = []rel.Attr{
	{Name: "unique1", Type: rel.Int},
	{Name: "unique2", Type: rel.Int},
	{Name: "two", Type: rel.Int},
	{Name: "four", Type: rel.Int},
	{Name: "ten", Type: rel.Int},
	{Name: "twenty", Type: rel.Int},
	{Name: "hundred", Type: rel.Int},
	{Name: "thousand", Type: rel.Int},
	{Name: "twothous", Type: rel.Int},
	{Name: "fivethous", Type: rel.Int},
	{Name: "tenthous", Type: rel.Int},
	{Name: "stringu1", Type: rel.String},
	{Name: "stringu2", Type: rel.String},
	{Name: "string4", Type: rel.String},
}

var fourNames = []string{"aaaa", "hhhh", "oooo", "vvvv"}

// Build creates and fills a Wisconsin relation of n tuples named name,
// with indexes on unique1 and unique2. unique1 is a pseudo-random
// permutation (seeded deterministically), unique2 is sequential.
func Build(cat *rel.Catalog, name string, n int, seed uint64) (*rel.Relation, error) {
	r, err := cat.Create(rel.Schema{Name: name, Attrs: Attrs})
	if err != nil {
		return nil, err
	}
	perm := permutation(n, seed)
	tuples := make([]rel.Tuple, 0, n)
	for i := 0; i < n; i++ {
		u1 := int64(perm[i])
		u2 := int64(i)
		tuples = append(tuples, rel.Tuple{
			rel.IntV(u1),
			rel.IntV(u2),
			rel.IntV(u1 % 2),
			rel.IntV(u1 % 4),
			rel.IntV(u1 % 10),
			rel.IntV(u1 % 20),
			rel.IntV(u1 % 100),
			rel.IntV(u1 % 1000),
			rel.IntV(u1 % 2000),
			rel.IntV(u1 % 5000),
			rel.IntV(u1 % 10000),
			rel.StringV(stringU(u1)),
			rel.StringV(stringU(u2)),
			rel.StringV(fourNames[u1%4]),
		})
	}
	if err := r.InsertAll(tuples); err != nil {
		return nil, err
	}
	if err := r.CreateIndex("unique1"); err != nil {
		return nil, err
	}
	if err := r.CreateIndex("unique2"); err != nil {
		return nil, err
	}
	return r, nil
}

// permutation returns a deterministic pseudo-random permutation of 0..n-1.
func permutation(n int, seed uint64) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s := seed
	for i := n - 1; i > 0; i-- {
		s = s*6364136223846793005 + 1442695040888963407
		j := int((s >> 17) % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// stringU builds the Wisconsin-style padded unique string.
func stringU(v int64) string {
	letters := make([]byte, 7)
	for i := 6; i >= 0; i-- {
		letters[i] = byte('A' + v%26)
		v /= 26
	}
	return fmt.Sprintf("%s%s", letters, "xxxxxxxxxx")
}

// --- the paper's query classes (set-oriented formats) ---------------------

// Select1Pct runs the 1% range selection over r, returning the row count.
func Select1Pct(r *rel.Relation) (int, error) {
	n := int64(r.Count())
	lo := n / 3
	hi := lo + n/100 - 1
	return rel.Count(rel.IndexScan(r, "unique2", rel.IntV(lo), rel.IntV(hi)))
}

// Select10Pct runs the 10% range selection.
func Select10Pct(r *rel.Relation) (int, error) {
	n := int64(r.Count())
	lo := n / 3
	hi := lo + n/10 - 1
	return rel.Count(rel.IndexScan(r, "unique2", rel.IntV(lo), rel.IntV(hi)))
}

// SelectOne fetches a single tuple by unique2 key.
func SelectOne(r *rel.Relation) (int, error) {
	k := int64(r.Count() / 2)
	return rel.Count(rel.IndexScan(r, "unique2", rel.IntV(k), rel.IntV(k)))
}

// JoinAselB is the two-way join: select 10% of a (on unique2), join to b
// on unique1 via b's index.
func JoinAselB(a, b *rel.Relation) (int, error) {
	n := int64(a.Count())
	lo := n / 4
	hi := lo + n/10 - 1
	sel := rel.IndexScan(a, "unique2", rel.IntV(lo), rel.IntV(hi))
	u1 := 0 // position of unique1
	return rel.Count(rel.IndexJoin(sel, b, u1, "unique1"))
}

// JoinCselAselB is the three-way join: selections over the two large
// relations, both joined through the small relation's keys.
func JoinCselAselB(a, b, small *rel.Relation) (int, error) {
	n := int64(a.Count())
	loA := n / 4
	hiA := loA + n/10 - 1
	selA := rel.IndexScan(a, "unique2", rel.IntV(loA), rel.IntV(hiA))
	// Join selA to small on unique1 (small has unique1 in 0..|small|).
	j1 := rel.IndexJoin(selA, small, 0, "unique1")
	// Then join the result to a 10% selection of b on unique1: the
	// joined tuple's small.unique1 is at offset len(a.attrs)+0.
	off := len(a.Schema.Attrs)
	j2 := rel.IndexJoin(j1, b, off, "unique1")
	// Residual selection on b's unique2 (10%).
	loB := n / 2
	hiB := loB + n/10 - 1
	u2b := off + len(small.Schema.Attrs) + 1
	final := rel.Select(j2, func(t rel.Tuple) bool {
		return t[u2b].I >= loB && t[u2b].I <= hiB
	})
	return rel.Count(final)
}

// --- term-oriented formats -------------------------------------------------

// TermQueries returns the Prolog texts of the same query classes for an
// engine where relations a, b (10000 tuples) and c (1000 tuples) are bound
// as predicates. Arguments: unique1 is the first attribute, unique2 the
// second.
func TermQueries(a, b, c string, n int) map[string]string {
	lo1 := n / 3
	hi1 := lo1 + n/100 - 1
	lo10 := n / 3
	hi10 := lo10 + n/10 - 1
	args := "U1, U2, _, _, _, _, _, _, _, _, _, _, _, _"
	return map[string]string{
		"sel1pct": fmt.Sprintf("%s(%s), U2 >= %d, U2 =< %d", a, args, lo1, hi1),
		"sel10pct": fmt.Sprintf("%s(%s), U2 >= %d, U2 =< %d",
			a, args, lo10, hi10),
		"selone": fmt.Sprintf("%s(U1, %d, _, _, _, _, _, _, _, _, _, _, _, _)", a, n/2),
		"join2": fmt.Sprintf(
			"%s(U1, U2, _, _, _, _, _, _, _, _, _, _, _, _), U2 >= %d, U2 =< %d, "+
				"%s(U1, V2, _, _, _, _, _, _, _, _, _, _, _, _)",
			a, n/4, n/4+n/10-1, b),
	}
}
