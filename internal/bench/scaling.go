package bench

// The session-scaling experiment (EXPERIMENTS.md R3): N concurrent
// sessions over one shared file-backed knowledge base, each running the
// same read workload. Before the buffer pool was sharded with per-frame
// latches, every page access funnelled through one mutex and throughput
// was flat (or worse) in N; the table quantifies what the sharded pool
// buys. CI runs it as a smoke gate: the max-session throughput must not
// regress below the 1-session baseline (modulo a small noise tolerance;
// see CheckScaling).

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/bench/mvv"
	"repro/internal/bench/wisconsin"
	"repro/internal/core"
)

// ScalingSessions is the standard ladder of concurrent session counts.
var ScalingSessions = []int{1, 2, 4, 8}

// ScalingRow is one cell of the scaling table: n sessions ran the
// workload concurrently and jointly sustained QPS queries per second.
// Speedup is relative to the same workload's 1-session row.
type ScalingRow struct {
	Workload string  `json:"workload"`
	Sessions int     `json:"sessions"`
	Queries  int     `json:"queries"`
	ElapsedM float64 `json:"elapsed_ms"`
	QPS      float64 `json:"qps"`
	Speedup  float64 `json:"speedup"`
	CPUs     int     `json:"cpus"` // GOMAXPROCS: the parallelism ceiling
}

// scalingWorkload binds a knowledge-base builder to a per-session unit
// of read work. work returns the number of queries it ran.
type scalingWorkload struct {
	name    string
	open    func(path string) (*core.KnowledgeBase, error)
	session func(kb *core.KnowledgeBase) (*core.Session, error)
	work    func(s *core.Session) (int, error)
}

func scalingWorkloads(wiscN int) []scalingWorkload {
	data := mvv.Generate()
	wq := wisconsin.TermQueries("wisc_a", "wisc_b", "wisc_c", wiscN)
	// A map's iteration order is random; fix it so every session (and
	// every run) issues the identical query sequence.
	names := make([]string, 0, len(wq))
	for name := range wq {
		names = append(names, name)
	}
	sort.Strings(names)
	return []scalingWorkload{
		{
			name: "mvv",
			open: func(path string) (*core.KnowledgeBase, error) {
				return SetupMVVKBAt(data, path)
			},
			session: NewMVVSession,
			work: func(s *core.Session) (int, error) {
				n := 0
				for _, class := range [][]string{data.Class1, data.Class2} {
					for _, q := range class {
						if _, err := s.QueryCount(q); err != nil {
							return 0, err
						}
						n++
					}
				}
				return n, nil
			},
		},
		{
			name: "wisconsin",
			open: func(path string) (*core.KnowledgeBase, error) {
				return SetupWisconsinKBAt(wiscN, path)
			},
			session: NewWisconsinSession,
			work: func(s *core.Session) (int, error) {
				for _, name := range names {
					if _, err := s.QueryCount(wq[name]); err != nil {
						return 0, fmt.Errorf("%s: %w", name, err)
					}
				}
				return len(names), nil
			},
		},
	}
}

// ScalingTable builds each workload's knowledge base file-backed under
// dir and measures it at every session count in counts. Each session
// performs rounds units of work, so total work grows with the session
// count and QPS is the honest concurrency measure. The pool is warmed
// before each measurement so the first row does not pay the cold reads
// the later rows skip.
func ScalingTable(dir string, counts []int, wiscN, rounds int) ([]ScalingRow, error) {
	var rows []ScalingRow
	for _, w := range scalingWorkloads(wiscN) {
		kb, err := w.open(filepath.Join(dir, w.name+".educe"))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.name, err)
		}
		var base float64
		for _, n := range counts {
			elapsed, queries, err := runScaling(kb, w, n, rounds)
			if err != nil {
				kb.Close()
				return nil, fmt.Errorf("%s at %d sessions: %w", w.name, n, err)
			}
			qps := float64(queries) / elapsed.Seconds()
			if base == 0 {
				// Baseline: the first (lowest) session count measured,
				// normally 1. Speedup is relative throughput against it.
				base = qps
			}
			rows = append(rows, ScalingRow{
				Workload: w.name,
				Sessions: n,
				Queries:  queries,
				ElapsedM: float64(elapsed.Microseconds()) / 1000,
				QPS:      qps,
				Speedup:  qps / base,
				CPUs:     runtime.GOMAXPROCS(0),
			})
		}
		if err := kb.Close(); err != nil {
			return nil, fmt.Errorf("%s: close: %w", w.name, err)
		}
	}
	return rows, nil
}

// runScaling measures one (workload, session count) cell: n sessions
// are created and warmed, then released together and timed until the
// last finishes its rounds.
func runScaling(kb *core.KnowledgeBase, w scalingWorkload, n, rounds int) (time.Duration, int, error) {
	sessions := make([]*core.Session, n)
	for i := range sessions {
		s, err := w.session(kb)
		if err != nil {
			for _, prev := range sessions[:i] {
				prev.Close()
			}
			return 0, 0, err
		}
		sessions[i] = s
	}
	defer func() {
		for _, s := range sessions {
			s.Close()
		}
	}()

	// Warm-up: fills the buffer pool and every session's linked code, so
	// the measurement sees steady-state read traffic only.
	for _, s := range sessions {
		if _, err := w.work(s); err != nil {
			return 0, 0, err
		}
	}

	// Collect the garbage the setup and warm-up left behind (8 sessions
	// compile 8 copies of the rules) so the GC does not fire mid-window
	// and charge one cell for another cell's allocations.
	runtime.GC()

	var (
		wg      sync.WaitGroup
		start   = make(chan struct{})
		errs    = make([]error, n)
		queries = make([]int, n)
	)
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *core.Session) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				q, err := w.work(s)
				if err != nil {
					errs[i] = err
					return
				}
				queries[i] += q
			}
		}(i, s)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)
	total := 0
	for i := range sessions {
		if errs[i] != nil {
			return 0, 0, errs[i]
		}
		total += queries[i]
	}
	return elapsed, total, nil
}

// singleCPUFloor is the CheckScaling bound on a GOMAXPROCS=1 machine.
// With one CPU there is no parallelism to win, so concurrent sessions
// pay pure scheduling overhead; the gate then only guards against
// contention collapse (the lock-convoy failure mode of a global pool
// mutex, which costs far more than scheduler overhead ever does).
const singleCPUFloor = 0.75

// multiCPUFloor is the CheckScaling bound with parallelism available.
// A healthy sharded pool beats the baseline comfortably, but CI runners
// are shared and noisy; a small tolerance keeps an ordinary scheduling
// hiccup from flaking the gate while still catching the collapse the
// gate exists for (a global-mutex convoy costs far more than 10%).
const multiCPUFloor = 0.9

// CheckScaling enforces the CI gate on a scaling table: for every
// workload, the highest-session-count row's throughput must stay at or
// above the 1-session baseline — concurrent readers must never be
// meaningfully slower than one reader. The bound is multiCPUFloor times
// the baseline to absorb noisy-neighbour jitter on shared runners, and
// relaxes further to singleCPUFloor on a single-CPU machine, where
// concurrency cannot pay for its own scheduling.
func CheckScaling(rows []ScalingRow) error {
	first := map[string]ScalingRow{}
	last := map[string]ScalingRow{}
	for _, r := range rows {
		if f, ok := first[r.Workload]; !ok || r.Sessions < f.Sessions {
			first[r.Workload] = r
		}
		if l, ok := last[r.Workload]; !ok || r.Sessions > l.Sessions {
			last[r.Workload] = r
		}
	}
	for w, f := range first {
		l := last[w]
		if l.Sessions == f.Sessions {
			continue
		}
		bound := f.QPS * multiCPUFloor
		if l.CPUs == 1 {
			bound = f.QPS * singleCPUFloor
		}
		if l.QPS < bound {
			return fmt.Errorf("%s: %d-session throughput %.0f qps regressed below the %d-session baseline %.0f qps (bound %.0f, %d cpus)",
				w, l.Sessions, l.QPS, f.Sessions, f.QPS, bound, l.CPUs)
		}
	}
	return nil
}
