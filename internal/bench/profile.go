package bench

import (
	"io"
	"time"

	"repro/internal/bench/mvv"
	"repro/internal/obs"
)

// ProfileResult is the output of one profiled MVV run: the per-predicate
// profile accumulated in the knowledge base, its totals, and a snapshot
// of the KB metrics registry (access-path selectivity counters, buffer
// pool I/O, latency histograms) taken after the run.
type ProfileResult struct {
	Preds   []obs.PredProfile `json:"preds"`
	Totals  obs.PredCounters  `json:"totals"`
	Metrics map[string]any    `json:"metrics"`
}

// ProfiledMVV runs both MVV query classes once on a profiled session
// with the slow-query log armed at threshold slow (trace records —
// including one slow_query record per qualifying query — go to traceW),
// then returns the accumulated profile and a metrics snapshot. With
// slow = 1ns every query qualifies, which is how the CI smoke test
// obtains a well-formed slow_query record to validate.
func ProfiledMVV(traceW io.Writer, slow time.Duration) (*ProfileResult, error) {
	data := mvv.Generate()
	kb, err := SetupMVVKB(data)
	if err != nil {
		return nil, err
	}
	defer kb.Close()
	s, err := NewMVVSession(kb)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	s.EnableProfiling(true)
	if traceW != nil {
		s.SetTracer(obs.NewTracer(traceW))
	}
	s.SetSlowThreshold(slow)
	for _, queries := range [][]string{data.Class1, data.Class2} {
		if _, _, err := RunMVVClassSession(s, queries); err != nil {
			return nil, err
		}
	}
	// Close drains the final query's profile into the KB table.
	s.Close()
	return &ProfileResult{
		Preds:   kb.Profile().Snapshot(),
		Totals:  kb.Profile().Totals(),
		Metrics: kb.Obs().Snapshot(),
	}, nil
}
