package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bench/mvv"
	"repro/internal/core"
	"repro/internal/server"
)

// ServerBenchRow summarises one served-MVV run: concurrent clients
// driving the line protocol against a query server over a shared MVV
// knowledge base.
type ServerBenchRow struct {
	Clients   int
	Sessions  int
	Queries   int // completed queries
	Solutions int
	Sheds     int // overloaded replies absorbed by retries
	Elapsed   time.Duration
	QPS       float64
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
}

// ServerBench starts a query server over the MVV knowledge base (facts
// in the EDB, route rules resident in every pool session, as in §5.1)
// and drives it with concurrent wire clients running the mixed Class 1 /
// Class 2 query load. Overloaded replies are retried after the server's
// hint and counted, so the row also shows how often admission control
// engaged at this client count.
func ServerBench(clients, queriesPerClient, sessions int) (*ServerBenchRow, error) {
	data := mvv.Generate()
	kb, err := SetupMVVKB(data)
	if err != nil {
		return nil, err
	}
	defer kb.Close()
	srv, err := server.New(kb, server.Config{
		MaxSessions:  sessions,
		QueueDepth:   2 * clients,
		QueueWait:    5 * time.Second,
		QueryTimeout: 30 * time.Second,
		SessionInit:  func(s *core.Session) error { return s.Consult(mvv.Rules) },
	})
	if err != nil {
		return nil, err
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	mixed := append(append([]string{}, data.Class1...), data.Class2...)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		solutions int
		sheds     int
		firstErr  error
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.DialTimeout(addr.String(), 30*time.Second)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("client %d: %w", c, err)
				}
				mu.Unlock()
				return
			}
			defer cl.Close()
			for q := 0; q < queriesPerClient; q++ {
				goal := mixed[(c+q)%len(mixed)]
				t0 := time.Now()
				for {
					res, err := cl.Query(goal)
					if err == nil {
						mu.Lock()
						latencies = append(latencies, time.Since(t0))
						solutions += res.N
						mu.Unlock()
						break
					}
					var oe *server.OverloadedError
					if errors.As(err, &oe) {
						mu.Lock()
						sheds++
						mu.Unlock()
						time.Sleep(oe.RetryAfter)
						continue
					}
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d %q: %w", c, goal, err)
					}
					mu.Unlock()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p int) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := len(latencies) * p / 100
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	return &ServerBenchRow{
		Clients:   clients,
		Sessions:  sessions,
		Queries:   len(latencies),
		Solutions: solutions,
		Sheds:     sheds,
		Elapsed:   elapsed,
		QPS:       float64(len(latencies)) / elapsed.Seconds(),
		P50:       pct(50),
		P95:       pct(95),
		P99:       pct(99),
	}, nil
}
