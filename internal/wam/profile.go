package wam

import (
	"time"

	"repro/internal/dict"
	"repro/internal/obs"
)

// Profiler accumulates 4-port box-model counters and self-time per
// predicate for one machine. It is single-goroutine state owned by the
// machine's session (plain fields, no locks); the session drains it at
// query end and merges the result into the knowledge base's shared
// profile table.
//
// Port semantics under last-call optimisation (see DESIGN.md §11):
//
//   - call: every transfer of control into a predicate via OpCall or
//     OpExecute — a tail call counts as a call to the callee (the
//     caller's frame is gone, so its box is left implicitly);
//   - exit: every OpProceed, attributed to the owner of the code block
//     being exited;
//   - redo/fail: a backtrack that moves control from one predicate's
//     block to another counts a fail against the predicate giving up
//     control and a redo for the predicate resumed; backtracks within
//     one predicate (its own retry chain) are internal to the box and
//     are not counted.
//
// Self-time is measured between port events: the elapsed wall time since
// the previous event is charged to the predicate that was executing.
// Time spent in the dynamic loader (EDB fetch + link inside lookupProc)
// lands on the caller; the loader's I/O is separately attributed to the
// callee via AttributeIO.
type Profiler struct {
	preds map[dict.ID]*obs.PredCounters

	// cur is the predicate currently being charged for wall time;
	// curOK distinguishes "none" from dict.ID zero.
	cur   dict.ID
	curOK bool
	// last is the monotonic timestamp of the previous port event.
	last time.Time
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{preds: map[dict.ID]*obs.PredCounters{}}
}

func (pr *Profiler) counters(fn dict.ID) *obs.PredCounters {
	c, ok := pr.preds[fn]
	if !ok {
		c = &obs.PredCounters{}
		pr.preds[fn] = c
	}
	return c
}

// tick charges the time since the last port event to the current
// predicate and restarts the clock.
func (pr *Profiler) tick() {
	now := time.Now()
	if pr.curOK && !pr.last.IsZero() {
		pr.counters(pr.cur).SelfNS += now.Sub(pr.last).Nanoseconds()
	}
	pr.last = now
}

// setCur makes the owner of blk the predicate charged for subsequent
// time (no owner → nothing is charged).
func (pr *Profiler) setCur(blk *CodeBlock) {
	if blk != nil && blk.HasOwner {
		pr.cur, pr.curOK = blk.Owner, true
	} else {
		pr.curOK = false
	}
}

// portCall records a call-port crossing into fn (OpCall/OpExecute/query
// entry), whose code is blk.
func (pr *Profiler) portCall(fn dict.ID, blk *CodeBlock) {
	pr.tick()
	pr.counters(fn).Calls++
	pr.setCur(blk)
}

// portExit records an exit-port crossing out of from (OpProceed),
// resuming in to.
func (pr *Profiler) portExit(from, to *CodeBlock) {
	pr.tick()
	if from != nil && from.HasOwner {
		pr.counters(from.Owner).Exits++
	}
	pr.setCur(to)
}

// portBacktrack records a backtrack from the failing block into the
// resumed block. Crossings within one predicate's box are not ported.
func (pr *Profiler) portBacktrack(from, to *CodeBlock) {
	pr.tick()
	fromOwner, fromOK := ownerOf(from)
	toOwner, toOK := ownerOf(to)
	if fromOK && (!toOK || fromOwner != toOwner) {
		pr.counters(fromOwner).Fails++
	}
	if toOK && (!fromOK || fromOwner != toOwner) {
		pr.counters(toOwner).Redos++
	}
	pr.setCur(to)
}

// portFinalFail records the failure that exhausts the machine (no choice
// point left): the failing predicate crosses its fail port.
func (pr *Profiler) portFinalFail(from *CodeBlock) {
	pr.tick()
	if owner, ok := ownerOf(from); ok {
		pr.counters(owner).Fails++
	}
	pr.curOK = false
}

func ownerOf(blk *CodeBlock) (dict.ID, bool) {
	if blk == nil || !blk.HasOwner {
		return 0, false
	}
	return blk.Owner, true
}

// AttributeIO charges EDB retrieval I/O to fn (the dynamic loader calls
// this from the undefined-procedure trap, where the fetched predicate is
// known).
func (pr *Profiler) AttributeIO(fn dict.ID, fetches, pages uint64) {
	if pr == nil {
		return
	}
	c := pr.counters(fn)
	c.EDBFetches += fetches
	c.Pages += pages
}

// Drain charges any trailing self-time, then returns the accumulated
// per-predicate counters and resets the profiler for the next query.
func (pr *Profiler) Drain() map[dict.ID]*obs.PredCounters {
	if pr == nil {
		return nil
	}
	pr.tick()
	out := pr.preds
	pr.preds = map[dict.ID]*obs.PredCounters{}
	pr.cur, pr.curOK = 0, false
	pr.last = time.Time{}
	return out
}

// SetProfiler attaches (or, with nil, detaches) a profiler. The disabled
// path costs one nil check at each port site. Like SetQuota, call it
// between queries from the machine's own goroutine.
func (m *Machine) SetProfiler(pr *Profiler) { m.prof = pr }

// Profiler returns the attached profiler, or nil.
func (m *Machine) Profiler() *Profiler { return m.prof }
