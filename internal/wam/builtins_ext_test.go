package wam_test

// Behavioural coverage of the builtin predicate suite and arithmetic,
// driven through the full compile-link-execute pipeline.

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/loader"
	"repro/internal/parser"
	"repro/internal/term"
	"repro/internal/wam"
)

// machine compiles a program and returns the machine.
func machine(t *testing.T, src string) *wam.Machine {
	t.Helper()
	m := wam.NewMachine(nil)
	if src != "" {
		consultInto(t, m, src)
	}
	return m
}

func consultInto(t *testing.T, m *wam.Machine, src string) {
	t.Helper()
	p := parser.New(src)
	terms, err := p.ReadAll()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := compiler.New(compiler.Options{})
	byPred := map[term.Indicator][]compiler.ClauseCode{}
	for _, tm := range terms {
		ccs, err := c.CompileClause(tm)
		if err != nil {
			t.Fatalf("compile %s: %v", tm, err)
		}
		for _, cc := range ccs {
			byPred[cc.Pred] = append(byPred[cc.Pred], cc)
		}
	}
	for pi, cs := range byPred {
		if _, err := loader.LinkPredicate(m, pi.Name, pi.Arity, cs, loader.DefaultOptions); err != nil {
			t.Fatalf("link %s: %v", pi, err)
		}
	}
}

// ask runs a goal and returns each solution's bindings rendered
// name=value, comma-joined with names sorted.
func ask(t *testing.T, m *wam.Machine, goal string) ([]string, error) {
	t.Helper()
	body, vars, err := parser.ParseTerm(goal)
	if err != nil {
		t.Fatalf("parse goal %q: %v", goal, err)
	}
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)
	vlist := make([]*term.Var, len(names))
	for i, n := range names {
		vlist[i] = vars[n]
	}
	c := compiler.New(compiler.Options{})
	ccs, err := c.CompileQuery("$q", vlist, body)
	if err != nil {
		t.Fatalf("compile goal %q: %v", goal, err)
	}
	byPred := map[term.Indicator][]compiler.ClauseCode{}
	for _, cc := range ccs {
		byPred[cc.Pred] = append(byPred[cc.Pred], cc)
	}
	for pi, cs := range byPred {
		if _, err := loader.LinkPredicate(m, pi.Name, pi.Arity, cs, loader.DefaultOptions); err != nil {
			t.Fatalf("link: %v", err)
		}
	}
	m.Reset()
	args := make([]wam.Cell, len(vlist))
	for i := range args {
		args[i] = wam.MakeRef(m.NewVar())
	}
	run := m.Call(m.Dict.Intern("$q", len(args)), args)
	var out []string
	for {
		ok, err := run.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = n + "=" + m.DecodeTerm(args[i]).String()
		}
		out = append(out, strings.Join(parts, ","))
	}
}

func expectOne(t *testing.T, m *wam.Machine, goal, want string) {
	t.Helper()
	got, err := ask(t, m, goal)
	if err != nil {
		t.Fatalf("%s: %v", goal, err)
	}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("%s = %v, want [%s]", goal, got, want)
	}
}

func expectFail(t *testing.T, m *wam.Machine, goal string) {
	t.Helper()
	got, err := ask(t, m, goal)
	if err != nil {
		t.Fatalf("%s: %v", goal, err)
	}
	if len(got) != 0 {
		t.Fatalf("%s = %v, want failure", goal, got)
	}
}

func expectError(t *testing.T, m *wam.Machine, goal string) {
	t.Helper()
	if _, err := ask(t, m, goal); err == nil {
		t.Fatalf("%s: expected error", goal)
	}
}

func TestArithmeticFunctions(t *testing.T) {
	m := machine(t, "")
	cases := map[string]string{
		"X is 2 + 3":                   "X=5",
		"X is 2 - 3":                   "X=-1",
		"X is 2 * 3":                   "X=6",
		"X is 7 / 2":                   "X=3.5",
		"X is 6 / 2":                   "X=3",
		"X is 7 // 2":                  "X=3",
		"X is -7 // 2":                 "X=-3",
		"X is -7 div 2":                "X=-4",
		"X is 7 mod 3":                 "X=1",
		"X is -7 mod 3":                "X=2",
		"X is -7 rem 3":                "X=-1",
		"X is min(3, 5)":               "X=3",
		"X is max(3, 5)":               "X=5",
		"X is abs(-9)":                 "X=9",
		"X is sign(-3)":                "X=-1",
		"X is 2 ** 10":                 "X=1024.0",
		"X is 2 ^ 10":                  "X=1024",
		"X is 5 >> 1":                  "X=2",
		"X is 5 << 1":                  "X=10",
		"X is 12 /\\ 10":               "X=8",
		"X is 12 \\/ 10":               "X=14",
		"X is 12 xor 10":               "X=6",
		"X is \\ 0":                    "X=-1",
		"X is gcd(12, 18)":             "X=6",
		"X is truncate(3.7)":           "X=3",
		"X is round(3.5)":              "X=4",
		"X is ceiling(3.1)":            "X=4",
		"X is floor(3.9)":              "X=3",
		"X is float(3)":                "X=3.0",
		"X is integer(3.6)":            "X=4",
		"X is sqrt(16.0)":              "X=4.0",
		"X is float_integer_part(2.5)": "X=2.0",
		"X is abs(2.5 - 5.0)":          "X=2.5",
		"X is succ(4)":                 "X=5",
		"X is msb(8)":                  "X=3",
	}
	for goal, want := range cases {
		expectOne(t, m, goal, want)
	}
	// pi and e evaluate to floats.
	if got, _ := ask(t, m, "X is pi, X > 3.14, X < 3.15"); len(got) != 1 {
		t.Error("pi out of range")
	}
	expectError(t, m, "X is 1 / 0")
	expectError(t, m, "X is 1 // 0")
	expectError(t, m, "X is foo + 1")
	expectError(t, m, "X is Y + 1")
	expectError(t, m, "X is unknown_fn(1, 2)")
}

func TestArithmeticComparisons(t *testing.T) {
	m := machine(t, "")
	for _, ok := range []string{
		"1 + 1 =:= 2", "1 =\\= 2", "1 < 2", "2 > 1", "1 =< 1", "2 >= 2",
		"1.5 < 2", "3 > 2.5",
	} {
		if got, err := ask(t, m, ok); err != nil || len(got) != 1 {
			t.Errorf("%s should succeed (%v, %v)", ok, got, err)
		}
	}
	for _, bad := range []string{"1 =:= 2", "2 < 1", "1 > 1", "2 =< 1"} {
		expectFail(t, m, bad)
	}
}

func TestTypeTests(t *testing.T) {
	m := machine(t, "")
	succeed := []string{
		"var(_)", "nonvar(a)", "atom(foo)", "number(1)", "number(1.5)",
		"integer(3)", "float(2.5)", "atomic(a)", "atomic(1)",
		"compound(f(1))", "compound([1])", "callable(foo)", "callable(f(x))",
		"is_list([1,2])", "is_list([])", "ground(f(1, a))",
	}
	for _, g := range succeed {
		if got, err := ask(t, m, g); err != nil || len(got) != 1 {
			t.Errorf("%s should succeed (%v, %v)", g, got, err)
		}
	}
	fail := []string{
		"var(a)", "nonvar(_)", "atom(1)", "atom(f(1))", "number(a)",
		"integer(1.5)", "float(3)", "atomic(f(1))", "compound(a)",
		"callable(1)", "is_list([1|_])", "ground(f(_))",
	}
	for _, g := range fail {
		expectFail(t, m, g)
	}
}

func TestTermOrderBuiltins(t *testing.T) {
	m := machine(t, "")
	expectOne(t, m, "compare(O, 1, 2)", "O=<")
	expectOne(t, m, "compare(O, b, a)", "O=>")
	expectOne(t, m, "compare(O, f(1), f(1))", "O==")
	for _, g := range []string{
		"a @< b", "f(1) @> a", "1 @< a", "1.5 @< 2", "a @=< a", "b @>= a",
		"f(a) == f(a)", "f(a) \\== f(b)",
	} {
		if got, err := ask(t, m, g); err != nil || len(got) != 1 {
			t.Errorf("%s should succeed (%v %v)", g, got, err)
		}
	}
}

func TestAtomBuiltins(t *testing.T) {
	m := machine(t, "")
	expectOne(t, m, "atom_codes(abc, L)", "L=[97,98,99]")
	expectOne(t, m, "atom_codes(A, [104,105])", "A=hi")
	expectOne(t, m, "atom_codes(123, L)", "L=[49,50,51]")
	expectOne(t, m, "atom_chars(abc, L)", "L=[a,b,c]")
	expectOne(t, m, "atom_chars(A, [h,i])", "A=hi")
	expectOne(t, m, "char_code(a, X)", "X=97")
	expectOne(t, m, "char_code(C, 98)", "C=b")
	expectOne(t, m, "atom_length(hello, N)", "N=5")
	expectOne(t, m, "atom_concat(foo, bar, X)", "X=foobar")
	expectOne(t, m, "atom_concat(foo, X, foobar)", "X=bar")
	expectOne(t, m, "atom_concat(X, bar, foobar)", "X=foo")
	expectFail(t, m, "atom_concat(zzz, _, foobar)")
	// Nondeterministic split.
	got, err := ask(t, m, "atom_concat(A, B, ab)")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A='',B=ab", "A=a,B=b", "A=ab,B=''"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("split = %v", got)
	}
	expectOne(t, m, "number_codes(42, L)", "L=[52,50]")
	expectOne(t, m, "number_codes(N, [52,50])", "N=42")
	expectOne(t, m, "number_codes(N, [51,46,53])", "N=3.5")
	expectOne(t, m, "atom_number('17', N)", "N=17")
	expectOne(t, m, "atom_number(A, 17)", "A='17'")
	expectFail(t, m, "atom_number(hello, _)")
}

func TestTermConstruction(t *testing.T) {
	m := machine(t, "")
	expectOne(t, m, "functor(f(a,b), N, A), R = N/A", "A=2,N=f,R=/(f,2)")
	expectOne(t, m, "functor(T, f, 2), T = f(X, Y)", "T=f(_G1,_G2),X=_G1,Y=_G2")
	expectOne(t, m, "functor(T, foo, 0)", "T=foo")
	expectOne(t, m, "functor(atom, N, A), R = N/A", "A=0,N=atom,R=/(atom,0)")
	expectOne(t, m, "functor(7, N, A), R = N/A", "A=0,N=7,R=/(7,0)")
	expectOne(t, m, "functor([a], N, A), R = N/A", "A=2,N='.',R=/('.',2)")
	expectOne(t, m, "arg(1, f(a,b), X)", "X=a")
	expectFail(t, m, "arg(3, f(a,b), _)")
	expectFail(t, m, "arg(0, f(a,b), _)")
	expectOne(t, m, "f(a,b) =.. L", "L=[f,a,b]")
	expectOne(t, m, "T =.. [g, 1]", "T=g(1)")
	expectOne(t, m, "T =.. [only]", "T=only")
	expectOne(t, m, "[a|b] =.. L", "L=['.',a,b]")
	expectOne(t, m, "7 =.. L", "L=[7]")
	expectOne(t, m, "T =.. ['.', h, t]", "T=[h|t]")
}

func TestListBuiltins(t *testing.T) {
	m := machine(t, "")
	expectOne(t, m, "length([a,b,c], N)", "N=3")
	expectOne(t, m, "length(L, 2), L = [x, y]", "L=[x,y]")
	expectOne(t, m, "msort([3,1,2,1], L)", "L=[1,1,2,3]")
	expectOne(t, m, "sort([3,1,2,1], L)", "L=[1,2,3]")
	expectOne(t, m, "sort([b, 2, a, 1.5, f(x), _], [V|T]), var(V), T = [1.5, 2, a, b, f(x)]",
		"T=[1.5,2,a,b,f(x)],V=_G1")
	expectOne(t, m, "keysort([b-2, a-1, b-1], L)", "L=[-(a,1),-(b,2),-(b,1)]")
	expectError(t, m, "keysort([notapair], _)")
	expectError(t, m, "length(_, _)")
}

func TestUnificationBuiltins(t *testing.T) {
	m := machine(t, "")
	expectOne(t, m, "X = f(Y), Y = 1", "X=f(1),Y=1")
	expectFail(t, m, "a = b")
	expectFail(t, m, "f(X, X) = f(1, 2)")
	if got, _ := ask(t, m, "a \\= b"); len(got) != 1 {
		t.Error("a \\= b should succeed")
	}
	expectFail(t, m, "X \\= Y")
	// Occurs check.
	expectFail(t, m, "unify_with_occurs_check(X, f(X))")
	if got, _ := ask(t, m, "unify_with_occurs_check(X, f(1))"); len(got) != 1 {
		t.Error("occurs-check unify of acyclic failed")
	}
	// Plain = builds a rational tree; cyclic_term detects it.
	if got, _ := ask(t, m, "X = f(X), cyclic_term(X)"); len(got) != 1 {
		t.Error("cyclic term not detected")
	}
}

func TestSuccPlus(t *testing.T) {
	m := machine(t, "")
	expectOne(t, m, "succ(3, X)", "X=4")
	expectOne(t, m, "succ(X, 4)", "X=3")
	expectFail(t, m, "succ(_, 0)")
	expectError(t, m, "succ(_, _)")
	expectOne(t, m, "plus(2, 3, X)", "X=5")
	expectOne(t, m, "plus(2, X, 5)", "X=3")
	expectOne(t, m, "plus(X, 3, 5)", "X=2")
	expectError(t, m, "plus(_, _, 5)")
}

func TestCopyTermSharing(t *testing.T) {
	m := machine(t, "")
	expectOne(t, m, "copy_term(f(X, X, Y), C), C = f(1, Z, 2)", "C=f(1,1,2),X=_G1,Y=_G2,Z=1")
}

func TestWriteOutput(t *testing.T) {
	m := machine(t, "")
	var buf bytes.Buffer
	m.Out = &buf
	if _, err := ask(t, m, "write(f(1, [a])), nl, tab(3), write(done)"); err != nil {
		t.Fatal(err)
	}
	want := "f(1,[a])\n   done"
	if buf.String() != want {
		t.Fatalf("output %q, want %q", buf.String(), want)
	}
}

func TestHaltStopsSession(t *testing.T) {
	m := machine(t, "")
	_, err := ask(t, m, "halt")
	if err != wam.ErrHalted {
		t.Fatalf("halt returned %v", err)
	}
}

func TestBetweenModes(t *testing.T) {
	m := machine(t, "")
	got, _ := ask(t, m, "between(2, 4, X)")
	if !reflect.DeepEqual(got, []string{"X=2", "X=3", "X=4"}) {
		t.Fatalf("between = %v", got)
	}
	if got, _ := ask(t, m, "between(1, 3, 2)"); len(got) != 1 {
		t.Error("between test mode failed")
	}
	expectFail(t, m, "between(1, 3, 7)")
	expectFail(t, m, "between(3, 1, _)")
	expectError(t, m, "between(a, 3, _)")
}

func TestMetaCallErrors(t *testing.T) {
	m := machine(t, "")
	expectError(t, m, "call(_)")
	expectError(t, m, "call(1)")
	expectError(t, m, "call([a])")
}

func TestCutViaMetacall(t *testing.T) {
	// call(!) is a local no-op cut per ISO: alternatives outside survive.
	m := machine(t, "p(1). p(2).")
	got, _ := ask(t, m, "p(X), call(!)")
	if !reflect.DeepEqual(got, []string{"X=1", "X=2"}) {
		t.Fatalf("call(!) pruned outer alternatives: %v", got)
	}
}
