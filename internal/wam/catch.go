package wam

import (
	"fmt"

	"repro/internal/term"
)

// ErrBall is a Prolog exception in flight (thrown by throw/1, caught by
// catch/3). Engine errors that are not balls abort the query.
type ErrBall struct {
	// Term is the thrown ball, copied out of the heap so it survives the
	// state unwinding that delivery performs.
	Term term.Term
}

func (e *ErrBall) Error() string { return "wam: uncaught exception: " + e.Term.String() }

// registerCatchBuiltins installs catch/3 and throw/1.
//
// catch(Goal, Catcher, Recovery) pushes a catch-marker choice point whose
// redo always fails (so ordinary backtracking passes through it
// transparently) and records Catcher/Recovery as symbolic terms in the
// marker's out-of-band state. throw(Ball) surfaces as an *ErrBall, which
// the run loop hands to deliverBall.
//
// Deviation from ISO: a marker stays armed until it is backtracked over or
// cut, so a ball thrown after Goal already succeeded (but before the
// marker is discarded) is still caught here.
func registerCatchBuiltins(m *Machine) {
	m.RegisterBuiltin(Builtin{Name: "throw", Arity: 1, Fn: func(m *Machine, a []Cell) (bool, error) {
		d := m.Deref(a[0])
		if d.Tag() == TagRef {
			return false, fmt.Errorf("wam: throw/1: unbound ball")
		}
		return false, &ErrBall{Term: m.DecodeTerm(d)}
	}})
	m.RegisterBuiltin(Builtin{Name: "catch", Arity: 3, Fn: func(m *Machine, a []Cell) (bool, error) {
		// Decode catcher and recovery together so variables they share
		// stay shared when re-encoded at delivery time.
		addr := m.PushHeap(MakeFun(m.Dict.Intern("$catch_pair", 2), 2))
		m.PushHeap(a[1])
		m.PushHeap(a[2])
		pairT, varAddrs := m.DecodeTermVars(MakeStr(addr))
		pair := pairT.(*term.Compound)

		m.pushChoicePoint(m.numArgs, codePtr{blk: m.retryBlock, off: 0})
		m.extras = append(m.extras, extra{
			b:        m.b,
			fn:       func(*Machine) (bool, error) { return false, nil },
			catch:    true,
			catcher:  pair.Args[0],
			recovery: pair.Args[1],
			varAddrs: varAddrs,
		})
		return m.metaCall(a[0], nil)
	}})
}

// deliverBall unwinds to the nearest catch marker whose catcher unifies
// with the ball and sets up its recovery goal. caught=false means no
// marker matched (the error propagates); failed=true means delivery
// happened but the recovery call could not be established, so the caller
// should backtrack.
func (m *Machine) deliverBall(ball *ErrBall) (caught, failed bool) {
	for len(m.extras) > 0 {
		e := m.extras[len(m.extras)-1]
		if !e.catch {
			// Unwind past inner redo state: restore and discard its
			// choice point.
			m.b = e.b
			m.restoreFromChoicePoint()
			m.popChoicePoint()
			continue
		}
		// Restore the machine to the catch point; m.cp becomes the
		// continuation of the original catch/3 call.
		m.b = e.b
		m.restoreFromChoicePoint()
		m.popChoicePoint() // trims this extras entry too
		// Re-establish variable identity: the variables of catcher and
		// recovery are the very heap cells that existed when catch/3
		// ran, and the unwind has just restored that heap state.
		env := map[*term.Var]Cell{}
		for v, a := range e.varAddrs {
			env[v] = MakeRef(a)
		}
		catcher := m.EncodeTerm(e.catcher, env)
		recovery := m.EncodeTerm(e.recovery, env)
		ballCell := m.EncodeTerm(term.Rename(ball.Term), map[*term.Var]Cell{})
		if !m.Unify(catcher, ballCell) {
			continue // not for this catcher: keep unwinding outward
		}
		ok, err := m.metaCall(recovery, nil)
		if err != nil || !ok {
			m.pendingJump = nil
			return true, true
		}
		return true, false
	}
	return false, false
}

// handleBuiltinError routes a builtin error through exception delivery.
// It returns the action the run loop should take.
type errAction uint8

const (
	errPropagate errAction = iota // return the error to the caller
	errJump                       // continue at m.p (recovery installed)
	errFail                       // backtrack
)

func (m *Machine) handleBuiltinError(err error) (errAction, error) {
	err = m.asBall(err)
	ball, ok := err.(*ErrBall)
	if !ok {
		return errPropagate, err
	}
	caught, failed := m.deliverBall(ball)
	if !caught {
		return errPropagate, err
	}
	if failed {
		return errFail, nil
	}
	if m.pendingJump != nil {
		m.p = *m.pendingJump
		m.pendingJump = nil
		// Entering the recovery goal is a call: reset the cut barrier
		// so a cut inside it is local (see the tail-call jump in run).
		m.b0 = m.b
	}
	return errJump, nil
}
