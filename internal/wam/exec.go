package wam

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dict"
	"repro/internal/term"
)

// ErrNoCode is returned when the machine is resumed without a program.
var ErrNoCode = errors.New("wam: no code to execute")

// backtrack restores the newest choice point and resumes at its BP.
// It returns false when no choice point remains.
func (m *Machine) backtrack() bool {
	m.stats.Backtracks++
	if m.b < 0 {
		if m.prof != nil {
			m.prof.portFinalFail(m.p.blk)
		}
		return false
	}
	from := m.p.blk
	m.p = m.restoreFromChoicePoint()
	if m.prof != nil {
		m.prof.portBacktrack(from, m.p.blk)
	}
	return true
}

// runLoop executes instructions until a solution (OpHalt) or exhaustion.
// It returns true when the query succeeded.
//
// Cancellation and quotas are checked once on entry — so every Next sees
// an expired deadline or an exhausted solution quota promptly, however
// few instructions separate two solutions — and then amortized every
// 256 instructions inside the loop.
func (m *Machine) runLoop() (bool, error) {
	if err := m.checkCancel(); err != nil {
		switch act, perr := m.handleBuiltinError(err); act {
		case errJump:
		case errFail:
			if !m.backtrack() {
				return false, nil
			}
		default:
			return false, perr
		}
	}
	for {
		if m.p.blk == nil {
			return false, ErrNoCode
		}
		ins := &m.p.blk.Instrs[m.p.off]
		m.stats.Instructions++
		m.stats.OpClasses[opClassOf[ins.Op]]++

		// Amortized cancellation poll: deadlines and interrupts surface
		// here as catchable balls, so even a runaway deterministic goal
		// (no calls, no builtins) is bounded.
		if m.stats.Instructions&interruptMask == 0 {
			if err := m.checkCancel(); err != nil {
				switch act, perr := m.handleBuiltinError(err); act {
				case errJump:
					continue
				case errFail:
					if !m.backtrack() {
						return false, nil
					}
					continue
				default:
					return false, perr
				}
			}
		}

		switch ins.Op {
		case OpNop:
			m.p.off++

		// --- put ---------------------------------------------------
		case OpPutVariableX:
			v := MakeRef(m.NewVar())
			m.ensureRegs(maxInt(int(ins.Reg), int(ins.Arg)) + 1)
			m.x[ins.Reg] = v
			m.x[ins.Arg] = v
			m.p.off++
		case OpPutVariableY:
			v := MakeRef(m.NewVar())
			m.setY(int(ins.Reg), v)
			m.ensureRegs(int(ins.Arg) + 1)
			m.x[ins.Arg] = v
			m.p.off++
		case OpPutValueX:
			m.ensureRegs(maxInt(int(ins.Reg), int(ins.Arg)) + 1)
			m.x[ins.Arg] = m.x[ins.Reg]
			m.p.off++
		case OpPutValueY:
			m.ensureRegs(int(ins.Arg) + 1)
			m.x[ins.Arg] = m.Y(int(ins.Reg))
			m.p.off++
		case OpPutConstant:
			m.ensureRegs(int(ins.Arg) + 1)
			m.x[ins.Arg] = MakeCon(ins.Fn)
			m.p.off++
		case OpPutInteger:
			m.ensureRegs(int(ins.Arg) + 1)
			m.x[ins.Arg] = MakeInt(ins.Int)
			m.p.off++
		case OpPutFloat:
			m.ensureRegs(int(ins.Arg) + 1)
			m.x[ins.Arg] = m.PushFloat(ins.Flt)
			m.p.off++
		case OpPutNil:
			m.ensureRegs(int(ins.Arg) + 1)
			m.x[ins.Arg] = MakeCon(m.nilID())
			m.p.off++
		case OpPutStructure:
			a := m.PushHeap(MakeFun(ins.Fn, int(ins.Ar)))
			m.ensureRegs(int(ins.Arg) + 1)
			m.x[ins.Arg] = MakeStr(a)
			m.mode = 'w'
			m.p.off++
		case OpPutList:
			m.ensureRegs(int(ins.Arg) + 1)
			m.x[ins.Arg] = MakeLis(len(m.heap))
			m.mode = 'w'
			m.p.off++

		// --- get ---------------------------------------------------
		case OpGetVariableX:
			m.ensureRegs(maxInt(int(ins.Reg), int(ins.Arg)) + 1)
			m.x[ins.Reg] = m.x[ins.Arg]
			m.p.off++
		case OpGetVariableY:
			m.setY(int(ins.Reg), m.x[ins.Arg])
			m.p.off++
		case OpGetValueX:
			m.ensureRegs(maxInt(int(ins.Reg), int(ins.Arg)) + 1)
			if !m.Unify(m.x[ins.Reg], m.x[ins.Arg]) {
				if !m.backtrack() {
					return false, nil
				}
				continue
			}
			m.p.off++
		case OpGetValueY:
			if !m.Unify(m.Y(int(ins.Reg)), m.x[ins.Arg]) {
				if !m.backtrack() {
					return false, nil
				}
				continue
			}
			m.p.off++
		case OpGetConstant:
			if !m.getConst(m.x[ins.Arg], MakeCon(ins.Fn)) {
				if !m.backtrack() {
					return false, nil
				}
				continue
			}
			m.p.off++
		case OpGetInteger:
			if !m.getConst(m.x[ins.Arg], MakeInt(ins.Int)) {
				if !m.backtrack() {
					return false, nil
				}
				continue
			}
			m.p.off++
		case OpGetFloat:
			d := m.Deref(m.x[ins.Arg])
			ok := false
			switch d.Tag() {
			case TagRef:
				m.bindAddr(d.Val(), m.PushFloat(ins.Flt))
				ok = true
			case TagFlt:
				ok = m.floats[d.Val()] == ins.Flt
			}
			if !ok {
				if !m.backtrack() {
					return false, nil
				}
				continue
			}
			m.p.off++
		case OpGetNil:
			if !m.getConst(m.x[ins.Arg], MakeCon(m.nilID())) {
				if !m.backtrack() {
					return false, nil
				}
				continue
			}
			m.p.off++
		case OpGetStructure:
			d := m.Deref(m.x[ins.Arg])
			switch d.Tag() {
			case TagRef:
				a := m.PushHeap(MakeFun(ins.Fn, int(ins.Ar)))
				m.bindAddr(d.Val(), MakeStr(a))
				m.mode = 'w'
				m.p.off++
			case TagStr:
				f := m.heap[d.Val()]
				if f.FunID() == ins.Fn && f.FunArity() == int(ins.Ar) {
					m.s = d.Val() + 1
					m.mode = 'r'
					m.p.off++
				} else if !m.backtrack() {
					return false, nil
				}
			default:
				if !m.backtrack() {
					return false, nil
				}
			}
		case OpGetList:
			d := m.Deref(m.x[ins.Arg])
			switch d.Tag() {
			case TagRef:
				m.bindAddr(d.Val(), MakeLis(len(m.heap)))
				m.mode = 'w'
				m.p.off++
			case TagLis:
				m.s = d.Val()
				m.mode = 'r'
				m.p.off++
			default:
				if !m.backtrack() {
					return false, nil
				}
			}

		// --- unify -------------------------------------------------
		case OpUnifyVariableX:
			if m.mode == 'r' {
				m.ensureRegs(int(ins.Reg) + 1)
				m.x[ins.Reg] = m.heap[m.s]
				m.s++
			} else {
				v := MakeRef(m.NewVar())
				m.ensureRegs(int(ins.Reg) + 1)
				m.x[ins.Reg] = v
			}
			m.p.off++
		case OpUnifyVariableY:
			if m.mode == 'r' {
				m.setY(int(ins.Reg), m.heap[m.s])
				m.s++
			} else {
				m.setY(int(ins.Reg), MakeRef(m.NewVar()))
			}
			m.p.off++
		case OpUnifyValueX:
			m.ensureRegs(int(ins.Reg) + 1)
			if m.mode == 'r' {
				if !m.Unify(m.x[ins.Reg], m.heap[m.s]) {
					if !m.backtrack() {
						return false, nil
					}
					continue
				}
				m.s++
			} else {
				m.PushHeap(m.x[ins.Reg])
			}
			m.p.off++
		case OpUnifyValueY:
			if m.mode == 'r' {
				if !m.Unify(m.Y(int(ins.Reg)), m.heap[m.s]) {
					if !m.backtrack() {
						return false, nil
					}
					continue
				}
				m.s++
			} else {
				m.PushHeap(m.Y(int(ins.Reg)))
			}
			m.p.off++
		case OpUnifyConstant:
			if m.mode == 'r' {
				c := m.heap[m.s]
				m.s++
				if !m.getConst(c, MakeCon(ins.Fn)) {
					if !m.backtrack() {
						return false, nil
					}
					continue
				}
			} else {
				m.PushHeap(MakeCon(ins.Fn))
			}
			m.p.off++
		case OpUnifyInteger:
			if m.mode == 'r' {
				c := m.heap[m.s]
				m.s++
				if !m.getConst(c, MakeInt(ins.Int)) {
					if !m.backtrack() {
						return false, nil
					}
					continue
				}
			} else {
				m.PushHeap(MakeInt(ins.Int))
			}
			m.p.off++
		case OpUnifyFloat:
			if m.mode == 'r' {
				d := m.Deref(m.heap[m.s])
				m.s++
				ok := false
				switch d.Tag() {
				case TagRef:
					m.bindAddr(d.Val(), m.PushFloat(ins.Flt))
					ok = true
				case TagFlt:
					ok = m.floats[d.Val()] == ins.Flt
				}
				if !ok {
					if !m.backtrack() {
						return false, nil
					}
					continue
				}
			} else {
				m.PushHeap(m.PushFloat(ins.Flt))
			}
			m.p.off++
		case OpUnifyNil:
			if m.mode == 'r' {
				c := m.heap[m.s]
				m.s++
				if !m.getConst(c, MakeCon(m.nilID())) {
					if !m.backtrack() {
						return false, nil
					}
					continue
				}
			} else {
				m.PushHeap(MakeCon(m.nilID()))
			}
			m.p.off++
		case OpUnifyVoid:
			if m.mode == 'r' {
				m.s += int(ins.N)
			} else {
				for i := 0; i < int(ins.N); i++ {
					m.NewVar()
				}
			}
			m.p.off++

		// --- control -----------------------------------------------
		case OpAllocate:
			base := m.stackTop()
			n := int(ins.N)
			m.ensureStack(base + envHdr + n)
			m.stack[base] = MakeSmall(m.e)
			m.stack[base+1] = m.codeCell(m.cp)
			m.stack[base+2] = MakeSmall(n)
			for i := 0; i < n; i++ {
				m.stack[base+envHdr+i] = MakeSmall(0)
			}
			m.e = base
			m.p.off++
		case OpDeallocate:
			m.cp = m.cellCode(m.stack[m.e+1])
			m.e = m.stack[m.e].SmallVal()
			m.p.off++
		case OpCall:
			m.stats.Calls++
			m.maybeGC(int(ins.Ar))
			proc, err := m.lookupProc(ins.Fn)
			if err != nil {
				switch act, perr := m.handleBuiltinError(err); act {
				case errJump:
					continue
				case errFail:
					if !m.backtrack() {
						return false, nil
					}
					continue
				default:
					return false, perr
				}
			}
			if proc == nil { // unknown fails
				if !m.backtrack() {
					return false, nil
				}
				continue
			}
			m.numArgs = int(ins.Ar)
			m.ensureRegs(m.numArgs)
			m.cp = codePtr{blk: m.p.blk, off: m.p.off + 1}
			m.b0 = m.b
			if m.prof != nil {
				m.prof.portCall(ins.Fn, proc.Block)
			}
			m.p = codePtr{blk: proc.Block}
		case OpExecute:
			m.stats.Calls++
			m.maybeGC(int(ins.Ar))
			proc, err := m.lookupProc(ins.Fn)
			if err != nil {
				switch act, perr := m.handleBuiltinError(err); act {
				case errJump:
					continue
				case errFail:
					if !m.backtrack() {
						return false, nil
					}
					continue
				default:
					return false, perr
				}
			}
			if proc == nil {
				if !m.backtrack() {
					return false, nil
				}
				continue
			}
			m.numArgs = int(ins.Ar)
			m.ensureRegs(m.numArgs)
			m.b0 = m.b
			if m.prof != nil {
				m.prof.portCall(ins.Fn, proc.Block)
			}
			m.p = codePtr{blk: proc.Block}
		case OpProceed:
			if m.prof != nil {
				m.prof.portExit(m.p.blk, m.cp.blk)
			}
			m.p = m.cp
		case OpHalt:
			return true, nil

		// --- choice points -----------------------------------------
		case OpTryMeElse:
			m.pushChoicePoint(m.numArgs, codePtr{blk: m.p.blk, off: int(ins.L)})
			m.p.off++
		case OpRetryMeElse:
			m.setBP(codePtr{blk: m.p.blk, off: int(ins.L)})
			m.p.off++
		case OpTrustMe:
			m.popChoicePoint()
			m.p.off++
		case OpTry:
			m.pushChoicePoint(m.numArgs, codePtr{blk: m.p.blk, off: m.p.off + 1})
			m.p.off = int(ins.L)
		case OpRetry:
			m.setBP(codePtr{blk: m.p.blk, off: m.p.off + 1})
			m.p.off = int(ins.L)
		case OpTrust:
			m.popChoicePoint()
			m.p.off = int(ins.L)
		case OpJump:
			m.p.off = int(ins.L)

		// --- indexing ----------------------------------------------
		case OpSwitchOnTerm:
			var target int32
			switch m.Deref(m.x[0]).Tag() {
			case TagRef:
				target = ins.L
			case TagCon, TagInt, TagFlt:
				target = ins.A
			case TagLis:
				target = ins.B
			case TagStr:
				target = ins.C
			default:
				target = -1
			}
			if target < 0 {
				if !m.backtrack() {
					return false, nil
				}
				continue
			}
			m.p.off = int(target)
			m.noteSwitchDispatch()
		case OpSwitchOnConstant:
			d := m.Deref(m.x[0])
			off := switchLookup(ins.Tbl, d)
			if off < 0 {
				off = ins.L
			}
			if off < 0 {
				if !m.backtrack() {
					return false, nil
				}
				continue
			}
			m.p.off = int(off)
			m.noteSwitchDispatch()
		case OpSwitchOnStructure:
			d := m.Deref(m.x[0])
			var key Cell
			if d.Tag() == TagStr {
				key = m.heap[d.Val()]
			}
			off := switchLookup(ins.Tbl, key)
			if off < 0 {
				off = ins.L
			}
			if off < 0 {
				if !m.backtrack() {
					return false, nil
				}
				continue
			}
			m.p.off = int(off)
			m.noteSwitchDispatch()

		// --- cut ----------------------------------------------------
		case OpNeckCut:
			m.cutTo(m.b0)
			m.p.off++
		case OpGetLevel:
			m.setY(int(ins.Reg), MakeSmall(m.b0))
			m.p.off++
		case OpCutY:
			m.cutTo(m.Y(int(ins.Reg)).SmallVal())
			m.p.off++
		case OpCutX:
			m.cutTo(m.Deref(m.x[ins.Reg]).SmallVal())
			m.p.off++

		// --- builtins ----------------------------------------------
		case OpBuiltin:
			bi := m.builtins[ins.N]
			m.numArgs = int(ins.Ar)
			m.ensureRegs(m.numArgs)
			ok, err := bi.Fn(m, m.x[:ins.Ar])
			if err != nil {
				switch act, perr := m.handleBuiltinError(err); act {
				case errJump:
					continue
				case errFail:
					if !m.backtrack() {
						return false, nil
					}
					continue
				default:
					return false, perr
				}
			}
			if !ok {
				m.pendingJump = nil
				if !m.backtrack() {
					return false, nil
				}
				continue
			}
			if m.pendingJump != nil {
				m.p = *m.pendingJump
				m.pendingJump = nil
				// The jump is a procedure call (call/N, metacall): the
				// callee's cut barrier is the current level, so a cut
				// inside it cannot discard markers the builtin pushed
				// (catch/3's, findall's) or older choice points.
				m.b0 = m.b
			} else {
				m.p.off++
			}
		case OpRetryBuiltin:
			if len(m.extras) == 0 || m.extras[len(m.extras)-1].b != m.b {
				return false, fmt.Errorf("wam: retry_builtin without matching redo state")
			}
			e := m.extras[len(m.extras)-1]
			ok, err := e.fn(m)
			if err != nil {
				switch act, perr := m.handleBuiltinError(err); act {
				case errJump:
					continue
				case errFail:
					if !m.backtrack() {
						return false, nil
					}
					continue
				default:
					return false, perr
				}
			}
			if ok {
				m.p = e.resume
				continue
			}
			m.popChoicePoint()
			if !m.backtrack() {
				return false, nil
			}

		case OpFail:
			if !m.backtrack() {
				return false, nil
			}

		default:
			return false, fmt.Errorf("wam: unimplemented opcode %v", ins.Op)
		}
	}
}

// getConst unifies cell a with the ground constant c (TagCon or TagInt).
func (m *Machine) getConst(a, c Cell) bool {
	d := m.Deref(a)
	if d.Tag() == TagRef {
		m.bindAddr(d.Val(), c)
		return true
	}
	return d == c
}

func (m *Machine) nilID() dict.ID { return m.Dict.Intern("[]", 0) }

// asBall converts an unknown-procedure error into the ISO existence_error
// ball so it is catchable; other errors pass through unchanged.
func (m *Machine) asBall(err error) error {
	if unk, ok := err.(*ErrUnknownProc); ok {
		return &ErrBall{Term: term.Comp("error",
			term.Comp("existence_error", term.Atom("procedure"),
				term.Comp("/", term.Atom(unk.Name), term.Int(int64(unk.Arity)))),
			term.Atom(unk.Name))}
	}
	return err
}

// switchLookup finds key in a table sorted by Key.
func switchLookup(tbl []SwitchCase, key Cell) int32 {
	i := sort.Search(len(tbl), func(i int) bool { return tbl[i].Key >= key })
	if i < len(tbl) && tbl[i].Key == key {
		return tbl[i].Off
	}
	return -1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
