package wam

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dict"
	"repro/internal/term"
)

// collector accumulates findall/3 results as symbolic terms so they
// survive backtracking over the generator.
type collector struct {
	items []term.Term
}

// registerCoreBuiltins installs the compiler-independent builtin
// predicates. Engine-level builtins (assert/retract, consult) are added by
// the educe package because they need the clause compiler.
func registerCoreBuiltins(m *Machine) {
	reg := func(name string, arity int, fn BuiltinFn) {
		m.RegisterBuiltin(Builtin{Name: name, Arity: arity, Fn: fn})
	}

	reg("true", 0, func(m *Machine, _ []Cell) (bool, error) { return true, nil })
	reg("fail", 0, func(m *Machine, _ []Cell) (bool, error) { return false, nil })
	reg("false", 0, func(m *Machine, _ []Cell) (bool, error) { return false, nil })
	reg("halt", 0, func(m *Machine, _ []Cell) (bool, error) { return false, ErrHalted })
	reg("!", 0, func(m *Machine, _ []Cell) (bool, error) {
		m.cutTo(m.b0)
		return true, nil
	})

	// --- unification -----------------------------------------------
	reg("=", 2, func(m *Machine, a []Cell) (bool, error) { return m.Unify(a[0], a[1]), nil })
	reg("\\=", 2, func(m *Machine, a []Cell) (bool, error) {
		x, y := a[0], a[1]
		ok := m.tentatively(func() bool { return m.Unify(x, y) })
		return !ok, nil
	})
	reg("unify_with_occurs_check", 2, func(m *Machine, a []Cell) (bool, error) {
		return m.unifyOccurs(a[0], a[1]), nil
	})

	// --- type tests -------------------------------------------------
	typeTest := func(f func(Cell) bool) BuiltinFn {
		return func(m *Machine, a []Cell) (bool, error) { return f(m.Deref(a[0])), nil }
	}
	reg("var", 1, typeTest(func(c Cell) bool { return c.Tag() == TagRef }))
	reg("nonvar", 1, typeTest(func(c Cell) bool { return c.Tag() != TagRef }))
	reg("atom", 1, typeTest(func(c Cell) bool { return c.Tag() == TagCon }))
	reg("integer", 1, typeTest(func(c Cell) bool { return c.Tag() == TagInt }))
	reg("float", 1, typeTest(func(c Cell) bool { return c.Tag() == TagFlt }))
	reg("number", 1, typeTest(func(c Cell) bool { return c.Tag() == TagInt || c.Tag() == TagFlt }))
	reg("atomic", 1, typeTest(func(c Cell) bool {
		switch c.Tag() {
		case TagCon, TagInt, TagFlt:
			return true
		}
		return false
	}))
	reg("compound", 1, typeTest(func(c Cell) bool { return c.Tag() == TagStr || c.Tag() == TagLis }))
	reg("callable", 1, typeTest(func(c Cell) bool {
		switch c.Tag() {
		case TagCon, TagStr, TagLis:
			return true
		}
		return false
	}))
	reg("is_list", 1, func(m *Machine, a []Cell) (bool, error) {
		c := m.Deref(a[0])
		for {
			switch c.Tag() {
			case TagCon:
				return c == MakeCon(m.nilID()), nil
			case TagLis:
				c = m.Deref(m.heap[c.Val()+1])
			default:
				return false, nil
			}
		}
	})
	reg("ground", 1, func(m *Machine, a []Cell) (bool, error) { return m.groundCell(a[0]), nil })

	// --- standard order ----------------------------------------------
	reg("==", 2, func(m *Machine, a []Cell) (bool, error) { return m.CompareCells(a[0], a[1]) == 0, nil })
	reg("\\==", 2, func(m *Machine, a []Cell) (bool, error) { return m.CompareCells(a[0], a[1]) != 0, nil })
	reg("@<", 2, func(m *Machine, a []Cell) (bool, error) { return m.CompareCells(a[0], a[1]) < 0, nil })
	reg("@>", 2, func(m *Machine, a []Cell) (bool, error) { return m.CompareCells(a[0], a[1]) > 0, nil })
	reg("@=<", 2, func(m *Machine, a []Cell) (bool, error) { return m.CompareCells(a[0], a[1]) <= 0, nil })
	reg("@>=", 2, func(m *Machine, a []Cell) (bool, error) { return m.CompareCells(a[0], a[1]) >= 0, nil })
	reg("compare", 3, func(m *Machine, a []Cell) (bool, error) {
		c := m.CompareCells(a[1], a[2])
		name := "="
		if c < 0 {
			name = "<"
		} else if c > 0 {
			name = ">"
		}
		return m.Unify(a[0], MakeCon(m.Dict.Intern(name, 0))), nil
	})

	// --- arithmetic ---------------------------------------------------
	reg("is", 2, func(m *Machine, a []Cell) (bool, error) {
		n, err := m.Eval(a[1])
		if err != nil {
			return false, err
		}
		return m.Unify(a[0], n.Cell(m)), nil
	})
	arithCmp := func(f func(int) bool) BuiltinFn {
		return func(m *Machine, a []Cell) (bool, error) {
			x, err := m.Eval(a[0])
			if err != nil {
				return false, err
			}
			y, err := m.Eval(a[1])
			if err != nil {
				return false, err
			}
			return f(cmpNum(x, y)), nil
		}
	}
	reg("=:=", 2, arithCmp(func(c int) bool { return c == 0 }))
	reg("=\\=", 2, arithCmp(func(c int) bool { return c != 0 }))
	reg("<", 2, arithCmp(func(c int) bool { return c < 0 }))
	reg(">", 2, arithCmp(func(c int) bool { return c > 0 }))
	reg("=<", 2, arithCmp(func(c int) bool { return c <= 0 }))
	reg(">=", 2, arithCmp(func(c int) bool { return c >= 0 }))
	reg("succ", 2, func(m *Machine, a []Cell) (bool, error) {
		x, y := m.Deref(a[0]), m.Deref(a[1])
		switch {
		case x.Tag() == TagInt:
			if x.IntVal() < 0 {
				return false, arithErrf("succ/2 needs a natural number")
			}
			return m.Unify(y, MakeInt(x.IntVal()+1)), nil
		case y.Tag() == TagInt:
			if y.IntVal() <= 0 {
				return false, nil
			}
			return m.Unify(x, MakeInt(y.IntVal()-1)), nil
		}
		return false, arithErrf("succ/2: insufficiently instantiated")
	})
	reg("plus", 3, func(m *Machine, a []Cell) (bool, error) {
		x, y, z := m.Deref(a[0]), m.Deref(a[1]), m.Deref(a[2])
		switch {
		case x.Tag() == TagInt && y.Tag() == TagInt:
			return m.Unify(z, MakeInt(x.IntVal()+y.IntVal())), nil
		case x.Tag() == TagInt && z.Tag() == TagInt:
			return m.Unify(y, MakeInt(z.IntVal()-x.IntVal())), nil
		case y.Tag() == TagInt && z.Tag() == TagInt:
			return m.Unify(x, MakeInt(z.IntVal()-y.IntVal())), nil
		}
		return false, arithErrf("plus/3: insufficiently instantiated")
	})
	reg("between", 3, func(m *Machine, a []Cell) (bool, error) {
		lo, hi := m.Deref(a[0]), m.Deref(a[1])
		if lo.Tag() != TagInt || hi.Tag() != TagInt {
			return false, arithErrf("between/3: bounds must be integers")
		}
		x := m.Deref(a[2])
		if x.Tag() == TagInt {
			v := x.IntVal()
			return v >= lo.IntVal() && v <= hi.IntVal(), nil
		}
		if x.Tag() != TagRef {
			return false, nil
		}
		cur := lo.IntVal()
		end := hi.IntVal()
		fn := func(m *Machine) (bool, error) {
			if cur > end {
				return false, nil
			}
			v := cur
			cur++
			return m.Unify(m.Reg(2), MakeInt(v)), nil
		}
		m.PushRedo(fn)
		return fn(m)
	})

	// --- term construction --------------------------------------------
	reg("functor", 3, biFunctor)
	reg("arg", 3, biArg)
	reg("=..", 2, biUniv)
	reg("copy_term", 2, func(m *Machine, a []Cell) (bool, error) {
		c := m.copyCell(a[0], map[int]Cell{})
		return m.Unify(a[1], c), nil
	})

	// --- atoms and numbers ---------------------------------------------
	reg("atom_codes", 2, biAtomCodes)
	reg("atom_chars", 2, biAtomChars)
	reg("char_code", 2, biCharCode)
	reg("atom_length", 2, biAtomLength)
	reg("atom_concat", 3, biAtomConcat)
	reg("number_codes", 2, biNumberCodes)
	reg("atom_number", 2, biAtomNumber)

	// --- lists -----------------------------------------------------------
	reg("length", 2, biLength)
	reg("sort", 2, biSort)
	reg("msort", 2, biMsort)
	reg("keysort", 2, biKeysort)

	// --- call/N ------------------------------------------------------------
	for n := 1; n <= 8; n++ {
		n := n
		reg("call", n, func(m *Machine, a []Cell) (bool, error) {
			return m.metaCall(a[0], a[1:n])
		})
	}

	// --- findall support ----------------------------------------------------
	reg("$findall_start", 1, func(m *Machine, a []Cell) (bool, error) {
		m.collectors = append(m.collectors, collector{})
		return m.Unify(a[0], MakeInt(int64(len(m.collectors)-1))), nil
	})
	reg("$findall_add", 2, func(m *Machine, a []Cell) (bool, error) {
		i := m.Deref(a[0]).IntVal()
		m.collectors[i].items = append(m.collectors[i].items, m.DecodeTerm(a[1]))
		return true, nil
	})
	reg("$findall_collect", 2, func(m *Machine, a []Cell) (bool, error) {
		i := m.Deref(a[0]).IntVal()
		items := m.collectors[i].items
		m.collectors = m.collectors[:i]
		env := map[*term.Var]Cell{}
		lst := m.EncodeTerm(term.List(items...), env)
		return m.Unify(a[1], lst), nil
	})

	// --- output ----------------------------------------------------------
	reg("write", 1, func(m *Machine, a []Cell) (bool, error) {
		_, err := fmt.Fprint(m.Out, m.DecodeTerm(a[0]).String())
		return true, err
	})
	reg("print", 1, func(m *Machine, a []Cell) (bool, error) {
		_, err := fmt.Fprint(m.Out, m.DecodeTerm(a[0]).String())
		return true, err
	})
	reg("nl", 0, func(m *Machine, _ []Cell) (bool, error) {
		_, err := fmt.Fprintln(m.Out)
		return true, err
	})
	reg("tab", 1, func(m *Machine, a []Cell) (bool, error) {
		n, err := m.Eval(a[0])
		if err != nil {
			return false, err
		}
		_, err = fmt.Fprint(m.Out, strings.Repeat(" ", int(n.I)))
		return true, err
	})
}

// tentatively runs f and rolls back all bindings it made, returning f's
// result. It is the engine's speculative-unification primitive (\=/2 and
// the EDB pre-unification filter both use it).
func (m *Machine) tentatively(f func() bool) bool {
	oldHB := m.hb
	m.hb = int(^uint(0) >> 1) // trail every binding
	tr := len(m.trail)
	h := len(m.heap)
	fl := len(m.floats)
	ok := f()
	m.unwindTrail(tr)
	m.heap = m.heap[:h]
	m.floats = m.floats[:fl]
	m.hb = oldHB
	return ok
}

// metaCall implements call/N: goal extended with extra arguments.
func (m *Machine) metaCall(goal Cell, extra []Cell) (bool, error) {
	g := m.Deref(goal)
	switch g.Tag() {
	case TagRef:
		return false, fmt.Errorf("wam: call/%d: unbound goal", 1+len(extra))
	case TagCon:
		name := m.Dict.Name(dict.ID(g.Val()))
		fn := m.Dict.Intern(name, len(extra))
		args := append([]Cell(nil), extra...)
		return m.TailCall(fn, args)
	case TagStr:
		f := m.heap[g.Val()]
		n := f.FunArity()
		name := m.Dict.Name(f.FunID())
		args := make([]Cell, 0, n+len(extra))
		for i := 1; i <= n; i++ {
			args = append(args, m.heap[g.Val()+i])
		}
		args = append(args, extra...)
		fn := m.Dict.Intern(name, len(args))
		return m.TailCall(fn, args)
	case TagLis:
		// A list goal is consult-style sugar; not supported.
		return false, fmt.Errorf("wam: call: list is not a callable term")
	}
	return false, fmt.Errorf("wam: call: type error (callable expected)")
}

// groundCell reports whether the term under c contains no unbound vars.
func (m *Machine) groundCell(c Cell) bool {
	work := []Cell{c}
	for len(work) > 0 {
		d := m.Deref(work[len(work)-1])
		work = work[:len(work)-1]
		switch d.Tag() {
		case TagRef:
			return false
		case TagLis:
			work = append(work, m.heap[d.Val()], m.heap[d.Val()+1])
		case TagStr:
			f := m.heap[d.Val()]
			for i := 1; i <= f.FunArity(); i++ {
				work = append(work, m.heap[d.Val()+i])
			}
		}
	}
	return true
}

// CompareCells implements the standard order of terms over heap cells:
// Var < Number < Atom < Compound.
func (m *Machine) CompareCells(a, b Cell) int {
	da, db := m.Deref(a), m.Deref(b)
	ra, rb := m.cellRank(da), m.cellRank(db)
	if ra != rb {
		return ra - rb
	}
	switch da.Tag() {
	case TagRef:
		return da.Val() - db.Val()
	case TagInt, TagFlt:
		var x, y Number
		if da.Tag() == TagInt {
			x = intNum(da.IntVal())
		} else {
			x = fltNum(m.floats[da.Val()])
		}
		if db.Tag() == TagInt {
			y = intNum(db.IntVal())
		} else {
			y = fltNum(m.floats[db.Val()])
		}
		if c := cmpNum(x, y); c != 0 {
			return c
		}
		// Equal value: Float precedes Int.
		if da.Tag() == db.Tag() {
			return 0
		}
		if da.Tag() == TagFlt {
			return -1
		}
		return 1
	case TagCon:
		return strings.Compare(m.Dict.Name(dict.ID(da.Val())), m.Dict.Name(dict.ID(db.Val())))
	case TagSmall:
		return int(da.IntVal() - db.IntVal())
	default:
		na, fa, argsA := m.compoundParts(da)
		nb, fb, argsB := m.compoundParts(db)
		if na != nb {
			return na - nb
		}
		if c := strings.Compare(fa, fb); c != 0 {
			return c
		}
		for i := 0; i < na; i++ {
			if c := m.CompareCells(m.heap[argsA+i], m.heap[argsB+i]); c != 0 {
				return c
			}
		}
		return 0
	}
}

// compoundParts returns arity, functor name and the heap address of the
// first argument of a TagStr or TagLis cell.
func (m *Machine) compoundParts(c Cell) (arity int, name string, argBase int) {
	if c.Tag() == TagLis {
		return 2, term.ConsName, c.Val()
	}
	f := m.heap[c.Val()]
	return f.FunArity(), m.Dict.Name(f.FunID()), c.Val() + 1
}

// unifyOccurs unifies with the occurs check.
func (m *Machine) unifyOccurs(a, b Cell) bool {
	da, db := m.Deref(a), m.Deref(b)
	if da == db {
		return true
	}
	if da.Tag() == TagRef {
		if m.occurs(da.Val(), db) {
			return false
		}
		m.bindAddr(da.Val(), db)
		return true
	}
	if db.Tag() == TagRef {
		if m.occurs(db.Val(), da) {
			return false
		}
		m.bindAddr(db.Val(), da)
		return true
	}
	switch {
	case da.Tag() != db.Tag():
		return false
	case da.Tag() == TagLis:
		return m.unifyOccurs(m.heap[da.Val()], m.heap[db.Val()]) &&
			m.unifyOccurs(m.heap[da.Val()+1], m.heap[db.Val()+1])
	case da.Tag() == TagStr:
		fa, fb := m.heap[da.Val()], m.heap[db.Val()]
		if fa != fb {
			return false
		}
		for i := 1; i <= fa.FunArity(); i++ {
			if !m.unifyOccurs(m.heap[da.Val()+i], m.heap[db.Val()+i]) {
				return false
			}
		}
		return true
	case da.Tag() == TagFlt:
		return m.floats[da.Val()] == m.floats[db.Val()]
	default:
		return da == db
	}
}

func (m *Machine) occurs(addr int, c Cell) bool {
	d := m.Deref(c)
	switch d.Tag() {
	case TagRef:
		return d.Val() == addr
	case TagLis:
		return m.occurs(addr, m.heap[d.Val()]) || m.occurs(addr, m.heap[d.Val()+1])
	case TagStr:
		f := m.heap[d.Val()]
		for i := 1; i <= f.FunArity(); i++ {
			if m.occurs(addr, m.heap[d.Val()+i]) {
				return true
			}
		}
	}
	return false
}

func (m *Machine) cellRank(c Cell) int {
	switch c.Tag() {
	case TagRef:
		return 0
	case TagFlt, TagInt:
		return 1
	case TagSmall:
		return 1
	case TagCon:
		return 2
	default:
		return 3
	}
}

// copyCell copies the term under c with fresh variables, preserving
// variable sharing via vars (old heap addr -> new cell).
func (m *Machine) copyCell(c Cell, vars map[int]Cell) Cell {
	d := m.Deref(c)
	switch d.Tag() {
	case TagRef:
		if nc, ok := vars[d.Val()]; ok {
			return nc
		}
		nc := MakeRef(m.NewVar())
		vars[d.Val()] = nc
		return nc
	case TagLis:
		h := m.copyCell(m.heap[d.Val()], vars)
		t := m.copyCell(m.heap[d.Val()+1], vars)
		a := m.PushHeap(h)
		m.PushHeap(t)
		return MakeLis(a)
	case TagStr:
		f := m.heap[d.Val()]
		n := f.FunArity()
		args := make([]Cell, n)
		for i := 0; i < n; i++ {
			args[i] = m.copyCell(m.heap[d.Val()+1+i], vars)
		}
		a := m.PushHeap(f)
		for _, ac := range args {
			m.PushHeap(ac)
		}
		return MakeStr(a)
	default:
		return d
	}
}

// --- individual builtins -----------------------------------------------

func biFunctor(m *Machine, a []Cell) (bool, error) {
	t := m.Deref(a[0])
	switch t.Tag() {
	case TagRef:
		name := m.Deref(a[1])
		ar := m.Deref(a[2])
		if ar.Tag() != TagInt {
			return false, fmt.Errorf("wam: functor/3: arity must be an integer")
		}
		n := int(ar.IntVal())
		if n == 0 {
			return m.Unify(t, name), nil
		}
		if name.Tag() != TagCon {
			return false, fmt.Errorf("wam: functor/3: name must be an atom")
		}
		if n == 2 && dict.ID(name.Val()) == m.Dict.Intern(term.ConsName, 0) {
			addr := m.NewVar()
			m.NewVar()
			return m.Unify(t, MakeLis(addr)), nil
		}
		fn := m.Dict.Intern(m.Dict.Name(dict.ID(name.Val())), n)
		addr := m.PushHeap(MakeFun(fn, n))
		for i := 0; i < n; i++ {
			m.NewVar()
		}
		return m.Unify(t, MakeStr(addr)), nil
	case TagStr:
		f := m.heap[t.Val()]
		nameID := m.Dict.Intern(m.Dict.Name(f.FunID()), 0)
		return m.Unify(a[1], MakeCon(nameID)) && m.Unify(a[2], MakeInt(int64(f.FunArity()))), nil
	case TagLis:
		consID := m.Dict.Intern(term.ConsName, 0)
		return m.Unify(a[1], MakeCon(consID)) && m.Unify(a[2], MakeInt(2)), nil
	default:
		return m.Unify(a[1], t) && m.Unify(a[2], MakeInt(0)), nil
	}
}

func biArg(m *Machine, a []Cell) (bool, error) {
	nc := m.Deref(a[0])
	t := m.Deref(a[1])
	if nc.Tag() != TagInt {
		return false, fmt.Errorf("wam: arg/3: first argument must be an integer")
	}
	n := int(nc.IntVal())
	switch t.Tag() {
	case TagStr:
		f := m.heap[t.Val()]
		if n < 1 || n > f.FunArity() {
			return false, nil
		}
		return m.Unify(a[2], m.heap[t.Val()+n]), nil
	case TagLis:
		if n < 1 || n > 2 {
			return false, nil
		}
		return m.Unify(a[2], m.heap[t.Val()+n-1]), nil
	}
	return false, fmt.Errorf("wam: arg/3: second argument must be compound")
}

func biUniv(m *Machine, a []Cell) (bool, error) {
	t := m.Deref(a[0])
	switch t.Tag() {
	case TagRef:
		items, ok := m.cellList(a[1])
		if !ok || len(items) == 0 {
			return false, fmt.Errorf("wam: =../2: right side must be a non-empty list")
		}
		head := m.Deref(items[0])
		if len(items) == 1 {
			return m.Unify(t, head), nil
		}
		if head.Tag() != TagCon {
			return false, fmt.Errorf("wam: =../2: functor must be an atom")
		}
		name := m.Dict.Name(dict.ID(head.Val()))
		n := len(items) - 1
		if name == term.ConsName && n == 2 {
			addr := m.PushHeap(items[1])
			m.PushHeap(items[2])
			return m.Unify(t, MakeLis(addr)), nil
		}
		fn := m.Dict.Intern(name, n)
		addr := m.PushHeap(MakeFun(fn, n))
		for _, it := range items[1:] {
			m.PushHeap(it)
		}
		return m.Unify(t, MakeStr(addr)), nil
	case TagStr:
		f := m.heap[t.Val()]
		items := make([]Cell, 0, f.FunArity()+1)
		items = append(items, MakeCon(m.Dict.Intern(m.Dict.Name(f.FunID()), 0)))
		for i := 1; i <= f.FunArity(); i++ {
			items = append(items, m.heap[t.Val()+i])
		}
		return m.Unify(a[1], m.makeList(items)), nil
	case TagLis:
		items := []Cell{
			MakeCon(m.Dict.Intern(term.ConsName, 0)),
			m.heap[t.Val()], m.heap[t.Val()+1],
		}
		return m.Unify(a[1], m.makeList(items)), nil
	default:
		return m.Unify(a[1], m.makeList([]Cell{t})), nil
	}
}

// cellList collects the elements of a proper list cell.
func (m *Machine) cellList(c Cell) ([]Cell, bool) {
	var out []Cell
	d := m.Deref(c)
	for {
		switch d.Tag() {
		case TagCon:
			if d == MakeCon(m.nilID()) {
				return out, true
			}
			return nil, false
		case TagLis:
			out = append(out, m.heap[d.Val()])
			d = m.Deref(m.heap[d.Val()+1])
		default:
			return nil, false
		}
	}
}

// makeList builds a heap list from cells.
func (m *Machine) makeList(items []Cell) Cell {
	tail := MakeCon(m.nilID())
	for i := len(items) - 1; i >= 0; i-- {
		a := m.PushHeap(items[i])
		m.PushHeap(tail)
		tail = MakeLis(a)
	}
	return tail
}

func (m *Machine) textOf(c Cell) (string, bool) {
	d := m.Deref(c)
	switch d.Tag() {
	case TagCon:
		return m.Dict.Name(dict.ID(d.Val())), true
	case TagInt:
		return strconv.FormatInt(d.IntVal(), 10), true
	case TagFlt:
		return term.Float(m.floats[d.Val()]).String(), true
	}
	return "", false
}

func biAtomCodes(m *Machine, a []Cell) (bool, error) {
	if s, ok := m.textOf(a[0]); ok {
		var items []Cell
		for _, r := range s {
			items = append(items, MakeInt(int64(r)))
		}
		return m.Unify(a[1], m.makeList(items)), nil
	}
	items, ok := m.cellList(a[1])
	if !ok {
		return false, fmt.Errorf("wam: atom_codes/2: insufficiently instantiated")
	}
	var b strings.Builder
	for _, it := range items {
		d := m.Deref(it)
		if d.Tag() != TagInt {
			return false, fmt.Errorf("wam: atom_codes/2: code list must hold integers")
		}
		b.WriteRune(rune(d.IntVal()))
	}
	return m.Unify(a[0], MakeCon(m.Dict.Intern(b.String(), 0))), nil
}

func biAtomChars(m *Machine, a []Cell) (bool, error) {
	if s, ok := m.textOf(a[0]); ok {
		var items []Cell
		for _, r := range s {
			items = append(items, MakeCon(m.Dict.Intern(string(r), 0)))
		}
		return m.Unify(a[1], m.makeList(items)), nil
	}
	items, ok := m.cellList(a[1])
	if !ok {
		return false, fmt.Errorf("wam: atom_chars/2: insufficiently instantiated")
	}
	var b strings.Builder
	for _, it := range items {
		d := m.Deref(it)
		if d.Tag() != TagCon {
			return false, fmt.Errorf("wam: atom_chars/2: char list must hold atoms")
		}
		b.WriteString(m.Dict.Name(dict.ID(d.Val())))
	}
	return m.Unify(a[0], MakeCon(m.Dict.Intern(b.String(), 0))), nil
}

func biCharCode(m *Machine, a []Cell) (bool, error) {
	c := m.Deref(a[0])
	if c.Tag() == TagCon {
		name := []rune(m.Dict.Name(dict.ID(c.Val())))
		if len(name) != 1 {
			return false, fmt.Errorf("wam: char_code/2: not a single character")
		}
		return m.Unify(a[1], MakeInt(int64(name[0]))), nil
	}
	code := m.Deref(a[1])
	if code.Tag() != TagInt {
		return false, fmt.Errorf("wam: char_code/2: insufficiently instantiated")
	}
	return m.Unify(a[0], MakeCon(m.Dict.Intern(string(rune(code.IntVal())), 0))), nil
}

func biAtomLength(m *Machine, a []Cell) (bool, error) {
	s, ok := m.textOf(a[0])
	if !ok {
		return false, fmt.Errorf("wam: atom_length/2: first argument must be atomic")
	}
	return m.Unify(a[1], MakeInt(int64(len([]rune(s))))), nil
}

func biAtomConcat(m *Machine, a []Cell) (bool, error) {
	s1, ok1 := m.textOf(a[0])
	s2, ok2 := m.textOf(a[1])
	if ok1 && ok2 {
		return m.Unify(a[2], MakeCon(m.Dict.Intern(s1+s2, 0))), nil
	}
	s3, ok3 := m.textOf(a[2])
	if !ok3 {
		return false, fmt.Errorf("wam: atom_concat/3: insufficiently instantiated")
	}
	if ok1 {
		if strings.HasPrefix(s3, s1) {
			return m.Unify(a[1], MakeCon(m.Dict.Intern(s3[len(s1):], 0))), nil
		}
		return false, nil
	}
	if ok2 {
		if strings.HasSuffix(s3, s2) {
			return m.Unify(a[0], MakeCon(m.Dict.Intern(s3[:len(s3)-len(s2)], 0))), nil
		}
		return false, nil
	}
	// Nondeterministic split of s3.
	runes := []rune(s3)
	i := 0
	fn := func(m *Machine) (bool, error) {
		if i > len(runes) {
			return false, nil
		}
		k := i
		i++
		return m.tentativelyCommit(func() bool {
			return m.Unify(m.Reg(0), MakeCon(m.Dict.Intern(string(runes[:k]), 0))) &&
				m.Unify(m.Reg(1), MakeCon(m.Dict.Intern(string(runes[k:]), 0)))
		}), nil
	}
	m.PushRedo(fn)
	return fn(m)
}

// tentativelyCommit runs f; on failure all bindings made by f are undone,
// on success they are kept.
func (m *Machine) tentativelyCommit(f func() bool) bool {
	oldHB := m.hb
	m.hb = int(^uint(0) >> 1)
	tr := len(m.trail)
	h := len(m.heap)
	fl := len(m.floats)
	ok := f()
	if !ok {
		m.unwindTrail(tr)
		m.heap = m.heap[:h]
		m.floats = m.floats[:fl]
	}
	m.hb = oldHB
	if ok {
		// Re-trail kept bindings under the real HB discipline: entries
		// recorded above tr that would not have been trailed are
		// harmless (unwinding them later just resets cells that were
		// already reset or rebound), so keep them.
		_ = tr
	}
	return ok
}

func biNumberCodes(m *Machine, a []Cell) (bool, error) {
	d := m.Deref(a[0])
	if d.Tag() == TagInt || d.Tag() == TagFlt {
		s, _ := m.textOf(d)
		var items []Cell
		for _, r := range s {
			items = append(items, MakeInt(int64(r)))
		}
		return m.Unify(a[1], m.makeList(items)), nil
	}
	items, ok := m.cellList(a[1])
	if !ok {
		return false, fmt.Errorf("wam: number_codes/2: insufficiently instantiated")
	}
	var b strings.Builder
	for _, it := range items {
		c := m.Deref(it)
		if c.Tag() != TagInt {
			return false, fmt.Errorf("wam: number_codes/2: code list must hold integers")
		}
		b.WriteRune(rune(c.IntVal()))
	}
	cell, err := m.parseNumberText(b.String())
	if err != nil {
		return false, err
	}
	return m.Unify(a[0], cell), nil
}

func (m *Machine) parseNumberText(s string) (Cell, error) {
	s = strings.TrimSpace(s)
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return MakeInt(v), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return m.PushFloat(f), nil
	}
	return 0, fmt.Errorf("wam: %q is not a number", s)
}

func biAtomNumber(m *Machine, a []Cell) (bool, error) {
	d := m.Deref(a[0])
	if d.Tag() == TagCon {
		cell, err := m.parseNumberText(m.Dict.Name(dict.ID(d.Val())))
		if err != nil {
			return false, nil // atom_number fails silently on non-numbers
		}
		return m.Unify(a[1], cell), nil
	}
	n := m.Deref(a[1])
	s, ok := m.textOf(n)
	if !ok {
		return false, fmt.Errorf("wam: atom_number/2: insufficiently instantiated")
	}
	return m.Unify(a[0], MakeCon(m.Dict.Intern(s, 0))), nil
}

func biLength(m *Machine, a []Cell) (bool, error) {
	if items, ok := m.cellList(a[0]); ok {
		return m.Unify(a[1], MakeInt(int64(len(items)))), nil
	}
	l := m.Deref(a[0])
	n := m.Deref(a[1])
	if l.Tag() == TagRef && n.Tag() == TagInt {
		k := int(n.IntVal())
		if k < 0 {
			return false, nil
		}
		items := make([]Cell, k)
		for i := range items {
			items[i] = MakeRef(m.NewVar())
		}
		return m.Unify(l, m.makeList(items)), nil
	}
	return false, fmt.Errorf("wam: length/2: insufficiently instantiated")
}

func biSort(m *Machine, a []Cell) (bool, error) {
	items, ok := m.cellList(a[0])
	if !ok {
		return false, fmt.Errorf("wam: sort/2: first argument must be a proper list")
	}
	sort.SliceStable(items, func(i, j int) bool { return m.CompareCells(items[i], items[j]) < 0 })
	dedup := items[:0]
	for i, it := range items {
		if i == 0 || m.CompareCells(items[i-1], it) != 0 {
			dedup = append(dedup, it)
		}
	}
	return m.Unify(a[1], m.makeList(dedup)), nil
}

func biMsort(m *Machine, a []Cell) (bool, error) {
	items, ok := m.cellList(a[0])
	if !ok {
		return false, fmt.Errorf("wam: msort/2: first argument must be a proper list")
	}
	sort.SliceStable(items, func(i, j int) bool { return m.CompareCells(items[i], items[j]) < 0 })
	return m.Unify(a[1], m.makeList(items)), nil
}

func biKeysort(m *Machine, a []Cell) (bool, error) {
	items, ok := m.cellList(a[0])
	if !ok {
		return false, fmt.Errorf("wam: keysort/2: first argument must be a proper list")
	}
	key := func(c Cell) (Cell, error) {
		d := m.Deref(c)
		if d.Tag() != TagStr {
			return 0, fmt.Errorf("wam: keysort/2: elements must be Key-Value pairs")
		}
		f := m.heap[d.Val()]
		if m.Dict.Name(f.FunID()) != "-" || f.FunArity() != 2 {
			return 0, fmt.Errorf("wam: keysort/2: elements must be Key-Value pairs")
		}
		return m.heap[d.Val()+1], nil
	}
	for _, it := range items {
		if _, err := key(it); err != nil {
			return false, err
		}
	}
	sort.SliceStable(items, func(i, j int) bool {
		ki, _ := key(items[i])
		kj, _ := key(items[j])
		return m.CompareCells(ki, kj) < 0
	})
	return m.Unify(a[1], m.makeList(items)), nil
}

// TryUnify runs f, keeping any bindings it makes on success and undoing
// them all on failure. Engine-level nondeterministic builtins (relation
// cursors, clause/2) use it to attempt tuple matches.
func (m *Machine) TryUnify(f func() bool) bool { return m.tentativelyCommit(f) }

// WouldUnify runs f and undoes its bindings regardless of the outcome,
// returning f's result. It is the speculative test behind \=/2 and the
// engine's pre-unification checks.
func (m *Machine) WouldUnify(f func() bool) bool { return m.tentatively(f) }

// registerExtraBuiltins adds the cyclic-data detection facilities the
// paper's introduction mentions Educe* provides.
func registerExtraBuiltins(m *Machine) {
	m.RegisterBuiltin(Builtin{Name: "acyclic_term", Arity: 1, Fn: func(m *Machine, a []Cell) (bool, error) {
		return m.acyclic(a[0], map[int]bool{}), nil
	}})
	m.RegisterBuiltin(Builtin{Name: "cyclic_term", Arity: 1, Fn: func(m *Machine, a []Cell) (bool, error) {
		return !m.acyclic(a[0], map[int]bool{}), nil
	}})
}

// acyclic reports whether the term under c contains no cycles, using a
// DFS with an on-path set over structure addresses.
func (m *Machine) acyclic(c Cell, onPath map[int]bool) bool {
	d := m.Deref(c)
	switch d.Tag() {
	case TagLis:
		a := d.Val()
		if onPath[a] {
			return false
		}
		onPath[a] = true
		ok := m.acyclic(m.heap[a], onPath) && m.acyclic(m.heap[a+1], onPath)
		delete(onPath, a)
		return ok
	case TagStr:
		a := d.Val()
		if onPath[a] {
			return false
		}
		onPath[a] = true
		f := m.heap[a]
		for i := 1; i <= f.FunArity(); i++ {
			if !m.acyclic(m.heap[a+i], onPath) {
				delete(onPath, a)
				return false
			}
		}
		delete(onPath, a)
		return true
	default:
		return true
	}
}
