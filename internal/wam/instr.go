package wam

import (
	"fmt"

	"repro/internal/dict"
)

// Op is a WAM opcode.
type Op uint8

// Instruction opcodes. X registers double as argument registers A1..An
// (X[0] is A1). Y registers index the current environment frame.
const (
	OpNop Op = iota

	// Head (get) instructions: match argument register Ai.
	OpGetVariableX // Xn := Ai
	OpGetVariableY // Yn := Ai
	OpGetValueX    // unify(Xn, Ai)
	OpGetValueY    // unify(Yn, Ai)
	OpGetConstant  // unify Ai with constant
	OpGetInteger
	OpGetFloat
	OpGetNil
	OpGetStructure // unify Ai with f(...), enter read or write mode
	OpGetList      // unify Ai with a list pair

	// Body (put) instructions: load argument register Ai.
	OpPutVariableX // fresh heap var into Xn and Ai
	OpPutVariableY // fresh heap var into Yn and Ai
	OpPutValueX    // Ai := Xn
	OpPutValueY    // Ai := Yn
	OpPutConstant
	OpPutInteger
	OpPutFloat
	OpPutNil
	OpPutStructure // begin writing f(...) into Ai
	OpPutList

	// Unify instructions (within get/put_structure, read/write mode).
	OpUnifyVariableX
	OpUnifyVariableY
	OpUnifyValueX
	OpUnifyValueY
	OpUnifyConstant
	OpUnifyInteger
	OpUnifyFloat
	OpUnifyNil
	OpUnifyVoid // N anonymous subterms

	// Control.
	OpAllocate   // push environment with N permanent variables
	OpDeallocate // pop environment
	OpCall       // call predicate Fn (dict ID); N = env size hint
	OpExecute    // tail call predicate Fn
	OpProceed    // return
	OpHalt       // stop the machine (success exit for queries)

	// Choice points.
	OpTryMeElse   // push choice point; on failure continue at L
	OpRetryMeElse // update choice point to resume at L
	OpTrustMe     // discard choice point
	OpTry         // push choice point resuming at next instr; jump to L
	OpRetry       // update choice point to next instr; jump to L
	OpTrust       // discard choice point; jump to L
	OpJump        // unconditional jump to L

	// Indexing (first argument, by type then value: paper §3.2.2).
	OpSwitchOnTerm     // L=var, A=constant, B=list, C=structure (offsets)
	OpSwitchOnConstant // Tbl maps constant cells to offsets; L = fail
	OpSwitchOnStructure

	// Cut.
	OpNeckCut  // cut to the B0 of the current call
	OpGetLevel // Yn := B0
	OpCutY     // cut to the level saved in Yn
	OpCutX     // cut to the level held in Xn (aux-predicate cut barrier)

	// Builtins.
	OpBuiltin      // invoke builtin #N with A args; deterministic or redo-based
	OpRetryBuiltin // internal: resume a nondeterministic builtin

	// Fail unconditionally.
	OpFail
)

var opNames = map[Op]string{
	OpNop:          "nop",
	OpGetVariableX: "get_variable_x", OpGetVariableY: "get_variable_y",
	OpGetValueX: "get_value_x", OpGetValueY: "get_value_y",
	OpGetConstant: "get_constant", OpGetInteger: "get_integer", OpGetFloat: "get_float",
	OpGetNil: "get_nil", OpGetStructure: "get_structure", OpGetList: "get_list",
	OpPutVariableX: "put_variable_x", OpPutVariableY: "put_variable_y",
	OpPutValueX: "put_value_x", OpPutValueY: "put_value_y",
	OpPutConstant: "put_constant", OpPutInteger: "put_integer", OpPutFloat: "put_float",
	OpPutNil: "put_nil", OpPutStructure: "put_structure", OpPutList: "put_list",
	OpUnifyVariableX: "unify_variable_x", OpUnifyVariableY: "unify_variable_y",
	OpUnifyValueX: "unify_value_x", OpUnifyValueY: "unify_value_y",
	OpUnifyConstant: "unify_constant", OpUnifyInteger: "unify_integer", OpUnifyFloat: "unify_float",
	OpUnifyNil: "unify_nil", OpUnifyVoid: "unify_void",
	OpAllocate: "allocate", OpDeallocate: "deallocate",
	OpCall: "call", OpExecute: "execute", OpProceed: "proceed", OpHalt: "halt",
	OpTryMeElse: "try_me_else", OpRetryMeElse: "retry_me_else", OpTrustMe: "trust_me",
	OpTry: "try", OpRetry: "retry", OpTrust: "trust", OpJump: "jump",
	OpSwitchOnTerm: "switch_on_term", OpSwitchOnConstant: "switch_on_constant",
	OpSwitchOnStructure: "switch_on_structure",
	OpNeckCut:           "neck_cut", OpGetLevel: "get_level", OpCutY: "cut_y", OpCutX: "cut_x",
	OpBuiltin: "builtin", OpRetryBuiltin: "retry_builtin", OpFail: "fail",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// SwitchCase is one entry of a switch_on_constant/structure table.
type SwitchCase struct {
	// Key identifies the constant: for switch_on_constant a TagCon or
	// TagInt cell (floats fall back to the default chain); for
	// switch_on_structure a TagFun cell.
	Key Cell
	// Off is the code offset to jump to.
	Off int32
}

// Instr is a single WAM instruction. Operand use depends on Op:
//
//	Reg  — X/Y register number, or argument register Ai for get/put
//	Arg  — second register (Ai) for two-register instructions
//	N    — counts: allocate size, unify_void count, builtin arg count
//	Fn   — functor/predicate dict ID (call, execute, get/put_structure)
//	Ar   — arity companion to Fn
//	Int  — integer constant
//	Flt  — float constant
//	L/A/B/C — code offsets for control and switch_on_term
//	Tbl  — switch table
type Instr struct {
	Op      Op
	Reg     int32
	Arg     int32
	N       int32
	Fn      dict.ID
	Ar      int32
	Int     int64
	Flt     float64
	L       int32
	A, B, C int32
	Tbl     []SwitchCase
}

func (i Instr) String() string {
	switch i.Op {
	case OpGetVariableX, OpGetValueX, OpPutVariableX, OpPutValueX:
		return fmt.Sprintf("%s X%d, A%d", i.Op, i.Reg, i.Arg)
	case OpGetVariableY, OpGetValueY, OpPutVariableY, OpPutValueY:
		return fmt.Sprintf("%s Y%d, A%d", i.Op, i.Reg, i.Arg)
	case OpGetConstant, OpPutConstant:
		return fmt.Sprintf("%s c%d, A%d", i.Op, i.Fn, i.Arg)
	case OpGetInteger, OpPutInteger:
		return fmt.Sprintf("%s %d, A%d", i.Op, i.Int, i.Arg)
	case OpGetFloat, OpPutFloat:
		return fmt.Sprintf("%s %g, A%d", i.Op, i.Flt, i.Arg)
	case OpGetStructure, OpPutStructure:
		return fmt.Sprintf("%s f%d/%d, A%d", i.Op, i.Fn, i.Ar, i.Arg)
	case OpGetList, OpPutList, OpGetNil, OpPutNil:
		return fmt.Sprintf("%s A%d", i.Op, i.Arg)
	case OpUnifyVariableX, OpUnifyValueX:
		return fmt.Sprintf("%s X%d", i.Op, i.Reg)
	case OpUnifyVariableY, OpUnifyValueY:
		return fmt.Sprintf("%s Y%d", i.Op, i.Reg)
	case OpUnifyConstant:
		return fmt.Sprintf("%s c%d", i.Op, i.Fn)
	case OpUnifyInteger:
		return fmt.Sprintf("%s %d", i.Op, i.Int)
	case OpUnifyFloat:
		return fmt.Sprintf("%s %g", i.Op, i.Flt)
	case OpUnifyVoid:
		return fmt.Sprintf("%s %d", i.Op, i.N)
	case OpAllocate:
		return fmt.Sprintf("%s %d", i.Op, i.N)
	case OpCall, OpExecute:
		return fmt.Sprintf("%s p%d/%d", i.Op, i.Fn, i.Ar)
	case OpTryMeElse, OpRetryMeElse, OpTry, OpRetry, OpTrust, OpJump:
		return fmt.Sprintf("%s @%d", i.Op, i.L)
	case OpSwitchOnTerm:
		return fmt.Sprintf("%s var@%d con@%d lis@%d str@%d", i.Op, i.L, i.A, i.B, i.C)
	case OpSwitchOnConstant, OpSwitchOnStructure:
		return fmt.Sprintf("%s (%d cases) else@%d", i.Op, len(i.Tbl), i.L)
	case OpGetLevel, OpCutY:
		return fmt.Sprintf("%s Y%d", i.Op, i.Reg)
	case OpCutX:
		return fmt.Sprintf("%s X%d", i.Op, i.Reg)
	case OpBuiltin:
		return fmt.Sprintf("%s #%d/%d", i.Op, i.N, i.Ar)
	default:
		return i.Op.String()
	}
}

// CodeBlock is an independently loadable unit of WAM code. Blocks are
// registered with a Machine (receiving an ID) and may later be removed,
// which is how dynamically loaded EDB procedures are discarded.
type CodeBlock struct {
	ID     int
	Instrs []Instr
	// Name is a diagnostic label (usually the predicate indicator).
	Name string
	// Owner is the functor of the predicate the block belongs to
	// (stamped by DefineProc; HasOwner distinguishes the zero ID).
	// The profiler uses it to attribute port events.
	Owner    dict.ID
	HasOwner bool
}

// Proc is an entry in the machine's procedures table (paper §4 item 1).
type Proc struct {
	// Fn is the functor ID of the predicate (name via the dictionary).
	Fn    dict.ID
	Arity int
	// Block holds the predicate's code; entry point is offset 0.
	Block *CodeBlock
	// External marks procedures whose clauses live in the EDB; calling
	// one with Block == nil triggers the machine's OnUndefined hook
	// (the paper's interpreter trap).
	External bool
	// Dynamic marks assert/retract-able predicates.
	Dynamic bool
	// Transient marks code loaded from the EDB for the current query,
	// subject to eviction.
	Transient bool
}
