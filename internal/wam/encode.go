package wam

import (
	"fmt"

	"repro/internal/dict"
	"repro/internal/term"
)

// EncodeTerm writes the symbolic term t onto the heap and returns its cell.
// env maps source variables to their heap cells so that sharing within and
// across terms encoded with the same env is preserved.
func (m *Machine) EncodeTerm(t term.Term, env map[*term.Var]Cell) Cell {
	switch x := t.(type) {
	case term.Atom:
		return MakeCon(m.Dict.Intern(string(x), 0))
	case term.Int:
		return MakeInt(int64(x))
	case term.Float:
		return m.PushFloat(float64(x))
	case *term.Var:
		if c, ok := env[x]; ok {
			return c
		}
		c := MakeRef(m.NewVar())
		env[x] = c
		return c
	case *term.Compound:
		if x.Functor == term.ConsName && len(x.Args) == 2 {
			head := m.EncodeTerm(x.Args[0], env)
			tail := m.EncodeTerm(x.Args[1], env)
			a := m.PushHeap(head)
			m.PushHeap(tail)
			return MakeLis(a)
		}
		args := make([]Cell, len(x.Args))
		for i, at := range x.Args {
			args[i] = m.EncodeTerm(at, env)
		}
		fn := m.Dict.Intern(x.Functor, len(x.Args))
		a := m.PushHeap(MakeFun(fn, len(x.Args)))
		for _, c := range args {
			m.PushHeap(c)
		}
		return MakeStr(a)
	}
	panic(fmt.Sprintf("wam: cannot encode %T", t))
}

// DecodeTermVars is DecodeTerm, additionally returning the heap address of
// every variable in the result. catch/3 uses the map to re-establish
// variable identity when a ball is delivered.
func (m *Machine) DecodeTermVars(c Cell) (term.Term, map[*term.Var]int) {
	d := &decoder{m: m, vars: map[int]*term.Var{}, visiting: map[int]bool{}}
	t := d.decode(c)
	addrs := make(map[*term.Var]int, len(d.vars))
	for a, v := range d.vars {
		addrs[v] = a
	}
	return t, addrs
}

// DecodeTerm converts a heap cell back into a symbolic term. Unbound
// variables become fresh *term.Var values named after their heap address;
// repeated occurrences of the same variable share one *term.Var. Cyclic
// structures (possible because unification omits the occurs check) are cut
// at the back-edge with a fresh variable.
func (m *Machine) DecodeTerm(c Cell) term.Term {
	d := &decoder{m: m, vars: map[int]*term.Var{}, visiting: map[int]bool{}}
	return d.decode(c)
}

type decoder struct {
	m        *Machine
	vars     map[int]*term.Var
	visiting map[int]bool
}

func (d *decoder) decode(c Cell) term.Term {
	c = d.m.Deref(c)
	switch c.Tag() {
	case TagRef:
		a := c.Val()
		if v, ok := d.vars[a]; ok {
			return v
		}
		v := &term.Var{Name: fmt.Sprintf("_G%d", a)}
		d.vars[a] = v
		return v
	case TagCon:
		return term.Atom(d.m.Dict.Name(dict.ID(c.Val())))
	case TagInt:
		return term.Int(c.IntVal())
	case TagFlt:
		return term.Float(d.m.floats[c.Val()])
	case TagSmall:
		// Bookkeeping cells can only reach decode through engine bugs
		// or cut barriers passed as data; render them opaquely.
		return term.Comp("$level", term.Int(c.SmallVal()))
	case TagLis:
		a := c.Val()
		if d.visiting[a] {
			return &term.Var{Name: fmt.Sprintf("_Cycle%d", a)}
		}
		d.visiting[a] = true
		head := d.decode(d.m.heap[a])
		tail := d.decode(d.m.heap[a+1])
		delete(d.visiting, a)
		return term.Cons(head, tail)
	case TagStr:
		a := c.Val()
		if d.visiting[a] {
			return &term.Var{Name: fmt.Sprintf("_Cycle%d", a)}
		}
		d.visiting[a] = true
		f := d.m.heap[a]
		n := f.FunArity()
		args := make([]term.Term, n)
		for i := 0; i < n; i++ {
			args[i] = d.decode(d.m.heap[a+1+i])
		}
		delete(d.visiting, a)
		return term.Comp(d.m.Dict.Name(f.FunID()), args...)
	}
	panic(fmt.Sprintf("wam: cannot decode cell tag %v", c.Tag()))
}

// AtomID returns the dictionary ID of a constant (atom) cell.
func (c Cell) AtomID() dict.ID { return dict.ID(c.Val()) }
