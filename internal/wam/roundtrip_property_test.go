package wam_test

// End-to-end property tests: random terms are compiled into fact clauses,
// linked, queried, and must round-trip exactly through the whole
// compiler/loader/emulator/decoder pipeline.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/compiler"
	"repro/internal/loader"
	"repro/internal/term"
	"repro/internal/wam"
)

// genGround builds a random ground term from an rng.
func genGround(r *rand.Rand, depth int) term.Term {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return term.Int(int64(r.Intn(2000) - 1000))
		case 1:
			return term.Atom(fmt.Sprintf("a%d", r.Intn(50)))
		case 2:
			return term.Float(float64(r.Intn(1000)) / 8)
		default:
			return term.Atom("[]")
		}
	}
	switch r.Intn(3) {
	case 0: // compound
		n := 1 + r.Intn(3)
		args := make([]term.Term, n)
		for i := range args {
			args[i] = genGround(r, depth-1)
		}
		return term.Comp(fmt.Sprintf("f%d", r.Intn(5)), args...)
	case 1: // list
		n := r.Intn(4)
		items := make([]term.Term, n)
		for i := range items {
			items[i] = genGround(r, depth-1)
		}
		return term.List(items...)
	default:
		return genGround(r, 0)
	}
}

func TestCompileRunRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		tm := genGround(r, 1+r.Intn(3))
		m := wam.NewMachine(nil)
		c := compiler.New(compiler.Options{})
		ccs, err := c.CompileClause(term.Comp("p", tm))
		if err != nil {
			t.Fatalf("compile p(%s): %v", tm, err)
		}
		// Serialise through the EDB codec to cover that path too.
		linked := make([]compiler.ClauseCode, len(ccs))
		for i, cc := range ccs {
			back, err := loader.DecodeClause(loader.EncodeClause(cc))
			if err != nil {
				t.Fatalf("codec round trip: %v", err)
			}
			linked[i] = back
		}
		if _, err := loader.LinkPredicate(m, "p", 1, linked, loader.DefaultOptions); err != nil {
			t.Fatalf("link: %v", err)
		}

		// Mode 1: p(X) binds X to the stored term.
		v := wam.MakeRef(m.NewVar())
		run := m.Call(m.Dict.Intern("p", 1), []wam.Cell{v})
		ok, err := run.Next()
		if err != nil || !ok {
			t.Fatalf("p(X) failed for %s: %v", tm, err)
		}
		got := m.DecodeTerm(v)
		if got.String() != tm.String() {
			t.Fatalf("round trip: stored %s, got %s", tm, got)
		}
		if ok, _ := run.Next(); ok {
			t.Fatalf("p(X) gave a second solution for %s", tm)
		}

		// Mode 2: p(T) with the exact term succeeds once.
		m.Reset()
		cell := m.EncodeTerm(tm, map[*term.Var]wam.Cell{})
		run = m.Call(m.Dict.Intern("p", 1), []wam.Cell{cell})
		ok, err = run.Next()
		if err != nil || !ok {
			t.Fatalf("p(%s) failed: %v", tm, err)
		}

		// Mode 3: a structurally different term fails.
		other := term.Comp("zz_not_there", tm)
		m.Reset()
		cell = m.EncodeTerm(other, map[*term.Var]wam.Cell{})
		run = m.Call(m.Dict.Intern("p", 1), []wam.Cell{cell})
		ok, err = run.Next()
		if err != nil {
			t.Fatalf("p(%s): %v", other, err)
		}
		if ok {
			t.Fatalf("p(%s) unexpectedly succeeded against %s", other, tm)
		}
	}
}

func TestUnifyRenamedCopyProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	m := wam.NewMachine(nil)
	for iter := 0; iter < 300; iter++ {
		tm := genGround(r, 1+r.Intn(3))
		// Introduce variables by replacing random leaves.
		withVars := sprinkleVars(r, tm, 0)
		env1 := map[*term.Var]wam.Cell{}
		env2 := map[*term.Var]wam.Cell{}
		c1 := m.EncodeTerm(withVars, env1)
		c2 := m.EncodeTerm(term.Rename(withVars), env2)
		if !m.Unify(c1, c2) {
			t.Fatalf("term %s does not unify with its renamed copy", withVars)
		}
		m.Reset()
	}
}

func sprinkleVars(r *rand.Rand, t term.Term, depth int) term.Term {
	if r.Intn(5) == 0 {
		return &term.Var{Name: fmt.Sprintf("V%d", r.Intn(4))}
	}
	if c, ok := t.(*term.Compound); ok {
		args := make([]term.Term, len(c.Args))
		for i, a := range c.Args {
			args[i] = sprinkleVars(r, a, depth+1)
		}
		return term.Comp(c.Functor, args...)
	}
	return t
}

func TestUnifySymmetryProperty(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for iter := 0; iter < 300; iter++ {
		a := sprinkleVars(r, genGround(r, 2), 0)
		b := sprinkleVars(r, genGround(r, 2), 0)

		try := func(x, y term.Term) bool {
			m := wam.NewMachine(nil)
			env := map[*term.Var]wam.Cell{}
			cx := m.EncodeTerm(x, env)
			cy := m.EncodeTerm(y, env) // shared env: same vars shared
			return m.Unify(cx, cy)
		}
		if try(a, b) != try(b, a) {
			t.Fatalf("unification not symmetric for %s vs %s", a, b)
		}
	}
}

func TestGCDifferentialProperty(t *testing.T) {
	// The same computation with an aggressive GC and with GC disabled
	// must produce identical answers.
	r := rand.New(rand.NewSource(17))
	for iter := 0; iter < 30; iter++ {
		tm := genGround(r, 2)
		run := func(gc bool) string {
			m := wam.NewMachine(nil)
			m.SetGC(gc)
			m.SetGCThreshold(1024)
			c := compiler.New(compiler.Options{})
			src := term.Comp("p", tm)
			ccs, _ := c.CompileClause(src)
			loader.LinkPredicate(m, "p", 1, ccs, loader.DefaultOptions)
			// A predicate that churns heap: q(X) :- p(_), p(_), p(X).
			churn, _ := c.CompileClause(term.Comp(":-",
				term.Comp("q", &term.Var{Name: "X"}),
				term.Comp(",", term.Comp("p", &term.Var{Name: "_A"}),
					term.Comp(",", term.Comp("p", &term.Var{Name: "_B"}),
						term.Comp("p", &term.Var{Name: "X"})))))
			loader.LinkPredicate(m, "q", 1, churn, loader.DefaultOptions)
			v := wam.MakeRef(m.NewVar())
			runq := m.Call(m.Dict.Intern("q", 1), []wam.Cell{v})
			ok, err := runq.Next()
			if err != nil || !ok {
				t.Fatalf("q(X): %v %v", ok, err)
			}
			return m.DecodeTerm(v).String()
		}
		if a, b := run(true), run(false); a != b {
			t.Fatalf("GC changed the answer: %s vs %s", a, b)
		}
	}
}
