package wam

import (
	"errors"
	"testing"

	"repro/internal/term"
)

// TestSolutionQuotaKillsEnumeration proves the solution cap fires at the
// solution boundary (not only at the amortized instruction poll): a
// three-clause predicate under a two-solution quota delivers exactly two
// answers and then dies with resource_error(solutions).
func TestSolutionQuotaKillsEnumeration(t *testing.T) {
	m := NewMachine(nil)
	a := m.Dict.Intern("a", 0)
	b := m.Dict.Intern("b", 0)
	c := m.Dict.Intern("c", 0)
	fn := defineProc(m, "p", 1, []Instr{
		{Op: OpTryMeElse, L: 3},
		{Op: OpGetConstant, Fn: a, Arg: 0},
		{Op: OpProceed},
		{Op: OpRetryMeElse, L: 6},
		{Op: OpGetConstant, Fn: b, Arg: 0},
		{Op: OpProceed},
		{Op: OpTrustMe},
		{Op: OpGetConstant, Fn: c, Arg: 0},
		{Op: OpProceed},
	})
	m.SetQuota(Quota{Solutions: 2})
	v := MakeRef(m.NewVar())
	run := m.Call(fn, []Cell{v})
	for i := 0; i < 2; i++ {
		ok, err := run.Next()
		if err != nil || !ok {
			t.Fatalf("solution %d: ok=%v err=%v", i+1, ok, err)
		}
	}
	ok, err := run.Next()
	if ok {
		t.Fatalf("third solution delivered past a 2-solution quota")
	}
	if got := ResourceKind(err); got != "solutions" {
		t.Fatalf("ResourceKind(%v) = %q, want solutions", err, got)
	}
}

// TestSolutionQuotaResetsPerQuery proves the counter is per Call: a
// second query on the same machine gets a fresh budget.
func TestSolutionQuotaResetsPerQuery(t *testing.T) {
	m := NewMachine(nil)
	a := m.Dict.Intern("a", 0)
	fn := defineProc(m, "q", 1, []Instr{
		{Op: OpGetConstant, Fn: a, Arg: 0},
		{Op: OpProceed},
	})
	m.SetQuota(Quota{Solutions: 1})
	for round := 0; round < 3; round++ {
		m.Reset()
		v := MakeRef(m.NewVar())
		run := m.Call(fn, []Cell{v})
		ok, err := run.Next()
		if err != nil || !ok {
			t.Fatalf("round %d: ok=%v err=%v", round, ok, err)
		}
	}
}

// TestCheckHookAbortsQuery proves a session-level hook error surfaces as
// the query's error.
func TestCheckHookAbortsQuery(t *testing.T) {
	m := NewMachine(nil)
	a := m.Dict.Intern("a", 0)
	fn := defineProc(m, "r", 1, []Instr{
		{Op: OpGetConstant, Fn: a, Arg: 0},
		{Op: OpProceed},
	})
	m.SetCheckHook(func() error { return ResourceBall("pages") })
	v := MakeRef(m.NewVar())
	run := m.Call(fn, []Cell{v})
	ok, err := run.Next()
	if ok {
		t.Fatalf("solution delivered despite failing check hook")
	}
	if got := ResourceKind(err); got != "pages" {
		t.Fatalf("ResourceKind(%v) = %q, want pages", err, got)
	}
}

func TestResourceKind(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{ResourceBall("heap"), "heap"},
		{ResourceBall("trail"), "trail"},
		{errors.New("plain"), ""},
		{&ErrBall{Term: term.Comp("error", term.Atom("timeout"), term.Atom("educe"))}, ""},
		{&ErrBall{Term: term.Atom("oops")}, ""},
		{nil, ""},
	}
	for _, c := range cases {
		if got := ResourceKind(c.err); got != c.want {
			t.Errorf("ResourceKind(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
