package wam

// OpClass groups opcodes into the execution classes the cost breakdowns
// report: the paper's §3.2.1 discussion of reference behaviour (choice
// point vs data references) needs per-class counts, not a flat
// instruction total.
type OpClass uint8

// Opcode classes.
const (
	ClassGet     OpClass = iota // head matching (get_*)
	ClassPut                    // argument loading (put_*)
	ClassUnify                  // structure unification (unify_*)
	ClassControl                // allocate/call/execute/proceed/jump/...
	ClassChoice                 // choice-point management (try/retry/trust)
	ClassIndex                  // first-argument indexing (switch_on_*)
	ClassCut                    // cut instructions
	ClassBuiltin                // builtin invocations
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{
	"get", "put", "unify", "control", "choice", "index", "cut", "builtin",
}

func (c OpClass) String() string {
	if c >= NumOpClasses {
		return "unknown"
	}
	return opClassNames[c]
}

// opClassOf maps each opcode to its class (index by Op).
var opClassOf [256]OpClass

func init() {
	set := func(c OpClass, ops ...Op) {
		for _, o := range ops {
			opClassOf[o] = c
		}
	}
	set(ClassGet, OpGetVariableX, OpGetVariableY, OpGetValueX, OpGetValueY,
		OpGetConstant, OpGetInteger, OpGetFloat, OpGetNil, OpGetStructure, OpGetList)
	set(ClassPut, OpPutVariableX, OpPutVariableY, OpPutValueX, OpPutValueY,
		OpPutConstant, OpPutInteger, OpPutFloat, OpPutNil, OpPutStructure, OpPutList)
	set(ClassUnify, OpUnifyVariableX, OpUnifyVariableY, OpUnifyValueX, OpUnifyValueY,
		OpUnifyConstant, OpUnifyInteger, OpUnifyFloat, OpUnifyNil, OpUnifyVoid)
	set(ClassControl, OpNop, OpAllocate, OpDeallocate, OpCall, OpExecute,
		OpProceed, OpHalt, OpJump, OpFail)
	set(ClassChoice, OpTryMeElse, OpRetryMeElse, OpTrustMe, OpTry, OpRetry,
		OpTrust, OpRetryBuiltin)
	set(ClassIndex, OpSwitchOnTerm, OpSwitchOnConstant, OpSwitchOnStructure)
	set(ClassCut, OpNeckCut, OpGetLevel, OpCutY, OpCutX)
	set(ClassBuiltin, OpBuiltin)
}

// noteSwitchDispatch classifies the landing site of an indexing dispatch.
// When the switch jumps straight into clause code — not a try chain, a
// further switch, or fail — first-argument indexing selected a single
// candidate and the choice point a naive try chain would have pushed was
// elided (the §3.2.2 benefit the ablation benchmarks measure).
func (m *Machine) noteSwitchDispatch() {
	if m.p.blk == nil || m.p.off >= len(m.p.blk.Instrs) {
		return
	}
	switch m.p.blk.Instrs[m.p.off].Op {
	case OpTry, OpTryMeElse, OpSwitchOnTerm, OpSwitchOnConstant, OpSwitchOnStructure, OpFail:
		return
	}
	m.stats.ChoicePointsElided++
}
