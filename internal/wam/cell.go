// Package wam implements the Warren Abstract Machine emulator at the heart
// of Educe* (paper §2.1, §3.1): tagged cells, a global stack (heap), a
// single local stack holding interleaved environment and choice-point
// frames, a trail, an instruction set with first-argument indexing, and a
// mark-slide garbage collector for the global stack.
//
// One deliberate deviation from the WAM report: put_variable Yn allocates
// the fresh variable on the heap rather than in the environment, so
// variable references never point into the local stack. This removes the
// need for put_unsafe_value/unify_local_value globalisation and simplifies
// both the trail (heap addresses only) and the garbage collector, at the
// cost of a little extra heap allocation — the same trade made by several
// production Prolog systems.
package wam

import (
	"fmt"

	"repro/internal/dict"
)

// Cell is a tagged 64-bit word: tag in the top byte, value in the low 56
// bits. Integers are stored sign-extended in the value field, limiting
// Prolog integers to 56 bits (documented engine limit).
type Cell uint64

// Tag identifies the kind of a Cell.
type Tag uint8

// Cell tags.
const (
	// TagRef is a variable reference; the value is a heap address. A cell
	// at heap address a holding MakeRef(a) is an unbound variable.
	TagRef Tag = iota
	// TagStr points at the TagFun cell of a structure on the heap.
	TagStr
	// TagLis points at the head cell of a list pair; the tail is at +1.
	TagLis
	// TagCon is an atom; the value is its dict.ID.
	TagCon
	// TagInt is a 56-bit signed integer.
	TagInt
	// TagFlt is a float; the value indexes the machine's float table.
	TagFlt
	// TagFun is a functor cell (only as the first cell of a structure);
	// the value packs dict.ID<<16 | arity.
	TagFun
	// TagCode is a code pointer (blockID<<24 | offset); only appears in
	// local-stack frames.
	TagCode
	// TagSmall is raw frame bookkeeping (saved E, B, TR, H, counts).
	TagSmall
)

const valMask = (uint64(1) << 56) - 1

func (t Tag) String() string {
	switch t {
	case TagRef:
		return "ref"
	case TagStr:
		return "str"
	case TagLis:
		return "lis"
	case TagCon:
		return "con"
	case TagInt:
		return "int"
	case TagFlt:
		return "flt"
	case TagFun:
		return "fun"
	case TagCode:
		return "code"
	case TagSmall:
		return "small"
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

func mk(t Tag, v uint64) Cell { return Cell(uint64(t)<<56 | v&valMask) }

// Tag returns the cell's tag.
func (c Cell) Tag() Tag { return Tag(c >> 56) }

// Val returns the cell's value as an unsigned 56-bit quantity.
func (c Cell) Val() int { return int(uint64(c) & valMask) }

// MakeRef returns a reference cell to heap address a.
func MakeRef(a int) Cell { return mk(TagRef, uint64(a)) }

// MakeStr returns a structure cell pointing at heap address a.
func MakeStr(a int) Cell { return mk(TagStr, uint64(a)) }

// MakeLis returns a list cell pointing at heap address a.
func MakeLis(a int) Cell { return mk(TagLis, uint64(a)) }

// MakeCon returns an atom cell.
func MakeCon(id dict.ID) Cell { return mk(TagCon, uint64(id)) }

// MaxInt and MinInt bound the WAM's 56-bit integer range.
const (
	MaxInt = int64(1)<<55 - 1
	MinInt = -int64(1) << 55
)

// MakeInt returns an integer cell. Values outside the 56-bit range are
// clamped; callers that care use CheckInt first.
func MakeInt(v int64) Cell { return mk(TagInt, uint64(v)) }

// CheckInt reports whether v fits in a WAM integer cell.
func CheckInt(v int64) bool { return v >= MinInt && v <= MaxInt }

// IntVal returns the sign-extended integer value of an int cell.
func (c Cell) IntVal() int64 {
	v := int64(uint64(c) & valMask)
	// Sign-extend from bit 55.
	return v << 8 >> 8
}

// MakeFun returns a functor cell for dict ID id with the given arity.
func MakeFun(id dict.ID, arity int) Cell {
	return mk(TagFun, uint64(id)<<16|uint64(arity)&0xffff)
}

// FunID returns the dictionary ID of a functor cell.
func (c Cell) FunID() dict.ID { return dict.ID(c.Val() >> 16) }

// FunArity returns the arity of a functor cell.
func (c Cell) FunArity() int { return c.Val() & 0xffff }

// MakeFlt returns a float cell referencing index i of the float table.
func MakeFlt(i int) Cell { return mk(TagFlt, uint64(i)) }

// MakeCode packs a code pointer.
func MakeCode(block, off int) Cell { return mk(TagCode, uint64(block)<<24|uint64(off)&0xffffff) }

// CodeVal unpacks a code pointer cell.
func (c Cell) CodeVal() (block, off int) {
	v := c.Val()
	return v >> 24, v & 0xffffff
}

// MakeSmall wraps a raw non-negative integer for frame bookkeeping.
// The value -1 (used for "no frame") is representable.
func MakeSmall(v int) Cell { return mk(TagSmall, uint64(v)) }

// SmallVal unwraps a bookkeeping cell (sign-extended like IntVal).
func (c Cell) SmallVal() int { return int(c.IntVal()) }
