package wam

import (
	"time"

	"repro/internal/obs"
)

// Garbage collection of the global stack (paper §3.3.2).
//
// The collector is a mark-slide compactor: live cells keep their relative
// order, which the WAM requires because choice points delimit heap segments
// by saved H values. Collection is triggered at call ports — the only
// points where the live register set is exactly the called procedure's
// argument registers — once the heap has grown past a threshold since the
// last collection, which spreads the pauses across normal processing as
// the paper prescribes. SetGC(false) disables collection temporarily.
//
// Roots are: the argument registers of the call being made, the permanent
// variables of every environment reachable from the current environment or
// from any choice point, the saved argument registers of every choice
// point, and every trailed address (a trailed cell must survive so that
// unwinding can reset it).

// maybeGC runs a collection when the growth threshold is exceeded, or —
// under a heap quota — whenever the heap is over the cap, giving a query
// whose live set fits the quota the chance to continue before the
// cancellation poll kills it (call ports are the only safe collection
// points, so quota pressure must be applied here).
func (m *Machine) maybeGC(nargs int) {
	if !m.gcEnabled {
		return
	}
	if m.gcLastHeap > len(m.heap) {
		m.gcLastHeap = len(m.heap)
	}
	if len(m.heap)-m.gcLastHeap < m.gcThreshold {
		if q := m.quota.HeapCells; q <= 0 || len(m.heap) <= q {
			return
		}
	}
	m.Collect(nargs)
}

// Collect performs a full mark-slide collection with the first nargs
// argument registers as register roots. The pause is timed: totals go to
// Stats.GCPauseNS, per-query attribution to the phase sink (the paper's
// §3.3.2 spreads collections across normal processing; the gc span makes
// their cost visible in every query's breakdown).
func (m *Machine) Collect(nargs int) {
	gcStart := time.Now()
	defer func() {
		d := time.Since(gcStart)
		m.stats.GCPauseNS += uint64(d.Nanoseconds())
		m.phaseSink.Add(obs.PhaseGC, d)
	}()
	m.stats.GCRuns++
	if len(m.heap) > m.stats.HeapPeak {
		m.stats.HeapPeak = len(m.heap)
	}
	n := len(m.heap)
	marked := make([]bool, n)
	fltUsed := make([]bool, len(m.floats))

	var work []Cell
	markAddr := func(a int) {
		if !marked[a] {
			marked[a] = true
			work = append(work, m.heap[a])
		}
	}
	scan := func(c Cell) {
		work = append(work, c)
		for len(work) > 0 {
			c := work[len(work)-1]
			work = work[:len(work)-1]
			switch c.Tag() {
			case TagRef:
				markAddr(c.Val())
			case TagLis:
				markAddr(c.Val())
				markAddr(c.Val() + 1)
			case TagStr:
				a := c.Val()
				if !marked[a] {
					marked[a] = true
					f := m.heap[a]
					for i := 1; i <= f.FunArity(); i++ {
						markAddr(a + i)
					}
				}
			case TagFlt:
				fltUsed[c.Val()] = true
			}
		}
	}

	envs, cps := m.liveFrames()

	// Mark phase.
	for i := 0; i < nargs && i < len(m.x); i++ {
		scan(m.x[i])
	}
	for _, e := range envs {
		ny := m.stack[e+2].SmallVal()
		for i := 0; i < ny; i++ {
			scan(m.stack[e+envHdr+i])
		}
	}
	for _, b := range cps {
		na := m.cpNArgs(b)
		for i := 0; i < na; i++ {
			scan(m.stack[b+1+i])
		}
	}
	for _, a := range m.trail {
		markAddr(a)
		scan(m.heap[a])
	}
	for _, e := range m.extras {
		for _, a := range e.varAddrs {
			markAddr(a)
			scan(m.heap[a])
		}
	}

	// Compute forwarding addresses (prefix counts of marked cells).
	fwd := make([]int32, n+1)
	cnt := int32(0)
	for i := 0; i < n; i++ {
		fwd[i] = cnt
		if marked[i] {
			cnt++
		}
	}
	fwd[n] = cnt

	// Compact the float table.
	ffwd := make([]int32, len(m.floats)+1)
	fcnt := int32(0)
	for i := range m.floats {
		ffwd[i] = fcnt
		if fltUsed[i] {
			m.floats[fcnt] = m.floats[i]
			fcnt++
		}
	}
	ffwd[len(m.floats)] = fcnt
	m.floats = m.floats[:fcnt]

	adj := func(c Cell) Cell {
		switch c.Tag() {
		case TagRef:
			return MakeRef(int(fwd[c.Val()]))
		case TagLis:
			return MakeLis(int(fwd[c.Val()]))
		case TagStr:
			return MakeStr(int(fwd[c.Val()]))
		case TagFlt:
			return MakeFlt(int(ffwd[c.Val()]))
		}
		return c
	}

	// Slide live cells down, adjusting internal references.
	for i := 0; i < n; i++ {
		if marked[i] {
			m.heap[fwd[i]] = adj(m.heap[i])
		}
	}
	m.stats.GCCellsFreed += uint64(n - int(cnt))
	m.heap = m.heap[:cnt]

	// Adjust register, frame and trail references.
	for i := range m.x {
		if i < nargs {
			m.x[i] = adj(m.x[i])
		} else {
			m.x[i] = 0
		}
	}
	for _, e := range envs {
		ny := m.stack[e+2].SmallVal()
		for i := 0; i < ny; i++ {
			m.stack[e+envHdr+i] = adj(m.stack[e+envHdr+i])
		}
	}
	for _, b := range cps {
		na := m.cpNArgs(b)
		for i := 0; i < na; i++ {
			m.stack[b+1+i] = adj(m.stack[b+1+i])
		}
		hSlot := b + na + 6
		m.stack[hSlot] = MakeSmall(int(fwd[m.stack[hSlot].SmallVal()]))
		fSlot := b + na + 7
		m.stack[fSlot] = MakeSmall(int(ffwd[m.stack[fSlot].SmallVal()]))
	}
	for i, a := range m.trail {
		m.trail[i] = int(fwd[a])
	}
	for _, e := range m.extras {
		for v, a := range e.varAddrs {
			e.varAddrs[v] = int(fwd[a])
		}
	}
	m.hb = int(fwd[m.hb])
	m.gcLastHeap = len(m.heap)
}

// liveFrames returns the stack bases of every reachable environment and
// choice point, each exactly once.
func (m *Machine) liveFrames() (envs, cps []int) {
	seenEnv := map[int]bool{}
	addEnvChain := func(e int) {
		for e >= 0 && !seenEnv[e] {
			seenEnv[e] = true
			envs = append(envs, e)
			e = m.stack[e].SmallVal()
		}
	}
	addEnvChain(m.e)
	for b := m.b; b >= 0; b = m.cpPrevB(b) {
		cps = append(cps, b)
		addEnvChain(m.stack[b+m.cpNArgs(b)+1].SmallVal())
	}
	return envs, cps
}
