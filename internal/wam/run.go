package wam

import (
	"errors"

	"repro/internal/dict"
)

// ErrHalted is returned by builtin halt/0 to stop the session.
var ErrHalted = errors.New("wam: halted")

// Run drives one query to completion, one solution at a time.
type Run struct {
	m       *Machine
	fn      dict.ID
	arity   int
	started bool
	done    bool
}

// Call prepares a call to the procedure fn/arity with the given argument
// cells (which the caller typically creates with NewVar/EncodeTerm). The
// query runs when Next is first called.
func (m *Machine) Call(fn dict.ID, args []Cell) *Run {
	m.ensureRegs(len(args))
	copy(m.x, args)
	m.numArgs = len(args)
	m.cp = codePtr{blk: m.haltBlock}
	m.b0 = m.b
	m.solutions = 0 // the solution quota is per query
	return &Run{m: m, fn: fn, arity: len(args)}
}

// Next produces the next solution. It returns false when no (further)
// solution exists. Bindings are available on the machine heap through the
// argument cells passed to Call until Next or Close is called again.
func (r *Run) Next() (bool, error) {
	if r.done {
		return false, nil
	}
	m := r.m
	if !r.started {
		r.started = true
		proc, err := m.lookupProc(r.fn)
		if err != nil {
			r.done = true
			return false, err
		}
		if proc == nil {
			r.done = true
			return false, nil
		}
		if m.prof != nil {
			m.prof.portCall(r.fn, proc.Block)
		}
		m.p = codePtr{blk: proc.Block}
	} else {
		if !m.backtrack() {
			r.done = true
			return false, nil
		}
	}
	ok, err := m.runLoop()
	if err != nil || !ok {
		r.done = true
	}
	if ok && err == nil {
		m.solutions++
	}
	return ok, err
}

// Close abandons the query. The machine keeps its heap contents until the
// next query resets it; call Machine.Reset to reclaim everything.
func (r *Run) Close() { r.done = true }
