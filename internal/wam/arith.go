package wam

import (
	"fmt"
	"math"

	"repro/internal/dict"
)

// Number is the result of arithmetic evaluation: an integer or a float.
type Number struct {
	IsFloat bool
	I       int64
	F       float64
}

func intNum(v int64) Number   { return Number{I: v} }
func fltNum(v float64) Number { return Number{IsFloat: true, F: v} }

// AsFloat returns the numeric value as a float64.
func (n Number) AsFloat() float64 {
	if n.IsFloat {
		return n.F
	}
	return float64(n.I)
}

// Cell converts the number into a heap cell (floats are interned).
func (n Number) Cell(m *Machine) Cell {
	if n.IsFloat {
		return m.PushFloat(n.F)
	}
	return MakeInt(n.I)
}

// ErrArith reports an arithmetic evaluation failure.
type ErrArith struct{ Msg string }

func (e *ErrArith) Error() string { return "wam: arithmetic: " + e.Msg }

func arithErrf(format string, args ...any) error {
	return &ErrArith{Msg: fmt.Sprintf(format, args...)}
}

// Eval evaluates cell c as an arithmetic expression (the right side of
// is/2 and the operands of the arithmetic comparisons).
func (m *Machine) Eval(c Cell) (Number, error) {
	d := m.Deref(c)
	switch d.Tag() {
	case TagInt:
		return intNum(d.IntVal()), nil
	case TagFlt:
		return fltNum(m.floats[d.Val()]), nil
	case TagRef:
		return Number{}, arithErrf("unbound variable in expression")
	case TagCon:
		name := m.Dict.Name(dict.ID(d.Val()))
		switch name {
		case "pi":
			return fltNum(math.Pi), nil
		case "e":
			return fltNum(math.E), nil
		case "inf", "infinite":
			return fltNum(math.Inf(1)), nil
		case "nan":
			return fltNum(math.NaN()), nil
		case "epsilon":
			return fltNum(2.220446049250313e-16), nil
		case "max_tagged_integer":
			return intNum(MaxInt), nil
		case "random":
			// Deterministic stand-in; real randomness would break
			// reproducible benchmarks.
			return fltNum(0.42), nil
		}
		return Number{}, arithErrf("unknown constant %s", name)
	case TagStr:
		f := m.heap[d.Val()]
		name := m.Dict.Name(f.FunID())
		n := f.FunArity()
		if n == 1 {
			a, err := m.Eval(m.heap[d.Val()+1])
			if err != nil {
				return Number{}, err
			}
			return evalUnary(name, a)
		}
		if n == 2 {
			a, err := m.Eval(m.heap[d.Val()+1])
			if err != nil {
				return Number{}, err
			}
			b, err := m.Eval(m.heap[d.Val()+2])
			if err != nil {
				return Number{}, err
			}
			return evalBinary(name, a, b)
		}
		return Number{}, arithErrf("unknown function %s/%d", name, n)
	case TagLis:
		// [X] evaluates to X per tradition (a single character code).
		if m.Deref(m.heap[d.Val()+1]) == MakeCon(m.nilID()) {
			return m.Eval(m.heap[d.Val()])
		}
	}
	return Number{}, arithErrf("type error in expression (tag %v)", d.Tag())
}

func evalUnary(name string, a Number) (Number, error) {
	switch name {
	case "-":
		if a.IsFloat {
			return fltNum(-a.F), nil
		}
		return intNum(-a.I), nil
	case "+":
		return a, nil
	case "abs":
		if a.IsFloat {
			return fltNum(math.Abs(a.F)), nil
		}
		if a.I < 0 {
			return intNum(-a.I), nil
		}
		return a, nil
	case "sign":
		if a.IsFloat {
			switch {
			case a.F > 0:
				return fltNum(1), nil
			case a.F < 0:
				return fltNum(-1), nil
			}
			return fltNum(0), nil
		}
		switch {
		case a.I > 0:
			return intNum(1), nil
		case a.I < 0:
			return intNum(-1), nil
		}
		return intNum(0), nil
	case "min", "max":
		return Number{}, arithErrf("%s/1 is not a function", name)
	case "sqrt":
		return fltNum(math.Sqrt(a.AsFloat())), nil
	case "sin":
		return fltNum(math.Sin(a.AsFloat())), nil
	case "cos":
		return fltNum(math.Cos(a.AsFloat())), nil
	case "tan":
		return fltNum(math.Tan(a.AsFloat())), nil
	case "asin":
		return fltNum(math.Asin(a.AsFloat())), nil
	case "acos":
		return fltNum(math.Acos(a.AsFloat())), nil
	case "atan":
		return fltNum(math.Atan(a.AsFloat())), nil
	case "exp":
		return fltNum(math.Exp(a.AsFloat())), nil
	case "log":
		return fltNum(math.Log(a.AsFloat())), nil
	case "log2":
		return fltNum(math.Log2(a.AsFloat())), nil
	case "float":
		return fltNum(a.AsFloat()), nil
	case "integer":
		if a.IsFloat {
			return intNum(int64(math.Round(a.F))), nil
		}
		return a, nil
	case "float_integer_part":
		return fltNum(math.Trunc(a.AsFloat())), nil
	case "float_fractional_part":
		f := a.AsFloat()
		return fltNum(f - math.Trunc(f)), nil
	case "truncate":
		return intNum(int64(math.Trunc(a.AsFloat()))), nil
	case "round":
		return intNum(int64(math.Round(a.AsFloat()))), nil
	case "ceiling":
		return intNum(int64(math.Ceil(a.AsFloat()))), nil
	case "floor":
		return intNum(int64(math.Floor(a.AsFloat()))), nil
	case "\\":
		if a.IsFloat {
			return Number{}, arithErrf("\\ requires an integer")
		}
		return intNum(^a.I), nil
	case "msb":
		if a.IsFloat || a.I <= 0 {
			return Number{}, arithErrf("msb requires a positive integer")
		}
		b := int64(-1)
		for v := a.I; v != 0; v >>= 1 {
			b++
		}
		return intNum(b), nil
	case "succ":
		if a.IsFloat {
			return Number{}, arithErrf("succ requires an integer")
		}
		return intNum(a.I + 1), nil
	}
	return Number{}, arithErrf("unknown function %s/1", name)
}

func evalBinary(name string, a, b Number) (Number, error) {
	switch name {
	case "+":
		if a.IsFloat || b.IsFloat {
			return fltNum(a.AsFloat() + b.AsFloat()), nil
		}
		return intNum(a.I + b.I), nil
	case "-":
		if a.IsFloat || b.IsFloat {
			return fltNum(a.AsFloat() - b.AsFloat()), nil
		}
		return intNum(a.I - b.I), nil
	case "*":
		if a.IsFloat || b.IsFloat {
			return fltNum(a.AsFloat() * b.AsFloat()), nil
		}
		return intNum(a.I * b.I), nil
	case "/":
		if !a.IsFloat && !b.IsFloat {
			if b.I == 0 {
				return Number{}, arithErrf("zero divisor")
			}
			if a.I%b.I == 0 {
				return intNum(a.I / b.I), nil
			}
			return fltNum(float64(a.I) / float64(b.I)), nil
		}
		if b.AsFloat() == 0 {
			return Number{}, arithErrf("zero divisor")
		}
		return fltNum(a.AsFloat() / b.AsFloat()), nil
	case "//":
		if a.IsFloat || b.IsFloat {
			return Number{}, arithErrf("// requires integers")
		}
		if b.I == 0 {
			return Number{}, arithErrf("zero divisor")
		}
		return intNum(a.I / b.I), nil
	case "div":
		if a.IsFloat || b.IsFloat {
			return Number{}, arithErrf("div requires integers")
		}
		if b.I == 0 {
			return Number{}, arithErrf("zero divisor")
		}
		q := a.I / b.I
		if (a.I%b.I != 0) && ((a.I < 0) != (b.I < 0)) {
			q--
		}
		return intNum(q), nil
	case "mod":
		if a.IsFloat || b.IsFloat {
			return Number{}, arithErrf("mod requires integers")
		}
		if b.I == 0 {
			return Number{}, arithErrf("zero divisor")
		}
		r := a.I % b.I
		if r != 0 && ((r < 0) != (b.I < 0)) {
			r += b.I
		}
		return intNum(r), nil
	case "rem":
		if a.IsFloat || b.IsFloat {
			return Number{}, arithErrf("rem requires integers")
		}
		if b.I == 0 {
			return Number{}, arithErrf("zero divisor")
		}
		return intNum(a.I % b.I), nil
	case "min":
		if cmpNum(a, b) <= 0 {
			return a, nil
		}
		return b, nil
	case "max":
		if cmpNum(a, b) >= 0 {
			return a, nil
		}
		return b, nil
	case "**":
		return fltNum(math.Pow(a.AsFloat(), b.AsFloat())), nil
	case "^":
		if !a.IsFloat && !b.IsFloat {
			if b.I < 0 {
				return Number{}, arithErrf("negative integer exponent")
			}
			r := int64(1)
			base := a.I
			for e := b.I; e > 0; e >>= 1 {
				if e&1 == 1 {
					r *= base
				}
				base *= base
			}
			return intNum(r), nil
		}
		return fltNum(math.Pow(a.AsFloat(), b.AsFloat())), nil
	case ">>":
		if a.IsFloat || b.IsFloat {
			return Number{}, arithErrf(">> requires integers")
		}
		return intNum(a.I >> uint(b.I)), nil
	case "<<":
		if a.IsFloat || b.IsFloat {
			return Number{}, arithErrf("<< requires integers")
		}
		return intNum(a.I << uint(b.I)), nil
	case "/\\":
		if a.IsFloat || b.IsFloat {
			return Number{}, arithErrf("/\\ requires integers")
		}
		return intNum(a.I & b.I), nil
	case "\\/":
		if a.IsFloat || b.IsFloat {
			return Number{}, arithErrf("\\/ requires integers")
		}
		return intNum(a.I | b.I), nil
	case "xor":
		if a.IsFloat || b.IsFloat {
			return Number{}, arithErrf("xor requires integers")
		}
		return intNum(a.I ^ b.I), nil
	case "atan", "atan2":
		return fltNum(math.Atan2(a.AsFloat(), b.AsFloat())), nil
	case "gcd":
		if a.IsFloat || b.IsFloat {
			return Number{}, arithErrf("gcd requires integers")
		}
		x, y := a.I, b.I
		if x < 0 {
			x = -x
		}
		if y < 0 {
			y = -y
		}
		for y != 0 {
			x, y = y, x%y
		}
		return intNum(x), nil
	case "copysign":
		return fltNum(math.Copysign(a.AsFloat(), b.AsFloat())), nil
	}
	return Number{}, arithErrf("unknown function %s/2", name)
}

// cmpNum compares two numbers: -1, 0 or 1.
func cmpNum(a, b Number) int {
	if !a.IsFloat && !b.IsFloat {
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	}
	return 0
}
