package wam

import (
	"testing"

	"repro/internal/dict"
	"repro/internal/parser"
	"repro/internal/term"
)

// defineFacts installs a predicate whose clauses are hand-assembled.
func defineProc(m *Machine, name string, arity int, instrs []Instr) dict.ID {
	fn := m.Dict.Intern(name, arity)
	blk := m.AddBlock(&CodeBlock{Name: name, Instrs: instrs})
	m.DefineProc(&Proc{Fn: fn, Arity: arity, Block: blk})
	return fn
}

func atomCell(m *Machine, name string) Cell { return MakeCon(m.Dict.Intern(name, 0)) }

// solutions runs fn with a single fresh variable argument and returns the
// decoded bindings of every solution.
func solutions1(t *testing.T, m *Machine, fn dict.ID) []string {
	t.Helper()
	v := MakeRef(m.NewVar())
	run := m.Call(fn, []Cell{v})
	var out []string
	for {
		ok, err := run.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, m.DecodeTerm(v).String())
	}
}

func TestFactsEnumeration(t *testing.T) {
	m := NewMachine(nil)
	a := m.Dict.Intern("a", 0)
	b := m.Dict.Intern("b", 0)
	c := m.Dict.Intern("c", 0)
	fn := defineProc(m, "p", 1, []Instr{
		{Op: OpTryMeElse, L: 3},
		{Op: OpGetConstant, Fn: a, Arg: 0},
		{Op: OpProceed},
		{Op: OpRetryMeElse, L: 6},
		{Op: OpGetConstant, Fn: b, Arg: 0},
		{Op: OpProceed},
		{Op: OpTrustMe},
		{Op: OpGetConstant, Fn: c, Arg: 0},
		{Op: OpProceed},
	})
	got := solutions1(t, m, fn)
	want := []string{"a", "b", "c"}
	if len(got) != 3 {
		t.Fatalf("solutions = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("solution %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFactsFirstArgBound(t *testing.T) {
	m := NewMachine(nil)
	a := m.Dict.Intern("a", 0)
	b := m.Dict.Intern("b", 0)
	fn := defineProc(m, "p", 1, []Instr{
		{Op: OpTryMeElse, L: 3},
		{Op: OpGetConstant, Fn: a, Arg: 0},
		{Op: OpProceed},
		{Op: OpTrustMe},
		{Op: OpGetConstant, Fn: b, Arg: 0},
		{Op: OpProceed},
	})
	run := m.Call(fn, []Cell{atomCell(m, "b")})
	ok, err := run.Next()
	if err != nil || !ok {
		t.Fatalf("p(b) = (%v, %v)", ok, err)
	}
	ok, _ = run.Next()
	if ok {
		t.Fatal("p(b) should have exactly one solution")
	}

	m.Reset()
	run = m.Call(fn, []Cell{atomCell(m, "z")})
	ok, err = run.Next()
	if err != nil || ok {
		t.Fatalf("p(z) = (%v, %v), want failure", ok, err)
	}
}

func TestConjunctionWithEnvironment(t *testing.T) {
	// q(X) :- p(X), r(X).   with p(a), p(b) and r(b).
	m := NewMachine(nil)
	a := m.Dict.Intern("a", 0)
	b := m.Dict.Intern("b", 0)
	pFn := defineProc(m, "p", 1, []Instr{
		{Op: OpTryMeElse, L: 3},
		{Op: OpGetConstant, Fn: a, Arg: 0},
		{Op: OpProceed},
		{Op: OpTrustMe},
		{Op: OpGetConstant, Fn: b, Arg: 0},
		{Op: OpProceed},
	})
	rFn := defineProc(m, "r", 1, []Instr{
		{Op: OpGetConstant, Fn: b, Arg: 0},
		{Op: OpProceed},
	})
	_ = pFn
	qFn := defineProc(m, "q", 1, []Instr{
		{Op: OpAllocate, N: 1},
		{Op: OpGetVariableY, Reg: 0, Arg: 0},
		{Op: OpPutValueY, Reg: 0, Arg: 0},
		{Op: OpCall, Fn: pFn, Ar: 1},
		{Op: OpPutValueY, Reg: 0, Arg: 0},
		{Op: OpDeallocate},
		{Op: OpExecute, Fn: rFn, Ar: 1},
	})
	got := solutions1(t, m, qFn)
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("q(X) solutions = %v, want [b]", got)
	}
}

func TestStructureUnification(t *testing.T) {
	// s(f(A, g(A))).
	m := NewMachine(nil)
	f := m.Dict.Intern("f", 2)
	g := m.Dict.Intern("g", 1)
	fn := defineProc(m, "s", 1, []Instr{
		{Op: OpGetStructure, Fn: f, Ar: 2, Arg: 0},
		{Op: OpUnifyVariableX, Reg: 1},
		{Op: OpUnifyVariableX, Reg: 2},
		{Op: OpGetStructure, Fn: g, Ar: 1, Arg: 2},
		{Op: OpUnifyValueX, Reg: 1},
		{Op: OpProceed},
	})

	parse := func(src string) Cell {
		tm, _, err := termParse(src)
		if err != nil {
			t.Fatalf("parse %s: %v", src, err)
		}
		return m.EncodeTerm(tm, map[*term.Var]Cell{})
	}

	run := m.Call(fn, []Cell{parse("f(a, g(a))")})
	if ok, err := run.Next(); err != nil || !ok {
		t.Fatalf("s(f(a,g(a))) = (%v,%v)", ok, err)
	}
	m.Reset()
	run = m.Call(fn, []Cell{parse("f(a, g(b))")})
	if ok, err := run.Next(); err != nil || ok {
		t.Fatalf("s(f(a,g(b))) = (%v,%v), want failure", ok, err)
	}
	// Mode with unbound argument: s(X) builds the structure.
	m.Reset()
	v := MakeRef(m.NewVar())
	run = m.Call(fn, []Cell{v})
	if ok, err := run.Next(); err != nil || !ok {
		t.Fatalf("s(X) = (%v,%v)", ok, err)
	}
	got := m.DecodeTerm(v).String()
	if got != "f(_G1,g(_G1))" && got != "f(_G2,g(_G2))" {
		// Variable numbering depends on heap layout; check shape.
		tm := m.DecodeTerm(v)
		c, ok := tm.(*term.Compound)
		if !ok || c.Functor != "f" || len(c.Args) != 2 {
			t.Fatalf("s(X) bound X to %v", tm)
		}
		inner, ok := c.Args[1].(*term.Compound)
		if !ok || inner.Functor != "g" || !term.Equal(c.Args[0], inner.Args[0]) {
			t.Fatalf("structure shape wrong: %v", tm)
		}
	}
}

func TestCut(t *testing.T) {
	// a(1) :- !.   a(2).
	m := NewMachine(nil)
	fn := defineProc(m, "a", 1, []Instr{
		{Op: OpTryMeElse, L: 4},
		{Op: OpGetInteger, Int: 1, Arg: 0},
		{Op: OpNeckCut},
		{Op: OpProceed},
		{Op: OpTrustMe},
		{Op: OpGetInteger, Int: 2, Arg: 0},
		{Op: OpProceed},
	})
	got := solutions1(t, m, fn)
	if len(got) != 1 || got[0] != "1" {
		t.Fatalf("a(X) with cut = %v, want [1]", got)
	}
}

func TestBuiltinCallViaWrapper(t *testing.T) {
	m := NewMachine(nil)
	isFn := m.Dict.Intern("is", 2)
	v := MakeRef(m.NewVar())
	env := map[*term.Var]Cell{}
	expr, _, err := termParse("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	run := m.Call(isFn, []Cell{v, m.EncodeTerm(expr, env)})
	ok, err := run.Next()
	if err != nil || !ok {
		t.Fatalf("is = (%v,%v)", ok, err)
	}
	if got := m.DecodeTerm(v).String(); got != "7" {
		t.Fatalf("1+2*3 = %s", got)
	}
}

func TestBetweenNondet(t *testing.T) {
	m := NewMachine(nil)
	fn := m.Dict.Intern("between", 3)
	v := MakeRef(m.NewVar())
	run := m.Call(fn, []Cell{MakeInt(1), MakeInt(4), v})
	var got []string
	for {
		ok, err := run.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, m.DecodeTerm(v).String())
	}
	want := []string{"1", "2", "3", "4"}
	if len(got) != len(want) {
		t.Fatalf("between solutions = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("solution %d = %s", i, got[i])
		}
	}
}

func TestUnifyDeepAndBacktrack(t *testing.T) {
	m := NewMachine(nil)
	env := map[*term.Var]Cell{}
	t1, _, _ := termParse("f(X, g(X, [1,2,3]))")
	t2, _, _ := termParse("f(a, g(a, [1,2,3]))")
	c1 := m.EncodeTerm(t1, env)
	c2 := m.EncodeTerm(t2, map[*term.Var]Cell{})
	if !m.Unify(c1, c2) {
		t.Fatal("terms should unify")
	}
	t3, _, _ := termParse("f(b, _)")
	c3 := m.EncodeTerm(t3, map[*term.Var]Cell{})
	if m.Unify(c1, c3) {
		t.Fatal("X already bound to a; should not unify with b")
	}
}

func TestTentativeRollback(t *testing.T) {
	m := NewMachine(nil)
	v := MakeRef(m.NewVar())
	ok := m.tentatively(func() bool { return m.Unify(v, MakeInt(42)) })
	if !ok {
		t.Fatal("unify should succeed tentatively")
	}
	if m.Deref(v).Tag() != TagRef {
		t.Fatal("binding not rolled back")
	}
}

func TestGCPreservesLiveData(t *testing.T) {
	m := NewMachine(nil)
	env := map[*term.Var]Cell{}
	// Garbage: a large dead list.
	big, _, _ := termParse("[1,2,3,4,5,6,7,8,9,10]")
	for i := 0; i < 100; i++ {
		m.EncodeTerm(big, map[*term.Var]Cell{})
	}
	// Live term in a register.
	live, _, _ := termParse("keep(f(X, [a,b|X]), 3.5)")
	c := m.EncodeTerm(live, env)
	m.SetReg(0, c)
	before := m.H()
	m.Collect(1)
	after := m.H()
	if after >= before {
		t.Fatalf("GC freed nothing: %d -> %d", before, after)
	}
	got := m.DecodeTerm(m.Reg(0))
	cg := got.(*term.Compound)
	if cg.Functor != "keep" || cg.Args[1] != term.Float(3.5) {
		t.Fatalf("live data corrupted: %v", got)
	}
}

func TestGCWithChoicePointsAndTrail(t *testing.T) {
	// Run between/3 partway, then force a GC and continue: saved H in
	// the choice point and trailed bindings must survive adjustment.
	m := NewMachine(nil)
	fn := m.Dict.Intern("between", 3)
	v := MakeRef(m.NewVar())
	run := m.Call(fn, []Cell{MakeInt(1), MakeInt(3), v})
	ok, err := run.Next()
	if err != nil || !ok {
		t.Fatal("first solution missing")
	}
	// Allocate garbage, then collect with no live registers beyond A1-A3.
	for i := 0; i < 50; i++ {
		m.EncodeTerm(term.List(term.Int(1), term.Int(2)), map[*term.Var]Cell{})
	}
	m.Collect(3)
	var got []string
	got = append(got, m.DecodeTerm(m.Reg(2)).String())
	for {
		ok, err := run.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, m.DecodeTerm(m.Reg(2)).String())
	}
	if len(got) != 3 || got[0] != "1" || got[1] != "2" || got[2] != "3" {
		t.Fatalf("solutions after GC = %v", got)
	}
}

func TestCompareCellsOrder(t *testing.T) {
	m := NewMachine(nil)
	enc := func(src string) Cell {
		tm, _, err := termParse(src)
		if err != nil {
			t.Fatal(err)
		}
		return m.EncodeTerm(tm, map[*term.Var]Cell{})
	}
	ordered := []Cell{
		MakeRef(m.NewVar()),
		enc("1.5"), enc("2"), enc("a"), enc("b"),
		enc("f(1)"), enc("f(1,2)"),
	}
	for i := range ordered {
		for j := range ordered {
			got := m.CompareCells(ordered[i], ordered[j])
			if i < j && got >= 0 || i > j && got <= 0 || i == j && got != 0 {
				t.Errorf("CompareCells(%d,%d) = %d", i, j, got)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := NewMachine(nil)
	cases := []string{
		"foo",
		"42",
		"-17",
		"3.25",
		"[1,2,3]",
		"f(a, g(b, [x|T]), T)",
		"'quoted atom'",
	}
	for _, src := range cases {
		tm, _, err := termParse(src)
		if err != nil {
			t.Fatal(err)
		}
		c := m.EncodeTerm(tm, map[*term.Var]Cell{})
		back := m.DecodeTerm(c)
		// Variables get fresh names; compare shape via canonical string
		// after renaming both sides consistently is overkill — just
		// compare non-var cases exactly.
		if term.IsGround(tm) && back.String() != tm.String() {
			t.Errorf("round trip %q -> %q", tm, back)
		}
	}
}

func TestIntCellRange(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 123456789, -123456789, MaxInt, MinInt} {
		c := MakeInt(v)
		if c.IntVal() != v {
			t.Errorf("MakeInt(%d).IntVal() = %d", v, c.IntVal())
		}
		if c.Tag() != TagInt {
			t.Errorf("MakeInt(%d) tag = %v", v, c.Tag())
		}
	}
	if CheckInt(MaxInt+1) || CheckInt(MinInt-1) {
		t.Error("CheckInt accepts out-of-range values")
	}
}

func TestCodeCellPacking(t *testing.T) {
	c := MakeCode(1234, 56789)
	b, o := c.CodeVal()
	if b != 1234 || o != 56789 {
		t.Fatalf("CodeVal = (%d,%d)", b, o)
	}
}

func TestFunCellPacking(t *testing.T) {
	c := MakeFun(dict.ID(98765), 12)
	if c.FunID() != 98765 || c.FunArity() != 12 {
		t.Fatalf("Fun cell = (%d,%d)", c.FunID(), c.FunArity())
	}
}

// termParse parses a single term using the reader; tests only.
func termParse(src string) (term.Term, map[string]*term.Var, error) {
	return parser.ParseTerm(src)
}
