package wam

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/dict"
	"repro/internal/obs"
	"repro/internal/term"
)

// Stats holds cumulative machine counters. The choice-point counter backs
// the paper's §3.2.1 discussion (choice-point references dominate data
// references), and the ablation benchmarks report it.
type Stats struct {
	Instructions uint64
	Calls        uint64
	ChoicePoints uint64
	// ChoicePointsElided counts indexing dispatches that jumped straight
	// into a single candidate clause, skipping the try chain a naive
	// translation would have pushed (§3.2.2).
	ChoicePointsElided uint64
	Backtracks         uint64
	Unifications       uint64
	TrailOps           uint64
	GCRuns             uint64
	GCCellsFreed       uint64
	// GCPauseNS is the total time spent in heap collections; per-query
	// attribution goes through the machine's phase sink.
	GCPauseNS uint64
	HeapPeak  int
	// OpClasses counts executed instructions per opcode class (indexed
	// by OpClass).
	OpClasses [NumOpClasses]uint64
}

// ErrUnknownProc reports a call to a procedure with no definition.
type ErrUnknownProc struct {
	Name  string
	Arity int
}

func (e *ErrUnknownProc) Error() string {
	return fmt.Sprintf("wam: unknown procedure %s/%d", e.Name, e.Arity)
}

// codePtr addresses an instruction.
type codePtr struct {
	blk *CodeBlock
	off int
}

var nilCode = codePtr{}

// extra associates out-of-band Go state (a redo closure) with the choice
// point at stack address b.
type extra struct {
	b      int
	fn     RedoFn
	resume codePtr
	// catch markers carry the catcher/recovery terms of catch/3, with
	// the heap addresses of their variables for identity-preserving
	// re-encoding at delivery.
	catch    bool
	catcher  term.Term
	recovery term.Term
	varAddrs map[*term.Var]int
}

// RedoFn produces the next solution of a nondeterministic builtin. It is
// called with the machine restored to the choice-point state; it should
// bind results (via Unify) and return true, or return false when no more
// solutions exist. A RedoFn must keep returning false once exhausted.
type RedoFn func(m *Machine) (bool, error)

// BuiltinFn implements a builtin predicate. args are the dereferenced-on-
// demand argument cells (X registers); the function may bind variables via
// m.Unify and may register a RedoFn via m.PushRedo for nondeterminism.
type BuiltinFn func(m *Machine, args []Cell) (bool, error)

// Builtin describes a registered builtin predicate.
type Builtin struct {
	Name  string
	Arity int
	Fn    BuiltinFn
}

// Machine is a WAM instance: registers, heap (global stack), local stack,
// trail, code and procedure tables. A Machine is not safe for concurrent
// use; it models one session as in the paper.
type Machine struct {
	Dict *dict.Table

	heap   []Cell
	floats []float64
	stack  []Cell
	trail  []int
	pdl    []int // unification worklist, pairs of heap addresses? (cells)
	x      []Cell

	p, cp   codePtr
	e, b    int // stack frame bases; -1 means none
	b0      int
	hb      int
	s       int  // structure pointer (read mode)
	mode    byte // 'r' or 'w'
	numArgs int

	blocks   []*CodeBlock
	procs    map[dict.ID]*Proc
	builtins []Builtin
	binIndex map[string]int // name/arity -> builtin index

	extras      []extra
	pendingJump *codePtr

	// Out receives the output of write/1 and friends.
	Out io.Writer

	// collectors implements findall/3 accumulation.
	collectors []collector

	// OnUndefined, if set, is consulted when a called procedure has no
	// code in main memory. It is Educe*'s interpreter trap (§3.2.1): the
	// engine hooks the dynamic loader here. Returning (nil, nil) makes
	// the call raise ErrUnknownProc.
	OnUndefined func(m *Machine, fn dict.ID) (*Proc, error)

	// UnknownFails makes calls to undefined procedures fail silently
	// instead of raising an error.
	UnknownFails bool

	// GC policy.
	gcEnabled   bool
	gcThreshold int // run GC when heap grew this much since last collection
	gcLastHeap  int

	// Cancellation. deadline is a unix-nanosecond wall-clock bound (0 =
	// none) and interrupted an asynchronous abort request; both may be
	// set from other goroutines and are polled amortized by the dispatch
	// loop, surfacing as catchable error balls.
	deadline    atomic.Int64
	interrupted atomic.Bool

	// Resource quotas (per-query caps, polled alongside cancellation).
	// Unlike deadline/interrupted these are plain fields: they must be
	// set by the goroutine that runs the query, between queries.
	quota     Quota
	solutions int
	// checkHook, when set, is consulted at every cancellation poll; a
	// non-nil error (normally an *ErrBall) aborts the query catchably.
	// The owning session uses it to enforce quotas the machine cannot
	// see itself, such as EDB pages touched.
	checkHook func() error

	stats Stats
	// prof, when non-nil, receives 4-port box-model events from the
	// dispatch loop. Nil (the default) keeps the hot path at one nil
	// check per port site.
	prof *Profiler
	// phaseSink receives per-query phase attributions the machine makes
	// itself (currently gc pauses). Nil records nothing; the owning
	// session points it at the current query's span set.
	phaseSink *obs.PhaseTimes

	haltBlock  *CodeBlock
	retryBlock *CodeBlock
	failBlock  *CodeBlock
}

// NewMachine returns a machine using the given dictionary (a fresh one is
// created when d is nil) with the core builtins registered.
func NewMachine(d *dict.Table) *Machine {
	if d == nil {
		d = dict.New(dict.WithSegmentSize(4096))
	}
	m := &Machine{
		Dict:        d,
		e:           -1,
		b:           -1,
		b0:          -1,
		procs:       map[dict.ID]*Proc{},
		binIndex:    map[string]int{},
		gcEnabled:   true,
		gcThreshold: 256 * 1024,
		Out:         os.Stdout,
	}
	m.haltBlock = m.AddBlock(&CodeBlock{Name: "$halt", Instrs: []Instr{{Op: OpHalt}}})
	m.retryBlock = m.AddBlock(&CodeBlock{Name: "$retry_builtin", Instrs: []Instr{{Op: OpRetryBuiltin}}})
	m.failBlock = m.AddBlock(&CodeBlock{Name: "$fail", Instrs: []Instr{{Op: OpFail}}})
	registerCoreBuiltins(m)
	registerCatchBuiltins(m)
	registerExtraBuiltins(m)
	return m
}

// Stats returns a snapshot of the machine counters.
func (m *Machine) Stats() Stats {
	st := m.stats
	if len(m.heap) > st.HeapPeak {
		st.HeapPeak = len(m.heap)
	}
	return st
}

// ResetStats zeroes the counters.
func (m *Machine) ResetStats() { m.stats = Stats{} }

// SetPhaseSink directs the machine's own phase attributions (gc pauses)
// to pt; nil disables attribution. The owning session points this at the
// current query's span set.
func (m *Machine) SetPhaseSink(pt *obs.PhaseTimes) { m.phaseSink = pt }

// SetGC enables or disables the garbage collector (paper §3.3.2 allows
// temporarily disabling it in time-critical regions).
func (m *Machine) SetGC(enabled bool) { m.gcEnabled = enabled }

// interruptMask selects how often the dispatch loop polls for
// cancellation: every 256 instructions, cheap enough to vanish in the
// dispatch cost while bounding reaction latency.
const interruptMask = 0xff

// SetDeadline arms a wall-clock execution bound; once it passes, the
// running (or any later) query aborts with a catchable
// error(timeout, educe) ball. The zero time disarms. Safe to call from
// any goroutine.
func (m *Machine) SetDeadline(t time.Time) {
	if t.IsZero() {
		m.deadline.Store(0)
		return
	}
	m.deadline.Store(t.UnixNano())
}

// Deadline reports the currently armed wall-clock bound (zero when
// disarmed). Safe to call from any goroutine.
func (m *Machine) Deadline() time.Time {
	d := m.deadline.Load()
	if d == 0 {
		return time.Time{}
	}
	return time.Unix(0, d)
}

// Interrupt asynchronously aborts the running query with a catchable
// error(interrupted, educe) ball at the next dispatch-loop poll. One
// interrupt aborts one query; the flag clears when delivered. Safe to
// call from any goroutine.
func (m *Machine) Interrupt() { m.interrupted.Store(true) }

// ClearInterrupt discards a pending interrupt (a new query starting
// should not die for its predecessor's abort).
func (m *Machine) ClearInterrupt() { m.interrupted.Store(false) }

// CheckCancel reports a pending interrupt or an expired deadline as the
// same catchable error ball the dispatch loop would raise. It serves
// evaluation loops running outside the dispatch loop (the set-at-a-time
// fixpoint driver), which poll it between rounds. Quota caps are not
// checked here — they reference dispatch state; callers enforce their
// own resource hooks.
func (m *Machine) CheckCancel() error {
	if m.interrupted.Load() {
		m.interrupted.Store(false)
		return &ErrBall{Term: term.Comp("error", term.Atom("interrupted"), term.Atom("educe"))}
	}
	if d := m.deadline.Load(); d != 0 && time.Now().UnixNano() > d {
		return &ErrBall{Term: term.Comp("error", term.Atom("timeout"), term.Atom("educe"))}
	}
	return nil
}

// Quota caps one query's resource consumption inside the machine. Zero
// fields are unlimited. Limits are enforced at the dispatch loop's
// amortized cancellation poll (and at every solution boundary), so a
// query may overshoot a cap by the allocations of at most a few hundred
// instructions before it dies with a catchable
// error(resource_error(Kind), educe) ball.
type Quota struct {
	// HeapCells bounds the heap (global stack) size in cells. The bound
	// applies to the post-GC heap: a collection that reclaims below the
	// cap lets the query continue.
	HeapCells int
	// TrailEntries bounds the trail length.
	TrailEntries int
	// Solutions bounds the number of solutions a query may deliver;
	// asking for one more aborts the query. A negative cap means
	// already exhausted: every query dies on its first Next (the
	// deterministic kill used by fault injection).
	Solutions int
}

// SetQuota installs per-query resource caps. Unlike SetDeadline and
// Interrupt it is NOT safe to call concurrently with a running query:
// call it from the query's own goroutine, between queries. The quota
// persists across queries until changed; the solution counter resets at
// every Call.
func (m *Machine) SetQuota(q Quota) { m.quota = q }

// GetQuota returns the installed quota.
func (m *Machine) GetQuota() Quota { return m.quota }

// SetCheckHook installs an extra per-poll check (session-level quotas).
// Same concurrency contract as SetQuota.
func (m *Machine) SetCheckHook(f func() error) { m.checkHook = f }

// ResourceBall is the catchable exhaustion error for one resource kind
// ("heap", "trail", "pages", "solutions"): error(resource_error(Kind),
// educe).
func ResourceBall(kind string) *ErrBall {
	return &ErrBall{Term: term.Comp("error",
		term.Comp("resource_error", term.Atom(kind)),
		term.Atom("educe"))}
}

// TransactionBall is the catchable transaction failure for one reason
// ("no_transaction", "nested_transaction", "read_only", "commit_failed"):
// error(transaction_error(Reason), educe).
func TransactionBall(reason string) *ErrBall {
	return &ErrBall{Term: term.Comp("error",
		term.Comp("transaction_error", term.Atom(reason)),
		term.Atom("educe"))}
}

// ResourceKind returns the resource kind of an uncaught resource_error
// ball, or "" when err is not one. Servers use it to count quota kills.
func ResourceKind(err error) string {
	ball, ok := err.(*ErrBall)
	if !ok {
		return ""
	}
	e, ok := ball.Term.(*term.Compound)
	if !ok || e.Functor != "error" || len(e.Args) != 2 {
		return ""
	}
	re, ok := e.Args[0].(*term.Compound)
	if !ok || re.Functor != "resource_error" || len(re.Args) != 1 {
		return ""
	}
	kind, ok := re.Args[0].(term.Atom)
	if !ok {
		return ""
	}
	return string(kind)
}

// checkCancel reports a pending interrupt, an expired deadline or an
// exhausted resource quota as an error ball, or nil to continue.
func (m *Machine) checkCancel() error {
	if m.interrupted.Load() {
		m.interrupted.Store(false)
		return &ErrBall{Term: term.Comp("error", term.Atom("interrupted"), term.Atom("educe"))}
	}
	if d := m.deadline.Load(); d != 0 && time.Now().UnixNano() > d {
		return &ErrBall{Term: term.Comp("error", term.Atom("timeout"), term.Atom("educe"))}
	}
	if q := &m.quota; q.HeapCells != 0 || q.TrailEntries != 0 || q.Solutions != 0 {
		// Heap: with GC enabled, kill only when the collector could not
		// bring the heap back under the cap (gcLastHeap is the post-GC
		// size; maybeGC applies quota pressure at every call port), so a
		// query whose garbage is reclaimable never dies spuriously
		// between call ports.
		if q.HeapCells > 0 && len(m.heap) > q.HeapCells &&
			(!m.gcEnabled || m.gcLastHeap > q.HeapCells) {
			return ResourceBall("heap")
		}
		if q.TrailEntries > 0 && len(m.trail) > q.TrailEntries {
			return ResourceBall("trail")
		}
		if q.Solutions != 0 && m.solutions >= q.Solutions {
			return ResourceBall("solutions")
		}
	}
	if m.checkHook != nil {
		if err := m.checkHook(); err != nil {
			return err
		}
	}
	return nil
}

// SetGCThreshold sets the heap-growth trigger in cells.
func (m *Machine) SetGCThreshold(cells int) {
	if cells < 1024 {
		cells = 1024
	}
	m.gcThreshold = cells
}

// AddBlock registers a code block and returns it with its ID assigned.
func (m *Machine) AddBlock(b *CodeBlock) *CodeBlock {
	b.ID = len(m.blocks)
	m.blocks = append(m.blocks, b)
	return b
}

// RemoveBlock drops a code block; its ID is not reused.
func (m *Machine) RemoveBlock(b *CodeBlock) {
	if b.ID >= 0 && b.ID < len(m.blocks) && m.blocks[b.ID] == b {
		m.blocks[b.ID] = nil
	}
}

// DefineProc installs (or replaces) a procedure. The procedure's code
// block is stamped with its owner so the profiler can attribute
// exits/fails to the predicate whose code is executing.
func (m *Machine) DefineProc(p *Proc) {
	if p.Block != nil {
		p.Block.Owner, p.Block.HasOwner = p.Fn, true
	}
	m.procs[p.Fn] = p
}

// Proc returns the procedure for fn, or nil.
func (m *Machine) Proc(fn dict.ID) *Proc { return m.procs[fn] }

// Procs iterates over all defined procedures.
func (m *Machine) Procs(f func(*Proc) bool) {
	for _, p := range m.procs {
		if !f(p) {
			return
		}
	}
}

// RemoveProc deletes a procedure and unregisters its code block.
func (m *Machine) RemoveProc(fn dict.ID) {
	if p, ok := m.procs[fn]; ok {
		if p.Block != nil {
			m.RemoveBlock(p.Block)
		}
		delete(m.procs, fn)
	}
}

// RegisterBuiltin adds a builtin predicate and returns its index. A wrapper
// procedure is also installed so the builtin can be the target of ordinary
// calls (in particular from call/N).
func (m *Machine) RegisterBuiltin(b Builtin) int {
	idx := len(m.builtins)
	m.builtins = append(m.builtins, b)
	m.binIndex[fmt.Sprintf("%s/%d", b.Name, b.Arity)] = idx
	fn := m.Dict.Intern(b.Name, b.Arity)
	blk := m.AddBlock(&CodeBlock{
		Name: fmt.Sprintf("$builtin %s/%d", b.Name, b.Arity),
		Instrs: []Instr{
			{Op: OpBuiltin, N: int32(idx), Ar: int32(b.Arity)},
			{Op: OpProceed},
		},
	})
	m.DefineProc(&Proc{Fn: fn, Arity: b.Arity, Block: blk})
	return idx
}

// TailCall arranges for control to transfer to fn with the given argument
// cells when the currently executing builtin returns true. It implements
// call/N. The second result is false when the target is undefined and the
// machine is configured to fail silently.
func (m *Machine) TailCall(fn dict.ID, args []Cell) (bool, error) {
	// Load the argument registers before resolving the target: procedure
	// resolution may trap into the dynamic loader, whose pre-unification
	// filter reads the call's argument registers.
	m.ensureRegs(len(args))
	copy(m.x, args)
	m.numArgs = len(args)
	proc, err := m.lookupProc(fn)
	if err != nil || proc == nil {
		return false, err
	}
	m.pendingJump = &codePtr{blk: proc.Block}
	return true, nil
}

// BuiltinIndex returns the index of a registered builtin, or -1.
func (m *Machine) BuiltinIndex(name string, arity int) int {
	if i, ok := m.binIndex[fmt.Sprintf("%s/%d", name, arity)]; ok {
		return i
	}
	return -1
}

// --- heap and register access -------------------------------------------

// H returns the current heap top.
func (m *Machine) H() int { return len(m.heap) }

// Heap returns the cell at heap address a.
func (m *Machine) Heap(a int) Cell { return m.heap[a] }

// PushHeap appends a cell to the heap and returns its address.
func (m *Machine) PushHeap(c Cell) int {
	m.heap = append(m.heap, c)
	return len(m.heap) - 1
}

// NewVar allocates a fresh unbound heap variable and returns its address.
func (m *Machine) NewVar() int {
	a := len(m.heap)
	m.heap = append(m.heap, MakeRef(a))
	return a
}

// PushFloat interns a float in the machine float table.
func (m *Machine) PushFloat(f float64) Cell {
	m.floats = append(m.floats, f)
	return MakeFlt(len(m.floats) - 1)
}

// Float returns the value of a float cell.
func (m *Machine) Float(c Cell) float64 { return m.floats[c.Val()] }

// Reg returns argument/temporary register i (0-based: A1 is Reg(0)).
func (m *Machine) Reg(i int) Cell { return m.x[i] }

// SetReg writes register i, growing the bank as needed.
func (m *Machine) SetReg(i int, c Cell) {
	for len(m.x) <= i {
		m.x = append(m.x, 0)
	}
	m.x[i] = c
}

func (m *Machine) ensureRegs(n int) {
	for len(m.x) < n {
		m.x = append(m.x, 0)
	}
}

// Deref follows reference chains to the representative cell.
func (m *Machine) Deref(c Cell) Cell {
	for c.Tag() == TagRef {
		d := m.heap[c.Val()]
		if d == c {
			return c
		}
		c = d
	}
	return c
}

// bindAddr binds heap address a to cell c, trailing when needed.
func (m *Machine) bindAddr(a int, c Cell) {
	m.heap[a] = c
	if a < m.hb {
		m.trail = append(m.trail, a)
		m.stats.TrailOps++
	}
}

// Bind binds the unbound variable cell v (TagRef) to c with the standard
// ordering rule when both are variables: the younger (higher address)
// variable is bound to the older.
func (m *Machine) Bind(v, c Cell) {
	if c.Tag() == TagRef && c.Val() < v.Val() {
		m.bindAddr(v.Val(), c)
		return
	}
	if c.Tag() == TagRef && c.Val() == v.Val() {
		return
	}
	m.bindAddr(v.Val(), c)
}

// Unify unifies two cells, binding variables and trailing as needed.
func (m *Machine) Unify(a, b Cell) bool {
	m.stats.Unifications++
	type pair struct{ a, b Cell }
	work := make([]pair, 0, 16)
	work = append(work, pair{a, b})
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		d1 := m.Deref(p.a)
		d2 := m.Deref(p.b)
		if d1 == d2 {
			continue
		}
		t1, t2 := d1.Tag(), d2.Tag()
		switch {
		case t1 == TagRef && t2 == TagRef:
			if d1.Val() < d2.Val() {
				m.bindAddr(d2.Val(), d1)
			} else {
				m.bindAddr(d1.Val(), d2)
			}
		case t1 == TagRef:
			m.bindAddr(d1.Val(), d2)
		case t2 == TagRef:
			m.bindAddr(d2.Val(), d1)
		case t1 != t2:
			return false
		case t1 == TagCon, t1 == TagInt, t1 == TagSmall:
			return false // equal cells handled above
		case t1 == TagFlt:
			if m.floats[d1.Val()] != m.floats[d2.Val()] {
				return false
			}
		case t1 == TagLis:
			a1, a2 := d1.Val(), d2.Val()
			work = append(work, pair{m.heap[a1], m.heap[a2]}, pair{m.heap[a1+1], m.heap[a2+1]})
		case t1 == TagStr:
			f1, f2 := m.heap[d1.Val()], m.heap[d2.Val()]
			if f1 != f2 {
				return false
			}
			n := f1.FunArity()
			for i := 1; i <= n; i++ {
				work = append(work, pair{m.heap[d1.Val()+i], m.heap[d2.Val()+i]})
			}
		default:
			return false
		}
	}
	return true
}

// --- stack frames ---------------------------------------------------------

// Environment frame layout (base e):
//
//	[e]   Small(prev E)
//	[e+1] Code(saved CP)
//	[e+2] Small(n permanent variables)
//	[e+3 .. e+3+n) Y0..Yn-1
const envHdr = 3

// Choice-point frame layout (base b, n saved argument registers):
//
//	[b]      Small(n)
//	[b+1..b+n]   A1..An
//	[b+n+1]  Small(saved E)
//	[b+n+2]  Code(saved CP)
//	[b+n+3]  Small(previous B)
//	[b+n+4]  Code(BP: next clause)
//	[b+n+5]  Small(saved TR)
//	[b+n+6]  Small(saved H)
//	[b+n+7]  Small(saved float count)
//	[b+n+8]  Small(saved B0)
const cpHdr = 9

func (m *Machine) envSize(e int) int  { return envHdr + m.stack[e+2].SmallVal() }
func (m *Machine) cpNArgs(b int) int  { return m.stack[b].SmallVal() }
func (m *Machine) cpSize(b int) int   { return m.cpNArgs(b) + cpHdr }
func (m *Machine) cpH(b int) int      { return m.stack[b+m.cpNArgs(b)+6].SmallVal() }
func (m *Machine) cpPrevB(b int) int  { return m.stack[b+m.cpNArgs(b)+3].SmallVal() }
func (m *Machine) yAddr(n int) int    { return m.e + envHdr + n }
func (m *Machine) Y(n int) Cell       { return m.stack[m.yAddr(n)] }
func (m *Machine) setY(n int, c Cell) { m.stack[m.yAddr(n)] = c }

// stackTop returns the first free local-stack slot.
func (m *Machine) stackTop() int {
	top := 0
	if m.e >= 0 {
		if t := m.e + m.envSize(m.e); t > top {
			top = t
		}
	}
	if m.b >= 0 {
		if t := m.b + m.cpSize(m.b); t > top {
			top = t
		}
	}
	return top
}

func (m *Machine) ensureStack(n int) {
	for len(m.stack) < n {
		m.stack = append(m.stack, 0)
	}
}

func (m *Machine) codeCell(p codePtr) Cell {
	if p.blk == nil {
		return MakeCode(0xff_ffff, 0)
	}
	return MakeCode(p.blk.ID, p.off)
}

func (m *Machine) cellCode(c Cell) codePtr {
	blk, off := c.CodeVal()
	if blk == 0xff_ffff {
		return nilCode
	}
	return codePtr{blk: m.blocks[blk], off: off}
}

// pushChoicePoint saves the machine state with nargs argument registers and
// BP as the alternative continuation.
func (m *Machine) pushChoicePoint(nargs int, bp codePtr) {
	m.stats.ChoicePoints++
	base := m.stackTop()
	m.ensureStack(base + nargs + cpHdr)
	m.stack[base] = MakeSmall(nargs)
	for i := 0; i < nargs; i++ {
		m.stack[base+1+i] = m.x[i]
	}
	m.stack[base+nargs+1] = MakeSmall(m.e)
	m.stack[base+nargs+2] = m.codeCell(m.cp)
	m.stack[base+nargs+3] = MakeSmall(m.b)
	m.stack[base+nargs+4] = m.codeCell(bp)
	m.stack[base+nargs+5] = MakeSmall(len(m.trail))
	m.stack[base+nargs+6] = MakeSmall(len(m.heap))
	m.stack[base+nargs+7] = MakeSmall(len(m.floats))
	m.stack[base+nargs+8] = MakeSmall(m.b0)
	m.b = base
	m.hb = len(m.heap)
}

// restoreFromChoicePoint reinstates registers from the current choice
// point (without popping it) and returns the saved BP.
func (m *Machine) restoreFromChoicePoint() codePtr {
	b := m.b
	n := m.cpNArgs(b)
	m.ensureRegs(n)
	for i := 0; i < n; i++ {
		m.x[i] = m.stack[b+1+i]
	}
	m.numArgs = n
	m.e = m.stack[b+n+1].SmallVal()
	m.cp = m.cellCode(m.stack[b+n+2])
	bp := m.cellCode(m.stack[b+n+4])
	m.unwindTrail(m.stack[b+n+5].SmallVal())
	m.heap = m.heap[:m.stack[b+n+6].SmallVal()]
	m.floats = m.floats[:m.stack[b+n+7].SmallVal()]
	m.b0 = m.stack[b+n+8].SmallVal()
	m.hb = len(m.heap)
	return bp
}

func (m *Machine) setBP(bp codePtr) {
	n := m.cpNArgs(m.b)
	m.stack[m.b+n+4] = m.codeCell(bp)
}

// popChoicePoint discards the current choice point.
func (m *Machine) popChoicePoint() {
	m.b = m.cpPrevB(m.b)
	if m.b >= 0 {
		m.hb = m.cpH(m.b)
	} else {
		m.hb = 0
	}
	m.trimExtras()
}

func (m *Machine) unwindTrail(to int) {
	for i := len(m.trail) - 1; i >= to; i-- {
		a := m.trail[i]
		m.heap[a] = MakeRef(a)
	}
	m.trail = m.trail[:to]
}

// cutTo discards choice points younger than level.
func (m *Machine) cutTo(level int) {
	if m.b > level {
		m.b = level
		if m.b >= 0 {
			m.hb = m.cpH(m.b)
		} else {
			m.hb = 0
		}
		m.trimExtras()
	}
}

// trimExtras drops redo closures whose choice points were discarded.
func (m *Machine) trimExtras() {
	for len(m.extras) > 0 && m.extras[len(m.extras)-1].b > m.b {
		m.extras = m.extras[:len(m.extras)-1]
	}
}

// PushRedo registers a nondeterministic continuation for the currently
// executing builtin: a choice point is created whose retry re-invokes fn.
// The builtin should return fn(m) for the first solution.
func (m *Machine) PushRedo(fn RedoFn) {
	resume := codePtr{blk: m.p.blk, off: m.p.off + 1}
	m.pushChoicePoint(m.numArgs, codePtr{blk: m.retryBlock, off: 0})
	m.extras = append(m.extras, extra{b: m.b, fn: fn, resume: resume})
}

// Reset clears all transient state (heap, stacks, trail, registers) while
// keeping the dictionary, code blocks, procedures and builtins.
func (m *Machine) Reset() {
	m.heap = m.heap[:0]
	m.floats = m.floats[:0]
	m.stack = m.stack[:0]
	m.trail = m.trail[:0]
	m.x = m.x[:0]
	m.extras = m.extras[:0]
	m.collectors = m.collectors[:0]
	m.e, m.b, m.b0 = -1, -1, -1
	m.hb, m.s = 0, 0
	m.numArgs = 0
	m.p, m.cp = nilCode, nilCode
	m.gcLastHeap = 0
}

// lookupProc resolves a call target, invoking the OnUndefined trap for
// procedures that have no resident code (paper §3.2.1).
func (m *Machine) lookupProc(fn dict.ID) (*Proc, error) {
	p := m.procs[fn]
	if p != nil && p.Block != nil {
		return p, nil
	}
	if m.OnUndefined != nil {
		np, err := m.OnUndefined(m, fn)
		if err != nil {
			return nil, err
		}
		if np != nil {
			// Trap-loaded procedures may bypass DefineProc (per-call
			// filtered candidate sets are returned, not installed), so
			// stamp the profiler's block owner here too.
			if np.Block != nil && !np.Block.HasOwner {
				np.Block.Owner, np.Block.HasOwner = np.Fn, true
			}
			return np, nil
		}
	}
	if m.UnknownFails {
		return nil, nil
	}
	return nil, &ErrUnknownProc{Name: m.Dict.Name(fn), Arity: m.Dict.Arity(fn)}
}
