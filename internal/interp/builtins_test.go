package interp

import (
	"reflect"
	"testing"

	"repro/internal/term"
)

// expect1 asserts the goal has exactly one solution binding v to want.
func expect1(t *testing.T, in *Interp, goal, v, want string) {
	t.Helper()
	got := solutions(t, in, goal, v)
	if len(got) != 1 || got[0] != want {
		t.Fatalf("%s = %v, want [%s]", goal, got, want)
	}
}

func expectYes(t *testing.T, in *Interp, goal string) {
	t.Helper()
	if got := solutions(t, in, goal, ""); len(got) != 1 {
		t.Fatalf("%s = %v, want one solution", goal, got)
	}
}

func expectNo(t *testing.T, in *Interp, goal string) {
	t.Helper()
	if got := solutions(t, in, goal, ""); len(got) != 0 {
		t.Fatalf("%s = %v, want failure", goal, got)
	}
}

func TestInterpArithmetic(t *testing.T) {
	in := New()
	cases := map[string]string{
		"X is 2 + 3":         "5",
		"X is 7 / 2":         "3.5",
		"X is 6 / 3":         "2",
		"X is 7 // 2":        "3",
		"X is 7 mod 3":       "1",
		"X is -7 mod 3":      "2",
		"X is -7 rem 3":      "-1",
		"X is min(1, 2)":     "1",
		"X is max(1, 2)":     "2",
		"X is abs(-4)":       "4",
		"X is abs(-4.5)":     "4.5",
		"X is sign(9)":       "1",
		"X is 2 ^ 8":         "256",
		"X is 2 ** 3":        "8.0",
		"X is 5 >> 1":        "2",
		"X is 1 << 4":        "16",
		"X is truncate(9.7)": "9",
		"X is float(2)":      "2.0",
		"X is sqrt(4.0)":     "2.0",
		"X is - 3":           "-3",
		"X is + 3":           "3",
	}
	for goal, want := range cases {
		expect1(t, in, goal, "X", want)
	}
	g := mustParseT(t, "X is 1 / 0")
	if err := in.Solve(g, nil, func(*Env) bool { return true }); err == nil {
		t.Error("zero divisor not detected")
	}
}

func TestInterpTypeTestsAndOrder(t *testing.T) {
	in := New()
	expectYes(t, in, "var(_), nonvar(a), atom(x), number(1), integer(2), float(1.5)")
	expectYes(t, in, "atomic(a), compound(f(1)), callable(g), ground(f(a))")
	expectNo(t, in, "atom(1)")
	expectNo(t, in, "ground(f(_))")
	expectYes(t, in, "is_list([1,2]), \\+ is_list([1|_])")
	expectYes(t, in, "a @< b, f(1) @> a, 1 @=< 1, b @>= b, x == x, x \\== y")
	expect1(t, in, "compare(O, 1, 2)", "O", "<")
}

func TestInterpAtomBuiltins(t *testing.T) {
	in := New()
	expect1(t, in, "atom_codes(ab, L)", "L", "[97,98]")
	expect1(t, in, "atom_codes(A, [99])", "A", "c")
	expect1(t, in, "atom_number('42', N)", "N", "42")
	expect1(t, in, "atom_number(A, 3.5)", "A", "'3.5'")
	expectNo(t, in, "atom_number(xyz, _)")
}

func TestInterpTermConstruction(t *testing.T) {
	in := New()
	expect1(t, in, "functor(f(a,b), N, _)", "N", "f")
	expect1(t, in, "functor(T, g, 1)", "T", "g(_F0)")
	expect1(t, in, "functor(T, atom, 0)", "T", "atom")
	expect1(t, in, "arg(2, f(a,b,c), X)", "X", "b")
	expectNo(t, in, "arg(9, f(a), _)")
	expect1(t, in, "f(1,2) =.. L", "L", "[f,1,2]")
	expect1(t, in, "T =.. [h, x]", "T", "h(x)")
	expect1(t, in, "3 =.. L", "L", "[3]")
	expect1(t, in, "copy_term(f(X, X), C), C = f(1, One)", "One", "1")
}

func TestInterpListBuiltins(t *testing.T) {
	in := New()
	expect1(t, in, "length([a,b], N)", "N", "2")
	expect1(t, in, "length(L, 2)", "L", "[_L0,_L1]")
	expect1(t, in, "msort([2,1,1], L)", "L", "[1,1,2]")
	expect1(t, in, "sort([2,1,1], L)", "L", "[1,2]")
	expect1(t, in, "forall(member(X, [1,2,3]), X > 0), R = ok", "R", "ok")
	expectNo(t, in, "forall(member(X, [1,-2]), X > 0)")
}

func TestInterpControl(t *testing.T) {
	in := load(t, `
		p(1). p(2).
		once_p(X) :- p(X), !.
	`)
	expect1(t, in, "once_p(X)", "X", "1")
	expect1(t, in, "( p(9) -> R = then ; R = else )", "R", "else")
	expect1(t, in, "( p(1) -> R = then ; R = else )", "R", "then")
	got := solutions(t, in, "( X = a ; X = b )", "X")
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("disjunction = %v", got)
	}
	expectYes(t, in, "not(p(3))")
	expectNo(t, in, "\\+ p(1)")
}

func TestInterpAssertFamilies(t *testing.T) {
	in := New()
	expectYes(t, in, "assertz(zz(1)), asserta(zz(0)), assert(zz(2))")
	got := solutions(t, in, "zz(X)", "X")
	if !reflect.DeepEqual(got, []string{"0", "1", "2"}) {
		t.Fatalf("assert order = %v", got)
	}
	expectYes(t, in, "retract(zz(1))")
	got = solutions(t, in, "zz(X)", "X")
	if !reflect.DeepEqual(got, []string{"0", "2"}) {
		t.Fatalf("after retract = %v", got)
	}
	expectNo(t, in, "retract(zz(9))")
}

func TestInterpSolveOnce(t *testing.T) {
	in := load(t, "p(1). p(2).")
	g := mustParseT(t, "p(X)")
	found, err := in.SolveOnce(g, nil)
	if err != nil || !found {
		t.Fatalf("SolveOnce: %v %v", found, err)
	}
	g = mustParseT(t, "p(9)")
	found, err = in.SolveOnce(g, nil)
	if err != nil || found {
		t.Fatalf("SolveOnce absent: %v %v", found, err)
	}
}

func TestInterpPredicatesListing(t *testing.T) {
	in := load(t, "alpha(1). beta(2).")
	pis := in.Predicates()
	names := map[string]bool{}
	for _, pi := range pis {
		names[pi.Name] = true
	}
	if !names["alpha"] || !names["beta"] || !names["append"] {
		t.Fatalf("predicates = %v", pis)
	}
	in.RetractAll(pi("alpha", 1))
	if in.ClauseCount(pi("alpha", 1)) != 0 {
		t.Fatal("RetractAll left clauses")
	}
}

func TestInterpExternalResolver(t *testing.T) {
	in := New()
	// An external generator producing ext(1), ext(2), ext(3).
	in.RegisterExternal(pi("ext", 1), func(goal term.Term, env *Env, emit func() bool) error {
		for i := 1; i <= 3; i++ {
			mark := env.Mark()
			if env.Unify(goal, term.Comp("ext", term.Int(i))) {
				if !emit() {
					return nil
				}
			}
			env.Undo(mark)
		}
		return nil
	})
	got := solutions(t, in, "ext(X)", "X")
	if !reflect.DeepEqual(got, []string{"1", "2", "3"}) {
		t.Fatalf("external = %v", got)
	}
	// Bound call filters through unification.
	expectYes(t, in, "ext(2)")
	expectNo(t, in, "ext(9)")
	// Cut is absorbed at the external call boundary.
	expect1(t, in, "ext(X), !", "X", "1")
}
