package interp

import "repro/internal/term"

// Env is a binding environment with a trail for backtracking.
type Env struct {
	bind  map[*term.Var]term.Term
	trail []*term.Var
}

// NewEnv returns an empty environment.
func NewEnv() *Env { return &Env{bind: map[*term.Var]term.Term{}} }

// Resolve dereferences the top of t through the bindings.
func (e *Env) Resolve(t term.Term) term.Term {
	for {
		v, ok := t.(*term.Var)
		if !ok {
			return t
		}
		b, ok := e.bind[v]
		if !ok {
			return t
		}
		t = b
	}
}

// Mark returns a trail position for later Undo.
func (e *Env) Mark() int { return len(e.trail) }

// Undo removes bindings made since mark.
func (e *Env) Undo(mark int) {
	for i := len(e.trail) - 1; i >= mark; i-- {
		delete(e.bind, e.trail[i])
	}
	e.trail = e.trail[:mark]
}

func (e *Env) bindVar(v *term.Var, t term.Term) {
	e.bind[v] = t
	e.trail = append(e.trail, v)
}

// Unify unifies a and b under the environment, trailing bindings.
func (e *Env) Unify(a, b term.Term) bool {
	a, b = e.Resolve(a), e.Resolve(b)
	if a == b {
		return true
	}
	if v, ok := a.(*term.Var); ok {
		e.bindVar(v, b)
		return true
	}
	if v, ok := b.(*term.Var); ok {
		e.bindVar(v, a)
		return true
	}
	switch x := a.(type) {
	case term.Atom:
		y, ok := b.(term.Atom)
		return ok && x == y
	case term.Int:
		y, ok := b.(term.Int)
		return ok && x == y
	case term.Float:
		y, ok := b.(term.Float)
		return ok && x == y
	case *term.Compound:
		y, ok := b.(*term.Compound)
		if !ok || x.Functor != y.Functor || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !e.Unify(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// ResolveDeep instantiates t fully under the environment (unbound
// variables remain).
func (e *Env) ResolveDeep(t term.Term) term.Term {
	t = e.Resolve(t)
	if c, ok := t.(*term.Compound); ok {
		args := make([]term.Term, len(c.Args))
		changed := false
		for i, a := range c.Args {
			args[i] = e.ResolveDeep(a)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			return c
		}
		return &term.Compound{Functor: c.Functor, Args: args}
	}
	return t
}
