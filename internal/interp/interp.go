// Package interp is a classical resolution interpreter over source-form
// clauses. It plays the role of the original Educe's rule evaluator in the
// benchmarks (paper §2): rules fetched from the EDB as text are parsed,
// asserted into this interpreter, executed by tree walking, and erased —
// the exact cost profile the paper identifies as the motivation for
// storing compiled code instead.
package interp

import (
	"fmt"
	"sort"

	"repro/internal/term"
)

// Clause is one asserted clause.
type Clause struct {
	Head term.Term
	Body term.Term
}

// Interp is an interpreter instance holding an asserted program.
type Interp struct {
	clauses map[term.Indicator][]*Clause
	// firstArgIndex caches constant-first-arg clause subsets per
	// predicate; invalidated on assert/retract.
	builtins map[term.Indicator]builtinFn

	// OnUndefined, if set, is consulted when a called predicate has no
	// clauses; returning true means the hook asserted a definition and
	// the call should be retried. This is how the Educe-baseline engine
	// hooks EDB retrieval (fetch source, parse, assert).
	OnUndefined func(in *Interp, pi term.Indicator) (bool, error)

	// externals are predicates resolved by an engine-provided generator
	// (the baseline's tuple-at-a-time interface to the record manager).
	externals map[term.Indicator]ExternalFn

	// Stats counters.
	inferences uint64
	asserts    uint64
}

// New returns an interpreter with the builtin set registered.
func New() *Interp {
	in := &Interp{
		clauses:  map[term.Indicator][]*Clause{},
		builtins: map[term.Indicator]builtinFn{},
	}
	in.registerBuiltins()
	return in
}

// Stats reports (inferences, asserts).
func (in *Interp) Stats() (inferences, asserts uint64) { return in.inferences, in.asserts }

// ResetStats zeroes counters.
func (in *Interp) ResetStats() { in.inferences, in.asserts = 0, 0 }

// Assert adds a clause (Head or Head :- Body) at the end of its predicate.
func (in *Interp) Assert(t term.Term) error { return in.assert(t, false) }

// AssertA adds a clause at the front of its predicate.
func (in *Interp) AssertA(t term.Term) error { return in.assert(t, true) }

func (in *Interp) assert(t term.Term, front bool) error {
	head, body := splitClause(t)
	pi := head.Indicator()
	if pi.Name == "" {
		return fmt.Errorf("interp: cannot assert %s", t)
	}
	in.asserts++
	c := &Clause{Head: head, Body: body}
	if front {
		in.clauses[pi] = append([]*Clause{c}, in.clauses[pi]...)
	} else {
		in.clauses[pi] = append(in.clauses[pi], c)
	}
	return nil
}

// Retract removes the first clause whose head and body unify with t,
// reporting whether one was removed.
func (in *Interp) Retract(t term.Term) bool {
	head, body := splitClause(t)
	pi := head.Indicator()
	cs := in.clauses[pi]
	for i, c := range cs {
		env := NewEnv()
		r := term.Rename(term.Comp(":-", c.Head, c.Body)).(*term.Compound)
		if env.Unify(head, r.Args[0]) && env.Unify(body, r.Args[1]) {
			in.clauses[pi] = append(append([]*Clause{}, cs[:i]...), cs[i+1:]...)
			return true
		}
	}
	return false
}

// RetractAll removes every clause of the predicate.
func (in *Interp) RetractAll(pi term.Indicator) { delete(in.clauses, pi) }

// ClauseCount returns the number of clauses for pi.
func (in *Interp) ClauseCount(pi term.Indicator) int { return len(in.clauses[pi]) }

// Predicates lists asserted predicates.
func (in *Interp) Predicates() []term.Indicator {
	out := make([]term.Indicator, 0, len(in.clauses))
	for pi := range in.clauses {
		out = append(out, pi)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Arity < out[j].Arity
	})
	return out
}

func splitClause(t term.Term) (head, body term.Term) {
	if c, ok := t.(*term.Compound); ok && c.Functor == ":-" && len(c.Args) == 2 {
		return c.Args[0], c.Args[1]
	}
	return t, term.TrueAtom
}

// result carries control flow through the CPS solver.
type result struct {
	stop bool // the caller asked to stop enumerating
	cut  bool // a cut is propagating toward its barrier
	err  error
}

var proceed = result{}

// cont is a success continuation.
type cont func() result

type builtinFn func(in *Interp, args []term.Term, env *Env, k cont) result

// Solve enumerates solutions of goal. For each solution fn is called with
// the binding environment; returning false stops the enumeration.
func (in *Interp) Solve(goal term.Term, env *Env, fn func(*Env) bool) error {
	if env == nil {
		env = NewEnv()
	}
	r := in.solve(goal, env, func() result {
		if fn(env) {
			return proceed
		}
		return result{stop: true}
	})
	return r.err
}

// SolveOnce finds the first solution, reporting success.
func (in *Interp) SolveOnce(goal term.Term, env *Env) (bool, error) {
	found := false
	err := in.Solve(goal, env, func(*Env) bool {
		found = true
		return false
	})
	return found, err
}

func (in *Interp) solve(goal term.Term, env *Env, k cont) result {
	in.inferences++
	goal = env.Resolve(goal)
	switch g := goal.(type) {
	case *term.Var:
		return result{err: fmt.Errorf("interp: unbound goal")}
	case term.Int, term.Float:
		return result{err: fmt.Errorf("interp: number is not callable: %s", goal)}
	case term.Atom:
		switch g {
		case "true":
			return k()
		case "fail", "false":
			return proceed
		case "!":
			r := k()
			if r.stop || r.err != nil {
				return r
			}
			r.cut = true
			return r
		}
		return in.call(goal, nil, env, k)
	case *term.Compound:
		switch {
		case g.Functor == "," && len(g.Args) == 2:
			a, b := g.Args[0], g.Args[1]
			return in.solve(a, env, func() result { return in.solve(b, env, k) })
		case g.Functor == ";" && len(g.Args) == 2:
			if ite, ok := env.Resolve(g.Args[0]).(*term.Compound); ok && ite.Functor == "->" && len(ite.Args) == 2 {
				return in.ifThenElse(ite.Args[0], ite.Args[1], g.Args[1], env, k)
			}
			mark := env.Mark()
			r := in.solve(g.Args[0], env, k)
			if r.stop || r.cut || r.err != nil {
				return r
			}
			env.Undo(mark)
			return in.solve(g.Args[1], env, k)
		case g.Functor == "->" && len(g.Args) == 2:
			return in.ifThenElse(g.Args[0], g.Args[1], term.Atom("fail"), env, k)
		case (g.Functor == "\\+" || g.Functor == "not") && len(g.Args) == 1:
			mark := env.Mark()
			found := false
			r := in.solve(g.Args[0], env, func() result {
				found = true
				return result{stop: true}
			})
			if r.err != nil {
				return r
			}
			env.Undo(mark)
			if found {
				return proceed
			}
			return k()
		}
		return in.call(goal, g.Args, env, k)
	}
	return result{err: fmt.Errorf("interp: cannot solve %T", goal)}
}

// ifThenElse implements (C -> T ; E) with commit to the first C solution.
func (in *Interp) ifThenElse(c, t, e term.Term, env *Env, k cont) result {
	mark := env.Mark()
	found := false
	r := in.solve(c, env, func() result {
		found = true
		return result{stop: true}
	})
	if r.err != nil {
		return r
	}
	if found {
		// Condition bindings are in effect.
		return in.solve(t, env, k)
	}
	env.Undo(mark)
	return in.solve(e, env, k)
}

// call resolves a user predicate or builtin.
func (in *Interp) call(goal term.Term, args []term.Term, env *Env, k cont) result {
	pi := goal.Indicator()
	if b, ok := in.builtins[pi]; ok {
		return b(in, args, env, k)
	}
	if ext, ok := in.externals[pi]; ok {
		return in.runExternal(ext, goal, env, k)
	}
	cs, ok := in.clauses[pi]
	if !ok {
		if in.OnUndefined != nil {
			handled, err := in.OnUndefined(in, pi)
			if err != nil {
				return result{err: err}
			}
			if handled {
				cs = in.clauses[pi]
			} else {
				return result{err: fmt.Errorf("interp: unknown procedure %s", pi)}
			}
		} else {
			return result{err: fmt.Errorf("interp: unknown procedure %s", pi)}
		}
	}
	for _, c := range cs {
		mark := env.Mark()
		var rh, rb term.Term
		if c.Body == term.TrueAtom {
			rh = term.Rename(c.Head)
			rb = term.TrueAtom
		} else {
			rc := term.Rename(term.Comp(":-", c.Head, c.Body)).(*term.Compound)
			rh, rb = rc.Args[0], rc.Args[1]
		}
		if env.Unify(goal, rh) {
			r := in.solve(rb, env, k)
			if r.stop || r.err != nil {
				return r
			}
			if r.cut {
				// The cut's barrier is this call: absorb it and stop
				// trying alternatives.
				env.Undo(mark)
				return proceed
			}
		}
		env.Undo(mark)
	}
	return proceed
}

// ExternalFn enumerates the solutions of an externally stored predicate.
// It receives the (partially resolved) goal and must call emit for each
// matching instance; emit returns false to stop enumerating.
type ExternalFn func(goal term.Term, env *Env, emit func() bool) error

// RegisterExternal installs an external resolver for pi.
func (in *Interp) RegisterExternal(pi term.Indicator, fn ExternalFn) {
	if in.externals == nil {
		in.externals = map[term.Indicator]ExternalFn{}
	}
	in.externals[pi] = fn
}

// runExternal adapts an ExternalFn to the CPS solver.
func (in *Interp) runExternal(ext ExternalFn, goal term.Term, env *Env, k cont) result {
	var out result
	err := ext(goal, env, func() bool {
		r := k()
		if r.stop || r.cut || r.err != nil {
			out = r
			return false
		}
		return true
	})
	if err != nil && out.err == nil {
		out.err = err
	}
	if out.cut {
		// The external call is the cut barrier.
		out.cut = false
	}
	return out
}
