package interp

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/parser"
	"repro/internal/term"
)

func pi(name string, arity int) term.Indicator { return term.Indicator{Name: name, Arity: arity} }

func (in *Interp) registerBuiltins() {
	reg := func(name string, arity int, fn builtinFn) { in.builtins[pi(name, arity)] = fn }

	reg("=", 2, func(in *Interp, a []term.Term, env *Env, k cont) result {
		mark := env.Mark()
		if env.Unify(a[0], a[1]) {
			r := k()
			if r.stop || r.cut || r.err != nil {
				return r
			}
		}
		env.Undo(mark)
		return proceed
	})
	reg("\\=", 2, func(in *Interp, a []term.Term, env *Env, k cont) result {
		mark := env.Mark()
		ok := env.Unify(a[0], a[1])
		env.Undo(mark)
		if ok {
			return proceed
		}
		return k()
	})

	det := func(f func(in *Interp, a []term.Term, env *Env) (bool, error)) builtinFn {
		return func(in *Interp, a []term.Term, env *Env, k cont) result {
			mark := env.Mark()
			ok, err := f(in, a, env)
			if err != nil {
				return result{err: err}
			}
			if ok {
				r := k()
				if r.stop || r.cut || r.err != nil {
					return r
				}
			}
			env.Undo(mark)
			return proceed
		}
	}

	typeTest := func(f func(term.Term) bool) builtinFn {
		return det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
			return f(env.Resolve(a[0])), nil
		})
	}
	isVar := func(t term.Term) bool { _, ok := t.(*term.Var); return ok }
	reg("var", 1, typeTest(isVar))
	reg("nonvar", 1, typeTest(func(t term.Term) bool { return !isVar(t) }))
	reg("atom", 1, typeTest(func(t term.Term) bool { _, ok := t.(term.Atom); return ok }))
	reg("number", 1, typeTest(func(t term.Term) bool {
		switch t.(type) {
		case term.Int, term.Float:
			return true
		}
		return false
	}))
	reg("integer", 1, typeTest(func(t term.Term) bool { _, ok := t.(term.Int); return ok }))
	reg("float", 1, typeTest(func(t term.Term) bool { _, ok := t.(term.Float); return ok }))
	reg("atomic", 1, typeTest(func(t term.Term) bool {
		switch t.(type) {
		case term.Atom, term.Int, term.Float:
			return true
		}
		return false
	}))
	reg("compound", 1, typeTest(func(t term.Term) bool { _, ok := t.(*term.Compound); return ok }))
	reg("callable", 1, typeTest(func(t term.Term) bool {
		switch t.(type) {
		case term.Atom, *term.Compound:
			return true
		}
		return false
	}))
	reg("ground", 1, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		return term.IsGround(env.ResolveDeep(a[0])), nil
	}))
	reg("is_list", 1, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		_, ok := term.UnpackList(env.ResolveDeep(a[0]))
		return ok, nil
	}))

	cmp := func(f func(int) bool) builtinFn {
		return det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
			return f(term.Compare(env.ResolveDeep(a[0]), env.ResolveDeep(a[1]))), nil
		})
	}
	reg("==", 2, cmp(func(c int) bool { return c == 0 }))
	reg("\\==", 2, cmp(func(c int) bool { return c != 0 }))
	reg("@<", 2, cmp(func(c int) bool { return c < 0 }))
	reg("@>", 2, cmp(func(c int) bool { return c > 0 }))
	reg("@=<", 2, cmp(func(c int) bool { return c <= 0 }))
	reg("@>=", 2, cmp(func(c int) bool { return c >= 0 }))
	reg("compare", 3, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		c := term.Compare(env.ResolveDeep(a[1]), env.ResolveDeep(a[2]))
		name := "="
		if c < 0 {
			name = "<"
		} else if c > 0 {
			name = ">"
		}
		return env.Unify(a[0], term.Atom(name)), nil
	}))

	reg("is", 2, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		v, err := evalArith(env, a[1])
		if err != nil {
			return false, err
		}
		return env.Unify(a[0], v), nil
	}))
	acmp := func(f func(float64, float64) bool) builtinFn {
		return det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
			x, err := evalArith(env, a[0])
			if err != nil {
				return false, err
			}
			y, err := evalArith(env, a[1])
			if err != nil {
				return false, err
			}
			return f(numOf(x), numOf(y)), nil
		})
	}
	reg("=:=", 2, acmp(func(a, b float64) bool { return a == b }))
	reg("=\\=", 2, acmp(func(a, b float64) bool { return a != b }))
	reg("<", 2, acmp(func(a, b float64) bool { return a < b }))
	reg(">", 2, acmp(func(a, b float64) bool { return a > b }))
	reg("=<", 2, acmp(func(a, b float64) bool { return a <= b }))
	reg(">=", 2, acmp(func(a, b float64) bool { return a >= b }))

	reg("functor", 3, det(biIFunctor))
	reg("arg", 3, det(biIArg))
	reg("=..", 2, det(biIUniv))
	reg("copy_term", 2, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		return env.Unify(a[1], term.Rename(env.ResolveDeep(a[0]))), nil
	}))
	reg("length", 2, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		if items, ok := term.UnpackList(env.ResolveDeep(a[0])); ok {
			return env.Unify(a[1], term.Int(len(items))), nil
		}
		if n, ok := env.Resolve(a[1]).(term.Int); ok && n >= 0 {
			items := make([]term.Term, n)
			for i := range items {
				items[i] = &term.Var{Name: fmt.Sprintf("_L%d", i)}
			}
			return env.Unify(a[0], term.List(items...)), nil
		}
		return false, fmt.Errorf("interp: length/2: insufficiently instantiated")
	}))
	reg("msort", 2, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		items, ok := term.UnpackList(env.ResolveDeep(a[0]))
		if !ok {
			return false, fmt.Errorf("interp: msort/2: not a proper list")
		}
		term.SortTerms(items)
		return env.Unify(a[1], term.List(items...)), nil
	}))
	reg("sort", 2, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		items, ok := term.UnpackList(env.ResolveDeep(a[0]))
		if !ok {
			return false, fmt.Errorf("interp: sort/2: not a proper list")
		}
		term.SortTerms(items)
		var dedup []term.Term
		for i, it := range items {
			if i == 0 || term.Compare(items[i-1], it) != 0 {
				dedup = append(dedup, it)
			}
		}
		return env.Unify(a[1], term.List(dedup...)), nil
	}))
	reg("atom_codes", 2, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		switch x := env.Resolve(a[0]).(type) {
		case term.Atom:
			var items []term.Term
			for _, r := range string(x) {
				items = append(items, term.Int(r))
			}
			return env.Unify(a[1], term.List(items...)), nil
		default:
			items, ok := term.UnpackList(env.ResolveDeep(a[1]))
			if !ok {
				return false, fmt.Errorf("interp: atom_codes/2: insufficiently instantiated")
			}
			s := make([]rune, len(items))
			for i, it := range items {
				c, ok := it.(term.Int)
				if !ok {
					return false, fmt.Errorf("interp: atom_codes/2: bad code list")
				}
				s[i] = rune(c)
			}
			return env.Unify(a[0], term.Atom(string(s))), nil
		}
	}))
	reg("atom_number", 2, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		if at, ok := env.Resolve(a[0]).(term.Atom); ok {
			if v, err := strconv.ParseInt(string(at), 10, 64); err == nil {
				return env.Unify(a[1], term.Int(v)), nil
			}
			if f, err := strconv.ParseFloat(string(at), 64); err == nil {
				return env.Unify(a[1], term.Float(f)), nil
			}
			return false, nil
		}
		n := env.Resolve(a[1])
		switch n.(type) {
		case term.Int, term.Float:
			return env.Unify(a[0], term.Atom(n.String())), nil
		}
		return false, fmt.Errorf("interp: atom_number/2: insufficiently instantiated")
	}))

	// call/1..call/4.
	for n := 1; n <= 4; n++ {
		n := n
		in.builtins[pi("call", n)] = func(in *Interp, a []term.Term, env *Env, k cont) result {
			goal := env.Resolve(a[0])
			extra := a[1:]
			if len(extra) > 0 {
				switch g := goal.(type) {
				case term.Atom:
					goal = term.New(string(g), extra...)
				case *term.Compound:
					args := append(append([]term.Term{}, g.Args...), extra...)
					goal = term.Comp(g.Functor, args...)
				default:
					return result{err: fmt.Errorf("interp: call/%d: not callable", n)}
				}
			}
			r := in.solve(goal, env, k)
			r.cut = false // cut is local inside call/N
			return r
		}
	}

	reg("between", 3, func(in *Interp, a []term.Term, env *Env, k cont) result {
		lo, ok1 := env.Resolve(a[0]).(term.Int)
		hi, ok2 := env.Resolve(a[1]).(term.Int)
		if !ok1 || !ok2 {
			return result{err: fmt.Errorf("interp: between/3: bounds must be integers")}
		}
		if x, ok := env.Resolve(a[2]).(term.Int); ok {
			if x >= lo && x <= hi {
				return k()
			}
			return proceed
		}
		for v := lo; v <= hi; v++ {
			mark := env.Mark()
			if env.Unify(a[2], v) {
				r := k()
				if r.stop || r.cut || r.err != nil {
					return r
				}
			}
			env.Undo(mark)
		}
		return proceed
	})

	reg("findall", 3, func(in *Interp, a []term.Term, env *Env, k cont) result {
		var items []term.Term
		mark := env.Mark()
		r := in.solve(a[1], env, func() result {
			items = append(items, term.Rename(env.ResolveDeep(a[0])))
			return proceed
		})
		if r.err != nil {
			return r
		}
		env.Undo(mark)
		if env.Unify(a[2], term.List(items...)) {
			rr := k()
			if rr.stop || rr.cut || rr.err != nil {
				return rr
			}
		}
		env.Undo(mark)
		return proceed
	})

	reg("assert", 1, det(biIAssert))
	reg("assertz", 1, det(biIAssert))
	reg("asserta", 1, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		return true, in.AssertA(env.ResolveDeep(a[0]))
	}))
	reg("retract", 1, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		return in.Retract(env.ResolveDeep(a[0])), nil
	}))

	reg("write", 1, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		return true, nil // output suppressed in benchmark interpreter
	}))
	reg("nl", 0, det(func(in *Interp, a []term.Term, env *Env) (bool, error) {
		return true, nil
	}))

	// Small list library, asserted as ordinary clauses so they exercise
	// the interpreter itself (as the Educe host Prolog would).
	p := parser.New(`
		append([], L, L).
		append([H|T], L, [H|R]) :- append(T, L, R).
		member(X, [X|_]).
		member(X, [_|T]) :- member(X, T).
		reverse(L, R) :- rev_(L, [], R).
		rev_([], A, A).
		rev_([H|T], A, R) :- rev_(T, [H|A], R).
		nth1(1, [X|_], X) :- !.
		nth1(N, [_|T], X) :- N > 1, N1 is N - 1, nth1(N1, T, X).
		forall(C, A) :- \+ (C, \+ A).
		memberchk(X, L) :- member(X, L), !.
		numlist(L, H, []) :- L > H, !.
		numlist(L, H, [L|T]) :- L1 is L + 1, numlist(L1, H, T).
		select(X, [X|T], T).
		select(X, [H|T], [H|R]) :- select(X, T, R).
		delete([], _, []).
		delete([X|T], X, R) :- !, delete(T, X, R).
		delete([H|T], X, [H|R]) :- delete(T, X, R).
		last([X], X) :- !.
		last([_|T], X) :- last(T, X).
		sum_list([], 0).
		sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.
		max_list([X], X) :- !.
		max_list([H|T], M) :- max_list(T, M1), M is max(H, M1).
		min_list([X], X) :- !.
		min_list([H|T], M) :- min_list(T, M1), M is min(H, M1).
		once(G) :- call(G), !.
		ignore(G) :- call(G), !.
		ignore(_).
	`)
	terms, err := p.ReadAll()
	if err != nil {
		panic("interp: library parse error: " + err.Error())
	}
	for _, t := range terms {
		if err := in.Assert(t); err != nil {
			panic("interp: library assert error: " + err.Error())
		}
	}
	in.asserts = 0
}

func biIAssert(in *Interp, a []term.Term, env *Env) (bool, error) {
	return true, in.Assert(env.ResolveDeep(a[0]))
}

func biIFunctor(in *Interp, a []term.Term, env *Env) (bool, error) {
	switch x := env.Resolve(a[0]).(type) {
	case *term.Var:
		name := env.Resolve(a[1])
		n, ok := env.Resolve(a[2]).(term.Int)
		if !ok {
			return false, fmt.Errorf("interp: functor/3: arity must be integer")
		}
		if n == 0 {
			return env.Unify(x, name), nil
		}
		at, ok := name.(term.Atom)
		if !ok {
			return false, fmt.Errorf("interp: functor/3: name must be atom")
		}
		args := make([]term.Term, n)
		for i := range args {
			args[i] = &term.Var{Name: fmt.Sprintf("_F%d", i)}
		}
		return env.Unify(x, term.Comp(string(at), args...)), nil
	case *term.Compound:
		return env.Unify(a[1], term.Atom(x.Functor)) && env.Unify(a[2], term.Int(len(x.Args))), nil
	default:
		return env.Unify(a[1], x) && env.Unify(a[2], term.Int(0)), nil
	}
}

func biIArg(in *Interp, a []term.Term, env *Env) (bool, error) {
	n, ok := env.Resolve(a[0]).(term.Int)
	if !ok {
		return false, fmt.Errorf("interp: arg/3: first argument must be integer")
	}
	c, ok := env.Resolve(a[1]).(*term.Compound)
	if !ok {
		return false, fmt.Errorf("interp: arg/3: second argument must be compound")
	}
	if n < 1 || int(n) > len(c.Args) {
		return false, nil
	}
	return env.Unify(a[2], c.Args[n-1]), nil
}

func biIUniv(in *Interp, a []term.Term, env *Env) (bool, error) {
	switch x := env.Resolve(a[0]).(type) {
	case *term.Var:
		items, ok := term.UnpackList(env.ResolveDeep(a[1]))
		if !ok || len(items) == 0 {
			return false, fmt.Errorf("interp: =../2: right side must be non-empty list")
		}
		if len(items) == 1 {
			return env.Unify(x, items[0]), nil
		}
		at, ok := items[0].(term.Atom)
		if !ok {
			return false, fmt.Errorf("interp: =../2: functor must be atom")
		}
		return env.Unify(x, term.Comp(string(at), items[1:]...)), nil
	case *term.Compound:
		items := append([]term.Term{term.Atom(x.Functor)}, x.Args...)
		return env.Unify(a[1], term.List(items...)), nil
	default:
		return env.Unify(a[1], term.List(x)), nil
	}
}

// numOf widens a numeric term.
func numOf(t term.Term) float64 {
	switch x := t.(type) {
	case term.Int:
		return float64(x)
	case term.Float:
		return float64(x)
	}
	return math.NaN()
}

// evalArith evaluates an arithmetic expression term.
func evalArith(env *Env, t term.Term) (term.Term, error) {
	t = env.Resolve(t)
	switch x := t.(type) {
	case term.Int, term.Float:
		return x, nil
	case *term.Var:
		return nil, fmt.Errorf("interp: unbound variable in arithmetic")
	case term.Atom:
		switch x {
		case "pi":
			return term.Float(math.Pi), nil
		case "e":
			return term.Float(math.E), nil
		}
		return nil, fmt.Errorf("interp: unknown constant %s", x)
	case *term.Compound:
		if len(x.Args) == 1 {
			a, err := evalArith(env, x.Args[0])
			if err != nil {
				return nil, err
			}
			return evalUnary1(x.Functor, a)
		}
		if len(x.Args) == 2 {
			a, err := evalArith(env, x.Args[0])
			if err != nil {
				return nil, err
			}
			b, err := evalArith(env, x.Args[1])
			if err != nil {
				return nil, err
			}
			return evalBinary2(x.Functor, a, b)
		}
	}
	return nil, fmt.Errorf("interp: bad arithmetic expression %s", t)
}

func bothInt(a, b term.Term) (term.Int, term.Int, bool) {
	x, ok1 := a.(term.Int)
	y, ok2 := b.(term.Int)
	return x, y, ok1 && ok2
}

func evalUnary1(op string, a term.Term) (term.Term, error) {
	switch op {
	case "-":
		if x, ok := a.(term.Int); ok {
			return -x, nil
		}
		return term.Float(-numOf(a)), nil
	case "+":
		return a, nil
	case "abs":
		if x, ok := a.(term.Int); ok {
			if x < 0 {
				return -x, nil
			}
			return x, nil
		}
		return term.Float(math.Abs(numOf(a))), nil
	case "truncate":
		return term.Int(math.Trunc(numOf(a))), nil
	case "float":
		return term.Float(numOf(a)), nil
	case "sqrt":
		return term.Float(math.Sqrt(numOf(a))), nil
	case "sign":
		v := numOf(a)
		switch {
		case v > 0:
			return term.Int(1), nil
		case v < 0:
			return term.Int(-1), nil
		}
		return term.Int(0), nil
	}
	return nil, fmt.Errorf("interp: unknown function %s/1", op)
}

func evalBinary2(op string, a, b term.Term) (term.Term, error) {
	switch op {
	case "+":
		if x, y, ok := bothInt(a, b); ok {
			return x + y, nil
		}
		return term.Float(numOf(a) + numOf(b)), nil
	case "-":
		if x, y, ok := bothInt(a, b); ok {
			return x - y, nil
		}
		return term.Float(numOf(a) - numOf(b)), nil
	case "*":
		if x, y, ok := bothInt(a, b); ok {
			return x * y, nil
		}
		return term.Float(numOf(a) * numOf(b)), nil
	case "/":
		if x, y, ok := bothInt(a, b); ok {
			if y == 0 {
				return nil, fmt.Errorf("interp: zero divisor")
			}
			if x%y == 0 {
				return x / y, nil
			}
		}
		if numOf(b) == 0 {
			return nil, fmt.Errorf("interp: zero divisor")
		}
		return term.Float(numOf(a) / numOf(b)), nil
	case "//":
		x, y, ok := bothInt(a, b)
		if !ok || y == 0 {
			return nil, fmt.Errorf("interp: bad // operands")
		}
		return x / y, nil
	case "mod":
		x, y, ok := bothInt(a, b)
		if !ok || y == 0 {
			return nil, fmt.Errorf("interp: bad mod operands")
		}
		r := x % y
		if r != 0 && (r < 0) != (y < 0) {
			r += y
		}
		return r, nil
	case "rem":
		x, y, ok := bothInt(a, b)
		if !ok || y == 0 {
			return nil, fmt.Errorf("interp: bad rem operands")
		}
		return x % y, nil
	case "min":
		if numOf(a) <= numOf(b) {
			return a, nil
		}
		return b, nil
	case "max":
		if numOf(a) >= numOf(b) {
			return a, nil
		}
		return b, nil
	case "**", "^":
		if x, y, ok := bothInt(a, b); ok && op == "^" && y >= 0 {
			r := term.Int(1)
			for i := term.Int(0); i < y; i++ {
				r *= x
			}
			return r, nil
		}
		return term.Float(math.Pow(numOf(a), numOf(b))), nil
	case ">>":
		x, y, ok := bothInt(a, b)
		if !ok {
			return nil, fmt.Errorf("interp: bad >> operands")
		}
		return x >> uint(y), nil
	case "<<":
		x, y, ok := bothInt(a, b)
		if !ok {
			return nil, fmt.Errorf("interp: bad << operands")
		}
		return x << uint(y), nil
	}
	return nil, fmt.Errorf("interp: unknown function %s/2", op)
}
