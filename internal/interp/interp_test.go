package interp

import (
	"reflect"
	"testing"

	"repro/internal/parser"
	"repro/internal/term"
)

func load(t *testing.T, src string) *Interp {
	t.Helper()
	in := New()
	p := parser.New(src)
	terms, err := p.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range terms {
		if err := in.Assert(tm); err != nil {
			t.Fatal(err)
		}
	}
	return in
}

// solutions returns the value of variable v for every solution of goal.
func solutions(t *testing.T, in *Interp, goal, v string) []string {
	t.Helper()
	g, vars, err := parser.ParseTerm(goal)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	var out []string
	err = in.Solve(g, env, func(e *Env) bool {
		if vars[v] != nil {
			out = append(out, e.ResolveDeep(vars[v]).String())
		} else {
			out = append(out, "yes")
		}
		return true
	})
	if err != nil {
		t.Fatalf("solve %s: %v", goal, err)
	}
	return out
}

func TestFactsAndRules(t *testing.T) {
	in := load(t, `
		parent(tom, bob). parent(tom, liz).
		parent(bob, ann). parent(bob, pat).
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
	`)
	got := solutions(t, in, "grandparent(tom, W)", "W")
	if !reflect.DeepEqual(got, []string{"ann", "pat"}) {
		t.Fatalf("got %v", got)
	}
}

func TestRecursionAndLibrary(t *testing.T) {
	in := New()
	got := solutions(t, in, "append(X, Y, [1,2])", "X")
	if !reflect.DeepEqual(got, []string{"[]", "[1]", "[1,2]"}) {
		t.Fatalf("append splits = %v", got)
	}
	got = solutions(t, in, "reverse([1,2,3], R)", "R")
	if !reflect.DeepEqual(got, []string{"[3,2,1]"}) {
		t.Fatalf("reverse = %v", got)
	}
	got = solutions(t, in, "member(X, [a,b,c])", "X")
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("member = %v", got)
	}
	got = solutions(t, in, "nth1(2, [a,b,c], X)", "X")
	if !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("nth1 = %v", got)
	}
}

func TestCut(t *testing.T) {
	in := load(t, `
		max(X, Y, X) :- X >= Y, !.
		max(_, Y, Y).
		p(1). p(2). p(3).
		first(X) :- p(X), !.
	`)
	if got := solutions(t, in, "max(3, 7, M)", "M"); !reflect.DeepEqual(got, []string{"7"}) {
		t.Fatalf("max(3,7) = %v", got)
	}
	if got := solutions(t, in, "max(9, 2, M)", "M"); !reflect.DeepEqual(got, []string{"9"}) {
		t.Fatalf("max(9,2) = %v", got)
	}
	if got := solutions(t, in, "first(X)", "X"); !reflect.DeepEqual(got, []string{"1"}) {
		t.Fatalf("first = %v", got)
	}
}

func TestIfThenElseAndNegation(t *testing.T) {
	in := load(t, `
		p(1). p(2).
		sgn(X, S) :- ( X > 0 -> S = 1 ; X < 0 -> S = -1 ; S = 0 ).
	`)
	for goal, want := range map[string]string{
		"sgn(5, S)":  "1",
		"sgn(-5, S)": "-1",
		"sgn(0, S)":  "0",
	} {
		if got := solutions(t, in, goal, "S"); !reflect.DeepEqual(got, []string{want}) {
			t.Errorf("%s = %v", goal, got)
		}
	}
	if got := solutions(t, in, "\\+ p(3)", ""); len(got) != 1 {
		t.Error("\\+ p(3) should succeed")
	}
	if got := solutions(t, in, "\\+ p(1)", ""); len(got) != 0 {
		t.Error("\\+ p(1) should fail")
	}
}

func TestArithmetic(t *testing.T) {
	in := load(t, `
		fact(0, 1) :- !.
		fact(N, F) :- N1 is N - 1, fact(N1, F1), F is N * F1.
	`)
	if got := solutions(t, in, "fact(8, F)", "F"); !reflect.DeepEqual(got, []string{"40320"}) {
		t.Fatalf("fact(8) = %v", got)
	}
	if got := solutions(t, in, "X is 7 mod 3", "X"); !reflect.DeepEqual(got, []string{"1"}) {
		t.Fatalf("mod = %v", got)
	}
	if got := solutions(t, in, "X is 2 + 0.5", "X"); !reflect.DeepEqual(got, []string{"2.5"}) {
		t.Fatalf("mixed = %v", got)
	}
}

func TestFindall(t *testing.T) {
	in := load(t, `q(1). q(2). q(3).`)
	got := solutions(t, in, "findall(X, q(X), L)", "L")
	if !reflect.DeepEqual(got, []string{"[1,2,3]"}) {
		t.Fatalf("findall = %v", got)
	}
	got = solutions(t, in, "findall(X, q(X), L), length(L, N)", "N")
	if !reflect.DeepEqual(got, []string{"3"}) {
		t.Fatalf("findall+length = %v", got)
	}
}

func TestAssertRetract(t *testing.T) {
	in := New()
	if got := solutions(t, in, "assert(dyn(1)), assert(dyn(2)), findall(X, dyn(X), L)", "L"); !reflect.DeepEqual(got, []string{"[1,2]"}) {
		t.Fatalf("after assert = %v", got)
	}
	if got := solutions(t, in, "retract(dyn(1)), findall(X, dyn(X), L)", "L"); !reflect.DeepEqual(got, []string{"[2]"}) {
		t.Fatalf("after retract = %v", got)
	}
}

func TestBetween(t *testing.T) {
	in := New()
	got := solutions(t, in, "between(1, 5, X), 0 is X mod 2", "X")
	if !reflect.DeepEqual(got, []string{"2", "4"}) {
		t.Fatalf("between filter = %v", got)
	}
}

func TestUnknownProcedureError(t *testing.T) {
	in := New()
	g, _, _ := parser.ParseTerm("no_such_pred(1)")
	err := in.Solve(g, nil, func(*Env) bool { return true })
	if err == nil {
		t.Fatal("expected unknown-procedure error")
	}
}

func TestVarGoalAndCall(t *testing.T) {
	in := load(t, `p(ok). apply(G) :- call(G).`)
	if got := solutions(t, in, "apply(p(X))", "X"); !reflect.DeepEqual(got, []string{"ok"}) {
		t.Fatalf("call = %v", got)
	}
	if got := solutions(t, in, "G = p(X), call(G)", "X"); !reflect.DeepEqual(got, []string{"ok"}) {
		t.Fatalf("var goal via call = %v", got)
	}
}

func TestUnivFunctorArg(t *testing.T) {
	in := New()
	if got := solutions(t, in, "f(a, b) =.. L", "L"); !reflect.DeepEqual(got, []string{"[f,a,b]"}) {
		t.Fatalf("univ = %v", got)
	}
	if got := solutions(t, in, "T =.. [g, 1, 2]", "T"); !reflect.DeepEqual(got, []string{"g(1,2)"}) {
		t.Fatalf("univ build = %v", got)
	}
	// Canonical term output writes operators in functional notation.
	if got := solutions(t, in, "functor(f(a,b), N, A), X = N/A", "X"); !reflect.DeepEqual(got, []string{"/(f,2)"}) {
		t.Fatalf("functor = %v", got)
	}
	if got := solutions(t, in, "arg(2, f(a,b,c), X)", "X"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("arg = %v", got)
	}
}

func TestRetractClauseStore(t *testing.T) {
	in := load(t, `r(1). r(2). r(3).`)
	if !in.Retract(mustParseT(t, "r(2)")) {
		t.Fatal("retract failed")
	}
	got := solutions(t, in, "r(X)", "X")
	if !reflect.DeepEqual(got, []string{"1", "3"}) {
		t.Fatalf("after retract = %v", got)
	}
	if in.Retract(mustParseT(t, "r(99)")) {
		t.Fatal("retract of absent clause succeeded")
	}
}

func mustParseT(t *testing.T, src string) term.Term {
	t.Helper()
	tm, _, err := parser.ParseTerm(src)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestStatsCount(t *testing.T) {
	in := load(t, `p(1). p(2).`)
	in.ResetStats()
	solutions(t, in, "p(X)", "X")
	inf, _ := in.Stats()
	if inf == 0 {
		t.Fatal("no inferences counted")
	}
}

func TestDeepRecursionNrev(t *testing.T) {
	in := load(t, `
		nrev([], []).
		nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
	`)
	items := make([]term.Term, 30)
	for i := range items {
		items[i] = term.Int(i)
	}
	g := term.Comp("nrev", term.List(items...), &term.Var{Name: "R"})
	env := NewEnv()
	found := false
	err := in.Solve(g, env, func(e *Env) bool { found = true; return false })
	if err != nil || !found {
		t.Fatalf("nrev/30: %v %v", found, err)
	}
}
