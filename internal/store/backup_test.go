package store_test

// Online backup, WAL archiving and point-in-time restore, proven under
// the deterministic crash/fault harness: a backup taken while writers
// keep committing restores to an exact transaction boundary; crashes
// at every durability operation leave the primary recoverable and any
// completed backup restorable; injected archive-path faults fail the
// backup cleanly without degrading the primary; and restore rejects
// every torn or corrupt stream loudly.

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"syscall"
	"testing"

	"repro/internal/store"
	"repro/internal/store/simfs"
)

const (
	bkPerBatch    = 4
	bkBaseBatches = 3 // committed before the backup starts
	bkLiveBatches = 4 // committed while the backup is copying
)

func bkRecord(n int) []byte { return []byte(fmt.Sprintf("backup-record-%03d", n)) }

// bkState is one recorded commit boundary: the LSN the store reported
// after a flush and the number of batches durable at it.
type bkState struct {
	lsn     uint64
	batches int
}

// bkOpen opens the primary with archiving on and a low checkpoint
// threshold, so the run cuts several archive segments.
func bkOpen(fsys store.FS) (*store.Store, error) {
	return store.OpenOptionsFS(fsys, "kb", store.Options{
		PoolPages:       32,
		CheckpointBytes: 24 << 10,
		ArchiveDir:      "arch",
	})
}

// bkSetup creates the heap the workload writes into and records its
// root in the header.
func bkSetup(st *store.Store) (*store.Heap, error) {
	h, err := store.CreateHeap(st.Pool())
	if err != nil {
		return nil, err
	}
	if err := st.SetMeta("heap.root", uint64(h.Root())); err != nil {
		return nil, err
	}
	return h, nil
}

// bkCommitBatch appends one batch of records, stamps the batch counter
// into the header, flushes, and returns the commit boundary reached.
func bkCommitBatch(st *store.Store, h *store.Heap, batch int) (bkState, error) {
	for i := 0; i < bkPerBatch; i++ {
		if _, err := h.Insert(bkRecord((batch-1)*bkPerBatch + i)); err != nil {
			return bkState{}, err
		}
	}
	if err := st.SetMeta("bk.batches", uint64(batch)); err != nil {
		return bkState{}, err
	}
	if err := st.Flush(); err != nil {
		return bkState{}, err
	}
	return bkState{lsn: st.LSN(), batches: batch}, nil
}

// bkScenario runs the full online-backup workload: base batches, then
// a backup whose page copies are interleaved with live committing
// batches, then Finish. It returns the recorded commit boundaries, the
// backup stream and its info. Deterministic: every run performs the
// same operation sequence, so the crash matrix can address individual
// durability operations.
func bkScenario(fsys store.FS) (states []bkState, stream *bytes.Buffer, info store.BackupInfo, err error) {
	st, err := bkOpen(fsys)
	if err != nil {
		return nil, nil, info, err
	}
	defer st.Close()
	h, err := bkSetup(st)
	if err != nil {
		return nil, nil, info, err
	}
	batch := 0
	for b := 0; b < bkBaseBatches; b++ {
		batch++
		s, err := bkCommitBatch(st, h, batch)
		if err != nil {
			return states, nil, info, err
		}
		states = append(states, s)
	}
	stream = &bytes.Buffer{}
	bk, err := st.StartBackup(stream)
	if err != nil {
		return states, nil, info, err
	}
	for done := false; !done; {
		done, err = bk.CopyPages(2)
		if err != nil {
			bk.Abort()
			return states, nil, info, err
		}
		if batch < bkBaseBatches+bkLiveBatches {
			batch++
			s, err := bkCommitBatch(st, h, batch)
			if err != nil {
				bk.Abort()
				return states, nil, info, err
			}
			states = append(states, s)
		}
	}
	for batch < bkBaseBatches+bkLiveBatches {
		batch++
		s, err := bkCommitBatch(st, h, batch)
		if err != nil {
			bk.Abort()
			return states, nil, info, err
		}
		states = append(states, s)
	}
	info, err = bk.Finish()
	if err != nil {
		return states, nil, store.BackupInfo{}, err
	}
	return states, stream, info, st.Close()
}

// verifyRestored opens the restored file and checks it holds exactly
// the records committed at the given boundary — the batch counter in
// the header must agree, the heap must hold precisely that prefix, and
// every page must read back checksum-clean.
func verifyRestored(t *testing.T, fsys store.FS, path string, wantBatches int, label string) {
	t.Helper()
	st, err := store.OpenFS(fsys, path, 64)
	if err != nil {
		t.Fatalf("%s: reopen restored store: %v", label, err)
	}
	defer st.Close()
	if v, _ := st.GetMeta("bk.batches"); int(v) != wantBatches {
		t.Fatalf("%s: restored batch counter %d, want %d", label, v, wantBatches)
	}
	root, ok := st.GetMeta("heap.root")
	if !ok {
		t.Fatalf("%s: heap root lost", label)
	}
	// CRC sweep: every allocated page must read clean.
	pg := st.Pool().Pager()
	buf := make([]byte, store.PageSize)
	for id := store.PageID(1); id < pg.NumPages(); id++ {
		if err := pg.ReadPage(id, buf); err != nil {
			t.Fatalf("%s: CRC sweep: page %d: %v", label, id, err)
		}
	}
	h := store.OpenHeap(st.Pool(), store.PageID(root))
	got := map[string]int{}
	if err := h.Scan(func(_ store.RID, rec []byte) (bool, error) {
		got[string(rec)]++
		return true, nil
	}); err != nil {
		t.Fatalf("%s: scan: %v", label, err)
	}
	want := wantBatches * bkPerBatch
	if len(got) != want {
		t.Fatalf("%s: restored %d distinct records, want %d", label, len(got), want)
	}
	for i := 0; i < want; i++ {
		if got[string(bkRecord(i))] != 1 {
			t.Fatalf("%s: record %d missing or duplicated after restore", label, i)
		}
	}
}

// batchesAt maps a restore-target LSN to the batch count committed at
// it: the latest recorded boundary at or below the LSN.
func batchesAt(states []bkState, lsn uint64) int {
	n := 0
	for _, s := range states {
		if s.lsn <= lsn {
			n = s.batches
		}
	}
	return n
}

// TestBackupUnderWritesRestoresEveryBoundary drives a backup with
// batches committing between page copies, then restores it (a) to the
// backup-end LSN, (b) to the latest archived state, (c) point-in-time
// to every committed boundary the run recorded, (d) at the image's own
// start LSN — each must reproduce exactly the records committed at
// that LSN.
func TestBackupUnderWritesRestoresEveryBoundary(t *testing.T) {
	fsys := simfs.New(nil)
	states, stream, info, err := bkScenario(fsys)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if info.EndLSN <= info.StartLSN {
		t.Fatalf("no batches landed during the backup window: start %d end %d", info.StartLSN, info.EndLSN)
	}
	segs, err := fsys.List("arch")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("workload cut %d archive segments, want >= 2 (checkpoint threshold too high?)", len(segs))
	}

	restore := func(target uint64, path string) error {
		return store.RestoreFS(fsys, path, bytes.NewReader(stream.Bytes()), "arch", target)
	}
	if err := restore(info.EndLSN, "r-end"); err != nil {
		t.Fatalf("restore at end LSN %d: %v", info.EndLSN, err)
	}
	verifyRestored(t, fsys, "r-end", batchesAt(states, info.EndLSN), "end LSN")
	if err := restore(0, "r-latest"); err != nil {
		t.Fatalf("restore latest: %v", err)
	}
	verifyRestored(t, fsys, "r-latest", bkBaseBatches+bkLiveBatches, "latest")
	if err := restore(info.StartLSN, "r-start"); err != nil {
		t.Fatalf("restore at start LSN %d: %v", info.StartLSN, err)
	}
	verifyRestored(t, fsys, "r-start", batchesAt(states, info.StartLSN), "start LSN")
	for i, s := range states {
		if s.lsn < info.StartLSN {
			continue // predates the image; covered by the error case below
		}
		path := fmt.Sprintf("r-pitr-%d", i)
		if err := restore(s.lsn, path); err != nil {
			t.Fatalf("PITR to boundary %d (LSN %d): %v", i, s.lsn, err)
		}
		verifyRestored(t, fsys, path, s.batches, fmt.Sprintf("PITR boundary %d", i))
	}

	// Invalid targets fail loudly: an LSN that is not a commit boundary
	// (EndLSN-1 is the header-page record under the end marker), and an
	// LSN predating the image.
	if err := restore(info.EndLSN-1, "r-bad"); err == nil {
		t.Fatal("restore to a non-boundary LSN succeeded")
	}
	if pre := states[0].lsn; pre < info.StartLSN {
		if err := restore(pre, "r-pre"); err == nil {
			t.Fatal("restore to an LSN predating the image succeeded")
		}
	}
}

// TestBackupCrashMatrix kills the backup-under-writers scenario at
// every durability operation under every torn/kept/dropped variant.
// After each crash the primary must recover to exactly the committed
// prefix — never losing a batch whose flush reported success — and if
// the backup had completed before the crash its stream must still
// restore against the harvested archive.
func TestBackupCrashMatrix(t *testing.T) {
	probe := simfs.NewCtl(-1)
	if _, _, _, err := bkScenario(simfs.New(probe)); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	total := probe.Ops()
	if total < 20 {
		t.Fatalf("probe run produced only %d durability ops; harness mis-wired", total)
	}
	for k := 0; k < total; k++ {
		for _, variant := range simfs.Variants {
			fsys := simfs.New(simfs.NewCtl(k))
			states, stream, info, err := bkScenario(fsys)
			if err == nil {
				t.Fatalf("crash scheduled at op %d/%d never surfaced", k, total)
			}
			label := fmt.Sprintf("crash at op %d/%d, %s", k, total, variant)
			after := fsys.Harvest(variant)
			st, err := bkOpen(after)
			if err != nil {
				t.Fatalf("%s: reopen primary: %v", label, err)
			}
			batches := 0
			if v, ok := st.GetMeta("bk.batches"); ok {
				batches = int(v)
			}
			// The recovered state must be a committed prefix: every batch
			// whose flush reported success is durable, and at most the
			// in-flight batch may additionally have survived.
			maxSeen := 0
			for _, s := range states {
				if s.batches > maxSeen {
					maxSeen = s.batches
				}
			}
			if batches < maxSeen {
				t.Fatalf("%s: recovered %d batches, but %d had committed durably", label, batches, maxSeen)
			}
			if batches > maxSeen+1 {
				t.Fatalf("%s: recovered %d batches, but only %d ever committed", label, batches, maxSeen+1)
			}
			if root, ok := st.GetMeta("heap.root"); ok && batches > 0 {
				h := store.OpenHeap(st.Pool(), store.PageID(root))
				count := 0
				if err := h.Scan(func(_ store.RID, rec []byte) (bool, error) {
					count++
					return true, nil
				}); err != nil {
					t.Fatalf("%s: scan recovered heap: %v", label, err)
				}
				if count != batches*bkPerBatch {
					t.Fatalf("%s: recovered %d records for %d batches", label, count, batches)
				}
			}
			if err := st.Close(); err != nil {
				t.Fatalf("%s: close recovered primary: %v", label, err)
			}
			// A backup that completed before the crash is durable history:
			// it must still restore against the harvested archive.
			if info.Pages > 0 && stream != nil {
				if err := store.RestoreFS(after, "r-crash", bytes.NewReader(stream.Bytes()), "arch", info.EndLSN); err != nil {
					t.Fatalf("%s: restore completed backup: %v", label, err)
				}
				verifyRestored(t, after, "r-crash", batchesAt(states, info.EndLSN), label)
			}
		}
	}
}

// bkFaultWorkload is the fault-matrix scenario: batches, a mid-run
// backup, more batches, a final backup, restores of both. Unlike the
// crash matrix it keeps the live store in scope so it can assert, at
// the moment a transient fault surfaces, that the store did not
// degrade to read-only — and that retrying the failed step on the very
// same live store succeeds (the fault was one operation, not a wound).
func bkFaultWorkload(t *testing.T, fsys store.FS, label string) {
	st, err := bkOpen(fsys)
	if err != nil {
		t.Fatalf("%s: open: %v", label, err)
	}
	h, err := bkSetup(st)
	if err != nil {
		t.Fatalf("%s: setup: %v", label, err)
	}
	flush := func(batch int) {
		for i := 0; i < bkPerBatch; i++ {
			if _, err := h.Insert(bkRecord((batch-1)*bkPerBatch + i)); err != nil {
				t.Fatalf("%s: batch %d insert: %v", label, batch, err)
			}
		}
		if err := st.SetMeta("bk.batches", uint64(batch)); err != nil {
			t.Fatalf("%s: batch %d meta: %v", label, batch, err)
		}
		if err := st.Flush(); err != nil {
			if st.ReadOnly() {
				t.Fatalf("%s: batch %d flush fault degraded the store to read-only: %v", label, batch, err)
			}
			if err2 := st.Flush(); err2 != nil {
				t.Fatalf("%s: batch %d flush failed past the injected fault: %v then %v", label, batch, err, err2)
			}
		}
	}
	backup := func(name string) (*bytes.Buffer, store.BackupInfo) {
		var buf bytes.Buffer
		info, err := st.Backup(&buf)
		if err != nil {
			if st.ReadOnly() {
				t.Fatalf("%s: %s backup fault degraded the store to read-only: %v", label, name, err)
			}
			buf.Reset()
			if info, err = st.Backup(&buf); err != nil {
				t.Fatalf("%s: %s backup failed past the injected fault: %v", label, name, err)
			}
		}
		return &buf, info
	}
	restore := func(name string, buf *bytes.Buffer, info store.BackupInfo, wantBatches int) {
		if err := store.RestoreFS(fsys, name, bytes.NewReader(buf.Bytes()), "arch", info.EndLSN); err != nil {
			if err2 := store.RestoreFS(fsys, name, bytes.NewReader(buf.Bytes()), "arch", info.EndLSN); err2 != nil {
				t.Fatalf("%s: restore %s failed past the injected fault: %v then %v", label, name, err, err2)
			}
		}
		verifyRestored(t, fsys, name, wantBatches, label+": "+name)
	}

	for b := 1; b <= 3; b++ {
		flush(b)
	}
	midBuf, midInfo := backup("mid")
	for b := 4; b <= 5; b++ {
		flush(b)
	}
	lateBuf, lateInfo := backup("late")
	if st.ReadOnly() {
		t.Fatalf("%s: store read-only at end of workload", label)
	}
	restore("r-mid", midBuf, midInfo, 3)
	restore("r-late", lateBuf, lateInfo, 5)
	_ = st.Close() // a close-time checkpoint may eat the fault; reopen proves health
	rst, err := bkOpen(fsys)
	if err != nil {
		t.Fatalf("%s: reopen after close: %v", label, err)
	}
	if v, _ := rst.GetMeta("bk.batches"); v != 5 {
		t.Fatalf("%s: primary lost batches across close: %d", label, v)
	}
	if err := rst.Close(); err != nil {
		t.Fatalf("%s: final close: %v", label, err)
	}
}

// TestBackupFaultMatrix injects a transient ENOSPC/EIO at every
// durability operation of the workload in turn. Whatever the fault
// hits — WAL commit, checkpoint fold, archive segment write, backup
// barrier, restore — the step either succeeds anyway (swallowed
// archive fault) or fails cleanly and succeeds on retry; the primary
// never degrades to read-only and never loses a committed batch.
func TestBackupFaultMatrix(t *testing.T) {
	probe := simfs.NewCtl(-1)
	bkFaultWorkload(t, simfs.New(probe), "probe")
	total := probe.Ops()
	if total < 30 {
		t.Fatalf("probe run produced only %d durability ops; harness mis-wired", total)
	}
	for _, errno := range []error{syscall.ENOSPC, syscall.EIO} {
		for k := 0; k < total; k++ {
			ctl := simfs.NewCtl(-1)
			ctl.FailAt(k, errno)
			bkFaultWorkload(t, simfs.New(ctl), fmt.Sprintf("fault %v at op %d/%d", errno, k, total))
		}
	}
}

// TestRestoreRejectsCorruptStream flips one byte at a time across a
// valid backup stream — header, frames, trailer, CRC — and requires
// every flip (and a truncation) to fail the restore loudly.
func TestRestoreRejectsCorruptStream(t *testing.T) {
	fsys := simfs.New(nil)
	_, stream, info, err := bkScenario(fsys)
	if err != nil {
		t.Fatal(err)
	}
	base := stream.Bytes()
	offsets := []int{0, 5, 13, 21, 20 + store.PageSize/2, len(base) - 10, len(base) - 3}
	for _, off := range offsets {
		img := append([]byte(nil), base...)
		img[off] ^= 0x20
		if err := store.RestoreFS(fsys, "r-x", bytes.NewReader(img), "arch", info.EndLSN); err == nil {
			t.Fatalf("restore accepted a stream with byte %d flipped", off)
		}
	}
	if err := store.RestoreFS(fsys, "r-x", bytes.NewReader(base[:len(base)-8]), "arch", info.EndLSN); err == nil {
		t.Fatal("restore accepted a truncated stream")
	}
	if err := store.RestoreFS(fsys, "r-x", bytes.NewReader(base[:len(base)/2]), "arch", info.EndLSN); err == nil {
		t.Fatal("restore accepted a half stream")
	}
}

// TestCheckpointBytesCutsSegments is the configurability check: a tiny
// Options.CheckpointBytes forces checkpoints (and hence archive
// segments) far more often than the same workload under a large one.
func TestCheckpointBytesCutsSegments(t *testing.T) {
	run := func(checkpointBytes int64) int {
		fsys := simfs.New(nil)
		st, err := store.OpenOptionsFS(fsys, "kb", store.Options{
			PoolPages:       32,
			CheckpointBytes: checkpointBytes,
			ArchiveDir:      "arch",
		})
		if err != nil {
			t.Fatal(err)
		}
		h, err := bkSetup(st)
		if err != nil {
			t.Fatal(err)
		}
		for b := 1; b <= 6; b++ {
			if _, err := bkCommitBatch(st, h, b); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := fsys.List("arch")
		if err != nil {
			t.Fatal(err)
		}
		return len(segs)
	}
	tiny, large := run(4<<10), run(1<<30)
	if tiny < 3 {
		t.Fatalf("tiny checkpoint threshold cut only %d archive segments, want >= 3", tiny)
	}
	if large >= tiny {
		t.Fatalf("large threshold cut %d segments, tiny cut %d; threshold not effective", large, tiny)
	}
}

// TestArchiveBudgetPrunesOldest bounds the archive with a byte budget
// and checks old segments are pruned oldest-first, restores within the
// retained window still work, and a restore needing pruned history
// fails loudly instead of producing a silently incomplete state.
func TestArchiveBudgetPrunesOldest(t *testing.T) {
	fsys := simfs.New(nil)
	st, err := store.OpenOptionsFS(fsys, "kb", store.Options{
		PoolPages:       32,
		CheckpointBytes: 8 << 10,
		ArchiveDir:      "arch",
		ArchiveBudget:   64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := bkSetup(st)
	if err != nil {
		t.Fatal(err)
	}
	// An early backup, then enough churn to blow the budget many times.
	if _, err := bkCommitBatch(st, h, 1); err != nil {
		t.Fatal(err)
	}
	var early bytes.Buffer
	if _, err := st.Backup(&early); err != nil {
		t.Fatal(err)
	}
	var midLSN uint64
	for b := 2; b <= 40; b++ {
		s, err := bkCommitBatch(st, h, b)
		if err != nil {
			t.Fatal(err)
		}
		if b == 6 {
			midLSN = s.lsn
		}
	}
	var late bytes.Buffer
	lateInfo, err := st.Backup(&late)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := fsys.List("arch")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no archive segments survive")
	}
	total := int64(0)
	for _, name := range segs {
		total += int64(len(fsys.Image(name)))
		if !strings.HasSuffix(name, store.ArchiveSuffix) {
			t.Fatalf("unexpected file in archive dir: %s", name)
		}
	}
	if total > (64<<10)+(32<<10) {
		t.Fatalf("archive holds %d bytes, budget 64KiB not enforced", total)
	}
	if strings.HasSuffix(segs[0], fmt.Sprintf("%016d%s", 1, store.ArchiveSuffix)) {
		t.Fatal("oldest segment was never pruned")
	}
	// The late backup restores; the early one needs pruned history.
	if err := store.RestoreFS(fsys, "r-late", bytes.NewReader(late.Bytes()), "arch", lateInfo.EndLSN); err != nil {
		t.Fatalf("restore within retained window: %v", err)
	}
	verifyRestored(t, fsys, "r-late", 40, "late backup")
	err = store.RestoreFS(fsys, "r-early", bytes.NewReader(early.Bytes()), "arch", midLSN)
	if err == nil {
		t.Fatal("restore through pruned history succeeded silently")
	}
	if !strings.Contains(err.Error(), "gap") && !strings.Contains(err.Error(), "boundary") {
		t.Fatalf("pruned-history restore failed with unexpected error: %v", err)
	}
}

// TestClearReadOnlyRecommits degrades the store to read-only with an
// injected commit fault — in all three flavors the commit-failure path
// has: the marker fsync fails but the cleanup truncation lands, the
// truncation itself fails (diverged log), or the truncation lands but
// its fsync fails (still diverged) — clears it, and requires a
// subsequent transaction to commit durably, with the archive staying
// gap-free across the repair so a fresh backup restores.
func TestClearReadOnlyRecommits(t *testing.T) {
	// Fault indices are relative to the op count just before Commit:
	// +0 is the marker write, +1 its fsync, +2 the cleanup truncate,
	// +3 the truncate's fsync.
	for name, faults := range map[string][]int{
		"fsync-fails":         {1},
		"diverged-truncate":   {1, 2},
		"diverged-trunc-sync": {1, 3},
	} {
		t.Run(name, func(t *testing.T) {
			ctl := simfs.NewCtl(-1)
			fsys := simfs.New(ctl)
			st, err := bkOpen(fsys)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			h, err := bkSetup(st)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := bkCommitBatch(st, h, 1); err != nil {
				t.Fatal(err)
			}
			if err := st.Begin(); err != nil {
				t.Fatal(err)
			}
			if _, err := h.Insert([]byte("txn-record")); err != nil {
				t.Fatal(err)
			}
			k := ctl.Ops()
			for _, d := range faults {
				ctl.FailAt(k+d, syscall.ENOSPC)
			}
			if err := st.Commit(); err == nil {
				t.Fatal("faulted commit succeeded")
			}
			if !st.ReadOnly() {
				t.Fatal("failed commit did not degrade to read-only")
			}
			if err := st.Begin(); !errors.Is(err, store.ErrReadOnly) {
				t.Fatalf("read-only store accepted Begin: %v", err)
			}
			// The disk healed (the faults were one-shot); the operator
			// clears the degradation.
			if err := st.ClearReadOnly(); err != nil {
				t.Fatalf("ClearReadOnly on a healthy disk: %v", err)
			}
			if st.ReadOnly() {
				t.Fatal("store still read-only after ClearReadOnly")
			}
			// A fresh transaction commits durably again. The pool was
			// invalidated by the rollback, so reopen the heap handle.
			h2 := store.OpenHeap(st.Pool(), h.Root())
			if err := st.Begin(); err != nil {
				t.Fatalf("Begin after clear: %v", err)
			}
			if _, err := h2.Insert([]byte("post-clear-record")); err != nil {
				t.Fatal(err)
			}
			if err := st.SetMeta("bk.batches", 2); err != nil {
				t.Fatal(err)
			}
			if err := st.Commit(); err != nil {
				t.Fatalf("commit after clear: %v", err)
			}
			// And the archive stayed gap-free: a fresh backup restores.
			var buf bytes.Buffer
			info, err := st.Backup(&buf)
			if err != nil {
				t.Fatalf("backup after clear: %v", err)
			}
			if err := store.RestoreFS(fsys, "r-clear", bytes.NewReader(buf.Bytes()), "arch", info.EndLSN); err != nil {
				t.Fatalf("restore after clear: %v", err)
			}
			rst, err := store.OpenFS(fsys, "r-clear", 64)
			if err != nil {
				t.Fatal(err)
			}
			defer rst.Close()
			if v, _ := rst.GetMeta("bk.batches"); v != 2 {
				t.Fatalf("restored batch counter %d, want 2", v)
			}
		})
	}
}

// TestClearReadOnlyStillFaulty keeps the disk broken: ClearReadOnly
// must refuse and leave the store read-only.
func TestClearReadOnlyStillFaulty(t *testing.T) {
	ctl := simfs.NewCtl(-1)
	fsys := simfs.New(ctl)
	st, err := bkOpen(fsys)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	h, err := bkSetup(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bkCommitBatch(st, h, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Insert([]byte("txn-record")); err != nil {
		t.Fatal(err)
	}
	// Every durability operation from here on fails.
	base := ctl.Ops()
	for k := base; k < base+200; k++ {
		ctl.FailAt(k, syscall.EIO)
	}
	if err := st.Commit(); err == nil {
		t.Fatal("faulted commit succeeded")
	}
	if !st.ReadOnly() {
		t.Fatal("failed commit did not degrade to read-only")
	}
	if err := st.ClearReadOnly(); err == nil {
		t.Fatal("ClearReadOnly succeeded against a still-broken disk")
	}
	if !st.ReadOnly() {
		t.Fatal("store writable although the repair failed")
	}
}
