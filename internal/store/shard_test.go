package store

// Tests for the sharded pool and the per-frame latch protocol: shard
// sizing, torn-read exclusion (whole-page writes are never observed
// half-done by shared pinners), latch discipline enforcement, and
// FlushAll racing live writers. The concurrency tests are meaningful
// mainly under -race, which CI runs.

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardCountScaling(t *testing.T) {
	cases := []struct{ capacity, shards int }{
		{8, 1},   // minimum pool: single shard, identical to unsharded
		{15, 1},  // below 2x min per-shard capacity: still one shard
		{16, 2},
		{64, 8},
		{512, 16}, // default pool: capped at maxPoolShards
		{4096, 16},
	}
	for _, c := range cases {
		p := NewPool(NewMemPager(), c.capacity)
		if got := p.Shards(); got != c.shards {
			t.Errorf("capacity %d: %d shards, want %d", c.capacity, got, c.shards)
		}
	}
}

func TestShardCapacityCoversPool(t *testing.T) {
	// Per-shard capacities must sum to at least the requested capacity.
	for _, capacity := range []int{8, 16, 100, 512} {
		p := NewPool(NewMemPager(), capacity)
		total := 0
		for _, sh := range p.shards {
			total += sh.capacity
		}
		if total < capacity {
			t.Errorf("capacity %d: shard capacities sum to %d", capacity, total)
		}
	}
}

// TestNoTornReads races one whole-page writer against many shared
// readers on the same set of pages. The exclusive latch must make every
// page version atomic: a reader may see any version, but never a page
// whose bytes disagree with each other.
func TestNoTornReads(t *testing.T) {
	pool := NewPool(NewMemPager(), 64)
	const nPages = 8
	var ids []PageID
	for i := 0; i < nPages; i++ {
		f, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		pool.Unpin(f, true)
	}

	const nReaders = 8
	const rounds = 400
	var wg sync.WaitGroup
	errs := make(chan error, nReaders+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 1; v <= rounds; v++ {
			id := ids[v%nPages]
			f, err := pool.GetX(id)
			if err != nil {
				errs <- err
				return
			}
			for i := range f.Data {
				f.Data[i] = byte(v)
			}
			pool.Unpin(f, true)
		}
	}()

	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := ids[(r+i)%nPages]
				f, err := pool.Get(id)
				if err != nil {
					errs <- err
					return
				}
				first := f.Data[0]
				for j, b := range f.Data {
					if b != first {
						pool.Unpin(f, false)
						errs <- fmt.Errorf("torn read on page %d: byte 0 = %d, byte %d = %d", id, first, j, b)
						return
					}
				}
				pool.Unpin(f, false)
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFlushAllDuringWrites races FlushAll against writers: flush must
// never write a torn page (it holds the shared latch during write-back)
// and must never deadlock against a writer holding a latch while
// allocating.
func TestFlushAllDuringWrites(t *testing.T) {
	pager := NewMemPager()
	pool := NewPool(pager, 32)
	var ids []PageID
	for i := 0; i < 16; i++ {
		f, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		pool.Unpin(f, true)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 1; v <= 200; v++ {
			f, err := pool.GetX(ids[v%len(ids)])
			if err != nil {
				errs <- err
				return
			}
			for i := range f.Data {
				f.Data[i] = byte(v)
			}
			pool.Unpin(f, true)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := pool.FlushAll(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every page on disk must be internally consistent.
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for _, id := range ids {
		if err := pager.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		for j, b := range buf {
			if b != buf[0] {
				t.Fatalf("torn page %d on disk: byte 0 = %d, byte %d = %d", id, buf[0], j, b)
			}
		}
	}
}

func TestDirtyUnpinRequiresExclusive(t *testing.T) {
	pool := NewPool(NewMemPager(), 8)
	f, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	pool.Unpin(f, true)

	f, err = pool.Get(id) // shared pin
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("dirty Unpin under a shared pin did not panic")
			}
		}()
		pool.Unpin(f, true)
	}()
}

// TestUnpinWithoutPinPanics pins a page once and unpins it twice: the
// second Unpin must die on the deliberate misuse panic, not on the
// runtime's unrecoverable unlock-of-unlocked-RWMutex throw (the pin
// count is checked under the shard mutex before the latch is touched).
func TestUnpinWithoutPinPanics(t *testing.T) {
	pool := NewPool(NewMemPager(), 8)
	f, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(f, true)
	defer func() {
		r := recover()
		if r == nil {
			t.Error("double Unpin did not panic")
		} else if s, ok := r.(string); !ok || s != "store: unpin without pin" {
			t.Errorf("double Unpin panicked with %v, want the deliberate unpin-without-pin panic", r)
		}
	}()
	pool.Unpin(f, false)
}

func TestMarkDirtyRequiresExclusive(t *testing.T) {
	pool := NewPool(NewMemPager(), 8)
	f, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	pool.Unpin(f, true)

	f, err = pool.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Error("MarkDirty under a shared pin did not panic")
		}
	}()
	f.MarkDirty()
}

// TestConcurrentReadersSamePage verifies shared pins on one page are
// admitted concurrently: all readers pin the page, rendezvous while
// holding their pins, and only then unpin. With an exclusive-only latch
// this deadlocks; the test would time out rather than pass.
func TestConcurrentReadersSamePage(t *testing.T) {
	pool := NewPool(NewMemPager(), 8)
	f, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	pool.Unpin(f, true)

	const n = 4
	var barrier, done sync.WaitGroup
	barrier.Add(n)
	done.Add(n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			defer done.Done()
			f, err := pool.Get(id)
			if err != nil {
				barrier.Done()
				errs <- err
				return
			}
			barrier.Done()
			barrier.Wait() // all n readers hold the page at once
			pool.Unpin(f, false)
		}()
	}
	done.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
