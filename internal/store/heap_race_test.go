package store

// Regression tests for the heap scanner vs. overflow-chain reclamation.
// A scanner caches a page's live slots while the page is pinned; overflow
// chains must be resolved inside that same pin window, because a
// concurrent Delete frees the chain pages — and a subsequent Insert
// reallocates them — the moment the exclusive latch is available. The
// lazily-resolving scanner read freed or recycled pages (garbage tuples,
// "overflow chain length" errors) and its transient chain pins could make
// the writer's Free fail with "freeing pinned page". Run with -race.

import (
	"fmt"
	"sync"
	"testing"
)

// overflowRecord returns a self-validating record spanning several
// overflow pages: every byte equals v, so any read that mixes pages from
// two chain generations is detectable.
func overflowRecord(size int, v byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = v
	}
	return b
}

func checkOverflowRecord(data []byte, size int) error {
	if len(data) != size {
		return fmt.Errorf("record length %d, want %d", len(data), size)
	}
	v := data[0]
	for i, b := range data {
		if b != v {
			return fmt.Errorf("garbage record: byte 0 = %d, byte %d = %d", v, i, b)
		}
	}
	return nil
}

// TestHeapScanOverflowVsChurn races concurrent scanners against a writer
// that deletes and reinserts overflow records, over a pool small enough
// that the churned chain pages are evicted and reallocated continuously.
// Every yielded record must be internally consistent — a scanner must
// never follow a chain the writer has already freed.
func TestHeapScanOverflowVsChurn(t *testing.T) {
	pool := NewPool(NewMemPager(), 16)
	h, err := CreateHeap(pool)
	if err != nil {
		t.Fatal(err)
	}
	// Each record spans ~3 overflow pages, so chain traversal has a
	// window between pages for the race to land in.
	const overSize = 3 * PageSize
	const nRecords = 8
	const churns = 200
	rids := make([]RID, nRecords)
	for i := range rids {
		rid, err := h.Insert(overflowRecord(overSize, byte(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}

	const nScanners = 4
	stop := make(chan struct{})
	errs := make(chan error, nScanners+1)
	var wg sync.WaitGroup

	// Writer: retire one record, insert a replacement with a fresh fill
	// byte. The freed chain pages go back to the pager free list and are
	// immediately reused by the next insert.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		v := byte(nRecords + 1)
		for i := 0; i < churns; i++ {
			j := i % nRecords
			if err := h.Delete(rids[j]); err != nil {
				errs <- fmt.Errorf("churn %d: delete: %v", i, err)
				return
			}
			rid, err := h.Insert(overflowRecord(overSize, v))
			if err != nil {
				errs <- fmt.Errorf("churn %d: insert: %v", i, err)
				return
			}
			rids[j] = rid
			if v++; v == 0 {
				v = 1
			}
		}
	}()

	for r := 0; r < nScanners; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				err := h.Scan(func(_ RID, data []byte) (bool, error) {
					return true, checkOverflowRecord(data, overSize)
				})
				if err != nil {
					errs <- fmt.Errorf("scanner %d round %d: %v", r, round, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The steady-state records must all have survived the churn intact.
	seen := 0
	err = h.Scan(func(_ RID, data []byte) (bool, error) {
		seen++
		return true, checkOverflowRecord(data, overSize)
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != nRecords {
		t.Errorf("final scan saw %d records, want %d", seen, nRecords)
	}
}
