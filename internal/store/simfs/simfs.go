// Package simfs is the deterministic fault-injecting filesystem behind
// the crash and disk-fault matrices. A Ctl numbers every
// durability-relevant operation (write, sync, truncate) across all
// files of an FS and can, at any chosen operation index, either kill
// the simulated process (every later operation fails too) or inject a
// transient I/O error such as ENOSPC/EIO (that one operation fails, the
// process lives on). After a crash, Harvest materializes the possible
// on-disk states — unsynced writes dropped, kept, or kept with the
// in-flight write torn in half — for recovery to be verified against.
package simfs

import (
	"errors"
	"io"
	"sort"
	"strings"

	"repro/internal/store"
)

// ErrCrashed is the error every operation returns once the simulated
// process has been killed.
var ErrCrashed = errors.New("simfs: simulated crash")

// Ctl numbers durability operations across all files of an FS and
// injects crashes or transient faults at chosen indices.
type Ctl struct {
	ops     int
	crashAt int // -1: never crash
	dead    bool
	faults  map[int]error // op index -> transient error (op fails, process lives)
}

// NewCtl returns a controller that kills the process at durability
// operation crashAt (-1: never).
func NewCtl(crashAt int) *Ctl { return &Ctl{crashAt: crashAt} }

// Ops reports how many durability operations have been counted.
func (c *Ctl) Ops() int {
	if c == nil {
		return 0
	}
	return c.ops
}

// FailAt makes durability operation idx fail with err — typically
// syscall.ENOSPC or syscall.EIO — without killing the process. The
// failed operation is not applied.
func (c *Ctl) FailAt(idx int, err error) {
	if c.faults == nil {
		c.faults = map[int]error{}
	}
	c.faults[idx] = err
}

// tick numbers one durability operation and decides its fate.
func (c *Ctl) tick() error {
	if c == nil {
		return nil
	}
	if c.dead {
		return ErrCrashed
	}
	idx := c.ops
	c.ops++
	if c.crashAt >= 0 && idx >= c.crashAt {
		c.dead = true
		return ErrCrashed
	}
	if err, ok := c.faults[idx]; ok {
		return err
	}
	return nil
}

func (c *Ctl) alive() error {
	if c != nil && c.dead {
		return ErrCrashed
	}
	return nil
}

// fileOp is one applied-but-unsynced mutation. data == nil is a
// truncate to size; otherwise a write of data at off.
type fileOp struct {
	seq  int // global operation index, for finding the in-flight write
	off  int64
	data []byte
	size int64
}

// file models a file as the OS sees it (cur) and as the disk guarantees
// it after a crash (stable = contents at the last sync, pending = ops
// the disk may or may not have applied).
type file struct {
	ctl     *Ctl
	stable  []byte
	cur     []byte
	pending []fileOp
	writes  int
	syncs   int
}

func (f *file) ReadAt(p []byte, off int64) (int, error) {
	if err := f.ctl.alive(); err != nil {
		return 0, err
	}
	if off >= int64(len(f.cur)) {
		return 0, io.EOF
	}
	n := copy(p, f.cur[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	if err := f.ctl.tick(); err != nil {
		return 0, err
	}
	f.writes++
	seq := 0
	if f.ctl != nil {
		seq = f.ctl.ops - 1
	}
	end := off + int64(len(p))
	if int64(len(f.cur)) < end {
		f.cur = append(f.cur, make([]byte, end-int64(len(f.cur)))...)
	}
	copy(f.cur[off:end], p)
	f.pending = append(f.pending, fileOp{seq: seq, off: off, data: append([]byte(nil), p...)})
	return len(p), nil
}

func (f *file) Sync() error {
	if err := f.ctl.tick(); err != nil {
		return err
	}
	f.syncs++
	f.stable = append([]byte(nil), f.cur...)
	f.pending = nil
	return nil
}

func (f *file) Truncate(size int64) error {
	if err := f.ctl.tick(); err != nil {
		return err
	}
	f.cur = resizeTo(f.cur, size)
	f.pending = append(f.pending, fileOp{off: -1, size: size})
	return nil
}

func (f *file) Close() error { return nil }

func (f *file) Size() (int64, error) {
	if err := f.ctl.alive(); err != nil {
		return 0, err
	}
	return int64(len(f.cur)), nil
}

func resizeTo(b []byte, size int64) []byte {
	if int64(len(b)) > size {
		return b[:size]
	}
	return append(b, make([]byte, size-int64(len(b)))...)
}

// image reconstructs a possible post-crash content of the file.
// tearSeq, when >= 0, names the globally last write issued before the
// crash; the torn variant applies only its first half.
func (f *file) image(variant Variant, tearSeq int) []byte {
	switch variant {
	case Drop:
		return append([]byte(nil), f.stable...)
	case Keep:
		return append([]byte(nil), f.cur...)
	}
	img := append([]byte(nil), f.stable...)
	for _, op := range f.pending {
		if op.data == nil {
			img = resizeTo(img, op.size)
			continue
		}
		d := op.data
		if op.seq == tearSeq {
			d = d[:len(d)/2]
		}
		end := op.off + int64(len(d))
		if int64(len(img)) < end {
			img = append(img, make([]byte, end-int64(len(img)))...)
		}
		copy(img[op.off:end], d)
	}
	return img
}

// Variant names one interpretation of the unsynced tail after a crash.
type Variant int

const (
	// Drop: no unsynced op reached the disk.
	Drop Variant = iota
	// Keep: every unsynced op reached the disk.
	Keep
	// Torn: like Keep, but the in-flight write is half-applied.
	Torn
)

// Variants enumerates every post-crash interpretation.
var Variants = []Variant{Drop, Keep, Torn}

func (v Variant) String() string { return [...]string{"drop", "keep", "torn"}[v] }

// FS hands out files sharing one controller. It implements store.FS.
type FS struct {
	ctl   *Ctl
	files map[string]*file
}

// New returns an empty filesystem under ctl (nil: never fails).
func New(ctl *Ctl) *FS { return &FS{ctl: ctl, files: map[string]*file{}} }

// OpenFile opens (creating if absent) the named file.
func (fs *FS) OpenFile(name string) (store.File, error) {
	if err := fs.ctl.alive(); err != nil {
		return nil, err
	}
	f, ok := fs.files[name]
	if !ok {
		f = &file{ctl: fs.ctl}
		fs.files[name] = f
	}
	return f, nil
}

// MkdirAll is a no-op: the simulated namespace is flat, directories
// exist implicitly.
func (fs *FS) MkdirAll(dir string) error { return fs.ctl.alive() }

// List returns the full paths of the files under dir, sorted. Files
// live in a flat namespace, so "under dir" means "name starts with
// dir + '/'".
func (fs *FS) List(dir string) ([]string, error) {
	if err := fs.ctl.alive(); err != nil {
		return nil, err
	}
	prefix := dir + "/"
	var names []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Remove deletes the named file. It counts as a durability operation
// (a directory mutation that must reach the disk), so crash and fault
// injection cover the archive-pruning path too. Crash semantics are
// simplified: a removal is applied immediately and survives every
// Harvest variant — for archive pruning, the file reappearing after a
// crash would only mean it gets pruned again.
func (fs *FS) Remove(name string) error {
	if err := fs.ctl.tick(); err != nil {
		return err
	}
	if _, ok := fs.files[name]; !ok {
		return errors.New("simfs: remove " + name + ": no such file")
	}
	delete(fs.files, name)
	return nil
}

// Harvest freezes the crashed filesystem into the on-disk state a
// reboot would find under the given variant. The result has no
// controller: it never fails.
func (fs *FS) Harvest(variant Variant) *FS {
	tearSeq := -1
	if variant == Torn {
		for _, f := range fs.files {
			for _, op := range f.pending {
				if op.data != nil && op.seq > tearSeq {
					tearSeq = op.seq
				}
			}
		}
	}
	out := New(nil)
	for name, f := range fs.files {
		img := f.image(variant, tearSeq)
		out.files[name] = &file{stable: append([]byte(nil), img...), cur: img}
	}
	return out
}

// Clone copies the filesystem's current contents into a new FS under
// ctl, as if the images had been laid down on a fresh disk.
func (fs *FS) Clone(ctl *Ctl) *FS {
	out := New(ctl)
	for name, f := range fs.files {
		img := append([]byte(nil), f.cur...)
		out.files[name] = &file{ctl: ctl, stable: append([]byte(nil), img...), cur: img}
	}
	return out
}

// Image returns a copy of the named file's current contents (nil if
// absent).
func (fs *FS) Image(name string) []byte {
	f, ok := fs.files[name]
	if !ok {
		return nil
	}
	return append([]byte(nil), f.cur...)
}

// Counts returns the total WriteAt and Sync calls across all files
// (write-amplification accounting for benchmarks).
func (fs *FS) Counts() (writes, syncs int) {
	for _, f := range fs.files {
		writes += f.writes
		syncs += f.syncs
	}
	return writes, syncs
}

// SetImage replaces the named file's contents, as if the bytes had been
// written and synced.
func (fs *FS) SetImage(name string, data []byte) {
	fs.files[name] = &file{
		ctl:    fs.ctl,
		stable: append([]byte(nil), data...),
		cur:    append([]byte(nil), data...),
	}
}
