package store

// Failure injection: a pager that starts failing after a set number of
// operations. Storage structures must surface errors, never panic or
// corrupt their in-memory state in ways that mask the failure.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"syscall"
	"testing"
)

var errInjected = errors.New("injected I/O failure")

// flakyPager wraps a Pager and fails every operation once the countdown
// reaches zero.
type flakyPager struct {
	inner     Pager
	remaining int
}

func (p *flakyPager) tick() error {
	if p.remaining <= 0 {
		return errInjected
	}
	p.remaining--
	return nil
}

func (p *flakyPager) ReadPage(id PageID, buf []byte) error {
	if err := p.tick(); err != nil {
		return err
	}
	return p.inner.ReadPage(id, buf)
}

func (p *flakyPager) WritePage(id PageID, buf []byte) error {
	if err := p.tick(); err != nil {
		return err
	}
	return p.inner.WritePage(id, buf)
}

func (p *flakyPager) Allocate() (PageID, error) {
	if err := p.tick(); err != nil {
		return 0, err
	}
	return p.inner.Allocate()
}

func (p *flakyPager) Free(id PageID) error {
	if err := p.tick(); err != nil {
		return err
	}
	return p.inner.Free(id)
}

func (p *flakyPager) NumPages() PageID { return p.inner.NumPages() }

// Sync and Close are durability operations and can fail like any other
// I/O; they must burn the countdown too, or tests silently skip the
// commit path.
func (p *flakyPager) Sync() error {
	if err := p.tick(); err != nil {
		return err
	}
	return p.inner.Sync()
}

func (p *flakyPager) Close() error {
	if err := p.tick(); err != nil {
		return err
	}
	return p.inner.Close()
}

// runUntilFailure executes op with progressively later failure points
// until it succeeds without any injection, checking that every earlier
// cutoff produced a clean error.
func runUntilFailure(t *testing.T, build func(pool *Pool) error) {
	t.Helper()
	for budget := 0; budget < 10000; budget++ {
		fp := &flakyPager{inner: NewMemPager(), remaining: budget}
		pool := NewPool(fp, 16)
		err := build(pool)
		if err == nil {
			return // reached a budget where everything succeeds
		}
		if !errors.Is(err, errInjected) {
			t.Fatalf("budget %d: unexpected error type: %v", budget, err)
		}
	}
	t.Fatal("operation never completed within the failure budget")
}

func TestHeapSurvivesInjectedFailures(t *testing.T) {
	runUntilFailure(t, func(pool *Pool) error {
		h, err := CreateHeap(pool)
		if err != nil {
			return err
		}
		var rids []RID
		for i := 0; i < 50; i++ {
			rid, err := h.Insert([]byte(fmt.Sprintf("record %d with some padding", i)))
			if err != nil {
				return err
			}
			rids = append(rids, rid)
		}
		big := make([]byte, 3*PageSize)
		if _, err := h.Insert(big); err != nil {
			return err
		}
		for _, rid := range rids {
			if _, err := h.Get(rid); err != nil {
				return err
			}
		}
		if err := pool.FlushAll(); err != nil {
			return err
		}
		return nil
	})
}

func TestBTreeSurvivesInjectedFailures(t *testing.T) {
	runUntilFailure(t, func(pool *Pool) error {
		bt, err := CreateBTree(pool)
		if err != nil {
			return err
		}
		for i := 0; i < 300; i++ {
			if err := bt.Insert(intKey(i), uint64(i)); err != nil {
				return err
			}
		}
		vals, err := bt.SearchEQ(intKey(123))
		if err != nil {
			return err
		}
		if len(vals) != 1 || vals[0] != 123 {
			return fmt.Errorf("lookup corrupted: %v", vals)
		}
		return nil
	})
}

func TestGridSurvivesInjectedFailures(t *testing.T) {
	runUntilFailure(t, func(pool *Pool) error {
		g, err := CreateGrid(pool, 2)
		if err != nil {
			return err
		}
		for i := 0; i < 300; i++ {
			if err := g.Insert([]uint64{uint64(i % 7), uint64(i)}, uint64(i)); err != nil {
				return err
			}
		}
		n := 0
		err = g.PartialMatch([]bool{true, false}, []uint64{3, 0}, func(uint64) bool {
			n++
			return true
		})
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("partial match lost entries")
		}
		return nil
	})
}

// TestEvictionWriteBackFailure drives the pool into evicting a dirty
// frame while the pager refuses writes: the Get must fail cleanly, the
// victim's data must survive in the pool (still dirty, still evictable),
// and once the pager heals the same operations must succeed with no
// data loss.
func TestEvictionWriteBackFailure(t *testing.T) {
	inner := NewMemPager()
	fp := &flakyPager{inner: inner, remaining: 1 << 30}
	pool := NewPool(fp, 8)

	stamp := func(f *Frame, id PageID) {
		for i := range f.Data {
			f.Data[i] = byte(uint32(id) * 31)
		}
	}
	// First page: filled, then pushed out by the next eight while the
	// pager is healthy, so it lives only in the pager.
	f, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	evicted := f.ID()
	stamp(f, evicted)
	pool.Unpin(f, true)
	var resident []PageID
	for i := 0; i < 8; i++ {
		f, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		stamp(f, f.ID())
		resident = append(resident, f.ID())
		pool.Unpin(f, true)
	}

	// Pager down: faulting the evicted page back in needs an eviction,
	// whose dirty write-back fails. Repeating must keep failing with the
	// injected error — not exhaust the pool by leaking victims.
	fp.remaining = 0
	for i := 0; i < 20; i++ {
		if _, err := pool.Get(evicted); !errors.Is(err, errInjected) {
			t.Fatalf("attempt %d: expected injected error, got %v", i, err)
		}
	}

	// Pager healed: the same Get succeeds and every page still carries
	// the data written before the outage.
	fp.remaining = 1 << 30
	check := func(id PageID) {
		t.Helper()
		f, err := pool.Get(id)
		if err != nil {
			t.Fatalf("page %d after heal: %v", id, err)
		}
		for _, b := range f.Data {
			if b != byte(uint32(id)*31) {
				t.Fatalf("page %d: data corrupted after failed eviction", id)
			}
		}
		pool.Unpin(f, false)
	}
	check(evicted)
	for _, id := range resident {
		check(id)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

// --- checkpoint fault audit -------------------------------------------------
//
// A checkpoint folds committed WAL images into the page file and resets
// the log. Its failure modes must never clear p.tail or lose committed
// images: after any injected fault the pager must keep serving every
// committed page, accept further commits once the disk heals, and
// reopen to the same content.

// flakyFileCtl numbers durability operations (WriteAt/Sync/Truncate)
// across the files sharing it and injects one-shot errors at chosen
// indices.
type flakyFileCtl struct {
	ops    int
	failAt map[int]error
}

func (c *flakyFileCtl) tick() error {
	idx := c.ops
	c.ops++
	if err, ok := c.failAt[idx]; ok {
		return err
	}
	return nil
}

type flakyFile struct {
	ctl  *flakyFileCtl
	data []byte
}

func (f *flakyFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *flakyFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.ctl.tick(); err != nil {
		return 0, err
	}
	end := off + int64(len(p))
	if int64(len(f.data)) < end {
		f.data = append(f.data, make([]byte, end-int64(len(f.data)))...)
	}
	copy(f.data[off:end], p)
	return len(p), nil
}

func (f *flakyFile) Sync() error { return f.ctl.tick() }

func (f *flakyFile) Truncate(size int64) error {
	if err := f.ctl.tick(); err != nil {
		return err
	}
	if int64(len(f.data)) > size {
		f.data = f.data[:size]
	} else {
		f.data = append(f.data, make([]byte, size-int64(len(f.data)))...)
	}
	return nil
}

func (f *flakyFile) Close() error         { return nil }
func (f *flakyFile) Size() (int64, error) { return int64(len(f.data)), nil }

type flakyFS struct {
	ctl   *flakyFileCtl
	files map[string]*flakyFile
}

func (fs *flakyFS) OpenFile(name string) (File, error) {
	f, ok := fs.files[name]
	if !ok {
		f = &flakyFile{ctl: fs.ctl}
		fs.files[name] = f
	}
	return f, nil
}

// checkpointWorkload commits ckptPages patterned pages, then lowers the
// checkpoint limit and commits one more page so the very next Sync runs
// a checkpoint. Returns the pager and the op index at which that final
// Sync started.
const ckptPages = 12

func ckptPattern(id PageID, gen byte) []byte {
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = byte(uint32(id)*37) + gen
	}
	return buf
}

func checkpointWorkload(t *testing.T, ctl *flakyFileCtl) (Pager, *flakyFS, int, error) {
	t.Helper()
	fsys := &flakyFS{ctl: ctl, files: map[string]*flakyFile{}}
	pg, err := OpenFilePagerFS(fsys, "kb")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < ckptPages; i++ {
		id, err := pg.Allocate()
		if err != nil {
			t.Fatalf("allocate: %v", err)
		}
		if err := pg.WritePage(id, ckptPattern(id, 0)); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := pg.Sync(); err != nil { // plain commit, no checkpoint yet
		t.Fatalf("base commit: %v", err)
	}
	pg.(*filePager).setCheckpointLimit(1)
	if err := pg.WritePage(1, ckptPattern(1, 1)); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	start := ctl.ops
	return pg, fsys, start, pg.Sync() // commit + checkpoint
}

func verifyCkptContent(t *testing.T, pg Pager, label string) {
	t.Helper()
	buf := make([]byte, PageSize)
	for id := PageID(1); id < pg.NumPages(); id++ {
		if err := pg.ReadPage(id, buf); err != nil {
			t.Fatalf("%s: read page %d: %v", label, id, err)
		}
		var gen byte
		if id == 1 {
			gen = 1
		}
		if !bytes.Equal(buf, ckptPattern(id, gen)) {
			t.Fatalf("%s: page %d content wrong after checkpoint fault", label, id)
		}
	}
}

// TestCheckpointFaultKeepsPagerConsistent injects ENOSPC/EIO into every
// durability operation of a commit-plus-checkpoint and requires that
// the pager (a) surfaces the error, (b) keeps its committed WAL images
// — the tail map is never cleared by a failed checkpoint and every
// committed page still reads back correctly, (c) accepts further
// commits once the disk heals, and (d) closes and reopens to exactly
// the expected content.
func TestCheckpointFaultKeepsPagerConsistent(t *testing.T) {
	probe := &flakyFileCtl{}
	_, _, start, err := checkpointWorkload(t, probe)
	if err != nil {
		t.Fatalf("probe run: %v", err)
	}
	span := probe.ops - start
	if span < 4 {
		t.Fatalf("checkpoint performed only %d ops; expected log write, fsync, frame writes, file sync, truncate", span)
	}
	for k := start; k < start+span; k++ {
		for _, inject := range []error{syscall.ENOSPC, syscall.EIO} {
			label := fmt.Sprintf("fault %v at op %d/%d", inject, k-start, span)
			ctl := &flakyFileCtl{failAt: map[int]error{k: inject}}
			pg, fsys, _, err := checkpointWorkload(t, ctl)
			if !errors.Is(err, inject) {
				t.Fatalf("%s: Sync = %v, want injected fault", label, err)
			}
			p := pg.(*filePager)
			// The tail must still hold an image for every page it held
			// before the fault — a failed checkpoint may not discard them.
			if _, ok := p.tail[1]; !ok {
				t.Fatalf("%s: failed checkpoint cleared the tail", label)
			}
			verifyCkptContent(t, pg, label+" (after fault)")
			// Healed: another write and commit must succeed, and Close
			// completes the interrupted checkpoint.
			if err := pg.WritePage(2, ckptPattern(2, 0)); err != nil {
				t.Fatalf("%s: post-fault write: %v", label, err)
			}
			if err := pg.Sync(); err != nil {
				t.Fatalf("%s: post-fault commit: %v", label, err)
			}
			verifyCkptContent(t, pg, label+" (after retry)")
			if err := pg.Close(); err != nil {
				t.Fatalf("%s: close: %v", label, err)
			}
			pg2, err := OpenFilePagerFS(fsys, "kb")
			if err != nil {
				t.Fatalf("%s: reopen: %v", label, err)
			}
			verifyCkptContent(t, pg2, label+" (reopen)")
			if err := pg2.Close(); err != nil {
				t.Fatalf("%s: reclose: %v", label, err)
			}
		}
	}
}

func TestReadErrorsPropagate(t *testing.T) {
	// Build a valid structure, then make every further pager op fail:
	// reads must error, not panic. A large pool holds everything in
	// memory, so force misses with a tiny pool.
	inner := NewMemPager()
	pool := NewPool(inner, 16)
	h, err := CreateHeap(pool)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 200; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("payload-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// New pool over a failing pager: every access should error cleanly.
	fp := &flakyPager{inner: inner, remaining: 0}
	pool2 := NewPool(fp, 16)
	h2 := OpenHeap(pool2, h.Root())
	if _, err := h2.Get(rids[0]); !errors.Is(err, errInjected) {
		t.Fatalf("expected injected error, got %v", err)
	}
	err = h2.Scan(func(RID, []byte) (bool, error) { return true, nil })
	if !errors.Is(err, errInjected) {
		t.Fatalf("scan: expected injected error, got %v", err)
	}
}
