package store

// Failure injection: a pager that starts failing after a set number of
// operations. Storage structures must surface errors, never panic or
// corrupt their in-memory state in ways that mask the failure.

import (
	"errors"
	"fmt"
	"testing"
)

var errInjected = errors.New("injected I/O failure")

// flakyPager wraps a Pager and fails every operation once the countdown
// reaches zero.
type flakyPager struct {
	inner     Pager
	remaining int
}

func (p *flakyPager) tick() error {
	if p.remaining <= 0 {
		return errInjected
	}
	p.remaining--
	return nil
}

func (p *flakyPager) ReadPage(id PageID, buf []byte) error {
	if err := p.tick(); err != nil {
		return err
	}
	return p.inner.ReadPage(id, buf)
}

func (p *flakyPager) WritePage(id PageID, buf []byte) error {
	if err := p.tick(); err != nil {
		return err
	}
	return p.inner.WritePage(id, buf)
}

func (p *flakyPager) Allocate() (PageID, error) {
	if err := p.tick(); err != nil {
		return 0, err
	}
	return p.inner.Allocate()
}

func (p *flakyPager) Free(id PageID) error {
	if err := p.tick(); err != nil {
		return err
	}
	return p.inner.Free(id)
}

func (p *flakyPager) NumPages() PageID { return p.inner.NumPages() }
func (p *flakyPager) Sync() error      { return p.inner.Sync() }
func (p *flakyPager) Close() error     { return p.inner.Close() }

// runUntilFailure executes op with progressively later failure points
// until it succeeds without any injection, checking that every earlier
// cutoff produced a clean error.
func runUntilFailure(t *testing.T, build func(pool *Pool) error) {
	t.Helper()
	for budget := 0; budget < 10000; budget++ {
		fp := &flakyPager{inner: NewMemPager(), remaining: budget}
		pool := NewPool(fp, 16)
		err := build(pool)
		if err == nil {
			return // reached a budget where everything succeeds
		}
		if !errors.Is(err, errInjected) {
			t.Fatalf("budget %d: unexpected error type: %v", budget, err)
		}
	}
	t.Fatal("operation never completed within the failure budget")
}

func TestHeapSurvivesInjectedFailures(t *testing.T) {
	runUntilFailure(t, func(pool *Pool) error {
		h, err := CreateHeap(pool)
		if err != nil {
			return err
		}
		var rids []RID
		for i := 0; i < 50; i++ {
			rid, err := h.Insert([]byte(fmt.Sprintf("record %d with some padding", i)))
			if err != nil {
				return err
			}
			rids = append(rids, rid)
		}
		big := make([]byte, 3*PageSize)
		if _, err := h.Insert(big); err != nil {
			return err
		}
		for _, rid := range rids {
			if _, err := h.Get(rid); err != nil {
				return err
			}
		}
		if err := pool.FlushAll(); err != nil {
			return err
		}
		return nil
	})
}

func TestBTreeSurvivesInjectedFailures(t *testing.T) {
	runUntilFailure(t, func(pool *Pool) error {
		bt, err := CreateBTree(pool)
		if err != nil {
			return err
		}
		for i := 0; i < 300; i++ {
			if err := bt.Insert(intKey(i), uint64(i)); err != nil {
				return err
			}
		}
		vals, err := bt.SearchEQ(intKey(123))
		if err != nil {
			return err
		}
		if len(vals) != 1 || vals[0] != 123 {
			return fmt.Errorf("lookup corrupted: %v", vals)
		}
		return nil
	})
}

func TestGridSurvivesInjectedFailures(t *testing.T) {
	runUntilFailure(t, func(pool *Pool) error {
		g, err := CreateGrid(pool, 2)
		if err != nil {
			return err
		}
		for i := 0; i < 300; i++ {
			if err := g.Insert([]uint64{uint64(i % 7), uint64(i)}, uint64(i)); err != nil {
				return err
			}
		}
		n := 0
		err = g.PartialMatch([]bool{true, false}, []uint64{3, 0}, func(uint64) bool {
			n++
			return true
		})
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("partial match lost entries")
		}
		return nil
	})
}

func TestReadErrorsPropagate(t *testing.T) {
	// Build a valid structure, then make every further pager op fail:
	// reads must error, not panic. A large pool holds everything in
	// memory, so force misses with a tiny pool.
	inner := NewMemPager()
	pool := NewPool(inner, 16)
	h, err := CreateHeap(pool)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 200; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("payload-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// New pool over a failing pager: every access should error cleanly.
	fp := &flakyPager{inner: inner, remaining: 0}
	pool2 := NewPool(fp, 16)
	h2 := OpenHeap(pool2, h.Root())
	if _, err := h2.Get(rids[0]); !errors.Is(err, errInjected) {
		t.Fatalf("expected injected error, got %v", err)
	}
	err = h2.Scan(func(RID, []byte) (bool, error) { return true, nil })
	if !errors.Is(err, errInjected) {
		t.Fatalf("scan: expected injected error, got %v", err)
	}
}
