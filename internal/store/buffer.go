package store

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// IOStats counts page traffic through the buffer pool. The paper's
// Wisconsin table reports buffer accesses and page read/write frequencies
// (Table 2b); these counters regenerate that data. IOStats is a view: the
// authoritative counters live in the store's obs.Registry.
type IOStats struct {
	// Accesses counts every Get (buffer accesses).
	Accesses uint64
	// Hits counts Gets served from the pool.
	Hits uint64
	// Reads counts pages read from the pager.
	Reads uint64
	// Writes counts pages written to the pager.
	Writes uint64
	// Evictions counts frames recycled.
	Evictions uint64
}

// HitRatio returns Hits/Accesses (the paper's buffer warmth measure).
func (s IOStats) HitRatio() float64 { return obs.Ratio(s.Hits, s.Accesses) }

// poolMetrics bundles the registry handles the pool updates. All handles
// are resolved once at pool construction; updates are lock-free atomics.
type poolMetrics struct {
	accesses  *obs.Counter
	hits      *obs.Counter
	reads     *obs.Counter
	writes    *obs.Counter
	evictions *obs.Counter
	readNS    *obs.Histogram // page read latency
	writeNS   *obs.Histogram // page write latency
	evictNS   *obs.Histogram // eviction latency (incl. dirty write-back)
}

func newPoolMetrics(reg *obs.Registry) poolMetrics {
	m := poolMetrics{
		accesses:  reg.Counter("store.pool.accesses"),
		hits:      reg.Counter("store.pool.hits"),
		reads:     reg.Counter("store.pool.reads"),
		writes:    reg.Counter("store.pool.writes"),
		evictions: reg.Counter("store.pool.evictions"),
		readNS:    reg.Histogram("store.page_read_ns"),
		writeNS:   reg.Histogram("store.page_write_ns"),
		evictNS:   reg.Histogram("store.evict_ns"),
	}
	reg.RegisterFunc("store.pool.hit_ratio", func() any {
		return obs.Ratio(m.hits.Value(), m.accesses.Value())
	})
	return m
}

// Frame is a pinned page in the buffer pool. Callers must Unpin it.
type Frame struct {
	id    PageID
	Data  []byte
	pins  int
	dirty bool
	elem  *list.Element
}

// ID returns the page this frame holds.
func (f *Frame) ID() PageID { return f.id }

// MarkDirty records that Data was modified; the page is written back on
// eviction or flush.
func (f *Frame) MarkDirty() { f.dirty = true }

// Tally accumulates the share of pool traffic attributed to one client —
// typically one session — while it is attached to the pool. Counts are
// exact when the tally is the only one attached during its accesses;
// when several sessions overlap in time, each access is charged to every
// tally attached at that moment (an honest over-approximation: the pool
// has no way to tell whose retrieval faulted a page both were about to
// touch). A Tally may be read and reset concurrently with pool traffic.
type Tally struct {
	accesses  atomic.Uint64
	hits      atomic.Uint64
	reads     atomic.Uint64
	writes    atomic.Uint64
	evictions atomic.Uint64
}

// Stats returns a snapshot of the attributed counters.
func (t *Tally) Stats() IOStats {
	return IOStats{
		Accesses:  t.accesses.Load(),
		Hits:      t.hits.Load(),
		Reads:     t.reads.Load(),
		Writes:    t.writes.Load(),
		Evictions: t.evictions.Load(),
	}
}

// Reset zeroes the attributed counters.
func (t *Tally) Reset() {
	t.accesses.Store(0)
	t.hits.Store(0)
	t.reads.Store(0)
	t.writes.Store(0)
	t.evictions.Store(0)
}

// Pool is an LRU buffer pool. It is safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	pager    Pager
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // front = most recently used; holds unpinned frames
	met      poolMetrics
	attached map[*Tally]int // attach counts per tally
}

// NewPool returns a buffer pool of the given capacity (in pages) over the
// pager, reporting into a private metrics registry. Capacity below 8 is
// raised to 8.
func NewPool(pager Pager, capacity int) *Pool {
	return NewPoolObs(pager, capacity, obs.NewRegistry())
}

// NewPoolObs returns a buffer pool reporting into reg (one registry per
// knowledge base; the pool contributes the store.* metrics).
func NewPoolObs(pager Pager, capacity int, reg *obs.Registry) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	return &Pool{
		pager:    pager,
		capacity: capacity,
		frames:   map[PageID]*Frame{},
		lru:      list.New(),
		met:      newPoolMetrics(reg),
		attached: map[*Tally]int{},
	}
}

// Attach starts charging pool traffic to t until the matching Detach.
// Attach/Detach pairs nest.
func (p *Pool) Attach(t *Tally) {
	if t == nil {
		return
	}
	p.mu.Lock()
	p.attached[t]++
	p.mu.Unlock()
}

// Detach stops charging pool traffic to t (one nesting level).
func (p *Pool) Detach(t *Tally) {
	if t == nil {
		return
	}
	p.mu.Lock()
	if p.attached[t] > 1 {
		p.attached[t]--
	} else {
		delete(p.attached, t)
	}
	p.mu.Unlock()
}

// Pager exposes the underlying pager.
func (p *Pool) Pager() Pager { return p.pager }

// Stats returns a snapshot of the I/O counters — a view over the
// registry-backed metrics, which are the single source of truth.
func (p *Pool) Stats() IOStats {
	return IOStats{
		Accesses:  p.met.accesses.Value(),
		Hits:      p.met.hits.Value(),
		Reads:     p.met.reads.Value(),
		Writes:    p.met.writes.Value(),
		Evictions: p.met.evictions.Value(),
	}
}

// ResetStats zeroes the pool's registry counters. This resets shared
// state visible to every session of the knowledge base; sessions wanting
// a private baseline should use a Tally instead.
func (p *Pool) ResetStats() {
	p.met.accesses.Reset()
	p.met.hits.Reset()
	p.met.reads.Reset()
	p.met.writes.Reset()
	p.met.evictions.Reset()
	p.met.readNS.Reset()
	p.met.writeNS.Reset()
	p.met.evictNS.Reset()
}

// Get pins page id and returns its frame, reading it if absent.
func (p *Pool) Get(id PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.met.accesses.Inc()
	for t := range p.attached {
		t.accesses.Add(1)
	}
	if f, ok := p.frames[id]; ok {
		p.met.hits.Inc()
		for t := range p.attached {
			t.hits.Add(1)
		}
		if f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		return f, nil
	}
	f, err := p.newFrame(id)
	if err != nil {
		return nil, err
	}
	p.met.reads.Inc()
	for t := range p.attached {
		t.reads.Add(1)
	}
	t0 := time.Now()
	if err := p.pager.ReadPage(id, f.Data); err != nil {
		delete(p.frames, id)
		return nil, err
	}
	p.met.readNS.Observe(time.Since(t0))
	f.pins = 1
	return f, nil
}

// Alloc allocates a fresh page and returns it pinned (zeroed, dirty).
func (p *Pool) Alloc() (*Frame, error) {
	id, err := p.pager.Allocate()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.met.accesses.Inc()
	for t := range p.attached {
		t.accesses.Add(1)
	}
	f, err := p.newFrame(id)
	if err != nil {
		return nil, err
	}
	f.pins = 1
	f.dirty = true
	return f, nil
}

// newFrame makes room and registers an empty frame for id (lock held).
func (p *Pool) newFrame(id PageID) (*Frame, error) {
	for len(p.frames) >= p.capacity {
		back := p.lru.Back()
		if back == nil {
			return nil, fmt.Errorf("store: buffer pool exhausted (%d pages, all pinned)", p.capacity)
		}
		t0 := time.Now()
		victim := back.Value.(*Frame)
		p.lru.Remove(back)
		victim.elem = nil
		if victim.dirty {
			p.met.writes.Inc()
			for t := range p.attached {
				t.writes.Add(1)
			}
			tw := time.Now()
			if err := p.pager.WritePage(victim.id, victim.Data); err != nil {
				// Put the victim back on the LRU still dirty: the pool stays
				// consistent, the page's data is preserved, and a later
				// eviction or FlushAll retries the write.
				victim.elem = p.lru.PushBack(victim)
				return nil, err
			}
			p.met.writeNS.Observe(time.Since(tw))
		}
		delete(p.frames, victim.id)
		p.met.evictions.Inc()
		p.met.evictNS.Observe(time.Since(t0))
		for t := range p.attached {
			t.evictions.Add(1)
		}
	}
	f := &Frame{id: id, Data: make([]byte, PageSize)}
	p.frames[id] = f
	return f, nil
}

// Unpin releases a pin; dirty marks the page modified.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins < 0 {
		panic("store: unpin without pin")
	}
	if f.pins == 0 {
		f.elem = p.lru.PushFront(f)
	}
}

// Free drops the page from the pool and returns it to the pager free list.
// The page must be unpinned.
func (p *Pool) Free(id PageID) error {
	p.mu.Lock()
	if f, ok := p.frames[id]; ok {
		if f.pins > 0 {
			p.mu.Unlock()
			return fmt.Errorf("store: freeing pinned page %d", id)
		}
		if f.elem != nil {
			p.lru.Remove(f.elem)
		}
		delete(p.frames, id)
	}
	p.mu.Unlock()
	return p.pager.Free(id)
}

// FlushAll writes every dirty frame back to the pager.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.frames {
		if f.dirty {
			p.met.writes.Inc()
			for t := range p.attached {
				t.writes.Add(1)
			}
			tw := time.Now()
			if err := p.pager.WritePage(f.id, f.Data); err != nil {
				return err
			}
			p.met.writeNS.Observe(time.Since(tw))
			f.dirty = false
		}
	}
	return p.pager.Sync()
}
