package store

import (
	"container/list"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// IOStats counts page traffic through the buffer pool. The paper's
// Wisconsin table reports buffer accesses and page read/write frequencies
// (Table 2b); these counters regenerate that data. IOStats is a view: the
// authoritative counters live in the store's obs.Registry.
type IOStats struct {
	// Accesses counts every pin (buffer accesses).
	Accesses uint64
	// Hits counts pins served from the pool.
	Hits uint64
	// Reads counts pages read from the pager.
	Reads uint64
	// Writes counts pages written to the pager.
	Writes uint64
	// Evictions counts frames recycled.
	Evictions uint64
	// LatchWaits counts pins that blocked on a frame latch (pool-wide;
	// not attributed to tallies — contention has no single owner).
	LatchWaits uint64
	// LatchWaitNS is the total time spent blocked on frame latches.
	LatchWaitNS uint64
}

// HitRatio returns Hits/Accesses (the paper's buffer warmth measure).
func (s IOStats) HitRatio() float64 { return obs.Ratio(s.Hits, s.Accesses) }

// poolMetrics bundles the registry handles the pool updates. All handles
// are resolved once at pool construction; updates are lock-free atomics.
type poolMetrics struct {
	accesses    *obs.Counter
	hits        *obs.Counter
	reads       *obs.Counter
	writes      *obs.Counter
	evictions   *obs.Counter
	readNS      *obs.Histogram // page read latency
	writeNS     *obs.Histogram // page write latency
	evictNS     *obs.Histogram // eviction latency (incl. dirty write-back)
	latchWaits  *obs.Counter   // pins that blocked on a frame latch
	latchWaitNS *obs.Histogram // time blocked on frame latches
}

func newPoolMetrics(reg *obs.Registry) poolMetrics {
	m := poolMetrics{
		accesses:    reg.Counter("store.pool.accesses"),
		hits:        reg.Counter("store.pool.hits"),
		reads:       reg.Counter("store.pool.reads"),
		writes:      reg.Counter("store.pool.writes"),
		evictions:   reg.Counter("store.pool.evictions"),
		readNS:      reg.Histogram("store.page_read_ns"),
		writeNS:     reg.Histogram("store.page_write_ns"),
		evictNS:     reg.Histogram("store.evict_ns"),
		latchWaits:  reg.Counter("buffer_pool.latch_waits"),
		latchWaitNS: reg.Histogram("buffer_pool.latch_wait_ns"),
	}
	reg.RegisterFunc("store.pool.hit_ratio", func() any {
		return obs.Ratio(m.hits.Value(), m.accesses.Value())
	})
	return m
}

// LatchMode selects the frame latch a Pin takes: shared for reads,
// exclusive for mutation (and for write-back/eviction inside the pool).
type LatchMode int

const (
	// LatchShared admits any number of concurrent readers of Frame.Data.
	LatchShared LatchMode = iota
	// LatchExclusive admits one writer; required to modify Frame.Data,
	// call MarkDirty, or Unpin with dirty=true.
	LatchExclusive
)

// Frame is a pinned page in the buffer pool. Callers must Unpin it.
// While pinned the frame holds its latch in the mode requested at Pin
// time: Data may be read under either mode but written only under
// LatchExclusive.
type Frame struct {
	id   PageID
	Data []byte

	// latch orders access to Data. It is acquired by Pin after the shard
	// mutex is released. Unpin drops the pin under the shard mutex while
	// still holding the latch (so misuse panics instead of corrupting the
	// latch) — safe against makeRoom's shard mutex -> victim latch order
	// because a frame with a live pin is off the LRU and never a victim.
	latch sync.RWMutex
	// wlatched is true while the exclusive holder owns the latch. Only
	// that goroutine writes it, and shared holders are excluded by the
	// RWMutex while it is true, so access is race-free.
	wlatched bool

	// dirty is touched under the shard mutex (eviction), the exclusive
	// latch (MarkDirty, dirty Unpin) and the shared latch (FlushAll
	// clearing after write-back), so it is atomic.
	dirty atomic.Bool

	pins int           // guarded by the owning shard's mutex
	elem *list.Element // guarded by the owning shard's mutex
}

// ID returns the page this frame holds.
func (f *Frame) ID() PageID { return f.id }

// MarkDirty records that Data was modified; the page is written back on
// eviction or flush. The caller must hold the frame exclusively.
func (f *Frame) MarkDirty() {
	if !f.wlatched {
		panic("store: MarkDirty without exclusive latch")
	}
	f.dirty.Store(true)
}

// Tally accumulates the share of pool traffic attributed to one client —
// typically one session — while it is attached to the pool. Counts are
// exact when the tally is the only one attached during its accesses;
// when several sessions overlap in time, each access is charged to every
// tally attached at that moment (an honest over-approximation: the pool
// has no way to tell whose retrieval faulted a page both were about to
// touch). Attribution is best-effort at the edges too: Pin snapshots the
// attached set once at entry and charges it for everything the pin
// causes (including eviction write-backs), so a pin in flight when
// Detach returns may still add to the detached tally. A Tally may be
// read and reset concurrently with pool traffic.
type Tally struct {
	accesses  atomic.Uint64
	hits      atomic.Uint64
	reads     atomic.Uint64
	writes    atomic.Uint64
	evictions atomic.Uint64
}

// Stats returns a snapshot of the attributed counters.
func (t *Tally) Stats() IOStats {
	return IOStats{
		Accesses:  t.accesses.Load(),
		Hits:      t.hits.Load(),
		Reads:     t.reads.Load(),
		Writes:    t.writes.Load(),
		Evictions: t.evictions.Load(),
	}
}

// Reset zeroes the attributed counters.
func (t *Tally) Reset() {
	t.accesses.Store(0)
	t.hits.Store(0)
	t.reads.Store(0)
	t.writes.Store(0)
	t.evictions.Store(0)
}

// tallySet is the pool's set of attached tallies. Attach/Detach are rare
// (once per session storage window), reads happen on every pin, so the
// set keeps a copy-on-write snapshot read lock-free on the hot path.
type tallySet struct {
	mu   sync.Mutex
	refs map[*Tally]int
	snap atomic.Pointer[[]*Tally]
}

func (ts *tallySet) attach(t *Tally) {
	ts.mu.Lock()
	if ts.refs == nil {
		ts.refs = map[*Tally]int{}
	}
	ts.refs[t]++
	ts.rebuild()
	ts.mu.Unlock()
}

func (ts *tallySet) detach(t *Tally) {
	ts.mu.Lock()
	if ts.refs[t] > 1 {
		ts.refs[t]--
	} else {
		delete(ts.refs, t)
	}
	ts.rebuild()
	ts.mu.Unlock()
}

func (ts *tallySet) rebuild() {
	snap := make([]*Tally, 0, len(ts.refs))
	for t := range ts.refs {
		snap = append(snap, t)
	}
	ts.snap.Store(&snap)
}

func (ts *tallySet) list() []*Tally {
	p := ts.snap.Load()
	if p == nil {
		return nil
	}
	return *p
}

// poolShard is one independently locked slice of the pool: its own page
// map, LRU chain (unpinned frames, front = most recently used), capacity
// share, and hit/eviction counters. Pages are assigned to shards by a
// multiplicative hash of the page ID, so unrelated pages contend on
// different mutexes and an eviction in one shard never blocks a hit in
// another.
type poolShard struct {
	mu       sync.Mutex
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List

	accesses  *obs.Counter
	hits      *obs.Counter
	evictions *obs.Counter
}

// Pool is an LRU buffer pool, hash-sharded for concurrent use: pins on
// different shards proceed in parallel, and concurrent readers of the
// same page share its frame latch.
type Pool struct {
	pager      Pager
	capacity   int
	shards     []*poolShard
	shardShift uint // top log2(len(shards)) bits of the hashed page ID
	met        poolMetrics
	tallies    tallySet
}

// minShardPages is the smallest per-shard capacity worth having: below
// this, hash skew would cause spurious evictions, so small pools get
// fewer shards (a capacity-8 pool is a single shard and behaves exactly
// like the unsharded pool).
const minShardPages = 8

// maxPoolShards caps the shard count; past ~number-of-cores shards the
// extra mutexes buy nothing.
const maxPoolShards = 16

func shardCountFor(capacity int) int {
	n := 1
	for n < maxPoolShards && capacity/(n*2) >= minShardPages {
		n *= 2
	}
	return n
}

// NewPool returns a buffer pool of the given capacity (in pages) over the
// pager, reporting into a private metrics registry. Capacity below 8 is
// raised to 8.
func NewPool(pager Pager, capacity int) *Pool {
	return NewPoolObs(pager, capacity, obs.NewRegistry())
}

// NewPoolObs returns a buffer pool reporting into reg (one registry per
// knowledge base; the pool contributes the store.* and buffer_pool.*
// metrics). Capacity is split evenly across the shards, rounding up, so
// the effective capacity can exceed the request by up to shards-1 pages.
func NewPoolObs(pager Pager, capacity int, reg *obs.Registry) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	n := shardCountFor(capacity)
	p := &Pool{
		pager:      pager,
		capacity:   capacity,
		shards:     make([]*poolShard, n),
		shardShift: uint(32 - bits.TrailingZeros32(uint32(n))),
		met:        newPoolMetrics(reg),
	}
	per := (capacity + n - 1) / n
	for i := range p.shards {
		sh := &poolShard{
			capacity:  per,
			frames:    map[PageID]*Frame{},
			lru:       list.New(),
			accesses:  reg.Counter(fmt.Sprintf("buffer_pool.shard%d.accesses", i)),
			hits:      reg.Counter(fmt.Sprintf("buffer_pool.shard%d.hits", i)),
			evictions: reg.Counter(fmt.Sprintf("buffer_pool.shard%d.evictions", i)),
		}
		reg.RegisterFunc(fmt.Sprintf("buffer_pool.shard%d.hit_ratio", i), func() any {
			return obs.Ratio(sh.hits.Value(), sh.accesses.Value())
		})
		p.shards[i] = sh
	}
	reg.Gauge("buffer_pool.shards").Set(int64(n))
	return p
}

// shardOf maps a page ID to its shard by multiplicative (Fibonacci)
// hashing: sequential page IDs — the common allocation pattern — spread
// across shards instead of clustering.
func (p *Pool) shardOf(id PageID) *poolShard {
	if len(p.shards) == 1 {
		return p.shards[0]
	}
	return p.shards[(uint32(id)*2654435761)>>p.shardShift]
}

// Shards returns the number of shards (diagnostics).
func (p *Pool) Shards() int { return len(p.shards) }

// Attach starts charging pool traffic to t until the matching Detach.
// Attach/Detach pairs nest.
func (p *Pool) Attach(t *Tally) {
	if t == nil {
		return
	}
	p.tallies.attach(t)
}

// Detach stops charging pool traffic to t (one nesting level). Pins
// already in flight when Detach returns may still be charged to t — see
// the Tally doc on best-effort attribution.
func (p *Pool) Detach(t *Tally) {
	if t == nil {
		return
	}
	p.tallies.detach(t)
}

// Pager exposes the underlying pager.
func (p *Pool) Pager() Pager { return p.pager }

// Stats returns a snapshot of the I/O counters — a view over the
// registry-backed metrics, which are the single source of truth.
func (p *Pool) Stats() IOStats {
	return IOStats{
		Accesses:    p.met.accesses.Value(),
		Hits:        p.met.hits.Value(),
		Reads:       p.met.reads.Value(),
		Writes:      p.met.writes.Value(),
		Evictions:   p.met.evictions.Value(),
		LatchWaits:  p.met.latchWaits.Value(),
		LatchWaitNS: p.met.latchWaitNS.Snapshot().SumNS,
	}
}

// ResetStats zeroes the pool's registry counters. This resets shared
// state visible to every session of the knowledge base; sessions wanting
// a private baseline should use a Tally instead.
func (p *Pool) ResetStats() {
	p.met.accesses.Reset()
	p.met.hits.Reset()
	p.met.reads.Reset()
	p.met.writes.Reset()
	p.met.evictions.Reset()
	p.met.readNS.Reset()
	p.met.writeNS.Reset()
	p.met.evictNS.Reset()
	p.met.latchWaits.Reset()
	p.met.latchWaitNS.Reset()
	for _, sh := range p.shards {
		sh.accesses.Reset()
		sh.hits.Reset()
		sh.evictions.Reset()
	}
}

// latchFrame acquires the frame latch in the requested mode, recording
// blocked time. The fast path is a single try-lock; only contended pins
// pay for a clock read.
func (p *Pool) latchFrame(f *Frame, mode LatchMode) {
	if mode == LatchExclusive {
		if !f.latch.TryLock() {
			t0 := time.Now()
			f.latch.Lock()
			p.met.latchWaits.Inc()
			p.met.latchWaitNS.Observe(time.Since(t0))
		}
		f.wlatched = true
		return
	}
	if !f.latch.TryRLock() {
		t0 := time.Now()
		f.latch.RLock()
		p.met.latchWaits.Inc()
		p.met.latchWaitNS.Observe(time.Since(t0))
	}
}

// Pin fixes page id in the pool, reading it from the pager if absent,
// and returns its frame latched in the requested mode. Every Pin must be
// matched by an Unpin. Lock order: the shard mutex is released before
// the frame latch is taken, so a pin never blocks its whole shard while
// waiting for a writer to finish with one page.
func (p *Pool) Pin(id PageID, mode LatchMode) (*Frame, error) {
	sh := p.shardOf(id)
	tallies := p.tallies.list()
	sh.mu.Lock()
	p.met.accesses.Inc()
	sh.accesses.Inc()
	for _, t := range tallies {
		t.accesses.Add(1)
	}
	if f, ok := sh.frames[id]; ok {
		p.met.hits.Inc()
		sh.hits.Inc()
		for _, t := range tallies {
			t.hits.Add(1)
		}
		if f.elem != nil {
			sh.lru.Remove(f.elem)
			f.elem = nil
		}
		f.pins++
		sh.mu.Unlock()
		p.latchFrame(f, mode)
		return f, nil
	}
	// Miss: make room, then read the page before publishing the frame so
	// no other pin can observe a partially loaded page. Misses serialize
	// per shard — unrelated shards keep streaming hits meanwhile.
	if err := p.makeRoom(sh, tallies); err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	f := &Frame{id: id, Data: make([]byte, PageSize)}
	p.met.reads.Inc()
	for _, t := range tallies {
		t.reads.Add(1)
	}
	t0 := time.Now()
	if err := p.pager.ReadPage(id, f.Data); err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	p.met.readNS.Observe(time.Since(t0))
	f.pins = 1
	sh.frames[id] = f
	sh.mu.Unlock()
	p.latchFrame(f, mode)
	return f, nil
}

// Get pins page id for reading (shared latch). Kept as the common-case
// entry point; mutators use GetX.
func (p *Pool) Get(id PageID) (*Frame, error) { return p.Pin(id, LatchShared) }

// GetX pins page id for writing (exclusive latch).
func (p *Pool) GetX(id PageID) (*Frame, error) { return p.Pin(id, LatchExclusive) }

// Alloc allocates a fresh page and returns it pinned exclusively
// (zeroed, dirty).
func (p *Pool) Alloc() (*Frame, error) {
	id, err := p.pager.Allocate()
	if err != nil {
		return nil, err
	}
	sh := p.shardOf(id)
	tallies := p.tallies.list()
	sh.mu.Lock()
	p.met.accesses.Inc()
	sh.accesses.Inc()
	for _, t := range tallies {
		t.accesses.Add(1)
	}
	if err := p.makeRoom(sh, tallies); err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	f := &Frame{id: id, Data: make([]byte, PageSize)}
	f.pins = 1
	f.dirty.Store(true)
	sh.frames[id] = f
	sh.mu.Unlock()
	p.latchFrame(f, LatchExclusive)
	return f, nil
}

// makeRoom evicts until the shard has a free slot (shard mutex held).
// The victim is unpinned and new pins on this shard are excluded by the
// mutex, so its exclusive latch is either free or held only by an Unpin
// in its final latch-release step (Unpin drops the pin before the
// latch); the acquisition here waits at most that instant and cannot
// deadlock — the latch holder needs no locks to finish. Taking the
// exclusive latch keeps the WAL/checksum invariant: pages reach the
// pager only through an exclusively latched frame with stable bytes.
func (p *Pool) makeRoom(sh *poolShard, tallies []*Tally) error {
	for len(sh.frames) >= sh.capacity {
		back := sh.lru.Back()
		if back == nil {
			return fmt.Errorf("store: buffer pool exhausted (%d pages, all pinned)", p.capacity)
		}
		t0 := time.Now()
		victim := back.Value.(*Frame)
		sh.lru.Remove(back)
		victim.elem = nil
		victim.latch.Lock()
		if victim.dirty.Load() {
			p.met.writes.Inc()
			for _, t := range tallies {
				t.writes.Add(1)
			}
			tw := time.Now()
			if err := p.pager.WritePage(victim.id, victim.Data); err != nil {
				// Put the victim back on the LRU still dirty: the pool stays
				// consistent, the page's data is preserved, and a later
				// eviction or FlushAll retries the write.
				victim.latch.Unlock()
				victim.elem = sh.lru.PushBack(victim)
				return err
			}
			p.met.writeNS.Observe(time.Since(tw))
			victim.dirty.Store(false)
		}
		victim.latch.Unlock()
		delete(sh.frames, victim.id)
		p.met.evictions.Inc()
		sh.evictions.Inc()
		p.met.evictNS.Observe(time.Since(t0))
		for _, t := range tallies {
			t.evictions.Add(1)
		}
	}
	return nil
}

// Unpin releases a pin and its latch; dirty marks the page modified and
// requires the frame to be held exclusively. The pin count is checked
// and dropped under the shard mutex BEFORE the latch is released, so a
// double Unpin dies on the deliberate "unpin without pin" panic instead
// of the runtime's unrecoverable unlock-of-unlocked-RWMutex throw.
// Taking the shard mutex while holding the latch cannot deadlock against
// makeRoom's reverse order (shard mutex -> victim latch): a frame being
// unpinned still has pins > 0, is therefore off the LRU, and can never
// be makeRoom's victim.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	if dirty {
		if !f.wlatched {
			panic("store: dirty unpin without exclusive latch")
		}
		f.dirty.Store(true)
	}
	sh := p.shardOf(f.id)
	sh.mu.Lock()
	if f.pins <= 0 {
		sh.mu.Unlock()
		panic("store: unpin without pin")
	}
	f.pins--
	if f.pins == 0 {
		f.elem = sh.lru.PushFront(f)
	}
	sh.mu.Unlock()
	if f.wlatched {
		f.wlatched = false
		f.latch.Unlock()
	} else {
		f.latch.RUnlock()
	}
}

// Invalidate drops every frame from the pool without writing anything
// back. It is the cache half of a transaction rollback: the pager has
// restored its pre-transaction images, so any frame — clean or dirty —
// may hold rolled-back bytes and must be re-read from the pager on next
// use. The caller must guarantee no frame is pinned (the transaction
// owner holds the knowledge base exclusively and storage structures
// unpin before returning); a live pin panics like the pool's other
// protocol violations.
func (p *Pool) Invalidate() {
	for _, sh := range p.shards {
		sh.mu.Lock()
		for id, f := range sh.frames {
			if f.pins > 0 {
				sh.mu.Unlock()
				panic(fmt.Sprintf("store: invalidating pinned page %d", id))
			}
			if f.elem != nil {
				sh.lru.Remove(f.elem)
				f.elem = nil
			}
			delete(sh.frames, id)
		}
		sh.mu.Unlock()
	}
}

// Free drops the page from the pool and returns it to the pager free list.
// The page must be unpinned.
func (p *Pool) Free(id PageID) error {
	sh := p.shardOf(id)
	sh.mu.Lock()
	if f, ok := sh.frames[id]; ok {
		if f.pins > 0 {
			sh.mu.Unlock()
			return fmt.Errorf("store: freeing pinned page %d", id)
		}
		if f.elem != nil {
			sh.lru.Remove(f.elem)
		}
		delete(sh.frames, id)
	}
	sh.mu.Unlock()
	return p.pager.Free(id)
}

// FlushAll writes every dirty frame back to the pager. Frames are pinned
// under the shard mutex, then written under their shared latch with the
// mutex released — FlushAll never holds a shard mutex while waiting for
// a frame latch, so it cannot deadlock against writers that hold a latch
// while allocating (heap overflow chains do exactly that).
func (p *Pool) FlushAll() error {
	tallies := p.tallies.list()
	var firstErr error
	for _, sh := range p.shards {
		sh.mu.Lock()
		var pinned []*Frame
		for _, f := range sh.frames {
			if f.dirty.Load() {
				if f.elem != nil {
					sh.lru.Remove(f.elem)
					f.elem = nil
				}
				f.pins++
				pinned = append(pinned, f)
			}
		}
		sh.mu.Unlock()
		for _, f := range pinned {
			if firstErr == nil {
				// Shared latch: write-back needs stable bytes, not
				// exclusivity; concurrent readers may keep streaming.
				f.latch.RLock()
				if f.dirty.Load() {
					p.met.writes.Inc()
					for _, t := range tallies {
						t.writes.Add(1)
					}
					tw := time.Now()
					if err := p.pager.WritePage(f.id, f.Data); err != nil {
						firstErr = err
					} else {
						p.met.writeNS.Observe(time.Since(tw))
						f.dirty.Store(false)
					}
				}
				f.latch.RUnlock()
			}
			sh.mu.Lock()
			f.pins--
			if f.pins == 0 {
				f.elem = sh.lru.PushFront(f)
			}
			sh.mu.Unlock()
		}
		if firstErr != nil {
			return firstErr
		}
	}
	return p.pager.Sync()
}
