package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// BTree is a disk-backed B+tree mapping variable-length byte keys to
// uint64 values (packed RIDs). Duplicate keys are allowed; (key, value)
// pairs are unique only if the caller keeps them so. Deletion is lazy
// (no rebalancing), which is adequate for the engine's index workloads.
//
// The tree is addressed by an anchor page holding the current root, so
// root splits do not invalidate stored references to the tree.
type BTree struct {
	pool   *Pool
	anchor PageID
}

// MaxKeyLen bounds key length so several keys fit per node.
const MaxKeyLen = PageSize / 8

// bnode is the in-memory form of one tree node.
type bnode struct {
	leaf     bool
	keys     [][]byte
	vals     []uint64 // leaf only, parallel to keys
	children []PageID // internal only, len(keys)+1
	next     PageID   // leaf chain
}

// CreateBTree allocates an empty tree and returns it.
func CreateBTree(pool *Pool) (*BTree, error) {
	rootFrame, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	root := rootFrame.ID()
	writeNode(rootFrame.Data, &bnode{leaf: true})
	pool.Unpin(rootFrame, true)

	anchorFrame, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	binary.LittleEndian.PutUint32(anchorFrame.Data[0:4], uint32(root))
	anchor := anchorFrame.ID()
	pool.Unpin(anchorFrame, true)
	return &BTree{pool: pool, anchor: anchor}, nil
}

// OpenBTree attaches to the tree anchored at anchor.
func OpenBTree(pool *Pool, anchor PageID) *BTree {
	return &BTree{pool: pool, anchor: anchor}
}

// Anchor returns the tree's stable anchor page.
func (t *BTree) Anchor() PageID { return t.anchor }

func (t *BTree) rootID() (PageID, error) {
	f, err := t.pool.Get(t.anchor)
	if err != nil {
		return 0, err
	}
	id := PageID(binary.LittleEndian.Uint32(f.Data[0:4]))
	t.pool.Unpin(f, false)
	return id, nil
}

func (t *BTree) setRootID(id PageID) error {
	f, err := t.pool.GetX(t.anchor)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(f.Data[0:4], uint32(id))
	t.pool.Unpin(f, true)
	return nil
}

// node (de)serialisation.
//
//	[0]    leaf flag
//	[1:3]  key count
//	[3:7]  next leaf
//	[7: ]  leaf:    (keyLen u16, key, val u64)*
//	       internal: child0 u32, then (keyLen u16, key, child u32)*
func writeNode(d []byte, n *bnode) {
	if n.leaf {
		d[0] = 1
	} else {
		d[0] = 0
	}
	binary.LittleEndian.PutUint16(d[1:3], uint16(len(n.keys)))
	binary.LittleEndian.PutUint32(d[3:7], uint32(n.next))
	off := 7
	if !n.leaf {
		binary.LittleEndian.PutUint32(d[off:off+4], uint32(n.children[0]))
		off += 4
	}
	for i, k := range n.keys {
		binary.LittleEndian.PutUint16(d[off:off+2], uint16(len(k)))
		off += 2
		copy(d[off:], k)
		off += len(k)
		if n.leaf {
			binary.LittleEndian.PutUint64(d[off:off+8], n.vals[i])
			off += 8
		} else {
			binary.LittleEndian.PutUint32(d[off:off+4], uint32(n.children[i+1]))
			off += 4
		}
	}
}

func readNode(d []byte) *bnode {
	n := &bnode{leaf: d[0] == 1}
	cnt := int(binary.LittleEndian.Uint16(d[1:3]))
	n.next = PageID(binary.LittleEndian.Uint32(d[3:7]))
	off := 7
	if !n.leaf {
		n.children = append(n.children, PageID(binary.LittleEndian.Uint32(d[off:off+4])))
		off += 4
	}
	for i := 0; i < cnt; i++ {
		kl := int(binary.LittleEndian.Uint16(d[off : off+2]))
		off += 2
		k := make([]byte, kl)
		copy(k, d[off:off+kl])
		off += kl
		n.keys = append(n.keys, k)
		if n.leaf {
			n.vals = append(n.vals, binary.LittleEndian.Uint64(d[off:off+8]))
			off += 8
		} else {
			n.children = append(n.children, PageID(binary.LittleEndian.Uint32(d[off:off+4])))
			off += 4
		}
	}
	return n
}

func nodeSize(n *bnode) int {
	sz := 7
	if !n.leaf {
		sz += 4
	}
	for _, k := range n.keys {
		sz += 2 + len(k)
		if n.leaf {
			sz += 8
		} else {
			sz += 4
		}
	}
	return sz
}

func (t *BTree) load(id PageID) (*bnode, error) {
	f, err := t.pool.Get(id)
	if err != nil {
		return nil, err
	}
	n := readNode(f.Data)
	t.pool.Unpin(f, false)
	return n, nil
}

func (t *BTree) save(id PageID, n *bnode) error {
	f, err := t.pool.GetX(id)
	if err != nil {
		return err
	}
	writeNode(f.Data, n)
	t.pool.Unpin(f, true)
	return nil
}

func (t *BTree) allocNode(n *bnode) (PageID, error) {
	f, err := t.pool.Alloc()
	if err != nil {
		return 0, err
	}
	writeNode(f.Data, n)
	id := f.ID()
	t.pool.Unpin(f, true)
	return id, nil
}

// upperBound returns the first index with keys[i] > key.
func upperBound(keys [][]byte, key []byte) int {
	return sort.Search(len(keys), func(i int) bool { return bytes.Compare(keys[i], key) > 0 })
}

// lowerBound returns the first index with keys[i] >= key.
func lowerBound(keys [][]byte, key []byte) int {
	return sort.Search(len(keys), func(i int) bool { return bytes.Compare(keys[i], key) >= 0 })
}

// Insert adds (key, val).
func (t *BTree) Insert(key []byte, val uint64) error {
	if len(key) > MaxKeyLen {
		return fmt.Errorf("store: btree key of %d bytes exceeds limit %d", len(key), MaxKeyLen)
	}
	root, err := t.rootID()
	if err != nil {
		return err
	}
	sep, right, err := t.insert(root, key, val)
	if err != nil {
		return err
	}
	if right != invalidPage {
		newRoot := &bnode{
			keys:     [][]byte{sep},
			children: []PageID{root, right},
		}
		id, err := t.allocNode(newRoot)
		if err != nil {
			return err
		}
		return t.setRootID(id)
	}
	return nil
}

func (t *BTree) insert(id PageID, key []byte, val uint64) ([]byte, PageID, error) {
	n, err := t.load(id)
	if err != nil {
		return nil, 0, err
	}
	if n.leaf {
		i := upperBound(n.keys, key)
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = append([]byte(nil), key...)
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		return t.maybeSplit(id, n)
	}
	ci := upperBound(n.keys, key)
	sep, right, err := t.insert(n.children[ci], key, val)
	if err != nil {
		return nil, 0, err
	}
	if right == invalidPage {
		return nil, 0, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = sep
	n.children = append(n.children, 0)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	return t.maybeSplit(id, n)
}

// maybeSplit saves n (splitting first if oversized) and returns split info.
func (t *BTree) maybeSplit(id PageID, n *bnode) ([]byte, PageID, error) {
	if nodeSize(n) <= PageSize {
		return nil, 0, t.save(id, n)
	}
	mid := len(n.keys) / 2
	if n.leaf {
		right := &bnode{
			leaf: true,
			keys: append([][]byte(nil), n.keys[mid:]...),
			vals: append([]uint64(nil), n.vals[mid:]...),
			next: n.next,
		}
		rid, err := t.allocNode(right)
		if err != nil {
			return nil, 0, err
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = rid
		if err := t.save(id, n); err != nil {
			return nil, 0, err
		}
		return append([]byte(nil), right.keys[0]...), rid, nil
	}
	sep := n.keys[mid]
	right := &bnode{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]PageID(nil), n.children[mid+1:]...),
	}
	rid, err := t.allocNode(right)
	if err != nil {
		return nil, 0, err
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	if err := t.save(id, n); err != nil {
		return nil, 0, err
	}
	return sep, rid, nil
}

// findLeafID descends to the leaf where key would first appear, scanning
// serialized nodes in place (no per-key allocation; this path dominates
// lookup cost).
func (t *BTree) findLeafID(key []byte) (PageID, error) {
	id, err := t.rootID()
	if err != nil {
		return 0, err
	}
	for {
		f, err := t.pool.Get(id)
		if err != nil {
			return 0, err
		}
		d := f.Data
		if d[0] == 1 { // leaf
			t.pool.Unpin(f, false)
			return id, nil
		}
		cnt := int(binary.LittleEndian.Uint16(d[1:3]))
		off := 7
		child := PageID(binary.LittleEndian.Uint32(d[off : off+4]))
		off += 4
		if key != nil {
			// children[lowerBound(keys, key)]: advance past every key
			// strictly below the target.
			for i := 0; i < cnt; i++ {
				kl := int(binary.LittleEndian.Uint16(d[off : off+2]))
				off += 2
				k := d[off : off+kl]
				off += kl
				if bytes.Compare(k, key) >= 0 {
					break
				}
				child = PageID(binary.LittleEndian.Uint32(d[off : off+4]))
				off += 4
			}
		}
		t.pool.Unpin(f, false)
		id = child
	}
}

// SearchEQ returns the values stored under key.
func (t *BTree) SearchEQ(key []byte) ([]uint64, error) {
	var out []uint64
	err := t.Range(key, key, func(_ []byte, v uint64) bool {
		out = append(out, v)
		return true
	})
	return out, err
}

// Range visits (key, value) pairs with lo <= key <= hi in order. A nil lo
// starts at the smallest key; a nil hi runs to the end. The callback
// returns false to stop. The key slice passed to fn is only valid during
// the call.
func (t *BTree) Range(lo, hi []byte, fn func(key []byte, val uint64) bool) error {
	id, err := t.findLeafID(lo)
	if err != nil {
		return err
	}
	for id != invalidPage {
		f, err := t.pool.Get(id)
		if err != nil {
			return err
		}
		d := f.Data
		cnt := int(binary.LittleEndian.Uint16(d[1:3]))
		next := PageID(binary.LittleEndian.Uint32(d[3:7]))
		off := 7
		for i := 0; i < cnt; i++ {
			kl := int(binary.LittleEndian.Uint16(d[off : off+2]))
			off += 2
			k := d[off : off+kl]
			off += kl
			v := binary.LittleEndian.Uint64(d[off : off+8])
			off += 8
			if lo != nil && bytes.Compare(k, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(k, hi) > 0 {
				t.pool.Unpin(f, false)
				return nil
			}
			if !fn(k, v) {
				t.pool.Unpin(f, false)
				return nil
			}
		}
		t.pool.Unpin(f, false)
		id = next
	}
	return nil
}

// Delete removes one (key, val) pair, reporting whether it was found.
func (t *BTree) Delete(key []byte, val uint64) (bool, error) {
	id, err := t.findLeafID(key)
	if err != nil {
		return false, err
	}
	n, err := t.load(id)
	if err != nil {
		return false, err
	}
	for {
		for i, k := range n.keys {
			c := bytes.Compare(k, key)
			if c > 0 {
				return false, nil
			}
			if c == 0 && n.vals[i] == val {
				n.keys = append(n.keys[:i], n.keys[i+1:]...)
				n.vals = append(n.vals[:i], n.vals[i+1:]...)
				return true, t.save(id, n)
			}
		}
		if n.next == invalidPage {
			return false, nil
		}
		id = n.next
		n, err = t.load(id)
		if err != nil {
			return false, err
		}
	}
}

// Len counts all stored pairs (test/diagnostic use).
func (t *BTree) Len() (int, error) {
	count := 0
	err := t.Range(nil, nil, func([]byte, uint64) bool { count++; return true })
	return count, err
}
