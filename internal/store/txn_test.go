package store_test

// Transaction semantics at the store level: rollback restores content
// exactly, commit is atomic across crashes at every durability
// operation, and a commit refused by the disk (ENOSPC/EIO) aborts
// cleanly into read-only degraded mode.

import (
	"bytes"
	"errors"
	"fmt"
	"syscall"
	"testing"

	"repro/internal/store"
	"repro/internal/store/simfs"
)

// baseRecord / txnRecord are the workload payloads; indexes are record
// numbers so content self-describes.
func baseRecord(n int) []byte { return []byte(fmt.Sprintf("base-record-%03d", n)) }
func txnRecord(n int) []byte  { return []byte(fmt.Sprintf("txn-record-%03d", n)) }

const txnBaseRecords = 40

// buildTxnBase populates a store with the pre-transaction state: a heap
// of base records (flushed and durable) and a meta marker.
func buildTxnBase(t *testing.T, st *store.Store) (store.PageID, []store.RID) {
	t.Helper()
	h, err := store.CreateHeap(st.Pool())
	if err != nil {
		t.Fatal(err)
	}
	var rids []store.RID
	for i := 0; i < txnBaseRecords; i++ {
		rid, err := h.Insert(baseRecord(i))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := st.SetMeta("heap.root", uint64(h.Root())); err != nil {
		t.Fatal(err)
	}
	if err := st.SetMeta("base.done", 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	return h.Root(), rids
}

// mutateInTxn applies the transaction's workload: delete some base
// records, overwrite one, insert new ones (enough to allocate fresh
// pages), and touch the meta table.
func mutateInTxn(t *testing.T, st *store.Store, root store.PageID, rids []store.RID) {
	t.Helper()
	h := store.OpenHeap(st.Pool(), root)
	for i := 0; i < 5; i++ {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Update(rids[7], []byte("txn-overwrite")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := h.Insert(txnRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	big := make([]byte, 2*store.PageSize)
	for i := range big {
		big[i] = byte(i)
	}
	if _, err := h.Insert(big); err != nil {
		t.Fatal(err)
	}
	if err := st.SetMeta("txn.applied", 1); err != nil {
		t.Fatal(err)
	}
}

// verifyBaseState checks the store holds exactly the pre-transaction
// content (a fresh heap handle: rollback invalidates cached hints).
func verifyBaseState(t *testing.T, st *store.Store, label string) {
	t.Helper()
	if v, _ := st.GetMeta("txn.applied"); v != 0 {
		t.Fatalf("%s: txn.applied marker survived", label)
	}
	if v, _ := st.GetMeta("base.done"); v != 1 {
		t.Fatalf("%s: base.done marker lost", label)
	}
	root, ok := st.GetMeta("heap.root")
	if !ok {
		t.Fatalf("%s: heap root lost", label)
	}
	h := store.OpenHeap(st.Pool(), store.PageID(root))
	got := map[string]int{}
	if err := h.Scan(func(_ store.RID, rec []byte) (bool, error) {
		got[string(rec)]++
		return true, nil
	}); err != nil {
		t.Fatalf("%s: scan: %v", label, err)
	}
	if len(got) != txnBaseRecords {
		t.Fatalf("%s: %d distinct records, want %d", label, len(got), txnBaseRecords)
	}
	for i := 0; i < txnBaseRecords; i++ {
		if got[string(baseRecord(i))] != 1 {
			t.Fatalf("%s: base record %d missing or duplicated", label, i)
		}
	}
}

// verifyTxnState checks the store holds exactly the post-transaction
// content.
func verifyTxnState(t *testing.T, st *store.Store, label string) {
	t.Helper()
	if v, _ := st.GetMeta("txn.applied"); v != 1 {
		t.Fatalf("%s: txn.applied marker missing", label)
	}
	root, _ := st.GetMeta("heap.root")
	h := store.OpenHeap(st.Pool(), store.PageID(root))
	got := map[string]int{}
	big := 0
	if err := h.Scan(func(_ store.RID, rec []byte) (bool, error) {
		if len(rec) == 2*store.PageSize {
			big++
		} else {
			got[string(rec)]++
		}
		return true, nil
	}); err != nil {
		t.Fatalf("%s: scan: %v", label, err)
	}
	if big != 1 {
		t.Fatalf("%s: %d overflow records, want 1", label, big)
	}
	for i := 5; i < txnBaseRecords; i++ {
		want := string(baseRecord(i))
		if i == 7 {
			want = "txn-overwrite"
		}
		if got[want] != 1 {
			t.Fatalf("%s: record %d (%q) missing after commit", label, i, want)
		}
	}
	for i := 0; i < 5; i++ {
		if got[string(baseRecord(i))] != 0 {
			t.Fatalf("%s: deleted record %d resurrected", label, i)
		}
	}
	for i := 0; i < 30; i++ {
		if got[string(txnRecord(i))] != 1 {
			t.Fatalf("%s: txn record %d missing", label, i)
		}
	}
}

// TestTxnRollbackRestoresStore proves Begin → mutate → Rollback is a
// perfect undo for both pagers: heap content, meta table, allocations
// and the buffer pool all return to the pre-transaction state, and the
// same transaction retried with Commit then sticks.
func TestTxnRollbackRestoresStore(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			var st *store.Store
			var err error
			if backend == "mem" {
				st, err = store.Open("", 64)
			} else {
				st, err = store.OpenFS(simfs.New(nil), "kb", 64)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			root, rids := buildTxnBase(t, st)
			nPages := st.Pool().Pager().NumPages()

			if err := st.Begin(); err != nil {
				t.Fatal(err)
			}
			if err := st.Begin(); !errors.Is(err, store.ErrTxnOpen) {
				t.Fatalf("nested Begin: %v, want ErrTxnOpen", err)
			}
			mutateInTxn(t, st, root, rids)
			if err := st.Rollback(); err != nil {
				t.Fatal(err)
			}
			if got := st.Pool().Pager().NumPages(); got != nPages {
				t.Fatalf("rollback left %d pages, want %d", got, nPages)
			}
			verifyBaseState(t, st, "after rollback")
			if err := st.Rollback(); !errors.Is(err, store.ErrNoTxn) {
				t.Fatalf("stray Rollback: %v, want ErrNoTxn", err)
			}
			if err := st.Commit(); !errors.Is(err, store.ErrNoTxn) {
				t.Fatalf("stray Commit: %v, want ErrNoTxn", err)
			}
			if st.ReadOnly() {
				t.Fatal("stray Commit must not degrade the store")
			}

			// The same transaction, committed, sticks.
			if err := st.Begin(); err != nil {
				t.Fatal(err)
			}
			mutateInTxn(t, st, root, rids)
			if err := st.Commit(); err != nil {
				t.Fatal(err)
			}
			verifyTxnState(t, st, "after commit")
		})
	}
}

// TestTxnDurability commits a transaction on a file store and reopens
// the image: the transaction must be durable even with no checkpoint
// (recovered from the log alone), and a rolled-back transaction must
// leave no trace after reopen.
func TestTxnDurability(t *testing.T) {
	fsys := simfs.New(nil)
	st, err := store.OpenFS(fsys, "kb", 64)
	if err != nil {
		t.Fatal(err)
	}
	root, rids := buildTxnBase(t, st)
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	mutateInTxn(t, st, root, rids)
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	// No Close (which would checkpoint): reopen from the harvested image
	// so recovery must come from the log.
	img := fsys.Harvest(simfs.Keep)
	st2, err := store.OpenFS(img, "kb", 64)
	if err != nil {
		t.Fatal(err)
	}
	verifyTxnState(t, st2, "reopen after commit")
	st2.Close()

	// Rollback then crash: reopen sees the base state.
	fsys2 := simfs.New(nil)
	st3, err := store.OpenFS(fsys2, "kb", 64)
	if err != nil {
		t.Fatal(err)
	}
	root, rids = buildTxnBase(t, st3)
	if err := st3.Begin(); err != nil {
		t.Fatal(err)
	}
	mutateInTxn(t, st3, root, rids)
	if err := st3.Rollback(); err != nil {
		t.Fatal(err)
	}
	verifyBaseState(t, st3, "rollback before crash")
	img2 := fsys2.Harvest(simfs.Keep)
	st4, err := store.OpenFS(img2, "kb", 64)
	if err != nil {
		t.Fatal(err)
	}
	verifyBaseState(t, st4, "reopen after rollback")
	st4.Close()
}

// runTxnCommitWorkload is the crash-matrix workload: durable base
// state, then a transaction committed with the txn.applied marker
// riding the same commit. Every durability operation the run performs
// is a potential crash point.
func runTxnCommitWorkload(t *testing.T, fsys store.FS) error {
	st, err := store.OpenFS(fsys, "kb", 64)
	if err != nil {
		return err
	}
	h, err := store.CreateHeap(st.Pool())
	if err != nil {
		return err
	}
	var rids []store.RID
	for i := 0; i < txnBaseRecords; i++ {
		rid, err := h.Insert(baseRecord(i))
		if err != nil {
			return err
		}
		rids = append(rids, rid)
	}
	if err := st.SetMeta("heap.root", uint64(h.Root())); err != nil {
		return err
	}
	if err := st.SetMeta("base.done", 1); err != nil {
		return err
	}
	if err := st.Flush(); err != nil {
		return err
	}
	if err := st.Begin(); err != nil {
		return err
	}
	mutateInTxn(t, st, h.Root(), rids)
	if err := st.Commit(); err != nil {
		return err
	}
	return st.Close()
}

// TestTxnCommitCrashMatrix kills the process at every durability
// operation of a run whose tail is an open transaction being committed,
// under every drop/keep/torn interpretation: recovery must land on
// exactly the pre-transaction state or exactly the committed state —
// the txn.applied marker (which rides the commit) says which.
func TestTxnCommitCrashMatrix(t *testing.T) {
	probe := simfs.NewCtl(-1)
	if err := runTxnCommitWorkload(t, simfs.New(probe)); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	total := probe.Ops()
	if total < 4 {
		t.Fatalf("workload produced only %d durability ops", total)
	}
	for k := 0; k < total; k++ {
		for _, variant := range simfs.Variants {
			fsys := simfs.New(simfs.NewCtl(k))
			if err := runTxnCommitWorkload(t, fsys); err == nil {
				t.Fatalf("crash at op %d/%d never surfaced", k, total)
			}
			label := fmt.Sprintf("crash at op %d/%d, %s", k, total, variant)
			st, err := store.OpenFS(fsys.Harvest(variant), "kb", 64)
			if err != nil {
				t.Fatalf("%s: reopen: %v", label, err)
			}
			if v, _ := st.GetMeta("base.done"); v != 1 {
				// Crashed before the base state committed: nothing to hold
				// the store to yet (the transaction never opened).
				st.Close()
				continue
			}
			if v, _ := st.GetMeta("txn.applied"); v == 1 {
				verifyTxnState(t, st, label)
			} else {
				verifyBaseState(t, st, label)
			}
			st.Close()
		}
	}
}

// TestTxnCommitFaultDegradesReadOnly injects ENOSPC/EIO into each
// durability operation of the commit itself: Commit must return the
// fault, roll the transaction back, and flip the store read-only —
// reads keep serving the pre-transaction state, new transactions are
// refused, and a reopen of the same disk finds the pre-transaction
// state with no trace of the aborted commit marker.
func TestTxnCommitFaultDegradesReadOnly(t *testing.T) {
	// Probe: count the ops before and during Commit.
	probe := simfs.NewCtl(-1)
	pfs := simfs.New(probe)
	pst, err := store.OpenFS(pfs, "kb", 64)
	if err != nil {
		t.Fatal(err)
	}
	root, rids := buildTxnBase(t, pst)
	if err := pst.Begin(); err != nil {
		t.Fatal(err)
	}
	mutateInTxn(t, pst, root, rids)
	preCommit := probe.Ops()
	if err := pst.Commit(); err != nil {
		t.Fatal(err)
	}
	commitOps := probe.Ops() - preCommit
	pst.Close()
	if commitOps < 2 {
		t.Fatalf("commit performed %d durability ops, expected at least WAL write + fsync", commitOps)
	}

	for k := preCommit; k < preCommit+commitOps; k++ {
		for _, inject := range []error{syscall.ENOSPC, syscall.EIO} {
			label := fmt.Sprintf("fault %v at op %d", inject, k)
			ctl := simfs.NewCtl(-1)
			ctl.FailAt(k, inject)
			fsys := simfs.New(ctl)
			st, err := store.OpenFS(fsys, "kb", 64)
			if err != nil {
				t.Fatalf("%s: open: %v", label, err)
			}
			root, rids := buildTxnBase(t, st)
			if err := st.Begin(); err != nil {
				t.Fatalf("%s: begin: %v", label, err)
			}
			mutateInTxn(t, st, root, rids)
			err = st.Commit()
			if !errors.Is(err, inject) {
				t.Fatalf("%s: Commit = %v, want the injected fault", label, err)
			}
			if !st.ReadOnly() {
				t.Fatalf("%s: store not read-only after failed commit", label)
			}
			verifyBaseState(t, st, label+" (degraded reads)")
			if err := st.Begin(); !errors.Is(err, store.ErrReadOnly) {
				t.Fatalf("%s: Begin on degraded store = %v, want ErrReadOnly", label, err)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("%s: close: %v", label, err)
			}
			// The disk heals; reopening must find the pre-transaction
			// state — in particular the possibly-written commit marker
			// must not resurrect the aborted transaction.
			st2, err := store.OpenFS(fsys, "kb", 64)
			if err != nil {
				t.Fatalf("%s: reopen: %v", label, err)
			}
			if st2.ReadOnly() {
				t.Fatalf("%s: read-only state leaked across reopen", label)
			}
			verifyBaseState(t, st2, label+" (reopen)")
			st2.Close()
		}
	}
}

// TestTxnAbandonedOnCloseRollsBack closes a store with a transaction
// still open: Close must roll it back, not persist half of it.
func TestTxnAbandonedOnCloseRollsBack(t *testing.T) {
	fsys := simfs.New(nil)
	st, err := store.OpenFS(fsys, "kb", 64)
	if err != nil {
		t.Fatal(err)
	}
	root, rids := buildTxnBase(t, st)
	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	mutateInTxn(t, st, root, rids)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.OpenFS(fsys, "kb", 64)
	if err != nil {
		t.Fatal(err)
	}
	verifyBaseState(t, st2, "reopen after abandoned txn")
	st2.Close()
}

// TestMemTxnFreeListRollback exercises the memory pager's undo of
// allocate-from-free-list and Free: the free chain and page contents
// must come back exactly.
func TestMemTxnFreeListRollback(t *testing.T) {
	st, err := store.Open("", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	pool := st.Pool()
	var frames []*store.Frame
	for i := 0; i < 4; i++ {
		f, err := pool.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		for j := range f.Data {
			f.Data[j] = byte(10 + i)
		}
		frames = append(frames, f)
		pool.Unpin(f, true)
	}
	// Free one page so the transaction can reuse it from the free list.
	freed := frames[1].ID()
	if err := pool.Free(freed); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	nPages := pool.Pager().NumPages()

	if err := st.Begin(); err != nil {
		t.Fatal(err)
	}
	// Reuse the freed page and grow some more; dirty an existing page.
	f, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != freed {
		t.Fatalf("allocation reused page %d, want freed page %d", f.ID(), freed)
	}
	pool.Unpin(f, true)
	g, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	pool.Unpin(g, true)
	h, err := pool.GetX(frames[2].ID())
	if err != nil {
		t.Fatal(err)
	}
	h.Data[0] = 0xFF
	pool.Unpin(h, true)
	if err := st.Rollback(); err != nil {
		t.Fatal(err)
	}

	if got := pool.Pager().NumPages(); got != nPages {
		t.Fatalf("rollback left %d pages, want %d", got, nPages)
	}
	// The freed page is back on the free list: allocating returns it.
	f2, err := pool.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if f2.ID() != freed {
		t.Fatalf("post-rollback allocation returned %d, want %d", f2.ID(), freed)
	}
	pool.Unpin(f2, false)
	// Untouched pages kept their content.
	chk, err := pool.Get(frames[2].ID())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chk.Data[:4], []byte{12, 12, 12, 12}) {
		t.Fatalf("page %d content corrupted by rollback: % x", frames[2].ID(), chk.Data[:4])
	}
	pool.Unpin(chk, false)
}
