package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func memStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open("", 64)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPagerAllocateFreeReuse(t *testing.T) {
	for _, mode := range []string{"mem", "file"} {
		t.Run(mode, func(t *testing.T) {
			var p Pager
			var err error
			if mode == "mem" {
				p = NewMemPager()
			} else {
				p, err = OpenFilePager(filepath.Join(t.TempDir(), "t.db"))
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
			}
			a, _ := p.Allocate()
			b, _ := p.Allocate()
			if a == b || a == 0 || b == 0 {
				t.Fatalf("bad allocation: %d %d", a, b)
			}
			buf := make([]byte, PageSize)
			buf[0] = 0xAB
			if err := p.WritePage(a, buf); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, PageSize)
			if err := p.ReadPage(a, got); err != nil {
				t.Fatal(err)
			}
			if got[0] != 0xAB {
				t.Fatal("page content lost")
			}
			if err := p.Free(a); err != nil {
				t.Fatal(err)
			}
			c, _ := p.Allocate()
			if c != a {
				t.Fatalf("freed page not reused: got %d want %d", c, a)
			}
			// A reused page must come back zeroed.
			if err := p.ReadPage(c, got); err != nil {
				t.Fatal(err)
			}
			if got[0] != 0 {
				t.Fatal("reused page not zeroed")
			}
		})
	}
}

func TestFilePagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	p, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := p.Allocate()
	buf := make([]byte, PageSize)
	copy(buf, "hello pages")
	if err := p.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.(metaTable).metaSet("root", uint64(id)); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenFilePager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	v, ok := p2.(metaTable).metaGet("root")
	if !ok || PageID(v) != id {
		t.Fatalf("meta lost: %d %v", v, ok)
	}
	got := make([]byte, PageSize)
	if err := p2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:11]) != "hello pages" {
		t.Fatal("page content lost across reopen")
	}
}

func TestBufferPoolCountsIO(t *testing.T) {
	s := memStore(t)
	f, err := s.Pool().Alloc()
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	f.Data[0] = 7
	s.Pool().Unpin(f, true)
	s.ResetStats()

	// Hit: still in pool.
	f, _ = s.Pool().Get(id)
	s.Pool().Unpin(f, false)
	st := s.Stats()
	if st.Accesses != 1 || st.Hits != 1 || st.Reads != 0 {
		t.Fatalf("stats after hit: %+v", st)
	}
}

func TestBufferPoolEviction(t *testing.T) {
	s, err := Open("", 8)
	if err != nil {
		t.Fatal(err)
	}
	var ids []PageID
	for i := 0; i < 20; i++ {
		f, err := s.Pool().Alloc()
		if err != nil {
			t.Fatal(err)
		}
		f.Data[0] = byte(i)
		ids = append(ids, f.ID())
		s.Pool().Unpin(f, true)
	}
	// All pages readable with correct content despite eviction.
	for i, id := range ids {
		f, err := s.Pool().Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.Data[0] != byte(i) {
			t.Fatalf("page %d content %d, want %d", id, f.Data[0], i)
		}
		s.Pool().Unpin(f, false)
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("expected evictions with a small pool")
	}
}

func TestBufferPoolAllPinned(t *testing.T) {
	s, err := Open("", 8)
	if err != nil {
		t.Fatal(err)
	}
	var frames []*Frame
	for i := 0; i < 8; i++ {
		f, err := s.Pool().Alloc()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if _, err := s.Pool().Alloc(); err == nil {
		t.Fatal("expected pool-exhausted error")
	}
	for _, f := range frames {
		s.Pool().Unpin(f, false)
	}
	if _, err := s.Pool().Alloc(); err != nil {
		t.Fatalf("alloc after unpin: %v", err)
	}
}

func TestHeapInsertGetDelete(t *testing.T) {
	s := memStore(t)
	h, err := CreateHeap(s.Pool())
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("record-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		data, err := h.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != fmt.Sprintf("record-%03d", i) {
			t.Fatalf("record %d corrupted: %q", i, data)
		}
	}
	if err := h.Delete(rids[10]); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rids[10]); err == nil {
		t.Fatal("deleted record still readable")
	}
	// Slot reuse.
	rid, err := h.Insert([]byte("replacement"))
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page != rids[10].Page || rid.Slot != rids[10].Slot {
		// Reuse is best-effort; at minimum the new record must be intact.
		t.Logf("slot not reused: %v vs %v", rid, rids[10])
	}
	data, _ := h.Get(rid)
	if string(data) != "replacement" {
		t.Fatal("replacement corrupted")
	}
}

func TestHeapLargeRecords(t *testing.T) {
	s := memStore(t)
	h, err := CreateHeap(s.Pool())
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 3*PageSize+123)
	for i := range big {
		big[i] = byte(i * 7)
	}
	rid, err := h.Insert(big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large record corrupted")
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(rid); err == nil {
		t.Fatal("deleted large record still readable")
	}
}

func TestHeapScan(t *testing.T) {
	s := memStore(t)
	h, _ := CreateHeap(s.Pool())
	want := map[string]bool{}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("r%d", i)
		want[key] = true
		if _, err := h.Insert([]byte(key)); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]bool{}
	err := h.Scan(func(_ RID, data []byte) (bool, error) {
		got[string(data)] = true
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan found %d records, want %d", len(got), len(want))
	}
}

func TestHeapUpdate(t *testing.T) {
	s := memStore(t)
	h, _ := CreateHeap(s.Pool())
	rid, _ := h.Insert([]byte("old"))
	nrid, err := h.Update(rid, []byte("new value that is longer"))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h.Get(nrid)
	if string(got) != "new value that is longer" {
		t.Fatal("update lost data")
	}
}

func intKey(v int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(v))
	return b
}

func TestBTreeInsertSearch(t *testing.T) {
	s := memStore(t)
	bt, err := CreateBTree(s.Pool())
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	perm := rand.New(rand.NewSource(42)).Perm(n)
	for _, v := range perm {
		if err := bt.Insert(intKey(v), uint64(v*10)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 37 {
		vals, err := bt.SearchEQ(intKey(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != uint64(i*10) {
			t.Fatalf("search %d = %v", i, vals)
		}
	}
	if vals, _ := bt.SearchEQ(intKey(n + 5)); len(vals) != 0 {
		t.Fatal("found absent key")
	}
	if l, _ := bt.Len(); l != n {
		t.Fatalf("Len = %d, want %d", l, n)
	}
}

func TestBTreeRange(t *testing.T) {
	s := memStore(t)
	bt, _ := CreateBTree(s.Pool())
	for i := 0; i < 1000; i++ {
		if err := bt.Insert(intKey(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := bt.Range(intKey(100), intKey(199), func(_ []byte, v uint64) bool {
		got = append(got, v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 || got[0] != 100 || got[99] != 199 {
		t.Fatalf("range 100..199: %d values, first %d last %d", len(got), got[0], got[len(got)-1])
	}
	// Ordering over the full range.
	prev := -1
	err = bt.Range(nil, nil, func(k []byte, _ uint64) bool {
		v := int(binary.BigEndian.Uint64(k))
		if v < prev {
			t.Fatalf("out of order: %d after %d", v, prev)
		}
		prev = v
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBTreeDuplicates(t *testing.T) {
	s := memStore(t)
	bt, _ := CreateBTree(s.Pool())
	for i := 0; i < 50; i++ {
		if err := bt.Insert([]byte("dup"), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	vals, _ := bt.SearchEQ([]byte("dup"))
	if len(vals) != 50 {
		t.Fatalf("duplicates: %d values", len(vals))
	}
	ok, err := bt.Delete([]byte("dup"), 25)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	vals, _ = bt.SearchEQ([]byte("dup"))
	if len(vals) != 49 {
		t.Fatalf("after delete: %d values", len(vals))
	}
	for _, v := range vals {
		if v == 25 {
			t.Fatal("deleted value still present")
		}
	}
	ok, _ = bt.Delete([]byte("dup"), 999)
	if ok {
		t.Fatal("deleted absent value")
	}
}

func TestBTreeVariableKeys(t *testing.T) {
	s := memStore(t)
	bt, _ := CreateBTree(s.Pool())
	keys := []string{"", "a", "abc", "abcd", "b", "zebra", "zz"}
	for i, k := range keys {
		if err := bt.Insert([]byte(k), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	bt.Range(nil, nil, func(k []byte, _ uint64) bool {
		got = append(got, string(k))
		return true
	})
	if !sort.StringsAreSorted(got) {
		t.Fatalf("keys out of order: %v", got)
	}
	if err := bt.Insert(make([]byte, MaxKeyLen+1), 0); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestBTreeProperty(t *testing.T) {
	s := memStore(t)
	bt, _ := CreateBTree(s.Pool())
	inserted := map[string]uint64{}
	f := func(key string, val uint64) bool {
		if len(key) > MaxKeyLen {
			key = key[:MaxKeyLen]
		}
		if _, dup := inserted[key]; dup {
			return true
		}
		if err := bt.Insert([]byte(key), val); err != nil {
			return false
		}
		inserted[key] = val
		vals, err := bt.SearchEQ([]byte(key))
		return err == nil && len(vals) == 1 && vals[0] == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Everything remains findable at the end.
	for k, v := range inserted {
		vals, err := bt.SearchEQ([]byte(k))
		if err != nil || len(vals) != 1 || vals[0] != v {
			t.Fatalf("lost key %q: %v %v", k, vals, err)
		}
	}
}

func TestGridInsertAndExactMatch(t *testing.T) {
	s := memStore(t)
	g, err := CreateGrid(s.Pool(), 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		h := []uint64{uint64(i % 17), uint64(i % 31), uint64(i)}
		if err := g.Insert(h, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l, _ := g.Len(); l != n {
		t.Fatalf("Len = %d, want %d", l, n)
	}
	// Exact match on all attributes.
	var got []uint64
	err = g.PartialMatch([]bool{true, true, true}, []uint64{1244 % 17, 1244 % 31, 1244}, func(p uint64) bool {
		got = append(got, p)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1244 {
		t.Fatalf("exact match = %v", got)
	}
}

func TestGridPartialMatch(t *testing.T) {
	s := memStore(t)
	g, _ := CreateGrid(s.Pool(), 2)
	// 100 tuples: attr0 in 0..9, attr1 in 0..9.
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			if err := g.Insert([]uint64{uint64(a), uint64(b)}, uint64(a*10+b)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Constrain attr0 only: expect the 10 tuples with attr0 = 7.
	var got []uint64
	err := g.PartialMatch([]bool{true, false}, []uint64{7, 0}, func(p uint64) bool {
		got = append(got, p)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("partial match found %d tuples, want 10: %v", len(got), got)
	}
	for _, p := range got {
		if p/10 != 7 {
			t.Fatalf("wrong tuple %d", p)
		}
	}
	// Constrain attr1 only.
	got = got[:0]
	g.PartialMatch([]bool{false, true}, []uint64{0, 3}, func(p uint64) bool {
		got = append(got, p)
		return true
	})
	if len(got) != 10 {
		t.Fatalf("attr1 partial match: %d tuples", len(got))
	}
}

func TestGridDelete(t *testing.T) {
	s := memStore(t)
	g, _ := CreateGrid(s.Pool(), 2)
	g.Insert([]uint64{1, 2}, 100)
	g.Insert([]uint64{1, 2}, 101)
	ok, err := g.Delete([]uint64{1, 2}, 100)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if l, _ := g.Len(); l != 1 {
		t.Fatalf("Len after delete = %d", l)
	}
	ok, _ = g.Delete([]uint64{1, 2}, 100)
	if ok {
		t.Fatal("double delete succeeded")
	}
}

func TestGridCollisionsOverflow(t *testing.T) {
	s := memStore(t)
	g, _ := CreateGrid(s.Pool(), 1)
	// Same hash for everything: forces overflow chains past max depth.
	for i := 0; i < 1000; i++ {
		if err := g.Insert([]uint64{42}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l, _ := g.Len(); l != 1000 {
		t.Fatalf("Len = %d", l)
	}
	count := 0
	g.PartialMatch([]bool{true}, []uint64{42}, func(uint64) bool { count++; return true })
	if count != 1000 {
		t.Fatalf("collision bucket lost entries: %d", count)
	}
}

func TestGridPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.db")
	s, err := Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	g, err := CreateGrid(s.Pool(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := g.Insert([]uint64{uint64(i % 13), uint64(i)}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	header := g.Header()
	if err := s.SetMeta("grid", uint64(header)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	root, ok := s2.GetMeta("grid")
	if !ok {
		t.Fatal("grid meta lost")
	}
	g2, err := OpenGrid(s2.Pool(), PageID(root))
	if err != nil {
		t.Fatal(err)
	}
	if l, _ := g2.Len(); l != 500 {
		t.Fatalf("reopened grid Len = %d", l)
	}
	var got []uint64
	g2.PartialMatch([]bool{true, false}, []uint64{5, 0}, func(p uint64) bool {
		got = append(got, p)
		return true
	})
	for _, p := range got {
		if p%13 != 5 {
			t.Fatalf("wrong tuple after reopen: %d", p)
		}
	}
}

func TestBTreePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bt.db")
	s, _ := Open(path, 64)
	bt, _ := CreateBTree(s.Pool())
	for i := 0; i < 2000; i++ {
		bt.Insert(intKey(i), uint64(i))
	}
	s.SetMeta("bt", uint64(bt.Anchor()))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(path, 64)
	defer s2.Close()
	anchor, _ := s2.GetMeta("bt")
	bt2 := OpenBTree(s2.Pool(), PageID(anchor))
	vals, err := bt2.SearchEQ(intKey(1234))
	if err != nil || len(vals) != 1 || vals[0] != 1234 {
		t.Fatalf("reopened search: %v %v", vals, err)
	}
}

func TestRIDPacking(t *testing.T) {
	f := func(page uint32, slot uint16) bool {
		r := RID{Page: PageID(page), Slot: slot}
		return UnpackRID(r.Pack()) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
