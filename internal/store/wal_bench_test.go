package store_test

// Write-amplification accounting for the durable pager. Before the WAL,
// every Allocate performed two file writes on the spot (the zeroed page
// and the rewritten header), plus one more per page at flush — so a
// fresh-page workload paid ≥2 file writes per allocation. With the
// header held in memory and committed through the log, an allocation
// costs zero immediate writes; the page reaches the file once, at
// checkpoint, and the log batch adds one write per commit group.

import (
	"testing"

	"repro/internal/store"
	"repro/internal/store/simfs"
)

// BenchmarkAllocateDurable allocates and dirties fresh pages against a
// file-backed store, committing every 64 pages, and reports the file
// writes and fsyncs per allocated page.
func BenchmarkAllocateDurable(b *testing.B) {
	fsys := simfs.New(nil)
	st, err := store.OpenFS(fsys, "kb", 256)
	if err != nil {
		b.Fatal(err)
	}
	pool := st.Pool()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := pool.Alloc()
		if err != nil {
			b.Fatal(err)
		}
		f.Data[0] = byte(i)
		pool.Unpin(f, true)
		if i%64 == 63 {
			if err := st.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	writes, syncs := fsys.Counts()
	b.ReportMetric(float64(writes)/float64(b.N), "file-writes/alloc")
	b.ReportMetric(float64(syncs)/float64(b.N), "fsyncs/alloc")
}
