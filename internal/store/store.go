package store

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// Store bundles a pager and a buffer pool and exposes a small name->root
// metadata table used by higher layers (the EDB catalog) to find their
// structures again after reopening a file. It also owns the metrics
// registry shared by every layer of the knowledge base built on top of
// it (the store is the bottom of the stack, so the registry is created
// here and exposed upward via Obs).
type Store struct {
	pager Pager
	pool  *Pool
	reg   *obs.Registry
	// readOnly flips on when a transaction commit fails against the
	// disk (ENOSPC, EIO, ...): the in-memory state was rolled back but
	// the medium is suspect, so the store keeps serving reads and
	// refuses writes until reopened. See Commit.
	readOnly atomic.Bool
}

// ErrReadOnly reports a write attempted on a store degraded to
// read-only mode after a failed transaction commit. Test with
// errors.Is.
var ErrReadOnly = errors.New("store: read-only (degraded after a failed commit)")

// DefaultPoolPages is the default buffer pool capacity. The paper's test
// configuration gave the kernel roughly 2 MB of working memory; 512 pages
// of 4 KiB matches that footprint.
const DefaultPoolPages = 512

// Options configures a store beyond its path. The zero value selects
// the defaults (DefaultPoolPages, the built-in checkpoint threshold,
// no WAL archiving).
type Options struct {
	// PoolPages is the buffer pool capacity (<= 0: DefaultPoolPages).
	PoolPages int
	// CheckpointBytes is the WAL size past which a commit checkpoints
	// and truncates the log (<= 0: the built-in 4 MiB default). Small
	// thresholds cut archive segments more often.
	CheckpointBytes int64
	// ArchiveDir, when non-empty, enables WAL segment archiving: every
	// checkpoint appends the committed log to a numbered segment there
	// instead of discarding it, enabling point-in-time restore
	// (Backup/Restore). The filesystem must support directory
	// operations (ArchiveFS; the real filesystem and simfs both do).
	ArchiveDir string
	// ArchiveBudget bounds the archive's total size in bytes; oldest
	// segments are pruned first (0: unlimited).
	ArchiveBudget int64
}

// Open opens (or creates) a store. An empty path yields an in-memory
// store. poolPages <= 0 selects DefaultPoolPages.
func Open(path string, poolPages int) (*Store, error) {
	return OpenFS(OSFS{}, path, poolPages)
}

// OpenFS is Open over an explicit filesystem, letting tests inject
// deterministic in-memory files and crash points under a real store.
func OpenFS(fsys FS, path string, poolPages int) (*Store, error) {
	return OpenOptionsFS(fsys, path, Options{PoolPages: poolPages})
}

// OpenOptions opens (or creates) a store with explicit options.
func OpenOptions(path string, opts Options) (*Store, error) {
	return OpenOptionsFS(OSFS{}, path, opts)
}

// OpenOptionsFS is OpenOptions over an explicit filesystem.
func OpenOptionsFS(fsys FS, path string, opts Options) (*Store, error) {
	poolPages := opts.PoolPages
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	var pager Pager
	var err error
	if path == "" {
		pager = NewMemPager()
	} else {
		pager, err = openFilePagerFS(fsys, path, opts)
		if err != nil {
			return nil, err
		}
	}
	return NewStore(pager, poolPages), nil
}

// NewStore builds a store over an already-open pager.
func NewStore(pager Pager, poolPages int) *Store {
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	reg := obs.NewRegistry()
	if oa, ok := pager.(obsAttacher); ok {
		oa.attachObs(reg)
	}
	s := &Store{pager: pager, pool: NewPoolObs(pager, poolPages, reg), reg: reg}
	reg.RegisterFunc("store.read_only", func() any {
		if s.readOnly.Load() {
			return uint64(1)
		}
		return uint64(0)
	})
	return s
}

// Pool returns the buffer pool.
func (s *Store) Pool() *Pool { return s.pool }

// Obs returns the metrics registry shared by every layer of the
// knowledge base built on this store.
func (s *Store) Obs() *obs.Registry { return s.reg }

// Stats returns buffer pool I/O counters.
func (s *Store) Stats() IOStats { return s.pool.Stats() }

// ResetStats zeroes the I/O counters.
func (s *Store) ResetStats() { s.pool.ResetStats() }

// SetMeta records a named root value (page or packed RID) in the store
// header so it survives reopening.
func (s *Store) SetMeta(name string, v uint64) error {
	mt, ok := s.pager.(metaTable)
	if !ok {
		return fmt.Errorf("store: pager has no metadata table")
	}
	return mt.metaSet(name, v)
}

// GetMeta fetches a named root value.
func (s *Store) GetMeta(name string) (uint64, bool) {
	mt, ok := s.pager.(metaTable)
	if !ok {
		return 0, false
	}
	return mt.metaGet(name)
}

// Flush writes all dirty pages to the pager.
func (s *Store) Flush() error { return s.pool.FlushAll() }

// ReadOnly reports whether the store has degraded to read-only mode
// after a failed transaction commit.
func (s *Store) ReadOnly() bool { return s.readOnly.Load() }

// txnPager returns the pager's transaction interface.
func (s *Store) txnPager() (TxnPager, error) {
	tp, ok := s.pager.(TxnPager)
	if !ok {
		return nil, fmt.Errorf("store: pager %T does not support transactions", s.pager)
	}
	return tp, nil
}

// Begin opens a transaction: every page written until Commit stays
// buffered in memory, invisible to the files, and Rollback restores the
// store exactly. The caller must serialize all access to the store for
// the duration (the knowledge base holds its write lock across the
// transaction). Transactions do not nest.
func (s *Store) Begin() error {
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	tp, err := s.txnPager()
	if err != nil {
		return err
	}
	// Flush first so the pager's snapshot point contains everything the
	// pool was holding: from here on, dirty frames belong to the
	// transaction and are discarded wholesale on rollback.
	if err := s.pool.FlushAll(); err != nil {
		return err
	}
	return tp.BeginTxn()
}

// Commit makes the open transaction durable. On failure the
// transaction is rolled back, every buffered frame is invalidated, and
// the store degrades to read-only: reads keep working from the intact
// pre-transaction state, writes return ErrReadOnly until the store is
// reopened against a healthy disk.
func (s *Store) Commit() error {
	tp, err := s.txnPager()
	if err != nil {
		return err
	}
	if !tp.InTxn() {
		return ErrNoTxn
	}
	if err := s.pool.FlushAll(); err != nil {
		// Write-back into the pager failed before the commit point; the
		// pager still holds a consistent transaction to undo.
		if rerr := tp.RollbackTxn(); rerr == nil {
			s.pool.Invalidate()
		}
		s.readOnly.Store(true)
		return err
	}
	if err := tp.CommitTxn(); err != nil {
		if errors.Is(err, ErrNoTxn) {
			return err // caller error, not a disk fault
		}
		// CommitTxn rolled the pager back itself; drop every cached
		// frame so no rolled-back bytes survive in the pool.
		s.pool.Invalidate()
		s.readOnly.Store(true)
		return err
	}
	return nil
}

// Rollback undoes the open transaction: the pager restores its
// pre-transaction state and the buffer pool drops every frame (clean or
// dirty — either may hold transaction bytes).
func (s *Store) Rollback() error {
	tp, err := s.txnPager()
	if err != nil {
		return err
	}
	if err := tp.RollbackTxn(); err != nil {
		return err
	}
	s.pool.Invalidate()
	return nil
}

// InTxn reports whether a transaction is open.
func (s *Store) InTxn() bool {
	tp, err := s.txnPager()
	if err != nil {
		return false
	}
	return tp.InTxn()
}

// Close flushes and closes the underlying file.
func (s *Store) Close() error {
	if err := s.pool.FlushAll(); err != nil {
		s.pager.Close()
		return err
	}
	return s.pager.Close()
}
