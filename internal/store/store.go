package store

import (
	"fmt"

	"repro/internal/obs"
)

// Store bundles a pager and a buffer pool and exposes a small name->root
// metadata table used by higher layers (the EDB catalog) to find their
// structures again after reopening a file. It also owns the metrics
// registry shared by every layer of the knowledge base built on top of
// it (the store is the bottom of the stack, so the registry is created
// here and exposed upward via Obs).
type Store struct {
	pager Pager
	pool  *Pool
	reg   *obs.Registry
}

// DefaultPoolPages is the default buffer pool capacity. The paper's test
// configuration gave the kernel roughly 2 MB of working memory; 512 pages
// of 4 KiB matches that footprint.
const DefaultPoolPages = 512

// Open opens (or creates) a store. An empty path yields an in-memory
// store. poolPages <= 0 selects DefaultPoolPages.
func Open(path string, poolPages int) (*Store, error) {
	return OpenFS(OSFS{}, path, poolPages)
}

// OpenFS is Open over an explicit filesystem, letting tests inject
// deterministic in-memory files and crash points under a real store.
func OpenFS(fsys FS, path string, poolPages int) (*Store, error) {
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	var pager Pager
	var err error
	if path == "" {
		pager = NewMemPager()
	} else {
		pager, err = OpenFilePagerFS(fsys, path)
		if err != nil {
			return nil, err
		}
	}
	return NewStore(pager, poolPages), nil
}

// NewStore builds a store over an already-open pager.
func NewStore(pager Pager, poolPages int) *Store {
	if poolPages <= 0 {
		poolPages = DefaultPoolPages
	}
	reg := obs.NewRegistry()
	if oa, ok := pager.(obsAttacher); ok {
		oa.attachObs(reg)
	}
	return &Store{pager: pager, pool: NewPoolObs(pager, poolPages, reg), reg: reg}
}

// Pool returns the buffer pool.
func (s *Store) Pool() *Pool { return s.pool }

// Obs returns the metrics registry shared by every layer of the
// knowledge base built on this store.
func (s *Store) Obs() *obs.Registry { return s.reg }

// Stats returns buffer pool I/O counters.
func (s *Store) Stats() IOStats { return s.pool.Stats() }

// ResetStats zeroes the I/O counters.
func (s *Store) ResetStats() { s.pool.ResetStats() }

// SetMeta records a named root value (page or packed RID) in the store
// header so it survives reopening.
func (s *Store) SetMeta(name string, v uint64) error {
	mt, ok := s.pager.(metaTable)
	if !ok {
		return fmt.Errorf("store: pager has no metadata table")
	}
	return mt.metaSet(name, v)
}

// GetMeta fetches a named root value.
func (s *Store) GetMeta(name string) (uint64, bool) {
	mt, ok := s.pager.(metaTable)
	if !ok {
		return 0, false
	}
	return mt.metaGet(name)
}

// Flush writes all dirty pages to the pager.
func (s *Store) Flush() error { return s.pool.FlushAll() }

// Close flushes and closes the underlying file.
func (s *Store) Close() error {
	if err := s.pool.FlushAll(); err != nil {
		s.pager.Close()
		return err
	}
	return s.pager.Close()
}
