package store

// Online backup and point-in-time restore. A backup is a copy of the
// page file's disk frames taken while the store keeps serving reads
// AND writes: starting the backup forces a checkpoint (so the frames
// hold the complete committed state) and then freezes them — further
// checkpoints are suspended, so concurrent writers proceed normally
// into the tail map and the WAL, which simply grows until the backup
// finishes. Every copied frame is therefore exactly the committed
// state at the backup-start LSN; no page-level fuzziness needs
// repairing at restore time. Frames are copied one page at a time
// under the pager mutex — there is no global freeze, and each copy
// window is one frame long.
//
// Restore lays the frames back down and, to reach any LSN past the
// backup start, replays archived WAL segments (archive.go) up to an
// exact committed transaction boundary. The backup-end LSN stamped in
// the stream trailer is a commit boundary guaranteed covered by the
// archive: Finish seals a commit marker and runs an explicit archive
// barrier before the stamp is written, and a barrier failure fails the
// backup — never the primary.
//
// Stream format (little-endian):
//
//	header   [0:4] magic, [4:8] version, [8:12] page count,
//	         [12:20] backup-start LSN
//	frames   page count x diskFrameSize raw frames (each self-verifying
//	         via its CRC trailer; all-zero frames are file holes)
//	trailer  [0:4] trailer magic, [4:12] backup-end LSN,
//	         [12:16] CRC32C over the entire stream up to this field
//
// Every reader (Restore) verifies the stream CRC, the per-frame CRCs
// and both magics, so a torn or bit-flipped backup fails loudly.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	backupMagic   = 0xEDB5CA1E
	backupVersion = 1
	backupTrailer = 0xEDB5F1A1
)

// BackupInfo describes a completed backup.
type BackupInfo struct {
	// StartLSN is the committed LSN the page image is consistent at.
	StartLSN uint64
	// EndLSN is the last committed LSN covered by the WAL archive when
	// the backup finished; restoring with the archive reaches any
	// committed boundary in [StartLSN, EndLSN] and beyond, as later
	// segments accrue. Without archiving, EndLSN == StartLSN.
	EndLSN uint64
	// Pages is the number of frames in the image.
	Pages uint32
}

// Backup is an in-progress online backup. Obtain one with
// Store.StartBackup, drive it with CopyPages, and always end it with
// Finish or Abort — the page file's frames stay frozen (checkpoints
// suspended) until then. Methods must not be called concurrently;
// store writes may proceed freely in other goroutines throughout.
type Backup struct {
	s        *Store
	p        *filePager
	w        io.Writer
	crc      uint32
	startLSN uint64
	pages    PageID
	next     PageID
	done     bool
}

// ErrBackupActive reports a second backup started while one is open.
var ErrBackupActive = errors.New("store: online backup already in progress")

// StartBackup begins an online backup streaming to w: it flushes the
// pool, forces a durable checkpoint (archiving the log first when
// archiving is enabled), freezes the page file and writes the stream
// header. The caller must serialize StartBackup itself against writers
// (the knowledge base takes its read lock for this instant); the copy
// loop then runs with writers proceeding concurrently.
func (s *Store) StartBackup(w io.Writer) (*Backup, error) {
	p, ok := s.pager.(*filePager)
	if !ok {
		return nil, fmt.Errorf("store: pager %T does not support online backup (file-backed stores only)", s.pager)
	}
	if err := s.pool.FlushAll(); err != nil {
		return nil, err
	}
	startLSN, pages, err := p.beginBackup()
	if err != nil {
		return nil, err
	}
	b := &Backup{s: s, p: p, w: w, startLSN: startLSN, pages: pages}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:4], backupMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], backupVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(pages))
	binary.LittleEndian.PutUint64(hdr[12:20], startLSN)
	if err := b.emit(hdr[:]); err != nil {
		b.Abort()
		return nil, err
	}
	return b, nil
}

// emit writes buf to the stream, folding it into the running CRC.
func (b *Backup) emit(buf []byte) error {
	b.crc = crc32.Update(b.crc, crcTable, buf)
	_, err := b.w.Write(buf)
	return err
}

// CopyPages copies up to n frames (n <= 0: all remaining), verifying
// each frame's checksum on the way out, and reports whether the image
// is complete. On error the backup is unusable; call Abort.
func (b *Backup) CopyPages(n int) (done bool, err error) {
	if b.done {
		return true, nil
	}
	for i := 0; (n <= 0 || i < n) && b.next < b.pages; i++ {
		frame, err := b.p.copyFrame(b.next)
		if err != nil {
			return false, err
		}
		if err := b.emit(frame); err != nil {
			return false, err
		}
		b.next++
	}
	return b.next >= b.pages, nil
}

// Progress reports how many frames have been copied and the total
// frame count, for operator-facing progress displays.
func (b *Backup) Progress() (copied, total PageID) { return b.next, b.pages }

// Finish completes the backup: it seals a commit marker (so the end
// LSN is a transaction boundary), archives the log through it, stamps
// the trailer and unfreezes the page file. An archive fault here fails
// the backup — the primary is unaffected and keeps its committed log.
func (b *Backup) Finish() (BackupInfo, error) {
	if b.done {
		return BackupInfo{}, errors.New("store: backup already finished")
	}
	if b.next < b.pages {
		b.Abort()
		return BackupInfo{}, fmt.Errorf("store: backup incomplete: %d of %d pages copied", b.next, b.pages)
	}
	b.done = true
	endLSN, err := b.p.endBackup(b.startLSN)
	if err != nil {
		return BackupInfo{}, err
	}
	var tr [16]byte
	binary.LittleEndian.PutUint32(tr[0:4], backupTrailer)
	binary.LittleEndian.PutUint64(tr[4:12], endLSN)
	b.crc = crc32.Update(b.crc, crcTable, tr[:12])
	binary.LittleEndian.PutUint32(tr[12:16], b.crc)
	if _, err := b.w.Write(tr[:]); err != nil {
		return BackupInfo{}, err
	}
	return BackupInfo{StartLSN: b.startLSN, EndLSN: endLSN, Pages: uint32(b.pages)}, nil
}

// Abort ends the backup without a trailer, unfreezing the page file.
// The partial stream fails restore's checks by construction.
func (b *Backup) Abort() {
	if b.done {
		return
	}
	b.done = true
	b.p.abortBackup()
}

// Backup streams a complete online backup to w. Writers may run
// concurrently; only the instants of starting and finishing need the
// caller's serialization against open transactions (see
// KnowledgeBase.Backup for the coordinated form).
func (s *Store) Backup(w io.Writer) (BackupInfo, error) {
	b, err := s.StartBackup(w)
	if err != nil {
		return BackupInfo{}, err
	}
	for {
		done, err := b.CopyPages(64)
		if err != nil {
			b.Abort()
			return BackupInfo{}, err
		}
		if done {
			break
		}
	}
	return b.Finish()
}

// LSN reports the LSN of the last durable commit. At a quiescent
// commit boundary it identifies exactly the transaction-consistent
// state a backup or restore at this LSN reproduces.
func (s *Store) LSN() uint64 {
	if p, ok := s.pager.(*filePager); ok {
		return p.commitLSNNow()
	}
	return 0
}

// ClearReadOnly is the operator path out of read-only degradation
// (a failed transaction commit flips the store read-only; see Commit).
// It verifies the medium is healthy again by repairing any log
// divergence and forcing a full checkpoint; only if that entirely
// succeeds are writes re-enabled. With the disk still faulty the store
// stays read-only and the error says why.
func (s *Store) ClearReadOnly() error {
	if !s.readOnly.Load() {
		return nil
	}
	if p, ok := s.pager.(*filePager); ok {
		if err := p.clearDiverged(); err != nil {
			return err
		}
	}
	s.readOnly.Store(false)
	return nil
}

// --- pager side -----------------------------------------------------

// beginBackup forces a durable checkpoint and freezes the page file.
// Returns the LSN the frames are consistent at and the frame count.
func (p *filePager) beginBackup() (startLSN uint64, pages PageID, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.backupActive {
		return 0, 0, ErrBackupActive
	}
	if p.txn != nil {
		return 0, 0, errors.New("store: cannot start a backup inside a transaction")
	}
	if p.diverged != nil {
		return 0, 0, errors.New("store: cannot back up a diverged store (clear read-only first)")
	}
	if err := p.commitOnly(); err != nil {
		return 0, 0, err
	}
	// The checkpoint about to fold and truncate the log must not lose
	// archived history, so the barrier failing fails the backup — the
	// primary keeps its committed log and retries archiving later.
	if err := p.archiveBarrier(); err != nil {
		return 0, 0, err
	}
	if err := p.checkpointLocked(); err != nil {
		return 0, 0, err
	}
	p.backupActive = true
	return p.wal.commitLSN, p.numPages, nil
}

// copyFrame returns the raw disk frame of page id, checksum-verified
// (all-zero frames are allocated-but-never-written holes and pass).
// The frames are frozen while a backup is active, so the pager mutex
// is held only for the one read.
func (p *filePager) copyFrame(id PageID) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	frame := make([]byte, diskFrameSize)
	n, err := p.f.ReadAt(frame, int64(id)*diskFrameSize)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if n < diskFrameSize {
		if allZero(frame[:n]) {
			return make([]byte, diskFrameSize), nil
		}
		p.checksumErrors.Add(1)
		return nil, fmt.Errorf("store: backup: page %d: torn frame (%d of %d bytes): %w", id, n, diskFrameSize, ErrChecksum)
	}
	stored := binary.LittleEndian.Uint32(frame[PageSize+4:])
	if crc := frameCRC(id, frame[:PageSize+4]); crc != stored && !allZero(frame) {
		p.checksumErrors.Add(1)
		return nil, fmt.Errorf("store: backup: page %d: stored CRC %#08x, computed %#08x: %w", id, stored, crc, ErrChecksum)
	}
	return frame, nil
}

// endBackup seals a commit boundary, archives through it, and
// unfreezes the page file. The freeze ends whether or not the barrier
// succeeds — a failed barrier fails the backup, not the primary.
func (p *filePager) endBackup(startLSN uint64) (endLSN uint64, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.backupActive = false
	if p.txn != nil {
		// Callers coordinate so this cannot happen (the knowledge base
		// finishes under its read lock, which excludes transactions);
		// sealing a marker here would commit a half-open transaction.
		return 0, errors.New("store: cannot finish a backup inside a transaction")
	}
	if err := p.commitOnly(); err != nil {
		return 0, err
	}
	if p.archive == nil {
		// No archive: the image alone is the backup, restorable only at
		// its start LSN.
		return startLSN, nil
	}
	if err := p.archiveBarrier(); err != nil {
		return 0, err
	}
	endLSN = p.wal.commitLSN
	if p.wal.size() >= p.checkpointBytes {
		_ = p.checkpoint()
	}
	return endLSN, nil
}

// abortBackup unfreezes the page file after a failed or abandoned
// backup, retrying any checkpoint the freeze deferred.
func (p *filePager) abortBackup() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.backupActive = false
	if p.wal.size() >= p.checkpointBytes {
		_ = p.checkpoint()
	}
}

// --- restore ---------------------------------------------------------

// Restore reconstructs a store at path from a backup stream, replaying
// archived WAL segments from archiveDir (empty: none) up to targetLSN
// — 0 meaning everything archived, otherwise an exact committed
// transaction boundary (anything else is an error). The stream and
// every frame are checksum-verified; any corruption or missing history
// fails loudly before the target files are considered usable.
func Restore(path string, r io.Reader, archiveDir string, targetLSN uint64) error {
	return RestoreFS(OSFS{}, path, r, archiveDir, targetLSN)
}

// RestoreFS is Restore over an explicit filesystem.
func RestoreFS(fsys FS, path string, r io.Reader, archiveDir string, targetLSN uint64) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	const hdrLen, trLen = 20, 16
	if len(data) < hdrLen+trLen {
		return errors.New("store: restore: backup stream truncated")
	}
	if binary.LittleEndian.Uint32(data[0:4]) != backupMagic {
		return errors.New("store: restore: not a backup stream (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != backupVersion {
		return fmt.Errorf("store: restore: unsupported backup version %d", v)
	}
	pages := binary.LittleEndian.Uint32(data[8:12])
	startLSN := binary.LittleEndian.Uint64(data[12:20])
	want := hdrLen + int(pages)*diskFrameSize + trLen
	if len(data) != want {
		return fmt.Errorf("store: restore: backup stream is %d bytes, want %d for %d pages", len(data), want, pages)
	}
	tr := data[len(data)-trLen:]
	if binary.LittleEndian.Uint32(tr[0:4]) != backupTrailer {
		return errors.New("store: restore: backup stream has no trailer (backup aborted?)")
	}
	endLSN := binary.LittleEndian.Uint64(tr[4:12])
	if crc := crc32.Checksum(data[:len(data)-4], crcTable); crc != binary.LittleEndian.Uint32(tr[12:16]) {
		return fmt.Errorf("store: restore: stream CRC mismatch: %w", ErrChecksum)
	}
	frames := data[hdrLen : len(data)-trLen]
	for id := PageID(0); id < PageID(pages); id++ {
		frame := frames[int(id)*diskFrameSize : (int(id)+1)*diskFrameSize]
		if allZero(frame) {
			continue
		}
		stored := binary.LittleEndian.Uint32(frame[PageSize+4:])
		if crc := frameCRC(id, frame[:PageSize+4]); crc != stored {
			return fmt.Errorf("store: restore: page %d: stored CRC %#08x, computed %#08x: %w", id, stored, crc, ErrChecksum)
		}
	}
	if targetLSN != 0 && targetLSN < startLSN {
		return fmt.Errorf("store: restore: target LSN %d predates the backup image (start LSN %d)", targetLSN, startLSN)
	}
	if archiveDir == "" && targetLSN != 0 && targetLSN != startLSN {
		return fmt.Errorf("store: restore: target LSN %d needs a WAL archive (image is consistent at %d)", targetLSN, startLSN)
	}
	_ = endLSN // informational: later segments may extend past it

	// Checks done; lay the image down.
	f, err := fsys.OpenFile(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(0); err != nil {
		return err
	}
	if _, err := f.WriteAt(frames, 0); err != nil {
		return err
	}
	// Roll forward through the archive to the target boundary.
	if archiveDir != "" && (targetLSN == 0 || targetLSN > startLSN) {
		afs, ok := fsys.(ArchiveFS)
		if !ok {
			return fmt.Errorf("store: restore: filesystem %T cannot read a WAL archive", fsys)
		}
		_, err := replayArchive(afs, archiveDir, startLSN, targetLSN, func(id PageID, lsn uint64, img []byte) error {
			frame := make([]byte, diskFrameSize)
			copy(frame, img)
			binary.LittleEndian.PutUint32(frame[PageSize:PageSize+4], uint32(lsn))
			binary.LittleEndian.PutUint32(frame[PageSize+4:], frameCRC(id, frame[:PageSize+4]))
			_, werr := f.WriteAt(frame, int64(id)*diskFrameSize)
			return werr
		})
		if err != nil {
			return err
		}
	}
	if err := f.Sync(); err != nil {
		return err
	}
	// A fresh, empty log: the restored state is wholly in the page file.
	wf, err := fsys.OpenFile(path + WALSuffix)
	if err != nil {
		return err
	}
	defer wf.Close()
	if err := wf.Truncate(0); err != nil {
		return err
	}
	return wf.Sync()
}
