package store

import (
	"encoding/binary"
	"fmt"
)

// Heap is a file of variable-length records on slotted pages. Records
// larger than inlineMax bytes are stored in a dedicated overflow-page
// chain (compiled clause code blobs can exceed a page).
//
// Page layout:
//
//	[0:4]  next page in the heap chain (0 = end)
//	[4:6]  slot count
//	[6:8]  free-space offset (data grows down from PageSize)
//	[8: ]  slot table, 4 bytes per slot: offset(2), length(2); offset 0
//	       marks a deleted slot
//
// Record encoding: flag byte 0 followed by the payload, or flag byte 1
// followed by overflow-head page (4) and total length (4).
type Heap struct {
	pool *Pool
	root PageID
	last PageID // append hint
}

const (
	heapHdr   = 8
	slotSize  = 4
	inlineMax = 2048
)

// CreateHeap allocates an empty heap file and returns it.
func CreateHeap(pool *Pool) (*Heap, error) {
	f, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	initHeapPage(f.Data)
	id := f.ID()
	pool.Unpin(f, true)
	return &Heap{pool: pool, root: id, last: id}, nil
}

// OpenHeap attaches to an existing heap rooted at root.
func OpenHeap(pool *Pool, root PageID) *Heap {
	return &Heap{pool: pool, root: root, last: root}
}

// Root returns the first page of the heap chain.
func (h *Heap) Root() PageID { return h.root }

// Pool returns the buffer pool the heap reads through, so holders of a
// handle can reopen it (resetting the append hint) after a rollback.
func (h *Heap) Pool() *Pool { return h.pool }

func initHeapPage(d []byte) {
	for i := range d[:heapHdr] {
		d[i] = 0
	}
	binary.LittleEndian.PutUint16(d[6:8], PageSize)
}

func pageNext(d []byte) PageID       { return PageID(binary.LittleEndian.Uint32(d[0:4])) }
func setPageNext(d []byte, n PageID) { binary.LittleEndian.PutUint32(d[0:4], uint32(n)) }
func pageNSlots(d []byte) int        { return int(binary.LittleEndian.Uint16(d[4:6])) }
func setPageNSlots(d []byte, n int)  { binary.LittleEndian.PutUint16(d[4:6], uint16(n)) }
func pageFree(d []byte) int          { return int(binary.LittleEndian.Uint16(d[6:8])) }
func setPageFree(d []byte, n int)    { binary.LittleEndian.PutUint16(d[6:8], uint16(n)) }

func slotAt(d []byte, i int) (off, ln int) {
	b := heapHdr + i*slotSize
	return int(binary.LittleEndian.Uint16(d[b : b+2])), int(binary.LittleEndian.Uint16(d[b+2 : b+4]))
}

func setSlot(d []byte, i, off, ln int) {
	b := heapHdr + i*slotSize
	binary.LittleEndian.PutUint16(d[b:b+2], uint16(off))
	binary.LittleEndian.PutUint16(d[b+2:b+4], uint16(ln))
}

// available reports usable bytes for a new record of any size in the page,
// accounting for a possibly-new slot entry.
func available(d []byte, needNewSlot bool) int {
	used := heapHdr + pageNSlots(d)*slotSize
	if needNewSlot {
		used += slotSize
	}
	return pageFree(d) - used
}

// Insert stores data and returns its RID.
func (h *Heap) Insert(data []byte) (RID, error) {
	var rec []byte
	if len(data) <= inlineMax {
		rec = make([]byte, 1+len(data))
		rec[0] = 0
		copy(rec[1:], data)
	} else {
		head, err := h.writeOverflow(data)
		if err != nil {
			return RID{}, err
		}
		rec = make([]byte, 9)
		rec[0] = 1
		binary.LittleEndian.PutUint32(rec[1:5], uint32(head))
		binary.LittleEndian.PutUint32(rec[5:9], uint32(len(data)))
	}
	return h.insertRec(rec)
}

func (h *Heap) insertRec(rec []byte) (RID, error) {
	// Try the append-hint page first, then extend the chain. Pages are
	// pinned exclusively: even pages only traversed may get their next
	// pointer rewritten when the chain is extended.
	pid := h.last
	for {
		f, err := h.pool.GetX(pid)
		if err != nil {
			return RID{}, err
		}
		// Reuse a deleted slot when possible.
		slot := -1
		n := pageNSlots(f.Data)
		for i := 0; i < n; i++ {
			if off, _ := slotAt(f.Data, i); off == 0 {
				slot = i
				break
			}
		}
		need := len(rec)
		if available(f.Data, slot < 0) >= need {
			free := pageFree(f.Data) - need
			copy(f.Data[free:], rec)
			if slot < 0 {
				slot = n
				setPageNSlots(f.Data, n+1)
			}
			setSlot(f.Data, slot, free, len(rec))
			setPageFree(f.Data, free)
			h.pool.Unpin(f, true)
			h.last = pid
			return RID{Page: pid, Slot: uint16(slot)}, nil
		}
		next := pageNext(f.Data)
		if next == invalidPage {
			nf, err := h.pool.Alloc()
			if err != nil {
				h.pool.Unpin(f, false)
				return RID{}, err
			}
			initHeapPage(nf.Data)
			setPageNext(f.Data, nf.ID())
			h.pool.Unpin(f, true)
			pid = nf.ID()
			h.pool.Unpin(nf, true)
			continue
		}
		h.pool.Unpin(f, false)
		pid = next
	}
}

func (h *Heap) writeOverflow(data []byte) (PageID, error) {
	const chunk = PageSize - 8
	var head, prev PageID
	var prevFrame *Frame
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		f, err := h.pool.Alloc()
		if err != nil {
			if prevFrame != nil {
				h.pool.Unpin(prevFrame, true)
			}
			return 0, err
		}
		binary.LittleEndian.PutUint32(f.Data[4:8], uint32(end-off))
		copy(f.Data[8:], data[off:end])
		if head == invalidPage {
			head = f.ID()
		}
		if prevFrame != nil {
			binary.LittleEndian.PutUint32(prevFrame.Data[0:4], uint32(f.ID()))
			h.pool.Unpin(prevFrame, true)
		}
		prev = f.ID()
		prevFrame = f
	}
	_ = prev
	if prevFrame != nil {
		h.pool.Unpin(prevFrame, true)
	}
	return head, nil
}

// Get returns the record at rid.
func (h *Heap) Get(rid RID) ([]byte, error) {
	f, err := h.pool.Get(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(f, false)
	if int(rid.Slot) >= pageNSlots(f.Data) {
		return nil, fmt.Errorf("store: no such slot %s", rid)
	}
	off, ln := slotAt(f.Data, int(rid.Slot))
	if off == 0 {
		return nil, fmt.Errorf("store: record %s deleted", rid)
	}
	rec := f.Data[off : off+ln]
	if rec[0] == 0 {
		out := make([]byte, ln-1)
		copy(out, rec[1:])
		return out, nil
	}
	head := PageID(binary.LittleEndian.Uint32(rec[1:5]))
	total := int(binary.LittleEndian.Uint32(rec[5:9]))
	return h.readOverflow(head, total)
}

func (h *Heap) readOverflow(head PageID, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	for pid := head; pid != invalidPage; {
		f, err := h.pool.Get(pid)
		if err != nil {
			return nil, err
		}
		ln := int(binary.LittleEndian.Uint32(f.Data[4:8]))
		out = append(out, f.Data[8:8+ln]...)
		next := PageID(binary.LittleEndian.Uint32(f.Data[0:4]))
		h.pool.Unpin(f, false)
		pid = next
	}
	if len(out) != total {
		return nil, fmt.Errorf("store: overflow chain length %d, want %d", len(out), total)
	}
	return out, nil
}

// Delete removes the record at rid (overflow pages are freed).
func (h *Heap) Delete(rid RID) error {
	f, err := h.pool.GetX(rid.Page)
	if err != nil {
		return err
	}
	if int(rid.Slot) >= pageNSlots(f.Data) {
		h.pool.Unpin(f, false)
		return fmt.Errorf("store: no such slot %s", rid)
	}
	off, ln := slotAt(f.Data, int(rid.Slot))
	if off == 0 {
		h.pool.Unpin(f, false)
		return fmt.Errorf("store: record %s already deleted", rid)
	}
	var overflowHead PageID
	if f.Data[off] == 1 {
		overflowHead = PageID(binary.LittleEndian.Uint32(f.Data[off+1 : off+5]))
	}
	_ = ln
	setSlot(f.Data, int(rid.Slot), 0, 0)
	h.pool.Unpin(f, true)
	for pid := overflowHead; pid != invalidPage; {
		of, err := h.pool.Get(pid)
		if err != nil {
			return err
		}
		next := PageID(binary.LittleEndian.Uint32(of.Data[0:4]))
		h.pool.Unpin(of, false)
		if err := h.pool.Free(pid); err != nil {
			return err
		}
		pid = next
	}
	return nil
}

// Update replaces the record at rid in place when it fits, otherwise
// deletes and reinserts, returning the (possibly new) RID.
func (h *Heap) Update(rid RID, data []byte) (RID, error) {
	if err := h.Delete(rid); err != nil {
		return RID{}, err
	}
	return h.Insert(data)
}

// scanItem is one live slot copied out of a heap page, its bytes fully
// resolved (overflow chains included) while the page was pinned.
type scanItem struct {
	slot int
	data []byte
}

// HeapScanner streams a heap's records one page at a time: each page is
// pinned (shared latch) only while its live slots are copied out, then
// released before any record is yielded, so a long-running scan never
// holds more than one pin on the heap chain and never blocks eviction of
// the pages it has passed. Overflow chains are resolved inside that same
// pin window: the shared latch on the heap page blocks a concurrent
// Delete (which needs the exclusive latch to clear the slot) from
// freeing — and an Insert from reallocating — the chain pages while the
// scanner follows them. Resolving lazily after the unpin would read
// freed or recycled pages. This replaces the materialize-everything-
// up-front pattern and is the storage engine behind rel.SeqScan.
type HeapScanner struct {
	h     *Heap
	next  PageID
	page  PageID
	items []scanItem
	pos   int
	done  bool
}

// Scanner returns a streaming scanner positioned before the first record.
func (h *Heap) Scanner() *HeapScanner {
	return &HeapScanner{h: h, next: h.root}
}

// Next returns the next record in storage order, or (RID{}, nil, nil) at
// the end of the heap. The returned bytes are a private copy.
func (sc *HeapScanner) Next() (RID, []byte, error) {
	for {
		if sc.pos < len(sc.items) {
			it := sc.items[sc.pos]
			sc.pos++
			return RID{Page: sc.page, Slot: uint16(it.slot)}, it.data, nil
		}
		if sc.done || sc.next == invalidPage {
			sc.done = true
			return RID{}, nil, nil
		}
		if err := sc.loadPage(); err != nil {
			sc.done = true
			return RID{}, nil, err
		}
	}
}

// loadPage pins the next chain page, copies its live slots out —
// following overflow chains while the page is still pinned, so no writer
// can free or recycle chain pages between reading a slot and reading its
// chain — and unpins it before returning. The scanner briefly holds two
// pins here (the heap page plus one overflow page at a time), which any
// pool of the minimum capacity accommodates.
func (sc *HeapScanner) loadPage() error {
	f, err := sc.h.pool.Get(sc.next)
	if err != nil {
		return err
	}
	sc.page = sc.next
	sc.next = pageNext(f.Data)
	sc.items = sc.items[:0]
	sc.pos = 0
	n := pageNSlots(f.Data)
	for i := 0; i < n; i++ {
		off, ln := slotAt(f.Data, i)
		if off == 0 {
			continue
		}
		rec := f.Data[off : off+ln]
		if rec[0] == 0 {
			d := make([]byte, ln-1)
			copy(d, rec[1:])
			sc.items = append(sc.items, scanItem{slot: i, data: d})
		} else {
			head := PageID(binary.LittleEndian.Uint32(rec[1:5]))
			tot := int(binary.LittleEndian.Uint32(rec[5:9]))
			d, err := sc.h.readOverflow(head, tot)
			if err != nil {
				sc.h.pool.Unpin(f, false)
				return err
			}
			sc.items = append(sc.items, scanItem{slot: i, data: d})
		}
	}
	sc.h.pool.Unpin(f, false)
	return nil
}

// Close releases the scanner. The scanner holds no pins between Next
// calls, so Close only ends the stream; it exists so higher layers can
// abandon a scan early through a uniform interface.
func (sc *HeapScanner) Close() {
	sc.done = true
	sc.items = nil
}

// Scan visits every record in storage order. The callback returns false to
// stop early.
func (h *Heap) Scan(fn func(RID, []byte) (bool, error)) error {
	sc := h.Scanner()
	defer sc.Close()
	for {
		rid, data, err := sc.Next()
		if err != nil {
			return err
		}
		if data == nil {
			return nil
		}
		ok, err := fn(rid, data)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}
