package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Structural invariant verifiers. Check walks a structure page by page
// and verifies every invariant its operations rely on — offsets in
// range, keys ordered, chains acyclic, directory consistent — reporting
// the first violation as an error. Reads go through the buffer pool, so
// on a file-backed store every visited page also has its checksum
// verified by the pager. The crash-injection harness runs these after
// every simulated crash and recovery; the educe CLI exposes them as
// `educe -check`.

// maxChain bounds chain walks so a corrupt link cycle terminates: no
// well-formed chain can be longer than the number of allocated pages.
func (h *Heap) maxChain() int { return int(h.pool.Pager().NumPages()) + 1 }

// Check verifies the heap's structural invariants: the page chain is
// acyclic, slot tables and free offsets are within bounds, records
// carry valid flags, and every overflow chain is acyclic and sums to
// its recorded length.
func (h *Heap) Check() error {
	limit := h.maxChain()
	seen := map[PageID]bool{}
	n := 0
	for pid := h.root; pid != invalidPage; {
		if seen[pid] {
			return fmt.Errorf("store: heap %d: page chain cycle at page %d", h.root, pid)
		}
		seen[pid] = true
		if n++; n > limit {
			return fmt.Errorf("store: heap %d: page chain longer than %d pages", h.root, limit)
		}
		f, err := h.pool.Get(pid)
		if err != nil {
			return fmt.Errorf("store: heap %d: page %d: %w", h.root, pid, err)
		}
		next := pageNext(f.Data)
		err = h.checkPage(pid, f.Data)
		h.pool.Unpin(f, false)
		if err != nil {
			return err
		}
		pid = next
	}
	return nil
}

func (h *Heap) checkPage(pid PageID, d []byte) error {
	nslots := pageNSlots(d)
	free := pageFree(d)
	slotEnd := heapHdr + nslots*slotSize
	if slotEnd > PageSize || free < slotEnd || free > PageSize {
		return fmt.Errorf("store: heap page %d: %d slots, free offset %d out of range", pid, nslots, free)
	}
	for i := 0; i < nslots; i++ {
		off, ln := slotAt(d, i)
		if off == 0 {
			continue // deleted
		}
		if off < free || off+ln > PageSize || ln < 1 {
			return fmt.Errorf("store: heap page %d slot %d: record [%d:%d] outside data area [%d:%d]", pid, i, off, off+ln, free, PageSize)
		}
		switch d[off] {
		case 0:
		case 1:
			if ln != 9 {
				return fmt.Errorf("store: heap page %d slot %d: overflow stub of %d bytes", pid, i, ln)
			}
			head := PageID(binary.LittleEndian.Uint32(d[off+1 : off+5]))
			total := int(binary.LittleEndian.Uint32(d[off+5 : off+9]))
			if err := h.checkOverflow(pid, i, head, total); err != nil {
				return err
			}
		default:
			return fmt.Errorf("store: heap page %d slot %d: bad record flag %d", pid, i, d[off])
		}
	}
	return nil
}

func (h *Heap) checkOverflow(pid PageID, slot int, head PageID, total int) error {
	limit := h.maxChain()
	seen := map[PageID]bool{}
	got := 0
	for cur := head; cur != invalidPage; {
		if seen[cur] || len(seen) > limit {
			return fmt.Errorf("store: heap page %d slot %d: overflow chain cycle at page %d", pid, slot, cur)
		}
		seen[cur] = true
		f, err := h.pool.Get(cur)
		if err != nil {
			return fmt.Errorf("store: heap page %d slot %d: overflow page %d: %w", pid, slot, cur, err)
		}
		ln := int(binary.LittleEndian.Uint32(f.Data[4:8]))
		next := PageID(binary.LittleEndian.Uint32(f.Data[0:4]))
		h.pool.Unpin(f, false)
		if ln < 0 || ln > PageSize-8 {
			return fmt.Errorf("store: heap page %d slot %d: overflow page %d: chunk length %d", pid, slot, cur, ln)
		}
		got += ln
		cur = next
	}
	if got != total {
		return fmt.Errorf("store: heap page %d slot %d: overflow chain holds %d bytes, stub says %d", pid, slot, got, total)
	}
	return nil
}

// Check verifies the B+tree's invariants: nodes parse and fit in a
// page, keys are ordered and bounded by their parent separators, every
// leaf sits at the same depth, and the leaf chain links the leaves in
// left-to-right order.
func (t *BTree) Check() error {
	root, err := t.rootID()
	if err != nil {
		return fmt.Errorf("store: btree %d: %w", t.anchor, err)
	}
	c := &btCheck{t: t, seen: map[PageID]bool{root: true}, leafDepth: -1}
	if err := c.node(root, nil, nil, 0); err != nil {
		return err
	}
	// The leaf chain must thread the leaves exactly in key order.
	for i, id := range c.leaves {
		var want PageID
		if i+1 < len(c.leaves) {
			want = c.leaves[i+1]
		}
		if c.leafNext[i] != want {
			return fmt.Errorf("store: btree %d: leaf %d links to %d, want %d", t.anchor, id, c.leafNext[i], want)
		}
	}
	return nil
}

type btCheck struct {
	t         *BTree
	seen      map[PageID]bool
	leafDepth int
	leaves    []PageID
	leafNext  []PageID
}

func (c *btCheck) node(id PageID, lo, hi []byte, depth int) error {
	n, err := c.t.load(id)
	if err != nil {
		return fmt.Errorf("store: btree %d: node %d: %w", c.t.anchor, id, err)
	}
	if nodeSize(n) > PageSize {
		return fmt.Errorf("store: btree %d: node %d: serialized size %d exceeds page", c.t.anchor, id, nodeSize(n))
	}
	for i, k := range n.keys {
		if len(k) > MaxKeyLen {
			return fmt.Errorf("store: btree %d: node %d: key %d of %d bytes", c.t.anchor, id, i, len(k))
		}
		if i > 0 && bytes.Compare(n.keys[i-1], k) > 0 {
			return fmt.Errorf("store: btree %d: node %d: keys out of order at %d", c.t.anchor, id, i)
		}
		if lo != nil && bytes.Compare(k, lo) < 0 {
			return fmt.Errorf("store: btree %d: node %d: key %d below parent separator", c.t.anchor, id, i)
		}
		if hi != nil && bytes.Compare(k, hi) > 0 {
			return fmt.Errorf("store: btree %d: node %d: key %d above parent separator", c.t.anchor, id, i)
		}
	}
	if n.leaf {
		if len(n.vals) != len(n.keys) {
			return fmt.Errorf("store: btree %d: leaf %d: %d keys, %d values", c.t.anchor, id, len(n.keys), len(n.vals))
		}
		if c.leafDepth == -1 {
			c.leafDepth = depth
		} else if depth != c.leafDepth {
			return fmt.Errorf("store: btree %d: leaf %d at depth %d, expected %d", c.t.anchor, id, depth, c.leafDepth)
		}
		c.leaves = append(c.leaves, id)
		c.leafNext = append(c.leafNext, n.next)
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("store: btree %d: node %d: %d keys but %d children", c.t.anchor, id, len(n.keys), len(n.children))
	}
	for i, child := range n.children {
		if c.seen[child] {
			return fmt.Errorf("store: btree %d: node %d shared or cyclic (reached twice)", c.t.anchor, child)
		}
		c.seen[child] = true
		clo, chi := lo, hi
		if i > 0 {
			clo = n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		}
		if err := c.node(child, clo, chi, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// Check verifies the grid's invariants: the directory has 2^depth
// entries, each bucket's local depth fits the directory depth, the
// directory slots addressing a bucket agree on its low localDepth bits,
// overflow chains are acyclic with sane entry counts, and every stored
// entry is reachable from the directory slot its hashes map to.
func (g *Grid) Check() error {
	if len(g.dir) != 1<<g.depth {
		return fmt.Errorf("store: grid %d: directory has %d entries for depth %d", g.header, len(g.dir), g.depth)
	}
	numPages := g.pool.Pager().NumPages()
	heads := map[PageID][]int{} // bucket head -> directory slots
	for idx, id := range g.dir {
		if id == invalidPage || id >= numPages {
			return fmt.Errorf("store: grid %d: directory slot %d points at invalid page %d", g.header, idx, id)
		}
		heads[id] = append(heads[id], idx)
	}
	for id, slots := range heads {
		if err := g.checkBucket(id, slots); err != nil {
			return err
		}
	}
	return nil
}

func (g *Grid) checkBucket(id PageID, slots []int) error {
	f, err := g.pool.Get(id)
	if err != nil {
		return fmt.Errorf("store: grid %d: bucket %d: %w", g.header, id, err)
	}
	localDepth := int(f.Data[0])
	g.pool.Unpin(f, false)
	if localDepth > g.depth {
		return fmt.Errorf("store: grid %d: bucket %d: local depth %d exceeds directory depth %d", g.header, id, localDepth, g.depth)
	}
	// Every slot addressing this bucket shares its low localDepth bits,
	// and the bucket owns all 2^(depth-localDepth) such slots.
	mask := 1<<uint(localDepth) - 1
	for _, s := range slots[1:] {
		if s&mask != slots[0]&mask {
			return fmt.Errorf("store: grid %d: bucket %d addressed by slots %d and %d that differ in their low %d bits", g.header, id, slots[0], s, localDepth)
		}
	}
	if want := 1 << uint(g.depth-localDepth); len(slots) != want {
		return fmt.Errorf("store: grid %d: bucket %d (local depth %d) addressed by %d slots, want %d", g.header, id, localDepth, len(slots), want)
	}
	// Walk the chain: counts in range, same local depth, no cycles, and
	// every entry hashes back to this bucket.
	limit := int(g.pool.Pager().NumPages()) + 1
	seen := map[PageID]bool{}
	cur := id
	for cur != invalidPage {
		if seen[cur] || len(seen) > limit {
			return fmt.Errorf("store: grid %d: bucket %d: overflow chain cycle at page %d", g.header, id, cur)
		}
		seen[cur] = true
		f, err := g.pool.Get(cur)
		if err != nil {
			return fmt.Errorf("store: grid %d: bucket %d: page %d: %w", g.header, id, cur, err)
		}
		cnt := int(binary.LittleEndian.Uint16(f.Data[1:3]))
		ld := int(f.Data[0])
		next := PageID(binary.LittleEndian.Uint32(f.Data[3:7]))
		var entries []gridEntry
		if cnt >= 0 && cnt <= g.bucketCap() {
			entries = g.readEntries(f.Data)
		}
		g.pool.Unpin(f, false)
		if cnt < 0 || cnt > g.bucketCap() {
			return fmt.Errorf("store: grid %d: bucket %d: page %d holds %d entries, capacity %d", g.header, id, cur, cnt, g.bucketCap())
		}
		if ld != localDepth {
			return fmt.Errorf("store: grid %d: bucket %d: page %d has local depth %d, head has %d", g.header, id, cur, ld, localDepth)
		}
		for _, e := range entries {
			if got := g.dir[g.interleave(e.hashes, g.depth)]; got != id {
				return fmt.Errorf("store: grid %d: entry with payload %d stored in bucket %d but addressed to bucket %d", g.header, e.payload, id, got)
			}
		}
		cur = next
	}
	return nil
}
