package store

import (
	"encoding/binary"
	"fmt"
)

// Grid is a BANG-style multi-attribute index (after Freeston's BANG file,
// which Educe* used for clause access — paper §4 and [13,14]). It stores
// fixed-arity tuples of attribute hash values plus a payload (a packed
// RID), partitioned by bit-interleaving the attribute hashes into an
// extendible directory. Because every attribute contributes bits to the
// partitioning in round-robin order, the index answers *partial-match*
// queries — any subset of attributes constrained — which is exactly the
// access pattern of pre-unification: filter stored clauses by whichever
// head arguments the goal has bound.
type Grid struct {
	pool   *Pool
	header PageID
	k      int
	depth  int
	dir    []PageID
	// maxDepth bounds directory doubling; colliding entries beyond it
	// go to overflow chains.
	maxDepth int
}

const (
	gridBucketHdr = 8
	gridMaxDepth  = 18
)

// CreateGrid allocates an empty grid index over k attributes.
func CreateGrid(pool *Pool, k int) (*Grid, error) {
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("store: grid arity %d out of range", k)
	}
	g := &Grid{pool: pool, k: k, depth: 0, maxDepth: gridMaxDepth}
	b, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	initBucket(b.Data, 0)
	g.dir = []PageID{b.ID()}
	pool.Unpin(b, true)

	h, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	g.header = h.ID()
	pool.Unpin(h, true)
	if err := g.writeMeta(); err != nil {
		return nil, err
	}
	return g, nil
}

// OpenGrid attaches to the grid whose header page is header.
func OpenGrid(pool *Pool, header PageID) (*Grid, error) {
	g := &Grid{pool: pool, header: header, maxDepth: gridMaxDepth}
	if err := g.readMeta(); err != nil {
		return nil, err
	}
	return g, nil
}

// Header returns the grid's stable header page.
func (g *Grid) Header() PageID { return g.header }

// Arity returns the number of indexed attributes.
func (g *Grid) Arity() int { return g.k }

// Depth returns the current directory depth (diagnostics).
func (g *Grid) Depth() int { return g.depth }

func (g *Grid) writeMeta() error {
	f, err := g.pool.GetX(g.header)
	if err != nil {
		return err
	}
	d := f.Data
	binary.LittleEndian.PutUint16(d[0:2], uint16(g.k))
	binary.LittleEndian.PutUint16(d[2:4], uint16(g.depth))
	// Directory entries follow inline; chain to continuation pages.
	perPage := (PageSize - 8) / 4
	off := 8
	pageFrame := f
	idx := 0
	for idx < len(g.dir) {
		binary.LittleEndian.PutUint32(pageFrame.Data[off:off+4], uint32(g.dir[idx]))
		idx++
		off += 4
		if off+4 > PageSize && idx < len(g.dir) {
			next := PageID(binary.LittleEndian.Uint32(pageFrame.Data[4:8]))
			if next == invalidPage {
				nf, err := g.pool.Alloc()
				if err != nil {
					g.pool.Unpin(pageFrame, true)
					return err
				}
				next = nf.ID()
				binary.LittleEndian.PutUint32(pageFrame.Data[4:8], uint32(next))
				g.pool.Unpin(pageFrame, true)
				pageFrame = nf
			} else {
				nf, err := g.pool.GetX(next)
				if err != nil {
					g.pool.Unpin(pageFrame, true)
					return err
				}
				g.pool.Unpin(pageFrame, true)
				pageFrame = nf
			}
			off = 8
		}
	}
	_ = perPage
	g.pool.Unpin(pageFrame, true)
	return nil
}

func (g *Grid) readMeta() error {
	f, err := g.pool.Get(g.header)
	if err != nil {
		return err
	}
	g.k = int(binary.LittleEndian.Uint16(f.Data[0:2]))
	g.depth = int(binary.LittleEndian.Uint16(f.Data[2:4]))
	n := 1 << g.depth
	g.dir = make([]PageID, 0, n)
	off := 8
	pageFrame := f
	for len(g.dir) < n {
		g.dir = append(g.dir, PageID(binary.LittleEndian.Uint32(pageFrame.Data[off:off+4])))
		off += 4
		if off+4 > PageSize && len(g.dir) < n {
			next := PageID(binary.LittleEndian.Uint32(pageFrame.Data[4:8]))
			nf, err := g.pool.Get(next)
			if err != nil {
				g.pool.Unpin(pageFrame, false)
				return err
			}
			g.pool.Unpin(pageFrame, false)
			pageFrame = nf
			off = 8
		}
	}
	g.pool.Unpin(pageFrame, false)
	return nil
}

// bucket page layout:
//
//	[0]    local depth
//	[1:3]  entry count
//	[3:7]  overflow page (0 = none)
//	[8: ]  entries: k hashes (8 bytes each) + payload (8 bytes)
func initBucket(d []byte, localDepth int) {
	for i := 0; i < gridBucketHdr; i++ {
		d[i] = 0
	}
	d[0] = byte(localDepth)
}

func (g *Grid) entrySize() int { return g.k*8 + 8 }

func (g *Grid) bucketCap() int { return (PageSize - gridBucketHdr) / g.entrySize() }

// interleave computes the directory index: bit j of the result is bit
// (j / k) of attribute (j mod k)'s hash.
func (g *Grid) interleave(hashes []uint64, depth int) int {
	idx := 0
	for j := 0; j < depth; j++ {
		bit := (hashes[j%g.k] >> uint(j/g.k)) & 1
		idx |= int(bit) << uint(j)
	}
	return idx
}

type gridEntry struct {
	hashes  []uint64
	payload uint64
}

func (g *Grid) readEntries(d []byte) []gridEntry {
	n := int(binary.LittleEndian.Uint16(d[1:3]))
	out := make([]gridEntry, 0, n)
	off := gridBucketHdr
	for i := 0; i < n; i++ {
		e := gridEntry{hashes: make([]uint64, g.k)}
		for a := 0; a < g.k; a++ {
			e.hashes[a] = binary.LittleEndian.Uint64(d[off : off+8])
			off += 8
		}
		e.payload = binary.LittleEndian.Uint64(d[off : off+8])
		off += 8
		out = append(out, e)
	}
	return out
}

func (g *Grid) writeEntries(d []byte, localDepth int, entries []gridEntry, overflow PageID) {
	initBucket(d, localDepth)
	binary.LittleEndian.PutUint16(d[1:3], uint16(len(entries)))
	binary.LittleEndian.PutUint32(d[3:7], uint32(overflow))
	off := gridBucketHdr
	for _, e := range entries {
		for a := 0; a < g.k; a++ {
			binary.LittleEndian.PutUint64(d[off:off+8], e.hashes[a])
			off += 8
		}
		binary.LittleEndian.PutUint64(d[off:off+8], e.payload)
		off += 8
	}
}

// loadChain reads a bucket and its overflow chain.
func (g *Grid) loadChain(id PageID) (entries []gridEntry, localDepth int, overflowPages []PageID, err error) {
	f, err := g.pool.Get(id)
	if err != nil {
		return nil, 0, nil, err
	}
	localDepth = int(f.Data[0])
	entries = g.readEntries(f.Data)
	next := PageID(binary.LittleEndian.Uint32(f.Data[3:7]))
	g.pool.Unpin(f, false)
	for next != invalidPage {
		overflowPages = append(overflowPages, next)
		of, err := g.pool.Get(next)
		if err != nil {
			return nil, 0, nil, err
		}
		entries = append(entries, g.readEntries(of.Data)...)
		next = PageID(binary.LittleEndian.Uint32(of.Data[3:7]))
		g.pool.Unpin(of, false)
	}
	return entries, localDepth, overflowPages, nil
}

// storeChain writes entries into bucket id, chaining overflow pages as
// needed and freeing surplus old overflow pages.
func (g *Grid) storeChain(id PageID, localDepth int, entries []gridEntry, oldOverflow []PageID) error {
	capacity := g.bucketCap()
	pageEntries := entries
	var rest []gridEntry
	if len(pageEntries) > capacity {
		rest = pageEntries[capacity:]
		pageEntries = pageEntries[:capacity]
	}
	cur := id
	curEntries := pageEntries
	ovfIdx := 0
	for {
		var next PageID
		if len(rest) > 0 {
			if ovfIdx < len(oldOverflow) {
				next = oldOverflow[ovfIdx]
				ovfIdx++
			} else {
				nf, err := g.pool.Alloc()
				if err != nil {
					return err
				}
				next = nf.ID()
				g.pool.Unpin(nf, true)
			}
		}
		f, err := g.pool.GetX(cur)
		if err != nil {
			return err
		}
		g.writeEntries(f.Data, localDepth, curEntries, next)
		g.pool.Unpin(f, true)
		if next == invalidPage {
			break
		}
		cur = next
		curEntries = rest
		if len(curEntries) > capacity {
			rest = curEntries[capacity:]
			curEntries = curEntries[:capacity]
		} else {
			rest = nil
		}
	}
	// Free unused old overflow pages.
	for ; ovfIdx < len(oldOverflow); ovfIdx++ {
		if err := g.pool.Free(oldOverflow[ovfIdx]); err != nil {
			return err
		}
	}
	return nil
}

// Insert adds a tuple of attribute hashes with its payload.
func (g *Grid) Insert(hashes []uint64, payload uint64) error {
	if len(hashes) != g.k {
		return fmt.Errorf("store: grid insert arity %d, want %d", len(hashes), g.k)
	}
	for {
		idx := g.interleave(hashes, g.depth)
		id := g.dir[idx]
		entries, localDepth, overflow, err := g.loadChain(id)
		if err != nil {
			return err
		}
		if len(entries) < g.bucketCap() || localDepth >= g.maxDepth {
			entries = append(entries, gridEntry{hashes: append([]uint64(nil), hashes...), payload: payload})
			return g.storeChain(id, localDepth, entries, overflow)
		}
		// Split the bucket (BANG's dynamic reorganisation).
		if localDepth == g.depth {
			// Double the directory.
			nd := make([]PageID, len(g.dir)*2)
			copy(nd, g.dir)
			copy(nd[len(g.dir):], g.dir)
			g.dir = nd
			g.depth++
		}
		nf, err := g.pool.Alloc()
		if err != nil {
			return err
		}
		newID := nf.ID()
		g.pool.Unpin(nf, true)
		var left, right []gridEntry
		bit := localDepth
		for _, e := range entries {
			if (g.interleave(e.hashes, bit+1)>>uint(bit))&1 == 1 {
				right = append(right, e)
			} else {
				left = append(left, e)
			}
		}
		if err := g.storeChain(id, localDepth+1, left, overflow); err != nil {
			return err
		}
		if err := g.storeChain(newID, localDepth+1, right, nil); err != nil {
			return err
		}
		// Redirect directory slots whose bit `bit` is 1 among those
		// currently pointing at id.
		for i := range g.dir {
			if g.dir[i] == id && (i>>uint(bit))&1 == 1 {
				g.dir[i] = newID
			}
		}
		if err := g.writeMeta(); err != nil {
			return err
		}
	}
}

// Delete removes one tuple matching hashes and payload.
func (g *Grid) Delete(hashes []uint64, payload uint64) (bool, error) {
	if len(hashes) != g.k {
		return false, fmt.Errorf("store: grid delete arity %d, want %d", len(hashes), g.k)
	}
	idx := g.interleave(hashes, g.depth)
	id := g.dir[idx]
	entries, localDepth, overflow, err := g.loadChain(id)
	if err != nil {
		return false, err
	}
	for i, e := range entries {
		if e.payload != payload {
			continue
		}
		match := true
		for a := 0; a < g.k; a++ {
			if e.hashes[a] != hashes[a] {
				match = false
				break
			}
		}
		if match {
			entries = append(entries[:i], entries[i+1:]...)
			return true, g.storeChain(id, localDepth, entries, overflow)
		}
	}
	return false, nil
}

// PartialMatch visits the payload of every stored tuple whose hash equals
// hashes[a] for each constrained attribute a (known[a] true). Unconstrained
// attributes match anything. The callback returns false to stop.
//
// This is the EDB-side filter used by pre-unification: matching is on
// hash values, so a visited tuple is a *candidate* (necessary, not
// sufficient), exactly as the paper describes for code executed against
// associative addresses (§4).
func (g *Grid) PartialMatch(known []bool, hashes []uint64, fn func(payload uint64) bool) error {
	if len(known) != g.k || len(hashes) != g.k {
		return fmt.Errorf("store: partial match arity mismatch")
	}
	// Determine which directory bits are fixed by the constraints.
	fixedMask, fixedBits := 0, 0
	for j := 0; j < g.depth; j++ {
		if known[j%g.k] {
			fixedMask |= 1 << uint(j)
			if (hashes[j%g.k]>>(uint(j)/uint(g.k)))&1 == 1 {
				fixedBits |= 1 << uint(j)
			}
		}
	}
	seen := map[PageID]bool{}
	// Enumerate directory slots consistent with the fixed bits.
	for idx := 0; idx < len(g.dir); idx++ {
		if idx&fixedMask != fixedBits {
			continue
		}
		id := g.dir[idx]
		if seen[id] {
			continue
		}
		seen[id] = true
		entries, _, _, err := g.loadChain(id)
		if err != nil {
			return err
		}
		for _, e := range entries {
			ok := true
			for a := 0; a < g.k; a++ {
				if known[a] && e.hashes[a] != hashes[a] {
					ok = false
					break
				}
			}
			if ok && !fn(e.payload) {
				return nil
			}
		}
	}
	return nil
}

// Len counts stored tuples (test/diagnostic use).
func (g *Grid) Len() (int, error) {
	count := 0
	known := make([]bool, g.k)
	err := g.PartialMatch(known, make([]uint64, g.k), func(uint64) bool {
		count++
		return true
	})
	return count, err
}
