// Package store is the storage engine standing in for the BANG file system
// used by Educe* (paper §3.3.2, §4): a page file with a buffer pool,
// slotted-page heap files for variable-length records (compiled clause
// code), a B+tree for ordered keys (primary keys, Wisconsin range
// selections) and a BANG-style multi-attribute grid index supporting the
// partial-match searches that drive pre-unification.
//
// All I/O is counted through the buffer pool, which is how the benchmark
// harness reproduces the paper's I/O-frequency table (Table 2b).
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageSize is the fixed page size in bytes.
const PageSize = 4096

// PageID identifies a page within a store file. Page 0 is the header.
type PageID uint32

// invalidPage marks "no page".
const invalidPage PageID = 0

// RID addresses a record: page plus slot.
type RID struct {
	Page PageID
	Slot uint16
}

// Nil reports whether the RID is the zero value.
func (r RID) Nil() bool { return r.Page == invalidPage && r.Slot == 0 }

func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// Pack encodes the RID into a uint64.
func (r RID) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// UnpackRID decodes a packed RID.
func UnpackRID(v uint64) RID { return RID{Page: PageID(v >> 16), Slot: uint16(v & 0xffff)} }

// Pager reads and writes fixed-size pages.
type Pager interface {
	// ReadPage fills buf (PageSize bytes) with page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf as page id.
	WritePage(id PageID, buf []byte) error
	// Allocate returns a fresh page (zeroed), reusing freed pages.
	Allocate() (PageID, error)
	// Free returns a page to the free list.
	Free(id PageID) error
	// NumPages reports the number of pages ever allocated (including
	// header and freed pages).
	NumPages() PageID
	// Sync flushes to stable storage.
	Sync() error
	Close() error
}

// header page layout (page 0):
//
//	[0:4]   magic
//	[4:8]   page count
//	[8:12]  free list head
//	[12:  ] meta table: count, then (name, rootPage) pairs
const pagerMagic = 0xBA461990

var errBadMagic = errors.New("store: not a store file (bad magic)")

// filePager is a Pager over an *os.File.
type filePager struct {
	mu       sync.Mutex
	f        *os.File
	numPages PageID
	freeHead PageID
	meta     map[string]uint64
}

// memPager keeps pages in memory; used for tests and for purely in-memory
// engines. It still goes through the buffer pool so I/O counting works.
type memPager struct {
	mu       sync.Mutex
	pages    [][]byte
	freeHead PageID
	meta     map[string]uint64
}

// NewMemPager returns an in-memory pager.
func NewMemPager() Pager {
	p := &memPager{meta: map[string]uint64{}}
	p.pages = append(p.pages, make([]byte, PageSize)) // header placeholder
	return p
}

func (p *memPager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.pages) {
		return fmt.Errorf("store: read of unallocated page %d", id)
	}
	copy(buf, p.pages[id])
	return nil
}

func (p *memPager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.pages) {
		return fmt.Errorf("store: write of unallocated page %d", id)
	}
	copy(p.pages[id], buf)
	return nil
}

func (p *memPager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freeHead != invalidPage {
		id := p.freeHead
		p.freeHead = PageID(binary.LittleEndian.Uint32(p.pages[id][:4]))
		for i := range p.pages[id] {
			p.pages[id][i] = 0
		}
		return id, nil
	}
	p.pages = append(p.pages, make([]byte, PageSize))
	return PageID(len(p.pages) - 1), nil
}

func (p *memPager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.pages) || id == 0 {
		return fmt.Errorf("store: free of invalid page %d", id)
	}
	binary.LittleEndian.PutUint32(p.pages[id][:4], uint32(p.freeHead))
	p.freeHead = id
	return nil
}

func (p *memPager) NumPages() PageID { return PageID(len(p.pages)) }
func (p *memPager) Sync() error      { return nil }
func (p *memPager) Close() error     { return nil }

// OpenFilePager opens (or creates) a page file at path.
func OpenFilePager(path string) (Pager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	p := &filePager{f: f, meta: map[string]uint64{}}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		p.numPages = 1
		if err := p.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return p, nil
	}
	if err := p.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

func (p *filePager) writeHeader() error {
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(pagerMagic))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(p.numPages))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(p.freeHead))
	off := 12
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(p.meta)))
	off += 4
	for name, root := range p.meta {
		if off+4+len(name)+8 > PageSize {
			return errors.New("store: header meta table overflow")
		}
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(name)))
		off += 4
		copy(buf[off:], name)
		off += len(name)
		binary.LittleEndian.PutUint64(buf[off:off+8], root)
		off += 8
	}
	_, err := p.f.WriteAt(buf, 0)
	return err
}

func (p *filePager) readHeader() error {
	buf := make([]byte, PageSize)
	if _, err := p.f.ReadAt(buf, 0); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != uint32(pagerMagic) {
		return errBadMagic
	}
	p.numPages = PageID(binary.LittleEndian.Uint32(buf[4:8]))
	p.freeHead = PageID(binary.LittleEndian.Uint32(buf[8:12]))
	off := 12
	n := int(binary.LittleEndian.Uint32(buf[off : off+4]))
	off += 4
	for i := 0; i < n; i++ {
		ln := int(binary.LittleEndian.Uint32(buf[off : off+4]))
		off += 4
		name := string(buf[off : off+ln])
		off += ln
		p.meta[name] = binary.LittleEndian.Uint64(buf[off : off+8])
		off += 8
	}
	return nil
}

func (p *filePager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.numPages {
		return fmt.Errorf("store: read of unallocated page %d", id)
	}
	_, err := p.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	if err == io.EOF {
		// Page allocated but never written: zeros.
		for i := range buf[:PageSize] {
			buf[i] = 0
		}
		return nil
	}
	return err
}

func (p *filePager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.numPages {
		return fmt.Errorf("store: write of unallocated page %d", id)
	}
	_, err := p.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

func (p *filePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freeHead != invalidPage {
		id := p.freeHead
		buf := make([]byte, PageSize)
		if _, err := p.f.ReadAt(buf, int64(id)*PageSize); err != nil && err != io.EOF {
			return 0, err
		}
		p.freeHead = PageID(binary.LittleEndian.Uint32(buf[:4]))
		zero := make([]byte, PageSize)
		if _, err := p.f.WriteAt(zero, int64(id)*PageSize); err != nil {
			return 0, err
		}
		return id, p.writeHeader()
	}
	id := p.numPages
	p.numPages++
	zero := make([]byte, PageSize)
	if _, err := p.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return 0, err
	}
	return id, p.writeHeader()
}

func (p *filePager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == 0 || id >= p.numPages {
		return fmt.Errorf("store: free of invalid page %d", id)
	}
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(buf[:4], uint32(p.freeHead))
	if _, err := p.f.WriteAt(buf, int64(id)*PageSize); err != nil {
		return err
	}
	p.freeHead = id
	return p.writeHeader()
}

func (p *filePager) NumPages() PageID { return p.numPages }

func (p *filePager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.writeHeader(); err != nil {
		return err
	}
	return p.f.Sync()
}

func (p *filePager) Close() error {
	if err := p.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}

// metaTable gives Store access to the pager's name->root map.
type metaTable interface {
	metaGet(name string) (uint64, bool)
	metaSet(name string, v uint64) error
}

func (p *memPager) metaGet(name string) (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.meta[name]
	return v, ok
}

func (p *memPager) metaSet(name string, v uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.meta[name] = v
	return nil
}

func (p *filePager) metaGet(name string) (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.meta[name]
	return v, ok
}

func (p *filePager) metaSet(name string, v uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.meta[name] = v
	return p.writeHeader()
}
