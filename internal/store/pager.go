// Package store is the storage engine standing in for the BANG file system
// used by Educe* (paper §3.3.2, §4): a page file with a buffer pool,
// slotted-page heap files for variable-length records (compiled clause
// code), a B+tree for ordered keys (primary keys, Wisconsin range
// selections) and a BANG-style multi-attribute grid index supporting the
// partial-match searches that drive pre-unification.
//
// All I/O is counted through the buffer pool, which is how the benchmark
// harness reproduces the paper's I/O-frequency table (Table 2b).
//
// File-backed stores are crash-safe: every page carries a CRC32C trailer
// verified on read, updates go through a write-ahead log (wal.go) with
// group commit, and opening a file replays the log, discarding any torn
// tail, before the header is trusted.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// PageSize is the fixed page size in bytes.
const PageSize = 4096

// PageID identifies a page within a store file. Page 0 is the header.
type PageID uint32

// invalidPage marks "no page".
const invalidPage PageID = 0

// RID addresses a record: page plus slot.
type RID struct {
	Page PageID
	Slot uint16
}

// Nil reports whether the RID is the zero value.
func (r RID) Nil() bool { return r.Page == invalidPage && r.Slot == 0 }

func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// Pack encodes the RID into a uint64.
func (r RID) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// UnpackRID decodes a packed RID.
func UnpackRID(v uint64) RID { return RID{Page: PageID(v >> 16), Slot: uint16(v & 0xffff)} }

// Pager reads and writes fixed-size pages.
type Pager interface {
	// ReadPage fills buf (PageSize bytes) with page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf as page id.
	WritePage(id PageID, buf []byte) error
	// Allocate returns a fresh page (zeroed), reusing freed pages.
	Allocate() (PageID, error)
	// Free returns a page to the free list.
	Free(id PageID) error
	// NumPages reports the number of pages ever allocated (including
	// header and freed pages).
	NumPages() PageID
	// Sync flushes to stable storage. For the file pager this is the
	// commit point: everything written since the previous Sync becomes
	// durable atomically.
	Sync() error
	Close() error
}

// On disk, each logical page occupies a diskFrameSize frame: PageSize
// data bytes, the low half of the LSN that wrote the frame, then a
// CRC32C over the page ID, the data, and the LSN field — the ID so a
// frame can never be misread as a different page, the LSN so every
// byte of the frame is covered. Keeping the trailer outside the
// logical page means the page-layout code of the heap, B+tree and grid
// is unaware of checksums.
const (
	frameTrailer  = 8
	diskFrameSize = PageSize + frameTrailer
)

// ErrChecksum reports that a page read from the file failed CRC
// verification: the page was torn or corrupted on disk. It is always
// returned wrapped with the page number; test with errors.Is.
var ErrChecksum = errors.New("store: page checksum mismatch")

func frameCRC(id PageID, data []byte) uint32 {
	var idb [4]byte
	binary.LittleEndian.PutUint32(idb[:], uint32(id))
	c := crc32.Update(0, crcTable, idb[:])
	return crc32.Update(c, crcTable, data)
}

// header page layout (page 0 data, stored with a frame trailer like any
// other page):
//
//	[0:4]   magic
//	[4:8]   page count
//	[8:12]  free list head
//	[12:20] LSN at the last commit
//	[20:  ] meta table: count, then (name, rootPage) pairs
const pagerMagic = 0xBA461991

var errBadMagic = errors.New("store: not a store file (bad magic)")

// filePager is a crash-safe Pager over two Files: the page file and its
// write-ahead log. Page writes accumulate in memory (tail) and in the
// log buffer; Sync commits them with one log write and one fsync; a
// checkpoint folds the committed images into the page file and empties
// the log. The header (page count, free list, meta table) lives in
// memory and rides along with every commit as the page-0 image, so
// Allocate and Free are pure memory operations.
type filePager struct {
	mu       sync.Mutex
	f        File
	wal      *wal
	numPages PageID
	freeHead PageID
	meta     map[string]uint64
	hdrDirty bool
	// tail holds the latest image of every page written since the last
	// checkpoint; reads are served from it before the page file.
	tail map[PageID][]byte
	// txn, when non-nil, is the undo record of the open transaction
	// (txn.go): commits are suspended and stash records pre-images.
	txn *pagerTxn
	// archive, when non-nil, receives the committed log at every
	// checkpoint instead of it being discarded (archive.go).
	archive *archiver
	// backupActive, while true, blocks checkpoints: an online backup
	// (backup.go) is copying the page file's frames and they must stay
	// frozen at the backup-start state. Commits keep working — writers
	// proceed into the tail and the log.
	backupActive bool
	// diverged, when non-nil, records a failed-commit cleanup that
	// could not be made durable (txn.go): the log may still hold the
	// aborted transaction's records past diverged.off. clearDiverged
	// retries the cleanup before the store re-enables writes.
	diverged *divergence

	checkpointBytes int64

	checksumErrors atomic.Uint64
	checkpoints    atomic.Uint64
	recoveredPages uint64 // pages replayed from the log at open
	discardedRecs  uint64 // uncommitted/torn log records dropped at open
}

// memPager keeps pages in memory; used for tests and for purely in-memory
// engines. It still goes through the buffer pool so I/O counting works.
type memPager struct {
	mu       sync.Mutex
	pages    [][]byte
	freeHead PageID
	meta     map[string]uint64
	// txn, when non-nil, is the undo record of the open transaction
	// (txn.go): mutations of pre-existing pages save pre-images first.
	txn *memTxn
}

// NewMemPager returns an in-memory pager.
func NewMemPager() Pager {
	p := &memPager{meta: map[string]uint64{}}
	p.pages = append(p.pages, make([]byte, PageSize)) // header placeholder
	return p
}

func (p *memPager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.pages) {
		return fmt.Errorf("store: read of unallocated page %d", id)
	}
	copy(buf, p.pages[id])
	return nil
}

func (p *memPager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.pages) {
		return fmt.Errorf("store: write of unallocated page %d", id)
	}
	p.saveUndo(id)
	copy(p.pages[id], buf)
	return nil
}

func (p *memPager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freeHead != invalidPage {
		id := p.freeHead
		p.freeHead = PageID(binary.LittleEndian.Uint32(p.pages[id][:4]))
		p.saveUndo(id)
		for i := range p.pages[id] {
			p.pages[id][i] = 0
		}
		return id, nil
	}
	p.pages = append(p.pages, make([]byte, PageSize))
	return PageID(len(p.pages) - 1), nil
}

func (p *memPager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= len(p.pages) || id == 0 {
		return fmt.Errorf("store: free of invalid page %d", id)
	}
	p.saveUndo(id)
	binary.LittleEndian.PutUint32(p.pages[id][:4], uint32(p.freeHead))
	p.freeHead = id
	return nil
}

func (p *memPager) NumPages() PageID { return PageID(len(p.pages)) }
func (p *memPager) Sync() error      { return nil }
func (p *memPager) Close() error     { return nil }

// OpenFilePager opens (or creates) a page file at path, replaying the
// write-ahead log at path+WALSuffix if a previous run crashed.
func OpenFilePager(path string) (Pager, error) {
	return OpenFilePagerFS(OSFS{}, path)
}

// OpenFilePagerFS is OpenFilePager over an explicit filesystem, so tests
// can inject deterministic in-memory files and crash points.
func OpenFilePagerFS(fsys FS, path string) (Pager, error) {
	return openFilePagerFS(fsys, path, Options{})
}

func openFilePagerFS(fsys FS, path string, opts Options) (Pager, error) {
	f, err := fsys.OpenFile(path)
	if err != nil {
		return nil, err
	}
	wf, err := fsys.OpenFile(path + WALSuffix)
	if err != nil {
		f.Close()
		return nil, err
	}
	p := &filePager{
		f:               f,
		wal:             newWAL(wf),
		meta:            map[string]uint64{},
		tail:            map[PageID][]byte{},
		checkpointBytes: defaultCheckpointBytes,
	}
	if opts.CheckpointBytes > 0 {
		p.checkpointBytes = opts.CheckpointBytes
	}
	if opts.ArchiveDir != "" {
		afs, ok := fsys.(ArchiveFS)
		if !ok {
			f.Close()
			wf.Close()
			return nil, fmt.Errorf("store: filesystem %T cannot host a WAL archive (no directory operations)", fsys)
		}
		p.archive, err = openArchiver(afs, opts.ArchiveDir, opts.ArchiveBudget)
		if err != nil {
			f.Close()
			wf.Close()
			return nil, err
		}
	}
	if err := p.recoverLog(); err != nil {
		wf.Close()
		f.Close()
		return nil, err
	}
	sz, err := f.Size()
	if err != nil {
		wf.Close()
		f.Close()
		return nil, err
	}
	if sz == 0 {
		// Fresh file: the header exists only in memory until the first
		// commit reaches disk.
		p.numPages = 1
		p.hdrDirty = true
		return p, nil
	}
	if err := p.readHeader(); err != nil {
		wf.Close()
		f.Close()
		return nil, err
	}
	return p, nil
}

// recoverLog replays the WAL: committed page images are folded into the
// page file (idempotent — a crash during recovery just replays again)
// and the log is truncated; uncommitted or torn tail records are
// dropped. With archiving enabled, the committed prefix is appended to
// the archive first — recovery is a checkpoint, and checkpoints never
// discard committed history. Discarded records' LSNs are reused (the
// log restarts at the committed LSN), keeping archived LSNs dense.
func (p *filePager) recoverLog() error {
	committed, info, err := p.wal.replay()
	if err != nil {
		return err
	}
	p.discardedRecs = uint64(info.discarded)
	p.wal.lsn = info.committedLSN
	p.wal.commitLSN = info.committedLSN
	if len(committed) > 0 {
		for _, id := range sortedPageIDs(committed) {
			if err := p.writeFrame(id, committed[id]); err != nil {
				return err
			}
		}
		if err := p.f.Sync(); err != nil {
			return err
		}
		p.recoveredPages = uint64(len(committed))
	}
	sz, err := p.wal.f.Size()
	if err != nil {
		return err
	}
	if sz == 0 && info.discarded == 0 {
		return nil
	}
	if p.archive != nil && info.committedOff > 0 {
		// The pre-crash archived offset is unknown, so the whole
		// committed prefix is (re-)archived; replay deduplicates by LSN.
		recs := make([]byte, info.committedOff)
		if _, err := p.wal.f.ReadAt(recs, 0); err != nil && err != io.EOF {
			return err
		}
		if err := p.archive.append(recs, info.committedLSN); err != nil {
			// Archive fault: keep the committed log live instead of
			// truncating history away. New records overwrite the
			// discarded tail; a later checkpoint retries the archive.
			p.archive.faults.Add(1)
			p.wal.off = info.committedOff
			p.wal.archivedOff = 0
			return nil
		}
	}
	return p.wal.resetLog()
}

func (p *filePager) encodeHeaderPage() ([]byte, error) {
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(pagerMagic))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(p.numPages))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(p.freeHead))
	binary.LittleEndian.PutUint64(buf[12:20], p.wal.lsn)
	off := 20
	binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(p.meta)))
	off += 4
	for name, root := range p.meta {
		if off+4+len(name)+8 > PageSize {
			return nil, errors.New("store: header meta table overflow")
		}
		binary.LittleEndian.PutUint32(buf[off:off+4], uint32(len(name)))
		off += 4
		copy(buf[off:], name)
		off += len(name)
		binary.LittleEndian.PutUint64(buf[off:off+8], root)
		off += 8
	}
	return buf, nil
}

func (p *filePager) readHeader() error {
	buf := make([]byte, PageSize)
	if err := p.readFrame(0, buf); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != uint32(pagerMagic) {
		return errBadMagic
	}
	p.numPages = PageID(binary.LittleEndian.Uint32(buf[4:8]))
	p.freeHead = PageID(binary.LittleEndian.Uint32(buf[8:12]))
	if lsn := binary.LittleEndian.Uint64(buf[12:20]); lsn > p.wal.lsn {
		// The header was written at a checkpoint, i.e. a commit
		// boundary, so its LSN is a committed LSN.
		p.wal.lsn = lsn
		p.wal.commitLSN = lsn
	}
	off := 20
	n := int(binary.LittleEndian.Uint32(buf[off : off+4]))
	off += 4
	for i := 0; i < n; i++ {
		ln := int(binary.LittleEndian.Uint32(buf[off : off+4]))
		off += 4
		name := string(buf[off : off+ln])
		off += ln
		p.meta[name] = binary.LittleEndian.Uint64(buf[off : off+8])
		off += 8
	}
	return nil
}

// writeFrame writes data as page id's frame in the page file, trailer
// included.
func (p *filePager) writeFrame(id PageID, data []byte) error {
	frame := make([]byte, diskFrameSize)
	copy(frame, data[:PageSize])
	binary.LittleEndian.PutUint32(frame[PageSize:PageSize+4], uint32(p.wal.lsn))
	binary.LittleEndian.PutUint32(frame[PageSize+4:], frameCRC(id, frame[:PageSize+4]))
	_, err := p.f.WriteAt(frame, int64(id)*diskFrameSize)
	return err
}

// readFrame reads page id from the page file, verifying its checksum.
// Frames beyond EOF or wholly zero (file holes: allocated, never
// checkpointed) read as zero pages.
func (p *filePager) readFrame(id PageID, buf []byte) error {
	frame := make([]byte, diskFrameSize)
	n, err := p.f.ReadAt(frame, int64(id)*diskFrameSize)
	if err != nil && err != io.EOF {
		return err
	}
	if n < diskFrameSize {
		if allZero(frame[:n]) {
			zeroPage(buf)
			return nil
		}
		p.checksumErrors.Add(1)
		return fmt.Errorf("store: page %d: torn frame (%d of %d bytes): %w", id, n, diskFrameSize, ErrChecksum)
	}
	stored := binary.LittleEndian.Uint32(frame[PageSize+4:])
	if crc := frameCRC(id, frame[:PageSize+4]); crc != stored {
		if allZero(frame) {
			zeroPage(buf)
			return nil
		}
		p.checksumErrors.Add(1)
		return fmt.Errorf("store: page %d: stored CRC %#08x, computed %#08x: %w", id, stored, crc, ErrChecksum)
	}
	copy(buf[:PageSize], frame[:PageSize])
	return nil
}

// sortedPageIDs returns m's keys ascending: frame write-back proceeds
// in page order, keeping the I/O sequential and the crash harness's op
// numbering deterministic.
func sortedPageIDs(m map[PageID][]byte) []PageID {
	ids := make([]PageID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

func zeroPage(buf []byte) {
	for i := range buf[:PageSize] {
		buf[i] = 0
	}
}

func (p *filePager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.numPages {
		return fmt.Errorf("store: read of unallocated page %d", id)
	}
	if img, ok := p.tail[id]; ok {
		copy(buf[:PageSize], img)
		return nil
	}
	return p.readFrame(id, buf)
}

func (p *filePager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id >= p.numPages {
		return fmt.Errorf("store: write of unallocated page %d", id)
	}
	p.stash(id, buf)
	return nil
}

// stash records buf as the current image of page id and appends it to
// the log buffer (lock held). Nothing touches the page file here: the
// image becomes durable at the next Sync and reaches its home frame at
// the next checkpoint. Inside a transaction, the page's pre-transaction
// tail image is saved first (once) so rollback can restore it.
func (p *filePager) stash(id PageID, buf []byte) {
	if p.txn != nil {
		if _, seen := p.txn.preTail[id]; !seen {
			if img, ok := p.tail[id]; ok {
				p.txn.preTail[id] = append([]byte(nil), img...)
			} else {
				p.txn.preTail[id] = nil
			}
		}
	}
	img := p.tail[id]
	if img == nil {
		img = make([]byte, PageSize)
		p.tail[id] = img
	}
	copy(img, buf[:PageSize])
	p.wal.appendPage(id, img)
}

func (p *filePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freeHead != invalidPage {
		id := p.freeHead
		var next PageID
		if img, ok := p.tail[id]; ok {
			next = PageID(binary.LittleEndian.Uint32(img[:4]))
		} else {
			buf := make([]byte, PageSize)
			if err := p.readFrame(id, buf); err != nil {
				return 0, err
			}
			next = PageID(binary.LittleEndian.Uint32(buf[:4]))
		}
		p.freeHead = next
		p.stash(id, make([]byte, PageSize)) // reused pages must read as zero
		p.hdrDirty = true
		return id, nil
	}
	// Fresh pages need no write at all: they read as zeros until first
	// written, and the grown page count rides with the next commit.
	id := p.numPages
	p.numPages++
	p.hdrDirty = true
	return id, nil
}

func (p *filePager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == 0 || id >= p.numPages {
		return fmt.Errorf("store: free of invalid page %d", id)
	}
	buf := make([]byte, PageSize)
	binary.LittleEndian.PutUint32(buf[:4], uint32(p.freeHead))
	p.stash(id, buf)
	p.freeHead = id
	p.hdrDirty = true
	return nil
}

func (p *filePager) NumPages() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.numPages
}

// Sync is the commit point: the header page and every page written
// since the last Sync become durable atomically (or, after a crash, the
// store recovers to the previous Sync). With nothing to commit it is
// free — no write, no fsync.
func (p *filePager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.commit()
}

// commit makes everything pending durable, then checkpoints if the log
// has grown past its limit — including a checkpoint left over from an
// earlier fault, which retries here even when nothing new is pending.
// While a transaction is open, commit is a no-op: durability waits for
// CommitTxn.
func (p *filePager) commit() error {
	if p.txn != nil {
		return nil
	}
	if err := p.commitOnly(); err != nil {
		return err
	}
	if p.wal.size() >= p.checkpointBytes {
		return p.checkpoint()
	}
	return nil
}

// commitOnly seals the pending batch with a commit marker (no
// checkpoint). With nothing pending it is free.
func (p *filePager) commitOnly() error {
	if !p.hdrDirty && !p.wal.pending() {
		return nil
	}
	hdr, err := p.encodeHeaderPage()
	if err != nil {
		return err
	}
	p.wal.appendPage(0, hdr)
	if err := p.wal.commit(); err != nil {
		return err
	}
	p.hdrDirty = false
	return nil
}

// checkpoint folds every committed page image into the page file and
// truncates the log. Called only at commit points, so the tail holds
// committed images exclusively. During an online backup it is a no-op
// (the page file's frames must stay frozen; the log simply keeps
// growing until the backup finishes), and with archiving enabled an
// archive fault skips the checkpoint rather than either failing the
// commit or truncating unarchived history — the committed log stays
// live and a later checkpoint retries.
func (p *filePager) checkpoint() error {
	if p.backupActive {
		return nil
	}
	if p.diverged != nil {
		// The log may hold an aborted transaction past diverged.off;
		// neither archive nor truncate it until clearDiverged repairs
		// the log (the store is read-only in this state anyway).
		return nil
	}
	if err := p.archiveBarrier(); err != nil {
		p.archive.faults.Add(1)
		return nil
	}
	return p.checkpointLocked()
}

// archiveBarrier appends the not-yet-archived committed log prefix
// [archivedOff, off) to the archive. Must be called at a commit
// boundary (the flushed log ends at a commit marker). No-op when
// archiving is disabled.
func (p *filePager) archiveBarrier() error {
	if p.archive == nil || p.wal.off == p.wal.archivedOff {
		return nil
	}
	recs := make([]byte, p.wal.off-p.wal.archivedOff)
	if _, err := p.wal.f.ReadAt(recs, p.wal.archivedOff); err != nil && err != io.EOF {
		return fmt.Errorf("%w: %v", errArchive, err)
	}
	if err := p.archive.append(recs, p.wal.commitLSN); err != nil {
		return err
	}
	p.wal.archivedOff = p.wal.off
	return nil
}

// checkpointLocked is the fold half of a checkpoint, past the archive
// barrier and the backup guard.
func (p *filePager) checkpointLocked() error {
	if p.wal.size() == 0 && len(p.tail) == 0 {
		if sz, err := p.f.Size(); err == nil && sz > 0 {
			return nil // nothing new and the header is already on disk
		}
	}
	for _, id := range sortedPageIDs(p.tail) {
		if err := p.writeFrame(id, p.tail[id]); err != nil {
			return err
		}
	}
	hdr, err := p.encodeHeaderPage()
	if err != nil {
		return err
	}
	if err := p.writeFrame(0, hdr); err != nil {
		return err
	}
	if err := p.f.Sync(); err != nil {
		return err
	}
	if err := p.wal.resetLog(); err != nil {
		return err
	}
	p.tail = map[PageID][]byte{}
	p.checkpoints.Add(1)
	return nil
}

func (p *filePager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.txn != nil {
		// An abandoned transaction is rolled back, never committed:
		// without the rollback the commit/checkpoint below would
		// persist its half-applied images.
		p.rollbackLocked()
	}
	err := p.commit()
	if err == nil {
		err = p.checkpoint()
	}
	if werr := p.wal.f.Close(); err == nil && werr != nil {
		err = werr
	}
	if ferr := p.f.Close(); err == nil && ferr != nil {
		err = ferr
	}
	return err
}

// setCheckpointLimit lowers the log-size threshold that triggers a
// checkpoint (tests exercise checkpoint crossings with small limits).
func (p *filePager) setCheckpointLimit(bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkpointBytes = bytes
}

// SetCheckpointLimit configures the WAL-size checkpoint threshold on
// pagers that have one (the file pager); other pagers ignore it.
func SetCheckpointLimit(pg Pager, bytes int64) {
	if p, ok := pg.(*filePager); ok {
		p.setCheckpointLimit(bytes)
	}
}

// attachObs exposes the pager's durability counters in the knowledge
// base's metrics registry. The pager exists before the registry (the
// store creates the registry after opening the pager, and recovery has
// already run), so the metrics are registered as readers over the
// pager's own counters rather than registry-owned handles.
func (p *filePager) attachObs(reg *obs.Registry) {
	reg.RegisterFunc("store.wal.appends", func() any { return p.wal.appends.Load() })
	reg.RegisterFunc("store.wal.commits", func() any { return p.wal.commits.Load() })
	reg.RegisterFunc("store.wal.fsyncs", func() any { return p.wal.fsyncs.Load() })
	reg.RegisterFunc("store.wal.bytes", func() any { return p.wal.bytes.Load() })
	reg.RegisterFunc("store.wal.checkpoints", func() any { return p.checkpoints.Load() })
	reg.RegisterFunc("store.wal.recovered_pages", func() any { return p.recoveredPages })
	reg.RegisterFunc("store.wal.discarded_records", func() any { return p.discardedRecs })
	reg.RegisterFunc("store.checksum_errors", func() any { return p.checksumErrors.Load() })
	reg.RegisterFunc("store.wal.archive_segments", func() any {
		if p.archive == nil {
			return uint64(0)
		}
		return p.archive.segments.Load()
	})
	reg.RegisterFunc("store.wal.archive_bytes", func() any {
		if p.archive == nil {
			return uint64(0)
		}
		return p.archive.abytes.Load()
	})
	reg.RegisterFunc("store.wal.archive_pruned", func() any {
		if p.archive == nil {
			return uint64(0)
		}
		return p.archive.pruned.Load()
	})
	reg.RegisterFunc("store.wal.archive_errors", func() any {
		if p.archive == nil {
			return uint64(0)
		}
		return p.archive.faults.Load()
	})
}

// commitLSNNow returns the LSN of the last durable commit marker.
func (p *filePager) commitLSNNow() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wal.commitLSN
}

// obsAttacher is implemented by pagers that contribute metrics to the
// store's registry.
type obsAttacher interface{ attachObs(reg *obs.Registry) }

// metaTable gives Store access to the pager's name->root map.
type metaTable interface {
	metaGet(name string) (uint64, bool)
	metaSet(name string, v uint64) error
}

func (p *memPager) metaGet(name string) (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.meta[name]
	return v, ok
}

func (p *memPager) metaSet(name string, v uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.meta[name] = v
	return nil
}

func (p *filePager) metaGet(name string) (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.meta[name]
	return v, ok
}

// metaSet updates the in-memory header; like Allocate and Free it costs
// no I/O — the header persists with the next commit.
func (p *filePager) metaSet(name string, v uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.meta[name] = v
	p.hdrDirty = true
	return nil
}
