package store

// Transactions. The pager's normal regime makes every Sync a commit
// point; a transaction suspends that — Sync becomes a no-op, page
// images keep accumulating in memory (the WAL buffer and the tail map),
// and nothing touches either file until CommitTxn appends the single
// commit marker. Rollback therefore needs no disk I/O at all: it
// discards the WAL buffer, restores the header fields and the
// pre-transaction tail images, and the files never knew the transaction
// happened. A crash mid-transaction recovers to the pre-transaction
// state for the same reason.
//
// The one hard case is a commit that fails halfway: a failed fsync
// happens after the marker has left the buffer, so the marker may or
// may not be durable. CommitTxn rolls the in-memory state back and
// truncates the log to its pre-transaction length so recovery cannot
// resurrect the aborted transaction; if even the truncate fails, the
// store above flips read-only, which keeps the divergence from
// compounding (see Store.Commit).

import "errors"

// Transaction state errors.
var (
	// ErrTxnOpen reports Begin with a transaction already open
	// (transactions do not nest).
	ErrTxnOpen = errors.New("store: transaction already open")
	// ErrNoTxn reports Commit/Rollback without an open transaction.
	ErrNoTxn = errors.New("store: no transaction open")
)

// TxnPager is implemented by pagers that can group writes into an
// atomic, rollback-able unit. Between BeginTxn and CommitTxn, Sync is a
// no-op: nothing becomes durable until the commit, and RollbackTxn
// restores the pager exactly to its BeginTxn state.
type TxnPager interface {
	BeginTxn() error
	CommitTxn() error
	RollbackTxn() error
	InTxn() bool
}

// pagerTxn is the filePager's undo record: the header fields at
// BeginTxn plus, for every page stashed during the transaction, its
// pre-transaction tail image.
type pagerTxn struct {
	numPages PageID
	freeHead PageID
	meta     map[string]uint64
	hdrDirty bool
	preOff   int64  // wal.off at BeginTxn, for post-failure truncation
	preLSN   uint64 // wal.lsn at BeginTxn; rollback reuses the discarded LSNs
	// preTail maps each page first stashed during the transaction to the
	// tail image it had before (nil: the page was not in the tail, so
	// rollback deletes it).
	preTail map[PageID][]byte
}

// divergence records a failed-commit cleanup that could not be made
// durable: the log file may still hold the aborted transaction's
// records (possibly including its commit marker) past off. While it
// stands, the pager neither checkpoints nor archives — the store above
// is read-only — and clearDiverged retries the truncation before
// writes are re-enabled.
type divergence struct {
	off int64
	lsn uint64
}

func (p *filePager) BeginTxn() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.txn != nil {
		return ErrTxnOpen
	}
	// Make the pre-transaction state durable first. After this the WAL
	// buffer is empty and nothing is pending, so everything appended
	// while the transaction is open is exactly the transaction's redo
	// set, and discarding the buffer is a complete log undo.
	if err := p.commit(); err != nil {
		return err
	}
	meta := make(map[string]uint64, len(p.meta))
	for k, v := range p.meta {
		meta[k] = v
	}
	p.txn = &pagerTxn{
		numPages: p.numPages,
		freeHead: p.freeHead,
		meta:     meta,
		hdrDirty: p.hdrDirty,
		preOff:   p.wal.off,
		preLSN:   p.wal.lsn,
		preTail:  map[PageID][]byte{},
	}
	return nil
}

func (p *filePager) CommitTxn() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.txn == nil {
		return ErrNoTxn
	}
	txn := p.txn
	p.txn = nil // lift the commit guard
	if err := p.commitOnly(); err != nil {
		// The marker may be partially — or, after a failed fsync, even
		// fully — on disk. Restore the in-memory state and truncate the
		// log back to its pre-transaction length so recovery can never
		// resurrect the aborted transaction. If the truncate itself
		// fails the caller degrades to read-only, so the possibly
		// durable marker can at worst resurface the transaction at the
		// next open, never diverge from live state that kept writing.
		p.txn = txn
		advancedLSN := p.wal.lsn
		p.rollbackLocked()
		// Adopt the shorter offset only once the truncate is durable: a
		// failed fsync means a crash could still surface the marker, so
		// keeping wal.off advanced makes any later append land after it
		// instead of silently narrowing the divergence to a crash window.
		// In that diverged state the discarded LSNs stay burned too (the
		// file still holds records carrying them), and the divergence is
		// recorded so clearDiverged can repair the log before the store
		// re-enables writes.
		durable := false
		if terr := p.wal.f.Truncate(txn.preOff); terr == nil {
			if serr := p.wal.f.Sync(); serr == nil {
				p.wal.off = txn.preOff
				durable = true
			}
		}
		if !durable {
			p.wal.lsn = advancedLSN
			p.diverged = &divergence{off: txn.preOff, lsn: txn.preLSN}
		}
		return err
	}
	// The transaction is durable. Checkpoint opportunistically like any
	// other commit, but do not fail the committed transaction over it: a
	// checkpoint fault leaves the tail and the committed log intact
	// (see checkpoint), and the next commit retries it.
	if p.wal.size() >= p.checkpointBytes {
		_ = p.checkpoint()
	}
	return nil
}

func (p *filePager) RollbackTxn() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.txn == nil {
		return ErrNoTxn
	}
	p.rollbackLocked()
	return nil
}

// rollbackLocked restores the pre-transaction pager state (mu held,
// p.txn non-nil). No file I/O happens while a transaction is open, so
// dropping the WAL buffer and restoring the in-memory images is the
// whole undo; only the commit-failure path in CommitTxn touches the log
// file afterwards.
func (p *filePager) rollbackLocked() {
	txn := p.txn
	p.txn = nil
	p.numPages = txn.numPages
	p.freeHead = txn.freeHead
	p.meta = txn.meta
	p.hdrDirty = txn.hdrDirty
	for id, img := range txn.preTail {
		if img == nil {
			delete(p.tail, id)
		} else {
			p.tail[id] = img
		}
	}
	p.wal.buf = p.wal.buf[:0]
	p.wal.dirty = false
	// The discarded records never reached the file (no I/O inside a
	// transaction), so their LSNs are reused — keeping the LSN sequence
	// of what does reach the log (and hence the archive) dense.
	p.wal.lsn = txn.preLSN
}

func (p *filePager) InTxn() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.txn != nil
}

// clearDiverged is the operator repair path behind Store.ClearReadOnly:
// it proves the medium is writable again before the store re-enables
// writes. If a failed commit left the log diverged, the truncation is
// retried (restoring the pre-transaction offset and LSN); then a full
// commit + checkpoint forces the page file and an empty log to reflect
// the consistent in-memory state. Any failure leaves the store
// read-only.
func (p *filePager) clearDiverged() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.txn != nil {
		return ErrTxnOpen
	}
	if p.backupActive {
		return errors.New("store: cannot clear read-only during an online backup")
	}
	if d := p.diverged; d != nil {
		if err := p.wal.f.Truncate(d.off); err != nil {
			return err
		}
		if err := p.wal.f.Sync(); err != nil {
			return err
		}
		p.wal.off = d.off
		p.wal.lsn = d.lsn
		p.diverged = nil
	}
	if err := p.commitOnly(); err != nil {
		return err
	}
	if err := p.archiveBarrier(); err != nil {
		return err
	}
	return p.checkpointLocked()
}

// memTxn is the memPager's undo record: the page-array length and
// header fields at BeginTxn plus pre-images of the pre-existing pages
// written during the transaction.
type memTxn struct {
	nPages   int
	freeHead PageID
	meta     map[string]uint64
	pre      map[PageID][]byte
}

// saveUndo records page id's pre-image, once, if it predates the
// transaction (pages allocated inside the transaction are undone by
// truncating the page array).
func (p *memPager) saveUndo(id PageID) {
	if p.txn == nil || int(id) >= p.txn.nPages {
		return
	}
	if _, seen := p.txn.pre[id]; !seen {
		p.txn.pre[id] = append([]byte(nil), p.pages[id]...)
	}
}

func (p *memPager) BeginTxn() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.txn != nil {
		return ErrTxnOpen
	}
	meta := make(map[string]uint64, len(p.meta))
	for k, v := range p.meta {
		meta[k] = v
	}
	p.txn = &memTxn{
		nPages:   len(p.pages),
		freeHead: p.freeHead,
		meta:     meta,
		pre:      map[PageID][]byte{},
	}
	return nil
}

func (p *memPager) CommitTxn() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.txn == nil {
		return ErrNoTxn
	}
	p.txn = nil // memory is the only store; nothing can fail
	return nil
}

func (p *memPager) RollbackTxn() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.txn == nil {
		return ErrNoTxn
	}
	txn := p.txn
	p.txn = nil
	for id, img := range txn.pre {
		copy(p.pages[id], img)
	}
	p.pages = p.pages[:txn.nPages]
	p.freeHead = txn.freeHead
	p.meta = txn.meta
	return nil
}

func (p *memPager) InTxn() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.txn != nil
}
