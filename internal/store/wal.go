package store

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"sync/atomic"
)

// The write-ahead log makes page-file updates crash-atomic. Every
// WritePage appends a full page image to the log (buffered in memory);
// Sync appends a commit marker, writes the whole batch with a single
// WriteAt and makes it durable with a single fsync — group commit: the
// cost of durability is one fsync per flush, not per page. The main
// page file is only written at checkpoint, after the images it absorbs
// are already durable in the log, so a crash at any instant leaves
// either the old or the new committed state recoverable.
//
// Record layout (little-endian):
//
//	[0]     kind: 1 = page image, 2 = commit marker
//	[1:9]   LSN
//	[9:13]  page ID
//	[13:17] CRC32C over bytes [0:13] and the payload
//	[17: ]  page image (walPage records only, PageSize bytes)
//
// Replay applies page records in order and promotes them to the
// committed state at each valid commit marker; a record that is torn
// (short) or fails its CRC ends the scan — it and everything after it
// is the discarded tail.
const (
	walPage   = 1
	walCommit = 2
	walRecHdr = 17
)

// WALSuffix names the log file next to the page file.
const WALSuffix = ".wal"

// defaultCheckpointBytes bounds log growth: after a commit that leaves
// the log larger than this, the pager checkpoints and truncates it.
const defaultCheckpointBytes = 4 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type wal struct {
	f     File
	buf   []byte // records appended since the last flush to f
	off   int64  // flushed bytes in f
	lsn   uint64
	dirty bool // page records appended since the last commit
	// commitLSN is the LSN of the last durable commit marker. Unlike
	// lsn it never counts records that were later discarded (a rolled
	// back transaction, a torn tail), so it is the LSN a backup or an
	// archive segment can be stamped with.
	commitLSN uint64
	// archivedOff is how much of the flushed log [0, off) has been
	// copied into an archive segment (archive.go). Only ever advanced
	// at commit boundaries, so the archived prefix always ends at a
	// commit marker.
	archivedOff int64

	appends atomic.Uint64
	commits atomic.Uint64
	fsyncs  atomic.Uint64
	bytes   atomic.Uint64
}

func newWAL(f File) *wal { return &wal{f: f} }

// pending reports whether any page image awaits a commit marker.
func (w *wal) pending() bool { return w.dirty }

// size is the log's logical length (flushed plus buffered).
func (w *wal) size() int64 { return w.off + int64(len(w.buf)) }

func (w *wal) appendRec(kind byte, id PageID, data []byte) {
	w.lsn++
	var hdr [walRecHdr]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint64(hdr[1:9], w.lsn)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(id))
	crc := crc32.Update(0, crcTable, hdr[:13])
	crc = crc32.Update(crc, crcTable, data)
	binary.LittleEndian.PutUint32(hdr[13:17], crc)
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, data...)
}

func (w *wal) appendPage(id PageID, data []byte) {
	w.appendRec(walPage, id, data)
	w.dirty = true
	w.appends.Add(1)
}

// commit seals the current batch: one commit marker, one write, one
// fsync, regardless of how many pages the batch touched.
func (w *wal) commit() error {
	w.appendRec(walCommit, 0, nil)
	if _, err := w.f.WriteAt(w.buf, w.off); err != nil {
		return err
	}
	w.off += int64(len(w.buf))
	w.bytes.Add(uint64(len(w.buf)))
	w.buf = w.buf[:0]
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	w.commits.Add(1)
	w.dirty = false
	// The marker was the last record appended, so w.lsn is its LSN.
	w.commitLSN = w.lsn
	return nil
}

// resetLog empties the log after a checkpoint has made the main file
// current. Once the truncate has succeeded, off/buf are reset even if
// the fsync then fails: the file really is shorter as the OS sees it,
// so leaving off at its old value would make the next commit write past
// a hole of zeros that replay mistakes for the end of the log —
// silently discarding a commit that reported success. Replaying the
// old log instead (if the truncate never became durable before a
// crash) merely rewrites images the checkpoint already persisted.
func (w *wal) resetLog() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	w.off = 0
	w.archivedOff = 0
	w.buf = w.buf[:0]
	w.dirty = false
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	return nil
}

// scanRecords walks the valid record prefix of log, calling fn for each
// record (data is nil for commit markers, the page image otherwise).
// It stops at the first torn or corrupt record — or when fn returns
// false — and returns the byte offset it stopped at.
func scanRecords(log []byte, fn func(kind byte, lsn uint64, id PageID, data []byte) bool) int {
	off := 0
	for off+walRecHdr <= len(log) {
		hdr := log[off : off+walRecHdr]
		kind := hdr[0]
		if kind != walPage && kind != walCommit {
			break
		}
		var data []byte
		recLen := walRecHdr
		if kind == walPage {
			if off+walRecHdr+PageSize > len(log) {
				break // torn page record
			}
			data = log[off+walRecHdr : off+walRecHdr+PageSize]
			recLen += PageSize
		}
		crc := crc32.Update(0, crcTable, hdr[:13])
		crc = crc32.Update(crc, crcTable, data)
		if crc != binary.LittleEndian.Uint32(hdr[13:17]) {
			break
		}
		lsn := binary.LittleEndian.Uint64(hdr[1:9])
		id := PageID(binary.LittleEndian.Uint32(hdr[9:13]))
		if !fn(kind, lsn, id, data) {
			return off
		}
		off += recLen
	}
	return off
}

// walReplayInfo summarises one log replay.
type walReplayInfo struct {
	// maxLSN is the highest LSN seen, committed or not, so new records
	// never reuse the LSN of a record a crash may yet surface.
	maxLSN uint64
	// committedLSN is the LSN of the last valid commit marker and
	// committedOff the byte offset just past it: log[0:committedOff] is
	// the committed prefix a WAL archive preserves.
	committedLSN uint64
	committedOff int64
	// discarded counts records dropped as uncommitted or torn tail.
	discarded int
}

// replay scans the log and returns the page images established by the
// last durable commit, plus the scan summary (see walReplayInfo).
func (w *wal) replay() (committed map[PageID][]byte, info walReplayInfo, err error) {
	committed = map[PageID][]byte{}
	sz, err := w.f.Size()
	if err != nil {
		return nil, info, err
	}
	if sz == 0 {
		return committed, info, nil
	}
	log := make([]byte, sz)
	if _, err := w.f.ReadAt(log, 0); err != nil && err != io.EOF {
		return nil, info, err
	}
	pending := map[PageID][]byte{}
	recEnd := int64(0)
	off := scanRecords(log, func(kind byte, lsn uint64, id PageID, data []byte) bool {
		if lsn > info.maxLSN {
			info.maxLSN = lsn
		}
		if kind == walPage {
			img := make([]byte, PageSize)
			copy(img, data)
			pending[id] = img
			recEnd += walRecHdr + PageSize
		} else {
			for pid, img := range pending {
				committed[pid] = img
			}
			pending = map[PageID][]byte{}
			recEnd += walRecHdr
			info.committedLSN = lsn
			info.committedOff = recEnd
		}
		return true
	})
	info.discarded = len(pending)
	if off < len(log) {
		info.discarded++ // the torn or corrupt record that ended the scan
	}
	return committed, info, nil
}
