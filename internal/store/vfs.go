package store

import (
	"io"
	"os"
)

// File is the I/O surface the pager needs from a backing file. It is
// satisfied by *os.File (via osFile) in production; tests substitute
// deterministic in-memory files with crash injection to exercise the
// recovery path at every write and sync boundary.
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Close() error
	Size() (int64, error)
}

// FS opens backing files by name, creating them when absent.
type FS interface {
	OpenFile(name string) (File, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// OpenFile opens or creates name read-write.
func (OSFS) OpenFile(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}
