package store

import (
	"io"
	"os"
	"path/filepath"
)

// File is the I/O surface the pager needs from a backing file. It is
// satisfied by *os.File (via osFile) in production; tests substitute
// deterministic in-memory files with crash injection to exercise the
// recovery path at every write and sync boundary.
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Close() error
	Size() (int64, error)
}

// FS opens backing files by name, creating them when absent.
type FS interface {
	OpenFile(name string) (File, error)
}

// ArchiveFS extends FS with the directory operations WAL archiving
// needs: creating the archive directory, enumerating its segments, and
// pruning old ones. OSFS and the test filesystem (simfs) both implement
// it; enabling archiving on an FS without these operations is an open
// error, not a silent no-op.
type ArchiveFS interface {
	FS
	// MkdirAll ensures dir exists.
	MkdirAll(dir string) error
	// List returns the full paths of the files under dir, sorted.
	List(dir string) ([]string, error)
	// Remove deletes the named file.
	Remove(name string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// OpenFile opens or creates name read-write.
func (OSFS) OpenFile(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// MkdirAll ensures dir exists.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// List returns the full paths of the regular files under dir, sorted
// (os.ReadDir sorts by name).
func (OSFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	return names, nil
}

// Remove deletes the named file.
func (OSFS) Remove(name string) error { return os.Remove(name) }
