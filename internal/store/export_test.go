package store

// Test-only exports for the external store_test package.

// DiskFrameSize is the on-disk frame size (page + checksum trailer),
// exported so the crash harness can address individual frames in a raw
// store image.
const DiskFrameSize = diskFrameSize
