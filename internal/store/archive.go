package store

// WAL segment archiving: instead of discarding the committed log at
// every checkpoint, the pager appends it to a numbered segment file in
// an archive directory. The archive is the store's history — a backup
// image (backup.go) stamped with its start LSN plus the archived
// segments covering LSNs beyond it can reconstruct the store at any
// later committed transaction boundary (point-in-time recovery).
//
// Segment format (little-endian), named <seq>%016d + ".walseg":
//
//	[0:4]   magic
//	[4:8]   format version
//	[8:16]  sequence number (must match the file name)
//	[16:24] last committed LSN in the segment
//	[24: ]  raw WAL records (wal.go layout), ending at a commit marker
//
// Invariants the pager maintains:
//
//   - a segment is only ever cut from the committed prefix of the live
//     log, at a commit boundary, and the live log is only truncated
//     after the segment is durably synced — so the archive never has a
//     gap: concatenated in sequence order, segment records carry dense
//     LSNs (duplicates are possible after a crash between archiving and
//     truncating, and replay skips them; see replayArchive);
//   - an archive append failure never fails the primary: the checkpoint
//     is skipped (the committed log stays live and is re-archived by a
//     later checkpoint) and store.wal.archive_errors counts the fault;
//   - retention is bounded by a byte budget: oldest segments are pruned
//     first, the newest is never pruned. Pruning forfeits the ability
//     to restore to the pruned LSNs; it never affects the live store.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
)

const (
	archiveMagic   = 0xA9C417E0
	archiveVersion = 1
	archiveHdrSize = 24
	// ArchiveSuffix names archive segment files.
	ArchiveSuffix = ".walseg"
)

// errArchive wraps archive-path I/O faults so checkpoint callers can
// swallow them without masking page-file faults.
var errArchive = errors.New("store: wal archive fault")

// archSeg is one on-disk segment as the archiver tracks it.
type archSeg struct {
	name    string
	size    int64
	seq     uint64
	lastLSN uint64
}

// archiver manages the segment directory for one pager.
type archiver struct {
	fsys    ArchiveFS
	dir     string
	budget  int64 // max total bytes across segments; 0 = unlimited
	nextSeq uint64
	segs    []archSeg // ascending seq

	segments atomic.Uint64 // segments written (cumulative)
	abytes   atomic.Uint64 // bytes archived (cumulative)
	pruned   atomic.Uint64 // segments pruned
	faults   atomic.Uint64 // swallowed archive-path errors
}

func segName(dir string, seq uint64) string {
	return fmt.Sprintf("%s/%016d%s", dir, seq, ArchiveSuffix)
}

// openArchiver scans dir, validating the newest segment (the only one a
// crashed append can have left torn) and removing it if incomplete —
// safe, because the live log is truncated only after a segment is
// durable, so an incomplete segment's records are still in the log and
// will be re-archived.
func openArchiver(fsys ArchiveFS, dir string, budget int64) (*archiver, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	names, err := fsys.List(dir)
	if err != nil {
		return nil, err
	}
	a := &archiver{fsys: fsys, dir: dir, budget: budget, nextSeq: 1}
	var segNames []string
	for _, name := range names {
		if strings.HasSuffix(name, ArchiveSuffix) {
			segNames = append(segNames, name)
		}
	}
	for i, name := range segNames {
		seg, err := readSegHeader(fsys, name)
		if err != nil {
			// Appends always target the highest sequence number, and names
			// are zero-padded, so only the lexicographically last segment
			// can be a crashed append whose header never reached the disk.
			// Its records are still in the live log (the log is truncated
			// only after a segment syncs), so dropping it loses nothing.
			if i == len(segNames)-1 {
				if rerr := fsys.Remove(name); rerr != nil {
					return nil, rerr
				}
				continue
			}
			return nil, fmt.Errorf("store: archive segment %s: %w", name, err)
		}
		a.segs = append(a.segs, seg)
	}
	sort.Slice(a.segs, func(i, j int) bool { return a.segs[i].seq < a.segs[j].seq })
	if n := len(a.segs); n > 0 {
		last := a.segs[n-1]
		if ok, err := segComplete(fsys, last); err != nil {
			return nil, err
		} else if !ok {
			if err := fsys.Remove(last.name); err != nil {
				return nil, err
			}
			a.segs = a.segs[:n-1]
		}
	}
	if n := len(a.segs); n > 0 {
		a.nextSeq = a.segs[n-1].seq + 1
	}
	return a, nil
}

func readSegHeader(fsys ArchiveFS, name string) (archSeg, error) {
	f, err := fsys.OpenFile(name)
	if err != nil {
		return archSeg{}, err
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		return archSeg{}, err
	}
	var hdr [archiveHdrSize]byte
	if sz < archiveHdrSize {
		return archSeg{}, errors.New("short header")
	}
	if _, err := f.ReadAt(hdr[:], 0); err != nil && err != io.EOF {
		return archSeg{}, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != archiveMagic {
		return archSeg{}, errors.New("bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != archiveVersion {
		return archSeg{}, fmt.Errorf("unsupported version %d", v)
	}
	return archSeg{
		name:    name,
		size:    sz,
		seq:     binary.LittleEndian.Uint64(hdr[8:16]),
		lastLSN: binary.LittleEndian.Uint64(hdr[16:24]),
	}, nil
}

// segComplete reports whether the segment's record body parses cleanly
// through a commit marker carrying the header's lastLSN.
func segComplete(fsys ArchiveFS, seg archSeg) (bool, error) {
	body, err := readSegBody(fsys, seg)
	if err != nil {
		return false, err
	}
	var lastCommit uint64
	consumed := scanRecords(body, func(kind byte, lsn uint64, id PageID, data []byte) bool {
		if kind == walCommit {
			lastCommit = lsn
		}
		return true
	})
	return consumed == len(body) && lastCommit == seg.lastLSN, nil
}

func readSegBody(fsys ArchiveFS, seg archSeg) ([]byte, error) {
	f, err := fsys.OpenFile(seg.name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	body := make([]byte, seg.size-archiveHdrSize)
	if _, err := f.ReadAt(body, archiveHdrSize); err != nil && err != io.EOF {
		return nil, err
	}
	return body, nil
}

// append writes records (a committed log prefix ending at a commit
// marker with LSN lastLSN) as the next segment: header + body + one
// sync. Only after the sync succeeds is the segment registered and the
// budget enforced.
func (a *archiver) append(records []byte, lastLSN uint64) error {
	if len(records) == 0 {
		return nil
	}
	seq := a.nextSeq
	name := segName(a.dir, seq)
	f, err := a.fsys.OpenFile(name)
	if err != nil {
		return fmt.Errorf("%w: %v", errArchive, err)
	}
	buf := make([]byte, archiveHdrSize+len(records))
	binary.LittleEndian.PutUint32(buf[0:4], archiveMagic)
	binary.LittleEndian.PutUint32(buf[4:8], archiveVersion)
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	binary.LittleEndian.PutUint64(buf[16:24], lastLSN)
	copy(buf[archiveHdrSize:], records)
	if _, err := f.WriteAt(buf, 0); err != nil {
		f.Close()
		return fmt.Errorf("%w: %v", errArchive, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("%w: %v", errArchive, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%w: %v", errArchive, err)
	}
	a.nextSeq = seq + 1
	a.segs = append(a.segs, archSeg{name: name, size: int64(len(buf)), seq: seq, lastLSN: lastLSN})
	a.segments.Add(1)
	a.abytes.Add(uint64(len(buf)))
	a.prune()
	return nil
}

// prune removes oldest segments while the directory exceeds the byte
// budget, never touching the newest. A failed removal is swallowed
// (counted as a fault): retention is advisory, correctness never
// depends on pruning succeeding.
func (a *archiver) prune() {
	if a.budget <= 0 {
		return
	}
	total := int64(0)
	for _, s := range a.segs {
		total += s.size
	}
	for total > a.budget && len(a.segs) > 1 {
		victim := a.segs[0]
		if err := a.fsys.Remove(victim.name); err != nil {
			a.faults.Add(1)
			return
		}
		total -= victim.size
		a.segs = a.segs[1:]
		a.pruned.Add(1)
	}
}

// replayArchive scans the archive segments in sequence order, applying
// committed page images up to (and including) the transaction that
// committed at targetLSN; targetLSN 0 means "everything archived".
// startLSN is the LSN the caller's base image is already consistent at:
// records at or below it are skipped as duplicates (re-archiving after
// a crash legitimately produces them), and from there the applied LSNs
// must be dense — a gap means missing history and is a hard error, as
// is a targetLSN that does not match an archived commit boundary.
//
// apply is called once per promoted page image, in commit order.
func replayArchive(fsys ArchiveFS, dir string, startLSN, targetLSN uint64, apply func(id PageID, lsn uint64, img []byte) error) (lastLSN uint64, err error) {
	names, err := fsys.List(dir)
	if err != nil {
		return 0, err
	}
	var segNames []string
	for _, name := range names {
		if strings.HasSuffix(name, ArchiveSuffix) {
			segNames = append(segNames, name)
		}
	}
	var segs []archSeg
	for i, name := range segNames {
		seg, err := readSegHeader(fsys, name)
		if err != nil {
			// Only the newest segment (highest name, see openArchiver) can
			// be a crashed append; everything durably archived precedes it.
			if i == len(segNames)-1 {
				continue
			}
			return 0, fmt.Errorf("store: archive segment %s: %w", name, err)
		}
		segs = append(segs, seg)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	maxSeen := startLSN
	lastLSN = startLSN
	type pendingImg struct {
		id  PageID
		img []byte
	}
	var pending []pendingImg
	done := false
	for segIdx, seg := range segs {
		if seg.lastLSN <= startLSN {
			continue // entirely covered by the base image
		}
		body, err := readSegBody(fsys, seg)
		if err != nil {
			return 0, err
		}
		var scanErr error
		consumed := scanRecords(body, func(kind byte, lsn uint64, id PageID, data []byte) bool {
			if lsn <= maxSeen {
				return true // duplicate from re-archiving; already applied
			}
			if lsn != maxSeen+1 {
				scanErr = fmt.Errorf("store: archive gap: LSN %d follows %d in %s", lsn, maxSeen, seg.name)
				return false
			}
			maxSeen = lsn
			if kind == walPage {
				img := make([]byte, PageSize)
				copy(img, data)
				pending = append(pending, pendingImg{id: id, img: img})
				return true
			}
			// Commit marker: promote the transaction if it is within the
			// target, otherwise stop — markers are the only consistent
			// stopping points.
			if targetLSN != 0 && lsn > targetLSN {
				done = true
				return false
			}
			for _, p := range pending {
				if scanErr = apply(p.id, lsn, p.img); scanErr != nil {
					return false
				}
			}
			pending = pending[:0]
			lastLSN = lsn
			if targetLSN != 0 && lsn == targetLSN {
				done = true
				return false
			}
			return true
		})
		if scanErr != nil {
			return 0, scanErr
		}
		if done {
			break
		}
		if consumed != len(body) {
			// A torn body is legitimate only in the newest segment (a
			// crashed append): its valid prefix was applied above and any
			// unpromoted pages are discarded at the final target check.
			if segIdx == len(segs)-1 {
				break
			}
			return 0, fmt.Errorf("store: archive segment %s: torn or corrupt record at offset %d", seg.name, consumed)
		}
	}
	if targetLSN != 0 && lastLSN != targetLSN {
		return 0, fmt.Errorf("store: target LSN %d is not an archived commit boundary (archive reaches %d)", targetLSN, lastLSN)
	}
	return lastLSN, nil
}
