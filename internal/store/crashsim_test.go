package store_test

// Deterministic crash injection over the simfs filesystem (see
// internal/store/simfs): kill the "process" at every durability
// operation, materialize each possible on-disk state — unsynced writes
// dropped, kept, or kept with the in-flight write torn in half —
// reopen the store from each image, and require that recovery yields
// exactly the committed state with every integrity check passing.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/edb"
	"repro/internal/store"
	"repro/internal/store/simfs"
)

// --- workload ---------------------------------------------------------------

const (
	crashBatches  = 5
	crashPerBatch = 6
	crashProc     = "route"
	crashArity    = 2
)

// crashBlob is clause n's stored payload; every fifth clause overflows
// onto an overflow chain.
func crashBlob(n int) []byte {
	if n%5 == 4 {
		b := make([]byte, 3*store.PageSize+17)
		for i := range b {
			b[i] = byte(n + i)
		}
		return b
	}
	return []byte(fmt.Sprintf("clause-%d-relocatable-code", n))
}

// crashKeys gives every third clause a variable argument (variable-list
// path); the rest are ground (grid + attribute-index path), with the
// first attribute drawn from four atoms so buckets share keys.
func crashKeys(n int) []edb.ArgKey {
	if n%3 == 0 {
		return []edb.ArgKey{edb.WildKey(), edb.IntKey(int64(n))}
	}
	return []edb.ArgKey{edb.AtomKey(fmt.Sprintf("a%d", n%4)), edb.IntKey(int64(n))}
}

// runCrashWorkload builds an EDB exercising every storage structure —
// procedure heap, clause heap with overflow chains, grid, attribute
// B+trees, variable list — committing in batches. Before each commit
// the batch number about to become durable is written into the store
// header, so a recovered image self-describes how much of the workload
// it must contain. A small pool forces steady eviction traffic and a
// low checkpoint threshold forces mid-run checkpoints, putting crash
// points inside both the commit and the checkpoint paths.
func runCrashWorkload(fsys store.FS) error {
	st, err := store.OpenFS(fsys, "kb", 32)
	if err != nil {
		return err
	}
	store.SetCheckpointLimit(st.Pool().Pager(), 96<<10)
	db, err := edb.Open(st)
	if err != nil {
		return err
	}
	p, err := db.EnsureProc(crashProc, crashArity, edb.FormCode)
	if err != nil {
		return err
	}
	for b := 0; b < crashBatches; b++ {
		for i := 0; i < crashPerBatch; i++ {
			n := b*crashPerBatch + i
			if _, err := db.StoreClause(p, crashKeys(n), crashBlob(n)); err != nil {
				return err
			}
		}
		if err := st.SetMeta("crash.batches", uint64(b+1)); err != nil {
			return err
		}
		if err := st.Flush(); err != nil {
			return err
		}
	}
	return st.Close()
}

// verifyRecovered reopens a harvested image and checks the recovered
// store is exactly some committed prefix of the workload: the batch
// counter in the header says which one, every structure passes its
// integrity check, and precisely that prefix's clauses are readable
// with intact payloads.
func verifyRecovered(t *testing.T, fsys store.FS, label string) {
	t.Helper()
	st, err := store.OpenFS(fsys, "kb", 64)
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer st.Close()
	batches := 0
	if v, ok := st.GetMeta("crash.batches"); ok {
		batches = int(v)
	}
	db, err := edb.Open(st)
	if err != nil {
		t.Fatalf("%s: edb open (%d batches durable): %v", label, batches, err)
	}
	if err := db.Check(); err != nil {
		t.Fatalf("%s: integrity (%d batches durable): %v", label, batches, err)
	}
	p := db.Proc(crashProc, crashArity)
	want := batches * crashPerBatch
	if want == 0 {
		if p != nil && p.ClauseCount != 0 {
			t.Fatalf("%s: no batch committed, yet %d clauses present", label, p.ClauseCount)
		}
		return
	}
	if p == nil {
		t.Fatalf("%s: %d batches durable but procedure missing", label, batches)
	}
	if p.ClauseCount != want {
		t.Fatalf("%s: descriptor records %d clauses, want %d (%d batches)", label, p.ClauseCount, want, batches)
	}
	scs, err := db.AllClauses(p)
	if err != nil {
		t.Fatalf("%s: AllClauses: %v", label, err)
	}
	if len(scs) != want {
		t.Fatalf("%s: %d clauses recovered, want %d", label, len(scs), want)
	}
	for _, sc := range scs {
		if !bytes.Equal(sc.Blob, crashBlob(int(sc.ClauseID))) {
			t.Fatalf("%s: clause %d payload corrupted by recovery", label, sc.ClauseID)
		}
	}
	// One indexed retrieval, so the grid/attribute-index read path is
	// exercised too, not just the scan.
	n := want - 1
	if n%3 == 0 {
		n--
	}
	got, err := db.Retrieve(p, crashKeys(n))
	if err != nil {
		t.Fatalf("%s: retrieve clause %d: %v", label, n, err)
	}
	found := false
	for _, sc := range got {
		found = found || int(sc.ClauseID) == n
	}
	if !found {
		t.Fatalf("%s: clause %d not retrievable through the index", label, n)
	}
}

// TestCrashRecoveryMatrix kills the workload at every durability
// operation, under every torn/kept/dropped interpretation of the
// unsynced tail, and requires clean recovery each time.
func TestCrashRecoveryMatrix(t *testing.T) {
	ctl := simfs.NewCtl(-1)
	clean := simfs.New(ctl)
	if err := runCrashWorkload(clean); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	total := ctl.Ops()
	if total < 20 {
		t.Fatalf("clean run produced only %d durability ops; harness mis-wired", total)
	}
	verifyRecovered(t, clean.Harvest(simfs.Keep), "clean close")

	for k := 0; k < total; k++ {
		for _, variant := range simfs.Variants {
			fsys := simfs.New(simfs.NewCtl(k))
			if err := runCrashWorkload(fsys); err == nil {
				t.Fatalf("crash scheduled at op %d/%d never surfaced", k, total)
			}
			verifyRecovered(t, fsys.Harvest(variant), fmt.Sprintf("crash at op %d/%d, %s", k, total, variant))
		}
	}
}

// TestRecoveryIsIdempotent crashes a second time in the middle of
// recovery itself: replaying the log is restartable, so the store must
// still come up intact afterwards.
func TestRecoveryIsIdempotent(t *testing.T) {
	// Crash just before the final commit's fsync so the reopened store
	// has work to replay, then crash recovery at each of its own ops.
	crashed := func() *simfs.FS {
		probe := simfs.NewCtl(-1)
		if err := runCrashWorkload(simfs.New(probe)); err != nil {
			t.Fatalf("probe run: %v", err)
		}
		ctl := simfs.NewCtl(probe.Ops() - 2)
		fs2 := simfs.New(ctl)
		if err := runCrashWorkload(fs2); err == nil {
			t.Fatal("late crash never surfaced")
		}
		return fs2.Harvest(simfs.Keep)
	}()
	for k := 0; ; k++ {
		ctl := simfs.NewCtl(k)
		again := crashed.Clone(ctl)
		st, err := store.OpenFS(again, "kb", 64)
		if err == nil {
			st.Close()
			if k == 0 {
				t.Fatal("recovery performed no durability ops; idempotence untested")
			}
			break // recovery needs fewer than k ops; matrix exhausted
		}
		verifyRecovered(t, again.Harvest(simfs.Drop), fmt.Sprintf("recovery crash at op %d (drop)", k))
		verifyRecovered(t, again.Harvest(simfs.Torn), fmt.Sprintf("recovery crash at op %d (torn)", k))
	}
}

// TestChecksumDetectsByteFlips closes a store cleanly, then flips
// single bytes across every non-header frame of the raw image — data
// start, middle, end, and both trailer words — and requires each flip
// to surface as ErrChecksum (never a panic, never silent) on the next
// read of that page.
func TestChecksumDetectsByteFlips(t *testing.T) {
	fsys := simfs.New(nil)
	if err := runCrashWorkload(fsys); err != nil {
		t.Fatal(err)
	}
	base := fsys.Image("kb")
	nFrames := len(base) / store.DiskFrameSize
	if nFrames < 10 {
		t.Fatalf("store image holds only %d frames; workload too small", nFrames)
	}
	offsets := []int{0, 1, store.PageSize / 2, store.PageSize - 1, store.PageSize, store.DiskFrameSize - 1}
	for frame := 1; frame < nFrames; frame++ {
		for _, off := range offsets {
			pos := frame*store.DiskFrameSize + off
			img := append([]byte(nil), base...)
			img[pos] ^= 0x40
			fs2 := simfs.New(nil)
			fs2.SetImage("kb", img)
			st, err := store.OpenFS(fs2, "kb", 64)
			if err != nil {
				t.Fatalf("frame %d off %d: reopen: %v", frame, off, err)
			}
			buf := make([]byte, store.PageSize)
			err = st.Pool().Pager().ReadPage(store.PageID(frame), buf)
			st.Close()
			if !errors.Is(err, store.ErrChecksum) {
				t.Fatalf("frame %d off %d: flipped byte read as %v, want ErrChecksum", frame, off, err)
			}
		}
	}
}

// TestCheckCatchesSeededCorruption corrupts a live structure in ways a
// checksum cannot see (the page is internally consistent bytes, just
// wrong) and requires the structural verifiers to object.
func TestCheckCatchesSeededCorruption(t *testing.T) {
	fsys := simfs.New(nil)
	if err := runCrashWorkload(fsys); err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenFS(fsys, "kb", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	db, err := edb.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Check(); err != nil {
		t.Fatalf("pristine store fails check: %v", err)
	}
	// Deleting a clause via the heap alone desynchronizes the indexes
	// from the descriptor count — exactly what Check must notice.
	p := db.Proc(crashProc, crashArity)
	scs, err := db.AllClauses(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteClause(p, scs[1]); err != nil {
		t.Fatal(err)
	}
	p.ClauseCount++ // descriptor now lies about the count
	if err := db.Check(); err == nil {
		t.Fatal("check accepted a descriptor/index mismatch")
	}
	p.ClauseCount--
	if err := db.Check(); err != nil {
		t.Fatalf("restored store fails check: %v", err)
	}
}
