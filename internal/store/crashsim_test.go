package store_test

// Deterministic crash injection. A simulated filesystem counts every
// durability-relevant operation (write, sync, truncate) and can kill
// the "process" at any chosen operation index. After the crash the
// harness materializes the possible on-disk states — unsynced writes
// dropped, kept, or kept with the in-flight write torn in half —
// reopens the store from each image, and requires that recovery yields
// exactly the committed state with every integrity check passing.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"repro/internal/edb"
	"repro/internal/store"
)

var errCrashed = errors.New("crashsim: simulated crash")

// crashCtl numbers durability operations across all files of a simFS
// and fails everything from operation crashAt onward.
type crashCtl struct {
	ops     int
	crashAt int // -1: never crash
	dead    bool
}

func (c *crashCtl) tick() error {
	if c == nil {
		return nil
	}
	if c.dead {
		return errCrashed
	}
	idx := c.ops
	c.ops++
	if c.crashAt >= 0 && idx >= c.crashAt {
		c.dead = true
		return errCrashed
	}
	return nil
}

func (c *crashCtl) alive() error {
	if c != nil && c.dead {
		return errCrashed
	}
	return nil
}

// fileOp is one applied-but-unsynced mutation. data == nil is a
// truncate to size; otherwise a write of data at off.
type fileOp struct {
	seq  int // global operation index, for finding the in-flight write
	off  int64
	data []byte
	size int64
}

// simFile models a file as the OS sees it (cur) and as the disk
// guarantees it after a crash (stable = contents at the last sync,
// pending = ops the disk may or may not have applied).
type simFile struct {
	ctl     *crashCtl
	stable  []byte
	cur     []byte
	pending []fileOp
	writes  int // WriteAt calls, for write-amplification accounting
	syncs   int
}

func (f *simFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.ctl.alive(); err != nil {
		return 0, err
	}
	if off >= int64(len(f.cur)) {
		return 0, io.EOF
	}
	n := copy(p, f.cur[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *simFile) WriteAt(p []byte, off int64) (int, error) {
	if err := f.ctl.tick(); err != nil {
		return 0, err
	}
	f.writes++
	seq := 0
	if f.ctl != nil {
		seq = f.ctl.ops - 1
	}
	end := off + int64(len(p))
	if int64(len(f.cur)) < end {
		f.cur = append(f.cur, make([]byte, end-int64(len(f.cur)))...)
	}
	copy(f.cur[off:end], p)
	f.pending = append(f.pending, fileOp{seq: seq, off: off, data: append([]byte(nil), p...)})
	return len(p), nil
}

func (f *simFile) Sync() error {
	if err := f.ctl.tick(); err != nil {
		return err
	}
	f.syncs++
	f.stable = append([]byte(nil), f.cur...)
	f.pending = nil
	return nil
}

func (f *simFile) Truncate(size int64) error {
	if err := f.ctl.tick(); err != nil {
		return err
	}
	f.cur = resizeTo(f.cur, size)
	f.pending = append(f.pending, fileOp{off: -1, size: size})
	return nil
}

func (f *simFile) Close() error { return nil }

func (f *simFile) Size() (int64, error) {
	if err := f.ctl.alive(); err != nil {
		return 0, err
	}
	return int64(len(f.cur)), nil
}

func resizeTo(b []byte, size int64) []byte {
	if int64(len(b)) > size {
		return b[:size]
	}
	return append(b, make([]byte, size-int64(len(b)))...)
}

// image reconstructs a possible post-crash content of the file.
// tearSeq, when >= 0, names the globally last write issued before the
// crash; the torn variant applies only its first half.
func (f *simFile) image(variant crashVariant, tearSeq int) []byte {
	switch variant {
	case vDrop:
		return append([]byte(nil), f.stable...)
	case vKeep:
		return append([]byte(nil), f.cur...)
	}
	img := append([]byte(nil), f.stable...)
	for _, op := range f.pending {
		if op.data == nil {
			img = resizeTo(img, op.size)
			continue
		}
		d := op.data
		if op.seq == tearSeq {
			d = d[:len(d)/2]
		}
		end := op.off + int64(len(d))
		if int64(len(img)) < end {
			img = append(img, make([]byte, end-int64(len(img)))...)
		}
		copy(img[op.off:end], d)
	}
	return img
}

type crashVariant int

const (
	vDrop crashVariant = iota // no unsynced op reached the disk
	vKeep                     // every unsynced op reached the disk
	vTorn                     // like vKeep, but the in-flight write is half-applied
)

func (v crashVariant) String() string { return [...]string{"drop", "keep", "torn"}[v] }

// simFS hands out simFiles sharing one crash controller.
type simFS struct {
	ctl   *crashCtl
	files map[string]*simFile
}

func newSimFS(ctl *crashCtl) *simFS { return &simFS{ctl: ctl, files: map[string]*simFile{}} }

func (fs *simFS) OpenFile(name string) (store.File, error) {
	if err := fs.ctl.alive(); err != nil {
		return nil, err
	}
	f, ok := fs.files[name]
	if !ok {
		f = &simFile{ctl: fs.ctl}
		fs.files[name] = f
	}
	return f, nil
}

// harvest freezes the crashed filesystem into the on-disk state a
// reboot would find under the given variant.
func (fs *simFS) harvest(variant crashVariant) *simFS {
	tearSeq := -1
	if variant == vTorn {
		for _, f := range fs.files {
			for _, op := range f.pending {
				if op.data != nil && op.seq > tearSeq {
					tearSeq = op.seq
				}
			}
		}
	}
	out := newSimFS(nil)
	for name, f := range fs.files {
		img := f.image(variant, tearSeq)
		out.files[name] = &simFile{stable: append([]byte(nil), img...), cur: img}
	}
	return out
}

// --- workload ---------------------------------------------------------------

const (
	crashBatches  = 5
	crashPerBatch = 6
	crashProc     = "route"
	crashArity    = 2
)

// crashBlob is clause n's stored payload; every fifth clause overflows
// onto an overflow chain.
func crashBlob(n int) []byte {
	if n%5 == 4 {
		b := make([]byte, 3*store.PageSize+17)
		for i := range b {
			b[i] = byte(n + i)
		}
		return b
	}
	return []byte(fmt.Sprintf("clause-%d-relocatable-code", n))
}

// crashKeys gives every third clause a variable argument (variable-list
// path); the rest are ground (grid + attribute-index path), with the
// first attribute drawn from four atoms so buckets share keys.
func crashKeys(n int) []edb.ArgKey {
	if n%3 == 0 {
		return []edb.ArgKey{edb.WildKey(), edb.IntKey(int64(n))}
	}
	return []edb.ArgKey{edb.AtomKey(fmt.Sprintf("a%d", n%4)), edb.IntKey(int64(n))}
}

// runCrashWorkload builds an EDB exercising every storage structure —
// procedure heap, clause heap with overflow chains, grid, attribute
// B+trees, variable list — committing in batches. Before each commit
// the batch number about to become durable is written into the store
// header, so a recovered image self-describes how much of the workload
// it must contain. A small pool forces steady eviction traffic and a
// low checkpoint threshold forces mid-run checkpoints, putting crash
// points inside both the commit and the checkpoint paths.
func runCrashWorkload(fsys store.FS) error {
	st, err := store.OpenFS(fsys, "kb", 32)
	if err != nil {
		return err
	}
	store.SetCheckpointLimit(st.Pool().Pager(), 96<<10)
	db, err := edb.Open(st)
	if err != nil {
		return err
	}
	p, err := db.EnsureProc(crashProc, crashArity, edb.FormCode)
	if err != nil {
		return err
	}
	for b := 0; b < crashBatches; b++ {
		for i := 0; i < crashPerBatch; i++ {
			n := b*crashPerBatch + i
			if _, err := db.StoreClause(p, crashKeys(n), crashBlob(n)); err != nil {
				return err
			}
		}
		if err := st.SetMeta("crash.batches", uint64(b+1)); err != nil {
			return err
		}
		if err := st.Flush(); err != nil {
			return err
		}
	}
	return st.Close()
}

// verifyRecovered reopens a harvested image and checks the recovered
// store is exactly some committed prefix of the workload: the batch
// counter in the header says which one, every structure passes its
// integrity check, and precisely that prefix's clauses are readable
// with intact payloads.
func verifyRecovered(t *testing.T, fsys store.FS, label string) {
	t.Helper()
	st, err := store.OpenFS(fsys, "kb", 64)
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer st.Close()
	batches := 0
	if v, ok := st.GetMeta("crash.batches"); ok {
		batches = int(v)
	}
	db, err := edb.Open(st)
	if err != nil {
		t.Fatalf("%s: edb open (%d batches durable): %v", label, batches, err)
	}
	if err := db.Check(); err != nil {
		t.Fatalf("%s: integrity (%d batches durable): %v", label, batches, err)
	}
	p := db.Proc(crashProc, crashArity)
	want := batches * crashPerBatch
	if want == 0 {
		if p != nil && p.ClauseCount != 0 {
			t.Fatalf("%s: no batch committed, yet %d clauses present", label, p.ClauseCount)
		}
		return
	}
	if p == nil {
		t.Fatalf("%s: %d batches durable but procedure missing", label, batches)
	}
	if p.ClauseCount != want {
		t.Fatalf("%s: descriptor records %d clauses, want %d (%d batches)", label, p.ClauseCount, want, batches)
	}
	scs, err := db.AllClauses(p)
	if err != nil {
		t.Fatalf("%s: AllClauses: %v", label, err)
	}
	if len(scs) != want {
		t.Fatalf("%s: %d clauses recovered, want %d", label, len(scs), want)
	}
	for _, sc := range scs {
		if !bytes.Equal(sc.Blob, crashBlob(int(sc.ClauseID))) {
			t.Fatalf("%s: clause %d payload corrupted by recovery", label, sc.ClauseID)
		}
	}
	// One indexed retrieval, so the grid/attribute-index read path is
	// exercised too, not just the scan.
	n := want - 1
	if n%3 == 0 {
		n--
	}
	got, err := db.Retrieve(p, crashKeys(n))
	if err != nil {
		t.Fatalf("%s: retrieve clause %d: %v", label, n, err)
	}
	found := false
	for _, sc := range got {
		found = found || int(sc.ClauseID) == n
	}
	if !found {
		t.Fatalf("%s: clause %d not retrievable through the index", label, n)
	}
}

// TestCrashRecoveryMatrix kills the workload at every durability
// operation, under every torn/kept/dropped interpretation of the
// unsynced tail, and requires clean recovery each time.
func TestCrashRecoveryMatrix(t *testing.T) {
	ctl := &crashCtl{crashAt: -1}
	clean := newSimFS(ctl)
	if err := runCrashWorkload(clean); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	total := ctl.ops
	if total < 20 {
		t.Fatalf("clean run produced only %d durability ops; harness mis-wired", total)
	}
	verifyRecovered(t, clean.harvest(vKeep), "clean close")

	for k := 0; k < total; k++ {
		for _, variant := range []crashVariant{vDrop, vKeep, vTorn} {
			ctl := &crashCtl{crashAt: k}
			fsys := newSimFS(ctl)
			if err := runCrashWorkload(fsys); err == nil {
				t.Fatalf("crash scheduled at op %d/%d never surfaced", k, total)
			}
			verifyRecovered(t, fsys.harvest(variant), fmt.Sprintf("crash at op %d/%d, %s", k, total, variant))
		}
	}
}

// TestRecoveryIsIdempotent crashes a second time in the middle of
// recovery itself: replaying the log is restartable, so the store must
// still come up intact afterwards.
func TestRecoveryIsIdempotent(t *testing.T) {
	ctl := &crashCtl{crashAt: -1}
	fsys := newSimFS(ctl)
	if err := runCrashWorkload(fsys); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	// Crash just before the final commit's fsync so the reopened store
	// has work to replay, then crash recovery at each of its own ops.
	crashed := func() *simFS {
		ctl := &crashCtl{crashAt: total(fsys) - 2}
		fs2 := newSimFS(ctl)
		if err := runCrashWorkload(fs2); err == nil {
			t.Fatal("late crash never surfaced")
		}
		return fs2.harvest(vKeep)
	}()
	for k := 0; ; k++ {
		ctl := &crashCtl{crashAt: k}
		again := newSimFS(ctl)
		for name, f := range crashed.files {
			img := append([]byte(nil), f.cur...)
			again.files[name] = &simFile{ctl: ctl, stable: img, cur: append([]byte(nil), img...)}
		}
		st, err := store.OpenFS(again, "kb", 64)
		if err == nil {
			st.Close()
			if k == 0 {
				t.Fatal("recovery performed no durability ops; idempotence untested")
			}
			break // recovery needs fewer than k ops; matrix exhausted
		}
		verifyRecovered(t, again.harvest(vDrop), fmt.Sprintf("recovery crash at op %d (drop)", k))
		verifyRecovered(t, again.harvest(vTorn), fmt.Sprintf("recovery crash at op %d (torn)", k))
	}
}

func total(fs *simFS) int { return fs.ctl.ops }

// TestChecksumDetectsByteFlips closes a store cleanly, then flips
// single bytes across every non-header frame of the raw image — data
// start, middle, end, and both trailer words — and requires each flip
// to surface as ErrChecksum (never a panic, never silent) on the next
// read of that page.
func TestChecksumDetectsByteFlips(t *testing.T) {
	fsys := newSimFS(nil)
	if err := runCrashWorkload(fsys); err != nil {
		t.Fatal(err)
	}
	base := fsys.files["kb"].cur
	nFrames := len(base) / store.DiskFrameSize
	if nFrames < 10 {
		t.Fatalf("store image holds only %d frames; workload too small", nFrames)
	}
	offsets := []int{0, 1, store.PageSize / 2, store.PageSize - 1, store.PageSize, store.DiskFrameSize - 1}
	for frame := 1; frame < nFrames; frame++ {
		for _, off := range offsets {
			pos := frame*store.DiskFrameSize + off
			img := append([]byte(nil), base...)
			img[pos] ^= 0x40
			fs2 := newSimFS(nil)
			fs2.files["kb"] = &simFile{stable: img, cur: append([]byte(nil), img...)}
			st, err := store.OpenFS(fs2, "kb", 64)
			if err != nil {
				t.Fatalf("frame %d off %d: reopen: %v", frame, off, err)
			}
			buf := make([]byte, store.PageSize)
			err = st.Pool().Pager().ReadPage(store.PageID(frame), buf)
			st.Close()
			if !errors.Is(err, store.ErrChecksum) {
				t.Fatalf("frame %d off %d: flipped byte read as %v, want ErrChecksum", frame, off, err)
			}
		}
	}
}

// TestCheckCatchesSeededCorruption corrupts a live structure in ways a
// checksum cannot see (the page is internally consistent bytes, just
// wrong) and requires the structural verifiers to object.
func TestCheckCatchesSeededCorruption(t *testing.T) {
	fsys := newSimFS(nil)
	if err := runCrashWorkload(fsys); err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenFS(fsys, "kb", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	db, err := edb.Open(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Check(); err != nil {
		t.Fatalf("pristine store fails check: %v", err)
	}
	// Deleting a clause via the heap alone desynchronizes the indexes
	// from the descriptor count — exactly what Check must notice.
	p := db.Proc(crashProc, crashArity)
	scs, err := db.AllClauses(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteClause(p, scs[1]); err != nil {
		t.Fatal(err)
	}
	p.ClauseCount++ // descriptor now lies about the count
	if err := db.Check(); err == nil {
		t.Fatal("check accepted a descriptor/index mismatch")
	}
	p.ClauseCount--
	if err := db.Check(); err != nil {
		t.Fatalf("restored store fails check: %v", err)
	}
}
