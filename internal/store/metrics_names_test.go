package store

// Golden-file schema test for the store's metric names: the registry a
// pool and pager report into is the monitoring contract (-metrics dumps
// it, dashboards parse it), so name changes must be deliberate. Run with
// -update to regenerate testdata/metrics_names.golden after an
// intentional schema change.

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

var updateMetricsGolden = flag.Bool("update", false, "rewrite golden files")

func TestStoreMetricsSchemaGolden(t *testing.T) {
	// A file-backed store registers the WAL and checksum metrics too;
	// 512 pool pages is the default config and yields 16 shards.
	dir := t.TempDir()
	st, err := Open(filepath.Join(dir, "kb.pages"), 512)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got, want := st.Pool().Shards(), 16; got != want {
		t.Fatalf("default pool has %d shards, want %d (golden assumes the default)", got, want)
	}

	got := strings.Join(st.Obs().Names(), "\n") + "\n"
	golden := filepath.Join("testdata", "metrics_names.golden")
	if *updateMetricsGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("store metric names diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPerShardMetricsCount pins the shape of the per-shard metrics: one
// accesses/hits/evictions counter and one hit_ratio func per shard, and
// the shards gauge reporting the shard count.
func TestPerShardMetricsCount(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPoolObs(NewMemPager(), 64, reg)
	snap := reg.Snapshot()
	if got := snap["buffer_pool.shards"].(int64); got != int64(p.Shards()) {
		t.Errorf("buffer_pool.shards = %d, pool has %d", got, p.Shards())
	}
	for _, kind := range []string{"accesses", "hits", "evictions", "hit_ratio"} {
		n := 0
		for name := range snap {
			if strings.HasPrefix(name, "buffer_pool.shard") && strings.HasSuffix(name, "."+kind) {
				n++
			}
		}
		if n != p.Shards() {
			t.Errorf("%d buffer_pool.shard*.%s metrics, want %d", n, kind, p.Shards())
		}
	}
	if _, ok := snap["buffer_pool.latch_waits"].(uint64); !ok {
		t.Error("buffer_pool.latch_waits missing or not a counter")
	}
	if _, ok := snap["buffer_pool.latch_wait_ns"].(obs.HistogramSnapshot); !ok {
		t.Error("buffer_pool.latch_wait_ns missing or not a histogram")
	}
}
