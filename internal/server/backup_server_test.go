package server

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/store/simfs"
)

// --- BACKUP verb -------------------------------------------------------------

// TestServerBackupVerb drives an online backup over the wire: the
// summary line carries the LSN range, the written image restores to a
// KB answering the same queries, a BACKUP inside a transaction is
// refused (it would self-deadlock on the KB lock), and a failed backup
// leaves no partial file behind.
func TestServerBackupVerb(t *testing.T) {
	dir := t.TempDir()
	arch := filepath.Join(dir, "arch")
	kb, err := core.OpenKB(core.Options{
		StorePath:     filepath.Join(dir, "kb.edb"),
		PoolPages:     64,
		WALArchiveDir: arch,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kb.Close() })
	s, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ConsultExternal("f(1). f(2). f(3)."); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := kb.Flush(); err != nil {
		t.Fatal(err)
	}

	_, addr := newTestServer(t, kb, Config{MaxSessions: 2})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	bkPath := filepath.Join(dir, "kb.backup")
	res, err := cl.Backup(bkPath)
	if err != nil {
		t.Fatalf("BACKUP: %v", err)
	}
	if res.Pages == 0 || res.EndLSN < res.StartLSN {
		t.Fatalf("implausible backup summary: %+v", res)
	}
	// The connection stays usable and the primary keeps serving writes.
	if _, err := cl.Query("assert_external(f(4))"); err != nil {
		t.Fatalf("write after backup: %v", err)
	}

	// The image restores to a KB answering the same queries as the
	// source at the backup's end LSN (f(4) came after it).
	restored := filepath.Join(dir, "restored.edb")
	f, err := os.Open(bkPath)
	if err != nil {
		t.Fatal(err)
	}
	err = store.Restore(restored, f, arch, res.EndLSN)
	f.Close()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	rkb, err := core.OpenKB(core.Options{StorePath: restored, PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer rkb.Close()
	if err := rkb.Check(); err != nil {
		t.Fatalf("restored KB fails check: %v", err)
	}
	rs, err := rkb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if n, err := rs.QueryCount("f(_)"); err != nil || n != 3 {
		t.Fatalf("restored f/1 count = %d (%v), want 3", n, err)
	}

	// Refused inside a transaction: the pinned session holds the KB
	// write lock, so running the backup here would deadlock.
	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	var qe *QueryError
	if _, err := cl.Backup(filepath.Join(dir, "never.backup")); !errors.As(err, &qe) ||
		!strings.Contains(qe.Msg, "backup_in_transaction") {
		t.Fatalf("BACKUP inside txn: %v", err)
	}
	if err := cl.Rollback(); err != nil {
		t.Fatal(err)
	}

	// An unwritable path fails cleanly, leaves no partial file, and the
	// primary stays read-write.
	bad := filepath.Join(dir, "no-such-dir", "kb.backup")
	if _, err := cl.Backup(bad); !errors.As(err, &qe) || !strings.HasPrefix(qe.Msg, "backup ") {
		t.Fatalf("BACKUP to bad path: %v", err)
	}
	if _, err := os.Open(bad); err == nil {
		t.Fatal("failed backup left a file behind")
	}
	if _, err := cl.Query("assert_external(f(5))"); err != nil {
		t.Fatalf("primary degraded after failed backup: %v", err)
	}
}

// --- RW verb (operator recovery from read-only degradation) ------------------

// TestServerRWVerbClearsReadOnly degrades the KB with an injected
// ENOSPC at commit, then lifts the degradation over the wire with RW
// and proves a fresh transaction commits durably again.
func TestServerRWVerbClearsReadOnly(t *testing.T) {
	ctl := simfs.NewCtl(-1)
	kb, err := core.OpenKBFS(simfs.New(ctl), core.Options{StorePath: "kb", PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kb.Close() })
	s, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ConsultExternal("f(1)."); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := kb.Flush(); err != nil {
		t.Fatal(err)
	}

	_, addr := newTestServer(t, kb, Config{MaxSessions: 2})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// RW inside a transaction is refused like BACKUP.
	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	var qe *QueryError
	if err := cl.ClearReadOnly(); !errors.As(err, &qe) || !strings.Contains(qe.Msg, "rw_in_transaction") {
		t.Fatalf("RW inside txn: %v", err)
	}
	if err := cl.Rollback(); err != nil {
		t.Fatal(err)
	}

	// Degrade: the commit's first durability write hits a full disk.
	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query("assert_external(f(2))"); err != nil {
		t.Fatal(err)
	}
	ctl.FailAt(ctl.Ops(), syscall.ENOSPC)
	var ro *ReadOnlyError
	if err := cl.Commit(); !errors.As(err, &ro) {
		t.Fatalf("commit over full disk: %v, want ReadOnlyError", err)
	}
	if err := cl.Begin(); !errors.As(err, &ro) {
		t.Fatalf("TXN on degraded KB: %v, want ReadOnlyError", err)
	}

	// Operator clears the (now healthy) store over the wire; a cleared
	// KB accepts and durably commits transactions again.
	if err := cl.ClearReadOnly(); err != nil {
		t.Fatalf("RW: %v", err)
	}
	if err := cl.Begin(); err != nil {
		t.Fatalf("TXN after RW: %v", err)
	}
	if _, err := cl.Query("assert_external(f(3))"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Commit(); err != nil {
		t.Fatalf("commit after RW: %v", err)
	}
	if res, err := cl.Query("f(X)"); err != nil || res.N != 2 {
		t.Fatalf("post-recovery f/1 count: %v (%v), want 2 (f(1), f(3))", res, err)
	}
	if res, err := cl.Query("f(2)"); err != nil || res.N != 0 {
		t.Fatalf("failed commit's write resurrected: %v (%v)", res, err)
	}
	// A second RW on a healthy store is a no-op success.
	if err := cl.ClearReadOnly(); err != nil {
		t.Fatalf("RW on healthy store: %v", err)
	}
}

// --- graceful shutdown with an open transaction ------------------------------

// TestServerShutdownRollsBackOpenTxn parks a connection holding an open
// transaction, shuts the server down, and verifies the client gets the
// deterministic draining reply (not a hang or a bare close) while the
// server rolls the transaction back before closing its session pool.
func TestServerShutdownRollsBackOpenTxn(t *testing.T) {
	kb := newTestKB(t)
	srv, addr := newTestServer(t, kb, Config{MaxSessions: 1, DrainGrace: 200 * time.Millisecond})

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewScanner(c)
	expect := func(want string) {
		t.Helper()
		if !r.Scan() {
			t.Fatalf("expecting %q: %v", want, r.Err())
		}
		if got := r.Text(); got != want {
			t.Fatalf("reply = %q, want %q", got, want)
		}
	}
	expect(protoGreeting)
	io.WriteString(c, "TXN\n")
	expect(protoTxn)
	io.WriteString(c, "q assert_external(f(998))\n")
	expect("sol true")
	expect("end 1")

	// The connection now sits in a read holding the pool's only session
	// pinned to an open transaction. Drain must not hang on it.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	// Deterministic goodbye: the drain nudge surfaces as "err draining",
	// then the connection closes.
	expect(protoDraining)
	if r.Scan() {
		t.Fatalf("unexpected reply after draining: %q", r.Text())
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung on the open transaction")
	}

	// The transaction was rolled back before the pool closed: the
	// uncommitted write is gone.
	s, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if n, err := s.QueryCount("f(998)"); err != nil || n != 0 {
		t.Fatalf("abandoned txn's write survived drain: %d (%v)", n, err)
	}
}
