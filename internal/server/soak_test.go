package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestMain wraps the package's tests with a goroutine-leak check: every
// test in this package starts servers, floods them with hostile clients
// and drains them, and none of that may leave a goroutine behind.
func TestMain(m *testing.M) {
	base := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		// Give exiting handlers a moment to unwind, then insist the
		// goroutine count returned to (about) the pre-test level.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= base+2 {
				break
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				fmt.Fprintf(os.Stderr,
					"goroutine leak: %d goroutines alive, started with %d\n%s\n",
					runtime.NumGoroutine(), base, buf)
				code = 1
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	os.Exit(code)
}

// TestServerSoak is the acceptance scenario end to end: a population of
// well-behaved clients shares the server with hostile ones — infinite
// enumerations, heap-busting queries, slow readers, garbage senders and
// mid-query disconnectors — and the good clients' queries all complete
// with bounded latency. Run under -race by the CI soak job.
func TestServerSoak(t *testing.T) {
	kb := newTestKB(t)
	srv, addr := newTestServer(t, kb, Config{
		MaxSessions:     4,
		QueueDepth:      8,
		QueueWait:       500 * time.Millisecond,
		ReadTimeout:     10 * time.Second,
		WriteTimeout:    300 * time.Millisecond,
		QueryTimeout:    time.Second,
		Quota:           core.Quota{HeapCells: 1 << 21, Solutions: 500},
		RetryAfter:      25 * time.Millisecond,
		SockWriteBuffer: 4096,
	})

	const (
		goodClients   = 8
		goodQueries   = 15
		hostileRounds = 6
	)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		failures  []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	// Good clients: each query must eventually succeed; overloads are
	// retried after the server's hint.
	for g := 0; g < goodClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for q := 0; q < goodQueries; q++ {
				start := time.Now()
				deadline := start.Add(15 * time.Second)
				for {
					cl, err := DialTimeout(addr, 5*time.Second)
					if err == nil {
						var res *Result
						res, err = cl.Query("f(X)")
						cl.Close()
						if err == nil {
							if res.N != 100 {
								fail("good client %d: %d solutions, want 100", g, res.N)
							}
							mu.Lock()
							latencies = append(latencies, time.Since(start))
							mu.Unlock()
							break
						}
					}
					var oe *OverloadedError
					if errors.As(err, &oe) {
						time.Sleep(oe.RetryAfter)
					} else {
						time.Sleep(25 * time.Millisecond)
					}
					if time.Now().After(deadline) {
						fail("good client %d query %d starved: %v", g, q, err)
						break
					}
				}
			}
		}(g)
	}

	// Hostile clients. Whatever they do, the server may shed, kill or
	// disconnect them — but must never crash or starve the good ones.
	hostile := []func(){
		func() { // infinite enumeration, never reads: slow reader
			rc := dialRaw(t, addr)
			defer rc.close()
			if line, err := rc.recv(); err != nil || line != protoGreeting {
				return
			}
			rc.send("q nat(X)")
			time.Sleep(400 * time.Millisecond)
		},
		func() { // heap-busting query: dies on the quota
			cl, err := DialTimeout(addr, 5*time.Second)
			if err != nil {
				return
			}
			defer cl.Close()
			cl.Query("grow(50000000)")
		},
		func() { // long-running query: dies on the timeout
			cl, err := DialTimeout(addr, 5*time.Second)
			if err != nil {
				return
			}
			defer cl.Close()
			cl.Query(fmt.Sprintf("loop(%d)", int64(1)<<40))
		},
		func() { // protocol garbage
			rc := dialRaw(t, addr)
			defer rc.close()
			if line, err := rc.recv(); err != nil || line != protoGreeting {
				return
			}
			rc.send("%%% not a command \x00")
			rc.recv()
		},
		func() { // disconnect mid-query
			rc := dialRaw(t, addr)
			defer rc.close()
			if line, err := rc.recv(); err != nil || line != protoGreeting {
				return
			}
			rc.send("q f(X)")
			rc.recv()
		},
	}
	for i, h := range hostile {
		wg.Add(1)
		go func(i int, h func()) {
			defer wg.Done()
			for r := 0; r < hostileRounds; r++ {
				h()
			}
		}(i, h)
	}

	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}
	if len(latencies) != goodClients*goodQueries {
		t.Fatalf("%d good queries completed, want %d", len(latencies), goodClients*goodQueries)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	// Generous: the point is boundedness under hostility, not speed.
	if p99 > 10*time.Second {
		t.Fatalf("good-client p99 = %v: hostile clients starved the server", p99)
	}
	t.Logf("good queries: %d, p50=%v p99=%v; sheds=%d quota_kills=%d query_errors=%d",
		len(latencies),
		latencies[len(latencies)/2], p99,
		srv.mAdmissionSheds.Value(), srv.mQuotaKills.Value(), srv.mQueryErrors.Value())

	// Drain under load aftermath: clean shutdown, no stragglers.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("post-soak shutdown: %v", err)
	}
}
