package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wam"
)

// ErrServerClosed is returned by Serve after Shutdown.
var ErrServerClosed = errors.New("server: closed")

// Config tunes the server's admission, deadline and quota policy. The
// zero value gets sensible defaults (see withDefaults).
type Config struct {
	// MaxSessions is the size of the core.Session pool — the number of
	// queries that may execute concurrently. Sessions are created
	// eagerly at New, so a misconfigured knowledge base fails fast.
	MaxSessions int
	// QueueDepth bounds how many admitted queries may wait for a free
	// session; past it, queries are shed immediately with an overloaded
	// reply instead of queueing without bound.
	QueueDepth int
	// QueueWait bounds how long one query may wait in the admission
	// queue before being shed.
	QueueWait time.Duration
	// MaxConns caps concurrently open connections; connections past the
	// cap are shed at accept. 0 derives a cap from MaxSessions and
	// QueueDepth.
	MaxConns int

	// ReadTimeout is the per-command read deadline: an idle connection
	// is closed after this long without a complete line.
	ReadTimeout time.Duration
	// WriteTimeout is the per-reply write deadline: a client that stops
	// reading while solutions stream at it is disconnected once the
	// socket buffers fill and a write blocks this long.
	WriteTimeout time.Duration

	// QueryTimeout bounds each query's wall-clock execution (0 = no
	// bound). Delivered inside the query as a catchable timeout ball.
	QueryTimeout time.Duration
	// Quota caps each query's resource consumption (heap, trail, EDB
	// pages, solutions); see core.Quota. The zero quota is unlimited.
	Quota core.Quota

	// Profile enables the per-predicate 4-port profiler on every pool
	// session; profiles merge into the KB table at query end (see
	// core.Session.EnableProfiling).
	Profile bool
	// SlowThreshold arms each pool session's slow-query diagnostic log:
	// served queries at or above it emit one slow_query record through
	// Tracer and bump the server.slow_queries counter (0 = disarmed).
	SlowThreshold time.Duration
	// Tracer receives the pool sessions' per-query trace events
	// (including slow_query records). One tracer serialises records from
	// all sessions; nil leaves tracing off.
	Tracer *obs.Tracer

	// RetryAfter is the hint attached to overloaded replies.
	RetryAfter time.Duration
	// DrainGrace is how long Shutdown waits after interrupting in-flight
	// queries (and again after force-closing connections) for handlers
	// to finish.
	DrainGrace time.Duration

	// SockWriteBuffer, when positive, shrinks each TCP connection's
	// kernel send buffer so write deadlines engage after a bounded
	// amount of unread output (used by tests to reap slow readers
	// deterministically).
	SockWriteBuffer int

	// SessionInit, when set, runs on every pool session at New — e.g. to
	// consult resident rules each session needs.
	SessionInit func(*core.Session) error

	// Faults, when set, injects deterministic failures (tests only).
	Faults *Faults
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxSessions
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 4*c.MaxSessions + 2*c.QueueDepth + 8
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 2 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = time.Second
	}
	return c
}

// Server serves the line protocol over a pool of sessions. Create with
// New, run with Serve (or Start), stop with Shutdown.
type Server struct {
	kb  *core.KnowledgeBase
	cfg Config

	// sessions is the pool; a session is owned exclusively by whoever
	// received it from the channel, and the channel's synchronisation
	// orders each owner's SetQuota/Query calls after the previous
	// owner's.
	sessions chan *core.Session
	queued   atomic.Int64

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	inflight map[*core.Session]struct{}
	closed   bool

	draining chan struct{}
	wg       sync.WaitGroup

	// shedSem bounds the goroutines writing overloaded replies to
	// connections shed at accept; when it is full the connection is
	// closed without the courtesy reply.
	shedSem chan struct{}

	mAccepted       *obs.Counter
	mAcceptSheds    *obs.Counter
	mAdmissionSheds *obs.Counter
	mQueries        *obs.Counter
	mSolutions      *obs.Counter
	mQueryErrors    *obs.Counter
	mQuotaKills     *obs.Counter
	mSlowQueries    *obs.Counter
	gConns          *obs.Gauge
	gQueue          *obs.Gauge
	gInflight       *obs.Gauge
	gDrainNS        *obs.Gauge
	hLatency        *obs.Histogram
}

// New builds a server over kb, creating the session pool eagerly.
func New(kb *core.KnowledgeBase, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		kb:       kb,
		cfg:      cfg,
		sessions: make(chan *core.Session, cfg.MaxSessions),
		conns:    map[net.Conn]struct{}{},
		inflight: map[*core.Session]struct{}{},
		draining: make(chan struct{}),
		shedSem:  make(chan struct{}, 32),
	}
	reg := kb.Obs()
	s.mAccepted = reg.Counter("server.conns_accepted")
	s.mAcceptSheds = reg.Counter("server.accept_sheds")
	s.mAdmissionSheds = reg.Counter("server.admission_sheds")
	s.mQueries = reg.Counter("server.queries")
	s.mSolutions = reg.Counter("server.solutions")
	s.mQueryErrors = reg.Counter("server.query_errors")
	s.mQuotaKills = reg.Counter("server.quota_kills")
	s.mSlowQueries = reg.Counter("server.slow_queries")
	s.gConns = reg.Gauge("server.active_conns")
	s.gQueue = reg.Gauge("server.queue_depth")
	s.gInflight = reg.Gauge("server.inflight")
	s.gDrainNS = reg.Gauge("server.drain_ns")
	s.hLatency = reg.Histogram("server.query_latency")

	for i := 0; i < cfg.MaxSessions; i++ {
		sess, err := kb.NewSession()
		if err == nil {
			if cfg.Profile {
				sess.EnableProfiling(true)
			}
			sess.SetSlowThreshold(cfg.SlowThreshold)
			if cfg.Tracer != nil {
				sess.SetTracer(cfg.Tracer)
			}
		}
		if err == nil && cfg.SessionInit != nil {
			if ierr := cfg.SessionInit(sess); ierr != nil {
				sess.Close()
				err = ierr
			}
		}
		if err != nil {
			close(s.sessions)
			for prev := range s.sessions {
				prev.Close()
			}
			return nil, fmt.Errorf("server: session %d: %w", i, err)
		}
		s.sessions <- sess
	}
	return s, nil
}

// Start listens on addr and serves in a background goroutine, returning
// the bound address (convenient with addr ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(ln)
	return ln.Addr(), nil
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown (returning
// ErrServerClosed) or a non-temporary accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.draining:
				return ErrServerClosed
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.mAccepted.Inc()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		if len(s.conns) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.shedConn(c)
			continue
		}
		s.conns[c] = struct{}{}
		n := len(s.conns)
		s.mu.Unlock()
		s.gConns.Set(int64(n))
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// shedConn rejects a connection at accept with a best-effort overloaded
// reply, written from a bounded pool of writers so a connect flood
// cannot stall the accept loop or spawn unbounded goroutines.
func (s *Server) shedConn(c net.Conn) {
	s.mAcceptSheds.Inc()
	select {
	case s.shedSem <- struct{}{}:
		go func() {
			defer func() { <-s.shedSem }()
			c.SetWriteDeadline(time.Now().Add(time.Second))
			io.WriteString(c, overloadedLine(s.cfg.RetryAfter)+"\n")
			c.Close()
		}()
	default:
		c.Close()
	}
}

// handleConn runs one connection's command loop.
func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		n := len(s.conns)
		s.mu.Unlock()
		s.gConns.Set(int64(n))
		c.Close()
	}()

	if drop, stall := s.cfg.Faults.onConn(); drop {
		return
	} else if stall > 0 {
		select {
		case <-time.After(stall):
		case <-s.draining:
			return
		}
	}
	if s.cfg.SockWriteBuffer > 0 {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetWriteBuffer(s.cfg.SockWriteBuffer)
		}
	}
	if !s.writeLine(c, protoGreeting) {
		return
	}

	// pinned is the session held by this connection's open transaction,
	// nil outside one. A connection that dies mid-transaction (EOF, read
	// timeout, drain nudge, oversized line) rolls back here, so the
	// session always returns to the pool with no transaction open.
	var pinned *core.Session
	defer func() {
		if pinned != nil {
			_ = pinned.Rollback()
			s.releaseSession(pinned)
		}
	}()

	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 1024), maxLineBytes)
	for {
		// Deadline first, then the drain check: Shutdown closes draining
		// before nudging read deadlines, so every interleaving either
		// sees the closed channel here or scans with an already-expired
		// deadline — an idle connection can never sleep through a drain.
		c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		select {
		case <-s.draining:
			s.writeLine(c, protoDraining)
			return
		default:
		}
		if !sc.Scan() {
			// EOF, oversized line, read timeout, or drain nudge. A drain
			// nudge expires the deadline mid-Scan, so a client parked in
			// a read (e.g. holding a transaction open) would otherwise
			// see a bare close; give it the same deterministic draining
			// reply an idle loop iteration would have sent. The deferred
			// rollback then releases its transaction.
			select {
			case <-s.draining:
				s.writeLine(c, protoDraining)
			default:
			}
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		switch cmd {
		case "ping":
			if !s.writeLine(c, protoPong) {
				return
			}
		case "quit":
			s.writeLine(c, protoBye)
			return
		case "q":
			if !s.runQuery(c, strings.TrimSpace(rest), &pinned) {
				return
			}
		case "TXN", "txn":
			if !s.cmdTxn(c, &pinned) {
				return
			}
		case "COMMIT", "commit":
			if !s.cmdCommit(c, &pinned) {
				return
			}
		case "ROLLBACK", "rollback":
			if !s.cmdRollback(c, &pinned) {
				return
			}
		case "BACKUP", "backup":
			if !s.cmdBackup(c, pinned, strings.TrimSpace(rest)) {
				return
			}
		case "RW", "rw":
			if !s.cmdClearReadOnly(c, pinned) {
				return
			}
		default:
			if !s.writeLine(c, "err unknown command "+sanitizeLine(cmd)) {
				return
			}
		}
	}
}

// cmdTxn opens a transaction: it admits like a query, then pins the
// acquired session to the connection until COMMIT/ROLLBACK (or
// disconnect, which rolls back). The transaction holds the KB write
// lock, so it serializes against every other session; the connection's
// read deadline bounds how long an idle transaction can do that.
func (s *Server) cmdTxn(c net.Conn, pinned **core.Session) bool {
	if *pinned != nil {
		return s.writeLine(c, "err nested_transaction")
	}
	if s.kb.Store().ReadOnly() {
		return s.writeLine(c, protoReadOnly)
	}
	sess, shed := s.acquire()
	if sess == nil {
		return s.writeLine(c, shed)
	}
	if err := sess.Begin(); err != nil {
		s.releaseSession(sess)
		if errors.Is(err, store.ErrReadOnly) {
			return s.writeLine(c, protoReadOnly)
		}
		return s.writeLine(c, "err "+sanitizeLine(err.Error()))
	}
	*pinned = sess
	return s.writeLine(c, protoTxn)
}

// cmdCommit commits the connection's open transaction and returns the
// session to the pool. A failed commit has already rolled back and
// degraded the store to read-only; the reply reflects that.
func (s *Server) cmdCommit(c net.Conn, pinned **core.Session) bool {
	if *pinned == nil {
		return s.writeLine(c, "err no_transaction")
	}
	sess := *pinned
	*pinned = nil
	err := sess.Commit()
	s.releaseSession(sess)
	if err != nil {
		if s.kb.Store().ReadOnly() {
			return s.writeLine(c, protoReadOnly)
		}
		return s.writeLine(c, "err "+sanitizeLine(err.Error()))
	}
	return s.writeLine(c, protoCommit)
}

// cmdRollback rolls back the connection's open transaction.
func (s *Server) cmdRollback(c net.Conn, pinned **core.Session) bool {
	if *pinned == nil {
		return s.writeLine(c, "err no_transaction")
	}
	sess := *pinned
	*pinned = nil
	err := sess.Rollback()
	s.releaseSession(sess)
	if err != nil {
		return s.writeLine(c, "err "+sanitizeLine(err.Error()))
	}
	return s.writeLine(c, protoRollback)
}

// cmdBackup streams an online backup of the knowledge base to a file on
// the server host, with progress lines while the copy runs. Refused
// inside a transaction: the pinned session holds the KB write lock for
// the transaction's whole lifetime and the backup's start/finish edges
// need the read lock, so the connection would deadlock against itself.
// A failed backup removes the partial file and leaves the primary (and
// its read-write status) untouched.
func (s *Server) cmdBackup(c net.Conn, pinned *core.Session, path string) bool {
	if pinned != nil {
		return s.writeLine(c, "err backup_in_transaction")
	}
	if path == "" {
		return s.writeLine(c, "err backup needs a file path")
	}
	f, err := os.Create(path)
	if err != nil {
		return s.writeLine(c, "err backup "+sanitizeLine(err.Error()))
	}
	wok := true
	info, err := s.kb.BackupProgress(f, func(copied, total uint64) error {
		if !s.writeLine(c, fmt.Sprintf("bk %d/%d", copied, total)) {
			wok = false
			return errors.New("client went away")
		}
		return nil
	})
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		if !wok {
			return false
		}
		return s.writeLine(c, "err backup "+sanitizeLine(err.Error()))
	}
	return s.writeLine(c, fmt.Sprintf("ok backup pages=%d start_lsn=%d end_lsn=%d",
		info.Pages, info.StartLSN, info.EndLSN))
}

// cmdClearReadOnly lifts read-only degradation after the operator has
// resolved the fault behind it (see store.ClearReadOnly); a no-op "ok
// rw" when the store is already writable. Refused inside a transaction
// for the same self-deadlock reason as BACKUP.
func (s *Server) cmdClearReadOnly(c net.Conn, pinned *core.Session) bool {
	if pinned != nil {
		return s.writeLine(c, "err rw_in_transaction")
	}
	if err := s.kb.ClearReadOnly(); err != nil {
		return s.writeLine(c, "err rw "+sanitizeLine(err.Error()))
	}
	return s.writeLine(c, protoRW)
}

// releaseSession returns a session to the pool.
func (s *Server) releaseSession(sess *core.Session) {
	s.sessions <- sess // buffered to pool size; never blocks
}

// acquire admits a query: fast path when a session is free, else a
// bounded wait in the admission queue. A nil session means shed (or
// draining); the returned line is the reply to send.
func (s *Server) acquire() (*core.Session, string) {
	select {
	case <-s.draining:
		return nil, protoDraining
	default:
	}
	if s.cfg.Faults.shedQuery() {
		s.mAdmissionSheds.Inc()
		return nil, overloadedLine(s.cfg.RetryAfter)
	}
	select {
	case sess := <-s.sessions:
		return sess, ""
	default:
	}
	q := s.queued.Add(1)
	s.gQueue.Set(q)
	defer func() { s.gQueue.Set(s.queued.Add(-1)) }()
	if q > int64(s.cfg.QueueDepth) {
		s.mAdmissionSheds.Inc()
		return nil, overloadedLine(s.cfg.RetryAfter)
	}
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case sess := <-s.sessions:
		return sess, ""
	case <-t.C:
		s.mAdmissionSheds.Inc()
		return nil, overloadedLine(s.cfg.RetryAfter)
	case <-s.draining:
		return nil, protoDraining
	}
}

// runQuery executes one goal on a pooled session, streaming solutions.
// Inside a transaction the connection's pinned session runs the goal
// (and keeps its pin, unless a query error auto-rolled the transaction
// back); otherwise a session is acquired through admission control, and
// a goal that leaves a transaction open (begin/0) pins it to the
// connection. It returns false when the connection is dead and must be
// closed.
func (s *Server) runQuery(c net.Conn, goal string, pinned **core.Session) bool {
	if goal == "" {
		return s.writeLine(c, "err empty goal")
	}
	sess := *pinned
	if sess == nil {
		var shed string
		sess, shed = s.acquire()
		if sess == nil {
			return s.writeLine(c, shed)
		}
	}
	s.gInflight.Add(1)
	s.mu.Lock()
	s.inflight[sess] = struct{}{}
	s.mu.Unlock()
	s.mQueries.Inc()
	start := time.Now()

	quota := s.cfg.Quota
	if s.cfg.Faults != nil && s.cfg.Faults.ForceQuota {
		// An already-exhausted solution budget: the query dies inside
		// the WAM with resource_error(solutions) on its first Next.
		quota = core.Quota{Solutions: -1}
	}
	sess.SetQuota(quota)
	ctx := context.Background()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	n := 0
	wok := true
	sols, err := sess.QueryCtx(ctx, goal)
	if err == nil {
		for sols.NextCtx(ctx) {
			n++
			if wok = s.writeLine(c, "sol "+renderSolution(sols)); !wok {
				break
			}
		}
		sols.Close()
		err = sols.Err()
	}
	s.mu.Lock()
	delete(s.inflight, sess)
	s.mu.Unlock()
	s.gInflight.Add(-1)
	if *pinned == sess {
		// An error mid-query (timeout, quota, interrupt, disk fault)
		// auto-rolls the transaction back inside the session; the pin
		// then has nothing to protect, so release it.
		if !sess.InTxn() {
			*pinned = nil
			s.releaseSession(sess)
		}
	} else if sess.InTxn() {
		// The goal itself called begin/0 (a plain `q begin.` without the
		// TXN verb). Adopt the session as the connection's pin — exactly
		// as if TXN had opened the transaction — instead of returning it
		// to the pool holding the KB write lock, which would wedge every
		// other session; disconnect rolls it back like any pinned one.
		*pinned = sess
	} else {
		s.releaseSession(sess)
	}
	elapsed := time.Since(start)
	s.hLatency.Observe(elapsed)
	s.mSolutions.Add(uint64(n))
	if s.cfg.SlowThreshold > 0 && elapsed >= s.cfg.SlowThreshold {
		s.mSlowQueries.Inc()
	}

	if !wok {
		return false // write failed or timed out; reap the connection
	}
	if err != nil {
		s.mQueryErrors.Inc()
		if wam.ResourceKind(err) != "" {
			s.mQuotaKills.Inc()
		}
		return s.writeLine(c, "err "+sanitizeLine(err.Error()))
	}
	return s.writeLine(c, fmt.Sprintf("end %d", n))
}

// renderSolution formats the current solution's bindings as one line.
func renderSolution(sols *core.Solutions) string {
	names := sols.Vars()
	if len(names) == 0 {
		return "true"
	}
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(name)
		b.WriteString(" = ")
		if t := sols.Binding(name); t != nil {
			b.WriteString(t.String())
		} else {
			b.WriteString("_")
		}
	}
	return sanitizeLine(b.String())
}

// writeLine sends one reply line under the write deadline.
func (s *Server) writeLine(c net.Conn, line string) bool {
	c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	_, err := io.WriteString(c, line+"\n")
	return err == nil
}

// Shutdown drains the server: stop accepting, tell idle connections and
// queued queries the server is draining, wait for in-flight work until
// ctx expires, then interrupt the in-flight queries (they die with a
// catchable interrupted ball), and finally force-close any connection
// still open. All pool sessions are closed before returning. Safe to
// call more than once; later calls return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()

	close(s.draining)
	if ln != nil {
		ln.Close()
	}
	// Nudge idle readers: an expired read deadline unblocks their Scan.
	// Ordered after close(draining) — see the handleConn loop comment.
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.inflight {
			sess.Interrupt()
		}
		s.mu.Unlock()
		select {
		case <-done:
		case <-time.After(s.cfg.DrainGrace):
			s.mu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.mu.Unlock()
			select {
			case <-done:
			case <-time.After(s.cfg.DrainGrace):
				return errors.New("server: connections survived drain")
			}
		}
	}

	// Every handler has exited, so every session is back in the pool.
	close(s.sessions)
	for sess := range s.sessions {
		sess.Close()
	}
	s.gDrainNS.Set(time.Since(start).Nanoseconds())
	return nil
}
