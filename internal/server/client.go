package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is a line-protocol client (tests, benchtool, command-line
// tooling). One Client drives one connection; it is not safe for
// concurrent use — open one per goroutine.
type Client struct {
	c       net.Conn
	r       *bufio.Scanner
	timeout time.Duration
}

// OverloadedError reports a shed — at connect or at query admission —
// with the server's retry hint.
type OverloadedError struct{ RetryAfter time.Duration }

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("server overloaded, retry after %v", e.RetryAfter)
}

// QueryError is a query-level failure reported by the server (parse
// error, timeout, resource_error, interrupted, ...). The connection
// remains usable.
type QueryError struct{ Msg string }

func (e *QueryError) Error() string { return e.Msg }

// Result is one query's outcome: the rendered solutions, in order.
type Result struct {
	// Solutions holds each solution's bindings as the server rendered
	// them ("X = 1, Y = f(a)", or "true" for a variable-free goal).
	Solutions []string
	// N is the server's solution count from the end line.
	N int
}

// Dial connects with a 30-second I/O timeout.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, 30*time.Second) }

// DialTimeout connects to a server and consumes the greeting; timeout
// bounds the connect and every subsequent read or write. A shed at
// accept surfaces as *OverloadedError.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	cl := &Client{c: c, r: bufio.NewScanner(c), timeout: timeout}
	cl.r.Buffer(make([]byte, 0, 1024), maxLineBytes)
	line, err := cl.readLine()
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("server: reading greeting: %w", err)
	}
	if ra, ok := parseRetryAfter(line); ok {
		c.Close()
		return nil, &OverloadedError{RetryAfter: ra}
	}
	if line != protoGreeting {
		c.Close()
		return nil, fmt.Errorf("server: unexpected greeting %q", line)
	}
	return cl, nil
}

// Query runs one goal and collects every solution. A shed at admission
// surfaces as *OverloadedError (the connection stays usable); a query
// failure as *QueryError.
func (cl *Client) Query(goal string) (*Result, error) {
	if strings.ContainsAny(goal, "\r\n") {
		return nil, fmt.Errorf("server: goal must be a single line")
	}
	if err := cl.writeLine("q " + goal); err != nil {
		return nil, err
	}
	res := &Result{}
	for {
		line, err := cl.readLine()
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasPrefix(line, "sol "):
			res.Solutions = append(res.Solutions, line[len("sol "):])
		case strings.HasPrefix(line, "end "):
			n, err := strconv.Atoi(line[len("end "):])
			if err != nil {
				return nil, fmt.Errorf("server: malformed end line %q", line)
			}
			res.N = n
			return res, nil
		case strings.HasPrefix(line, "err "):
			return nil, &QueryError{Msg: line[len("err "):]}
		default:
			if ra, ok := parseRetryAfter(line); ok {
				return nil, &OverloadedError{RetryAfter: ra}
			}
			return nil, fmt.Errorf("server: unexpected reply %q", line)
		}
	}
}

// Ping checks liveness.
func (cl *Client) Ping() error {
	if err := cl.writeLine("ping"); err != nil {
		return err
	}
	line, err := cl.readLine()
	if err != nil {
		return err
	}
	if line != protoPong {
		return fmt.Errorf("server: unexpected ping reply %q", line)
	}
	return nil
}

// Close sends a best-effort quit and closes the connection.
func (cl *Client) Close() error {
	cl.writeLine("quit")
	return cl.c.Close()
}

func (cl *Client) readLine() (string, error) {
	cl.c.SetReadDeadline(time.Now().Add(cl.timeout))
	if !cl.r.Scan() {
		if err := cl.r.Err(); err != nil {
			return "", err
		}
		return "", io.EOF
	}
	return cl.r.Text(), nil
}

func (cl *Client) writeLine(line string) error {
	cl.c.SetWriteDeadline(time.Now().Add(cl.timeout))
	_, err := io.WriteString(cl.c, line+"\n")
	return err
}
