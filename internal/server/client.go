package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is a line-protocol client (tests, benchtool, command-line
// tooling). One Client drives one connection; it is not safe for
// concurrent use — open one per goroutine.
type Client struct {
	c       net.Conn
	r       *bufio.Scanner
	timeout time.Duration

	// MaxRetries, when positive, makes Query and Begin retry after an
	// overloaded shed, sleeping a capped jittered backoff seeded by the
	// server's retry-after hint between attempts. Read-only rejections
	// and query errors are never retried — they are not transient.
	MaxRetries int

	// sleep is the backoff sleeper, replaceable in tests.
	sleep func(time.Duration)
}

// OverloadedError reports a shed — at connect or at query admission —
// with the server's retry hint.
type OverloadedError struct{ RetryAfter time.Duration }

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("server overloaded, retry after %v", e.RetryAfter)
}

// ReadOnlyError reports a write refused because the knowledge base has
// degraded to read-only after a failed commit. Not transient: the store
// must be reopened by an operator, so clients should not retry.
type ReadOnlyError struct{}

func (e *ReadOnlyError) Error() string { return "server: knowledge base is read-only" }

// QueryError is a query-level failure reported by the server (parse
// error, timeout, resource_error, interrupted, ...). The connection
// remains usable.
type QueryError struct{ Msg string }

func (e *QueryError) Error() string { return e.Msg }

// Result is one query's outcome: the rendered solutions, in order.
type Result struct {
	// Solutions holds each solution's bindings as the server rendered
	// them ("X = 1, Y = f(a)", or "true" for a variable-free goal).
	Solutions []string
	// N is the server's solution count from the end line.
	N int
}

// Dial connects with a 30-second I/O timeout.
func Dial(addr string) (*Client, error) { return DialTimeout(addr, 30*time.Second) }

// DialTimeout connects to a server and consumes the greeting; timeout
// bounds the connect and every subsequent read or write. A shed at
// accept surfaces as *OverloadedError.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	cl := &Client{c: c, r: bufio.NewScanner(c), timeout: timeout}
	cl.r.Buffer(make([]byte, 0, 1024), maxLineBytes)
	line, err := cl.readLine()
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("server: reading greeting: %w", err)
	}
	if ra, ok := parseRetryAfter(line); ok {
		c.Close()
		return nil, &OverloadedError{RetryAfter: ra}
	}
	if line != protoGreeting {
		c.Close()
		return nil, fmt.Errorf("server: unexpected greeting %q", line)
	}
	return cl, nil
}

// Query runs one goal and collects every solution. A shed at admission
// surfaces as *OverloadedError (the connection stays usable); a query
// failure as *QueryError. With MaxRetries set, overloaded sheds are
// retried with capped jittered backoff before the error is returned.
func (cl *Client) Query(goal string) (*Result, error) {
	res, err := cl.queryOnce(goal)
	for attempt := 0; attempt < cl.MaxRetries; attempt++ {
		var ov *OverloadedError
		if !errors.As(err, &ov) {
			break
		}
		cl.backoff(ov.RetryAfter, attempt)
		res, err = cl.queryOnce(goal)
	}
	return res, err
}

func (cl *Client) queryOnce(goal string) (*Result, error) {
	if strings.ContainsAny(goal, "\r\n") {
		return nil, fmt.Errorf("server: goal must be a single line")
	}
	if err := cl.writeLine("q " + goal); err != nil {
		return nil, err
	}
	res := &Result{}
	for {
		line, err := cl.readLine()
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasPrefix(line, "sol "):
			res.Solutions = append(res.Solutions, line[len("sol "):])
		case strings.HasPrefix(line, "end "):
			n, err := strconv.Atoi(line[len("end "):])
			if err != nil {
				return nil, fmt.Errorf("server: malformed end line %q", line)
			}
			res.N = n
			return res, nil
		case strings.HasPrefix(line, "err "):
			return nil, &QueryError{Msg: line[len("err "):]}
		case line == protoReadOnly:
			return nil, &ReadOnlyError{}
		default:
			if ra, ok := parseRetryAfter(line); ok {
				return nil, &OverloadedError{RetryAfter: ra}
			}
			return nil, fmt.Errorf("server: unexpected reply %q", line)
		}
	}
}

// Begin opens a transaction on this connection; until Commit or
// Rollback every Query runs inside it on one pinned server session.
// A shed surfaces as *OverloadedError (retried under MaxRetries); a
// read-only knowledge base as *ReadOnlyError.
func (cl *Client) Begin() error {
	err := cl.verb("TXN", protoTxn)
	for attempt := 0; attempt < cl.MaxRetries; attempt++ {
		var ov *OverloadedError
		if !errors.As(err, &ov) {
			break
		}
		cl.backoff(ov.RetryAfter, attempt)
		err = cl.verb("TXN", protoTxn)
	}
	return err
}

// Commit makes the open transaction durable. A *ReadOnlyError means
// the commit failed against the disk: the transaction has been rolled
// back and the knowledge base now serves reads only. Never retried.
func (cl *Client) Commit() error { return cl.verb("COMMIT", protoCommit) }

// Rollback undoes the open transaction.
func (cl *Client) Rollback() error { return cl.verb("ROLLBACK", protoRollback) }

// verb sends a one-line command and decodes its one-line reply.
func (cl *Client) verb(cmd, want string) error {
	if err := cl.writeLine(cmd); err != nil {
		return err
	}
	line, err := cl.readLine()
	if err != nil {
		return err
	}
	switch {
	case line == want:
		return nil
	case line == protoReadOnly:
		return &ReadOnlyError{}
	case strings.HasPrefix(line, "err "):
		return &QueryError{Msg: line[len("err "):]}
	}
	if ra, ok := parseRetryAfter(line); ok {
		return &OverloadedError{RetryAfter: ra}
	}
	return fmt.Errorf("server: unexpected reply %q", line)
}

// backoff sleeps before retry attempt (0-based): the server's hint (or
// 5ms) doubled per attempt, capped at one second, with ±50% jitter so
// a burst of shed clients does not re-converge on the same instant.
func (cl *Client) backoff(hint time.Duration, attempt int) {
	d := hint
	if d <= 0 {
		d = 5 * time.Millisecond
	}
	for i := 0; i < attempt && d < time.Second; i++ {
		d *= 2
	}
	if d > time.Second {
		d = time.Second
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if cl.sleep != nil {
		cl.sleep(d)
	} else {
		time.Sleep(d)
	}
}

// BackupResult carries the server's backup summary: the image size and
// the LSN range the image plus the WAL archive covers.
type BackupResult struct {
	Pages    uint64
	StartLSN uint64
	EndLSN   uint64
}

// Backup asks the server to stream an online backup to path on the
// server host, consuming "bk" progress lines until the summary arrives.
// Failures surface as *QueryError; the server has already removed the
// partial file.
func (cl *Client) Backup(path string) (*BackupResult, error) {
	if err := cl.writeLine("BACKUP " + path); err != nil {
		return nil, err
	}
	for {
		line, err := cl.readLine()
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasPrefix(line, "bk "):
			continue
		case strings.HasPrefix(line, "ok backup "):
			res := &BackupResult{}
			if _, err := fmt.Sscanf(line, "ok backup pages=%d start_lsn=%d end_lsn=%d",
				&res.Pages, &res.StartLSN, &res.EndLSN); err != nil {
				return nil, fmt.Errorf("server: malformed backup summary %q", line)
			}
			return res, nil
		case strings.HasPrefix(line, "err "):
			return nil, &QueryError{Msg: line[len("err "):]}
		default:
			return nil, fmt.Errorf("server: unexpected reply %q", line)
		}
	}
}

// ClearReadOnly asks the server to lift read-only degradation after the
// operator has resolved the underlying fault. A *QueryError means the
// store is still faulty (or a transaction is open on this connection).
func (cl *Client) ClearReadOnly() error { return cl.verb("RW", protoRW) }

// Ping checks liveness.
func (cl *Client) Ping() error {
	if err := cl.writeLine("ping"); err != nil {
		return err
	}
	line, err := cl.readLine()
	if err != nil {
		return err
	}
	if line != protoPong {
		return fmt.Errorf("server: unexpected ping reply %q", line)
	}
	return nil
}

// Close sends a best-effort quit and closes the connection.
func (cl *Client) Close() error {
	cl.writeLine("quit")
	return cl.c.Close()
}

func (cl *Client) readLine() (string, error) {
	cl.c.SetReadDeadline(time.Now().Add(cl.timeout))
	if !cl.r.Scan() {
		if err := cl.r.Err(); err != nil {
			return "", err
		}
		return "", io.EOF
	}
	return cl.r.Text(), nil
}

func (cl *Client) writeLine(line string) error {
	cl.c.SetWriteDeadline(time.Now().Add(cl.timeout))
	_, err := io.WriteString(cl.c, line+"\n")
	return err
}
