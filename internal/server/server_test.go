package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/term"
)

// testProgram is stored externally (in the EDB) so every pool session
// reaches it through the dynamic loader, like real served predicates.
//
//   - f/1: 100 facts, the well-behaved workload;
//   - nat/1: infinitely many solutions of growing size — the hostile
//     enumerator used to occupy sessions and fill socket buffers;
//   - loop/1: a long-running deterministic computation;
//   - grow/1: unreclaimable heap pressure (see the core quota tests).
const testProgram = `
	nat(0).
	nat(s(N)) :- nat(N).

	loop(0).
	loop(N) :- N > 0, M is N - 1, loop(M).

	mklist(0, []).
	mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).
	islist([]).
	islist([_|T]) :- islist(T).
	grow(N) :- mklist(N, L), islist(L).
`

func newTestKB(t *testing.T) *core.KnowledgeBase {
	t.Helper()
	kb, err := core.OpenKB(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kb.Close() })
	s, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ConsultExternal(testProgram); err != nil {
		t.Fatalf("store rules: %v", err)
	}
	facts := make([]term.Term, 0, 100)
	for i := 1; i <= 100; i++ {
		facts = append(facts, term.Comp("f", term.Int(int64(i))))
	}
	if err := s.ConsultExternalTerms(facts); err != nil {
		t.Fatalf("store facts: %v", err)
	}
	return kb
}

// newTestServer starts a server on a loopback port and arranges its
// shutdown at test end.
func newTestServer(t *testing.T, kb *core.KnowledgeBase, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(kb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, addr.String()
}

func TestServeBasic(t *testing.T) {
	kb := newTestKB(t)
	_, addr := newTestServer(t, kb, Config{MaxSessions: 2})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	res, err := cl.Query("f(X)")
	if err != nil {
		t.Fatalf("f(X): %v", err)
	}
	if res.N != 100 || len(res.Solutions) != 100 {
		t.Fatalf("f(X): %d solutions (end %d), want 100", len(res.Solutions), res.N)
	}
	if res.Solutions[0] != "X = 1" {
		t.Fatalf("first solution %q, want %q", res.Solutions[0], "X = 1")
	}

	// A variable-free goal answers "true".
	res, err = cl.Query("f(42)")
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1 || res.Solutions[0] != "true" {
		t.Fatalf("f(42) = %+v, want one true", res)
	}

	// A failing goal is a clean zero-solution end, not an error.
	res, err = cl.Query("f(101)")
	if err != nil || res.N != 0 {
		t.Fatalf("f(101) = %+v err=%v, want end 0", res, err)
	}

	// A malformed goal is a query error; the connection stays usable.
	if _, err = cl.Query("f(X"); err == nil {
		t.Fatal("malformed goal did not error")
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("malformed goal error %T, want *QueryError", err)
	}
	if res, err = cl.Query("f(7)"); err != nil || res.N != 1 {
		t.Fatalf("connection unusable after query error: %+v err=%v", res, err)
	}
}

// rawConn is a protocol-level test client that can misbehave: send
// commands without reading replies, go silent, disconnect mid-query.
type rawConn struct {
	t *testing.T
	c net.Conn
	r *bufio.Scanner
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rc := &rawConn{t: t, c: c, r: bufio.NewScanner(c)}
	rc.r.Buffer(make([]byte, 0, 1024), maxLineBytes)
	return rc
}

func (rc *rawConn) send(line string) {
	rc.t.Helper()
	rc.c.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.WriteString(rc.c, line+"\n"); err != nil {
		rc.t.Fatalf("send %q: %v", line, err)
	}
}

func (rc *rawConn) recv() (string, error) {
	rc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if !rc.r.Scan() {
		if err := rc.r.Err(); err != nil {
			return "", err
		}
		return "", io.EOF
	}
	return rc.r.Text(), nil
}

func (rc *rawConn) expect(want string) {
	rc.t.Helper()
	got, err := rc.recv()
	if err != nil {
		rc.t.Fatalf("expecting %q: %v", want, err)
	}
	if got != want {
		rc.t.Fatalf("got %q, want %q", got, want)
	}
}

func (rc *rawConn) close() { rc.c.Close() }

// occupySession parks one server session: it starts an infinite
// enumeration and stops reading, so the server blocks writing solutions
// at it until the write deadline fires.
func occupySession(t *testing.T, addr string) *rawConn {
	t.Helper()
	rc := dialRaw(t, addr)
	rc.expect(protoGreeting)
	rc.send("q nat(X)")
	// Wait for the first solution so the session is certainly acquired.
	rc.expect("sol X = 0")
	return rc
}

func TestAdmissionShedding(t *testing.T) {
	kb := newTestKB(t)
	srv, addr := newTestServer(t, kb, Config{
		MaxSessions:     1,
		QueueDepth:      1,
		QueueWait:       300 * time.Millisecond,
		WriteTimeout:    10 * time.Second,
		RetryAfter:      125 * time.Millisecond,
		SockWriteBuffer: 4096,
	})

	hog := occupySession(t, addr)
	defer hog.close()

	// With the only session held, the first contender waits in the
	// queue and is shed after QueueWait; a second contender arriving
	// while the queue is full is shed immediately.
	type outcome struct {
		line    string
		elapsed time.Duration
	}
	results := make(chan outcome, 2)
	runContender := func() {
		rc := dialRaw(t, addr)
		defer rc.close()
		rc.expect(protoGreeting)
		start := time.Now()
		rc.send("q f(X)")
		line, err := rc.recv()
		if err != nil {
			line = "recv error: " + err.Error()
		}
		results <- outcome{line: line, elapsed: time.Since(start)}
	}
	go runContender()
	time.Sleep(100 * time.Millisecond) // let the first enter the queue
	go runContender()

	var got []outcome
	for i := 0; i < 2; i++ {
		select {
		case o := <-results:
			got = append(got, o)
		case <-time.After(5 * time.Second):
			t.Fatal("contender did not finish")
		}
	}
	for _, o := range got {
		ra, ok := parseRetryAfter(o.line)
		if !ok {
			t.Fatalf("contender got %q, want an overloaded reply", o.line)
		}
		if ra != 125*time.Millisecond {
			t.Fatalf("retry-after hint %v, want 125ms", ra)
		}
	}
	if v := srv.mAdmissionSheds.Value(); v < 2 {
		t.Fatalf("admission_sheds = %d, want >= 2", v)
	}

	// Releasing the hog frees the session; a new query succeeds.
	hog.close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		cl, err := Dial(addr)
		if err == nil {
			res, qerr := cl.Query("f(X)")
			cl.Close()
			if qerr == nil && res.N == 100 {
				break
			}
			err = qerr
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover after hog release: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSlowReaderReaped proves the acceptance scenario: a client that
// starts an infinite enumeration and stops reading is disconnected by
// the write deadline, and its session returns to the pool.
func TestSlowReaderReaped(t *testing.T) {
	kb := newTestKB(t)
	srv, addr := newTestServer(t, kb, Config{
		MaxSessions:     1,
		QueueDepth:      1,
		QueueWait:       2 * time.Second,
		WriteTimeout:    300 * time.Millisecond,
		SockWriteBuffer: 4096,
	})

	slow := occupySession(t, addr)
	defer slow.close()
	// Do not read anything further: the socket buffers fill with nat/1
	// solutions and the server's write blocks until WriteTimeout.

	// The single session must come back within a few write-timeouts.
	start := time.Now()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Query("f(X)")
	if err != nil || res.N != 100 {
		t.Fatalf("query after slow reader: %+v err=%v", res, err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("slow reader held the session for %v", d)
	}
	if srv.gInflight.Value() != 0 {
		t.Fatalf("inflight gauge = %d after reap, want 0", srv.gInflight.Value())
	}
}

func TestQuotaOverWire(t *testing.T) {
	kb := newTestKB(t)
	srv, addr := newTestServer(t, kb, Config{
		MaxSessions: 1,
		Quota:       core.Quota{Solutions: 3, HeapCells: 1 << 20},
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The enumeration delivers its three under-cap solutions, then the
	// quota kill arrives as an err line naming the resource.
	res, err := cl.Query("f(X)")
	if err == nil {
		t.Fatalf("f(X) under a 3-solution quota succeeded: %+v", res)
	}
	var qe *QueryError
	if !errors.As(err, &qe) || !strings.Contains(qe.Msg, "resource_error(solutions)") {
		t.Fatalf("quota kill reported as %v, want resource_error(solutions)", err)
	}

	// The same ball is catchable in the query itself: the client can
	// turn exhaustion into a normal answer.
	res, err = cl.Query("catch(grow(10000000), error(resource_error(heap), _), R = quota_hit)")
	if err != nil {
		t.Fatalf("catch over wire: %v", err)
	}
	found := false
	for _, s := range res.Solutions {
		if strings.Contains(s, "quota_hit") {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovery solution missing: %+v", res)
	}

	// The session survived both kills.
	if res, err = cl.Query("f(42)"); err != nil || res.N != 1 {
		t.Fatalf("session poisoned by quota kills: %+v err=%v", res, err)
	}
	// Only the uncaught kill counts: the caught query recovered inside
	// Prolog and finished as a normal success.
	if v := srv.mQuotaKills.Value(); v != 1 {
		t.Fatalf("quota_kills = %d, want 1", v)
	}
}

func TestForceQuotaFault(t *testing.T) {
	kb := newTestKB(t)
	_, addr := newTestServer(t, kb, Config{
		MaxSessions: 1,
		Faults:      &Faults{ForceQuota: true},
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		_, err := cl.Query("f(X)")
		var qe *QueryError
		if !errors.As(err, &qe) || !strings.Contains(qe.Msg, "resource_error(solutions)") {
			t.Fatalf("forced-quota query %d: %v, want resource_error(solutions)", i, err)
		}
	}
}

func TestDropAndStallFaults(t *testing.T) {
	kb := newTestKB(t)
	t.Run("drop", func(t *testing.T) {
		_, addr := newTestServer(t, kb, Config{
			MaxSessions: 1,
			Faults:      &Faults{DropEveryN: 2},
		})
		// Connection 1 survives, connection 2 is dropped pre-greeting.
		cl, err := Dial(addr)
		if err != nil {
			t.Fatalf("conn 1: %v", err)
		}
		cl.Close()
		if _, err := Dial(addr); err == nil {
			t.Fatal("conn 2 was not dropped")
		}
		if cl, err = Dial(addr); err != nil {
			t.Fatalf("conn 3: %v", err)
		}
		cl.Close()
	})
	t.Run("stall", func(t *testing.T) {
		_, addr := newTestServer(t, kb, Config{
			MaxSessions: 1,
			Faults:      &Faults{StallEveryN: 1, Stall: 300 * time.Millisecond},
		})
		start := time.Now()
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		cl.Close()
		if d := time.Since(start); d < 300*time.Millisecond {
			t.Fatalf("stalled connection greeted after %v, want >= 300ms", d)
		}
	})
}

func TestGracefulDrain(t *testing.T) {
	kb := newTestKB(t)
	srv, err := New(kb, Config{MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// One idle client connected; drain must notify and release it.
	idle := dialRaw(t, addr.String())
	defer idle.close()
	idle.expect(protoGreeting)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("idle drain took %v", d)
	}

	// The idle client sees the draining notice or an EOF.
	if line, err := idle.recv(); err == nil && line != protoDraining {
		t.Fatalf("idle client got %q during drain", line)
	}
	// New connections are refused.
	if _, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
		t.Fatal("listener still accepting after drain")
	}
	if srv.gDrainNS.Value() <= 0 {
		t.Fatal("drain_ns gauge not recorded")
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestDrainInterruptsStragglers proves the escalation path: an in-flight
// query that outlives the drain deadline is interrupted (a catchable
// ball), the client is told, and Shutdown still returns cleanly.
func TestDrainInterruptsStragglers(t *testing.T) {
	kb := newTestKB(t)
	srv, err := New(kb, Config{MaxSessions: 1, DrainGrace: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cl, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	type reply struct {
		res *Result
		err error
	}
	replies := make(chan reply, 1)
	go func() {
		res, err := cl.Query(fmt.Sprintf("loop(%d)", int64(1)<<40))
		replies <- reply{res, err}
	}()
	// Give the query time to be admitted and start running.
	waitUntil(t, 5*time.Second, func() bool { return srv.gInflight.Value() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("drain with straggler took %v", d)
	}
	select {
	case r := <-replies:
		var qe *QueryError
		if !errors.As(r.err, &qe) || !strings.Contains(qe.Msg, "interrupted") {
			t.Fatalf("straggler outcome %+v err=%v, want interrupted error", r.res, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("straggler client never got an answer")
	}
}

func TestUnknownCommandAndEmptyGoal(t *testing.T) {
	kb := newTestKB(t)
	_, addr := newTestServer(t, kb, Config{MaxSessions: 1})
	rc := dialRaw(t, addr)
	defer rc.close()
	rc.expect(protoGreeting)
	rc.send("frobnicate now")
	rc.expect("err unknown command frobnicate")
	rc.send("q")
	rc.expect("err empty goal")
	rc.send("ping")
	rc.expect(protoPong)
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
