package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store/simfs"
)

// --- TXN / COMMIT / ROLLBACK over the wire -----------------------------------

func TestServerTransactionVerbs(t *testing.T) {
	kb := newTestKB(t)
	_, addr := newTestServer(t, kb, Config{MaxSessions: 2})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Committed transaction: the write is visible to other connections.
	if err := cl.Begin(); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := cl.Query("assert_external(f(991))"); err != nil {
		t.Fatalf("assert in txn: %v", err)
	}
	// The owner sees its own write mid-transaction.
	if res, err := cl.Query("f(991)"); err != nil || res.N != 1 {
		t.Fatalf("own write invisible in txn: %v (%v)", res, err)
	}
	if err := cl.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if res, err := cl2.Query("f(991)"); err != nil || res.N != 1 {
		t.Fatalf("committed write invisible elsewhere: %v (%v)", res, err)
	}

	// Rolled-back transaction: the write vanishes.
	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query("assert_external(f(992))"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Rollback(); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if res, err := cl.Query("f(992)"); err != nil || res.N != 0 {
		t.Fatalf("rolled-back write survived: %v (%v)", res, err)
	}

	// Error mapping: stray COMMIT/ROLLBACK, nested TXN.
	var qe *QueryError
	if err := cl.Commit(); !errors.As(err, &qe) || !strings.Contains(qe.Msg, "no_transaction") {
		t.Fatalf("stray commit: %v", err)
	}
	if err := cl.Rollback(); !errors.As(err, &qe) || !strings.Contains(qe.Msg, "no_transaction") {
		t.Fatalf("stray rollback: %v", err)
	}
	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Begin(); !errors.As(err, &qe) || !strings.Contains(qe.Msg, "nested_transaction") {
		t.Fatalf("nested begin: %v", err)
	}
	if err := cl.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestServerTxnDisconnectRollsBack kills the connection mid-transaction
// and verifies the server rolls back and returns the pinned session to
// the pool.
func TestServerTxnDisconnectRollsBack(t *testing.T) {
	kb := newTestKB(t)
	_, addr := newTestServer(t, kb, Config{MaxSessions: 1})

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewScanner(c)
	expect := func(want string) {
		t.Helper()
		if !r.Scan() {
			t.Fatalf("expecting %q: %v", want, r.Err())
		}
		if got := r.Text(); got != want {
			t.Fatalf("reply = %q, want %q", got, want)
		}
	}
	expect(protoGreeting)
	io.WriteString(c, "TXN\n")
	expect(protoTxn)
	io.WriteString(c, "q assert_external(f(993))\n")
	expect("sol true")
	expect("end 1")
	c.Close() // vanish mid-transaction

	// A fresh connection's query blocks until the server notices the
	// dead peer, rolls back, and unpins the pool's only session — then
	// sees the pre-transaction state.
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if res, err := cl.Query("f(993)"); err != nil || res.N != 0 {
		t.Fatalf("abandoned txn's write survived: %v (%v)", res, err)
	}
}

// TestServerInlineBeginPinsSession sends a plain `q begin.` — the
// begin/0 builtin without the TXN verb — and verifies the server adopts
// the session as the connection's pin instead of returning it to the
// pool with the KB write lock held (which would wedge every other
// session on its next storage access).
func TestServerInlineBeginPinsSession(t *testing.T) {
	kb := newTestKB(t)
	_, addr := newTestServer(t, kb, Config{MaxSessions: 1})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if res, err := cl.Query("begin"); err != nil || res.N != 1 {
		t.Fatalf("inline begin: %v (%v)", res, err)
	}
	if _, err := cl.Query("assert_external(f(995))"); err != nil {
		t.Fatal(err)
	}
	// The adopted pin interoperates with the COMMIT verb.
	if err := cl.Commit(); err != nil {
		t.Fatalf("commit after inline begin: %v", err)
	}
	// The pool's only session is back and unwedged: a second connection
	// runs queries and sees the committed write.
	cl2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if res, err := cl2.Query("f(995)"); err != nil || res.N != 1 {
		t.Fatalf("query after inline-begin txn: %v (%v)", res, err)
	}

	// Inline commit/0 releases the adopted pin the same way.
	if res, err := cl2.Query("begin"); err != nil || res.N != 1 {
		t.Fatalf("second inline begin: %v (%v)", res, err)
	}
	if _, err := cl2.Query("assert_external(f(996))"); err != nil {
		t.Fatal(err)
	}
	if res, err := cl2.Query("commit"); err != nil || res.N != 1 {
		t.Fatalf("inline commit: %v (%v)", res, err)
	}
	if res, err := cl.Query("f(996)"); err != nil || res.N != 1 {
		t.Fatalf("inline-committed write invisible elsewhere: %v (%v)", res, err)
	}

	// A connection that vanishes after an inline begin rolls back like a
	// TXN-opened one.
	if res, err := cl.Query("begin"); err != nil || res.N != 1 {
		t.Fatalf("third inline begin: %v (%v)", res, err)
	}
	if _, err := cl.Query("assert_external(f(997))"); err != nil {
		t.Fatal(err)
	}
	cl.c.Close() // vanish mid-transaction, bypassing ROLLBACK
	if res, err := cl2.Query("f(997)"); err != nil || res.N != 0 {
		t.Fatalf("abandoned inline txn's write survived: %v (%v)", res, err)
	}
}

// TestServerTxnQueryErrorUnpins checks that a query error inside a
// transaction auto-rolls it back server-side and releases the pin.
func TestServerTxnQueryErrorUnpins(t *testing.T) {
	kb := newTestKB(t)
	_, addr := newTestServer(t, kb, Config{MaxSessions: 1})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query("assert_external(f(994))"); err != nil {
		t.Fatal(err)
	}
	var qe *QueryError
	if _, err := cl.Query("no_such_predicate_xyz(1)"); !errors.As(err, &qe) {
		t.Fatalf("undefined predicate: %v", err)
	}
	// The error aborted the transaction: COMMIT has nothing to commit,
	// and the write is gone.
	if err := cl.Commit(); !errors.As(err, &qe) || !strings.Contains(qe.Msg, "no_transaction") {
		t.Fatalf("commit after auto-rollback: %v", err)
	}
	if res, err := cl.Query("f(994)"); err != nil || res.N != 0 {
		t.Fatalf("auto-rolled-back write survived: %v (%v)", res, err)
	}
}

// --- satellite 2: client retry with capped jittered backoff ------------------

func TestClientRetryBackoff(t *testing.T) {
	kb := newTestKB(t)
	_, addr := newTestServer(t, kb, Config{
		MaxSessions: 1,
		RetryAfter:  40 * time.Millisecond,
		Faults:      &Faults{ShedFirstN: 3},
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var sleeps []time.Duration
	cl.MaxRetries = 5
	cl.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }

	res, err := cl.Query("f(1)")
	if err != nil || res.N != 1 {
		t.Fatalf("query with retries: %v (%v)", res, err)
	}
	if len(sleeps) != 3 {
		t.Fatalf("slept %d times, want 3 (one per shed)", len(sleeps))
	}
	// Backoff doubles from the server hint with ±50% jitter:
	// attempt k sleeps in [hint<<k / 2, hint<<k].
	for k, d := range sleeps {
		lo := (40 * time.Millisecond << k) / 2
		hi := 40 * time.Millisecond << k
		if d < lo || d > hi {
			t.Fatalf("sleep %d = %v, want within [%v, %v]", k, d, lo, hi)
		}
	}
}

func TestClientRetryExhausted(t *testing.T) {
	kb := newTestKB(t)
	_, addr := newTestServer(t, kb, Config{
		MaxSessions: 1,
		Faults:      &Faults{ShedFirstN: 1000},
	})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	slept := 0
	cl.MaxRetries = 2
	cl.sleep = func(time.Duration) { slept++ }

	var ov *OverloadedError
	if _, err := cl.Query("f(1)"); !errors.As(err, &ov) {
		t.Fatalf("exhausted retries: %v, want OverloadedError", err)
	}
	if slept != 2 {
		t.Fatalf("slept %d times, want 2", slept)
	}
	// Without MaxRetries the first shed surfaces immediately.
	cl.MaxRetries = 0
	slept = 0
	if _, err := cl.Query("f(1)"); !errors.As(err, &ov) || slept != 0 {
		t.Fatalf("opt-out retry: %v (slept %d)", err, slept)
	}
}

// --- read-only degradation over the wire -------------------------------------

// TestServerReadOnlyAfterFailedCommit injects ENOSPC on the commit's
// first durability write and verifies the wire-level degraded mode:
// COMMIT answers "readonly", later TXNs are refused the same way,
// reads keep flowing, and in-query writes surface the catchable
// transaction_error(read_only) ball.
func TestServerReadOnlyAfterFailedCommit(t *testing.T) {
	ctl := simfs.NewCtl(-1)
	kb, err := core.OpenKBFS(simfs.New(ctl), core.Options{StorePath: "kb", PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kb.Close() })
	s, err := kb.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ConsultExternal("f(1). f(2)."); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := kb.Flush(); err != nil {
		t.Fatal(err)
	}

	_, addr := newTestServer(t, kb, Config{MaxSessions: 2})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query("assert_external(f(3))"); err != nil {
		t.Fatal(err)
	}
	// No durability ops happen inside the transaction (the WAL commit is
	// deferred), so the next op is the failed commit's first write.
	ctl.FailAt(ctl.Ops(), syscall.ENOSPC)

	var ro *ReadOnlyError
	if err := cl.Commit(); !errors.As(err, &ro) {
		t.Fatalf("commit over full disk: %v, want ReadOnlyError", err)
	}
	// Degraded mode: new transactions refused, reads fine, writes inside
	// queries throw the catchable ball, and the gauge is visible.
	if err := cl.Begin(); !errors.As(err, &ro) {
		t.Fatalf("TXN on read-only KB: %v, want ReadOnlyError", err)
	}
	if res, err := cl.Query("f(X)"); err != nil || res.N != 2 {
		t.Fatalf("read on degraded KB: %v (%v)", res, err)
	}
	var qe *QueryError
	if _, err := cl.Query("assert_external(f(4))"); !errors.As(err, &qe) || !strings.Contains(qe.Msg, "read_only") {
		t.Fatalf("write on degraded KB: %v", err)
	}
	if res, err := cl.Query("catch(assert_external(f(4)), error(transaction_error(read_only), educe), true)"); err != nil || res.N != 1 {
		t.Fatalf("read_only ball not catchable: %v (%v)", res, err)
	}
	if res, err := cl.Query("educe_statistics(store_read_only, N)"); err != nil || res.N != 1 || res.Solutions[0] != "N = 1" {
		t.Fatalf("store_read_only stat: %v (%v)", res, err)
	}
	if res, err := cl.Query("f(3)"); err != nil || res.N != 0 {
		t.Fatalf("failed commit leaked its write: %v (%v)", res, err)
	}
}
