// Package server is the Educe* serving layer: a TCP query server that
// owns a fixed pool of core.Sessions over one shared KnowledgeBase and
// is robust by construction. Robustness here means the failure modes a
// hostile or unlucky client can provoke are all bounded:
//
//   - admission control: a connection cap, a session pool, and a bounded
//     admission queue; past those limits clients are shed with an
//     explicit "overloaded retry-after=<ms>" reply instead of queueing
//     without bound or spawning unbounded goroutines;
//   - per-query resource quotas (core.Quota) enforced inside the WAM, so
//     a runaway query dies with a catchable resource_error ball while
//     its session stays reusable;
//   - per-connection read and write deadlines, so an idle or slow-reading
//     client is reaped instead of pinning a session forever;
//   - graceful drain: Shutdown stops accepting, lets in-flight queries
//     finish until the context expires, then interrupts stragglers and
//     force-closes what remains;
//   - deterministic fault injection (Faults) for testing every one of
//     those degradation paths.
package server

import (
	"fmt"
	"strings"
	"time"
)

// The wire format is a line protocol: one UTF-8 line per message,
// '\n'-terminated, no line longer than maxLineBytes.
//
//	server greeting:  "ok educe/1"                  connection accepted
//	                  "overloaded retry-after=<ms>" shed at accept; the
//	                                                connection closes
//	client commands:  "q <goal>"   run a Prolog goal, stream solutions
//	                  "ping"       liveness probe, answered with "pong"
//	                  "quit"       close the connection ("bye")
//	                  "TXN"        open a transaction: pins a pool session
//	                               to this connection until COMMIT or
//	                               ROLLBACK ("ok txn"); q commands in
//	                               between run on the pinned session and
//	                               see the transaction's own writes
//	                  "COMMIT"     make the open transaction durable
//	                               ("ok commit")
//	                  "ROLLBACK"   undo the open transaction
//	                               ("ok rollback")
//	                  "BACKUP <path>"  stream an online backup of the
//	                               knowledge base to a file on the server
//	                               host; "bk <copied>/<total>" progress
//	                               lines while the copy runs, then
//	                               "ok backup pages=<p> start_lsn=<s>
//	                               end_lsn=<e>" or "err backup <message>"
//	                               (a failed backup removes the partial
//	                               file and leaves the primary untouched);
//	                               refused inside a transaction with
//	                               "err backup_in_transaction"
//	                  "RW"         lift read-only degradation after the
//	                               operator fixed the underlying fault
//	                               ("ok rw", a no-op when already
//	                               writable; "err rw <message>" when the
//	                               store is still faulty); refused inside
//	                               a transaction with
//	                               "err rw_in_transaction"
//	query replies:    "sol <bindings>"  one per solution; bindings are
//	                                    "X = t1, Y = t2" in variable-name
//	                                    order, or "true" for a goal with
//	                                    no variables
//	                  "end <n>"         enumeration done, n solutions sent
//	                  "err <message>"   the query died: parse error,
//	                                    timeout, resource_error(Kind),
//	                                    interrupted, ...
//	                  "overloaded retry-after=<ms>"  shed at admission;
//	                                    the connection stays open and may
//	                                    retry after the given delay
//	                  "err draining"    the server is shutting down; the
//	                                    connection closes
//	txn replies:      "ok txn" / "ok commit" / "ok rollback" on success;
//	                  "readonly"        the knowledge base has degraded to
//	                                    read-only after a failed commit —
//	                                    TXN and COMMIT are refused until
//	                                    the store is reopened (reads and
//	                                    read-only queries keep working);
//	                  "err no_transaction" / "err nested_transaction" /
//	                  "err <message>"   other transaction failures; a
//	                                    failed COMMIT has already rolled
//	                                    back and released the session
const (
	protoGreeting = "ok educe/1"
	protoPong     = "pong"
	protoBye      = "bye"
	protoDraining = "err draining"
	protoTxn      = "ok txn"
	protoCommit   = "ok commit"
	protoRollback = "ok rollback"
	protoReadOnly = "readonly"
	protoRW       = "ok rw"

	// maxLineBytes bounds one protocol line in either direction; a
	// client sending an unbounded line is disconnected, not buffered.
	maxLineBytes = 64 * 1024
)

const overloadedPrefix = "overloaded retry-after="

// overloadedLine renders the shed reply carrying the retry hint.
func overloadedLine(retryAfter time.Duration) string {
	return fmt.Sprintf("%s%d", overloadedPrefix, retryAfter.Milliseconds())
}

// parseRetryAfter recognises an overloaded reply and extracts the hint.
func parseRetryAfter(line string) (time.Duration, bool) {
	rest, ok := strings.CutPrefix(line, overloadedPrefix)
	if !ok {
		return 0, false
	}
	var ms int64
	if _, err := fmt.Sscanf(rest, "%d", &ms); err != nil {
		return 0, true
	}
	return time.Duration(ms) * time.Millisecond, true
}

// sanitizeLine keeps server replies single-line: any embedded newline in
// an error message or a rendered term would desynchronise the protocol.
func sanitizeLine(s string) string {
	if !strings.ContainsAny(s, "\r\n") {
		return s
	}
	s = strings.ReplaceAll(s, "\r", " ")
	return strings.ReplaceAll(s, "\n", " ")
}
