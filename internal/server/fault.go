package server

import (
	"sync/atomic"
	"time"
)

// Faults injects deterministic failures into the serving path, so tests
// can drive every degradation branch without relying on timing or load.
// Counters are atomic: the decisions depend only on connection arrival
// order, not on scheduling.
type Faults struct {
	// DropEveryN silently closes every Nth accepted connection before
	// the greeting (1 drops every connection). The client sees an EOF —
	// the same failure shape as a crashed peer or a dropped link.
	DropEveryN int
	// StallEveryN stalls every Nth accepted connection for Stall before
	// the greeting, simulating a saturated accept path. Drop wins over
	// stall when both match the same connection.
	StallEveryN int
	// Stall is the stall duration for StallEveryN.
	Stall time.Duration
	// ForceQuota overrides every query's quota with an already-exhausted
	// solution budget, so each query deterministically dies with a
	// catchable resource_error(solutions) on its first solution attempt —
	// the real in-WAM kill path, not a shortcut in the server.
	ForceQuota bool
	// ShedFirstN sheds the first N admission attempts with an overloaded
	// reply regardless of pool state, so client retry logic can be
	// tested against a deterministic burst of sheds.
	ShedFirstN int

	conns   atomic.Uint64
	queries atomic.Uint64
}

// onConn makes the per-connection fault decision.
func (f *Faults) onConn() (drop bool, stall time.Duration) {
	if f == nil {
		return false, 0
	}
	n := f.conns.Add(1)
	if f.DropEveryN > 0 && n%uint64(f.DropEveryN) == 0 {
		return true, 0
	}
	if f.StallEveryN > 0 && n%uint64(f.StallEveryN) == 0 {
		return false, f.Stall
	}
	return false, 0
}

// shedQuery makes the per-admission fault decision for ShedFirstN.
func (f *Faults) shedQuery() bool {
	if f == nil || f.ShedFirstN <= 0 {
		return false
	}
	return f.queries.Add(1) <= uint64(f.ShedFirstN)
}
