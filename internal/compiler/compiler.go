// Package compiler translates Prolog clauses into WAM code.
//
// The compiler emits *relocatable* code (paper §3.1): every atom, functor
// and predicate reference in the instruction stream is a symbolic index
// into a per-clause symbol table rather than an internal dictionary
// identifier. The dynamic loader (package loader) resolves these
// associative addresses against a machine's dictionary and splices in the
// control and indexing code that makes a set of clauses runnable. This
// split is what allows compiled code to be stored persistently in the EDB:
// internal dictionary IDs are session-local, symbol tables are not.
//
// Control constructs (;/2, ->/2, \+/1) are compiled by lifting them into
// auxiliary predicates that receive the enclosing clause's cut barrier as
// a hidden first argument, so cut behaves correctly inside disjunctions
// and if-then-else while remaining local inside \+ and call/1.
package compiler

import (
	"fmt"

	"repro/internal/term"
	"repro/internal/wam"
)

// SymKind distinguishes symbol roles in relocatable code.
type SymKind uint8

// Symbol kinds.
const (
	// SymAtom is an atom constant (arity 0 entry in the dictionary).
	SymAtom SymKind = iota
	// SymFunctor names a structure functor.
	SymFunctor
	// SymPred names a call target.
	SymPred
	// SymBuiltin names an inline builtin.
	SymBuiltin
)

// Symbol is one associative address in relocatable code.
type Symbol struct {
	Kind  SymKind
	Name  string
	Arity int
}

// KeyKind classifies a clause's first head argument for indexing
// (paper §3.2.2: indexing on type and value).
type KeyKind uint8

// First-argument key kinds.
const (
	// KeyVar: the first argument is a variable (the clause matches any
	// query) or the predicate has arity 0.
	KeyVar KeyKind = iota
	// KeyCon: an atom constant.
	KeyCon
	// KeyInt: an integer constant.
	KeyInt
	// KeyFlt: a float constant (indexed by type only).
	KeyFlt
	// KeyLis: a list cell.
	KeyLis
	// KeyStr: a structure; Name/Arity identify the functor.
	KeyStr
)

// IndexKey is the first-argument index key of a clause.
type IndexKey struct {
	Kind  KeyKind
	Name  string
	Arity int
	Int   int64
}

// ClauseCode is the relocatable compilation of one clause.
type ClauseCode struct {
	// Pred is the predicate the clause belongs to.
	Pred term.Indicator
	// Key is the first-argument index key.
	Key IndexKey
	// Instrs is the code; all Fn fields are indices into Symbols.
	Instrs []wam.Instr
	// Symbols is the associative address table.
	Symbols []Symbol
	// NVars is the number of distinct variables (diagnostics).
	NVars int
}

// Options configures a Compiler.
type Options struct {
	// Transparent reports whether name/arity is a deterministic builtin
	// that may be emitted inline (OpBuiltin) without ending a chunk.
	// Nondeterministic or control builtins must return false so they are
	// compiled as real calls. When nil, a conservative default set is
	// used.
	Transparent func(name string, arity int) bool
}

// Compiler compiles clauses. One Compiler should be used per program unit
// so auxiliary predicate names stay unique.
type Compiler struct {
	transparent func(string, int) bool
	auxCount    int
}

// New returns a Compiler.
func New(opts Options) *Compiler {
	t := opts.Transparent
	if t == nil {
		t = DefaultTransparent
	}
	return &Compiler{transparent: t}
}

// DefaultTransparent is the default inline-builtin set: deterministic
// builtins that never create choice points and never truncate the heap,
// so they are safe to execute mid-chunk.
func DefaultTransparent(name string, arity int) bool {
	switch fmt.Sprintf("%s/%d", name, arity) {
	case "true/0", "fail/0", "false/0",
		"=/2", "\\=/2",
		"var/1", "nonvar/1", "atom/1", "number/1", "integer/1", "float/1",
		"atomic/1", "compound/1", "callable/1", "is_list/1", "ground/1",
		"==/2", "\\==/2", "@</2", "@>/2", "@=</2", "@>=/2", "compare/3",
		"is/2", "=:=/2", "=\\=/2", "</2", ">/2", "=</2", ">=/2",
		"succ/2", "plus/3",
		"functor/3", "arg/3", "=../2", "copy_term/2",
		"atom_codes/2", "atom_chars/2", "char_code/2", "atom_length/2",
		"number_codes/2", "atom_number/2",
		"write/1", "print/1", "nl/0", "tab/1",
		"sort/2", "msort/2", "keysort/2",
		"$findall_start/1", "$findall_add/2", "$findall_collect/2":
		return true
	}
	return false
}

// CompileClause compiles one clause term (either `Head :- Body` or a fact).
// It returns the clause's code first, followed by the code of any auxiliary
// predicates synthesised for control constructs.
func (c *Compiler) CompileClause(t term.Term) ([]ClauseCode, error) {
	head, body, err := splitClause(t)
	if err != nil {
		return nil, err
	}
	return c.compile(head, body)
}

// CompileQuery compiles `?- Body` into a predicate name/arity over the
// given variables (in order), plus auxiliary clauses.
func (c *Compiler) CompileQuery(name string, vars []*term.Var, body term.Term) ([]ClauseCode, error) {
	args := make([]term.Term, len(vars))
	for i, v := range vars {
		args[i] = v
	}
	return c.compile(term.New(name, args...), body)
}

func splitClause(t term.Term) (head, body term.Term, err error) {
	if cmp, ok := t.(*term.Compound); ok && cmp.Functor == ":-" && len(cmp.Args) == 2 {
		return cmp.Args[0], cmp.Args[1], nil
	}
	switch t.(type) {
	case term.Atom, *term.Compound:
		return t, term.TrueAtom, nil
	}
	return nil, nil, fmt.Errorf("compiler: %s is not a valid clause head", t)
}

func (c *Compiler) freshAux(parent term.Indicator) string {
	c.auxCount++
	return fmt.Sprintf("$aux_%s_%d_%d", parent.Name, parent.Arity, c.auxCount)
}

// goalKind classifies a transformed body goal.
type goalKind uint8

const (
	gCall goalKind = iota
	gCut           // clause-level cut
	gCutTo
	gFail
)

type bgoal struct {
	kind   goalKind
	t      term.Term // callable for gCall
	cutVar *term.Var // barrier for gCutTo
}

// compile compiles one clause after control transformation.
func (c *Compiler) compile(head, body term.Term) ([]ClauseCode, error) {
	pred := head.Indicator()
	if pred.Name == "" {
		return nil, fmt.Errorf("compiler: clause head must be callable, got %s", head)
	}
	ctx := &clauseCtx{
		c:        c,
		pred:     pred,
		symIdx:   map[Symbol]int{},
		levelVar: &term.Var{Name: "$Level"},
	}
	goals, auxTerms, err := ctx.transformBody(body, nil)
	if err != nil {
		return nil, err
	}
	code, err := ctx.emitClause(head, goals)
	if err != nil {
		return nil, err
	}
	out := []ClauseCode{code}
	for _, at := range auxTerms {
		sub, err := c.CompileClause(at)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

// transformBody flattens conjunctions and lifts control constructs into
// auxiliary predicates. barrier is the cut target inside a lifted
// construct (nil at clause level).
func (ctx *clauseCtx) transformBody(body term.Term, barrier *term.Var) ([]bgoal, []term.Term, error) {
	var goals []bgoal
	var aux []term.Term
	var walk func(t term.Term) error
	walk = func(t term.Term) error {
		switch g := t.(type) {
		case *term.Var:
			goals = append(goals, bgoal{kind: gCall, t: term.Comp("call", g)})
			return nil
		case term.Atom:
			switch g {
			case "true":
				return nil
			case "fail", "false":
				goals = append(goals, bgoal{kind: gFail})
				return nil
			case "!":
				if barrier == nil {
					goals = append(goals, bgoal{kind: gCut})
				} else {
					goals = append(goals, bgoal{kind: gCutTo, cutVar: barrier})
				}
				return nil
			}
			goals = append(goals, bgoal{kind: gCall, t: g})
			return nil
		case term.Int, term.Float:
			return fmt.Errorf("compiler: number %s is not a callable goal", g)
		case *term.Compound:
			switch {
			case g.Functor == "," && len(g.Args) == 2:
				if err := walk(g.Args[0]); err != nil {
					return err
				}
				return walk(g.Args[1])
			case g.Functor == "$cut_to" && len(g.Args) == 1:
				v, ok := g.Args[0].(*term.Var)
				if !ok {
					return fmt.Errorf("compiler: malformed $cut_to")
				}
				goals = append(goals, bgoal{kind: gCutTo, cutVar: v})
				return nil
			case g.Functor == ";" && len(g.Args) == 2:
				gs, as, err := ctx.liftDisjunction(g, barrier)
				if err != nil {
					return err
				}
				goals = append(goals, gs)
				aux = append(aux, as...)
				return nil
			case g.Functor == "->" && len(g.Args) == 2:
				ite := term.Comp(";", g, term.Atom("fail"))
				gs, as, err := ctx.liftDisjunction(ite, barrier)
				if err != nil {
					return err
				}
				goals = append(goals, gs)
				aux = append(aux, as...)
				return nil
			case (g.Functor == "\\+" || g.Functor == "not") && len(g.Args) == 1:
				gs, as := ctx.liftNegation(g.Args[0])
				goals = append(goals, gs)
				aux = append(aux, as...)
				return nil
			}
			goals = append(goals, bgoal{kind: gCall, t: g})
			return nil
		}
		return fmt.Errorf("compiler: cannot compile goal %v", t)
	}
	if err := walk(body); err != nil {
		return nil, nil, err
	}
	return goals, aux, nil
}

// liftDisjunction compiles (A;B) — where A may be (C->T) — into an
// auxiliary predicate receiving the cut barrier and the construct's
// variables.
func (ctx *clauseCtx) liftDisjunction(d *term.Compound, barrier *term.Var) (bgoal, []term.Term, error) {
	bar := barrier
	if bar == nil {
		bar = ctx.levelVar
		ctx.needLevel = true
	}
	vars := term.Variables(d)
	name := ctx.c.freshAux(ctx.pred)
	headArgs := make([]term.Term, 0, len(vars)+1)
	headArgs = append(headArgs, bar)
	for _, v := range vars {
		if v != bar {
			headArgs = append(headArgs, v)
		}
	}
	head := term.New(name, headArgs...)

	a, b := d.Args[0], d.Args[1]
	var clauses []term.Term
	if ite, ok := a.(*term.Compound); ok && ite.Functor == "->" && len(ite.Args) == 2 {
		cond, then := ite.Args[0], ite.Args[1]
		c1 := term.Comp(":-", head, conj(cond, term.Atom("!"), replaceCut(then, bar)))
		c2 := term.Comp(":-", head, replaceCut(b, bar))
		clauses = []term.Term{c1, c2}
	} else {
		c1 := term.Comp(":-", head, replaceCut(a, bar))
		c2 := term.Comp(":-", head, replaceCut(b, bar))
		clauses = []term.Term{c1, c2}
	}
	return bgoal{kind: gCall, t: head}, clauses, nil
}

// liftNegation compiles \+ G into an auxiliary predicate with a local cut.
func (ctx *clauseCtx) liftNegation(g term.Term) (bgoal, []term.Term) {
	vars := term.Variables(g)
	name := ctx.c.freshAux(ctx.pred)
	args := make([]term.Term, len(vars))
	for i, v := range vars {
		args[i] = v
	}
	head := term.New(name, args...)
	c1 := term.Comp(":-", head, conj(g, term.Atom("!"), term.Atom("fail")))
	var c2 term.Term
	if len(args) == 0 {
		c2 = head
	} else {
		fresh := make([]term.Term, len(args))
		for i := range fresh {
			fresh[i] = &term.Var{Name: fmt.Sprintf("_N%d", i)}
		}
		c2 = term.New(name, fresh...)
	}
	return bgoal{kind: gCall, t: head}, []term.Term{c1, c2}
}

func conj(gs ...term.Term) term.Term {
	t := gs[len(gs)-1]
	for i := len(gs) - 2; i >= 0; i-- {
		t = term.Comp(",", gs[i], t)
	}
	return t
}

// replaceCut substitutes '!' with '$cut_to'(bar) in t, without descending
// into constructs where cut is local: \+/1, not/1, call/N, and the
// condition of ->/2.
func replaceCut(t term.Term, bar *term.Var) term.Term {
	switch g := t.(type) {
	case term.Atom:
		if g == "!" {
			return term.Comp("$cut_to", bar)
		}
		return g
	case *term.Compound:
		switch {
		case g.Functor == "," && len(g.Args) == 2:
			return term.Comp(",", replaceCut(g.Args[0], bar), replaceCut(g.Args[1], bar))
		case g.Functor == ";" && len(g.Args) == 2:
			return term.Comp(";", replaceCut(g.Args[0], bar), replaceCut(g.Args[1], bar))
		case g.Functor == "->" && len(g.Args) == 2:
			// Cut is local inside the condition.
			return term.Comp("->", g.Args[0], replaceCut(g.Args[1], bar))
		}
		return g
	default:
		return t
	}
}
