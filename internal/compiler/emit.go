package compiler

import (
	"fmt"

	"repro/internal/dict"
	"repro/internal/term"
	"repro/internal/wam"
)

// symID casts a symbol index into the instruction Fn field. Relocatable
// code stores symbol indices where linked code stores dictionary IDs.
func symID(i int32) dict.ID { return dict.ID(i) }

// clauseCtx carries the state of one clause compilation.
type clauseCtx struct {
	c    *Compiler
	pred term.Indicator

	symIdx map[Symbol]int
	syms   []Symbol

	// levelVar is the pseudo-variable holding the clause's cut barrier;
	// it becomes a permanent variable when needLevel is set.
	levelVar  *term.Var
	needLevel bool

	code []wam.Instr

	occ      map[*term.Var]int
	perm     map[*term.Var]int
	temp     map[*term.Var]int
	seen     map[*term.Var]bool
	nextTemp int
	levelY   int
	envSize  int
	env      bool
}

func (ctx *clauseCtx) sym(kind SymKind, name string, arity int) int32 {
	s := Symbol{Kind: kind, Name: name, Arity: arity}
	if i, ok := ctx.symIdx[s]; ok {
		return int32(i)
	}
	i := len(ctx.syms)
	ctx.syms = append(ctx.syms, s)
	ctx.symIdx[s] = i
	return int32(i)
}

func (ctx *clauseCtx) emit(i wam.Instr) { ctx.code = append(ctx.code, i) }

func (ctx *clauseCtx) isTransparent(g bgoal) bool {
	if g.kind != gCall {
		return true // cuts and fail never end a chunk
	}
	pi := g.t.Indicator()
	if pi.Name == "call" {
		return false // call/N must set the cut barrier via a real call
	}
	return ctx.c.transparent(pi.Name, pi.Arity)
}

// headArgs returns the argument list of a clause head.
func headArgs(head term.Term) []term.Term {
	if c, ok := head.(*term.Compound); ok {
		return c.Args
	}
	return nil
}

// goalArgs returns the argument list of a callable goal.
func goalArgs(g term.Term) []term.Term {
	if c, ok := g.(*term.Compound); ok {
		return c.Args
	}
	return nil
}

// emitClause generates code for one transformed clause.
func (ctx *clauseCtx) emitClause(head term.Term, goals []bgoal) (ClauseCode, error) {
	hargs := headArgs(head)

	// Occurrence counting (variables in the head and in call goals).
	ctx.occ = map[*term.Var]int{}
	var countVars func(t term.Term)
	countVars = func(t term.Term) {
		switch x := t.(type) {
		case *term.Var:
			ctx.occ[x]++
		case *term.Compound:
			for _, a := range x.Args {
				countVars(a)
			}
		}
	}
	for _, a := range hargs {
		countVars(a)
	}
	for _, g := range goals {
		if g.kind == gCall {
			countVars(g.t)
		}
		if g.kind == gCutTo {
			ctx.occ[g.cutVar]++
		}
	}

	// Chunk assignment: chunk 0 is the head plus goals up to and
	// including the first real call; each further real call ends a chunk.
	chunkOf := map[*term.Var][2]int{} // min, max chunk
	note := func(v *term.Var, chunk int) {
		if r, ok := chunkOf[v]; ok {
			if chunk < r[0] {
				r[0] = chunk
			}
			if chunk > r[1] {
				r[1] = chunk
			}
			chunkOf[v] = r
		} else {
			chunkOf[v] = [2]int{chunk, chunk}
		}
	}
	noteTerm := func(t term.Term, chunk int) {
		for _, v := range term.Variables(t) {
			note(v, chunk)
		}
	}
	for _, a := range hargs {
		noteTerm(a, 0)
	}
	chunk := 0
	realCalls := 0
	cutAfterCall := false
	lastRealCall := -1
	for gi, g := range goals {
		switch g.kind {
		case gCall:
			noteTerm(g.t, chunk)
			if !ctx.isTransparent(g) {
				realCalls++
				lastRealCall = gi
				chunk++
			}
		case gCut:
			if realCalls > 0 {
				cutAfterCall = true
			}
		case gCutTo:
			note(g.cutVar, chunk)
		}
	}
	if cutAfterCall {
		ctx.needLevel = true
	}
	lco := len(goals) > 0 && lastRealCall == len(goals)-1

	// Permanent variables: occur in more than one chunk.
	ctx.perm = map[*term.Var]int{}
	ctx.temp = map[*term.Var]int{}
	ctx.seen = map[*term.Var]bool{}
	ySlots := 0
	// Deterministic order: walk head then goals, assigning on first sight.
	assignPerm := func(t term.Term) {
		for _, v := range term.Variables(t) {
			if _, ok := ctx.perm[v]; ok {
				continue
			}
			if r := chunkOf[v]; r[0] != r[1] {
				ctx.perm[v] = ySlots
				ySlots++
			}
		}
	}
	for _, a := range hargs {
		assignPerm(a)
	}
	for _, g := range goals {
		if g.kind == gCall {
			assignPerm(g.t)
		}
	}
	if ctx.needLevel {
		ctx.levelY = ySlots
		ySlots++
		ctx.perm[ctx.levelVar] = ctx.levelY
		ctx.seen[ctx.levelVar] = true
	}
	ctx.envSize = ySlots
	ctx.env = ySlots > 0 || realCalls >= 2 || (realCalls == 1 && !lco)

	// Temporary register numbering starts above every argument register
	// used by the head or any goal.
	maxA := len(hargs)
	for _, g := range goals {
		if g.kind == gCall {
			if n := g.t.Indicator().Arity; n > maxA {
				maxA = n
			}
		}
	}
	ctx.nextTemp = maxA

	// --- prologue ---
	if ctx.env {
		ctx.emit(wam.Instr{Op: wam.OpAllocate, N: int32(ctx.envSize)})
	}
	if ctx.needLevel {
		ctx.emit(wam.Instr{Op: wam.OpGetLevel, Reg: int32(ctx.levelY)})
	}

	// --- head ---
	for i, a := range hargs {
		ctx.emitGetArg(a, i)
	}

	// --- body ---
	terminated := false
	for gi, g := range goals {
		switch g.kind {
		case gFail:
			ctx.emit(wam.Instr{Op: wam.OpFail})
			terminated = true
		case gCut:
			if ctx.needLevel {
				ctx.emit(wam.Instr{Op: wam.OpCutY, Reg: int32(ctx.levelY)})
			} else {
				ctx.emit(wam.Instr{Op: wam.OpNeckCut})
			}
		case gCutTo:
			ctx.emitCutTo(g.cutVar)
		case gCall:
			pi := g.t.Indicator()
			args := goalArgs(g.t)
			for i, a := range args {
				ctx.emitPutArg(a, i)
			}
			if ctx.isTransparent(g) {
				ctx.emit(wam.Instr{
					Op: wam.OpBuiltin,
					Fn: symID(ctx.sym(SymBuiltin, pi.Name, pi.Arity)),
					Ar: int32(pi.Arity),
				})
				continue
			}
			if gi == lastRealCall && lco {
				if ctx.env {
					ctx.emit(wam.Instr{Op: wam.OpDeallocate})
				}
				ctx.emit(wam.Instr{
					Op: wam.OpExecute,
					Fn: symID(ctx.sym(SymPred, pi.Name, pi.Arity)),
					Ar: int32(pi.Arity),
				})
				terminated = true
			} else {
				ctx.emit(wam.Instr{
					Op: wam.OpCall,
					Fn: symID(ctx.sym(SymPred, pi.Name, pi.Arity)),
					Ar: int32(pi.Arity),
					N:  int32(ctx.envSize),
				})
			}
		}
		if terminated {
			break
		}
	}
	if !terminated {
		if ctx.env {
			ctx.emit(wam.Instr{Op: wam.OpDeallocate})
		}
		ctx.emit(wam.Instr{Op: wam.OpProceed})
	}

	nvars := len(chunkOf)
	return ClauseCode{
		Pred:    ctx.pred,
		Key:     indexKey(hargs),
		Instrs:  ctx.code,
		Symbols: ctx.syms,
		NVars:   nvars,
	}, nil
}

func (ctx *clauseCtx) emitCutTo(v *term.Var) {
	if y, ok := ctx.perm[v]; ok {
		ctx.emit(wam.Instr{Op: wam.OpCutY, Reg: int32(y)})
		return
	}
	if x, ok := ctx.temp[v]; ok {
		ctx.emit(wam.Instr{Op: wam.OpCutX, Reg: int32(x)})
		return
	}
	// Barrier variable never initialised — compile error guard.
	panic(fmt.Sprintf("compiler: cut barrier %s has no register", v.Name))
}

func (ctx *clauseCtx) newTemp() int {
	t := ctx.nextTemp
	ctx.nextTemp++
	return t
}

// emitGetArg compiles head argument matching for argument register ai.
func (ctx *clauseCtx) emitGetArg(a term.Term, ai int) {
	switch x := a.(type) {
	case *term.Var:
		if ctx.seen[x] {
			ctx.emitGetValue(x, ai)
			return
		}
		if ctx.occ[x] == 1 {
			return // void: matches anything
		}
		ctx.seen[x] = true
		if y, ok := ctx.perm[x]; ok {
			ctx.emit(wam.Instr{Op: wam.OpGetVariableY, Reg: int32(y), Arg: int32(ai)})
		} else {
			home := ctx.newTemp()
			ctx.temp[x] = home
			ctx.emit(wam.Instr{Op: wam.OpGetVariableX, Reg: int32(home), Arg: int32(ai)})
		}
	case term.Atom:
		if x == term.NilAtom {
			ctx.emit(wam.Instr{Op: wam.OpGetNil, Arg: int32(ai)})
		} else {
			ctx.emit(wam.Instr{Op: wam.OpGetConstant, Fn: symID(ctx.sym(SymAtom, string(x), 0)), Arg: int32(ai)})
		}
	case term.Int:
		ctx.emit(wam.Instr{Op: wam.OpGetInteger, Int: int64(x), Arg: int32(ai)})
	case term.Float:
		ctx.emit(wam.Instr{Op: wam.OpGetFloat, Flt: float64(x), Arg: int32(ai)})
	case *term.Compound:
		ctx.emitGetCompound(x, ai)
	}
}

func (ctx *clauseCtx) emitGetValue(v *term.Var, ai int) {
	if y, ok := ctx.perm[v]; ok {
		ctx.emit(wam.Instr{Op: wam.OpGetValueY, Reg: int32(y), Arg: int32(ai)})
	} else {
		ctx.emit(wam.Instr{Op: wam.OpGetValueX, Reg: int32(ctx.temp[v]), Arg: int32(ai)})
	}
}

// emitGetCompound matches a structure or list in head position, breadth
// first: nested compounds are captured in fresh temporaries and processed
// afterwards.
func (ctx *clauseCtx) emitGetCompound(c *term.Compound, reg int) {
	queue := []pendingStruct{{reg: reg, t: c}}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if cc, ok := term.IsCons(p.t); ok {
			ctx.emit(wam.Instr{Op: wam.OpGetList, Arg: int32(p.reg)})
			queue = ctx.emitUnifyArgs(cc.Args, queue)
			continue
		}
		ctx.emit(wam.Instr{
			Op:  wam.OpGetStructure,
			Fn:  symID(ctx.sym(SymFunctor, p.t.Functor, len(p.t.Args))),
			Ar:  int32(len(p.t.Args)),
			Arg: int32(p.reg),
		})
		queue = ctx.emitUnifyArgs(p.t.Args, queue)
	}
}

type pendingStruct struct {
	reg int
	t   *term.Compound
}

// emitUnifyArgs emits unify instructions for the children of a structure
// being matched, queueing nested compounds.
func (ctx *clauseCtx) emitUnifyArgs(args []term.Term, queue []pendingStruct) []pendingStruct {
	voidRun := 0
	flush := func() {
		if voidRun > 0 {
			ctx.emit(wam.Instr{Op: wam.OpUnifyVoid, N: int32(voidRun)})
			voidRun = 0
		}
	}
	for _, a := range args {
		switch x := a.(type) {
		case *term.Var:
			if ctx.seen[x] {
				flush()
				if y, ok := ctx.perm[x]; ok {
					ctx.emit(wam.Instr{Op: wam.OpUnifyValueY, Reg: int32(y)})
				} else {
					ctx.emit(wam.Instr{Op: wam.OpUnifyValueX, Reg: int32(ctx.temp[x])})
				}
				continue
			}
			if ctx.occ[x] == 1 {
				voidRun++
				continue
			}
			flush()
			ctx.seen[x] = true
			if y, ok := ctx.perm[x]; ok {
				ctx.emit(wam.Instr{Op: wam.OpUnifyVariableY, Reg: int32(y)})
			} else {
				home := ctx.newTemp()
				ctx.temp[x] = home
				ctx.emit(wam.Instr{Op: wam.OpUnifyVariableX, Reg: int32(home)})
			}
		case term.Atom:
			flush()
			if x == term.NilAtom {
				ctx.emit(wam.Instr{Op: wam.OpUnifyNil})
			} else {
				ctx.emit(wam.Instr{Op: wam.OpUnifyConstant, Fn: symID(ctx.sym(SymAtom, string(x), 0))})
			}
		case term.Int:
			flush()
			ctx.emit(wam.Instr{Op: wam.OpUnifyInteger, Int: int64(x)})
		case term.Float:
			flush()
			ctx.emit(wam.Instr{Op: wam.OpUnifyFloat, Flt: float64(x)})
		case *term.Compound:
			flush()
			tmp := ctx.newTemp()
			ctx.emit(wam.Instr{Op: wam.OpUnifyVariableX, Reg: int32(tmp)})
			queue = append(queue, pendingStruct{reg: tmp, t: x})
		}
	}
	flush()
	return queue
}

// emitPutArg loads goal argument a into argument register ai.
func (ctx *clauseCtx) emitPutArg(a term.Term, ai int) {
	switch x := a.(type) {
	case *term.Var:
		if !ctx.seen[x] && ctx.occ[x] == 1 {
			tmp := ctx.newTemp()
			ctx.emit(wam.Instr{Op: wam.OpPutVariableX, Reg: int32(tmp), Arg: int32(ai)})
			return
		}
		if ctx.seen[x] {
			if y, ok := ctx.perm[x]; ok {
				ctx.emit(wam.Instr{Op: wam.OpPutValueY, Reg: int32(y), Arg: int32(ai)})
			} else {
				ctx.emit(wam.Instr{Op: wam.OpPutValueX, Reg: int32(ctx.temp[x]), Arg: int32(ai)})
			}
			return
		}
		ctx.seen[x] = true
		if y, ok := ctx.perm[x]; ok {
			ctx.emit(wam.Instr{Op: wam.OpPutVariableY, Reg: int32(y), Arg: int32(ai)})
		} else {
			home := ctx.newTemp()
			ctx.temp[x] = home
			ctx.emit(wam.Instr{Op: wam.OpPutVariableX, Reg: int32(home), Arg: int32(ai)})
		}
	case term.Atom:
		if x == term.NilAtom {
			ctx.emit(wam.Instr{Op: wam.OpPutNil, Arg: int32(ai)})
		} else {
			ctx.emit(wam.Instr{Op: wam.OpPutConstant, Fn: symID(ctx.sym(SymAtom, string(x), 0)), Arg: int32(ai)})
		}
	case term.Int:
		ctx.emit(wam.Instr{Op: wam.OpPutInteger, Int: int64(x), Arg: int32(ai)})
	case term.Float:
		ctx.emit(wam.Instr{Op: wam.OpPutFloat, Flt: float64(x), Arg: int32(ai)})
	case *term.Compound:
		ctx.buildCompound(x, int32(ai))
	}
}

// buildCompound writes a structure bottom-up into register target.
func (ctx *clauseCtx) buildCompound(c *term.Compound, target int32) {
	// Pre-build nested compound children into temporaries.
	childReg := map[int]int{}
	for i, a := range c.Args {
		if cc, ok := a.(*term.Compound); ok {
			tmp := ctx.newTemp()
			ctx.buildCompound(cc, int32(tmp))
			childReg[i] = tmp
		}
	}
	if _, isCons := term.IsCons(c); isCons {
		ctx.emit(wam.Instr{Op: wam.OpPutList, Arg: target})
	} else {
		ctx.emit(wam.Instr{
			Op:  wam.OpPutStructure,
			Fn:  symID(ctx.sym(SymFunctor, c.Functor, len(c.Args))),
			Ar:  int32(len(c.Args)),
			Arg: target,
		})
	}
	for i, a := range c.Args {
		switch x := a.(type) {
		case *term.Var:
			if !ctx.seen[x] && ctx.occ[x] == 1 {
				ctx.emit(wam.Instr{Op: wam.OpUnifyVoid, N: 1})
				continue
			}
			if ctx.seen[x] {
				if y, ok := ctx.perm[x]; ok {
					ctx.emit(wam.Instr{Op: wam.OpUnifyValueY, Reg: int32(y)})
				} else {
					ctx.emit(wam.Instr{Op: wam.OpUnifyValueX, Reg: int32(ctx.temp[x])})
				}
				continue
			}
			ctx.seen[x] = true
			if y, ok := ctx.perm[x]; ok {
				ctx.emit(wam.Instr{Op: wam.OpUnifyVariableY, Reg: int32(y)})
			} else {
				home := ctx.newTemp()
				ctx.temp[x] = home
				ctx.emit(wam.Instr{Op: wam.OpUnifyVariableX, Reg: int32(home)})
			}
		case term.Atom:
			if x == term.NilAtom {
				ctx.emit(wam.Instr{Op: wam.OpUnifyNil})
			} else {
				ctx.emit(wam.Instr{Op: wam.OpUnifyConstant, Fn: symID(ctx.sym(SymAtom, string(x), 0))})
			}
		case term.Int:
			ctx.emit(wam.Instr{Op: wam.OpUnifyInteger, Int: int64(x)})
		case term.Float:
			ctx.emit(wam.Instr{Op: wam.OpUnifyFloat, Flt: float64(x)})
		case *term.Compound:
			ctx.emit(wam.Instr{Op: wam.OpUnifyValueX, Reg: int32(childReg[i])})
		}
	}
}

// indexKey extracts the first-argument index key of a clause head.
func indexKey(hargs []term.Term) IndexKey {
	if len(hargs) == 0 {
		return IndexKey{Kind: KeyVar}
	}
	switch x := hargs[0].(type) {
	case term.Atom:
		return IndexKey{Kind: KeyCon, Name: string(x)}
	case term.Int:
		return IndexKey{Kind: KeyInt, Int: int64(x)}
	case term.Float:
		return IndexKey{Kind: KeyFlt}
	case *term.Compound:
		if _, ok := term.IsCons(x); ok {
			return IndexKey{Kind: KeyLis}
		}
		return IndexKey{Kind: KeyStr, Name: x.Functor, Arity: len(x.Args)}
	default:
		return IndexKey{Kind: KeyVar}
	}
}
