package compiler

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/term"
	"repro/internal/wam"
)

func compile(t *testing.T, src string) []ClauseCode {
	t.Helper()
	tm, _, err := parser.ParseTerm(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c := New(Options{})
	ccs, err := c.CompileClause(tm)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return ccs
}

func ops(cc ClauseCode) []wam.Op {
	out := make([]wam.Op, len(cc.Instrs))
	for i, ins := range cc.Instrs {
		out[i] = ins.Op
	}
	return out
}

func hasOp(cc ClauseCode, op wam.Op) bool {
	for _, ins := range cc.Instrs {
		if ins.Op == op {
			return true
		}
	}
	return false
}

func TestFactCompilation(t *testing.T) {
	ccs := compile(t, "p(a, 1, 2.5, [], X)")
	if len(ccs) != 1 {
		t.Fatalf("fact compiled to %d units", len(ccs))
	}
	cc := ccs[0]
	want := []wam.Op{
		wam.OpGetConstant, wam.OpGetInteger, wam.OpGetFloat, wam.OpGetNil,
		wam.OpProceed, // the singleton variable argument needs no code
	}
	got := ops(cc)
	if len(got) != len(want) {
		t.Fatalf("ops = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestChainRuleUsesExecute(t *testing.T) {
	cc := compile(t, "p(X) :- q(X)")[0]
	if hasOp(cc, wam.OpAllocate) {
		t.Error("chain rule should not allocate an environment")
	}
	if !hasOp(cc, wam.OpExecute) {
		t.Error("last call should compile to execute (LCO)")
	}
	if hasOp(cc, wam.OpCall) {
		t.Error("single-goal body should have no call instruction")
	}
}

func TestConjunctionNeedsEnvironment(t *testing.T) {
	cc := compile(t, "p(X) :- q(X), r(X)")[0]
	if !hasOp(cc, wam.OpAllocate) || !hasOp(cc, wam.OpDeallocate) {
		t.Error("two-call body needs an environment")
	}
	if !hasOp(cc, wam.OpCall) || !hasOp(cc, wam.OpExecute) {
		t.Error("expected call then execute")
	}
	// X spans both chunks: it must live in a Y register.
	if !hasOp(cc, wam.OpGetVariableY) {
		t.Error("shared variable should be permanent")
	}
}

func TestNeckCut(t *testing.T) {
	cc := compile(t, "p(X) :- X > 0, !")[0]
	if !hasOp(cc, wam.OpNeckCut) {
		t.Errorf("leading cut should compile to neck_cut: %v", ops(cc))
	}
	if hasOp(cc, wam.OpGetLevel) {
		t.Error("no saved level needed without preceding calls")
	}
}

func TestDeepCutUsesLevel(t *testing.T) {
	cc := compile(t, "p :- q, !, r")[0]
	if !hasOp(cc, wam.OpGetLevel) || !hasOp(cc, wam.OpCutY) {
		t.Errorf("cut after call needs get_level/cut_y: %v", ops(cc))
	}
}

func TestControlConstructsLiftAuxiliaries(t *testing.T) {
	ccs := compile(t, "p(X) :- q(X), ( X > 0 -> r(X) ; s(X) )")
	if len(ccs) != 3 { // clause + two aux clauses
		t.Fatalf("expected 3 units, got %d", len(ccs))
	}
	aux := ccs[1].Pred
	if aux.Name[0] != '$' {
		t.Fatalf("aux predicate name %q", aux.Name)
	}
	if ccs[1].Pred != ccs[2].Pred {
		t.Fatal("aux clauses belong to different predicates")
	}
	// The barrier argument makes the aux arity >= construct vars + 1.
	if aux.Arity < 2 {
		t.Fatalf("aux arity %d", aux.Arity)
	}
}

func TestNegationAux(t *testing.T) {
	ccs := compile(t, "p(X) :- \\+ q(X)")
	if len(ccs) != 3 {
		t.Fatalf("\\+ should lift 2 aux clauses, got %d units", len(ccs))
	}
}

func TestTransparentBuiltinsInline(t *testing.T) {
	cc := compile(t, "p(X, Y) :- Y is X + 1")[0]
	if !hasOp(cc, wam.OpBuiltin) {
		t.Errorf("is/2 should inline: %v", ops(cc))
	}
	if hasOp(cc, wam.OpCall) || hasOp(cc, wam.OpExecute) {
		t.Error("inline builtin should not be a call")
	}
	// call/N must never inline: it needs a real call for its cut barrier.
	cc = compile(t, "p(G) :- call(G)")[0]
	if hasOp(cc, wam.OpBuiltin) {
		t.Error("call/1 must not inline")
	}
	if !hasOp(cc, wam.OpExecute) {
		t.Error("call/1 should compile to a real (tail) call")
	}
}

func TestIndexKeys(t *testing.T) {
	cases := []struct {
		src  string
		kind KeyKind
	}{
		{"p(a)", KeyCon},
		{"p(42)", KeyInt},
		{"p(1.5)", KeyFlt},
		{"p([1])", KeyLis},
		{"p(f(x))", KeyStr},
		{"p(X) :- q(X)", KeyVar},
		{"p", KeyVar},
	}
	for _, c := range cases {
		cc := compile(t, c.src)[0]
		if cc.Key.Kind != c.kind {
			t.Errorf("%s: key kind %d, want %d", c.src, cc.Key.Kind, c.kind)
		}
	}
	cc := compile(t, "p(f(x, y))")[0]
	if cc.Key.Name != "f" || cc.Key.Arity != 2 {
		t.Errorf("structure key = %+v", cc.Key)
	}
}

func TestSymbolTableRelocatable(t *testing.T) {
	cc := compile(t, "p(foo, bar) :- q(foo)")[0]
	// Every constant/pred reference must be a valid symbol index.
	for _, ins := range cc.Instrs {
		switch ins.Op {
		case wam.OpGetConstant, wam.OpPutConstant, wam.OpUnifyConstant,
			wam.OpGetStructure, wam.OpPutStructure,
			wam.OpCall, wam.OpExecute, wam.OpBuiltin:
			if int(ins.Fn) >= len(cc.Symbols) {
				t.Fatalf("instr %v references symbol %d of %d", ins, ins.Fn, len(cc.Symbols))
			}
		}
	}
	// foo appears twice but is one symbol.
	fooCount := 0
	for _, s := range cc.Symbols {
		if s.Name == "foo" && s.Kind == SymAtom {
			fooCount++
		}
	}
	if fooCount != 1 {
		t.Fatalf("foo interned %d times in symbol table", fooCount)
	}
}

func TestAuxNamesUniquePerCompiler(t *testing.T) {
	c := New(Options{})
	mk := func() string {
		tm, _, _ := parser.ParseTerm("p(X) :- ( X = 1 ; X = 2 )")
		ccs, err := c.CompileClause(tm)
		if err != nil {
			t.Fatal(err)
		}
		return ccs[1].Pred.Name
	}
	if a, b := mk(), mk(); a == b {
		t.Fatalf("aux names collide: %s", a)
	}
}

func TestQueryCompilation(t *testing.T) {
	c := New(Options{})
	x := &term.Var{Name: "X"}
	body, _, _ := parser.ParseTerm("q(Y), Y = X")
	// Rebind X by name so the query var list matches.
	for _, v := range term.Variables(body) {
		if v.Name == "X" {
			x = v
		}
	}
	ccs, err := c.CompileQuery("$query", []*term.Var{x}, body)
	if err != nil {
		t.Fatal(err)
	}
	if ccs[0].Pred.Name != "$query" || ccs[0].Pred.Arity != 1 {
		t.Fatalf("query pred = %v", ccs[0].Pred)
	}
}

func TestNonCallableGoalRejected(t *testing.T) {
	c := New(Options{})
	tm, _, _ := parser.ParseTerm("p :- 42")
	if _, err := c.CompileClause(tm); err == nil {
		t.Fatal("numeric goal accepted")
	}
	tm, _, _ = parser.ParseTerm("42")
	if _, err := c.CompileClause(tm); err == nil {
		t.Fatal("numeric clause head accepted")
	}
}

func TestVoidVariablesCollapse(t *testing.T) {
	cc := compile(t, "p(f(_, _, _))")[0]
	// The three voids inside the structure should merge into one
	// unify_void 3.
	for _, ins := range cc.Instrs {
		if ins.Op == wam.OpUnifyVoid && ins.N == 3 {
			return
		}
	}
	t.Fatalf("expected unify_void 3: %v", ops(cc))
}
