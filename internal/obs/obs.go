// Package obs is the observability substrate of the engine: a
// low-overhead metrics registry (atomic counters, gauges and fixed-bucket
// latency histograms) plus the per-query phase-span machinery that
// reproduces the paper's cost model.
//
// The paper's entire argument is a cost attribution — compiled-rule
// storage moves time out of parse/assert and into load/link + execute
// (§3.1), and pre-unification slashes pages retrieved per query (§4) —
// so every layer of the engine reports into one registry per knowledge
// base, and every query is broken into the phases those sections compare:
// parse, compile, edb_fetch, preunify, link, exec and gc.
//
// Design constraints:
//
//   - metrics must be updatable from many sessions concurrently (atomic
//     operations only, no locks on the hot path);
//   - a disabled tracer must cost nothing beyond a nil check;
//   - the package sits below every other engine package and therefore
//     imports only the standard library.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter (benchmark harness use; concurrent Adds may
// land on either side of the reset).
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Gauge is an instantaneous atomic value (e.g. resident cache entries).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of exponential latency buckets: bucket i
// covers [2^i, 2^(i+1)) nanoseconds, with the last bucket open-ended.
// 2^31 ns ≈ 2.1 s, which comfortably covers page I/O and GC pauses.
const histBuckets = 32

// Histogram is a fixed-bucket latency histogram with power-of-two
// nanosecond buckets. Recording is one atomic add plus two for the
// sum/count — cheap enough for per-page-I/O use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveN(uint64(d.Nanoseconds()))
}

// ObserveN records one raw observation (for non-latency distributions
// such as pages touched per retrieval; bucket i then covers [2^(i-1),
// 2^i) units).
func (h *Histogram) ObserveN(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	b := bits.Len64(v) // 0 for 0, else floor(log2)+1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	SumNS uint64 `json:"sum_ns"`
	// Buckets holds counts per power-of-two bucket; Buckets[i] counts
	// observations with floor(log2(ns))+1 == i (index 0 is exactly 0ns).
	// Trailing empty buckets are trimmed.
	Buckets []uint64 `json:"buckets"`
	// P50/P95/P99 are quantile estimates derived from the buckets by
	// linear interpolation (see Quantile); they can be off by up to one
	// bucket width but need no extra bookkeeping on the record path.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Quantile estimates the q-th quantile (q in [0,1]) from the power-of-two
// buckets, interpolating linearly inside the bucket that holds the
// requested rank. Bucket 0 holds exact zeros; bucket i>0 covers
// [2^(i-1), 2^i).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i == 0 {
				return 0
			}
			lo := float64(uint64(1) << (i - 1))
			frac := (rank - cum) / float64(c)
			return lo + frac*lo // lo + frac*(hi-lo), hi = 2*lo
		}
		cum = next
	}
	if n := len(s.Buckets); n > 1 {
		return float64(uint64(1) << (n - 1)) // upper edge of the last bucket
	}
	return 0
}

// Mean returns the average observation in nanoseconds (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}

// Snapshot returns a consistent-enough view for reporting (individual
// fields are read atomically; the histogram may be concurrently updated).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), SumNS: h.sum.Load()}
	last := -1
	var bs [histBuckets]uint64
	for i := range h.buckets {
		bs[i] = h.buckets[i].Load()
		if bs[i] != 0 {
			last = i
		}
	}
	s.Buckets = append([]uint64{}, bs[:last+1]...)
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Registry is a named collection of metrics. One registry serves one
// knowledge base; every layer (store, edb, dict, wam, core) registers its
// shared counters here, and the ad-hoc Stats structs of those layers are
// views over it. Metric handles are looked up once at construction time
// and updated lock-free afterwards.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	funcs      map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		funcs:      map[string]func() any{},
	}
}

// Counter returns (creating if absent) the named counter. Safe for
// concurrent use; intended to be called once per metric at setup.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if absent) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if absent) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// RegisterFunc registers a callback evaluated at snapshot time (for
// derived values such as ratios, mirroring expvar.Func).
func (r *Registry) RegisterFunc(name string, f func() any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = f
}

// Snapshot returns every metric as a flat name → value map suitable for
// JSON encoding: counters and gauges as numbers, histograms as
// HistogramSnapshot objects, funcs as their returned value.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return map[string]any{}
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms)+len(r.funcs))
	out := make(map[string]any, cap(names))
	for n, c := range r.counters {
		out[n] = c.Value()
		names = append(names, n)
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.histograms {
		out[n] = h.Snapshot()
	}
	fs := make(map[string]func() any, len(r.funcs))
	for n, f := range r.funcs {
		fs[n] = f
	}
	r.mu.Unlock()
	// Funcs run outside the registry lock: they may read other metrics.
	for n, f := range fs {
		out[n] = f()
	}
	return out
}

// ResetTraffic zeroes every counter and histogram (gauges and funcs are
// state, not traffic, and keep their values). This backs the explicit
// KB-level statistics reset.
func (r *Registry) ResetTraffic() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// Names returns every registered metric name, sorted (diagnostics).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms)+len(r.funcs))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Ratio formats hits/total as a fraction in [0,1] (0 when total is 0),
// shared by the hit-ratio RegisterFunc callbacks.
func Ratio(hits, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// String renders a ratio for human-readable stats output.
func RatioString(hits, total uint64) string {
	return fmt.Sprintf("%d/%d (%.1f%%)", hits, total, 100*Ratio(hits, total))
}
