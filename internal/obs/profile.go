package obs

import (
	"sort"
	"sync"
)

// Per-predicate profiling model: the classic 4-port box counters of the
// Byrd box model (call/exit/redo/fail), plus the engine-specific cost
// attribution the paper's §4 tables are built from — cumulative self-time
// and the I/O a predicate causes (EDB clause-set fetches and buffer-pool
// pages touched while loading it).
//
// The WAM layer records into a single-goroutine per-query profile (plain
// fields, no atomics); on query end the session merges that profile into
// the knowledge base's shared ProfileTable, which is the source for
// /debug/profile, educe_profile/2 and the slow-query log's top-N list.

// PredCounters is the cost vector of one predicate indicator.
type PredCounters struct {
	// Calls counts call-port crossings (every transfer of control into
	// the predicate's box, including last-call transfers).
	Calls uint64 `json:"calls"`
	// Exits counts exit-port crossings (deterministic proceeds out of
	// the box; see DESIGN.md §11 for the attribution rules under LCO).
	Exits uint64 `json:"exits"`
	// Redos counts re-entries into the box through backtracking.
	Redos uint64 `json:"redos"`
	// Fails counts failure-port crossings out of the box.
	Fails uint64 `json:"fails"`
	// SelfNS is cumulative self-time in nanoseconds: wall time spent
	// executing instructions owned by this predicate's code blocks,
	// measured between port events.
	SelfNS int64 `json:"self_ns"`
	// EDBFetches counts EDB clause-set retrievals performed to load this
	// predicate (undefined-procedure traps that went to storage).
	EDBFetches uint64 `json:"edb_fetches"`
	// Pages counts buffer-pool accesses those retrievals performed.
	Pages uint64 `json:"pages"`
}

// Add merges o into c.
func (c *PredCounters) Add(o *PredCounters) {
	c.Calls += o.Calls
	c.Exits += o.Exits
	c.Redos += o.Redos
	c.Fails += o.Fails
	c.SelfNS += o.SelfNS
	c.EDBFetches += o.EDBFetches
	c.Pages += o.Pages
}

// PredProfile is one named row of a profile snapshot.
type PredProfile struct {
	// Pred is the predicate indicator, "name/arity".
	Pred string `json:"pred"`
	PredCounters
}

// ProfileTable accumulates per-predicate counters across queries and
// sessions. It is mutex-guarded: sessions merge whole per-query profiles
// into it at query end (a handful of map updates per query), never from
// the dispatch loop, so the lock is far off the hot path.
type ProfileTable struct {
	mu    sync.Mutex
	preds map[string]*PredCounters
}

// NewProfileTable returns an empty table.
func NewProfileTable() *ProfileTable {
	return &ProfileTable{preds: map[string]*PredCounters{}}
}

// Merge folds one predicate's counters into the table.
func (t *ProfileTable) Merge(pred string, c *PredCounters) {
	if t == nil || c == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.preds == nil {
		t.preds = map[string]*PredCounters{}
	}
	p, ok := t.preds[pred]
	if !ok {
		p = &PredCounters{}
		t.preds[pred] = p
	}
	p.Add(c)
}

// MergeAll folds a whole per-query profile into the table under one lock
// acquisition.
func (t *ProfileTable) MergeAll(profile map[string]*PredCounters) {
	if t == nil || len(profile) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.preds == nil {
		t.preds = map[string]*PredCounters{}
	}
	for pred, c := range profile {
		p, ok := t.preds[pred]
		if !ok {
			p = &PredCounters{}
			t.preds[pred] = p
		}
		p.Add(c)
	}
}

// Snapshot returns every predicate's counters, sorted by name.
func (t *ProfileTable) Snapshot() []PredProfile {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PredProfile, 0, len(t.preds))
	for pred, c := range t.preds {
		out = append(out, PredProfile{Pred: pred, PredCounters: *c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pred < out[j].Pred })
	return out
}

// Totals sums every predicate's counters.
func (t *ProfileTable) Totals() PredCounters {
	if t == nil {
		return PredCounters{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum PredCounters
	for _, c := range t.preds {
		sum.Add(c)
	}
	return sum
}

// Reset drops every accumulated counter.
func (t *ProfileTable) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.preds = map[string]*PredCounters{}
}

// TopBySelfTime returns the n predicates with the largest SelfNS, ties
// broken by name for deterministic output.
func TopBySelfTime(rows []PredProfile, n int) []PredProfile {
	out := append([]PredProfile{}, rows...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfNS != out[j].SelfNS {
			return out[i].SelfNS > out[j].SelfNS
		}
		return out[i].Pred < out[j].Pred
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
