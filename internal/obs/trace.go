package obs

import (
	"io"
	"log/slog"
	"sync"
	"time"
)

// TraceEvent names, emitted as the slog message.
const (
	// EventSpan is one phase span of one query.
	EventSpan = "span"
	// EventQuery is the per-query summary (counters + totals).
	EventQuery = "query"
	// EventSlowQuery is the diagnostic record of a query that exceeded
	// the session's slow threshold.
	EventSlowQuery = "slow_query"
)

// QueryEvent describes one completed query for the tracer: its identity,
// the goal, the engine mode, its phase spans and its cost counters.
type QueryEvent struct {
	SessionID uint64
	QueryID   uint64
	Goal      string
	Mode      string // "compiled" or "source"
	Solutions int
	Elapsed   time.Duration
	Stats     QueryStats
}

// Tracer emits structured JSON trace events via slog. A nil *Tracer is a
// valid no-op tracer so the instrumented path is a nil check. One Tracer
// may serve many sessions concurrently.
type Tracer struct {
	mu  sync.Mutex
	log *slog.Logger
}

// lockedWriter serialises concurrent sessions' records onto one stream.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// NewTracer returns a tracer writing one JSON object per line to w.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{}
	h := slog.NewJSONHandler(lockedWriter{mu: &t.mu, w: w}, &slog.HandlerOptions{})
	t.log = slog.New(h)
	return t
}

// NewDeterministicTracer returns a tracer whose records omit the
// timestamp, for golden-file schema tests.
func NewDeterministicTracer(w io.Writer) *Tracer {
	t := &Tracer{}
	h := slog.NewJSONHandler(lockedWriter{mu: &t.mu, w: w}, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	})
	t.log = slog.New(h)
	return t
}

// Enabled reports whether events will be emitted.
func (t *Tracer) Enabled() bool { return t != nil }

// TraceQuery emits the trace records of one completed query: one span
// event per query phase (all seven, zero-duration included, so the cost
// breakdown is always complete) followed by one query summary event.
func (t *Tracer) TraceQuery(ev QueryEvent) {
	if t == nil {
		return
	}
	common := []any{
		slog.Uint64("session_id", ev.SessionID),
		slog.Uint64("query_id", ev.QueryID),
	}
	for _, p := range QueryPhases() {
		args := append([]any{}, common...)
		args = append(args,
			slog.String("phase", p.String()),
			slog.Int64("ns", ev.Stats.Phases[p]),
		)
		t.log.Info(EventSpan, args...)
	}
	args := append([]any{}, common...)
	args = append(args,
		slog.String("goal", ev.Goal),
		slog.String("mode", ev.Mode),
		slog.Int("solutions", ev.Solutions),
		slog.Int64("elapsed_ns", ev.Elapsed.Nanoseconds()),
		slog.Group("counters",
			slog.Uint64("retrievals", ev.Stats.Retrievals),
			slog.Uint64("clauses_scanned", ev.Stats.ClausesScanned),
			slog.Uint64("clauses_passed", ev.Stats.ClausesPassed),
			slog.Uint64("pages_touched", ev.Stats.PagesTouched),
			slog.Uint64("code_cache_hits", ev.Stats.CacheHits),
			slog.Uint64("code_cache_misses", ev.Stats.CacheMisses),
			slog.Uint64("asserts", ev.Stats.Asserts),
		),
		slog.Float64("preunify_selectivity", ev.Stats.Selectivity()),
	)
	t.log.Info(EventQuery, args...)
}

// PathProfile is one access path's selectivity row in a slow-query
// record; only paths that were actually chosen are emitted.
type PathProfile struct {
	Path        string  `json:"path"`
	Choices     uint64  `json:"choices"`
	Scanned     uint64  `json:"scanned"`
	Matched     uint64  `json:"matched"`
	Selectivity float64 `json:"selectivity"`
}

// PathProfiles renders a query's non-zero access-path stats, flagging
// low-selectivity outliers (a path that scanned much more than it
// matched) in deterministic path order.
func PathProfiles(s *QueryStats) []PathProfile {
	if s == nil {
		return nil
	}
	var out []PathProfile
	for i := range s.Paths {
		p := &s.Paths[i]
		if p.Choices == 0 && p.Scanned == 0 {
			continue
		}
		out = append(out, PathProfile{
			Path:        IndexPath(i).String(),
			Choices:     p.Choices,
			Scanned:     p.Scanned,
			Matched:     p.Matched,
			Selectivity: p.Selectivity(),
		})
	}
	return out
}

// SlowQueryEvent is the diagnostic record of one query that exceeded the
// slow threshold: the query summary plus the attribution detail needed to
// diagnose it after the fact — phase breakdown, the top predicates by
// self-time, per-access-path selectivity, and the I/O totals.
type SlowQueryEvent struct {
	QueryEvent
	Threshold time.Duration
	// TopPreds is the query's hottest predicates by self-time (top-N).
	TopPreds []PredProfile
	// Paths is the query's access-path selectivity breakdown.
	Paths []PathProfile
}

// TraceSlowQuery emits one slow_query record. The schema is documented
// in DESIGN.md §11 and pinned by a golden-file test.
func (t *Tracer) TraceSlowQuery(ev SlowQueryEvent) {
	if t == nil {
		return
	}
	phases := make([]any, 0, NumQueryPhases)
	for _, p := range QueryPhases() {
		phases = append(phases, slog.Int64(p.String(), ev.Stats.Phases[p]))
	}
	t.log.Warn(EventSlowQuery,
		slog.Uint64("session_id", ev.SessionID),
		slog.Uint64("query_id", ev.QueryID),
		slog.String("goal", ev.Goal),
		slog.String("mode", ev.Mode),
		slog.Int("solutions", ev.Solutions),
		slog.Int64("elapsed_ns", ev.Elapsed.Nanoseconds()),
		slog.Int64("threshold_ns", ev.Threshold.Nanoseconds()),
		slog.Group("phases", phases...),
		slog.Any("top_preds", ev.TopPreds),
		slog.Any("paths", ev.Paths),
		slog.Group("io",
			slog.Uint64("retrievals", ev.Stats.Retrievals),
			slog.Uint64("clauses_scanned", ev.Stats.ClausesScanned),
			slog.Uint64("clauses_passed", ev.Stats.ClausesPassed),
			slog.Uint64("pages_touched", ev.Stats.PagesTouched),
		),
	)
}
