package obs

import "time"

// Phase is one component of the paper's query cost model. The seven
// query phases (PhaseParse .. PhaseGC) reproduce the §3.1/§5 breakdowns:
// the Educe baseline pays parse+assert per rule use, Educe* pays
// edb_fetch+preunify+link once and executes compiled code. PhaseStore is
// the consult-time EDB write phase; it is tracked alongside the others
// but is not part of a query's span set.
type Phase int

// Phases, in emission order.
const (
	PhaseParse Phase = iota
	PhaseCompile
	PhaseEDBFetch
	PhasePreUnify
	PhaseLink
	PhaseExec
	PhaseGC
	PhaseStore
	// NumQueryPhases counts the phases traced per query.
	NumQueryPhases = int(PhaseStore)
	// NumPhases counts every tracked phase including PhaseStore.
	NumPhases = int(PhaseStore) + 1
)

var phaseNames = [NumPhases]string{
	"parse", "compile", "edb_fetch", "preunify", "link", "exec", "gc", "store",
}

func (p Phase) String() string {
	if p < 0 || int(p) >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// QueryPhases lists the seven per-query phases in emission order.
func QueryPhases() []Phase {
	ps := make([]Phase, NumQueryPhases)
	for i := range ps {
		ps[i] = Phase(i)
	}
	return ps
}

// PhaseTimes accumulates nanoseconds per phase. It is owned by a single
// session (plain fields, no atomics); a nil *PhaseTimes is a valid sink
// that records nothing, so instrumented layers need only a nil check.
type PhaseTimes [NumPhases]int64

// Add charges d to phase p.
func (t *PhaseTimes) Add(p Phase, d time.Duration) {
	if t == nil {
		return
	}
	t[p] += d.Nanoseconds()
}

// Get returns the accumulated time of phase p.
func (t *PhaseTimes) Get(p Phase) time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t[p])
}

// AddTimes merges o into t (query roll-up into session cumulative).
func (t *PhaseTimes) AddTimes(o *PhaseTimes) {
	if t == nil || o == nil {
		return
	}
	for i := range t {
		t[i] += o[i]
	}
}

// Reset zeroes every phase.
func (t *PhaseTimes) Reset() {
	if t == nil {
		return
	}
	*t = PhaseTimes{}
}

// IndexPath identifies one clause/tuple access path — which physical
// index (or lack of one) a retrieval went through. The EDB paths cover
// stored-procedure clause retrieval; the rel paths cover the relational
// layer's scans.
type IndexPath int

// Access paths.
const (
	// PathAttrIndex: EDB secondary attribute index probe (hash index on
	// the first bound argument).
	PathAttrIndex IndexPath = iota
	// PathGrid: EDB superimposed-codeword grid partial match.
	PathGrid
	// PathVarList: EDB variable-records list scan (clauses with an
	// unindexable argument in the probed position, always checked).
	PathVarList
	// PathFullScan: EDB retrieval with no bound argument — every clause
	// of the procedure is a candidate.
	PathFullScan
	// PathRelIndex: relational B-tree index range scan.
	PathRelIndex
	// PathRelSeq: relational sequential heap scan.
	PathRelSeq
	// NumIndexPaths counts the access paths.
	NumIndexPaths = int(PathRelSeq) + 1
)

var pathNames = [NumIndexPaths]string{
	"attr_index", "grid", "var_list", "full_scan", "rel_index", "rel_seq",
}

func (p IndexPath) String() string {
	if p < 0 || int(p) >= NumIndexPaths {
		return "unknown"
	}
	return pathNames[p]
}

// PathStats is the selectivity record of one access path: how often it
// was chosen, how many candidates it scanned, and how many survived.
type PathStats struct {
	// Choices counts retrievals that picked this path.
	Choices uint64 `json:"choices"`
	// Scanned counts candidates the path examined.
	Scanned uint64 `json:"scanned"`
	// Matched counts candidates that passed the path's filters.
	Matched uint64 `json:"matched"`
}

// Selectivity returns matched/scanned (1 when nothing was scanned).
func (p *PathStats) Selectivity() float64 {
	if p == nil || p.Scanned == 0 {
		return 1
	}
	return float64(p.Matched) / float64(p.Scanned)
}

// QueryStats is the per-query (and, accumulated, per-session) view of the
// cost model: phase spans plus the counters the paper's tables report.
// It is single-goroutine state; KB-wide totals live in the Registry.
type QueryStats struct {
	Phases PhaseTimes

	// Paths breaks retrieval work down by access path (EDB entries only;
	// the relational layer reports into the registry, not per query).
	Paths [NumIndexPaths]PathStats

	// Retrievals counts EDB clause-set retrievals issued.
	Retrievals uint64
	// ClausesScanned counts stored clauses examined by pre-unification
	// (grid/index candidates plus variable-list records).
	ClausesScanned uint64
	// ClausesPassed counts clauses that survived pre-unification and
	// were fetched (the paper's candidate clauses).
	ClausesPassed uint64
	// PagesTouched counts buffer-pool accesses made by the retrievals.
	PagesTouched uint64
	// CacheHits/CacheMisses count shared decoded-code cache outcomes.
	CacheHits, CacheMisses uint64
	// Asserts counts baseline-mode assert operations (the per-use cost
	// the paper's §2 itemises for the Educe configuration).
	Asserts uint64
}

// AddQuery merges o into s.
func (s *QueryStats) AddQuery(o *QueryStats) {
	if s == nil || o == nil {
		return
	}
	s.Phases.AddTimes(&o.Phases)
	for i := range s.Paths {
		s.Paths[i].Choices += o.Paths[i].Choices
		s.Paths[i].Scanned += o.Paths[i].Scanned
		s.Paths[i].Matched += o.Paths[i].Matched
	}
	s.Retrievals += o.Retrievals
	s.ClausesScanned += o.ClausesScanned
	s.ClausesPassed += o.ClausesPassed
	s.PagesTouched += o.PagesTouched
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Asserts += o.Asserts
}

// Reset zeroes the stats.
func (s *QueryStats) Reset() {
	if s == nil {
		return
	}
	*s = QueryStats{}
}

// Selectivity returns passed/scanned — the pre-unification selectivity
// the §4 evaluation reports (1 when nothing was scanned).
func (s *QueryStats) Selectivity() float64 {
	if s == nil || s.ClausesScanned == 0 {
		return 1
	}
	return float64(s.ClausesPassed) / float64(s.ClausesScanned)
}
