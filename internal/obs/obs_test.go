package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(7)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(time.Millisecond)
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram must be empty")
	}
	var pt *PhaseTimes
	pt.Add(PhaseExec, time.Second)
	if pt.Get(PhaseExec) != 0 {
		t.Fatal("nil phase times must read 0")
	}
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must be disabled")
	}
	tr.TraceQuery(QueryEvent{}) // must not panic
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	h.ObserveN(0) // bucket 0
	h.ObserveN(1) // bucket 1
	h.ObserveN(2) // bucket 2: [2,4)
	h.ObserveN(3)
	h.ObserveN(1024) // bucket 11
	s := h.Snapshot()
	if s.Count != 5 || s.SumNS != 1030 {
		t.Fatalf("count=%d sum=%d", s.Count, s.SumNS)
	}
	want := []uint64{1, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	for i, w := range want {
		if s.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	if got := s.Mean(); got != 206 {
		t.Fatalf("mean = %v", got)
	}
	h.Reset()
	if h.Snapshot().Count != 0 {
		t.Fatal("reset histogram must be empty")
	}
}

func TestRegistrySnapshotAndReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.hits").Add(3)
	r.Gauge("a.live").Set(9)
	r.Histogram("a.lat").Observe(5 * time.Nanosecond)
	r.RegisterFunc("a.ratio", func() any { return Ratio(1, 4) })

	snap := r.Snapshot()
	if snap["a.hits"] != uint64(3) || snap["a.live"] != int64(9) {
		t.Fatalf("snapshot = %#v", snap)
	}
	if snap["a.ratio"] != 0.25 {
		t.Fatalf("func value = %v", snap["a.ratio"])
	}
	if hs, ok := snap["a.lat"].(HistogramSnapshot); !ok || hs.Count != 1 {
		t.Fatalf("histogram snapshot = %#v", snap["a.lat"])
	}

	// Same name returns the same handle.
	if r.Counter("a.hits") != r.Counter("a.hits") {
		t.Fatal("counter handles must be stable")
	}

	r.ResetTraffic()
	snap = r.Snapshot()
	if snap["a.hits"] != uint64(0) {
		t.Fatal("ResetTraffic must zero counters")
	}
	if snap["a.live"] != int64(9) {
		t.Fatal("ResetTraffic must keep gauges")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for j := 0; j < 1000; j++ {
				c.Inc()
				r.Histogram("lat").ObserveN(uint64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("lat").Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestQueryStatsRollup(t *testing.T) {
	var q, cum QueryStats
	q.Phases.Add(PhaseExec, 5*time.Nanosecond)
	q.Retrievals = 2
	q.ClausesScanned = 10
	q.ClausesPassed = 4
	q.Asserts = 1
	cum.AddQuery(&q)
	cum.AddQuery(&q)
	if cum.Retrievals != 4 || cum.ClausesScanned != 20 || cum.Asserts != 2 {
		t.Fatalf("rollup = %+v", cum)
	}
	if cum.Phases.Get(PhaseExec) != 10*time.Nanosecond {
		t.Fatalf("exec = %v", cum.Phases.Get(PhaseExec))
	}
	if s := cum.Selectivity(); s != 0.4 {
		t.Fatalf("selectivity = %v", s)
	}
	var empty QueryStats
	if empty.Selectivity() != 1 {
		t.Fatal("empty selectivity must be 1")
	}
}

func TestPhaseNames(t *testing.T) {
	want := []string{"parse", "compile", "edb_fetch", "preunify", "link", "exec", "gc"}
	qp := QueryPhases()
	if len(qp) != NumQueryPhases || NumQueryPhases != 7 {
		t.Fatalf("query phases = %v", qp)
	}
	for i, p := range qp {
		if p.String() != want[i] {
			t.Fatalf("phase %d = %q, want %q", i, p.String(), want[i])
		}
	}
	if PhaseStore.String() != "store" {
		t.Fatal("store phase name")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram

	// All-zero observations: every quantile is exactly 0 (bucket 0).
	for i := 0; i < 10; i++ {
		h.ObserveN(0)
	}
	s := h.Snapshot()
	if s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Fatalf("all-zero histogram: want 0 quantiles, got p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}

	// 100 observations in bucket [4,8) and one outlier in [1024,2048):
	// p50 falls in the low bucket, p99+ reaches toward the outlier's.
	h.Reset()
	for i := 0; i < 100; i++ {
		h.ObserveN(5)
	}
	h.ObserveN(1500)
	s = h.Snapshot()
	if s.P50 < 4 || s.P50 >= 8 {
		t.Errorf("p50 = %v, want within [4,8)", s.P50)
	}
	if s.P95 < 4 || s.P95 >= 8 {
		t.Errorf("p95 = %v, want within [4,8)", s.P95)
	}
	if s.Quantile(1.0) < 1024 {
		t.Errorf("max quantile = %v, want >= 1024 (outlier bucket)", s.Quantile(1.0))
	}
	// Quantiles are monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1.0} {
		v := s.Quantile(q)
		if v < prev {
			t.Errorf("Quantile(%v) = %v < Quantile(prev) = %v", q, v, prev)
		}
		prev = v
	}

	// Empty histogram snapshot quantiles are 0.
	var empty Histogram
	if s := empty.Snapshot(); s.P50 != 0 || s.P99 != 0 {
		t.Errorf("empty histogram: want 0 quantiles, got %+v", s)
	}
}

// TestSnapshotCarriesQuantiles pins that registry snapshots expose the
// derived p50/p95/p99 gauges on every histogram (satellite of PR 7:
// /metrics consumers read them without re-deriving from buckets).
func TestSnapshotCarriesQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q.latency")
	for i := 0; i < 8; i++ {
		h.ObserveN(100)
	}
	snap := reg.Snapshot()
	hs, ok := snap["q.latency"].(HistogramSnapshot)
	if !ok {
		t.Fatalf("snapshot histogram has type %T", snap["q.latency"])
	}
	if hs.P50 < 64 || hs.P50 >= 128 {
		t.Errorf("p50 = %v, want within [64,128)", hs.P50)
	}
	b, err := json.Marshal(hs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{`"p50"`, `"p95"`, `"p99"`} {
		if !strings.Contains(string(b), k) {
			t.Errorf("histogram JSON missing %s: %s", k, b)
		}
	}
}
