package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedEvent is a fully deterministic query event for the schema test.
func fixedEvent() QueryEvent {
	ev := QueryEvent{
		SessionID: 3,
		QueryID:   17,
		Goal:      "conn(marienplatz, X)",
		Mode:      "compiled",
		Solutions: 4,
		Elapsed:   1500 * time.Nanosecond,
	}
	for i, p := range QueryPhases() {
		ev.Stats.Phases.Add(p, time.Duration(100*(i+1)))
	}
	ev.Stats.Retrievals = 2
	ev.Stats.ClausesScanned = 40
	ev.Stats.ClausesPassed = 8
	ev.Stats.PagesTouched = 5
	ev.Stats.CacheHits = 1
	ev.Stats.CacheMisses = 1
	return ev
}

// TestTraceGolden pins the JSON trace event schema: one span record per
// query phase followed by one query summary, with stable field names.
// Run with -update to regenerate testdata/trace.golden.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewDeterministicTracer(&buf)
	tr.TraceQuery(fixedEvent())

	golden := filepath.Join("testdata", "trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("trace output diverged from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTraceEventStructure checks the decoded shape: every span names one
// of the seven query phases exactly once, and the summary carries the
// full counter set.
func TestTraceEventStructure(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.TraceQuery(fixedEvent())

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != NumQueryPhases+1 {
		t.Fatalf("got %d records, want %d", len(lines), NumQueryPhases+1)
	}
	seen := map[string]bool{}
	for _, ln := range lines[:NumQueryPhases] {
		var rec struct {
			Msg       string `json:"msg"`
			SessionID uint64 `json:"session_id"`
			QueryID   uint64 `json:"query_id"`
			Phase     string `json:"phase"`
			NS        *int64 `json:"ns"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad JSON %q: %v", ln, err)
		}
		if rec.Msg != EventSpan || rec.SessionID != 3 || rec.QueryID != 17 || rec.NS == nil {
			t.Fatalf("bad span record %q", ln)
		}
		if seen[rec.Phase] {
			t.Fatalf("phase %s emitted twice", rec.Phase)
		}
		seen[rec.Phase] = true
	}
	for _, p := range QueryPhases() {
		if !seen[p.String()] {
			t.Fatalf("missing span for phase %s", p)
		}
	}
	var sum map[string]any
	if err := json.Unmarshal([]byte(lines[NumQueryPhases]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum["msg"] != EventQuery || sum["goal"] != "conn(marienplatz, X)" {
		t.Fatalf("bad summary %v", sum)
	}
	counters, ok := sum["counters"].(map[string]any)
	if !ok {
		t.Fatalf("summary missing counters group: %v", sum)
	}
	for _, k := range []string{"retrievals", "clauses_scanned", "clauses_passed",
		"pages_touched", "code_cache_hits", "code_cache_misses", "asserts"} {
		if _, ok := counters[k]; !ok {
			t.Fatalf("counters missing %q: %v", k, counters)
		}
	}
	if sum["preunify_selectivity"] != 0.2 {
		t.Fatalf("selectivity = %v", sum["preunify_selectivity"])
	}
}

// TestTracerConcurrent exercises the locked writer: records from many
// goroutines must stay line-atomic.
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewDeterministicTracer(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			ev := fixedEvent()
			ev.SessionID = id
			tr.TraceQuery(ev)
		}(uint64(i))
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*(NumQueryPhases+1) {
		t.Fatalf("got %d records, want %d", len(lines), 8*(NumQueryPhases+1))
	}
	for _, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("interleaved record: %q", ln)
		}
	}
}
