package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedEvent is a fully deterministic query event for the schema test.
func fixedEvent() QueryEvent {
	ev := QueryEvent{
		SessionID: 3,
		QueryID:   17,
		Goal:      "conn(marienplatz, X)",
		Mode:      "compiled",
		Solutions: 4,
		Elapsed:   1500 * time.Nanosecond,
	}
	for i, p := range QueryPhases() {
		ev.Stats.Phases.Add(p, time.Duration(100*(i+1)))
	}
	ev.Stats.Retrievals = 2
	ev.Stats.ClausesScanned = 40
	ev.Stats.ClausesPassed = 8
	ev.Stats.PagesTouched = 5
	ev.Stats.CacheHits = 1
	ev.Stats.CacheMisses = 1
	return ev
}

// TestTraceGolden pins the JSON trace event schema: one span record per
// query phase followed by one query summary, with stable field names.
// Run with -update to regenerate testdata/trace.golden.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewDeterministicTracer(&buf)
	tr.TraceQuery(fixedEvent())

	golden := filepath.Join("testdata", "trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("trace output diverged from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTraceEventStructure checks the decoded shape: every span names one
// of the seven query phases exactly once, and the summary carries the
// full counter set.
func TestTraceEventStructure(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.TraceQuery(fixedEvent())

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != NumQueryPhases+1 {
		t.Fatalf("got %d records, want %d", len(lines), NumQueryPhases+1)
	}
	seen := map[string]bool{}
	for _, ln := range lines[:NumQueryPhases] {
		var rec struct {
			Msg       string `json:"msg"`
			SessionID uint64 `json:"session_id"`
			QueryID   uint64 `json:"query_id"`
			Phase     string `json:"phase"`
			NS        *int64 `json:"ns"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad JSON %q: %v", ln, err)
		}
		if rec.Msg != EventSpan || rec.SessionID != 3 || rec.QueryID != 17 || rec.NS == nil {
			t.Fatalf("bad span record %q", ln)
		}
		if seen[rec.Phase] {
			t.Fatalf("phase %s emitted twice", rec.Phase)
		}
		seen[rec.Phase] = true
	}
	for _, p := range QueryPhases() {
		if !seen[p.String()] {
			t.Fatalf("missing span for phase %s", p)
		}
	}
	var sum map[string]any
	if err := json.Unmarshal([]byte(lines[NumQueryPhases]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum["msg"] != EventQuery || sum["goal"] != "conn(marienplatz, X)" {
		t.Fatalf("bad summary %v", sum)
	}
	counters, ok := sum["counters"].(map[string]any)
	if !ok {
		t.Fatalf("summary missing counters group: %v", sum)
	}
	for _, k := range []string{"retrievals", "clauses_scanned", "clauses_passed",
		"pages_touched", "code_cache_hits", "code_cache_misses", "asserts"} {
		if _, ok := counters[k]; !ok {
			t.Fatalf("counters missing %q: %v", k, counters)
		}
	}
	if sum["preunify_selectivity"] != 0.2 {
		t.Fatalf("selectivity = %v", sum["preunify_selectivity"])
	}
}

// TestTracerConcurrent exercises the locked writer: records from many
// goroutines must stay line-atomic.
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewDeterministicTracer(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			ev := fixedEvent()
			ev.SessionID = id
			tr.TraceQuery(ev)
		}(uint64(i))
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*(NumQueryPhases+1) {
		t.Fatalf("got %d records, want %d", len(lines), 8*(NumQueryPhases+1))
	}
	for _, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("interleaved record: %q", ln)
		}
	}
}

// fixedSlowEvent extends fixedEvent with the slow-query attribution
// detail, fully deterministic for the schema golden.
func fixedSlowEvent() SlowQueryEvent {
	ev := SlowQueryEvent{
		QueryEvent: fixedEvent(),
		Threshold:  1000 * time.Nanosecond,
		TopPreds: []PredProfile{
			{Pred: "route/3", PredCounters: PredCounters{
				Calls: 10, Exits: 7, Redos: 10, Fails: 5, SelfNS: 12000}},
			{Pred: "schedule2/5", PredCounters: PredCounters{
				Calls: 62, Exits: 55, Redos: 8, Fails: 15, SelfNS: 9000,
				EDBFetches: 60, Pages: 553}},
		},
	}
	ev.Stats.Paths[PathAttrIndex] = PathStats{Choices: 60, Scanned: 199, Matched: 54}
	ev.Stats.Paths[PathVarList] = PathStats{Choices: 2, Scanned: 30, Matched: 1}
	ev.Paths = PathProfiles(&ev.Stats)
	return ev
}

// TestSlowQueryGolden pins the slow_query record schema (DESIGN.md §11):
// identity and timing fields, the phases group, top_preds and paths
// arrays, and the io group. Run with -update to regenerate.
func TestSlowQueryGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := NewDeterministicTracer(&buf)
	tr.TraceSlowQuery(fixedSlowEvent())

	golden := filepath.Join("testdata", "slow_query.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("slow_query record diverged from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The record must decode with the documented shape.
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["msg"] != EventSlowQuery || rec["level"] != "WARN" {
		t.Fatalf("bad record header: %v", rec)
	}
	for _, k := range []string{"session_id", "query_id", "goal", "mode", "solutions",
		"elapsed_ns", "threshold_ns", "phases", "top_preds", "paths", "io"} {
		if _, ok := rec[k]; !ok {
			t.Fatalf("record missing %q: %v", k, rec)
		}
	}
	phases, ok := rec["phases"].(map[string]any)
	if !ok || len(phases) != NumQueryPhases {
		t.Fatalf("phases group must name all %d query phases: %v", NumQueryPhases, rec["phases"])
	}
	preds := rec["top_preds"].([]any)
	first := preds[0].(map[string]any)
	for _, k := range []string{"pred", "calls", "exits", "redos", "fails", "self_ns", "edb_fetches", "pages"} {
		if _, ok := first[k]; !ok {
			t.Fatalf("top_preds row missing %q: %v", k, first)
		}
	}
	paths := rec["paths"].([]any)
	if len(paths) != 2 {
		t.Fatalf("want 2 non-zero paths, got %v", rec["paths"])
	}
	p0 := paths[0].(map[string]any)
	for _, k := range []string{"path", "choices", "scanned", "matched", "selectivity"} {
		if _, ok := p0[k]; !ok {
			t.Fatalf("paths row missing %q: %v", k, p0)
		}
	}
	io, ok := rec["io"].(map[string]any)
	if !ok {
		t.Fatalf("io group missing: %v", rec)
	}
	for _, k := range []string{"retrievals", "clauses_scanned", "clauses_passed", "pages_touched"} {
		if _, ok := io[k]; !ok {
			t.Fatalf("io group missing %q: %v", k, io)
		}
	}
}
