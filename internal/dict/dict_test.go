package dict

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestInternLookup(t *testing.T) {
	d := New(WithSegmentSize(64))
	a := d.Intern("foo", 0)
	b := d.Intern("foo", 2)
	c := d.Intern("bar", 0)
	if a == b || a == c || b == c {
		t.Fatal("distinct pairs must get distinct IDs")
	}
	if got := d.Intern("foo", 0); got != a {
		t.Fatalf("re-intern foo/0: %d != %d", got, a)
	}
	if id, ok := d.Lookup("foo", 2); !ok || id != b {
		t.Fatalf("lookup foo/2 = (%d,%v)", id, ok)
	}
	if _, ok := d.Lookup("missing", 1); ok {
		t.Fatal("lookup of absent entry succeeded")
	}
	if d.Name(a) != "foo" || d.Arity(a) != 0 {
		t.Fatal("name/arity mismatch")
	}
	if d.Name(b) != "foo" || d.Arity(b) != 2 {
		t.Fatal("name/arity mismatch for functor")
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestIDZeroInvalid(t *testing.T) {
	d := New(WithSegmentSize(16))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ID 0")
		}
	}()
	d.Name(None)
}

func TestGrowthAtHighWater(t *testing.T) {
	d := New(WithSegmentSize(16), WithHighWater(0.70))
	// 16 * 0.70 = 11 entries trigger a second segment.
	for i := 0; i < 11; i++ {
		d.Intern(fmt.Sprintf("a%d", i), 0)
	}
	if d.Segments() != 2 {
		t.Fatalf("segments = %d after high water, want 2", d.Segments())
	}
	// All entries still resolvable after growth.
	for i := 0; i < 11; i++ {
		if _, ok := d.Lookup(fmt.Sprintf("a%d", i), 0); !ok {
			t.Errorf("a%d lost after growth", i)
		}
	}
}

func TestHotSegmentBalancing(t *testing.T) {
	d := New(WithSegmentSize(16), WithHighWater(0.5))
	for i := 0; i < 30; i++ {
		d.Intern(fmt.Sprintf("x%d", i), 0)
	}
	st := d.Stats()
	if len(st.SegmentUsed) < 2 {
		t.Fatalf("expected multiple segments, got %v", st.SegmentUsed)
	}
	// No segment should be wildly imbalanced versus the others:
	// with hot-segment insertion, max-min should stay within the
	// high-water band (8 entries here).
	min, max := st.SegmentUsed[0], st.SegmentUsed[0]
	for _, u := range st.SegmentUsed {
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if max-min > 8 {
		t.Errorf("segments imbalanced: %v", st.SegmentUsed)
	}
}

func TestStableIDsAcrossGrowth(t *testing.T) {
	d := New(WithSegmentSize(16))
	ids := map[string]ID{}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("atom%d", i)
		ids[name] = d.Intern(name, i%5)
	}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("atom%d", i)
		if got := d.Intern(name, i%5); got != ids[name] {
			t.Fatalf("ID for %s changed: %d -> %d", name, ids[name], got)
		}
		if d.Name(ids[name]) != name {
			t.Fatalf("name for %s corrupted", name)
		}
	}
}

func TestRemoveAndSlotReuse(t *testing.T) {
	d := New(WithSegmentSize(16))
	a := d.Intern("doomed", 3)
	d.Remove(a)
	if _, ok := d.Lookup("doomed", 3); ok {
		t.Fatal("removed entry still found")
	}
	// Looking past a tombstone must still find entries inserted later in
	// the same chain.
	b := d.Intern("doomed", 3)
	if _, ok := d.Lookup("doomed", 3); !ok {
		t.Fatal("re-interned entry not found")
	}
	_ = b
}

func TestTombstoneProbeChain(t *testing.T) {
	// Force collisions into one small segment and check deletion keeps
	// later chain entries reachable.
	d := New(WithSegmentSize(16), WithHighWater(1.0))
	var names []string
	for i := 0; len(names) < 5; i++ {
		names = append(names, fmt.Sprintf("n%d", i))
	}
	ids := make([]ID, len(names))
	for i, n := range names {
		ids[i] = d.Intern(n, 0)
	}
	d.Remove(ids[1])
	for i, n := range names {
		if i == 1 {
			continue
		}
		if got, ok := d.Lookup(n, 0); !ok || got != ids[i] {
			t.Errorf("%s unreachable after deleting neighbour", n)
		}
	}
}

func TestRefCounting(t *testing.T) {
	d := New(WithSegmentSize(16))
	id := d.Intern("counted", 1)
	d.Retain(id)
	d.Retain(id)
	if d.Refs(id) != 2 {
		t.Fatalf("refs = %d", d.Refs(id))
	}
	d.Release(id)
	if _, ok := d.Lookup("counted", 1); !ok {
		t.Fatal("entry deleted while still referenced")
	}
	d.Release(id)
	if _, ok := d.Lookup("counted", 1); ok {
		t.Fatal("entry survives zero refcount")
	}
}

func TestSegmentStorageRelease(t *testing.T) {
	d := New(WithSegmentSize(16))
	var ids []ID
	for i := 0; i < 10; i++ {
		ids = append(ids, d.Intern(fmt.Sprintf("t%d", i), 0))
	}
	for _, id := range ids {
		d.Remove(id)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after removing all", d.Len())
	}
	// Reinsertion must still work after the segment storage was dropped.
	id := d.Intern("fresh", 0)
	if d.Name(id) != "fresh" {
		t.Fatal("reinsertion after segment release failed")
	}
}

func TestHashDistinguishesArity(t *testing.T) {
	if Hash("f", 1) == Hash("f", 2) {
		t.Error("hash should mix arity")
	}
	if Hash("ab", 0) == Hash("ba", 0) {
		t.Error("hash should be order sensitive")
	}
}

func TestInternProperty(t *testing.T) {
	d := New(WithSegmentSize(64))
	seen := map[[2]any]ID{}
	f := func(name string, arity uint8) bool {
		a := int(arity % 8)
		id := d.Intern(name, a)
		key := [2]any{name, a}
		if prev, ok := seen[key]; ok && prev != id {
			return false
		}
		seen[key] = id
		return d.Name(id) == name && d.Arity(id) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDistinctIDsProperty(t *testing.T) {
	d := New(WithSegmentSize(32))
	byID := map[ID][2]any{}
	f := func(name string, arity uint8) bool {
		a := int(arity % 4)
		id := d.Intern(name, a)
		if prev, ok := byID[id]; ok {
			return prev == [2]any{name, a}
		}
		byID[id] = [2]any{name, a}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntern(b *testing.B) {
	d := New()
	names := make([]string, 1000)
	for i := range names {
		names[i] = fmt.Sprintf("atom_%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Intern(names[i%len(names)], i%4)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	d := New()
	names := make([]string, 1000)
	for i := range names {
		names[i] = fmt.Sprintf("atom_%d", i)
		d.Intern(names[i], 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(names[i%len(names)], 0)
	}
}
