// Package dict implements the segmented closed-hash dictionary of atoms and
// functors described in §3.3.1 of the Educe* paper.
//
// The dictionary provides a stable unique identifier for every interned
// (name, arity) pair; unification then compares identifiers instead of
// strings. The design follows the paper's eight principles:
//
//   - IDs are a concatenation of segment number and slot index, so an entry
//     is never relocated while live (principle 4).
//   - Each segment is a fixed-size closed (open-addressing) hash table;
//     the table as a whole is extended by chaining new segments when every
//     existing segment passes a high-water mark, default 70% (principle 5).
//   - New insertions go to the "hot" segment — the one with the lowest
//     occupancy — to balance load across segments (paper §3.3.1).
//   - Deleted slots become tombstones and are reused by later insertions
//     without moving live entries (principle 3 reconciled with 4).
//   - A segment whose occupancy drops to zero has its backing storage
//     released and is reallocated lazily (the paper's segment GC).
//
// Entries are reference counted: the engine retains an entry for each use in
// resident code and releases it when the code is discarded, which is what
// triggers dictionary garbage collection in the paper.
package dict

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// ID identifies an interned atom or functor. The zero ID is invalid.
// Layout: segment number in the high bits, slot index plus one in the low
// bits (so that ID 0 never denotes a real entry).
type ID uint32

// None is the invalid ID.
const None ID = 0

const (
	// DefaultSegmentSize matches the paper's test configuration order of
	// magnitude ("32000 entries per segment") rounded to a power of two.
	DefaultSegmentSize = 32768
	// DefaultHighWater is the paper's 70% occupancy mark.
	DefaultHighWater = 0.70
)

type slotState uint8

const (
	slotFree slotState = iota // never used; terminates probe chains
	slotUsed
	slotDead // tombstone; reusable but does not terminate probes
)

type entry struct {
	name  string
	arity int32
	state slotState
	refs  int32
}

type segment struct {
	entries []entry // nil when released; reallocated lazily
	used    int     // live entries
	dead    int     // tombstones
}

// Table is a segmented closed-hash dictionary. Create one with New; the
// zero value is not usable.
//
// Concurrency: a Table is not safe for concurrent mutation (each engine
// session owns its own table), but the read-only paths — Lookup, Name,
// Arity, Hash — are safe under concurrent readers: the stat counters
// they bump are atomic and nothing else is written.
type Table struct {
	segs      []*segment
	segSize   int
	segBits   uint    // log2(segSize)
	highWater int     // used-count threshold per segment
	hwFrac    float64 // configured high-water fraction
	live      int     // total live entries
	// stats (atomic: bumped on read paths that may run concurrently)
	probes  atomic.Uint64
	inserts atomic.Uint64
	lookups atomic.Uint64
	// hits/misses count associative-address resolutions through Intern:
	// a hit finds the (name, arity) pair already interned, a miss
	// allocates a fresh ID. The dynamic loader resolves every symbol of
	// an EDB-loaded clause this way, so the hit ratio measures how much
	// of the paper's §3.1 "load/link" share is pure table lookup.
	hits   atomic.Uint64
	misses atomic.Uint64
}

// Option configures a Table.
type Option func(*Table)

// WithSegmentSize sets the per-segment capacity; it is rounded up to a
// power of two, minimum 16.
func WithSegmentSize(n int) Option {
	return func(t *Table) {
		if n < 16 {
			n = 16
		}
		t.segSize = 1 << uint(bits.Len(uint(n-1)))
	}
}

// WithHighWater sets the occupancy fraction (0,1] past which a new segment
// is chained.
func WithHighWater(f float64) Option {
	return func(t *Table) {
		if f <= 0 || f > 1 {
			f = DefaultHighWater
		}
		t.highWater = -1 // recomputed in New after segSize is final
		t.hwFrac = f
	}
}

// New returns an empty dictionary.
func New(opts ...Option) *Table {
	t := &Table{segSize: DefaultSegmentSize, hwFrac: DefaultHighWater}
	for _, o := range opts {
		o(t)
	}
	t.segBits = uint(bits.TrailingZeros(uint(t.segSize)))
	t.highWater = int(float64(t.segSize) * t.hwFrac)
	if t.highWater < 1 {
		t.highWater = 1
	}
	t.segs = []*segment{newSegment(t.segSize)}
	return t
}

func newSegment(size int) *segment { return &segment{entries: make([]entry, size)} }

// Hash returns the dictionary hash of a (name, arity) pair. It is exported
// because the external dictionary stores this value alongside each atom so
// the storage engine can pre-unify on it (paper §4).
func Hash(name string, arity int) uint64 {
	// FNV-1a over the name, then mix in the arity.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	h ^= uint64(arity) + 0x9e3779b97f4a7c15
	h *= prime64
	return h
}

func (t *Table) makeID(seg, slot int) ID { return ID(uint32(seg)<<t.segBits | uint32(slot) + 1) }

func (t *Table) split(id ID) (seg, slot int) {
	v := uint32(id) - 1
	return int(v >> t.segBits), int(v & uint32(t.segSize-1))
}

// Intern returns the ID for (name, arity), inserting it if absent. The
// entry's reference count is not changed; see Retain.
func (t *Table) Intern(name string, arity int) ID {
	h := Hash(name, arity)
	if id, ok := t.find(h, name, arity); ok {
		t.hits.Add(1)
		return id
	}
	t.misses.Add(1)
	t.inserts.Add(1)
	seg := t.hotSegment()
	s := t.segs[seg]
	if s.entries == nil {
		s.entries = make([]entry, t.segSize)
	}
	mask := t.segSize - 1
	start := int(h) & mask
	insertAt := -1
	for i := 0; i < t.segSize; i++ {
		j := (start + i) & mask
		e := &s.entries[j]
		switch e.state {
		case slotFree:
			if insertAt < 0 {
				insertAt = j
			}
			i = t.segSize // break out
		case slotDead:
			if insertAt < 0 {
				insertAt = j
			}
		}
	}
	if insertAt < 0 {
		// Hot segment completely full of live entries (can only happen
		// with a high-water mark of 1.0): chain a fresh segment.
		t.segs = append(t.segs, newSegment(t.segSize))
		seg = len(t.segs) - 1
		s = t.segs[seg]
		insertAt = int(h) & mask
	}
	e := &s.entries[insertAt]
	if e.state == slotDead {
		s.dead--
	}
	*e = entry{name: name, arity: int32(arity), state: slotUsed}
	s.used++
	t.live++
	t.maybeGrow()
	return t.makeID(seg, insertAt)
}

// Lookup returns the ID for (name, arity) if it is interned.
func (t *Table) Lookup(name string, arity int) (ID, bool) {
	t.lookups.Add(1)
	return t.find(Hash(name, arity), name, arity)
}

func (t *Table) find(h uint64, name string, arity int) (ID, bool) {
	mask := t.segSize - 1
	start := int(h) & mask
	for si, s := range t.segs {
		if s.entries == nil || s.used == 0 {
			continue
		}
		for i := 0; i < t.segSize; i++ {
			j := (start + i) & mask
			e := &s.entries[j]
			t.probes.Add(1)
			if e.state == slotFree {
				break // end of this segment's probe chain
			}
			if e.state == slotUsed && int(e.arity) == arity && e.name == name {
				return t.makeID(si, j), true
			}
		}
	}
	return None, false
}

// hotSegment returns the index of the segment with the lowest occupancy.
func (t *Table) hotSegment() int {
	best, bestUsed := 0, t.segSize+1
	for i, s := range t.segs {
		if s.used < bestUsed {
			best, bestUsed = i, s.used
		}
	}
	return best
}

// maybeGrow chains a new segment once every segment has passed the
// high-water mark.
func (t *Table) maybeGrow() {
	for _, s := range t.segs {
		if s.used < t.highWater {
			return
		}
	}
	t.segs = append(t.segs, newSegment(t.segSize))
}

// Name returns the name of an interned entry. It panics on an invalid or
// deleted ID, which always indicates an engine bug.
func (t *Table) Name(id ID) string { return t.entry(id).name }

// Arity returns the arity of an interned entry.
func (t *Table) Arity(id ID) int { return int(t.entry(id).arity) }

// Refs returns the current reference count of an entry.
func (t *Table) Refs(id ID) int { return int(t.entry(id).refs) }

func (t *Table) entry(id ID) *entry {
	if id == None {
		panic("dict: invalid ID 0")
	}
	seg, slot := t.split(id)
	if seg >= len(t.segs) || t.segs[seg].entries == nil {
		panic(fmt.Sprintf("dict: ID %d refers to missing segment", id))
	}
	e := &t.segs[seg].entries[slot]
	if e.state != slotUsed {
		panic(fmt.Sprintf("dict: ID %d refers to deleted entry", id))
	}
	return e
}

// Retain increments the reference count of id.
func (t *Table) Retain(id ID) { t.entry(id).refs++ }

// Release decrements the reference count of id and deletes the entry when
// the count reaches zero. Deleting frees the slot for reuse (the ID becomes
// invalid) and releases a segment's storage when it empties entirely.
func (t *Table) Release(id ID) {
	e := t.entry(id)
	if e.refs > 0 {
		e.refs--
	}
	if e.refs == 0 {
		t.remove(id)
	}
}

// Remove deletes the entry regardless of its reference count.
func (t *Table) Remove(id ID) { t.remove(id) }

func (t *Table) remove(id ID) {
	seg, slot := t.split(id)
	s := t.segs[seg]
	e := &s.entries[slot]
	if e.state != slotUsed {
		return
	}
	*e = entry{state: slotDead}
	s.used--
	s.dead++
	t.live--
	if s.used == 0 {
		// Segment garbage collection: drop the backing array; it is
		// reallocated on the next insertion into this segment.
		s.entries = nil
		s.dead = 0
	}
}

// Len returns the number of live entries.
func (t *Table) Len() int { return t.live }

// Segments returns the number of chained segments.
func (t *Table) Segments() int { return len(t.segs) }

// SegmentSize returns the per-segment capacity.
func (t *Table) SegmentSize() int { return t.segSize }

// Stats reports cumulative probe/insert/lookup counters, associative-
// address resolution hits/misses, and per-segment occupancy, for
// benchmarks and tests.
type Stats struct {
	Probes, Inserts, Lookups uint64
	// Hits counts Intern calls resolved to an existing entry; Misses
	// counts Intern calls that allocated a fresh ID.
	Hits, Misses uint64
	Live         int
	SegmentUsed  []int
}

// Stats returns a snapshot of the dictionary's counters.
func (t *Table) Stats() Stats {
	st := Stats{
		Probes: t.probes.Load(), Inserts: t.inserts.Load(), Lookups: t.lookups.Load(),
		Hits: t.hits.Load(), Misses: t.misses.Load(), Live: t.live,
	}
	for _, s := range t.segs {
		st.SegmentUsed = append(st.SegmentUsed, s.used)
	}
	return st
}
