// Package term defines the symbolic representation of Prolog terms used by
// the reader, the compiler and the host-language API.
//
// This representation is deliberately separate from the WAM's tagged heap
// cells (package wam): the reader produces term.Term values, the compiler
// consumes them, and query results are decoded from the heap back into
// term.Term values for the caller.
package term

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Term is a symbolic Prolog term: an Atom, Int, Float, *Var or *Compound.
type Term interface {
	// Indicator returns the name/arity predicate indicator of the term.
	// Atoms have arity 0; integers, floats and variables return an
	// indicator with an empty name.
	Indicator() Indicator

	// String renders the term in canonical (quoted, operator-free) form.
	String() string

	isTerm()
}

// Indicator identifies a functor by name and arity, e.g. foo/2.
type Indicator struct {
	Name  string
	Arity int
}

func (pi Indicator) String() string { return quoteAtom(pi.Name) + "/" + strconv.Itoa(pi.Arity) }

// Atom is a Prolog atom such as foo, [], or 'hello world'.
type Atom string

// Int is a Prolog integer.
type Int int64

// Float is a Prolog floating point number.
type Float float64

// Var is a logic variable. Identity is by pointer: two *Var values with the
// same Name are distinct variables unless they are the same pointer. The
// reader shares one *Var per name within a single read.
type Var struct {
	// Name is the source name of the variable ("X", "_G12", ...). It is
	// advisory; identity is pointer identity.
	Name string
}

// Compound is a compound term Functor(Args...). Arity is len(Args) and is
// always at least 1; zero-arity terms are Atoms.
type Compound struct {
	Functor string
	Args    []Term
}

func (Atom) isTerm()      {}
func (Int) isTerm()       {}
func (Float) isTerm()     {}
func (*Var) isTerm()      {}
func (*Compound) isTerm() {}

// Indicator implementations.

func (a Atom) Indicator() Indicator      { return Indicator{Name: string(a)} }
func (Int) Indicator() Indicator         { return Indicator{} }
func (Float) Indicator() Indicator       { return Indicator{} }
func (*Var) Indicator() Indicator        { return Indicator{} }
func (c *Compound) Indicator() Indicator { return Indicator{Name: c.Functor, Arity: len(c.Args)} }

// New builds a term from a functor name and arguments. With no arguments it
// returns an Atom, otherwise a *Compound.
func New(functor string, args ...Term) Term {
	if len(args) == 0 {
		return Atom(functor)
	}
	return &Compound{Functor: functor, Args: args}
}

// Comp builds a *Compound; it panics if no arguments are given.
func Comp(functor string, args ...Term) *Compound {
	if len(args) == 0 {
		panic("term.Comp: compound term needs at least one argument")
	}
	return &Compound{Functor: functor, Args: args}
}

// Well-known atoms.
const (
	NilAtom  = Atom("[]")
	ConsName = "."
	TrueAtom = Atom("true")
)

// Cons builds a list cell '.'(Head, Tail).
func Cons(head, tail Term) *Compound {
	return &Compound{Functor: ConsName, Args: []Term{head, tail}}
}

// List builds a proper list of the given items.
func List(items ...Term) Term { return ListTail(NilAtom, items...) }

// ListTail builds a partial list of items ending in tail.
func ListTail(tail Term, items ...Term) Term {
	t := tail
	for i := len(items) - 1; i >= 0; i-- {
		t = Cons(items[i], t)
	}
	return t
}

// UnpackList splits a term into the elements of a proper list. ok is false
// if the term is not a proper list (including partial lists).
func UnpackList(t Term) (items []Term, ok bool) {
	for {
		switch x := t.(type) {
		case Atom:
			if x == NilAtom {
				return items, true
			}
			return nil, false
		case *Compound:
			if x.Functor == ConsName && len(x.Args) == 2 {
				items = append(items, x.Args[0])
				t = x.Args[1]
				continue
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// IsCons reports whether t is a '.'/2 cell.
func IsCons(t Term) (*Compound, bool) {
	c, ok := t.(*Compound)
	if ok && c.Functor == ConsName && len(c.Args) == 2 {
		return c, true
	}
	return nil, false
}

// Equal reports structural equality of two terms. Variables are equal only
// if they are the same pointer.
func Equal(a, b Term) bool {
	switch x := a.(type) {
	case Atom:
		y, ok := b.(Atom)
		return ok && x == y
	case Int:
		y, ok := b.(Int)
		return ok && x == y
	case Float:
		y, ok := b.(Float)
		return ok && x == y
	case *Var:
		return a == b
	case *Compound:
		y, ok := b.(*Compound)
		if !ok || x.Functor != y.Functor || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare implements the standard order of terms:
// Var < Float/Int (by value) < Atom < Compound (by arity, then name, then args).
// Distinct variables are ordered by an arbitrary but consistent pointer-free
// rule (their names, then fmt pointer string) — adequate for sorting.
func Compare(a, b Term) int {
	oa, ob := stdOrder(a), stdOrder(b)
	if oa != ob {
		return oa - ob
	}
	switch x := a.(type) {
	case *Var:
		y := b.(*Var)
		if x == y {
			return 0
		}
		if c := strings.Compare(x.Name, y.Name); c != 0 {
			return c
		}
		return strings.Compare(fmt.Sprintf("%p", x), fmt.Sprintf("%p", y))
	case Int:
		switch y := b.(type) {
		case Int:
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		case Float:
			return -cmpFloat(float64(y), float64(x))
		}
	case Float:
		switch y := b.(type) {
		case Int:
			return cmpFloat(float64(x), float64(y))
		case Float:
			return cmpFloat(float64(x), float64(y))
		}
	case Atom:
		return strings.Compare(string(x), string(b.(Atom)))
	case *Compound:
		y := b.(*Compound)
		if d := len(x.Args) - len(y.Args); d != 0 {
			return d
		}
		if c := strings.Compare(x.Functor, y.Functor); c != 0 {
			return c
		}
		for i := range x.Args {
			if c := Compare(x.Args[i], y.Args[i]); c != 0 {
				return c
			}
		}
		return 0
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func stdOrder(t Term) int {
	switch t.(type) {
	case *Var:
		return 0
	case Float, Int:
		return 1
	case Atom:
		return 2
	case *Compound:
		return 3
	}
	return 4
}

// Variables returns the distinct variables of t in first-occurrence order.
func Variables(t Term) []*Var {
	var out []*Var
	seen := map[*Var]bool{}
	var walk func(Term)
	walk = func(t Term) {
		switch x := t.(type) {
		case *Var:
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		case *Compound:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(t)
	return out
}

// IsGround reports whether t contains no variables.
func IsGround(t Term) bool {
	switch x := t.(type) {
	case *Var:
		return false
	case *Compound:
		for _, a := range x.Args {
			if !IsGround(a) {
				return false
			}
		}
	}
	return true
}

// Rename returns a copy of t with every variable replaced by a fresh one.
// Sharing within t is preserved.
func Rename(t Term) Term {
	m := map[*Var]*Var{}
	var walk func(Term) Term
	walk = func(t Term) Term {
		switch x := t.(type) {
		case *Var:
			nv, ok := m[x]
			if !ok {
				nv = &Var{Name: x.Name}
				m[x] = nv
			}
			return nv
		case *Compound:
			args := make([]Term, len(x.Args))
			for i, a := range x.Args {
				args[i] = walk(a)
			}
			return &Compound{Functor: x.Functor, Args: args}
		default:
			return t
		}
	}
	return walk(t)
}

// String renderings (canonical, quoted).

func (a Atom) String() string { return quoteAtom(string(a)) }
func (i Int) String() string  { return strconv.FormatInt(int64(i), 10) }

func (f Float) String() string {
	v := float64(f)
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsInf(v, -1) {
		return "-inf"
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// Prolog floats must contain a '.' or exponent.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func (v *Var) String() string {
	if v.Name != "" {
		return v.Name
	}
	return fmt.Sprintf("_G%p", v)
}

func (c *Compound) String() string {
	var b strings.Builder
	writeCompound(&b, c)
	return b.String()
}

func writeCompound(b *strings.Builder, c *Compound) {
	// List sugar.
	if c.Functor == ConsName && len(c.Args) == 2 {
		b.WriteByte('[')
		writeTerm(b, c.Args[0])
		t := c.Args[1]
		for {
			if cc, ok := IsCons(t); ok {
				b.WriteByte(',')
				writeTerm(b, cc.Args[0])
				t = cc.Args[1]
				continue
			}
			break
		}
		if a, ok := t.(Atom); !ok || a != NilAtom {
			b.WriteByte('|')
			writeTerm(b, t)
		}
		b.WriteByte(']')
		return
	}
	// Curly-brace sugar.
	if c.Functor == "{}" && len(c.Args) == 1 {
		b.WriteByte('{')
		writeTerm(b, c.Args[0])
		b.WriteByte('}')
		return
	}
	b.WriteString(quoteAtom(c.Functor))
	b.WriteByte('(')
	for i, a := range c.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		writeTerm(b, a)
	}
	b.WriteByte(')')
}

func writeTerm(b *strings.Builder, t Term) {
	if c, ok := t.(*Compound); ok {
		writeCompound(b, c)
		return
	}
	b.WriteString(t.String())
}

// quoteAtom renders an atom with quotes when required by Prolog syntax.
func quoteAtom(s string) string {
	if atomNeedsNoQuote(s) {
		return s
	}
	var b strings.Builder
	b.WriteByte('\'')
	for _, r := range s {
		switch r {
		case '\'':
			b.WriteString(`\'`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('\'')
	return b.String()
}

func atomNeedsNoQuote(s string) bool {
	if s == "" {
		return false
	}
	switch s {
	case "[]", "{}", "!", ";":
		return true
	case ",", "|", ".":
		return false
	}
	if isSoloLower(s) {
		return true
	}
	// All-symbolic atoms need no quotes.
	allSym := true
	for _, r := range s {
		if !isSymbolRune(r) {
			allSym = false
			break
		}
	}
	return allSym
}

func isSoloLower(s string) bool {
	for i, r := range s {
		if i == 0 {
			if r < 'a' || r > 'z' {
				return false
			}
			continue
		}
		if !isAlnumRune(r) {
			return false
		}
	}
	return true
}

func isAlnumRune(r rune) bool {
	return r == '_' || (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isSymbolRune(r rune) bool {
	switch r {
	case '+', '-', '*', '/', '\\', '^', '<', '>', '=', '~', ':', '.', '?', '@', '#', '&', '$':
		return true
	}
	return false
}

// SortTerms sorts a slice of terms in the standard order of terms, in place.
func SortTerms(ts []Term) {
	sort.SliceStable(ts, func(i, j int) bool { return Compare(ts[i], ts[j]) < 0 })
}
