package term

import (
	"testing"
	"testing/quick"
)

func TestNewAndIndicator(t *testing.T) {
	if got := New("foo"); got != Atom("foo") {
		t.Fatalf("New(foo) = %v", got)
	}
	c := New("foo", Int(1), Atom("a"))
	pi := c.Indicator()
	if pi.Name != "foo" || pi.Arity != 2 {
		t.Fatalf("indicator = %v", pi)
	}
	if pi.String() != "foo/2" {
		t.Fatalf("indicator string = %q", pi.String())
	}
}

func TestListRoundTrip(t *testing.T) {
	items := []Term{Int(1), Atom("a"), Comp("f", Int(2))}
	l := List(items...)
	got, ok := UnpackList(l)
	if !ok || len(got) != 3 {
		t.Fatalf("UnpackList: ok=%v items=%v", ok, got)
	}
	for i := range items {
		if !Equal(items[i], got[i]) {
			t.Errorf("item %d: %v != %v", i, items[i], got[i])
		}
	}
}

func TestUnpackListPartial(t *testing.T) {
	v := &Var{Name: "T"}
	l := ListTail(v, Int(1))
	if _, ok := UnpackList(l); ok {
		t.Fatal("partial list reported as proper")
	}
	if _, ok := UnpackList(Int(3)); ok {
		t.Fatal("integer reported as list")
	}
	if got, ok := UnpackList(NilAtom); !ok || len(got) != 0 {
		t.Fatal("[] should unpack to empty list")
	}
}

func TestEqual(t *testing.T) {
	v1, v2 := &Var{Name: "X"}, &Var{Name: "X"}
	cases := []struct {
		a, b Term
		want bool
	}{
		{Atom("a"), Atom("a"), true},
		{Atom("a"), Atom("b"), false},
		{Int(1), Int(1), true},
		{Int(1), Float(1), false},
		{Float(2.5), Float(2.5), true},
		{v1, v1, true},
		{v1, v2, false},
		{Comp("f", Int(1)), Comp("f", Int(1)), true},
		{Comp("f", Int(1)), Comp("f", Int(2)), false},
		{Comp("f", Int(1)), Comp("g", Int(1)), false},
		{Comp("f", Int(1)), Comp("f", Int(1), Int(2)), false},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareStandardOrder(t *testing.T) {
	v := &Var{Name: "X"}
	ordered := []Term{v, Float(1.5), Int(2), Atom("a"), Atom("b"), Comp("f", Int(1)), Comp("f", Int(1), Int(2))}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			switch {
			case i < j && got >= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", ordered[i], ordered[j], got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v,%v) = %d, want >0", ordered[i], ordered[j], got)
			case i == j && got != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", ordered[i], ordered[j], got)
			}
		}
	}
}

func TestCompareNumbers(t *testing.T) {
	if Compare(Int(1), Float(1.5)) >= 0 {
		t.Error("1 should precede 1.5")
	}
	if Compare(Float(2.5), Int(2)) <= 0 {
		t.Error("2.5 should follow 2")
	}
	if Compare(Int(3), Float(3.0)) != 0 {
		t.Error("3 and 3.0 compare equal in value order")
	}
}

func TestVariables(t *testing.T) {
	x, y := &Var{Name: "X"}, &Var{Name: "Y"}
	tm := Comp("f", x, Comp("g", y, x))
	vs := Variables(tm)
	if len(vs) != 2 || vs[0] != x || vs[1] != y {
		t.Fatalf("Variables = %v", vs)
	}
}

func TestIsGround(t *testing.T) {
	if !IsGround(Comp("f", Int(1), Atom("a"))) {
		t.Error("ground term reported non-ground")
	}
	if IsGround(Comp("f", &Var{Name: "X"})) {
		t.Error("non-ground term reported ground")
	}
}

func TestRenamePreservesSharing(t *testing.T) {
	x := &Var{Name: "X"}
	tm := Comp("f", x, x)
	r := Rename(tm).(*Compound)
	rx, ok := r.Args[0].(*Var)
	if !ok || rx == x {
		t.Fatal("variable not renamed")
	}
	if r.Args[0] != r.Args[1] {
		t.Fatal("sharing not preserved")
	}
}

func TestStringQuoting(t *testing.T) {
	cases := []struct {
		t    Term
		want string
	}{
		{Atom("abc"), "abc"},
		{Atom("hello world"), "'hello world'"},
		{Atom("it's"), `'it\'s'`},
		{Atom("[]"), "[]"},
		{Atom("+"), "+"},
		{Atom("Foo"), "'Foo'"},
		{Int(-5), "-5"},
		{Float(1.5), "1.5"},
		{Float(2), "2.0"},
		{List(Int(1), Int(2)), "[1,2]"},
		{ListTail(&Var{Name: "T"}, Int(1)), "[1|T]"},
		{Comp("f", Atom("a"), Int(1)), "f(a,1)"},
		{Comp("{}", Atom("x")), "{x}"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestCompareReflexiveAntisymmetric(t *testing.T) {
	gen := func(n int64, name string, depth uint8) Term {
		return genTerm(n, name, int(depth%3))
	}
	f := func(n int64, name string, depth uint8, n2 int64, name2 string, depth2 uint8) bool {
		a := gen(n, name, depth)
		b := gen(n2, name2, depth2)
		if Compare(a, a) != 0 || Compare(b, b) != 0 {
			return false
		}
		return sign(Compare(a, b)) == -sign(Compare(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualImpliesCompareZero(t *testing.T) {
	f := func(n int64, name string, depth uint8) bool {
		a := genTerm(n, name, int(depth%3))
		b := genTerm(n, name, int(depth%3))
		return Equal(a, b) && Compare(a, b) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

// genTerm builds a deterministic term from seed data.
func genTerm(n int64, name string, depth int) Term {
	if depth <= 0 {
		switch n % 3 {
		case 0:
			return Int(n)
		case 1:
			return Atom(name)
		default:
			return Float(float64(n) / 2)
		}
	}
	return Comp("f", genTerm(n/2, name, depth-1), genTerm(n/3, name+"x", depth-1))
}
