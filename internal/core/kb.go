package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/compiler"
	"repro/internal/edb"
	"repro/internal/obs"
	"repro/internal/rel"
	"repro/internal/store"
	"repro/internal/term"
)

// KnowledgeBase is the shared, durable half of an Educe* deployment: the
// page store with its buffer pool, the EDB (procedures table, clause
// relations, external dictionary), the relational catalog, and a cache of
// loaded relocatable code keyed by procedure + pre-unification filter.
//
// One KnowledgeBase serves any number of concurrent Sessions. The paper's
// architecture already separates this state from per-session WAM state
// (§3.1, §3.3): externally stored code holds only associative addresses,
// so the same stored (and the same decoded) clauses can be linked into
// any session's machine. Readers proceed concurrently; writers
// (ConsultExternal, InsertTuples, assert/retract on stored procedures)
// take the KB write lock and invalidate affected cache entries.
type KnowledgeBase struct {
	opts Options // defaults for sessions created with NewSession

	// mu orders catalog/dictionary metadata access and multi-page
	// structure mutations (grid splits, B-tree splits, heap chain
	// growth) against readers. It does NOT serialize page access: since
	// the buffer pool grew per-frame latches, page-byte safety lives in
	// the pool (shared pins for reads, exclusive for writes), and
	// concurrent readers stream pages in parallel under their shared
	// RLock. Sessions hold the read lock only across individual
	// storage-layer accesses (one retrieval, one cursor step), never
	// across query execution, so a session may freely interleave its own
	// reads and writes.
	mu sync.RWMutex

	st  *store.Store
	db  *edb.DB
	cat *rel.Catalog

	// Shared loaded-code cache (paper §3.3.2's main-memory code, hoisted
	// out of the session): pre-unified candidate clause sets in
	// relocatable form. Entries are machine-independent; each session
	// links them against its own dictionary. cacheMu guards racing
	// loaders; kb.mu (held at least shared by every reader, exclusively
	// by every writer) orders cache fills against invalidation.
	cacheMu   sync.Mutex
	codeCache map[string][]compiler.ClauseCode
	procVers  map[string]uint64 // name/arity -> invalidation version
	version   atomic.Uint64     // bumped on every invalidation

	// txnTouched, while a transaction is open, records every procedure
	// invalidated inside it so a rollback can invalidate them again:
	// cache entries and session-resident code loaded during the
	// transaction reflect rolled-back clauses. Guarded by cacheMu.
	txnTouched map[string]term.Indicator // verKey -> procedure

	// Compiled bootstrap library, shared so sessions only pay linking.
	bootMu    sync.Mutex
	bootUnits map[term.Indicator][]compiler.ClauseCode
	bootOrder []term.Indicator

	// Observability: the KB-wide metrics registry (owned by the store,
	// shared by every layer) plus the shared decoded-code cache counters
	// and the session/query identity sequences the tracer stamps events
	// with.
	reg          *obs.Registry
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	cacheInvals  *obs.Counter
	cacheEntries *obs.Gauge
	// panicsRecovered counts runtime panics contained at the query
	// boundary and converted into Prolog system_error balls.
	panicsRecovered *obs.Counter
	// Transaction traffic: commits, rollbacks (explicit plus failed
	// commits), and the subset of rollbacks the engine initiated itself
	// (query error, timeout, interrupt, session close).
	txnCommits       *obs.Counter
	txnRollbacks     *obs.Counter
	txnAutoRollbacks *obs.Counter
	// Set-at-a-time evaluation: fixpoint runs, eligibility fallbacks to
	// the tuple-at-a-time WAM, semi-naive rounds, new tuples derived,
	// and the EDB pages read while materializing programs.
	setopsQueries     *obs.Counter
	setopsFallbacks   *obs.Counter
	setopsIterations  *obs.Counter
	setopsDeltaTuples *obs.Counter
	setopsPages       *obs.Counter
	sessionSeq        atomic.Uint64
	querySeq          atomic.Uint64

	// profile accumulates per-predicate 4-port counters and cost
	// attribution across every profiled session (sessions merge their
	// per-query profiles here at query end).
	profile *obs.ProfileTable
}

// sharedCacheLimit caps the number of shared loaded-code variants before
// an epoch clear (the code garbage collection of §3.3.2 applied to the
// KB-level cache).
const sharedCacheLimit = 4096

// OpenKB opens (or creates) a knowledge base. opts.StorePath and
// opts.PoolPages configure the store; the remaining options become the
// defaults for sessions created with NewSession.
func OpenKB(opts Options) (*KnowledgeBase, error) {
	return OpenKBFS(store.OSFS{}, opts)
}

// OpenKBFS is OpenKB over an explicit filesystem, letting tests run a
// full knowledge base on a deterministic fault-injecting store.
func OpenKBFS(fsys store.FS, opts Options) (*KnowledgeBase, error) {
	st, err := store.OpenOptionsFS(fsys, opts.StorePath, store.Options{
		PoolPages:       opts.PoolPages,
		CheckpointBytes: opts.CheckpointBytes,
		ArchiveDir:      opts.WALArchiveDir,
		ArchiveBudget:   opts.WALArchiveBudget,
	})
	if err != nil {
		return nil, err
	}
	db, err := edb.Open(st)
	if err != nil {
		st.Close()
		return nil, err
	}
	cat, err := rel.OpenCatalog(st)
	if err != nil {
		st.Close()
		return nil, err
	}
	reg := st.Obs()
	kb := &KnowledgeBase{
		opts:              opts,
		st:                st,
		db:                db,
		cat:               cat,
		codeCache:         map[string][]compiler.ClauseCode{},
		procVers:          map[string]uint64{},
		reg:               reg,
		cacheHits:         reg.Counter("core.codecache.hits"),
		cacheMisses:       reg.Counter("core.codecache.misses"),
		cacheInvals:       reg.Counter("core.codecache.invalidations"),
		cacheEntries:      reg.Gauge("core.codecache.entries"),
		panicsRecovered:   reg.Counter("core.panics_recovered"),
		txnCommits:        reg.Counter("core.txn.commits"),
		txnRollbacks:      reg.Counter("core.txn.rollbacks"),
		txnAutoRollbacks:  reg.Counter("core.txn.auto_rollbacks"),
		setopsQueries:     reg.Counter("setops.queries"),
		setopsFallbacks:   reg.Counter("setops.fallbacks"),
		setopsIterations:  reg.Counter("setops.iterations"),
		setopsDeltaTuples: reg.Counter("setops.delta_tuples"),
		setopsPages:       reg.Counter("setops.pages_read"),
		profile:           obs.NewProfileTable(),
	}
	reg.RegisterFunc("core.codecache.hit_ratio", func() any {
		h := kb.cacheHits.Value()
		return obs.Ratio(h, h+kb.cacheMisses.Value())
	})
	return kb, nil
}

// Obs returns the KB-wide metrics registry (one per knowledge base; every
// layer's shared counters live in it).
func (kb *KnowledgeBase) Obs() *obs.Registry { return kb.reg }

// ResetStats zeroes the shared knowledge-base traffic counters — the
// buffer-pool I/O, EDB retrieval and decoded-code cache metrics every
// session contributes to — and the KB-wide per-predicate profile. This
// is the explicit KB-level reset: Session.ResetStats deliberately does
// not touch these, because under concurrent sessions one session
// resetting them would corrupt the others' view. Gauges (clauses stored,
// cache entries) are state, not traffic, and keep their values.
func (kb *KnowledgeBase) ResetStats() {
	kb.reg.ResetTraffic()
	kb.profile.Reset()
}

// Profile returns the KB-wide per-predicate profile table, accumulated
// from every profiled session at query end (see Session.EnableProfiling).
func (kb *KnowledgeBase) Profile() *obs.ProfileTable { return kb.profile }

// nextSessionID allocates a session identifier for trace attribution.
func (kb *KnowledgeBase) nextSessionID() uint64 { return kb.sessionSeq.Add(1) }

// nextQueryID allocates a KB-unique query identifier.
func (kb *KnowledgeBase) nextQueryID() uint64 { return kb.querySeq.Add(1) }

// Close flushes and closes the store. Sessions must not be used after
// their knowledge base is closed.
func (kb *KnowledgeBase) Close() error { return kb.st.Close() }

// Flush writes all buffered pages to the store.
func (kb *KnowledgeBase) Flush() error { return kb.st.Flush() }

// Store returns the underlying page store.
func (kb *KnowledgeBase) Store() *store.Store { return kb.st }

// Backup streams an online backup of the knowledge base to w. The read
// lock is taken only at the start and finish edges: each edge sits on a
// commit boundary (a transaction owner holds the write lock for its
// whole transaction, so no open transaction can straddle an edge), and
// the page copy in between runs without the lock, with writers
// proceeding concurrently. The returned info carries the LSN range the
// image plus the WAL archive covers; restore with store.Restore.
func (kb *KnowledgeBase) Backup(w io.Writer) (store.BackupInfo, error) {
	return kb.BackupProgress(w, nil)
}

// BackupProgress is Backup with a per-batch progress callback reporting
// (copied, total) pages. A non-nil error from the callback aborts the
// backup and is returned; the primary is unaffected either way.
func (kb *KnowledgeBase) BackupProgress(w io.Writer, progress func(copied, total uint64) error) (store.BackupInfo, error) {
	kb.mu.RLock()
	bk, err := kb.st.StartBackup(w)
	kb.mu.RUnlock()
	if err != nil {
		return store.BackupInfo{}, err
	}
	for {
		done, err := bk.CopyPages(64)
		if err != nil {
			bk.Abort()
			return store.BackupInfo{}, err
		}
		if progress != nil {
			copied, total := bk.Progress()
			if perr := progress(uint64(copied), uint64(total)); perr != nil {
				bk.Abort()
				return store.BackupInfo{}, perr
			}
		}
		if done {
			break
		}
	}
	kb.mu.RLock()
	info, err := bk.Finish()
	kb.mu.RUnlock()
	if err != nil {
		return store.BackupInfo{}, err
	}
	return info, nil
}

// LSN reports the store's last committed log sequence number (0 for
// in-memory stores): the point-in-time coordinate backups and restores
// are addressed by.
func (kb *KnowledgeBase) LSN() uint64 { return kb.st.LSN() }

// ClearReadOnly is the operator repair path for a knowledge base that
// degraded to read-only after a failed transaction commit: it verifies
// the medium accepts writes again (repairing the log if the failed
// commit left it diverged) and re-enables writes. It fails — leaving
// the KB read-only — if the disk is still refusing writes.
func (kb *KnowledgeBase) ClearReadOnly() error {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	return kb.st.ClearReadOnly()
}

// Check verifies the knowledge base's on-disk integrity: every EDB
// structure (procedure descriptors, clause heaps, grid and attribute
// indexes, variable lists) passes its invariant verifier and every
// stored clause's code blob is readable. On a file-backed store each
// page visited has its checksum verified as a side effect. Check takes
// the read lock, so it can run against a live KB between queries.
func (kb *KnowledgeBase) Check() error {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return kb.db.Check()
}

// Repair rebuilds the EDB's derived structures (per-attribute secondary
// indexes) from its primary ones for every procedure whose Check fails,
// then flushes. It returns the number of indexes rebuilt; corruption in
// a primary structure is unrepairable and reported as an error. Cached
// loaded code for repaired procedures is invalidated.
func (kb *KnowledgeBase) Repair() (int, error) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	n, err := kb.db.Repair()
	if n > 0 {
		for _, p := range kb.db.Procs() {
			kb.invalidateProc(p.Name, p.Arity)
		}
		if ferr := kb.st.Flush(); err == nil {
			err = ferr
		}
	}
	return n, err
}

// DB returns the external database layer. Mutating it directly bypasses
// the KB write lock; use session methods (or Lock/Unlock) for writes.
func (kb *KnowledgeBase) DB() *edb.DB { return kb.db }

// Catalog returns the relational catalog.
func (kb *KnowledgeBase) Catalog() *rel.Catalog { return kb.cat }

// InsertTuples appends tuples to a stored relation under the KB write
// lock, making the set-oriented write path safe against concurrent
// readers.
func (kb *KnowledgeBase) InsertTuples(name string, ts []rel.Tuple) error {
	if kb.st.ReadOnly() {
		return store.ErrReadOnly
	}
	kb.mu.Lock()
	defer kb.mu.Unlock()
	r := kb.cat.Get(name)
	if r == nil {
		return fmt.Errorf("core: no relation %s", name)
	}
	return r.InsertAll(ts)
}

// --- shared loaded-code cache -----------------------------------------------

// procVersion returns the invalidation version of name/arity. Sessions
// record it when they link code so they can later tell whether their
// resident copy is stale.
func (kb *KnowledgeBase) procVersion(name string, arity int) uint64 {
	kb.cacheMu.Lock()
	defer kb.cacheMu.Unlock()
	return kb.procVers[verKey(name, arity)]
}

func verKey(name string, arity int) string { return fmt.Sprintf("%s/%d", name, arity) }

// procVersionByKey is procVersion over an already-formatted verKey.
func (kb *KnowledgeBase) procVersionByKey(vk string) uint64 {
	kb.cacheMu.Lock()
	defer kb.cacheMu.Unlock()
	return kb.procVers[vk]
}

// lookupShared returns the cached candidate set for a cache key, if any.
// Callers must hold kb.mu (shared or exclusive) so the entry cannot be
// invalidated between lookup and use.
func (kb *KnowledgeBase) lookupShared(key string) ([]compiler.ClauseCode, bool) {
	kb.cacheMu.Lock()
	ccs, ok := kb.codeCache[key]
	kb.cacheMu.Unlock()
	if ok {
		kb.cacheHits.Inc()
	} else {
		kb.cacheMisses.Inc()
	}
	return ccs, ok
}

// storeShared publishes a decoded candidate set. Callers must hold kb.mu
// (shared or exclusive): invalidation takes kb.mu exclusively, so an
// entry stored under the lock reflects the current stored clauses. Racing
// loaders of the same key are harmless — both decode the same stored
// clauses and the second store is a no-op.
func (kb *KnowledgeBase) storeShared(key string, ccs []compiler.ClauseCode) {
	kb.cacheMu.Lock()
	defer kb.cacheMu.Unlock()
	if len(kb.codeCache) >= sharedCacheLimit {
		kb.codeCache = map[string][]compiler.ClauseCode{}
	}
	if _, ok := kb.codeCache[key]; !ok {
		kb.codeCache[key] = ccs
	}
	kb.cacheEntries.Set(int64(len(kb.codeCache)))
}

// invalidateProc drops every shared cache entry for name/arity and bumps
// its version so sessions discard their resident copies. Callers must
// hold the KB write lock (or be the only user of the KB).
func (kb *KnowledgeBase) invalidateProc(name string, arity int) {
	kb.cacheMu.Lock()
	defer kb.cacheMu.Unlock()
	exact := verKey(name, arity)
	prefix := exact + "|"
	for k := range kb.codeCache {
		if k == exact || (len(k) > len(prefix) && k[:len(prefix)] == prefix) {
			delete(kb.codeCache, k)
		}
	}
	kb.procVers[exact]++
	kb.version.Add(1)
	kb.cacheInvals.Inc()
	kb.cacheEntries.Set(int64(len(kb.codeCache)))
	if kb.txnTouched != nil {
		kb.txnTouched[exact] = term.Indicator{Name: name, Arity: arity}
	}
}

// beginTouched starts recording procedures invalidated inside the open
// transaction (callers hold the KB write lock).
func (kb *KnowledgeBase) beginTouched() {
	kb.cacheMu.Lock()
	kb.txnTouched = map[string]term.Indicator{}
	kb.cacheMu.Unlock()
}

// endTouched stops recording (commit path).
func (kb *KnowledgeBase) endTouched() {
	kb.cacheMu.Lock()
	kb.txnTouched = nil
	kb.cacheMu.Unlock()
}

// reinvalidateTouched invalidates every procedure the rolled-back
// transaction touched, once more: shared cache entries filled and
// session copies linked *during* the transaction reflect clauses that
// no longer exist, and the second version bump makes every session
// (including the transaction's owner) reload from the restored EDB.
func (kb *KnowledgeBase) reinvalidateTouched() {
	kb.cacheMu.Lock()
	touched := kb.txnTouched
	kb.txnTouched = nil
	kb.cacheMu.Unlock()
	for _, pi := range touched {
		kb.invalidateProc(pi.Name, pi.Arity)
	}
}

// InvalidateLoaded drops shared cached code for one external procedure;
// every session reloads it from the EDB on next use.
func (kb *KnowledgeBase) InvalidateLoaded(name string, arity int) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	kb.invalidateProc(name, arity)
}

// bootstrapUnits compiles the bootstrap library once per KB and hands the
// relocatable units to every session for linking (sessions pay only the
// ~10% loader share of §3.1's compile-cost split).
func (kb *KnowledgeBase) bootstrapUnits(s *Session) (map[term.Indicator][]compiler.ClauseCode, []term.Indicator, error) {
	kb.bootMu.Lock()
	defer kb.bootMu.Unlock()
	if kb.bootUnits == nil {
		terms, err := s.parseProgram(bootstrapSrc)
		if err != nil {
			return nil, nil, err
		}
		units, order, err := s.compileProgram(terms)
		if err != nil {
			return nil, nil, err
		}
		kb.bootUnits, kb.bootOrder = units, order
	}
	return kb.bootUnits, kb.bootOrder, nil
}
