package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/compiler"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/term"
	"repro/internal/wam"
)

// Solutions iterates over the answers of one query. Starting a new query
// on the same session invalidates any live Solutions.
//
// Per-query state (transient procedures, baseline fact caches) is
// released exactly once — on Close, on a Next error, or when the
// iteration is exhausted — so abandoning an iterator early without
// calling Close leaks nothing beyond the current query's footprint,
// which the next Query on the session reclaims.
type Solutions struct {
	e        *Session
	names    []string
	err      error
	done     bool
	released bool
	cur      map[string]term.Term

	// compiled (WAM) execution
	run  *wam.Run
	args []wam.Cell

	// baseline (interpreter) execution
	gen *interpGen

	// QueryCtx deadline bookkeeping (see ctx.go): ctxDeadline is the
	// machine deadline armed from the context, prevDeadline the value it
	// displaced, restored when the iteration finishes.
	ctxDeadline  time.Time
	prevDeadline time.Time
}

// Query parses and runs a goal, returning a Solutions iterator. The query
// executes on the WAM in compiled mode, or on the resolution interpreter
// in baseline (source) mode. Each query starts from a fresh view of the
// shared knowledge base: code another session invalidated since the last
// query is dropped and reloaded on use.
func (s *Session) Query(q string) (sol *Solutions, err error) {
	defer func() {
		if r := recover(); r != nil {
			sol, err = nil, s.containPanic(r)
			s.autoRollback()
		}
	}()
	s.endQuery()
	s.syncWithKB()
	s.revalidateSetops()
	s.beginQuery(q)
	// An interrupt aimed at the previous query must not kill this one.
	s.m.ClearInterrupt()
	t0 := time.Now()
	body, vars, err := parser.ParseTermWithOps(q, s.ops)
	s.q.Phases.Add(obs.PhaseParse, time.Since(t0))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)

	if s.opts.RuleStorage == RuleStorageSource {
		goal := body
		vlist := make(map[string]*term.Var, len(vars))
		for n, v := range vars {
			vlist[n] = v
		}
		return &Solutions{
			e:     s,
			names: names,
			gen:   newInterpGen(s.in, goal, vlist),
		}, nil
	}

	vlist := make([]*term.Var, len(names))
	for i, n := range names {
		vlist[i] = vars[n]
	}
	t1 := time.Now()
	ccs, err := s.comp.CompileQuery("$query", vlist, body)
	s.q.Phases.Add(obs.PhaseCompile, time.Since(t1))
	if err != nil {
		return nil, err
	}
	units := map[term.Indicator][]compiler.ClauseCode{}
	for _, cc := range ccs {
		units[cc.Pred] = append(units[cc.Pred], cc)
	}
	for pi, cs := range units {
		if err := s.link(pi, cs, true); err != nil {
			// Release any query procs already installed by earlier
			// iterations of this loop.
			s.endQuery()
			return nil, err
		}
		s.queryProcs = append(s.queryProcs, s.m.Dict.Intern(pi.Name, pi.Arity))
	}
	s.m.Reset()
	args := make([]wam.Cell, len(vlist))
	for i := range args {
		args[i] = wam.MakeRef(s.m.NewVar())
	}
	fn := s.m.Dict.Intern("$query", len(args))
	return &Solutions{
		e:     s,
		names: names,
		run:   s.m.Call(fn, args),
		args:  args,
	}, nil
}

// Next advances to the next solution, returning false when exhausted or
// on error (check Err). Exhaustion and errors release per-query state.
//
// The time spent resolving is charged to the exec phase. Dynamic-loader
// work triggered from inside execution (an undefined-procedure trap
// fetching, decoding and linking stored code) is charged to its own
// phases, so exec overlaps edb_fetch/preunify/link/gc; elapsed wall time
// is reported separately in the query trace event.
func (s *Solutions) Next() (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			s.err = s.e.containPanic(r)
			s.e.autoRollback()
			s.finish()
			ok = false
		}
	}()
	if s.done {
		return false
	}
	if s.run != nil {
		t0 := time.Now()
		ok, err := s.run.Next()
		s.e.q.Phases.Add(obs.PhaseExec, time.Since(t0))
		if err != nil {
			s.err = err
			s.e.autoRollback()
			s.finish()
			return false
		}
		if !ok {
			s.finish()
			return false
		}
		s.e.qSolCount++
		s.cur = map[string]term.Term{}
		for i, n := range s.names {
			s.cur[n] = s.e.m.DecodeTerm(s.args[i])
		}
		return true
	}
	t0 := time.Now()
	sol, ok, err := s.gen.next()
	s.e.q.Phases.Add(obs.PhaseExec, time.Since(t0))
	if err != nil {
		s.err = err
		s.e.autoRollback()
		s.finish()
		return false
	}
	if !ok {
		s.finish()
		return false
	}
	s.e.qSolCount++
	s.cur = sol
	return true
}

// Binding returns the current solution's value for the named variable.
func (s *Solutions) Binding(name string) term.Term { return s.cur[name] }

// Map returns the current solution's full binding map.
func (s *Solutions) Map() map[string]term.Term { return s.cur }

// Vars lists the query's variable names.
func (s *Solutions) Vars() []string { return s.names }

// Err reports the first error encountered.
func (s *Solutions) Err() error { return s.err }

// Close abandons the query and releases per-query state. Safe to call
// multiple times and after exhaustion.
func (s *Solutions) Close() {
	s.finish()
}

// containPanic converts a runtime panic escaping query execution into
// a Prolog error term, so one query tripping an engine bug surfaces as
// an error on that query instead of killing every session sharing the
// process. The recovered value is preserved in the term; the machine's
// transient state is abandoned (the next Query resets it).
func (s *Session) containPanic(r any) error {
	s.kb.panicsRecovered.Inc()
	return &wam.ErrBall{Term: term.Comp("error",
		term.Comp("system_error", term.Atom(fmt.Sprint(r))),
		term.Atom("educe"))}
}

// beginQuery rolls the previous query's (and any between-query consult
// work's) cost stats into the session cumulative, then stamps the new
// query's identity for tracing. Profiler counters left over from an
// abandoned query are drained (attributed to that query) before the
// per-query profile resets.
func (s *Session) beginQuery(goal string) {
	if s.defTimeout > 0 {
		// Re-arm the per-query budget (WithTimeout). A manually set
		// earlier deadline (SetTimeout/SetDeadline) is kept; our own
		// previous arming is stale and replaced.
		d := time.Now().Add(s.defTimeout)
		if cur := s.m.Deadline(); cur.IsZero() || cur.Equal(s.defArmed) || d.Before(cur) {
			s.m.SetDeadline(d)
			s.defArmed = d
		}
	}
	s.drainProfile()
	s.qProf = nil
	s.cum.AddQuery(&s.q)
	s.q.Reset()
	s.qid = s.kb.nextQueryID()
	s.qGoal = goal
	s.qStart = time.Now()
	s.qSolCount = 0
}

// slowQueryTopN bounds the per-predicate rows in a slow-query record.
const slowQueryTopN = 5

// traceQuery drains the query's profile, emits the completed query's
// span and summary events and, when the query's wall time reached the
// armed slow threshold, one slow_query diagnostic record.
func (s *Session) traceQuery() {
	s.drainProfile()
	elapsed := time.Since(s.qStart)
	if !s.tracer.Enabled() {
		return
	}
	mode := "compiled"
	if s.opts.RuleStorage == RuleStorageSource {
		mode = "source"
	}
	ev := obs.QueryEvent{
		SessionID: s.id,
		QueryID:   s.qid,
		Goal:      s.qGoal,
		Mode:      mode,
		Solutions: s.qSolCount,
		Elapsed:   elapsed,
		Stats:     s.q,
	}
	s.tracer.TraceQuery(ev)
	if s.slowThresh > 0 && elapsed >= s.slowThresh {
		rows := make([]obs.PredProfile, 0, len(s.qProf))
		for pred, c := range s.qProf {
			rows = append(rows, obs.PredProfile{Pred: pred, PredCounters: *c})
		}
		s.tracer.TraceSlowQuery(obs.SlowQueryEvent{
			QueryEvent: ev,
			Threshold:  s.slowThresh,
			TopPreds:   obs.TopBySelfTime(rows, slowQueryTopN),
			Paths:      obs.PathProfiles(&s.q),
		})
	}
}

// finish marks the iteration done and releases per-query state exactly
// once.
func (s *Solutions) finish() {
	s.done = true
	if s.released {
		return
	}
	s.released = true
	s.restoreCtxDeadline()
	if s.gen != nil {
		s.gen.stop()
	}
	s.e.traceQuery()
	s.e.endQuery()
}

// QueryAll runs a query to exhaustion, returning all binding maps.
func (s *Session) QueryAll(q string) ([]map[string]term.Term, error) {
	sol, err := s.Query(q)
	if err != nil {
		return nil, err
	}
	defer sol.Close()
	var out []map[string]term.Term
	for sol.Next() {
		out = append(out, sol.Map())
	}
	return out, sol.Err()
}

// QueryCount counts a query's solutions.
func (s *Session) QueryCount(q string) (int, error) {
	sol, err := s.Query(q)
	if err != nil {
		return 0, err
	}
	defer sol.Close()
	n := 0
	for sol.Next() {
		n++
	}
	return n, sol.Err()
}

// QueryOnce reports whether the query has at least one solution, with its
// bindings.
func (s *Session) QueryOnce(q string) (map[string]term.Term, bool, error) {
	sol, err := s.Query(q)
	if err != nil {
		return nil, false, err
	}
	defer sol.Close()
	if sol.Next() {
		return sol.Map(), true, sol.Err()
	}
	return nil, false, sol.Err()
}

// interpGen adapts the interpreter's push-style enumeration to the
// pull-style Solutions iterator with a worker goroutine.
type interpGen struct {
	sols    chan map[string]term.Term
	resume  chan bool
	errCh   chan error
	started bool
	stopped bool
}

func newInterpGen(in *interp.Interp, goal term.Term, vars map[string]*term.Var) *interpGen {
	g := &interpGen{
		sols:   make(chan map[string]term.Term),
		resume: make(chan bool),
		errCh:  make(chan error, 1),
	}
	go func() {
		env := interp.NewEnv()
		err := in.Solve(goal, env, func(e *interp.Env) bool {
			sol := map[string]term.Term{}
			for n, v := range vars {
				sol[n] = e.ResolveDeep(v)
			}
			g.sols <- sol
			return <-g.resume
		})
		g.errCh <- err
		close(g.sols)
	}()
	return g
}

func (g *interpGen) next() (map[string]term.Term, bool, error) {
	if g.stopped {
		return nil, false, nil
	}
	if g.started {
		g.resume <- true
	}
	g.started = true
	sol, ok := <-g.sols
	if !ok {
		g.stopped = true
		return nil, false, <-g.errCh
	}
	return sol, true, nil
}

// stop cancels the enumeration, unblocking the worker goroutine whether it
// is waiting to deliver a solution or waiting for a resume signal.
func (g *interpGen) stop() {
	if g.stopped {
		return
	}
	g.stopped = true
	go func() {
		for {
			select {
			case _, ok := <-g.sols:
				if !ok {
					return
				}
			case g.resume <- false:
			}
		}
	}()
}
