package core

import (
	"errors"

	"repro/internal/edb"
	"repro/internal/rel"
	"repro/internal/store"
	"repro/internal/wam"
)

// Logical transactions. A transaction makes a group of knowledge-base
// writes (assert/retract/consult on stored procedures, relation
// inserts) atomic: Commit publishes them durably in one WAL commit,
// Rollback (or any failure) restores the KB exactly — pages, indexes,
// external dictionary, code caches — to the pre-transaction state.
//
// Concurrency model: the transaction owner holds the KB write lock for
// the whole transaction, so transactions serialize against every other
// session; readers elsewhere block until commit/rollback and therefore
// never observe a partial transaction. The owner's own storage accesses
// skip the lock (see rlock/wlock). This is the coarsest correct scheme
// and matches the latch hierarchy: kb.mu above pool frame latches.
//
// Scope: transactions cover the shared durable state — the EDB, the
// relational catalog and the external dictionary. Session-local state
// (dynamic predicates, consulted in-memory code, the internal
// dictionary, which is content-hashed and append-only) is not covered.
//
// Failure model: if Commit fails against the disk (ENOSPC, EIO), the
// store rolls the pages back, truncates the WAL to the pre-transaction
// offset, and degrades to read-only; the logical layers are restored
// here and the error surfaces to Prolog as a catchable
// error(transaction_error(commit_failed), educe) ball. Reads keep
// working; writes return store.ErrReadOnly until the KB is reopened.

// sessionTxn is the owner-side snapshot set of an open transaction.
type sessionTxn struct {
	edbSnap *edb.Snapshot
	catSnap *rel.CatSnapshot
}

// Begin opens a transaction on the session's knowledge base. It fails
// if this session already has one open (transactions do not nest), if
// the store is read-only, or if the pre-transaction flush fails. The
// KB write lock is held until Commit or Rollback, so all other
// sessions block on their next storage access.
func (s *Session) Begin() error {
	if s.txn != nil {
		return store.ErrTxnOpen
	}
	s.kb.mu.Lock()
	if err := s.kb.st.Begin(); err != nil {
		s.kb.mu.Unlock()
		return err
	}
	s.kb.beginTouched()
	s.txn = &sessionTxn{
		edbSnap: s.kb.db.Snapshot(),
		catSnap: s.kb.cat.Snapshot(),
	}
	s.kb.db.Ext().BeginJournal()
	return nil
}

// Commit makes the open transaction durable and releases the KB write
// lock. On a disk fault the transaction is rolled back at every layer,
// the store degrades to read-only, and the error is returned.
func (s *Session) Commit() error {
	if s.txn == nil {
		return store.ErrNoTxn
	}
	txn := s.txn
	s.txn = nil
	if err := s.kb.st.Commit(); err != nil {
		s.restoreLogical(txn)
		s.kb.txnRollbacks.Inc()
		s.kb.mu.Unlock()
		return err
	}
	s.kb.db.Ext().EndJournal()
	s.kb.endTouched()
	s.kb.txnCommits.Inc()
	s.kb.mu.Unlock()
	return nil
}

// Rollback undoes the open transaction at every layer and releases the
// KB write lock.
func (s *Session) Rollback() error {
	if s.txn == nil {
		return store.ErrNoTxn
	}
	txn := s.txn
	s.txn = nil
	err := s.kb.st.Rollback()
	s.restoreLogical(txn)
	s.kb.txnRollbacks.Inc()
	s.kb.mu.Unlock()
	return err
}

// InTxn reports whether this session has a transaction open.
func (s *Session) InTxn() bool { return s.txn != nil }

// restoreLogical rolls the in-memory layers back over the restored
// pages. It must not touch the session's WAM machine: a rollback may
// fire mid-query (auto-rollback on error) with live choice points, so
// resident code is only version-invalidated here and dropped at the
// next query start by syncWithKB.
func (s *Session) restoreLogical(txn *sessionTxn) {
	s.kb.db.Restore(txn.edbSnap)
	s.kb.db.Ext().RollbackJournal()
	s.kb.cat.Restore(txn.catSnap)
	s.kb.reinvalidateTouched()
}

// autoRollback aborts the open transaction, if any, after a query died
// with an error (timeout, interrupt, quota, panic, disk fault). The
// engine initiates it, so it counts under txn_auto_rollbacks as well.
func (s *Session) autoRollback() {
	if s.txn == nil {
		return
	}
	s.kb.txnAutoRollbacks.Inc()
	_ = s.Rollback()
}

// txnBall maps a transaction-layer error to its catchable Prolog ball
// error(transaction_error(Reason), educe).
func txnBall(err error) error {
	switch {
	case errors.Is(err, store.ErrTxnOpen):
		return wam.TransactionBall("nested_transaction")
	case errors.Is(err, store.ErrNoTxn):
		return wam.TransactionBall("no_transaction")
	case errors.Is(err, store.ErrReadOnly):
		return wam.TransactionBall("read_only")
	default:
		return wam.TransactionBall("commit_failed")
	}
}

// biBegin, biCommit, biRollback are the begin/0, commit/0, rollback/0
// builtins behind transaction/1.
func (s *Session) biBegin(m *wam.Machine, args []wam.Cell) (bool, error) {
	if err := s.Begin(); err != nil {
		return false, txnBall(err)
	}
	return true, nil
}

func (s *Session) biCommit(m *wam.Machine, args []wam.Cell) (bool, error) {
	if err := s.Commit(); err != nil {
		return false, txnBall(err)
	}
	return true, nil
}

func (s *Session) biRollback(m *wam.Machine, args []wam.Cell) (bool, error) {
	if err := s.Rollback(); err != nil {
		return false, txnBall(err)
	}
	return true, nil
}

// biAssertExternal / biRetractExternal expose the EDB write path to
// Prolog (assert_external/1, retract_external/1) so transaction/1 can
// group stored-clause writes without leaving the language. The clause
// must be ground; retract_external does not bind caller variables.
func (s *Session) biAssertExternal(m *wam.Machine, args []wam.Cell) (bool, error) {
	if err := s.AssertExternalTerm(m.DecodeTerm(args[0])); err != nil {
		if errors.Is(err, store.ErrReadOnly) {
			return false, wam.TransactionBall("read_only")
		}
		return false, err
	}
	return true, nil
}

func (s *Session) biRetractExternal(m *wam.Machine, args []wam.Cell) (bool, error) {
	ok, err := s.RetractExternal(m.DecodeTerm(args[0]))
	if err != nil {
		if errors.Is(err, store.ErrReadOnly) {
			return false, wam.TransactionBall("read_only")
		}
		return false, err
	}
	return ok, nil
}
