package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/term"
	"repro/internal/wam"
)

// quotaTestProgram gives each resource a deterministic way to exhaust it:
//
//   - mklist/2 builds a live list of N cells — heap pressure the collector
//     cannot reclaim;
//   - trailburn/1 allocates N variables, pushes a choice point, then
//     binds them all, so every binding is trailed;
//   - EDB facts qf/2 (stored externally by the test setup) give the pages
//     and solutions workloads.
const quotaTestProgram = `
	mklist(0, []).
	mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).

	islist([]).
	islist([_|T]) :- islist(T).

	% grow/1 builds a list and then walks it, so the whole spine stays
	% reachable from the pending islist goal: heap the collector cannot
	% reclaim. (A bare mklist tail call lets the GC legitimately collect
	% the prefix behind the unbound tail.)
	grow(N) :- mklist(N, L), islist(L).

	mkvars(0, []).
	mkvars(N, [_|T]) :- N > 0, M is N - 1, mkvars(M, T).

	bindall([]).
	bindall([x|T]) :- bindall(T).

	chpt(1).
	chpt(2).

	trailburn(N) :- mkvars(N, L), chpt(_), bindall(L).
`

// newQuotaEngine builds an engine with the quota workloads resident and
// 3000 qf/2 facts in the EDB (enough to span several pages and several
// thousand solutions).
func newQuotaEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if err := e.Consult(quotaTestProgram); err != nil {
		t.Fatalf("consult: %v", err)
	}
	facts := make([]term.Term, 0, 3000)
	for i := 0; i < 3000; i++ {
		facts = append(facts, term.Comp("qf", term.Int(int64(i)), term.Int(int64(i%7))))
	}
	if err := e.ConsultExternalTerms(facts); err != nil {
		t.Fatalf("store facts: %v", err)
	}
	return e
}

// assertReusable proves a session still answers queries after a quota
// kill — the acceptance criterion that exhaustion must not poison the
// session.
func assertReusable(t *testing.T, s *Session) {
	t.Helper()
	s.SetQuota(Quota{})
	m, ok, err := s.QueryOnce("X is 6 * 7")
	if err != nil || !ok {
		t.Fatalf("session not reusable after quota kill: ok=%v err=%v", ok, err)
	}
	if got := m["X"].String(); got != "42" {
		t.Fatalf("reuse query answered %s, want 42", got)
	}
	if n, err := s.QueryCount("qf(1, Y)"); err != nil || n != 1 {
		t.Fatalf("EDB access after quota kill: n=%d err=%v", n, err)
	}
}

// TestQuotaResourceErrors is the quota-exhaustion table: each cap kills
// its workload with the right resource_error kind, the same ball is
// catchable from Prolog, and the session remains reusable afterwards.
func TestQuotaResourceErrors(t *testing.T) {
	cases := []struct {
		kind  string
		quota Quota
		// bare runs to exhaustion and must die with resource_error(kind).
		bare string
		// caught wraps the workload in catch/3; it must succeed with
		// R = quota_hit instead of erroring.
		caught string
	}{
		{
			kind:   "heap",
			quota:  Quota{HeapCells: 20000},
			bare:   "grow(200000)",
			caught: "catch(grow(200000), error(resource_error(heap), _), R = quota_hit)",
		},
		{
			kind:   "trail",
			quota:  Quota{TrailEntries: 2000},
			bare:   "trailburn(20000)",
			caught: "catch(trailburn(20000), error(resource_error(trail), _), R = quota_hit)",
		},
		{
			kind:   "pages",
			quota:  Quota{PagesTouched: 2},
			bare:   "qf(X, Y), qf(Y, Z), fail",
			caught: "catch((qf(X, Y), qf(Y, Z), fail), error(resource_error(pages), _), R = quota_hit)",
		},
		{
			kind:   "solutions",
			quota:  Quota{Solutions: 5},
			bare:   "qf(X, _)",
			caught: "catch(qf(X, _), error(resource_error(solutions), _), R = quota_hit)",
		},
	}
	for _, c := range cases {
		t.Run(c.kind, func(t *testing.T) {
			e := newQuotaEngine(t)
			s := e.Session
			s.SetQuota(c.quota)

			// Bare workload: enumerate everything; the iteration must end
			// in resource_error(kind).
			sols, err := s.Query(c.bare)
			if err == nil {
				n := 0
				for sols.Next() {
					n++
					if c.quota.Solutions > 0 && n > c.quota.Solutions {
						t.Fatalf("%d solutions delivered past a %d-solution quota", n, c.quota.Solutions)
					}
				}
				sols.Close()
				err = sols.Err()
			}
			if got := wam.ResourceKind(err); got != c.kind {
				t.Fatalf("bare workload died with %v (kind %q), want resource_error(%s)", err, got, c.kind)
			}

			// Drop the code the bare run loaded, so the caught run pays
			// the EDB retrieval again — the pages quota measures I/O,
			// and warm resident code touches no pages.
			s.KB().InvalidateLoaded("qf", 2)

			// Catch-wrapped workload: the ball must be catchable in
			// Prolog, with the recovery goal producing a solution. The
			// solutions workload delivers its under-cap answers first
			// (catch markers stay armed across solutions), so scan for
			// the recovery binding rather than expecting it first.
			s.SetQuota(c.quota)
			sols2, err := s.Query(c.caught)
			if err != nil {
				t.Fatalf("caught workload errored at Query: %v", err)
			}
			hit := false
			for sols2.Next() {
				if fmt.Sprint(sols2.Binding("R")) == "quota_hit" {
					hit = true
					break
				}
			}
			sols2.Close()
			if !hit {
				t.Fatalf("recovery solution never delivered (err=%v): the ball was not catchable", sols2.Err())
			}

			assertReusable(t, s)
		})
	}
}

// TestSolutionsQuotaExactBudget proves the cap is a budget, not a guess:
// exactly Solutions answers come through, and the overflow error names
// the right resource.
func TestSolutionsQuotaExactBudget(t *testing.T) {
	e := newQuotaEngine(t)
	s := e.Session
	s.SetQuota(Quota{Solutions: 7})
	sols, err := s.Query("qf(X, _)")
	if err != nil {
		t.Fatal(err)
	}
	defer sols.Close()
	n := 0
	for sols.Next() {
		n++
	}
	if n != 7 {
		t.Fatalf("delivered %d solutions, want exactly 7", n)
	}
	if got := wam.ResourceKind(sols.Err()); got != "solutions" {
		t.Fatalf("overflow error = %v, want resource_error(solutions)", sols.Err())
	}
	assertReusable(t, s)
}

// TestQuotaDoesNotFireUnderCap proves generous quotas are invisible: the
// same workloads complete when the caps exceed their needs, and
// reclaimable garbage does not count against the heap cap.
func TestQuotaDoesNotFireUnderCap(t *testing.T) {
	e := newQuotaEngine(t)
	s := e.Session
	s.SetQuota(Quota{HeapCells: 1 << 22, TrailEntries: 1 << 22, PagesTouched: 1 << 20, Solutions: 1 << 20})
	if _, ok, err := s.QueryOnce("mklist(5000, L)"); err != nil || !ok {
		t.Fatalf("under-cap heap workload: ok=%v err=%v", ok, err)
	}
	if n, err := s.QueryCount("qf(X, _)"); err != nil || n != 3000 {
		t.Fatalf("under-cap EDB scan: n=%d err=%v", n, err)
	}
	// The heap cap is per query: consecutive queries each allocating a
	// sizeable fraction of the cap must all succeed, because Query
	// resets the machine between them.
	s.SetQuota(Quota{HeapCells: 60000})
	for i := 0; i < 5; i++ {
		if _, ok, err := s.QueryOnce("mklist(8000, L)"); err != nil || !ok {
			t.Fatalf("query %d under per-query heap cap: ok=%v err=%v", i, ok, err)
		}
	}
	assertReusable(t, s)
}

// TestQuotaErrorMessageShape pins the uncaught error text the server
// sends over the wire.
func TestQuotaErrorMessageShape(t *testing.T) {
	e := newQuotaEngine(t)
	s := e.Session
	s.SetQuota(Quota{Solutions: 1})
	_, err := s.QueryAll("qf(X, _)")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "resource_error(solutions)") {
		t.Fatalf("error text %q does not name the resource", err.Error())
	}
}
