package core

// Randomised differential testing: generate random Datalog-ish programs
// (non-recursive, so every query terminates), run the same queries on the
// compiled engine, the interpreter, and both external-storage modes, and
// require identical solution lists. Seeds are fixed for reproducibility.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/parser"
	"repro/internal/term"
)

// genProgram builds a stratified random program: layer-0 predicates are
// facts; layer-k rules only call layer-(k-1) predicates, guaranteeing
// termination.
func genProgram(r *rand.Rand) (program string, queries []string) {
	consts := []string{"a", "b", "c", "d", "e"}
	var b strings.Builder

	// Layer 0: fact predicates p0_0..p0_2 of arity 2.
	nFacts := 3
	for p := 0; p < nFacts; p++ {
		seen := map[string]bool{}
		for i := 0; i < 3+r.Intn(5); i++ {
			row := fmt.Sprintf("p0_%d(%s, %s).", p,
				consts[r.Intn(len(consts))], consts[r.Intn(len(consts))])
			if !seen[row] {
				seen[row] = true
				b.WriteString(row + "\n")
			}
		}
	}

	// Layers 1..2: rules over the previous layer.
	for layer := 1; layer <= 2; layer++ {
		for p := 0; p < 2; p++ {
			nclauses := 1 + r.Intn(2)
			for c := 0; c < nclauses; c++ {
				prev := func() string {
					if layer == 1 {
						return fmt.Sprintf("p0_%d", r.Intn(nFacts))
					}
					return fmt.Sprintf("p1_%d", r.Intn(2))
				}
				head := fmt.Sprintf("p%d_%d(X, Z)", layer, p)
				var body string
				switch r.Intn(4) {
				case 0: // join
					body = fmt.Sprintf("%s(X, Y), %s(Y, Z)", prev(), prev())
				case 1: // filter with negation
					body = fmt.Sprintf("%s(X, Z), \\+ %s(Z, X)", prev(), prev())
				case 2: // disjunction
					body = fmt.Sprintf("( %s(X, Z) ; %s(Z, X) )", prev(), prev())
				default: // if-then-else on a test
					body = fmt.Sprintf("%s(X, Z), ( X == Z -> true ; %s(X, _) )", prev(), prev())
				}
				b.WriteString(head + " :- " + body + ".\n")
			}
		}
	}

	queries = []string{
		"p1_0(X, Y)",
		"p1_1(a, Y)",
		"p2_0(X, Y)",
		"p2_1(X, b)",
		fmt.Sprintf("p0_%d(%s, X)", r.Intn(nFacts), consts[r.Intn(len(consts))]),
		"findall(X-Y, p2_0(X, Y), L), msort(L, S)",
	}
	return b.String(), queries
}

func runOnInterp(t *testing.T, program, query string) ([]string, error) {
	t.Helper()
	in := interp.New()
	p := parser.New(program)
	terms, err := p.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range terms {
		if err := in.Assert(tm); err != nil {
			t.Fatal(err)
		}
	}
	goal, vars, err := parser.ParseTerm(query)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(vars))
	for n := range vars {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []map[string]term.Term
	err = in.Solve(goal, nil, func(env *interp.Env) bool {
		sol := map[string]term.Term{}
		for _, n := range names {
			sol[n] = env.ResolveDeep(vars[n])
		}
		out = append(out, sol)
		return true
	})
	return renderSolutions(out), err
}

func TestFuzzDifferential(t *testing.T) {
	iters := 40
	if testing.Short() {
		iters = 8
	}
	for seed := 0; seed < iters; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(seed)))
			program, queries := genProgram(r)

			// Four configurations under test.
			type config struct {
				name string
				run  func(q string) ([]string, error)
			}
			mkEngine := func(opts Options, external bool) func(q string) ([]string, error) {
				e := newEngine(t, opts)
				var err error
				if external {
					err = e.ConsultExternal(program)
				} else {
					err = e.Consult(program)
				}
				if err != nil {
					t.Fatalf("consult: %v", err)
				}
				return func(q string) ([]string, error) {
					sols, err := e.QueryAll(q)
					return renderSolutions(sols), err
				}
			}
			configs := []config{
				{"wam-internal", mkEngine(Options{}, false)},
				{"educe*-external", mkEngine(Options{}, true)},
				{"educe-source", mkEngine(Options{RuleStorage: RuleStorageSource}, true)},
				{"interp", func(q string) ([]string, error) { return runOnInterp(t, program, q) }},
			}

			for _, q := range queries {
				ref, err := configs[0].run(q)
				if err != nil {
					t.Fatalf("%s %q: %v\nprogram:\n%s", configs[0].name, q, err, program)
				}
				for _, c := range configs[1:] {
					got, err := c.run(q)
					if err != nil {
						t.Fatalf("%s %q: %v\nprogram:\n%s", c.name, q, err, program)
					}
					if !reflect.DeepEqual(ref, got) {
						t.Fatalf("%s disagrees on %q:\n  ref: %v\n  got: %v\nprogram:\n%s",
							c.name, q, ref, got, program)
					}
				}
			}
		})
	}
}
